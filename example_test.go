package rollrec_test

import (
	"fmt"
	"time"

	"rollrec"
)

// Example_recoverFromCrash runs the documented quick-start flow: a
// four-process token ring under the FBL protocol, one injected crash, and
// the paper's non-blocking recovery bringing the victim back while nobody
// else blocks.
func Example_recoverFromCrash() {
	hw := rollrec.Profile1995()
	// Shrink the failure-handling timeouts so the example runs fast; the
	// structure is identical to the paper-scale configuration.
	hw.WatchdogDetect = 200 * time.Millisecond
	hw.RestartDelay = 50 * time.Millisecond
	hw.SuspectAfter = 300 * time.Millisecond
	hw.HeartbeatEvery = 50 * time.Millisecond
	hw.CPUMsgCost = 20 * time.Microsecond
	hw.CPUByteCost = 0
	hw.Disk.Latency = time.Millisecond
	hw.Disk.ReadBandwidth = 100e6
	hw.Disk.WriteBandwidth = 100e6

	c := rollrec.NewCluster(rollrec.Config{
		N:               4,
		F:               2,
		Seed:            1,
		HW:              hw,
		Style:           rollrec.NonBlocking,
		App:             rollrec.TokenRing(800, 32, int64(500*time.Microsecond)),
		CheckpointEvery: 300 * time.Millisecond,
		StatePad:        8 << 10,
	})
	c.Crash(800*time.Millisecond, 1)
	if !c.RunUntilDone(500*time.Millisecond, time.Minute) {
		fmt.Println("did not settle")
		return
	}

	fmt.Println("violations:", len(c.Check()))
	fmt.Println("p1 recovered:", c.Metrics(1).CurrentRecovery().Total() > 0)
	fmt.Println("live processes blocked:", c.Metrics(0).BlockedTotal()+c.Metrics(2).BlockedTotal()+c.Metrics(3).BlockedTotal())
	// Output:
	// violations: 0
	// p1 recovered: true
	// live processes blocked: 0s
}
