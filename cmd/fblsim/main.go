// Command fblsim runs one rollback-recovery scenario in the deterministic
// simulator and prints a per-process summary.
//
// Usage:
//
//	fblsim -n 8 -f 2 -style nonblocking -crash 10s:3,14s:5 -horizon 30s
//
// Flags select the cluster size, failure budget, recovery algorithm,
// workload, hardware profile, and a crash schedule of time:pid pairs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rollrec/internal/cluster"
	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/node"
	"rollrec/internal/recovery"
	"rollrec/internal/timeline"
	"rollrec/internal/trace"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 8, "application processes")
		f        = flag.Int("f", 2, "failure budget (>= n selects the f=n instance)")
		styleF   = flag.String("style", "nonblocking", "recovery style: nonblocking|blocking|manetho")
		seed     = flag.Int64("seed", 1, "simulation seed")
		hwF      = flag.String("hw", "1995", "hardware profile: 1995|modern")
		appF     = flag.String("app", "gossip", "workload: gossip|ring|clientserver")
		crash    = flag.String("crash", "", "crash schedule, e.g. 10s:3,14s:5")
		horizon  = flag.Duration("horizon", 30*time.Second, "virtual run time")
		cpEvery  = flag.Duration("checkpoint", 4*time.Second, "checkpoint interval")
		pad      = flag.Int("statepad", 1<<20, "checkpoint padding bytes (process image size)")
		eventlog = flag.Bool("eventlog", false, "emit the plain-text event log to stderr")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file (open in ui.perfetto.dev)")
		traceSum = flag.Bool("trace-summary", false, "print the per-phase latency summary table")
		traceBuf = flag.Int("trace-buf", 1<<20, "trace ring capacity in events; older events are evicted when full")
		outputs  = flag.Bool("outputs", false, "track output commits (DESIGN §10); enables the timeline backlog series")
		tlOut    = flag.String("timeline", "", "sample the run and write the timeline export JSON here (render with cmd/timeline)")
		tlCSV    = flag.String("timeline-csv", "", "also write the cluster-level timeline CSV here")
		tlEvery  = flag.Duration("timeline-interval", timeline.DefaultInterval, "timeline sampling interval (virtual time)")
	)
	flag.Parse()

	style, err := parseStyle(*styleF)
	if err != nil {
		fatal(err)
	}
	hw, err := parseHW(*hwF)
	if err != nil {
		fatal(err)
	}
	app, err := parseApp(*appF)
	if err != nil {
		fatal(err)
	}
	plan, err := parseCrashes(*crash, *n)
	if err != nil {
		fatal(err)
	}

	cfg := cluster.Config{
		N:               *n,
		F:               *f,
		Seed:            *seed,
		HW:              hw,
		Style:           style,
		App:             app,
		CheckpointEvery: *cpEvery,
		StatePad:        *pad,
	}
	if *eventlog {
		cfg.Trace = os.Stderr
	}
	var rec *trace.Recorder
	if *traceOut != "" || *traceSum {
		rec = trace.NewRecorder(*traceBuf)
		cfg.Tracer = rec
	}
	cfg.TrackOutputs = *outputs
	c := cluster.New(cfg)
	var col *timeline.Collector
	if *tlOut != "" || *tlCSV != "" {
		col = timeline.New(timeline.Config{
			Interval: *tlEvery,
			N:        *n,
			Label: fmt.Sprintf("fblsim n=%d f=%d style=%s hw=%s app=%s seed=%d",
				*n, *f, style, *hwF, *appF, *seed),
		})
		c.AttachTimeline(col)
	}
	c.ApplyPlan(plan)
	c.Run(*horizon)

	fmt.Printf("scenario: n=%d f=%d style=%s hw=%s app=%s seed=%d horizon=%v crashes=%d\n\n",
		*n, *f, style, *hwF, *appF, *seed, *horizon, len(plan))
	fmt.Printf("%-5s %-10s %-9s %-9s %-9s %-10s %-10s %-9s\n",
		"proc", "delivered", "sent", "blocked", "storage", "recovery", "gather", "replay")
	for i := 0; i < *n; i++ {
		p := ids.ProcID(i)
		m := c.Metrics(p)
		sent, _ := m.TotalSent(false, uint8(wire.KindApp))
		rec, gather, replay := "-", "-", "-"
		if tr := m.CurrentRecovery(); tr != nil && tr.ReplayedAt != 0 {
			rec = metrics.FmtDuration(time.Duration(tr.ReplayedAt - tr.CrashedAt))
			gather = metrics.FmtDuration(time.Duration(tr.GatheredAt - tr.RestoredAt))
			replay = metrics.FmtDuration(time.Duration(tr.ReplayedAt - tr.GatheredAt))
		}
		fmt.Printf("%-5s %-10d %-9d %-9s %-9s %-10s %-10s %-9s\n",
			p, m.Delivered, sent, metrics.FmtDuration(m.BlockedTotal()),
			metrics.FmtDuration(m.StorageTime()), rec, gather, replay)
	}

	// Blocked-time distribution: which live processes recovery intruded on,
	// and how the stalls were sized — not just their sum.
	blockedAnywhere := false
	for i := 0; i < *n; i++ {
		if c.Metrics(ids.ProcID(i)).BlockedHist.Count() > 0 {
			blockedAnywhere = true
			break
		}
	}
	if blockedAnywhere {
		fmt.Printf("\nblocked-time distribution (per live process):\n")
		fmt.Printf("%-5s %-7s %-9s %-9s %-9s %-9s %-9s\n",
			"proc", "spans", "total", "p50", "p95", "p99", "max")
		for i := 0; i < *n; i++ {
			h := &c.Metrics(ids.ProcID(i)).BlockedHist
			if h.Count() == 0 {
				continue
			}
			fmt.Printf("%-5s %-7d %-9s %-9s %-9s %-9s %-9s\n",
				ids.ProcID(i), h.Count(),
				metrics.FmtDuration(h.Total()), metrics.FmtDuration(h.Quantile(0.50)),
				metrics.FmtDuration(h.Quantile(0.95)), metrics.FmtDuration(h.Quantile(0.99)),
				metrics.FmtDuration(h.Max()))
		}
	}

	var piggyDets, appMsgs int64
	for i := 0; i < *n; i++ {
		m := c.Metrics(ids.ProcID(i))
		piggyDets += m.PiggybackDets
		appMsgs += m.MsgsSent[uint8(wire.KindApp)]
	}
	if appMsgs > 0 {
		fmt.Printf("\npiggyback: %.2f determinants per app message\n", float64(piggyDets)/float64(appMsgs))
	}

	if rec != nil {
		if *traceSum {
			fmt.Printf("\nrecovery-phase latency summary (%d events, %d dropped):\n",
				rec.Len(), rec.Dropped())
			if err := trace.WriteSummary(os.Stdout, rec.Events()); err != nil {
				fatal(err)
			}
		}
		if *traceOut != "" {
			if err := writeChromeFile(*traceOut, rec); err != nil {
				fatal(err)
			}
			fmt.Printf("\ntrace: %d events written to %s (open in ui.perfetto.dev)\n",
				rec.Len(), *traceOut)
			if d := rec.Dropped(); d > 0 {
				fmt.Printf("trace: ring full, %d oldest events evicted; rerun with a larger -trace-buf\n", d)
			}
		}
	}

	if col != nil {
		exp := col.Export()
		if *tlOut != "" {
			if err := exp.WriteFile(*tlOut); err != nil {
				fatal(err)
			}
			fmt.Printf("\ntimeline: %d ticks, %d markers written to %s (render with cmd/timeline)\n",
				len(exp.Ticks), len(exp.Markers), *tlOut)
		}
		if *tlCSV != "" {
			if err := exp.WriteCSVFile(*tlCSV); err != nil {
				fatal(err)
			}
			fmt.Printf("timeline: CSV written to %s\n", *tlCSV)
		}
	}

	if errs := c.Check(); len(errs) > 0 {
		fmt.Println("\nINVARIANT VIOLATIONS:")
		for _, e := range errs {
			fmt.Println(" -", e)
		}
		os.Exit(1)
	}
	fmt.Println("\nall invariants hold (no orphans, exactly-once, all recoveries complete)")
}

func parseStyle(s string) (recovery.Style, error) {
	switch strings.ToLower(s) {
	case "nonblocking", "new":
		return recovery.NonBlocking, nil
	case "blocking":
		return recovery.Blocking, nil
	case "manetho":
		return recovery.Manetho, nil
	}
	return 0, fmt.Errorf("unknown style %q", s)
}

func parseHW(s string) (node.Hardware, error) {
	switch s {
	case "1995":
		return node.Profile1995(), nil
	case "modern":
		return node.ProfileModern(), nil
	}
	return node.Hardware{}, fmt.Errorf("unknown hardware profile %q", s)
}

func parseApp(s string) (workload.Factory, error) {
	switch strings.ToLower(s) {
	case "gossip":
		return workload.NewRandomPeer(1, 1_000_000, 256, int64(time.Millisecond)), nil
	case "ring":
		return workload.NewTokenRing(1_000_000, 256, int64(time.Millisecond)), nil
	case "clientserver":
		return workload.NewClientServer(1_000_000, 256, int64(time.Millisecond)), nil
	}
	return nil, fmt.Errorf("unknown workload %q", s)
}

func parseCrashes(s string, n int) (failure.Plan, error) {
	if s == "" {
		return nil, nil
	}
	var plan failure.Plan
	for _, part := range strings.Split(s, ",") {
		at, pid, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad crash spec %q (want time:pid)", part)
		}
		d, err := time.ParseDuration(at)
		if err != nil {
			return nil, fmt.Errorf("bad crash time %q: %w", at, err)
		}
		p, err := strconv.Atoi(pid)
		if err != nil || p < 0 || p >= n {
			return nil, fmt.Errorf("bad crash pid %q", pid)
		}
		plan = append(plan, failure.Crash{At: d, Proc: ids.ProcID(p)})
	}
	return plan, nil
}

func writeChromeFile(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	opts := trace.ChromeOptions{
		KindName: func(k uint8) string { return wire.Kind(k).String() },
	}
	if err := trace.WriteChrome(f, rec.Events(), opts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fblsim:", err)
	os.Exit(2)
}
