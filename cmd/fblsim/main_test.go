package main

import (
	"testing"
	"time"

	"rollrec/internal/recovery"
)

func TestParseStyle(t *testing.T) {
	cases := map[string]recovery.Style{
		"nonblocking": recovery.NonBlocking,
		"new":         recovery.NonBlocking,
		"Blocking":    recovery.Blocking,
		"MANETHO":     recovery.Manetho,
	}
	for in, want := range cases {
		got, err := parseStyle(in)
		if err != nil || got != want {
			t.Errorf("parseStyle(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseStyle("optimistic"); err == nil {
		t.Error("unknown style must error")
	}
}

func TestParseHW(t *testing.T) {
	if _, err := parseHW("1995"); err != nil {
		t.Error(err)
	}
	if _, err := parseHW("modern"); err != nil {
		t.Error(err)
	}
	if _, err := parseHW("quantum"); err == nil {
		t.Error("unknown profile must error")
	}
}

func TestParseApp(t *testing.T) {
	for _, name := range []string{"gossip", "ring", "clientserver"} {
		f, err := parseApp(name)
		if err != nil || f == nil {
			t.Errorf("parseApp(%q): %v", name, err)
		}
	}
	if _, err := parseApp("mapreduce"); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestParseCrashes(t *testing.T) {
	plan, err := parseCrashes("10s:3, 14.5s:5", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 || plan[0].Proc != 3 || plan[0].At != 10*time.Second ||
		plan[1].Proc != 5 || plan[1].At != 14500*time.Millisecond {
		t.Fatalf("plan = %+v", plan)
	}
	if p, err := parseCrashes("", 8); err != nil || p != nil {
		t.Fatal("empty schedule must parse to nil")
	}
	for _, bad := range []string{"10s", "xx:1", "10s:9", "10s:-1", "10s:abc"} {
		if _, err := parseCrashes(bad, 8); err == nil {
			t.Errorf("parseCrashes(%q) must error", bad)
		}
	}
}
