// Command bench is the parallel sweep/benchmark harness CLI: it fans the
// deterministic experiments across a worker pool and emits versioned
// BENCH_<label>.json snapshots, diffs two snapshots as a CI regression
// gate, and renders a snapshot as the markdown tables EXPERIMENTS.md
// embeds.
//
// Usage:
//
//	bench [-label L] [-out FILE] [-seeds 1,2] [-n 4,8] [-f 0,1,2]
//	      [-profiles 1995,modern] [-styles nonblocking,blocking,manetho]
//	      [-loads 0,1000] [-workers N] [-merge-seeds] [-quiet]
//	bench compare OLD.json NEW.json [-threshold 0.05]
//	bench table SNAPSHOT.json
//
// The sweep is deterministic: the same axes and source tree produce a
// byte-identical snapshot for any -workers value and GOMAXPROCS setting.
// Wall-clock cost is reported on stderr only, so it never perturbs the
// snapshot bytes. See DESIGN.md §9 for the schema and gate semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rollrec/internal/bench"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "compare":
			os.Exit(runCompare(os.Args[2:]))
		case "table":
			os.Exit(runTable(os.Args[2:]))
		}
	}
	os.Exit(runSweep(os.Args[1:]))
}

func runSweep(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	label := fs.String("label", "main", "snapshot label; output defaults to BENCH_<label>.json")
	out := fs.String("out", "", "output path (default BENCH_<label>.json)")
	def := bench.DefaultAxes()
	seeds := fs.String("seeds", joinInt64s(def.Seeds), "comma-separated seed axis")
	ns := fs.String("n", joinInts(def.N), "comma-separated cluster-size axis")
	fails := fs.String("f", joinInts(def.Failures), "comma-separated failure-count axis (crashes injected; tolerance f = max(1, value))")
	profiles := fs.String("profiles", strings.Join(def.Profiles, ","), "comma-separated hardware profiles (1995, modern)")
	styles := fs.String("styles", strings.Join(def.Styles, ","), "comma-separated recovery styles (nonblocking, blocking, manetho)")
	loads := fs.String("loads", "0", "comma-separated offered-load axis in req/s (0 = closed-loop gossip workload)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	mergeSeeds := fs.Bool("merge-seeds", false, "aggregate all seeds into one cell per configuration (mean plus min/max spread)")
	quiet := fs.Bool("quiet", false, "suppress per-cell progress on stderr")
	fs.Parse(args)

	axes, err := parseAxes(*seeds, *ns, *fails, *profiles, *styles, *loads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	axes.MergeSeeds = *mergeSeeds
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now() //rollvet:allow simtime -- wall-clock cost reporting for the operator, kept out of the snapshot
	opts := bench.Options{
		Workers: *workers,
		Meta: bench.Meta{
			Label:     *label,
			GitRev:    gitRev(),
			GoVersion: runtime.Version(),
		},
	}
	if !*quiet {
		opts.OnCell = func(done, total int, c bench.Cell) {
			fmt.Fprintf(os.Stderr, "bench: %3d/%d %s (%d sim events)\n", done, total, c.Key, c.SimEvents)
		}
	}
	snap, err := bench.RunSweep(ctx, axes, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		if ctx.Err() != nil {
			return 130
		}
		return 1
	}
	if err := snap.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	var events int64
	for _, c := range snap.Cells {
		events += c.SimEvents
	}
	elapsed := time.Since(start) //rollvet:allow simtime -- wall-clock cost reporting for the operator, kept out of the snapshot
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d cells, %d sim events, %v wall on %d workers)\n",
		path, len(snap.Cells), events, elapsed.Round(time.Millisecond), effectiveWorkers(*workers, len(snap.Cells)))
	return 0
}

func effectiveWorkers(requested, cells int) int {
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > cells {
		return cells
	}
	return requested
}

func runCompare(args []string) int {
	fs := flag.NewFlagSet("bench compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.05, "relative cost increase tolerated before failing (0 = exact)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bench compare OLD.json NEW.json [-threshold 0.05]")
		fs.PrintDefaults()
	}
	// Accept both `compare OLD NEW -threshold X` and `compare -threshold X OLD NEW`.
	var paths []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		paths = append(paths, args[0])
		args = args[1:]
	}
	fs.Parse(args)
	paths = append(paths, fs.Args()...)
	if len(paths) != 2 {
		fs.Usage()
		return 2
	}
	oldSnap, err := bench.ReadFile(paths[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	newSnap, err := bench.ReadFile(paths[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	regs, notes := bench.Compare(oldSnap, newSnap, *threshold)
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	for _, r := range regs {
		fmt.Println("REGRESSION:", r)
	}
	if len(regs) > 0 {
		fmt.Printf("bench compare: %d regression(s) beyond threshold %.2f (%s -> %s)\n",
			len(regs), *threshold, paths[0], paths[1])
		return 1
	}
	fmt.Printf("bench compare: ok, %d cells within threshold %.2f (%s -> %s)\n",
		len(oldSnap.Cells), *threshold, paths[0], paths[1])
	return 0
}

func runTable(args []string) int {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: bench table SNAPSHOT.json")
		return 2
	}
	snap, err := bench.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	if err := bench.Markdown(os.Stdout, snap); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	return 0
}

// gitRev asks git for the current short revision (plus -dirty when the
// tree is modified); "unknown" outside a checkout.
func gitRev() string {
	rev, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	out := strings.TrimSpace(string(rev))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		out += "-dirty"
	}
	return out
}

// parseAxes converts the comma-separated flag values into a bench.Axes.
func parseAxes(seeds, ns, fails, profiles, styles, loads string) (bench.Axes, error) {
	var a bench.Axes
	for _, s := range splitList(seeds) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return a, fmt.Errorf("bad seed %q: %v", s, err)
		}
		a.Seeds = append(a.Seeds, v)
	}
	var err error
	if a.N, err = parseInts(ns, "n"); err != nil {
		return a, err
	}
	if a.Failures, err = parseInts(fails, "f"); err != nil {
		return a, err
	}
	a.Profiles = splitList(profiles)
	a.Styles = splitList(styles)
	if a.Loads, err = parseInts(loads, "load"); err != nil {
		return a, err
	}
	return a, nil
}

func parseInts(list, name string) ([]int, error) {
	var out []int
	for _, s := range splitList(list) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %v", name, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

func joinInt64s(xs []int64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.FormatInt(x, 10)
	}
	return strings.Join(parts, ",")
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
