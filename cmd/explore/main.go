// Command explore is the failure-schedule explorer's CLI: it enumerates
// crash schedules over the deterministic kernel's decision points for one
// or more protocol families, checks the protocol invariants on every
// branch, and exits non-zero if any schedule violates them. Violations are
// printed as replayable counterexamples and, with -cx-dir, saved as JSON
// files that -replay re-executes byte-identically.
//
// Usage:
//
//	explore [-families all] [-styles all] [-n 3] [-seed 1] [-out report.json]
//	explore -replay cx.json
//
// The report written by -out is byte-deterministic for a given flag set:
// running the same exploration twice must produce identical files, which
// CI checks with cmp.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rollrec/internal/explore"
	"rollrec/internal/recovery"
)

func main() {
	families := flag.String("families", "all", "comma-separated protocol families to explore: fbl,coordinated,optimistic (or all)")
	styles := flag.String("styles", "all", "comma-separated FBL recovery styles: nonblocking,blocking,manetho (or all; ignored by non-FBL families)")
	n := flag.Int("n", 3, "cluster size")
	f := flag.Int("f", 1, "FBL failure budget (f >= n selects the storage-backed instance)")
	seed := flag.Int64("seed", 1, "scenario seed; every branch replays it exactly")
	horizon := flag.Duration("horizon", 0, "virtual-time budget per branch (0 = family default)")
	points := flag.Int("points", 0, "max decision points per exploration (0 = default)")
	maxCrashes := flag.Int("max-crashes", 1, "max crashes per schedule (>= 2 aims second crashes inside observed recoveries)")
	deep := flag.Int("deep", 0, "cap on depth-2 branches (0 = default)")
	random := flag.Int("random", 0, "extra seeded-random multi-crash branches on top of the exhaustive pass")
	out := flag.String("out", "", "write the combined report as JSON to this path")
	cxDir := flag.String("cx-dir", "", "save each counterexample as a JSON file in this directory")
	replay := flag.String("replay", "", "re-execute this counterexample file instead of exploring; exits 0 iff it reproduces byte-identically")
	flag.Parse()

	if *replay != "" {
		runReplay(*replay)
		return
	}

	fams, err := parseFamilies(*families)
	if err != nil {
		fatal(err)
	}
	stys, err := parseStyles(*styles)
	if err != nil {
		fatal(err)
	}

	var reports []*explore.Report
	violations := 0
	for _, fam := range fams {
		for _, spec := range specsFor(fam, stys) {
			spec.N = *n
			spec.F = *f
			spec.Seed = *seed
			spec.Horizon = *horizon
			spec.MaxPoints = *points
			spec.MaxCrashes = *maxCrashes
			spec.DeepBranches = *deep
			spec.Random = *random
			rep, err := explore.Run(context.Background(), spec)
			if err != nil {
				fatal(err)
			}
			label := string(rep.Spec.Family)
			if rep.Spec.Family == explore.FamilyFBL {
				label += "/" + rep.Spec.Style.String()
			}
			fmt.Printf("%-18s points=%-3d branches=%-4d violations=%-3d baseline_events=%-6d fingerprint=%#016x\n",
				label, rep.Points, rep.Branches, rep.Violations, rep.BaselineEvents, rep.Fingerprint)
			for i, cx := range rep.Counterexamples {
				fmt.Printf("counterexample:\n%s\n", cx)
				if *cxDir != "" {
					path := fmt.Sprintf("%s/cx-%s-%d.json", *cxDir, strings.ReplaceAll(label, "/", "-"), i)
					if err := explore.SaveCounterexample(path, cx); err != nil {
						fatal(err)
					}
					fmt.Printf("saved: %s\n", path)
				}
			}
			violations += rep.Violations
			reports = append(reports, rep)
		}
	}

	if *out != "" {
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "explore: %d invariant violation(s)\n", violations)
		os.Exit(1)
	}
}

// runReplay re-executes a saved counterexample and reports byte-identity.
func runReplay(path string) {
	cx, err := explore.LoadCounterexample(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replaying:\n%s\n", cx)
	res, err := explore.Replay(context.Background(), cx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replay: events=%d fingerprint=%#016x match=%v reproduced=%v\n",
		res.Events, res.Fingerprint, res.FingerprintMatch, res.Reproduced)
	for _, v := range res.Violations {
		fmt.Printf("  - %s\n", v)
	}
	if !res.FingerprintMatch || !res.Reproduced {
		fmt.Fprintln(os.Stderr, "explore: counterexample did not reproduce byte-identically")
		os.Exit(1)
	}
}

func parseFamilies(s string) ([]explore.Family, error) {
	if s == "all" {
		return explore.Families(), nil
	}
	var out []explore.Family
	for _, part := range strings.Split(s, ",") {
		switch explore.Family(strings.TrimSpace(part)) {
		case explore.FamilyFBL:
			out = append(out, explore.FamilyFBL)
		case explore.FamilyCoordinated:
			out = append(out, explore.FamilyCoordinated)
		case explore.FamilyOptimistic:
			out = append(out, explore.FamilyOptimistic)
		default:
			return nil, fmt.Errorf("unknown family %q (want fbl, coordinated, or optimistic)", part)
		}
	}
	return out, nil
}

func parseStyles(s string) ([]recovery.Style, error) {
	if s == "all" {
		return []recovery.Style{recovery.NonBlocking, recovery.Blocking, recovery.Manetho}, nil
	}
	var out []recovery.Style
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "nonblocking":
			out = append(out, recovery.NonBlocking)
		case "blocking":
			out = append(out, recovery.Blocking)
		case "manetho":
			out = append(out, recovery.Manetho)
		default:
			return nil, fmt.Errorf("unknown style %q (want nonblocking, blocking, or manetho)", part)
		}
	}
	return out, nil
}

// specsFor expands a family into the spec skeletons to run: FBL once per
// requested recovery style, the single-algorithm families once.
func specsFor(fam explore.Family, stys []recovery.Style) []explore.Spec {
	if fam != explore.FamilyFBL {
		return []explore.Spec{{Family: fam}}
	}
	specs := make([]explore.Spec, 0, len(stys))
	for _, st := range stys {
		specs = append(specs, explore.Spec{Family: fam, Style: st})
	}
	return specs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "explore:", err)
	os.Exit(1)
}
