// Command rollvet runs the repo's determinism and protocol-invariant
// checks (see internal/analysis) over the given package patterns.
//
// Usage:
//
//	go run ./cmd/rollvet ./...          # whole module
//	go run ./cmd/rollvet ./internal/... # protocol packages only
//	go run ./cmd/rollvet -json ./...    # machine-readable findings
//	go run ./cmd/rollvet -list          # describe the checks
//
// Exit status is a contract CI scripts rely on:
//
//	0  clean — no unsuppressed findings
//	1  at least one unsuppressed finding was reported
//	2  load or type-check failure (bad patterns, code that does not build)
//
// Suppressed findings never affect the exit status; they appear only in
// -json output, flagged "suppressed": true.
//
// Findings print as file:line:col diagnostics, or with -json as one JSON
// document {version, total, suppressed, findings:[{file, line, col, check,
// message, suppressed}]} with module-root-relative slash paths, sorted by
// position — byte-identical across runs and machines for the same tree. A
// finding is silenced — with a mandatory justification — by
//
//	//rollvet:allow <check> -- <reason>
//
// on the offending line or the line directly above it.
//
// Run rollvet over the whole module (./...). The hotalloc and poolescape
// checks are whole-program: a partial load that omits the //rollvet:hotpath
// roots cannot see into callees in other packages, so findings may be
// missed and their suppressions mis-reported as stale.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rollrec/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the checks and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON (suppressed ones included)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rollvet [-list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rollvet: %v\n", err)
		os.Exit(2)
	}
	findings := analysis.CheckPackagesAll(pkgs, analysis.All)

	failing := 0
	for _, f := range findings {
		if !f.Suppressed {
			failing++
		}
	}

	if *jsonOut {
		root, err := analysis.ModuleRoot(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rollvet: %v\n", err)
			os.Exit(2)
		}
		if err := analysis.WriteJSON(os.Stdout, root, findings); err != nil {
			fmt.Fprintf(os.Stderr, "rollvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		cwd, _ := os.Getwd()
		for _, f := range findings {
			if f.Suppressed {
				continue
			}
			name := f.Pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
					name = rel
				}
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", name, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
		}
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "rollvet: %d finding(s) in %d package(s)\n", failing, len(pkgs))
		os.Exit(1)
	}
}
