// Command rollvet runs the repo's determinism and protocol-invariant
// checks (see internal/analysis) over the given package patterns.
//
// Usage:
//
//	go run ./cmd/rollvet ./...          # whole module
//	go run ./cmd/rollvet ./internal/... # protocol packages only
//	go run ./cmd/rollvet -list          # describe the checks
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on load or
// type-check failure. Findings print as file:line:col diagnostics. A
// finding is silenced — with a mandatory justification — by
//
//	//rollvet:allow <check> -- <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rollrec/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rollvet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rollvet: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.CheckPackages(pkgs, analysis.All)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rollvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
