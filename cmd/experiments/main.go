// Command experiments regenerates the paper's evaluation: every table and
// figure in DESIGN.md §3, printed as aligned text tables.
//
// Usage:
//
//	experiments [-seed N] [-only E1,E2,...] [-list]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"rollrec/internal/experiments"
	"rollrec/internal/timeline"
	"rollrec/internal/trace"
	"rollrec/internal/wire"
)

var registry = []struct {
	id   string
	desc string
	run  func(context.Context, int64) experiments.Table
}{
	{"E1", "single failure (paper §5, first experiment)", experiments.E1},
	{"E2", "second failure during recovery (paper §5, second experiment)", experiments.E2},
	{"D1", "scale sweep: blocked time vs n", experiments.D1},
	{"D2", "stable-storage latency sweep", experiments.D2},
	{"D3", "recovery communication counts", experiments.D3},
	{"D4", "failure-free overhead vs f", experiments.D4},
	{"D5", "recovery-time breakdown", experiments.D5},
	{"D6", "intrusion by recovery style", experiments.D6},
	{"D7", "network latency sweep", experiments.D7},
	{"D8", "analytical cost model vs simulation", experiments.D8},
	{"D9", "message logging vs coordinated checkpointing", experiments.D9},
	{"D10", "orphans: FBL vs optimistic logging", experiments.D10},
	{"D11", "output-commit latency across styles", experiments.D11},
	{"D12", "open-loop traffic: offered load x style x crash", experiments.D12},
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file covering the runs (best with a single -only id)")
	traceSum := flag.Bool("trace-summary", false, "print the per-phase latency summary after the tables")
	traceBuf := flag.Int("trace-buf", 1<<20, "trace ring capacity in events; older events are evicted when full")
	tlDir := flag.String("timeline", "", "rerun the D11 and D12 crash cells per style with sampling on and write timeline_D1{1,2}_<style>.{json,csv} into this directory")
	tlEvery := flag.Duration("timeline-interval", timeline.DefaultInterval, "timeline sampling interval (virtual time)")
	tlCrash := flag.Duration("timeline-crash", 0, "timeline cell crash instant (0: the experiment's 10s)")
	tlHorizon := flag.Duration("timeline-horizon", 0, "timeline cell horizon (0: the experiment's 25s)")
	flag.Parse()

	var rec *trace.Recorder
	if *traceOut != "" || *traceSum {
		rec = trace.NewRecorder(*traceBuf)
		experiments.DefaultTracer = rec
	}

	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %s\n", e.id, e.desc)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	// Ctrl-C cancels the in-flight simulation via the experiments context
	// instead of killing the process mid-table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *tlDir != "" {
		if err := writeTimelines(ctx, *tlDir, *seed, *tlEvery, *tlCrash, *tlHorizon); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		if len(want) == 0 && *only == "" {
			return // -timeline alone: just the sampled cells, no tables
		}
	}

	ran := 0
	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now() //rollvet:allow simtime -- wall-clock progress reporting for the operator, not protocol time
		table := e.run(ctx, *seed)
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "experiments: interrupted")
			os.Exit(130)
		}
		fmt.Println(table.String())
		//rollvet:allow simtime -- wall-clock progress reporting for the operator, not protocol time
		fmt.Printf("(%s computed in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; use -list\n", *only)
		os.Exit(2)
	}

	if rec != nil {
		if *traceSum {
			fmt.Printf("recovery-phase latency summary (%d events, %d dropped):\n",
				rec.Len(), rec.Dropped())
			if err := trace.WriteSummary(os.Stdout, rec.Events()); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
		}
		if *traceOut != "" {
			if err := writeChromeFile(*traceOut, rec); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
			fmt.Printf("trace: %d events written to %s (open in ui.perfetto.dev)\n",
				rec.Len(), *traceOut)
			if d := rec.Dropped(); d > 0 {
				fmt.Printf("trace: ring full, %d oldest events evicted; rerun with a larger -trace-buf\n", d)
			}
		}
	}
}

// writeTimelines reruns the D11 and D12 failure cells per style with a
// sampler attached and writes one JSON + CSV export pair per style and
// experiment. The exports are byte-deterministic: same seed, interval, and
// cell → identical files, regardless of host or GOMAXPROCS (the CI
// timeline-smoke job pins this).
func writeTimelines(ctx context.Context, dir string, seed int64, every, crashAt, horizon time.Duration) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(base string, e *timeline.Export) error {
		if err := e.WriteFile(base + ".json"); err != nil {
			return err
		}
		if err := e.WriteCSVFile(base + ".csv"); err != nil {
			return err
		}
		fmt.Printf("timeline: %s → %s.{json,csv} (%d ticks, %d markers)\n",
			e.Meta.Label, base, len(e.Ticks), len(e.Markers))
		return nil
	}
	for _, tl := range experiments.D11Timelines(ctx, seed, every, crashAt, horizon) {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := write(filepath.Join(dir, "timeline_D11_"+tl.Style), tl.Export); err != nil {
			return err
		}
	}
	for _, tl := range experiments.D12Timelines(ctx, seed, every, crashAt, horizon) {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := write(filepath.Join(dir, "timeline_D12_"+tl.Style), tl.Export); err != nil {
			return err
		}
	}
	return nil
}

func writeChromeFile(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	opts := trace.ChromeOptions{
		KindName: func(k uint8) string { return wire.Kind(k).String() },
	}
	if err := trace.WriteChrome(f, rec.Events(), opts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
