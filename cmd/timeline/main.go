// Command timeline is the recovery timeline explorer: it renders timeline
// exports (cmd/fblsim -timeline, cmd/experiments -timeline) as aligned
// ASCII sparkline lanes — one per sampled series, one phase lane per
// process — with crash and recovery-phase markers on a lane of their own.
//
// Usage:
//
//	timeline [-w 100] [-proc 3] export.json [more.json ...]
//
// Each lane is max-pooled into the terminal width, so a spike is never
// averaged away; the marker glyphs are X=crash r=restart s=restored
// g=gathered E=recovery-end.
package main

import (
	"flag"
	"fmt"
	"os"

	"rollrec/internal/timeline"
)

func main() {
	width := flag.Int("w", 100, "sparkline width in cells")
	proc := flag.Int("proc", -1, "also print this process's backlog series as numbers")
	csvOut := flag.String("csv", "", "convert the (single) export to cluster-level CSV at this path instead of rendering")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: timeline [-w width] [-proc id] export.json [more.json ...]")
		os.Exit(2)
	}
	if *csvOut != "" && flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "timeline: -csv converts exactly one export")
		os.Exit(2)
	}

	for i, path := range flag.Args() {
		e, err := timeline.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timeline:", err)
			os.Exit(1)
		}
		if *csvOut != "" {
			if err := e.WriteCSVFile(*csvOut); err != nil {
				fmt.Fprintln(os.Stderr, "timeline:", err)
				os.Exit(1)
			}
			fmt.Printf("%s: %d ticks → %s\n", path, len(e.Ticks), *csvOut)
			return
		}
		if i > 0 {
			fmt.Println()
		}
		timeline.Render(os.Stdout, e, *width)
		if *proc >= 0 {
			fmt.Printf("p%d backlog: %v\n", *proc, e.ProcBacklog(*proc))
			fmt.Printf("p%d oldest_open_ms: %v\n", *proc, e.ProcOldest(*proc))
		}
	}
}
