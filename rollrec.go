// Package rollrec is a library for log-based rollback-recovery in
// message-passing systems, reproducing E.N. Elnozahy, "On the Relevance of
// Communication Costs of Rollback-Recovery Protocols" (PODC 1995).
//
// It provides:
//
//   - The Family-Based Logging protocol engine (sender-based volatile
//     message logging with causal determinant piggybacking), parameterized
//     by the failure budget f: f = 1 behaves like Sender-Based Message
//     Logging, f = n like Manetho with a stable-storage pseudo-process.
//   - The paper's new non-blocking recovery algorithm (a recovery leader
//     gathers a consistent depinfo snapshot without blocking live
//     processes), plus the blocking baseline and a Manetho-mode variant
//     used by the paper's evaluation.
//   - Two runtimes for the same protocol code: a deterministic
//     discrete-event simulator with a parameterized hardware cost model
//     (1995 workstations or a modern cluster), and a goroutine-per-process
//     runtime.
//   - Deterministic workloads (token ring, random-peer gossip,
//     client–server, the paper's Figure 1 execution), a crash-injection
//     and invariant-checking cluster harness, and the full experiment
//     suite that regenerates the paper's evaluation.
//
// # Quick start
//
//	cfg := rollrec.Config{
//		N:               4,
//		F:               2,
//		Seed:            1,
//		Style:           rollrec.NonBlocking,
//		App:             rollrec.TokenRing(1000, 64, 0),
//		CheckpointEvery: time.Second,
//	}
//	c := rollrec.NewCluster(cfg)
//	c.Crash(2*time.Second, 1)       // inject a failure
//	c.RunUntilDone(time.Second, 2*time.Minute)
//	if errs := c.Check(); len(errs) != 0 { ... } // consistency invariants
//
// See the examples directory for complete programs and DESIGN.md for the
// architecture and the experiment index.
package rollrec

import (
	"context"
	"time"

	"rollrec/internal/cluster"
	"rollrec/internal/experiments"
	"rollrec/internal/failure"
	"rollrec/internal/fbl"
	"rollrec/internal/ids"
	"rollrec/internal/livenet"
	"rollrec/internal/metrics"
	"rollrec/internal/node"
	"rollrec/internal/recovery"
	"rollrec/internal/workload"
)

// ProcID identifies a process; application processes are 0..n-1.
type ProcID = ids.ProcID

// StorageProc is the stable-storage pseudo-process of the f = n instance.
const StorageProc = ids.StorageProc

// Style selects the recovery algorithm variant.
type Style = recovery.Style

// Recovery algorithm variants (see the recovery package for semantics).
const (
	// NonBlocking is the paper's new algorithm: live processes are never
	// blocked by a recovery.
	NonBlocking = recovery.NonBlocking
	// Blocking is the baseline: live processes stop delivering application
	// messages for the duration of the gather.
	Blocking = recovery.Blocking
	// Manetho additionally forces live processes to log recovery replies
	// to stable storage synchronously.
	Manetho = recovery.Manetho
)

// Hardware is the runtime cost model (network, storage, CPU, failure
// detection timing).
type Hardware = node.Hardware

// Profile1995 models the paper's testbed: 25 MHz workstations on 155 Mb/s
// ATM with era disks and multi-second failure detection.
func Profile1995() Hardware { return node.Profile1995() }

// ProfileModern models a contemporary cluster.
func ProfileModern() Hardware { return node.ProfileModern() }

// App is a deterministic message-driven application hosted by the
// protocol; Ctx is the capability handed to it.
type (
	App = workload.App
	Ctx = workload.Ctx
	// AppFactory builds the App for one process.
	AppFactory = workload.Factory
)

// TokenRing returns a workload circulating one token for maxHops hops.
func TokenRing(maxHops uint64, payloadPad int, workPerMsgNanos int64) AppFactory {
	return workload.NewTokenRing(maxHops, payloadPad, workPerMsgNanos)
}

// Gossip returns a random-peer workload: seeds chains per process, each of
// ttl+1 deliveries.
func Gossip(seeds, ttl, payloadPad int, workPerMsgNanos int64) AppFactory {
	return workload.NewRandomPeer(seeds, ttl, payloadPad, workPerMsgNanos)
}

// ClientServer returns a workload where process 0 serves k pipelined
// requests from each other process.
func ClientServer(k, payloadPad int, workPerMsgNanos int64) AppFactory {
	return workload.NewClientServer(k, payloadPad, workPerMsgNanos)
}

// Figure1 returns the paper's Figure 1 execution (3 processes; m → m' →
// m” chains, repeated rounds times).
func Figure1(rounds int) AppFactory { return workload.NewFigure1(rounds) }

// Config describes a simulated cluster; see cluster.Config.
type Config = cluster.Config

// Cluster is a simulated cluster with crash injection and invariant
// checking.
type Cluster = cluster.Cluster

// NewCluster builds and boots a simulated cluster.
func NewCluster(cfg Config) *Cluster { return cluster.New(cfg) }

// Crash is one injected failure; Plan a schedule of them.
type (
	Crash = failure.Crash
	Plan  = failure.Plan
)

// ProcMetrics is the per-process statistics accumulator.
type ProcMetrics = metrics.Proc

// RecoveryTrace records the phases of one recovery.
type RecoveryTrace = metrics.RecoveryTrace

// Table is a rendered experiment result.
type Table = experiments.Table

// Experiment entry points: each regenerates one table/figure of the
// paper's evaluation (see DESIGN.md §3 for the index). Every entry point
// takes a context; cancelling it stops the simulation at the next event
// batch and returns the rows completed so far.
var (
	E1  = experiments.E1  // single failure (paper §5, first experiment)
	E2  = experiments.E2  // overlapping failures (paper §5, second experiment)
	D1  = experiments.D1  // scale sweep
	D2  = experiments.D2  // stable-storage latency sweep
	D3  = experiments.D3  // recovery communication counts
	D4  = experiments.D4  // failure-free overhead vs f
	D5  = experiments.D5  // recovery-time breakdown
	D6  = experiments.D6  // intrusion by recovery style
	D7  = experiments.D7  // network latency sweep
	D8  = experiments.D8  // analytical cost model vs simulation
	D9  = experiments.D9  // message logging vs coordinated checkpointing
	D10 = experiments.D10 // orphans: FBL vs optimistic logging
)

// AllExperiments runs the full evaluation suite, stopping early when ctx
// is done.
func AllExperiments(ctx context.Context, seed int64) []Table { return experiments.All(ctx, seed) }

// LiveNet is the goroutine-per-process runtime; LiveConfig configures it.
type (
	LiveNet    = livenet.Net
	LiveConfig = livenet.Config
)

// NewLiveNet returns a goroutine-backed runtime for the same protocol code
// the simulator runs.
func NewLiveNet(cfg LiveConfig) *LiveNet { return livenet.New(cfg) }

// ProtocolParams configures one FBL protocol process for direct use with a
// runtime (the cluster harness does this wiring for you).
type ProtocolParams = fbl.Params

// AddProtocol registers an FBL protocol node on a live runtime.
func AddProtocol(net *LiveNet, id ProcID, par ProtocolParams) {
	net.AddNode(id, fbl.New(par))
}

// AddStorageNode registers the stable-storage pseudo-process required by
// the f = n instance.
func AddStorageNode(net *LiveNet, n, f int) {
	net.AddNode(StorageProc, fbl.NewStorageNode(n, f))
}

// InspectProtocol runs fn with the protocol instance at id under the
// node's lock (nil while the node is down).
func InspectProtocol(net *LiveNet, id ProcID, fn func(p *Process)) {
	net.Inspect(id, func(np node.Process) {
		fp, _ := np.(*fbl.Process)
		fn(fp)
	})
}

// Process is the protocol instance type, exposed for state inspection in
// examples and tests.
type Process = fbl.Process

// DefaultCheckpointEvery is a reasonable checkpoint interval for the 1995
// profile.
const DefaultCheckpointEvery = 4 * time.Second
