package recovery

import (
	"fmt"

	"rollrec/internal/det"
	"rollrec/internal/ids"
	"rollrec/internal/wire"
)

// HandleMessage dispatches a recovery-protocol envelope. It returns false
// for kinds the manager does not own.
func (m *Manager) HandleMessage(e *wire.Envelope) bool {
	switch e.Kind {
	case wire.KindRecoveryAnnounce:
		m.onAnnounce(e)
	case wire.KindIncRequest:
		m.onIncRequest(e)
	case wire.KindIncReply:
		m.onIncReply(e)
	case wire.KindDepRequest:
		m.onDepRequest(e)
	case wire.KindDepReply:
		m.onDepReply(e)
	case wire.KindRecoveryData:
		m.onRecoveryData(e)
	case wire.KindRecoveryComplete:
		m.onRecoveryComplete(e)
	case wire.KindRecovered:
		m.onRecovered(e)
	default:
		return false
	}
	return true
}

// learn records (or refreshes) what we know about a peer's recovery.
// It reports whether anything changed.
func (m *Manager) learn(p ids.ProcID, ord ids.Ordinal, inc ids.Incarnation, active bool) bool {
	r := m.reg[p]
	if r == nil {
		r = &regEntry{}
		m.reg[p] = r
	}
	changed := false
	if !ord.IsZero() && r.ord != ord {
		// A fresh ordinal means a fresh recovery attempt: it needs serving.
		if r.ord.Less(ord) || r.ord.IsZero() {
			r.ord = ord
			r.served = false
			changed = true
		}
	}
	if inc > r.inc {
		r.inc = inc
		changed = true
	}
	if active && !r.active {
		r.active = true
		r.served = false
		changed = true
	}
	return changed
}

func (m *Manager) onAnnounce(e *wire.Envelope) {
	changed := m.learn(e.From, e.Ord, e.FromInc, true)
	if !changed {
		return
	}
	switch m.state {
	case StateLeading:
		// A new recovery joined (or a member re-crashed with a new
		// ordinal): fold it into the round — the paper's "goto 4".
		m.evaluate()
		if m.state == StateLeading {
			m.lead()
		}
	case StateWaiting, StateLive, StateReplaying:
		m.evaluate()
	}
}

func (m *Manager) onIncRequest(e *wire.Envelope) {
	// A leader queried our incarnation: it believes we are recovering.
	m.learn(e.From, e.Ord, e.FromInc, true)
	me := m.reg[m.self]
	var inc ids.Incarnation
	if me != nil {
		inc = me.inc
	}
	m.env.Send(e.From, &wire.Envelope{
		Kind:    wire.KindIncReply,
		FromInc: inc,
		Ord:     m.myOrd,
		Round:   e.Round,
	})
	m.evaluate() // a lower-ordinal leader demotes us
}

func (m *Manager) onIncReply(e *wire.Envelope) {
	if m.state != StateLeading {
		return
	}
	if m.pendingDep[e.From] {
		// We asked for depinfo believing the peer live; it answered with an
		// incarnation: it is recovering. Fold it in and restart the round.
		m.learn(e.From, e.Ord, e.FromInc, true)
		m.evaluate()
		if m.state == StateLeading {
			m.lead()
		}
		return
	}
	m.learn(e.From, e.Ord, e.FromInc, true)
	m.maybeStartDepPhase()
	m.maybeFinish()
}

func (m *Manager) onDepRequest(e *wire.Envelope) {
	m.learn(e.From, e.Ord, e.FromInc, true)
	if m.state == StateWaiting || m.state == StateLeading {
		// We are recovering ourselves: identify as such so the leader folds
		// us into the round instead of waiting for our depinfo.
		me := m.reg[m.self]
		m.env.Send(e.From, &wire.Envelope{
			Kind:    wire.KindIncReply,
			FromInc: me.inc,
			Ord:     m.myOrd,
			Round:   e.Round,
		})
		m.evaluate()
		return
	}

	// Live (or replaying) path: install the leader's incarnation vector
	// FIRST — from here on, stale messages from failed incarnations are
	// rejected, which is what makes the gathered snapshot consistent
	// without blocking anybody (§3.3).
	m.host.MergeIncVec(e.IncVec)

	// A request naming its recovering members asks for a scoped reply:
	// only determinants those members will replay.
	depinfo := func() []det.Entry {
		if len(e.Members) > 0 {
			return m.host.DepInfoFor(e.Members)
		}
		return m.host.DepInfo()
	}

	reply := func() {
		m.env.Send(e.From, &wire.Envelope{
			Kind:    wire.KindDepReply,
			FromInc: m.selfInc(),
			Ord:     e.Ord,
			Round:   e.Round,
			Dets:    depinfo(),
		})
	}

	switch m.cfg.Style {
	case NonBlocking:
		reply()
	case Blocking:
		m.blockFor(e.Ord)
		reply()
	case Manetho:
		m.blockFor(e.Ord)
		// Manetho requires the reply recorded on stable storage before it
		// is sent; the synchronous write stalls the reply (and lengthens
		// everyone's gather).
		sz := len(depinfo()) * 32
		m.host.StableReplyWrite(e.Ord, sz, reply)
	default:
		panic(fmt.Sprintf("recovery: unknown style %v", m.cfg.Style))
	}
}

func (m *Manager) blockFor(ord ids.Ordinal) {
	m.blockedBy = ord
	if m.state == StateLive && !m.isBlocked {
		m.isBlocked = true
		m.host.SetLiveBlocked(true)
	}
}

func (m *Manager) unblock() {
	if m.isBlocked {
		m.isBlocked = false
		m.blockedBy = ids.Ordinal{}
		m.host.SetLiveBlocked(false)
	}
}

func (m *Manager) selfInc() ids.Incarnation {
	if r := m.reg[m.self]; r != nil {
		return r.inc
	}
	return 0
}

func (m *Manager) onDepReply(e *wire.Envelope) {
	if m.state != StateLeading || !m.phaseDep || e.Round != m.round {
		return
	}
	if !m.pendingDep[e.From] {
		return
	}
	if err := m.gathered.MergeEntries(e.Dets); err != nil {
		// Two processes disagreeing about a receipt order is a protocol
		// violation the simulator must surface loudly.
		panic(fmt.Sprintf("recovery: inconsistent depinfo from %v: %v", e.From, err))
	}
	delete(m.pendingDep, e.From)
	m.maybeFinish()
}

func (m *Manager) onRecoveryData(e *wire.Envelope) {
	m.learn(e.From, e.Ord, e.FromInc, true)
	if m.state != StateWaiting && m.state != StateLeading {
		return
	}
	if me := m.reg[m.self]; me != nil {
		me.served = true
	}
	m.abortGather() // we were leading but a lower ordinal served us
	m.state = StateReplaying
	if m.retry != nil {
		m.retry.Stop()
		m.retry = nil
	}
	if tr := m.env.Metrics().CurrentRecovery(); tr != nil {
		tr.GatheredAt = m.env.Now()
	}
	m.env.Tracer().End(m.waitSpan, m.env.Now())
	m.waitSpan = 0
	m.host.ApplyRecoveryData(e.Dets, e.IncVec)
}

func (m *Manager) onRecoveryComplete(e *wire.Envelope) {
	if r := m.reg[e.From]; r != nil {
		r.served = true
	}
	m.unblock()
	m.evaluate()
}

func (m *Manager) onRecovered(e *wire.Envelope) {
	if r := m.reg[e.From]; r != nil {
		r.active = false
	}
	m.evaluate()
}

// OnSuspect feeds failure-detector suspicions into the protocol.
func (m *Manager) OnSuspect(q ids.ProcID) {
	switch m.state {
	case StateLeading:
		if m.phaseDep && m.pendingDep[q] {
			// A live process failed before replying: fold it into the
			// recovering set and restart the gather (step 5 → "goto 4").
			// Step 4 then waits for its new incarnation — its announcement
			// after restart — before re-running the depinfo phase; this
			// wait (detection + restore of the second victim) is what
			// dominates the paper's second experiment.
			m.env.Logf("recovery: live %v failed mid-gather, restarting", q)
			m.learn(q, ids.Ordinal{}, 0, true)
			m.lead()
			return
		}
		if m.resetReCrashed(q) {
			// A recovering member died again mid-gather: restart the round
			// and wait for its fresh announcement.
			m.lead()
		}
	case StateWaiting:
		// If our presumed leader died, promote the next ordinal (§3.3:
		// "the next process in ordinal number becomes a recovery leader").
		wasLeader := m.minUnserved() == q
		if m.resetReCrashed(q) && wasLeader {
			m.env.Logf("recovery: leader %v suspected, taking over", q)
			m.evaluate()
		}
	case StateLive:
		if m.isBlocked && q == m.blockedBy.Proc {
			// The leader that blocked us died; unblock — its successor will
			// re-issue the request.
			m.unblock()
		}
	}
}

// resetReCrashed marks a suspected recovering member as awaiting a fresh
// announcement: its old ordinal and incarnation no longer describe it (it
// will come back with new ones), but it stays in the recovering set. It
// reports whether q was such a member.
func (m *Manager) resetReCrashed(q ids.ProcID) bool {
	r := m.reg[q]
	if r == nil || !r.active || r.served {
		return false
	}
	r.ord = ids.Ordinal{}
	r.inc = 0
	return true
}
