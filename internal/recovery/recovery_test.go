package recovery

import (
	"math/rand"
	"testing"
	"time"

	"rollrec/internal/bitset"
	"rollrec/internal/det"
	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/node"
	"rollrec/internal/trace"
	"rollrec/internal/vclock"
	"rollrec/internal/wire"
)

// fakeEnv is a minimal node.Env capturing sends and timers.
type fakeEnv struct {
	id     ids.ProcID
	n      int
	now    int64
	sent   []*wire.Envelope
	met    *metrics.Proc
	timers []*fakeTimer
	rng    *rand.Rand
}

type fakeTimer struct {
	at      int64
	fn      func()
	stopped bool
}

func (t *fakeTimer) Stop() { t.stopped = true }

func newFakeEnv(id ids.ProcID, n int) *fakeEnv {
	return &fakeEnv{id: id, n: n, met: metrics.NewProc(), rng: rand.New(rand.NewSource(1))}
}

func (f *fakeEnv) ID() ids.ProcID { return f.id }
func (f *fakeEnv) N() int         { return f.n }
func (f *fakeEnv) Now() int64     { return f.now }
func (f *fakeEnv) Send(to ids.ProcID, e *wire.Envelope) {
	c := e.Clone()
	c.From = f.id
	c.To = to
	f.sent = append(f.sent, c)
}
func (f *fakeEnv) After(d time.Duration, fn func()) node.Timer {
	t := &fakeTimer{at: f.now + int64(d), fn: fn}
	f.timers = append(f.timers, t)
	return t
}
func (f *fakeEnv) Busy(time.Duration)                         {}
func (f *fakeEnv) ReadStable(k string, cb func([]byte, bool)) { cb(nil, false) }
func (f *fakeEnv) WriteStable(k string, d []byte, cb func())  { cb() }
func (f *fakeEnv) Rand() *rand.Rand                           { return f.rng }
func (f *fakeEnv) Logf(string, ...any)                        {}
func (f *fakeEnv) Metrics() *metrics.Proc                     { return f.met }
func (f *fakeEnv) Tracer() trace.Tracer                       { return trace.Nop{} }

// take drains and returns sent envelopes of a given kind.
func (f *fakeEnv) take(kind wire.Kind) []*wire.Envelope {
	var out, rest []*wire.Envelope
	for _, e := range f.sent {
		if e.Kind == kind {
			out = append(out, e)
		} else {
			rest = append(rest, e)
		}
	}
	f.sent = rest
	return out
}

// fakeHost records Host calls.
type fakeHost struct {
	n          int
	dep        []det.Entry
	incVec     vclock.IncVector
	blocked    bool
	blockedLog []bool
	applied    [][]det.Entry
	writes     int
}

func newFakeHost(n int) *fakeHost {
	return &fakeHost{n: n, incVec: vclock.NewIncVector(n)}
}

func (h *fakeHost) DepInfo() []det.Entry { return h.dep }
func (h *fakeHost) DepInfoFor(procs []ids.ProcID) []det.Entry {
	var out []det.Entry
	for _, e := range h.dep {
		for _, p := range procs {
			if e.Det.Receiver == p {
				out = append(out, e)
				break
			}
		}
	}
	return out
}
func (h *fakeHost) MergeIncVec(v []ids.Incarnation) {
	h.incVec.Merge(vclock.FromSlice(v))
}
func (h *fakeHost) IncVecSnapshot() vclock.IncVector { return h.incVec.Clone() }
func (h *fakeHost) ApplyRecoveryData(entries []det.Entry, incVec []ids.Incarnation) {
	h.MergeIncVec(incVec)
	h.applied = append(h.applied, entries)
}
func (h *fakeHost) SetLiveBlocked(b bool) {
	h.blocked = b
	h.blockedLog = append(h.blockedLog, b)
}
func (h *fakeHost) StableReplyWrite(ord ids.Ordinal, size int, done func()) {
	h.writes++
	done()
}

func mkManager(id ids.ProcID, n int, style Style) (*Manager, *fakeEnv, *fakeHost) {
	env := newFakeEnv(id, n)
	host := newFakeHost(n)
	m := NewManager(Config{Style: style, F: 2, RetryEvery: time.Second}, host, env)
	return m, env, host
}

func entry(s ids.ProcID, ssn ids.SSN, r ids.ProcID, rsn ids.RSN, holders ...int) det.Entry {
	return det.Entry{
		Det:     det.Determinant{Msg: ids.MsgID{Sender: s, SSN: ssn}, Receiver: r, RSN: rsn},
		Holders: bitset.FromSlice(holders),
	}
}

func TestSoleRecoveryLeadsImmediately(t *testing.T) {
	m, env, _ := mkManager(1, 4, NonBlocking)
	m.StartRecovery(ids.Ordinal{Clock: 5, Proc: 1}, 2)
	if !m.Leading() {
		t.Fatalf("state = %v, want leading", m.State())
	}
	if got := len(env.take(wire.KindRecoveryAnnounce)); got != 3 {
		t.Fatalf("announces = %d, want 3", got)
	}
	reqs := env.take(wire.KindDepRequest)
	if len(reqs) != 3 {
		t.Fatalf("dep requests = %d, want 3 (all lives)", len(reqs))
	}
	// The incvector must already carry our new incarnation.
	for _, r := range reqs {
		if r.IncVec[1] != 2 {
			t.Fatalf("dep request incvec = %v, want inc 2 for p1", r.IncVec)
		}
	}
}

func TestGatherAggregatesAndCompletes(t *testing.T) {
	m, env, host := mkManager(1, 4, NonBlocking)
	m.StartRecovery(ids.Ordinal{Clock: 5, Proc: 1}, 2)
	env.take(wire.KindDepRequest)

	e1 := entry(0, 1, 2, 1, 0, 2)
	e2 := entry(2, 3, 0, 7, 2, 0)
	for _, from := range []ids.ProcID{0, 2, 3} {
		m.HandleMessage(&wire.Envelope{
			Kind: wire.KindDepReply, From: from, FromInc: 1, Round: 1,
			Dets: []det.Entry{e1, e2},
		})
	}
	if m.State() != StateReplaying {
		t.Fatalf("state = %v, want replaying", m.State())
	}
	if len(host.applied) != 1 {
		t.Fatalf("ApplyRecoveryData calls = %d, want 1", len(host.applied))
	}
	if len(host.applied[0]) != 2 {
		t.Fatalf("gathered %d determinants, want 2", len(host.applied[0]))
	}
	if got := len(env.take(wire.KindRecoveryComplete)); got != 3 {
		t.Fatalf("completes = %d, want 3", got)
	}
}

func TestStaleRoundRepliesIgnored(t *testing.T) {
	m, env, host := mkManager(1, 4, NonBlocking)
	m.StartRecovery(ids.Ordinal{Clock: 5, Proc: 1}, 2)
	env.take(wire.KindDepRequest)
	m.HandleMessage(&wire.Envelope{Kind: wire.KindDepReply, From: 0, FromInc: 1, Round: 99})
	if m.State() != StateLeading {
		t.Fatal("stale-round reply must not advance the gather")
	}
	if len(host.applied) != 0 {
		t.Fatal("no data must be applied from a stale round")
	}
}

func TestDemotionOnLowerOrdinal(t *testing.T) {
	m, env, _ := mkManager(1, 4, NonBlocking)
	m.StartRecovery(ids.Ordinal{Clock: 5, Proc: 1}, 2)
	if !m.Leading() {
		t.Fatal("expected to lead")
	}
	env.sent = nil
	m.HandleMessage(&wire.Envelope{
		Kind: wire.KindRecoveryAnnounce, From: 0, FromInc: 3,
		Ord: ids.Ordinal{Clock: 3, Proc: 0},
	})
	if m.State() != StateWaiting {
		t.Fatalf("state = %v, want waiting after seeing a lower ordinal", m.State())
	}
}

func TestHigherOrdinalAnnounceRestartsGather(t *testing.T) {
	m, env, _ := mkManager(1, 4, NonBlocking)
	m.StartRecovery(ids.Ordinal{Clock: 5, Proc: 1}, 2)
	env.sent = nil
	m.HandleMessage(&wire.Envelope{
		Kind: wire.KindRecoveryAnnounce, From: 2, FromInc: 4,
		Ord: ids.Ordinal{Clock: 9, Proc: 2},
	})
	if !m.Leading() {
		t.Fatalf("state = %v, want still leading", m.State())
	}
	// The restarted round queries the newcomer's incarnation and excludes
	// it from the live set.
	if got := len(env.take(wire.KindIncRequest)); got != 1 {
		t.Fatalf("inc requests = %d, want 1", got)
	}
	reqs := env.take(wire.KindDepRequest)
	if len(reqs) != 2 {
		t.Fatalf("dep requests = %d, want 2 (p0, p3)", len(reqs))
	}
	for _, r := range reqs {
		if r.To == 2 {
			t.Fatal("recovering p2 must not get a dep request")
		}
		if r.Round != 2 {
			t.Fatalf("round = %d, want 2", r.Round)
		}
		if r.IncVec[2] != 4 {
			t.Fatalf("incvec must carry p2's new incarnation: %v", r.IncVec)
		}
	}
}

func TestSuspectedLiveRestartsGather(t *testing.T) {
	m, env, _ := mkManager(1, 4, NonBlocking)
	m.StartRecovery(ids.Ordinal{Clock: 5, Proc: 1}, 2)
	env.sent = nil
	m.OnSuspect(2)
	if !m.Leading() {
		t.Fatal("leader must keep leading through a mid-gather failure")
	}
	// Step 4 must wait for the failed process's new incarnation (its
	// announcement after restart) before re-running the depinfo phase —
	// the wait that dominates the paper's second experiment.
	if got := len(env.take(wire.KindDepRequest)); got != 0 {
		t.Fatalf("dep requests before p2's announce = %d, want 0", got)
	}
	m.HandleMessage(&wire.Envelope{
		Kind: wire.KindRecoveryAnnounce, From: 2, FromInc: 2,
		Ord: ids.Ordinal{Clock: 9, Proc: 2},
	})
	reqs := env.take(wire.KindDepRequest)
	if len(reqs) != 2 {
		t.Fatalf("dep requests after p2's announce = %d, want 2 (p0, p3)", len(reqs))
	}
	round := reqs[0].Round
	for _, r := range reqs {
		if r.To == 2 {
			t.Fatal("recovering p2 must not get a dep request")
		}
		// The restarted vector carries p2's new incarnation so lives
		// reject its stale messages (paper §3.4 step 5 → goto 4).
		if r.IncVec[2] != 2 {
			t.Fatalf("incvec after announce = %v, want p2 at 2", r.IncVec)
		}
	}
	for _, from := range []ids.ProcID{0, 3} {
		m.HandleMessage(&wire.Envelope{Kind: wire.KindDepReply, From: from, FromInc: 1, Round: round})
	}
	if m.State() != StateReplaying {
		t.Fatalf("state = %v, want replaying once all lives replied", m.State())
	}
	data := env.take(wire.KindRecoveryData)
	if len(data) != 1 || data[0].To != 2 {
		t.Fatalf("recovery data = %v, want exactly one to p2", data)
	}
}

func TestNonBlockingLiveReplyDoesNotBlock(t *testing.T) {
	m, env, host := mkManager(2, 4, NonBlocking)
	m.HandleMessage(&wire.Envelope{
		Kind: wire.KindDepRequest, From: 1, FromInc: 2, Round: 1,
		Ord: ids.Ordinal{Clock: 5, Proc: 1}, IncVec: []ids.Incarnation{1, 2, 1, 1},
	})
	if host.blocked {
		t.Fatal("nonblocking style must not block the live process")
	}
	if got := len(env.take(wire.KindDepReply)); got != 1 {
		t.Fatalf("dep replies = %d, want 1", got)
	}
	if host.incVec.Get(1) != 2 {
		t.Fatal("live process must install the leader's incvector")
	}
}

func TestBlockingLiveBlocksUntilComplete(t *testing.T) {
	m, env, host := mkManager(2, 4, Blocking)
	m.HandleMessage(&wire.Envelope{
		Kind: wire.KindDepRequest, From: 1, FromInc: 2, Round: 1,
		Ord: ids.Ordinal{Clock: 5, Proc: 1}, IncVec: []ids.Incarnation{1, 2, 1, 1},
	})
	if !host.blocked {
		t.Fatal("blocking style must block on the dep request")
	}
	if got := len(env.take(wire.KindDepReply)); got != 1 {
		t.Fatalf("dep replies = %d, want 1", got)
	}
	m.HandleMessage(&wire.Envelope{
		Kind: wire.KindRecoveryComplete, From: 1, FromInc: 2,
		Ord: ids.Ordinal{Clock: 5, Proc: 1},
	})
	if host.blocked {
		t.Fatal("recovery complete must unblock")
	}
}

func TestBlockedLiveUnblocksOnLeaderDeath(t *testing.T) {
	m, _, host := mkManager(2, 4, Blocking)
	m.HandleMessage(&wire.Envelope{
		Kind: wire.KindDepRequest, From: 1, FromInc: 2, Round: 1,
		Ord: ids.Ordinal{Clock: 5, Proc: 1}, IncVec: []ids.Incarnation{1, 2, 1, 1},
	})
	if !host.blocked {
		t.Fatal("expected blocked")
	}
	m.OnSuspect(1)
	if host.blocked {
		t.Fatal("suspecting the blocking leader must unblock")
	}
}

func TestManethoWritesBeforeReply(t *testing.T) {
	m, env, host := mkManager(2, 4, Manetho)
	m.HandleMessage(&wire.Envelope{
		Kind: wire.KindDepRequest, From: 1, FromInc: 2, Round: 1,
		Ord: ids.Ordinal{Clock: 5, Proc: 1}, IncVec: []ids.Incarnation{1, 2, 1, 1},
	})
	if host.writes != 1 {
		t.Fatalf("stable writes = %d, want 1", host.writes)
	}
	if !host.blocked {
		t.Fatal("manetho style must block during the write")
	}
	if got := len(env.take(wire.KindDepReply)); got != 1 {
		t.Fatalf("dep replies = %d, want 1", got)
	}
}

func TestRecoveringProcessAnswersDepRequestWithIncReply(t *testing.T) {
	m, env, _ := mkManager(2, 4, NonBlocking)
	m.StartRecovery(ids.Ordinal{Clock: 9, Proc: 2}, 3)
	env.sent = nil
	// A concurrent leader (lower ord) believes we are live.
	m.HandleMessage(&wire.Envelope{
		Kind: wire.KindDepRequest, From: 1, FromInc: 2, Round: 1,
		Ord: ids.Ordinal{Clock: 5, Proc: 1}, IncVec: []ids.Incarnation{1, 2, 1, 1},
	})
	replies := env.take(wire.KindIncReply)
	if len(replies) != 1 {
		t.Fatalf("inc replies = %d, want 1 (identify as recovering)", len(replies))
	}
	if replies[0].FromInc != 3 || replies[0].Ord != (ids.Ordinal{Clock: 9, Proc: 2}) {
		t.Fatalf("inc reply content wrong: %+v", replies[0])
	}
	if len(env.take(wire.KindDepReply)) != 0 {
		t.Fatal("a recovering process must not answer with depinfo")
	}
	if m.State() != StateWaiting {
		t.Fatalf("state = %v, want waiting (deferring to lower ordinal)", m.State())
	}
}

func TestWaitingTakesOverWhenLeaderDies(t *testing.T) {
	m, env, _ := mkManager(2, 4, NonBlocking)
	m.StartRecovery(ids.Ordinal{Clock: 9, Proc: 2}, 3)
	m.HandleMessage(&wire.Envelope{
		Kind: wire.KindRecoveryAnnounce, From: 1, FromInc: 2,
		Ord: ids.Ordinal{Clock: 5, Proc: 1},
	})
	if m.State() != StateWaiting {
		t.Fatalf("state = %v, want waiting", m.State())
	}
	env.sent = nil
	m.OnSuspect(1)
	if !m.Leading() {
		t.Fatalf("state = %v, want leading after the leader's death", m.State())
	}
	// New round must wait for p1's (re-)announce: it is in R now.
	if got := len(env.take(wire.KindDepRequest)); got != 0 {
		t.Fatalf("dep requests = %d, want 0 before p1's incarnation is known", got)
	}
}

func TestReplayDoneBroadcastsRecovered(t *testing.T) {
	m, env, _ := mkManager(1, 4, NonBlocking)
	m.StartRecovery(ids.Ordinal{Clock: 5, Proc: 1}, 2)
	env.take(wire.KindDepRequest)
	for _, from := range []ids.ProcID{0, 2, 3} {
		m.HandleMessage(&wire.Envelope{Kind: wire.KindDepReply, From: from, FromInc: 1, Round: 1})
	}
	env.sent = nil
	m.ReplayDone()
	if m.State() != StateLive {
		t.Fatalf("state = %v, want live", m.State())
	}
	if got := len(env.take(wire.KindRecovered)); got != 3 {
		t.Fatalf("recovered broadcasts = %d, want 3", got)
	}
}

func TestConflictingDepinfoPanics(t *testing.T) {
	m, env, _ := mkManager(1, 4, NonBlocking)
	m.StartRecovery(ids.Ordinal{Clock: 5, Proc: 1}, 2)
	env.take(wire.KindDepRequest)
	m.HandleMessage(&wire.Envelope{
		Kind: wire.KindDepReply, From: 0, FromInc: 1, Round: 1,
		Dets: []det.Entry{entry(0, 1, 2, 5, 0)},
	})
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting receipt orders must panic")
		}
	}()
	m.HandleMessage(&wire.Envelope{
		Kind: wire.KindDepReply, From: 2, FromInc: 1, Round: 1,
		Dets: []det.Entry{entry(0, 1, 2, 6, 2)},
	})
}

func TestStyleStrings(t *testing.T) {
	if NonBlocking.String() != "nonblocking" || Blocking.String() != "blocking" ||
		Manetho.String() != "manetho" {
		t.Fatal("style names wrong")
	}
	if StateLive.String() != "live" || StateReplaying.String() != "replaying" {
		t.Fatal("state names wrong")
	}
}
