// Package recovery implements the paper's new recovery algorithm (§3) for
// the Family-Based Logging protocols, together with the blocking baseline
// and a Manetho-mode variant used by the evaluation.
//
// The algorithm in one paragraph (paper §3.3–3.4): a process that restarts
// after a crash restores its checkpoint, increments its incarnation, and
// acquires a system-wide monotonic recovery ordinal. The recovering process
// with the lowest ordinal becomes the *recovery leader*. The leader first
// collects the incarnation numbers of every recovering process (step 4),
// then sends every live process a depinfo request carrying the resulting
// incarnation vector (step 5); a live process installs the vector — which
// makes it reject stale messages from failed incarnations — and replies with
// its determinant log, *without blocking*. If a live process fails before
// replying, the leader restarts the gather with an updated vector; if the
// leader fails, the next ordinal takes over. Finally the leader distributes
// the aggregated depinfo to every recovering process (step 6), which then
// replay their executions concurrently.
//
// The ordinal is realized as a Lamport-timestamped announcement broadcast
// (ord = (clock, pid)); the paper only requires a monotonic total order with
// a takeover rule, which this provides.
package recovery

import (
	"fmt"
	"sort"
	"time"

	"rollrec/internal/det"
	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/trace"
	"rollrec/internal/vclock"
	"rollrec/internal/wire"
)

// Style selects the recovery algorithm variant under measurement.
type Style int

const (
	// NonBlocking is the paper's new algorithm: live processes answer
	// depinfo requests immediately and keep delivering application messages
	// throughout recovery.
	NonBlocking Style = iota
	// Blocking is the baseline the paper compares against: a live process
	// stops delivering application messages from the moment it receives the
	// depinfo request until the leader announces completion.
	Blocking
	// Manetho additionally requires each live process to record its reply
	// on stable storage before sending it (paper §2.2's description of the
	// Manetho recovery protocol), adding a synchronous storage write to the
	// critical path of every gather.
	Manetho
)

// String names the style.
func (s Style) String() string {
	switch s {
	case NonBlocking:
		return "nonblocking"
	case Blocking:
		return "blocking"
	case Manetho:
		return "manetho"
	default:
		return fmt.Sprintf("style(%d)", int(s))
	}
}

// State is the manager's protocol state.
type State int

const (
	// StateLive: normal operation.
	StateLive State = iota
	// StateWaiting: recovering, deferring to a lower-ordinal leader.
	StateWaiting
	// StateLeading: recovering and running the gather.
	StateLeading
	// StateReplaying: depinfo received, replay in progress.
	StateReplaying
)

// String names the state.
func (s State) String() string {
	return [...]string{"live", "waiting", "leading", "replaying"}[s]
}

// Host is what the manager needs from the protocol process it serves.
// All methods are invoked from the process's event context.
type Host interface {
	// DepInfo returns the full determinant log — the depinfo a live (or
	// replaying) process contributes to a gather.
	DepInfo() []det.Entry
	// DepInfoFor returns only the determinants whose receiver is one of the
	// given processes — the depinfo a scoped gather (Config.ScopedGather)
	// asks for. Replay only ever consults determinants naming a recovering
	// process as receiver, so the rest of the log is dead weight on the
	// wire; at n=1024 the difference is the bulk of the gather traffic.
	DepInfoFor(procs []ids.ProcID) []det.Entry
	// MergeIncVec installs newer incarnations from a leader's vector,
	// making stale messages rejectable.
	MergeIncVec(v []ids.Incarnation)
	// IncVecSnapshot returns the current incarnation vector.
	IncVecSnapshot() vclock.IncVector
	// ApplyRecoveryData merges the gathered depinfo and begins replay; the
	// host must call Manager.ReplayDone when replay completes.
	ApplyRecoveryData(entries []det.Entry, incVec []ids.Incarnation)
	// SetLiveBlocked starts/stops deferring application deliveries (only
	// meaningful for the Blocking and Manetho styles).
	SetLiveBlocked(blocked bool)
	// StableReplyWrite models Manetho's synchronous logging of the reply to
	// stable storage; done runs after the write is durable.
	StableReplyWrite(ord ids.Ordinal, size int, done func())
}

// Config parameterizes a manager.
type Config struct {
	Style Style
	// F is the failure budget (>= N selects the f = n instance, in which
	// the stable-storage pseudo-process also answers depinfo requests).
	F int
	// RetryEvery is the re-send period for unanswered gather requests and
	// unserved announcements.
	RetryEvery time.Duration
	// ScopedGather makes depinfo requests name the recovering members, so
	// repliers contribute only determinants those members will replay
	// (Host.DepInfoFor) instead of their full logs. Off by default: the
	// unscoped gather is the paper's literal protocol and the small-n golden
	// traces pin its frame sizes.
	ScopedGather bool
}

type regEntry struct {
	ord    ids.Ordinal
	inc    ids.Incarnation
	active bool // announced and not yet observed Recovered
	served bool // received its recovery data (to our knowledge)
}

// Manager runs the recovery protocol for one process. It is created fresh
// on every boot; all state here is volatile by design.
type Manager struct {
	cfg  Config
	host Host
	env  node.Env
	self ids.ProcID
	n    int

	state State
	myOrd ids.Ordinal

	reg map[ids.ProcID]*regEntry

	// Leader gather state.
	round      uint32
	phaseDep   bool // false: collecting incarnations (step 4); true: depinfo (step 5)
	pendingInc map[ids.ProcID]bool
	pendingDep map[ids.ProcID]bool
	incVec     vclock.IncVector
	gathered   *det.Log

	// Live-side blocking state.
	blockedBy ids.Ordinal
	isBlocked bool

	// Trace spans: the whole recovery (announce → recovery data) and the
	// current gather round (leader only).
	waitSpan   trace.SpanRef
	gatherSpan trace.SpanRef

	retry node.Timer
}

// NewManager returns a manager in StateLive.
func NewManager(cfg Config, host Host, env node.Env) *Manager {
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = time.Second
	}
	return &Manager{
		cfg:  cfg,
		host: host,
		env:  env,
		self: env.ID(),
		n:    env.N(),
		reg:  make(map[ids.ProcID]*regEntry),
	}
}

// State returns the current protocol state.
func (m *Manager) State() State { return m.state }

// Leading reports whether this process is the current recovery leader.
func (m *Manager) Leading() bool { return m.state == StateLeading }

// Ord returns this process's recovery ordinal (zero when live).
func (m *Manager) Ord() ids.Ordinal { return m.myOrd }

// StartRecovery begins the recovery protocol after the host has restored
// its checkpoint and incremented its incarnation (steps 1–3 of §3.4).
func (m *Manager) StartRecovery(ord ids.Ordinal, inc ids.Incarnation) {
	m.myOrd = ord
	m.state = StateWaiting
	m.reg[m.self] = &regEntry{ord: ord, inc: inc, active: true}
	m.waitSpan = m.env.Tracer().Begin(m.env.Now(), int32(m.self),
		trace.EvWaiting, trace.Tag{Inc: uint32(inc)})
	m.announce()
	m.armRetry()
	m.evaluate()
}

func (m *Manager) announce() {
	m.env.Tracer().Instant(m.env.Now(), int32(m.self), trace.EvAnnounce,
		trace.Tag{Inc: uint32(m.reg[m.self].inc)})
	e := &wire.Envelope{
		Kind:    wire.KindRecoveryAnnounce,
		FromInc: m.reg[m.self].inc,
		Ord:     m.myOrd,
	}
	m.broadcast(e, false)
}

// broadcast sends a copy of e to every application peer; withStorage also
// includes the stable-storage pseudo-process (f = n instance).
func (m *Manager) broadcast(e *wire.Envelope, withStorage bool) {
	for p := 0; p < m.n; p++ {
		if ids.ProcID(p) == m.self {
			continue
		}
		c := e.Clone()
		c.To = ids.ProcID(p)
		m.env.Send(ids.ProcID(p), c)
	}
	if withStorage && m.cfg.F >= m.n {
		c := e.Clone()
		c.To = ids.StorageProc
		m.env.Send(ids.StorageProc, c)
	}
}

func (m *Manager) armRetry() {
	if m.retry != nil {
		m.retry.Stop()
	}
	m.retry = m.env.After(m.cfg.RetryEvery, func() {
		m.retry = nil
		switch m.state {
		case StateWaiting:
			// Re-announce until served: covers announcements lost to a
			// leader that was down when we broadcast.
			m.announce()
			m.armRetry()
		case StateLeading:
			m.resendPending()
			m.armRetry()
		}
	})
}

// evaluate decides whether we should lead: the lowest-ordinal active,
// unserved recovery leads (paper §3.3).
func (m *Manager) evaluate() {
	if m.state == StateLive || m.state == StateReplaying {
		return
	}
	me := m.reg[m.self]
	if me == nil || !me.active || me.served {
		return
	}
	min := m.minUnserved()
	switch {
	case min == m.self && m.state != StateLeading:
		m.lead()
	case min != m.self && m.state == StateLeading:
		m.env.Logf("recovery: demoting, %v has a lower ordinal", min)
		m.abortGather()
		m.state = StateWaiting
	}
}

// regProcs returns the registry keys in ascending order so every send loop
// is deterministic.
func (m *Manager) regProcs() []ids.ProcID {
	keys := make([]int, 0, len(m.reg))
	//rollvet:allow maporder -- keys are fully sorted below before any use
	for p := range m.reg {
		keys = append(keys, int(p))
	}
	sort.Ints(keys)
	out := make([]ids.ProcID, len(keys))
	for i, k := range keys {
		out[i] = ids.ProcID(k)
	}
	return out
}

// sortedPending returns map keys in ascending order (storage last).
func sortedPending(set map[ids.ProcID]bool) []ids.ProcID {
	keys := make([]int, 0, len(set))
	storage := false
	//rollvet:allow maporder -- keys are fully sorted below (storage pinned last) before any use
	for p := range set {
		if p.IsStorage() {
			storage = true
			continue
		}
		keys = append(keys, int(p))
	}
	sort.Ints(keys)
	out := make([]ids.ProcID, 0, len(keys)+1)
	for _, k := range keys {
		out = append(out, ids.ProcID(k))
	}
	if storage {
		out = append(out, ids.StorageProc)
	}
	return out
}

// minUnserved returns the process with the lowest active unserved ordinal.
func (m *Manager) minUnserved() ids.ProcID {
	best := ids.Nobody
	var bestOrd ids.Ordinal
	for _, p := range m.regProcs() {
		r := m.reg[p]
		if !r.active || r.served || r.ord.IsZero() {
			continue
		}
		if best == ids.Nobody || r.ord.Less(bestOrd) {
			best, bestOrd = p, r.ord
		}
	}
	return best
}

// abortGather closes an open gather span with an explicit abort marker; it
// is a no-op when no gather is in flight.
func (m *Manager) abortGather() {
	if m.gatherSpan == 0 {
		return
	}
	tr := m.env.Tracer()
	tr.Instant(m.env.Now(), int32(m.self), trace.EvGatherAbort,
		trace.Tag{Inc: uint32(m.selfInc()), Arg: int64(m.round)})
	tr.End(m.gatherSpan, m.env.Now())
	m.gatherSpan = 0
}

// lead starts (or restarts) the gather as leader.
func (m *Manager) lead() {
	m.abortGather()
	m.state = StateLeading
	m.round++
	m.gatherSpan = m.env.Tracer().Begin(m.env.Now(), int32(m.self),
		trace.EvGather, trace.Tag{Inc: uint32(m.reg[m.self].inc), Arg: int64(m.round)})
	if tr := m.env.Metrics().CurrentRecovery(); tr != nil {
		tr.WasLeader = true
		tr.Rounds = int(m.round)
	}
	m.gathered = det.NewLog(det.Config{N: m.n, F: m.cfg.F})
	m.incVec = m.host.IncVecSnapshot()
	m.pendingInc = make(map[ids.ProcID]bool)
	m.pendingDep = make(map[ids.ProcID]bool)

	// Step 4: collect incarnations of every recovering process. Members we
	// already heard an announce from are prefilled; members we only suspect
	// (a live process that died mid-gather) stay pending until their
	// announce arrives.
	for _, p := range m.regProcs() {
		r := m.reg[p]
		if !r.active || r.served || p == m.self {
			continue
		}
		if r.inc != 0 {
			m.incVec.Bump(p, r.inc)
		}
		m.pendingInc[p] = true
		if !r.ord.IsZero() {
			m.env.Send(p, &wire.Envelope{
				Kind:    wire.KindIncRequest,
				FromInc: m.reg[m.self].inc,
				Ord:     m.myOrd,
				Round:   m.round,
			})
		}
	}
	m.incVec.Bump(m.self, m.reg[m.self].inc)
	m.env.Logf("recovery: leading round %d, ord %v", m.round, m.myOrd)
	m.maybeStartDepPhase()
}

// maybeStartDepPhase transitions to step 5 once every recovering process's
// incarnation is known.
func (m *Manager) maybeStartDepPhase() {
	if m.state != StateLeading {
		return
	}
	for p := range m.pendingInc {
		if r := m.reg[p]; r == nil || r.inc == 0 {
			return // still waiting for an announce or IncReply
		}
	}
	m.pendingInc = make(map[ids.ProcID]bool)
	m.phaseDep = true
	for p := 0; p < m.n; p++ {
		pid := ids.ProcID(p)
		if pid == m.self || m.isRecoveringMember(pid) {
			continue
		}
		m.pendingDep[pid] = true
	}
	if m.cfg.F >= m.n {
		m.pendingDep[ids.StorageProc] = true
	}
	m.sendDepRequests()
	m.maybeFinish()
}

func (m *Manager) isRecoveringMember(p ids.ProcID) bool {
	r := m.reg[p]
	return r != nil && r.active && !r.served
}

// recoveringMembers returns the active, unserved recovering set (self
// included) in ascending process order — the receivers whose determinants a
// scoped gather must collect.
func (m *Manager) recoveringMembers() []ids.ProcID {
	var out []ids.ProcID
	for _, p := range m.regProcs() {
		if m.isRecoveringMember(p) {
			out = append(out, p)
		}
	}
	return out
}

func (m *Manager) sendDepRequests() {
	var members []ids.ProcID
	if m.cfg.ScopedGather {
		members = m.recoveringMembers()
	}
	for _, p := range sortedPending(m.pendingDep) {
		m.env.Send(p, &wire.Envelope{
			Kind:    wire.KindDepRequest,
			FromInc: m.reg[m.self].inc,
			Ord:     m.myOrd,
			Round:   m.round,
			IncVec:  m.incVec.Slice(),
			Members: members,
		})
	}
}

func (m *Manager) resendPending() {
	if !m.phaseDep {
		for _, p := range sortedPending(m.pendingInc) {
			if r := m.reg[p]; r != nil && !r.ord.IsZero() && r.inc == 0 {
				m.env.Send(p, &wire.Envelope{
					Kind:    wire.KindIncRequest,
					FromInc: m.reg[m.self].inc,
					Ord:     m.myOrd,
					Round:   m.round,
				})
			}
		}
		return
	}
	m.sendDepRequests()
}

// maybeFinish completes the gather (step 6) when every live process has
// replied.
func (m *Manager) maybeFinish() {
	if m.state != StateLeading || !m.phaseDep || len(m.pendingDep) > 0 {
		return
	}
	data := m.gathered.All()
	vec := m.incVec.Slice()
	m.env.Logf("recovery: gather complete, %d determinants", len(data))
	for _, p := range m.regProcs() {
		r := m.reg[p]
		if p == m.self || !r.active || r.served {
			continue
		}
		r.served = true
		m.env.Send(p, &wire.Envelope{
			Kind:    wire.KindRecoveryData,
			FromInc: m.reg[m.self].inc,
			Ord:     m.myOrd,
			Round:   m.round,
			Dets:    data,
			IncVec:  vec,
		})
	}
	// Unblock the live processes.
	m.broadcast(&wire.Envelope{
		Kind:    wire.KindRecoveryComplete,
		FromInc: m.reg[m.self].inc,
		Ord:     m.myOrd,
	}, false)
	// Serve ourselves last: ApplyRecoveryData starts replay synchronously.
	m.reg[m.self].served = true
	m.phaseDep = false
	m.state = StateReplaying
	if tr := m.env.Metrics().CurrentRecovery(); tr != nil {
		tr.GatheredAt = m.env.Now()
	}
	m.env.Tracer().End(m.gatherSpan, m.env.Now())
	m.gatherSpan = 0
	m.env.Tracer().End(m.waitSpan, m.env.Now())
	m.waitSpan = 0
	m.host.ApplyRecoveryData(data, vec)
}

// ReplayDone is called by the host when its replay finished; the process
// rejoins as live and tells the world.
func (m *Manager) ReplayDone() {
	m.state = StateLive
	if r := m.reg[m.self]; r != nil {
		r.active = false
	}
	if m.retry != nil {
		m.retry.Stop()
		m.retry = nil
	}
	m.broadcast(&wire.Envelope{
		Kind:    wire.KindRecovered,
		FromInc: m.reg[m.self].inc,
		Ord:     m.myOrd,
	}, false)
	m.myOrd = ids.Ordinal{}
}
