package timeline

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"time"
)

// SchemaVersion identifies the export layout. Bump it on any change to the
// tick row schema or to the meaning of a series; Decode refuses exports
// newer than this binary (same discipline as bench snapshots).
//
// v2 added the optional per-tier series for the traffic workload
// (meta.tiers, inflight_req, tier_output). Untiered v2 exports are
// field-for-field identical to v1, and Decode still accepts v1 files.
const SchemaVersion = 2

// Marker kinds: the crash and recovery-phase boundaries annotated on the
// timeline. Renderers and tests match on these strings.
const (
	MarkCrash       = "crash"
	MarkRestart     = "restart"
	MarkRestored    = "restored"
	MarkGathered    = "gathered"
	MarkRecoveryEnd = "recovery-end"
)

// markerRank orders marker kinds at equal (time, proc): lifecycle order.
var markerRank = map[string]int{
	MarkCrash:       0,
	MarkRestart:     1,
	MarkRestored:    2,
	MarkGathered:    3,
	MarkRecoveryEnd: 4,
}

// Meta describes a timeline export.
type Meta struct {
	Schema     int     `json:"schema"`
	Label      string  `json:"label"`
	IntervalMS float64 `json:"interval_ms"`
	N          int     `json:"n"`
	// Tiers is the tier partition of the N processes when the run hosted
	// the multi-tier traffic workload; absent otherwise.
	Tiers []int `json:"tiers,omitempty"`
}

// WindowDist is one tumbling window's latency distribution: the
// observations recorded between the previous tick and this one.
type WindowDist struct {
	N      int64   `json:"n"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
}

// Tick is one sample row. Cluster-wide gauges are scalars; per-process
// gauges are arrays indexed by process id; Phases packs one phase rune per
// process (see Phase.Rune).
type Tick struct {
	TMS      float64 `json:"t_ms"`
	Queue    int     `json:"queue"`
	InFlight int     `json:"inflight"`
	Phases   string  `json:"phases"`
	Journal  []int   `json:"journal"`
	Lag      []int   `json:"lag"`
	Stable   []int64 `json:"stable_bytes"`
	Backlog  []int   `json:"backlog"`
	// Oldest is the per-process backlog age: milliseconds since the oldest
	// still-open output was requested (0 when nothing is open). Unlike the
	// open count — which freezes when a crashed process stops requesting —
	// this keeps climbing through an outage and drops only when recovery
	// releases the straddling outputs.
	Oldest []float64 `json:"oldest_open_ms"`
	// Delivery and Output are this window's latency percentiles for frame
	// delivery and output commit respectively.
	Delivery WindowDist `json:"delivery"`
	Output   WindowDist `json:"output_commit"`
	// InflightReq and TierOutput are the per-tier series (indexed like
	// Meta.Tiers): open requests held by each tier at the sample instant,
	// and each tier's windowed output-commit percentiles. Present only on
	// tiered runs.
	InflightReq []int        `json:"inflight_req,omitempty"`
	TierOutput  []WindowDist `json:"tier_output,omitempty"`
}

// Marker is one annotated instant on the timeline.
type Marker struct {
	TMS  float64 `json:"t_ms"`
	Proc int     `json:"proc"`
	Kind string  `json:"kind"`
}

// Export is the versioned, machine-readable result of one sampled run.
type Export struct {
	Meta    Meta     `json:"meta"`
	Ticks   []Tick   `json:"ticks"`
	Markers []Marker `json:"markers"`
}

// ms rounds a duration to 1 µs and reports it in milliseconds — the same
// deterministic rounding the bench snapshots use, applied once at
// aggregation time.
func ms(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Microsecond)) / 1000
}

func sortMarkers(ms []Marker) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].TMS != ms[j].TMS {
			return ms[i].TMS < ms[j].TMS
		}
		if ms[i].Proc != ms[j].Proc {
			return ms[i].Proc < ms[j].Proc
		}
		return markerRank[ms[i].Kind] < markerRank[ms[j].Kind]
	})
}

// Encode writes the canonical byte-stable JSON form: two-space indent,
// struct-ordered fields, trailing newline.
func (e *Export) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes the export to path in canonical form.
func (e *Export) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Decode reads an export, rejecting schemas newer than this binary.
func Decode(r io.Reader) (*Export, error) {
	var e Export
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("timeline: malformed export: %w", err)
	}
	switch {
	case e.Meta.Schema < 1:
		return nil, fmt.Errorf("timeline: export schema %d invalid (earliest is 1)", e.Meta.Schema)
	case e.Meta.Schema > SchemaVersion:
		return nil, fmt.Errorf("timeline: export schema %d is newer than this binary's %d; rebuild or regenerate",
			e.Meta.Schema, SchemaVersion)
	}
	return &e, nil
}

// ReadFile reads an export from path.
func ReadFile(path string) (*Export, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	e, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// csvHeader is the CSV column set: one row per tick, cluster-level values
// (per-process arrays are summed; phases stay packed). CSV is the artifact
// form — spreadsheet-friendly, still byte-deterministic. Tiered exports
// append per-tier columns after these; untiered exports keep exactly this
// set, so pre-v2 CSV artifacts are byte-stable.
var csvHeader = []string{
	"t_ms", "queue", "inflight", "phases",
	"journal", "lag", "stable_bytes", "backlog", "oldest_open_ms",
	"delivery_n", "delivery_p50_ms", "delivery_p99_ms", "delivery_p999_ms",
	"output_n", "output_p50_ms", "output_p99_ms", "output_p999_ms",
}

// EncodeCSV writes the cluster-level CSV form.
func (e *Export) EncodeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := csvHeader
	if len(e.Meta.Tiers) > 0 {
		header = append([]string(nil), csvHeader...)
		for t := range e.Meta.Tiers {
			header = append(header,
				fmt.Sprintf("inflight_req_t%d", t),
				fmt.Sprintf("output_t%d_n", t),
				fmt.Sprintf("output_t%d_p50_ms", t),
				fmt.Sprintf("output_t%d_p99_ms", t),
				fmt.Sprintf("output_t%d_p999_ms", t),
			)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	fms := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	for _, t := range e.Ticks {
		var journal, lag, backlog int
		var stable int64
		for i := range t.Journal {
			journal += t.Journal[i]
			lag += t.Lag[i]
			stable += t.Stable[i]
			backlog += t.Backlog[i]
		}
		// Backlog age is a worst-case gauge, so the cluster column takes the
		// maximum, not a meaningless sum of ages.
		var oldest float64
		for _, v := range t.Oldest {
			if v > oldest {
				oldest = v
			}
		}
		rec := []string{
			fms(t.TMS),
			strconv.Itoa(t.Queue),
			strconv.Itoa(t.InFlight),
			t.Phases,
			strconv.Itoa(journal),
			strconv.Itoa(lag),
			strconv.FormatInt(stable, 10),
			strconv.Itoa(backlog),
			fms(oldest),
			strconv.FormatInt(t.Delivery.N, 10),
			fms(t.Delivery.P50MS), fms(t.Delivery.P99MS), fms(t.Delivery.P999MS),
			strconv.FormatInt(t.Output.N, 10),
			fms(t.Output.P50MS), fms(t.Output.P99MS), fms(t.Output.P999MS),
		}
		for ti := range e.Meta.Tiers {
			var inflight int
			var dist WindowDist
			if ti < len(t.InflightReq) {
				inflight = t.InflightReq[ti]
			}
			if ti < len(t.TierOutput) {
				dist = t.TierOutput[ti]
			}
			rec = append(rec,
				strconv.Itoa(inflight),
				strconv.FormatInt(dist.N, 10),
				fms(dist.P50MS), fms(dist.P99MS), fms(dist.P999MS),
			)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the CSV form to path.
func (e *Export) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.EncodeCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ClusterBacklog returns the summed output-commit backlog series, one value
// per tick — the headline "what does a user-visible stall look like" lane.
func (e *Export) ClusterBacklog() []int {
	out := make([]int, len(e.Ticks))
	for i, t := range e.Ticks {
		for _, b := range t.Backlog {
			out[i] += b
		}
	}
	return out
}

// ProcBacklog returns process p's backlog series, one value per tick.
func (e *Export) ProcBacklog(p int) []int {
	out := make([]int, len(e.Ticks))
	for i, t := range e.Ticks {
		if p < len(t.Backlog) {
			out[i] = t.Backlog[p]
		}
	}
	return out
}

// ProcOldest returns process p's backlog-age series (milliseconds since its
// oldest open output was requested), one value per tick.
func (e *Export) ProcOldest(p int) []float64 {
	out := make([]float64, len(e.Ticks))
	for i, t := range e.Ticks {
		if p < len(t.Oldest) {
			out[i] = t.Oldest[p]
		}
	}
	return out
}

// MarkerAt returns the first marker of the given kind for proc (-1: any
// proc), and whether one exists.
func (e *Export) MarkerAt(kind string, proc int) (Marker, bool) {
	for _, m := range e.Markers {
		if m.Kind == kind && (proc < 0 || m.Proc == proc) {
			return m, true
		}
	}
	return Marker{}, false
}
