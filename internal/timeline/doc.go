// Package timeline is the time-series telemetry subsystem: a deterministic
// sampler that snapshots per-process and cluster-wide gauges at a fixed
// virtual-time interval, so the transient phenomena the paper's argument is
// about — blocked time, orphan rollback, output-commit stalls during a
// failure — become series over time instead of end-of-run aggregates.
//
// The Collector is runtime-agnostic: it never schedules anything itself.
// A sampler owned by the hosting runtime calls Tick at each boundary — the
// simulator fires it from inside the event loop at exact virtual-time
// boundaries without enqueueing events (sim.Kernel.SetSampler), so enabling
// sampling perturbs neither the event sequence nor the golden trace hash;
// the livenet runtime drives the same Collector from a wall-clock ticker,
// making sim and live timelines directly comparable.
//
// Sampled series per tick: event-queue depth and in-flight frames (kernel
// gauges), per-process phase (live/blocked/restoring/recovering/replaying/
// down), determinant-journal size and stability lag (entries below the f+1
// holder watermark), stable-storage bytes, output-commit backlog (requested
// minus released, from the output ledger) with the age of the oldest open
// output (the series that climbs from a crash until recovery releases the
// straddlers), and windowed p50/p99/p99.9 of delivery and output-commit
// latency over tumbling windows (one window per tick, computed as
// histogram deltas — see trace.Histogram.Delta).
//
// Schema v2 adds the multi-tier lanes the open-loop traffic engine needs
// (DESIGN §12): Config.Tiers partitions the process space into contiguous
// tiers (clients, frontends, backends), each tick then carries a per-tier
// in-flight request gauge (summed over the tier's processes, probed from
// any app exposing InflightReqs) and a per-tier tumbling-window
// output-commit distribution, so a backend crash is visible as the client
// tier's release stall while the backend tier's own window runs dry.
// Untiered runs omit the new fields entirely — their JSON and CSV stay
// byte-identical to the v1 form, and Decode still accepts v1 files.
//
// Export is schema-versioned, byte-deterministic JSON/CSV in the same
// discipline as BENCH snapshots; crash and recovery-phase boundaries are
// annotated as markers synthesized from the per-process recovery traces.
package timeline
