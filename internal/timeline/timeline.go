package timeline

import (
	"sync"
	"time"

	"rollrec/internal/metrics"
	"rollrec/internal/trace"
)

// Phase is a process's lifecycle state at a sample instant. The values are
// a strict superset of fbl.Mode: Blocked distinguishes a live process that
// is deferring application deliveries (the paper's intrusion), and Down
// covers the interval between crash and restart.
type Phase uint8

const (
	// PhaseLive: normal operation.
	PhaseLive Phase = iota
	// PhaseBlocked: live but deferring application deliveries.
	PhaseBlocked
	// PhaseRestoring: reading the checkpoint from stable storage.
	PhaseRestoring
	// PhaseRecovering: running the recovery protocol.
	PhaseRecovering
	// PhaseReplaying: re-consuming logged deliveries.
	PhaseReplaying
	// PhaseDown: no process image (crash → restart).
	PhaseDown
)

// phaseRunes encodes phases one byte per process in tick rows; the export
// stays compact and diffs stay line-per-tick readable.
var phaseRunes = [...]byte{'L', 'B', 'S', 'R', 'P', 'D'}

// Rune returns the single-character encoding used in exports.
func (p Phase) Rune() byte { return phaseRunes[p] }

// String names the phase.
func (p Phase) String() string {
	return [...]string{"live", "blocked", "restoring", "recovering", "replaying", "down"}[p]
}

// ProcGauges is one process's sampled state.
type ProcGauges struct {
	// Phase is the lifecycle state.
	Phase Phase
	// Journal is the number of determinant-log entries currently held.
	Journal int
	// Lag is the stability lag: entries below the f+1-holder watermark,
	// i.e. determinants whose loss would still orphan somebody.
	Lag int
	// StableBytes is the process's stable-storage footprint (checkpoints
	// and logs).
	StableBytes int64
	// Backlog is the output-commit backlog: outputs requested by this
	// process whose commit rule has not yet fired.
	Backlog int
	// Inflight is the number of open requests this process holds when it
	// runs the multi-tier traffic workload (admitted-but-unreleased at a
	// client, fanning-in at a frontend); zero elsewhere. Summed per tier
	// into the inflight_req series when the collector is tiered.
	Inflight int
	// OldestOpen is the virtual instant (ns) the oldest still-open output
	// was requested, or 0 when none are open. The collector turns it into
	// the backlog-age series (oldest_open_ms): while the commit rule can
	// fire this sits near the steady-state commit latency; from the moment
	// a failure freezes the rule it climbs linearly, and it falls back only
	// when recovery releases the straddling outputs.
	OldestOpen int64
}

// Probes are the read-only callbacks a runtime binds so the collector can
// observe it. Nil members are legal and read as zero — the livenet runtime,
// for example, has no event queue to measure.
type Probes struct {
	// Queue returns the runtime-wide event-queue depth and the number of
	// frames in flight on the network.
	Queue func() (depth, inflight int)
	// Proc returns process i's gauges (i in 0..N-1).
	Proc func(i int) ProcGauges
	// Metrics returns process i's accumulator; the collector computes the
	// windowed delivery and output-commit percentiles from its histograms.
	Metrics func(i int) *metrics.Proc
	// Markers is evaluated once, at Export time; it returns the crash and
	// recovery-phase boundary annotations (see RecoveryMarkers).
	Markers func() []Marker
}

// Config parameterizes a collector.
type Config struct {
	// Interval is the sampling period in virtual time (> 0).
	Interval time.Duration
	// N is the number of application processes.
	N int
	// Label names the run in the export meta.
	Label string
	// Tiers, when non-empty, partitions the N processes into consecutive
	// id ranges (e.g. [2 2 4]: clients, frontends, backends) and turns on
	// the per-tier series: summed in-flight requests and per-tier windowed
	// output-commit percentiles. Sizes must be positive and sum to N.
	Tiers []int
}

// DefaultInterval is the sampling period the CLIs default to: fine enough
// to resolve a sub-second recovery, coarse enough that a 30 s run stays a
// few hundred rows.
const DefaultInterval = 100 * time.Millisecond

// Collector accumulates tick rows. It is safe for concurrent use (the
// livenet sampler ticks from its own goroutine); the simulator's
// single-threaded ticks pay one uncontended lock each.
type Collector struct {
	cfg Config

	mu    sync.Mutex
	pr    Probes
	ticks []Tick
	// Previous-window histogram snapshots for the tumbling-window deltas,
	// merged across processes.
	prevDelivery trace.Histogram
	prevOutput   trace.Histogram
	prevTierOut  []trace.Histogram

	// tierOf maps a process id to its tier index; nil when untiered.
	tierOf []int
}

// New returns an empty collector. Interval must be positive and N at least 1.
func New(cfg Config) *Collector {
	if cfg.Interval <= 0 {
		panic("timeline: non-positive sampling interval")
	}
	if cfg.N < 1 {
		panic("timeline: collector needs at least one process")
	}
	c := &Collector{cfg: cfg}
	if len(cfg.Tiers) > 0 {
		c.tierOf = make([]int, 0, cfg.N)
		for t, size := range cfg.Tiers {
			if size < 1 {
				panic("timeline: tier sizes must be positive")
			}
			for j := 0; j < size; j++ {
				c.tierOf = append(c.tierOf, t)
			}
		}
		if len(c.tierOf) != cfg.N {
			panic("timeline: tier sizes must sum to N")
		}
		c.prevTierOut = make([]trace.Histogram, len(cfg.Tiers))
	}
	return c
}

// Interval returns the sampling period.
func (c *Collector) Interval() time.Duration { return c.cfg.Interval }

// N returns the number of application processes.
func (c *Collector) N() int { return c.cfg.N }

// Bind attaches the runtime probes. Call before the first Tick; rebinding
// mid-run is legal (the experiments harness binds when the cluster exists).
func (c *Collector) Bind(p Probes) {
	c.mu.Lock()
	c.pr = p
	c.mu.Unlock()
}

// Ticks returns the number of samples taken so far.
func (c *Collector) Ticks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ticks)
}

// Tick takes one sample at virtual time now (nanoseconds). The hosting
// runtime's sampler calls it at each interval boundary; the collector
// trusts the caller's cadence and stamps the row with now.
func (c *Collector) Tick(now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()

	row := Tick{
		TMS:     ms(time.Duration(now)),
		Phases:  "",
		Journal: make([]int, c.cfg.N),
		Lag:     make([]int, c.cfg.N),
		Stable:  make([]int64, c.cfg.N),
		Backlog: make([]int, c.cfg.N),
		Oldest:  make([]float64, c.cfg.N),
	}
	if c.pr.Queue != nil {
		row.Queue, row.InFlight = c.pr.Queue()
	}
	if c.tierOf != nil {
		row.InflightReq = make([]int, len(c.cfg.Tiers))
	}
	phases := make([]byte, c.cfg.N)
	for i := 0; i < c.cfg.N; i++ {
		g := ProcGauges{}
		if c.pr.Proc != nil {
			g = c.pr.Proc(i)
		}
		phases[i] = g.Phase.Rune()
		row.Journal[i] = g.Journal
		row.Lag[i] = g.Lag
		row.Stable[i] = g.StableBytes
		row.Backlog[i] = g.Backlog
		if g.OldestOpen > 0 {
			row.Oldest[i] = ms(time.Duration(now - g.OldestOpen))
		}
		if c.tierOf != nil {
			row.InflightReq[c.tierOf[i]] += g.Inflight
		}
	}
	row.Phases = string(phases)

	// Tumbling windows: merge the cumulative per-process histograms, then
	// diff against the previous tick's merge. The delta is exactly the
	// observations recorded inside this window. When tiered, the output
	// histograms are additionally merged per tier so each tier gets its
	// own windowed commit-latency lane.
	var delivery, outputs trace.Histogram
	var tierOut []trace.Histogram
	if c.tierOf != nil {
		tierOut = make([]trace.Histogram, len(c.cfg.Tiers))
	}
	if c.pr.Metrics != nil {
		for i := 0; i < c.cfg.N; i++ {
			if m := c.pr.Metrics(i); m != nil {
				delivery.Merge(&m.DeliveryHist)
				outputs.Merge(&m.OutputHist)
				if c.tierOf != nil {
					tierOut[c.tierOf[i]].Merge(&m.OutputHist)
				}
			}
		}
	}
	row.Delivery = windowDist(delivery.Delta(&c.prevDelivery))
	row.Output = windowDist(outputs.Delta(&c.prevOutput))
	c.prevDelivery = delivery
	c.prevOutput = outputs
	if c.tierOf != nil {
		row.TierOutput = make([]WindowDist, len(c.cfg.Tiers))
		for t := range tierOut {
			row.TierOutput[t] = windowDist(tierOut[t].Delta(&c.prevTierOut[t]))
			c.prevTierOut[t] = tierOut[t]
		}
	}

	c.ticks = append(c.ticks, row)
}

// windowDist reduces one window's histogram to the export row quantiles.
func windowDist(h trace.Histogram) WindowDist {
	if h.Count() == 0 {
		return WindowDist{}
	}
	return WindowDist{
		N:      h.Count(),
		P50MS:  ms(h.Quantile(0.50)),
		P99MS:  ms(h.Quantile(0.99)),
		P999MS: ms(h.Quantile(0.999)),
	}
}

// Export freezes the collected series into the schema-versioned form.
// Markers are computed now (runs usually export after the horizon) and
// sorted canonically so repeated exports are byte-identical.
func (c *Collector) Export() *Export {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &Export{
		Meta: Meta{
			Schema:     SchemaVersion,
			Label:      c.cfg.Label,
			IntervalMS: ms(c.cfg.Interval),
			N:          c.cfg.N,
			Tiers:      append([]int(nil), c.cfg.Tiers...),
		},
		Ticks: append([]Tick(nil), c.ticks...),
	}
	if c.pr.Markers != nil {
		e.Markers = append([]Marker(nil), c.pr.Markers()...)
	}
	sortMarkers(e.Markers)
	return e
}

// RecoveryMarkers synthesizes the crash and recovery-phase boundary markers
// from the per-process recovery traces: every non-zero phase timestamp of
// every recovery becomes one marker. The metrics layer records these at the
// exact virtual instant the phase boundary happened, so markers are precise
// even when they fall between sampling ticks.
func RecoveryMarkers(n int, met func(i int) *metrics.Proc) []Marker {
	var out []Marker
	add := func(proc int, ts int64, kind string) {
		if ts != 0 {
			out = append(out, Marker{TMS: ms(time.Duration(ts)), Proc: proc, Kind: kind})
		}
	}
	for i := 0; i < n; i++ {
		m := met(i)
		if m == nil {
			continue
		}
		for _, r := range m.Recoveries {
			add(i, r.CrashedAt, MarkCrash)
			add(i, r.RestartedAt, MarkRestart)
			add(i, r.RestoredAt, MarkRestored)
			add(i, r.GatheredAt, MarkGathered)
			add(i, r.ReplayedAt, MarkRecoveryEnd)
		}
	}
	sortMarkers(out)
	return out
}
