package timeline

import (
	"fmt"
	"io"
	"strings"
)

// sparkLevels are the eight block glyphs a sparkline cell can take; values
// scale linearly into them, with zero rendered as a space so idle stretches
// read as gaps.
var sparkLevels = []rune{'▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// markerGlyphs is the one-character code each marker kind renders as in the
// marker lane.
var markerGlyphs = map[string]byte{
	MarkCrash:       'X',
	MarkRestart:     'r',
	MarkRestored:    's',
	MarkGathered:    'g',
	MarkRecoveryEnd: 'E',
}

// Spark renders values as a sparkline of at most width cells. When there
// are more values than cells, each cell shows the maximum of its bucket
// (max-pooling) — a spike is never averaged away. Scaling is linear from 0
// to the series maximum.
func Spark(values []float64, width int) string {
	if len(values) == 0 || width < 1 {
		return ""
	}
	pooled := pool(values, width)
	var peak float64
	for _, v := range pooled {
		if v > peak {
			peak = v
		}
	}
	var sb strings.Builder
	for _, v := range pooled {
		if v <= 0 || peak <= 0 {
			sb.WriteByte(' ')
			continue
		}
		lvl := int(v / peak * float64(len(sparkLevels)))
		if lvl >= len(sparkLevels) {
			lvl = len(sparkLevels) - 1
		}
		sb.WriteRune(sparkLevels[lvl])
	}
	return sb.String()
}

// pool max-pools values into exactly min(width, len(values)) cells, each
// covering an equal share of the index range.
func pool(values []float64, width int) []float64 {
	if len(values) <= width {
		return values
	}
	out := make([]float64, width)
	for cell := 0; cell < width; cell++ {
		lo := cell * len(values) / width
		hi := (cell + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		m := values[lo]
		for _, v := range values[lo+1 : hi] {
			if v > m {
				m = v
			}
		}
		out[cell] = m
	}
	return out
}

// cellOf maps a timestamp to its sparkline cell under the same bucketing
// pool uses, so markers line up with the series above them.
func cellOf(tms float64, ticks []Tick, width int) int {
	if len(ticks) == 0 {
		return 0
	}
	// Find the tick index covering tms (last tick with TMS <= tms; events
	// before the first tick land in cell 0).
	idx := 0
	for i, t := range ticks {
		if t.TMS <= tms {
			idx = i
		}
	}
	n := len(ticks)
	if n <= width {
		return idx
	}
	return idx * width / n
}

// markerLane renders the marker glyphs aligned under the sparkline cells.
// Colliding markers keep the earliest (already first in canonical order).
func markerLane(e *Export, width int) string {
	cells := width
	if len(e.Ticks) < cells {
		cells = len(e.Ticks)
	}
	if cells < 1 {
		return ""
	}
	lane := make([]byte, cells)
	for i := range lane {
		lane[i] = ' '
	}
	for _, m := range e.Markers {
		g, ok := markerGlyphs[m.Kind]
		if !ok {
			continue
		}
		c := cellOf(m.TMS, e.Ticks, width)
		if c >= 0 && c < cells && lane[c] == ' ' {
			lane[c] = g
		}
	}
	return string(lane)
}

// sumInts and sumInt64s collapse per-process arrays into cluster series.
func sumInts(pick func(Tick) []int, ticks []Tick) []float64 {
	out := make([]float64, len(ticks))
	for i, t := range ticks {
		var s int
		for _, v := range pick(t) {
			s += v
		}
		out[i] = float64(s)
	}
	return out
}

func sumInt64s(pick func(Tick) []int64, ticks []Tick) []float64 {
	out := make([]float64, len(ticks))
	for i, t := range ticks {
		var s int64
		for _, v := range pick(t) {
			s += v
		}
		out[i] = float64(s)
	}
	return out
}

// Render prints the timeline explorer view: one aligned sparkline lane per
// series, per-process phase lanes, and a marker lane keyed by glyph. Width
// bounds the sparkline cell count (the series is max-pooled into it).
func Render(w io.Writer, e *Export, width int) {
	if width < 8 {
		width = 8
	}
	ticks := e.Ticks
	if len(ticks) == 0 {
		fmt.Fprintf(w, "timeline %q: no samples\n", e.Meta.Label)
		return
	}
	span := ticks[len(ticks)-1].TMS
	fmt.Fprintf(w, "timeline %q: n=%d interval=%gms span=%gms ticks=%d markers=%d\n",
		e.Meta.Label, e.Meta.N, e.Meta.IntervalMS, span, len(ticks), len(e.Markers))

	lanes := []struct {
		name   string
		values []float64
	}{
		{"queue", perTick(ticks, func(t Tick) float64 { return float64(t.Queue) })},
		{"inflight", perTick(ticks, func(t Tick) float64 { return float64(t.InFlight) })},
		{"journal", sumInts(func(t Tick) []int { return t.Journal }, ticks)},
		{"lag", sumInts(func(t Tick) []int { return t.Lag }, ticks)},
		{"stable_B", sumInt64s(func(t Tick) []int64 { return t.Stable }, ticks)},
		{"backlog", sumInts(func(t Tick) []int { return t.Backlog }, ticks)},
		{"blk_age", perTick(ticks, maxOldest)},
		{"dlv_p99", perTick(ticks, func(t Tick) float64 { return t.Delivery.P99MS })},
		{"out_p99", perTick(ticks, func(t Tick) float64 { return t.Output.P99MS })},
	}
	// Tiered exports (schema v2, DESIGN §12) get one in-flight and one
	// windowed output-p99 lane per tier, in tier order (t0 is the client
	// tier under the traffic engine's numbering).
	for ti := range e.Meta.Tiers {
		ti := ti
		lanes = append(lanes,
			struct {
				name   string
				values []float64
			}{fmt.Sprintf("inflt_t%d", ti), perTick(ticks, func(t Tick) float64 {
				if ti < len(t.InflightReq) {
					return float64(t.InflightReq[ti])
				}
				return 0
			})},
			struct {
				name   string
				values []float64
			}{fmt.Sprintf("outp99_t%d", ti), perTick(ticks, func(t Tick) float64 {
				if ti < len(t.TierOutput) {
					return t.TierOutput[ti].P99MS
				}
				return 0
			})})
	}
	for _, l := range lanes {
		var peak float64
		for _, v := range l.values {
			if v > peak {
				peak = v
			}
		}
		fmt.Fprintf(w, "%-9s|%s| max=%g\n", l.name, padLane(Spark(l.values, width), width, len(ticks)), peak)
	}

	// Phase lanes: one row per process, one cell per pooled bucket showing
	// the "worst" phase in the bucket (Down > Replaying > ... > Live).
	for p := 0; p < e.Meta.N; p++ {
		fmt.Fprintf(w, "p%-8d|%s|\n", p, padLane(phaseLane(ticks, p, width), width, len(ticks)))
	}

	if lane := markerLane(e, width); strings.TrimSpace(lane) != "" {
		fmt.Fprintf(w, "%-9s|%s| X=crash r=restart s=restored g=gathered E=recovery-end\n",
			"markers", padLane(lane, width, len(ticks)))
	}
}

// maxOldest is the cluster backlog-age lane: the worst per-process age.
func maxOldest(t Tick) float64 {
	var m float64
	for _, v := range t.Oldest {
		if v > m {
			m = v
		}
	}
	return m
}

// perTick maps each tick through f.
func perTick(ticks []Tick, f func(Tick) float64) []float64 {
	out := make([]float64, len(ticks))
	for i, t := range ticks {
		out[i] = f(t)
	}
	return out
}

// phaseLane renders process p's phase runes, max-pooled by phase severity.
func phaseLane(ticks []Tick, p int, width int) string {
	vals := make([]float64, len(ticks))
	for i, t := range ticks {
		if p < len(t.Phases) {
			vals[i] = float64(phaseOf(t.Phases[p]))
		}
	}
	pooled := pool(vals, width)
	out := make([]byte, len(pooled))
	for i, v := range pooled {
		out[i] = Phase(v).Rune()
	}
	return string(out)
}

// phaseOf inverts Phase.Rune; unknown runes read as live.
func phaseOf(r byte) Phase {
	for i, pr := range phaseRunes {
		if pr == r {
			return Phase(i)
		}
	}
	return PhaseLive
}

// padLane right-pads a lane whose series is shorter than width, so the
// closing | of every lane lines up.
func padLane(lane string, width, n int) string {
	cells := width
	if n < cells {
		cells = n
	}
	if got := len([]rune(lane)); got < cells {
		lane += strings.Repeat(" ", cells-got)
	}
	return lane + strings.Repeat(" ", width-cells)
}
