package timeline

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rollrec/internal/metrics"
)

// TestCollectorWindows drives a collector by hand and checks the tumbling-
// window arithmetic: each tick's distribution covers exactly the
// observations recorded since the previous tick.
func TestCollectorWindows(t *testing.T) {
	m := metrics.NewProc()
	col := New(Config{Interval: 100 * time.Millisecond, N: 1, Label: "unit"})
	col.Bind(Probes{
		Metrics: func(int) *metrics.Proc { return m },
	})

	m.DeliveryHist.Record(2 * time.Millisecond)
	m.DeliveryHist.Record(2 * time.Millisecond)
	col.Tick(int64(100 * time.Millisecond))

	m.DeliveryHist.Record(40 * time.Millisecond)
	col.Tick(int64(200 * time.Millisecond))

	col.Tick(int64(300 * time.Millisecond))

	e := col.Export()
	if len(e.Ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(e.Ticks))
	}
	if n := e.Ticks[0].Delivery.N; n != 2 {
		t.Errorf("window 1 count = %d, want 2", n)
	}
	if n := e.Ticks[1].Delivery.N; n != 1 {
		t.Errorf("window 2 count = %d, want 1 (only the new observation)", n)
	}
	if e.Ticks[1].Delivery.P50MS < 30 {
		t.Errorf("window 2 p50 = %v ms, want ~40 (the window's own value, not the cumulative median)",
			e.Ticks[1].Delivery.P50MS)
	}
	if n := e.Ticks[2].Delivery.N; n != 0 {
		t.Errorf("idle window count = %d, want 0", n)
	}
	if e.Ticks[0].TMS != 100 || e.Ticks[2].TMS != 300 {
		t.Errorf("tick stamps %v/%v, want 100/300 ms", e.Ticks[0].TMS, e.Ticks[2].TMS)
	}
}

// TestCollectorNilProbes: a collector with no probes bound still produces
// well-formed zero rows (the livenet runtime has no queue, for example).
func TestCollectorNilProbes(t *testing.T) {
	col := New(Config{Interval: time.Millisecond, N: 3})
	col.Tick(int64(time.Millisecond))
	e := col.Export()
	if len(e.Ticks) != 1 {
		t.Fatalf("got %d ticks, want 1", len(e.Ticks))
	}
	row := e.Ticks[0]
	if row.Phases != "LLL" || row.Queue != 0 || len(row.Journal) != 3 {
		t.Errorf("zero row malformed: %+v", row)
	}
}

func TestNewValidates(t *testing.T) {
	for _, cfg := range []Config{{Interval: 0, N: 1}, {Interval: time.Second, N: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPhaseRunes(t *testing.T) {
	want := map[Phase]byte{
		PhaseLive: 'L', PhaseBlocked: 'B', PhaseRestoring: 'S',
		PhaseRecovering: 'R', PhaseReplaying: 'P', PhaseDown: 'D',
	}
	for p, r := range want {
		if p.Rune() != r {
			t.Errorf("%v.Rune() = %c, want %c", p, p.Rune(), r)
		}
	}
	if PhaseBlocked.String() != "blocked" {
		t.Errorf("PhaseBlocked.String() = %q", PhaseBlocked.String())
	}
}

// TestDecodeSchemaGate: exports from a newer schema must be refused, not
// silently misread.
func TestDecodeSchemaGate(t *testing.T) {
	newer := strings.Replace(`{"meta":{"schema":SCHEMA,"label":"x","interval_ms":100,"n":1},"ticks":[],"markers":[]}`,
		"SCHEMA", "99", 1)
	if _, err := Decode(strings.NewReader(newer)); err == nil {
		t.Error("Decode accepted a schema-99 export")
	}
	zero := strings.Replace(newer, "99", "0", 1)
	if _, err := Decode(strings.NewReader(zero)); err == nil {
		t.Error("Decode accepted a schema-0 export")
	}
	ok := strings.Replace(newer, "99", "1", 1)
	if _, err := Decode(strings.NewReader(ok)); err != nil {
		t.Errorf("Decode rejected a schema-1 export: %v", err)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	col := New(Config{Interval: 50 * time.Millisecond, N: 2, Label: "rt"})
	col.Bind(Probes{
		Proc: func(i int) ProcGauges {
			return ProcGauges{
				Phase: PhaseBlocked, Journal: i + 1, Lag: i, StableBytes: 100, Backlog: 2,
				OldestOpen: int64(10 * time.Millisecond),
			}
		},
		Queue:   func() (int, int) { return 7, 3 },
		Markers: func() []Marker { return []Marker{{TMS: 50, Proc: 1, Kind: MarkCrash}} },
	})
	col.Tick(int64(50 * time.Millisecond))
	e := col.Export()

	var buf bytes.Buffer
	if err := e.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tk := got.Ticks[0]
	if tk.Phases != "BB" || tk.Queue != 7 || tk.InFlight != 3 || tk.Journal[1] != 2 || tk.Backlog[0] != 2 {
		t.Errorf("round-tripped tick malformed: %+v", tk)
	}
	// Backlog age: the oldest open output was requested at 10 ms, sampled
	// at 50 ms — a 40 ms age.
	if tk.Oldest[0] != 40 {
		t.Errorf("backlog age = %v ms, want 40", tk.Oldest[0])
	}
	if len(got.Markers) != 1 || got.Markers[0].Kind != MarkCrash {
		t.Errorf("round-tripped markers: %+v", got.Markers)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Error("canonical encoding must end with a newline")
	}
}

func TestCSVShape(t *testing.T) {
	col := New(Config{Interval: 10 * time.Millisecond, N: 2})
	col.Bind(Probes{Proc: func(i int) ProcGauges {
		return ProcGauges{Backlog: i + 1, StableBytes: 5, OldestOpen: int64(time.Millisecond) * int64(1+i)}
	}})
	col.Tick(int64(10 * time.Millisecond))
	var buf bytes.Buffer
	if err := col.Export().EncodeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header+1", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_ms,queue,inflight,phases,") {
		t.Errorf("CSV header %q", lines[0])
	}
	cols := strings.Split(lines[1], ",")
	if len(cols) != len(csvHeader) {
		t.Fatalf("CSV row has %d fields, header %d", len(cols), len(csvHeader))
	}
	// backlog column: per-proc 1+2 summed to 3; stable_bytes: 5+5; backlog
	// age: max of the per-proc ages (10ms tick − 1ms/2ms requests → 9 ms).
	if cols[7] != "3" || cols[6] != "10" {
		t.Errorf("CSV sums wrong: stable=%s backlog=%s", cols[6], cols[7])
	}
	if cols[8] != "9" {
		t.Errorf("CSV oldest_open_ms = %s, want the max age 9", cols[8])
	}
}

func TestSortMarkers(t *testing.T) {
	ms := []Marker{
		{TMS: 10, Proc: 0, Kind: MarkRecoveryEnd},
		{TMS: 5, Proc: 1, Kind: MarkCrash},
		{TMS: 10, Proc: 0, Kind: MarkCrash},
		{TMS: 10, Proc: 1, Kind: MarkRestart},
	}
	sortMarkers(ms)
	want := []Marker{
		{TMS: 5, Proc: 1, Kind: MarkCrash},
		{TMS: 10, Proc: 0, Kind: MarkCrash},
		{TMS: 10, Proc: 0, Kind: MarkRecoveryEnd},
		{TMS: 10, Proc: 1, Kind: MarkRestart},
	}
	for i := range want {
		if ms[i] != want[i] {
			t.Fatalf("order[%d] = %+v, want %+v", i, ms[i], want[i])
		}
	}
}

// TestRecoveryMarkers synthesizes markers from a hand-built recovery trace.
func TestRecoveryMarkers(t *testing.T) {
	m0 := metrics.NewProc()
	m1 := metrics.NewProc()
	m1.Recoveries = append(m1.Recoveries, metrics.RecoveryTrace{
		CrashedAt:   int64(time.Second),
		RestartedAt: int64(1200 * time.Millisecond),
		RestoredAt:  int64(1500 * time.Millisecond),
		GatheredAt:  int64(1700 * time.Millisecond),
		ReplayedAt:  int64(2 * time.Second),
	})
	// A second, unfinished recovery: only the phases reached so far appear.
	m1.Recoveries = append(m1.Recoveries, metrics.RecoveryTrace{
		CrashedAt: int64(3 * time.Second),
	})
	procs := []*metrics.Proc{m0, m1}
	got := RecoveryMarkers(2, func(i int) *metrics.Proc { return procs[i] })
	if len(got) != 6 {
		t.Fatalf("got %d markers, want 6: %+v", len(got), got)
	}
	if got[0].Kind != MarkCrash || got[0].TMS != 1000 || got[0].Proc != 1 {
		t.Errorf("first marker %+v", got[0])
	}
	if got[5].Kind != MarkCrash || got[5].TMS != 3000 {
		t.Errorf("last marker %+v, want the second crash", got[5])
	}
}

func TestSparkPooling(t *testing.T) {
	// 8 values into 4 cells: max-pooling keeps the spike.
	vals := []float64{0, 0, 0, 9, 0, 0, 1, 1}
	s := []rune(Spark(vals, 4))
	if len(s) != 4 {
		t.Fatalf("spark width %d, want 4", len(s))
	}
	if s[0] != ' ' {
		t.Errorf("zero cell rendered %q, want space", s[0])
	}
	if s[1] != '█' {
		t.Errorf("spike cell rendered %q, want full block", s[1])
	}
	if s[3] == ' ' || s[3] == '█' {
		t.Errorf("low cell rendered %q, want a low level", s[3])
	}
	if Spark(nil, 10) != "" {
		t.Error("empty series must render empty")
	}
	// Fewer values than width: one cell per value, no stretching.
	if got := len([]rune(Spark([]float64{1, 2}, 10))); got != 2 {
		t.Errorf("short series rendered %d cells, want 2", got)
	}
}

func TestRenderEmpty(t *testing.T) {
	var sb strings.Builder
	Render(&sb, &Export{Meta: Meta{Label: "empty"}}, 40)
	if !strings.Contains(sb.String(), "no samples") {
		t.Errorf("empty render: %q", sb.String())
	}
}
