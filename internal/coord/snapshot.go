package coord

import (
	"fmt"

	"rollrec/internal/ids"
	"rollrec/internal/wire"
)

// This file implements the Chandy–Lamport snapshot machinery and the
// snapshot blob codec.

// startSnapshot begins a new global snapshot (initiator only, process 0).
func (p *Process) startSnapshot() {
	if p.snapActive || p.rollingBack {
		return // previous snapshot still in flight; skip this period
	}
	// Snapshot ids must stay monotone across the initiator's own crashes.
	if p.snapID <= p.committedID {
		p.snapID = p.committedID
	}
	p.snapID++
	p.beginLocalSnapshot(p.snapID, ids.Nobody)
	p.initiatorWaiting = make(map[ids.ProcID]bool, p.n-1)
	for q := 1; q < p.n; q++ {
		p.initiatorWaiting[ids.ProcID(q)] = true
	}
	p.maybeCommit()
}

// beginLocalSnapshot records local state and floods markers. exclude is the
// channel the triggering marker arrived on (already closed).
func (p *Process) beginLocalSnapshot(id uint32, exclude ids.ProcID) {
	p.snapActive = true
	p.snapID = id
	p.localState = p.encodeLocalState()
	p.coverOutputs(id)
	p.recording = make([]bool, p.n)
	p.recorded = make([][]recordedMsg, p.n)
	p.openChans = 0
	for q := 0; q < p.n; q++ {
		pid := ids.ProcID(q)
		if pid == p.env.ID() || pid == exclude {
			continue
		}
		p.recording[q] = true
		p.openChans++
	}
	for q := 0; q < p.n; q++ {
		pid := ids.ProcID(q)
		if pid == p.env.ID() {
			continue
		}
		p.env.Send(pid, &wire.Envelope{
			Kind:    wire.KindMarker,
			FromInc: ids.Incarnation(p.epoch),
			Round:   id,
		})
	}
	if p.openChans == 0 {
		p.completeLocalSnapshot()
	}
}

// onMarker processes a snapshot marker per Chandy–Lamport.
func (p *Process) onMarker(e *wire.Envelope) {
	switch {
	case !p.snapActive || e.Round > p.snapID:
		// First marker of a new snapshot: channel from the sender is
		// empty for this snapshot.
		p.beginLocalSnapshot(e.Round, e.From)
	case e.Round == p.snapID:
		from := int(e.From)
		if from >= 0 && from < p.n && p.recording[from] {
			p.recording[from] = false
			p.openChans--
			if p.openChans == 0 {
				p.completeLocalSnapshot()
			}
		}
	default:
		// Marker from an abandoned snapshot: ignore.
	}
}

// completeLocalSnapshot persists the local snapshot and acknowledges the
// initiator.
func (p *Process) completeLocalSnapshot() {
	p.snapActive = false
	id := p.snapID
	blob := p.encodeSnapshotBlob()
	p.localState = nil
	p.env.WriteStable(fmt.Sprintf("%s%d", keySnapPrefix, id), blob, func() {
		if p.env.ID() == 0 {
			p.onSnapState(&wire.Envelope{Kind: wire.KindSnapState, From: 0, Round: id})
			return
		}
		p.env.Send(0, &wire.Envelope{
			Kind:    wire.KindSnapState,
			FromInc: ids.Incarnation(p.epoch),
			Round:   id,
		})
	})
}

// onSnapState is the initiator collecting acknowledgments.
func (p *Process) onSnapState(e *wire.Envelope) {
	if p.env.ID() != 0 || e.Round != p.snapID {
		return
	}
	if e.From != 0 {
		delete(p.initiatorWaiting, e.From)
	}
	p.maybeCommit()
}

func (p *Process) maybeCommit() {
	if p.env.ID() != 0 || p.snapActive || len(p.initiatorWaiting) != 0 || p.snapID == 0 {
		return
	}
	id := p.snapID
	p.initiatorWaiting = nil
	for q := 1; q < p.n; q++ {
		p.env.Send(ids.ProcID(q), &wire.Envelope{
			Kind:    wire.KindSnapCommit,
			FromInc: ids.Incarnation(p.epoch),
			Round:   id,
		})
	}
	p.commit(id)
}

// commit records snapshot id as the recovery line.
func (p *Process) commit(id uint32) {
	if id <= p.committedID {
		return
	}
	p.committedID = id
	p.sinceSnap = 0
	p.persistEpoch()
	p.commitOutputs(id)
	p.env.Logf("coord: snapshot %d committed", id)
}

func parseCommitted(data []byte) (id, epoch uint32) {
	r := wire.NewReader(data)
	id = r.U32()
	epoch = r.U32()
	if r.Err() != nil {
		// Self-written state; a short frame means no snapshot committed.
		return 0, 0
	}
	return id, epoch
}

// encodeLocalState captures the process state at marker time.
func (p *Process) encodeLocalState() []byte {
	app := p.app.Snapshot()
	w := wire.NewWriter(64 + len(app) + p.par.StatePad)
	w.U32(p.epoch)
	w.U64(uint64(p.delivered))
	for i := 0; i < p.n; i++ {
		w.U64(p.dseqOut[i])
		w.U64(p.expDseq[i])
	}
	w.Bytes(app)
	w.Bytes(make([]byte, p.par.StatePad))
	// Optional tail (see the FBL checkpoint codec): present only when the
	// process ever produced output, so output-free runs keep byte-identical
	// snapshot blobs and storage timings.
	if p.outSeq != 0 {
		w.U64(p.outSeq)
	}
	return w.Frame()
}

// encodeSnapshotBlob appends the recorded channel messages to the local
// state captured at marker time.
func (p *Process) encodeSnapshotBlob() []byte {
	w := wire.NewWriter(len(p.localState) + 256)
	w.Bytes(p.localState)
	total := 0
	for _, ch := range p.recorded {
		total += len(ch)
	}
	w.U32(uint32(total))
	for _, ch := range p.recorded {
		for _, m := range ch {
			w.I32(int32(m.from))
			w.U64(uint64(m.ssn))
			w.U64(m.dseq)
			w.Bytes(m.payload)
		}
	}
	return w.Frame()
}

// decodeSnapshot restores the local state and returns the recorded
// channel messages for re-injection.
func (p *Process) decodeSnapshot(blob []byte) []recordedMsg {
	r := wire.NewReader(blob)
	state := wire.NewReader(r.Bytes())
	_ = state.U32() // epoch at capture; superseded by the rollback epoch
	p.delivered = int64(state.U64())
	for i := 0; i < p.n; i++ {
		p.dseqOut[i] = state.U64()
		p.expDseq[i] = state.U64()
	}
	app := state.Bytes()
	state.Bytes() // padding
	if !state.Done() {
		p.outSeq = state.U64() // optional tail: see encodeLocalState
	}
	if err := p.app.Restore(app); err != nil {
		panic(fmt.Sprintf("coord: %v: restoring app: %v", p.env.ID(), err))
	}
	p.started = true
	n := r.ListLen()
	out := make([]recordedMsg, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		var m recordedMsg
		m.from = ids.ProcID(r.I32())
		m.ssn = ids.SSN(r.U64())
		m.dseq = r.U64()
		m.payload = r.Bytes()
		out = append(out, m)
	}
	if r.Err() != nil {
		panic(fmt.Sprintf("coord: %v: corrupt snapshot: %v", p.env.ID(), r.Err()))
	}
	return out
}
