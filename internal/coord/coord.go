package coord

import (
	"fmt"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/output"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

// Params configures one coordinated-checkpointing process.
type Params struct {
	// N is the number of application processes.
	N int
	// App builds the hosted application.
	App workload.Factory
	// SnapshotEvery is the global snapshot period (driven by process 0).
	SnapshotEvery time.Duration
	// StatePad models the process image size per snapshot.
	StatePad int
	// HeartbeatEvery / SuspectAfter drive failure detection (any suspected
	// peer triggers nothing here — the watchdog restart of the crashed
	// process is what initiates the rollback).
	HeartbeatEvery time.Duration
	// Outputs receives the output-commit lifecycle (nil disables tracking;
	// Ctx.Output is then a no-op).
	Outputs output.Sink
	// Hooks observe deliveries for the test harness.
	Hooks Hooks
}

// Hooks are optional observation callbacks.
type Hooks struct {
	// OnDeliver fires for every application delivery.
	OnDeliver func(self ids.ProcID, from ids.ProcID, epoch uint32, dseq uint64)
	// OnRollback fires when a process completes a rollback; lost is the
	// number of deliveries discarded with the abandoned execution.
	OnRollback func(self ids.ProcID, epoch uint32, lost int64)
}

// Stable-store keys.
const (
	keySnapPrefix = "clsnap-"
	keyCommitted  = "clcommitted"
)

// Process is one coordinated-checkpointing protocol instance.
type Process struct {
	env node.Env
	par Params
	n   int

	app     workload.App
	started bool
	epoch   uint32 // rollback epoch; frames from older epochs are stale

	// Per-pair FIFO bookkeeping (same scheme as the FBL engine).
	dseqOut []uint64
	expDseq []uint64
	oooBuf  []map[uint64]*wire.Envelope

	delivered int64 // deliveries in the current epoch (for lost-work metrics)
	sinceSnap int64 // deliveries since the last committed snapshot

	// Chandy–Lamport state for the snapshot in progress.
	snapActive       bool
	snapID           uint32
	recording        []bool
	recorded         [][]recordedMsg
	openChans        int
	localState       []byte
	initiatorWaiting map[ids.ProcID]bool // initiator only

	committedID uint32

	// Rollback-in-progress state: frames from the new epoch that arrive
	// before this process has finished restoring are buffered, otherwise
	// they would be consumed into the doomed pre-rollback state and lost.
	rollingBack bool
	futureBuf   []*wire.Envelope

	// Output commit (DESIGN §10).
	outSeq      uint64      // outputs requested so far (part of the snapshot)
	pendingOuts []coordWait // requested, not yet covered by a committed snapshot
}

type recordedMsg struct {
	from    ids.ProcID
	ssn     ids.SSN
	dseq    uint64
	payload []byte
}

var _ node.Process = (*Process)(nil)

// New returns a node.Factory for coordinated-checkpointing processes.
func New(par Params) node.Factory {
	if par.HeartbeatEvery <= 0 {
		par.HeartbeatEvery = 250 * time.Millisecond
	}
	if par.SnapshotEvery <= 0 {
		par.SnapshotEvery = 2 * time.Second
	}
	return func() node.Process { return &Process{par: par} }
}

// Boot implements node.Process.
func (p *Process) Boot(env node.Env, restart bool) {
	p.env = env
	p.n = env.N()
	p.dseqOut = make([]uint64, p.n)
	p.expDseq = make([]uint64, p.n)
	p.oooBuf = make([]map[uint64]*wire.Envelope, p.n)
	for i := range p.oooBuf {
		p.oooBuf[i] = make(map[uint64]*wire.Envelope)
	}
	p.app = p.par.App(env.ID(), p.n)

	if env.ID() == 0 {
		var tick func()
		tick = func() {
			p.startSnapshot()
			p.env.After(p.par.SnapshotEvery, tick)
		}
		env.After(p.par.SnapshotEvery, tick)
	}

	if !restart {
		p.epoch = 1
		p.started = true
		p.app.Start(appCtx{p})
		return
	}
	// Crash recovery: read the committed line and order a global rollback.
	p.rollingBack = true
	env.ReadStable(keyCommitted, func(data []byte, ok bool) {
		if tr := env.Metrics().CurrentRecovery(); tr != nil {
			tr.RestoredAt = env.Now()
		}
		if !ok {
			// Crashed before any committed snapshot: the whole cluster
			// restarts from scratch.
			p.epoch = p.nextEpoch(1)
			p.persistEpoch()
			p.broadcastRollback(0, true)
			p.restartFromScratch()
			return
		}
		id, epoch := parseCommitted(data)
		p.committedID = id
		p.epoch = p.nextEpoch(epoch)
		p.persistEpoch()
		p.broadcastRollback(id, true)
		p.restoreSnapshot(id)
	})
}

// nextEpoch allocates the next rollback epoch: the smallest value that is
// both strictly greater than every epoch this process has seen and congruent
// to its own id mod n. The residue makes concurrently-allocated epochs
// distinct: two processes restarting from overlapping outages each know only
// their own (possibly stale) persisted epoch, and under naive +1 allocation
// both would pick the same number — the second recovery's rollback broadcast
// would then be dropped as stale everywhere, leaving the cluster running
// with the channel state the second crash destroyed. (Found by the
// internal/explore schedule explorer.)
func (p *Process) nextEpoch(seen uint32) uint32 {
	n := uint32(p.n)
	return (seen/n+1)*n + uint32(p.env.ID())
}

// persistEpoch durably records the current epoch alongside the committed
// snapshot id, so a later crash resumes from the right epoch.
func (p *Process) persistEpoch() {
	w := wire.NewWriter(8)
	w.U32(p.committedID)
	w.U32(p.epoch)
	p.env.WriteStable(keyCommitted, w.Frame(), nil)
}

// rollbackRestartOrigin tags (in the otherwise-unused Dseq field) a rollback
// broadcast by a process that just restarted from a crash, as opposed to one
// relayed by a live peer. Only restart-origin rollbacks may trigger a relay
// when they arrive stale — relays never do, which bounds the cascade.
const rollbackRestartOrigin = 1

func (p *Process) broadcastRollback(snapID uint32, restartOrigin bool) {
	var tag uint64
	if restartOrigin {
		tag = rollbackRestartOrigin
	}
	for q := 0; q < p.n; q++ {
		if ids.ProcID(q) == p.env.ID() {
			continue
		}
		p.env.Send(ids.ProcID(q), &wire.Envelope{
			Kind:    wire.KindRollback,
			FromInc: ids.Incarnation(p.epoch),
			Round:   snapID,
			Dseq:    tag,
		})
	}
}

// restartFromScratch rebuilds the initial state (used when no snapshot was
// ever committed).
func (p *Process) restartFromScratch() {
	lost := p.delivered
	p.resetVolatile()
	p.app = p.par.App(p.env.ID(), p.n)
	p.started = true
	p.app.Start(appCtx{p})
	p.finishRollback(lost)
}

func (p *Process) resetVolatile() {
	p.dseqOut = make([]uint64, p.n)
	p.expDseq = make([]uint64, p.n)
	for i := range p.oooBuf {
		p.oooBuf[i] = make(map[uint64]*wire.Envelope)
	}
	p.snapActive = false
	p.delivered = 0
	p.sinceSnap = 0
	// The rolled-back execution's uncommitted outputs are abandoned with
	// it; the restored outSeq (decoded from the snapshot, 0 from scratch)
	// is where re-execution resumes requesting.
	p.outSeq = 0
	p.pendingOuts = nil
}

// drainFuture re-delivers frames that arrived for the new epoch while the
// rollback was in progress.
func (p *Process) drainFuture() {
	p.rollingBack = false
	buf := p.futureBuf
	p.futureBuf = nil
	for _, e := range buf {
		p.Deliver(e)
	}
}

func (p *Process) finishRollback(lost int64) {
	if tr := p.env.Metrics().CurrentRecovery(); tr != nil {
		tr.GatheredAt = p.env.Now()
		tr.ReplayedAt = p.env.Now()
		tr.Incarnation = p.epoch
	}
	if p.par.Hooks.OnRollback != nil {
		p.par.Hooks.OnRollback(p.env.ID(), p.epoch, lost)
	}
	p.env.Logf("coord: rolled back to snapshot %d (epoch %d, %d deliveries lost)",
		p.committedID, p.epoch, lost)
	p.drainFuture()
}

// restoreSnapshot reads the per-process state of the committed snapshot and
// re-injects its recorded channel messages.
func (p *Process) restoreSnapshot(id uint32) {
	p.env.ReadStable(fmt.Sprintf("%s%d", keySnapPrefix, id), func(data []byte, ok bool) {
		if !ok {
			panic(fmt.Sprintf("coord: %v: committed snapshot %d missing", p.env.ID(), id))
		}
		lost := p.delivered
		p.resetVolatile()
		recorded := p.decodeSnapshot(data)
		p.commitRestored()
		p.finishRollback(lost)
		// Re-inject the in-flight messages the snapshot recorded: they are
		// part of the global state.
		for _, m := range recorded {
			p.deliverApp(&wire.Envelope{
				Kind:    wire.KindApp,
				From:    m.from,
				FromInc: ids.Incarnation(p.epoch),
				SSN:     m.ssn,
				Dseq:    m.dseq,
				Payload: m.payload,
			})
		}
	})
}

// Deliver implements node.Process.
// Recovering reports whether the process is currently rolling back to a
// committed snapshot; read-only, for the timeline phase lane.
func (p *Process) Recovering() bool { return p.rollingBack }

func (p *Process) Deliver(e *wire.Envelope) {
	if e.Kind == wire.KindRollback {
		p.onRollback(e)
		return
	}
	// Frames from a future epoch arriving before our own rollback finishes
	// must wait: consuming them into the doomed state would lose them.
	if p.rollingBack || uint32(e.FromInc) > p.epoch {
		p.futureBuf = append(p.futureBuf, e)
		return
	}
	switch e.Kind {
	case wire.KindApp:
		if uint32(e.FromInc) < p.epoch {
			p.env.Metrics().Stale++
			return
		}
		p.deliverApp(e)
	case wire.KindMarker:
		if uint32(e.FromInc) < p.epoch {
			return
		}
		p.onMarker(e)
	case wire.KindSnapState:
		p.onSnapState(e)
	case wire.KindSnapCommit:
		if uint32(e.FromInc) < p.epoch {
			return
		}
		p.commit(e.Round)
	case wire.KindHeartbeat:
		// Liveness only; nothing to do.
	default:
		// Other protocols' kinds (FBL storage traffic, optimistic
		// recovery rounds) never reach a coordinated-checkpointing
		// cluster; dropping them is deliberate, not a missed dispatch.
	}
}

// onRollback makes a live process restore the recovery line: the global
// rollback every coordinated-checkpointing failure forces.
func (p *Process) onRollback(e *wire.Envelope) {
	if p.rollingBack {
		// A rollback arriving mid-rollback must not be dropped: buffering
		// it with the future frames lets a concurrent recovery's (possibly
		// higher-epoch) order win once ours completes.
		if uint32(e.FromInc) > p.epoch {
			p.futureBuf = append(p.futureBuf, e)
		}
		return
	}
	if uint32(e.FromInc) <= p.epoch {
		// Stale — unless it came straight from a restarting process. A
		// restarter that was down through the current epoch's rollback
		// broadcast allocates from a stale base, so its own broadcast is
		// fenced everywhere; but the crash still destroyed channel and
		// process state the running epoch depends on. Any live peer that
		// notices relays a fresh global rollback at an epoch the restarter
		// is guaranteed to honor.
		if e.Dseq == rollbackRestartOrigin {
			p.relayRollback()
		}
		return
	}
	p.epoch = uint32(e.FromInc)
	p.committedID = e.Round
	p.rollingBack = true
	p.persistEpoch()
	p.restoreLine(e.Round)
}

// relayRollback starts a fresh global rollback on behalf of a process whose
// own restart-origin broadcast arrived stale (see onRollback): allocate a
// strictly newer epoch, broadcast it, and roll back to the committed line
// like everyone else.
func (p *Process) relayRollback() {
	p.epoch = p.nextEpoch(p.epoch)
	p.rollingBack = true
	p.persistEpoch()
	p.broadcastRollback(p.committedID, false)
	p.env.Logf("coord: relaying rollback for a stale restarter (epoch %d, snapshot %d)",
		p.epoch, p.committedID)
	p.restoreLine(p.committedID)
}

// restoreLine rolls a live process back to the committed line (snapID 0 =
// from scratch) for the already-installed epoch.
func (p *Process) restoreLine(snapID uint32) {
	lost := p.delivered
	// Live processes also pay: the blocked interval is the stable-storage
	// restore they are forced through.
	p.env.Metrics().BlockStart(p.env.Now())
	if snapID == 0 {
		p.env.Metrics().BlockEnd(p.env.Now())
		p.restartFromScratch()
		return
	}
	p.env.ReadStable(fmt.Sprintf("%s%d", keySnapPrefix, snapID), func(data []byte, ok bool) {
		p.env.Metrics().BlockEnd(p.env.Now())
		if !ok {
			panic(fmt.Sprintf("coord: %v: snapshot %d missing on rollback", p.env.ID(), snapID))
		}
		p.resetVolatile()
		recorded := p.decodeSnapshot(data)
		p.commitRestored()
		if p.par.Hooks.OnRollback != nil {
			p.par.Hooks.OnRollback(p.env.ID(), p.epoch, lost)
		}
		p.env.Logf("coord: live rollback to snapshot %d (epoch %d, %d deliveries lost)",
			p.committedID, p.epoch, lost)
		p.drainFuture()
		for _, m := range recorded {
			p.deliverApp(&wire.Envelope{
				Kind: wire.KindApp, From: m.from,
				FromInc: ids.Incarnation(p.epoch),
				SSN:     m.ssn, Dseq: m.dseq, Payload: m.payload,
			})
		}
	})
}

// deliverApp is the normal delivery path with per-pair FIFO dedup; during
// an active snapshot it also records in-flight messages per channel.
func (p *Process) deliverApp(e *wire.Envelope) {
	from := int(e.From)
	if p.snapActive && from >= 0 && from < p.n && p.recording[from] {
		p.recorded[from] = append(p.recorded[from], recordedMsg{
			from: e.From, ssn: e.SSN, dseq: e.Dseq,
			payload: append([]byte(nil), e.Payload...),
		})
	}
	exp := p.expDseq[from]
	switch {
	case e.Dseq <= exp:
		p.env.Metrics().Duplicate++
		return
	case e.Dseq > exp+1:
		p.oooBuf[from][e.Dseq] = e
		return
	}
	p.consume(e)
	for {
		next, ok := p.oooBuf[from][p.expDseq[from]+1]
		if !ok {
			break
		}
		delete(p.oooBuf[from], p.expDseq[from]+1)
		p.consume(next)
	}
}

func (p *Process) consume(e *wire.Envelope) {
	p.expDseq[e.From] = e.Dseq
	p.delivered++
	p.sinceSnap++
	p.env.Metrics().Delivered++
	if p.par.Hooks.OnDeliver != nil {
		p.par.Hooks.OnDeliver(p.env.ID(), e.From, p.epoch, e.Dseq)
	}
	p.app.Handle(appCtx{p}, e.From, e.Payload)
}

// appCtx implements workload.Ctx.
type appCtx struct{ p *Process }

func (c appCtx) Self() ids.ProcID { return c.p.env.ID() }
func (c appCtx) N() int           { return c.p.n }
func (c appCtx) Work(d int64)     { c.p.env.Busy(time.Duration(d)) }
func (c appCtx) Logf(format string, args ...any) {
	c.p.env.Logf(format, args...)
}

// Send transmits an application payload (no logging: this protocol's whole
// point is that failure-free operation is bare).
func (c appCtx) Send(to ids.ProcID, payload []byte) {
	p := c.p
	p.dseqOut[to]++
	p.env.Send(to, &wire.Envelope{
		Kind:    wire.KindApp,
		FromInc: ids.Incarnation(p.epoch),
		Dseq:    p.dseqOut[to],
		Payload: payload,
	})
}
