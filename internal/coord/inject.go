package coord

import "rollrec/internal/workload"

// Inject hands the application an open-loop arrival (a user request
// entering at this process), delivered as a message from itself. Sends it
// triggers stamp the current epoch and dseq counters, so they are ordinary
// in-epoch traffic to every receiver.
//
// Rollback soundness: an injection is a local event. The committed global
// snapshot captures the application state and the dseq counters on the
// consistent cut, so a rollback undoes an injected arrival's effects on
// every process or on none — the arrival itself is simply lost, exactly
// as a request reaching a service mid-rollback is. A rolling-back process
// sheds (returns false) rather than mutating state that is about to be
// reset.
func (p *Process) Inject(payload []byte) bool {
	if p.rollingBack {
		return false
	}
	p.app.Handle(appCtx{p}, p.env.ID(), payload)
	return true
}

// App exposes the hosted application for harness probes (timeline
// in-flight gauges); same accessor the other styles provide.
func (p *Process) App() workload.App { return p.app }
