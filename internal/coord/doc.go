// Package coord implements the classic alternative to log-based recovery:
// coordinated checkpointing with Chandy–Lamport snapshots [6] and global
// rollback, the style of protocol the paper's related work contrasts FBL
// against.
//
// Failure-free operation is cheap — no logging, no piggybacking, only a
// periodic marker flood and a stable-storage write per process per
// snapshot. The price appears at failure time: there is no way to replay a
// single process, so EVERY process rolls back to the last committed global
// snapshot. The work since that snapshot is lost cluster-wide, and every
// live process stalls for a stable-storage restore — exactly the intrusion
// the paper's recovery algorithm exists to avoid. Experiment D9 puts the
// two designs side by side.
//
// Protocol sketch:
//
//   - Process 0 initiates snapshot s on a timer: it records its local
//     state, then sends a marker on every channel and starts recording
//     in-flight messages per incoming channel.
//   - On its first marker for s, a process records its state, relays
//     markers, and records each incoming channel until that channel's
//     marker arrives (FIFO channels make this exact).
//   - A process whose every channel is closed sends its snapshot to stable
//     storage and acknowledges the initiator; when all acknowledge, the
//     initiator broadcasts a commit, and s becomes the recovery line.
//   - Any crash: the restarted process reads the committed line and
//     broadcasts a rollback; everyone restores snapshot s (paying the
//     storage read), bumps the epoch (stale frames are dropped), and
//     re-injects the recorded channel messages.
package coord
