package coord

// This file implements the coordinated-checkpointing output-commit rule
// (DESIGN §10): an output may be released once it is covered by a
// committed global snapshot — its state is captured by a local snapshot
// whose id the initiator has committed. The commit latency is therefore
// bounded below by the snapshot period plus a full Chandy–Lamport round
// including every process's stable-storage write: the synchronous-stable-
// write cost the paper's §2.2 charges against coordinated schemes.

// coordWait is one requested output awaiting snapshot coverage.
type coordWait struct {
	seq  uint64
	snap uint32 // local snapshot id whose capture covers it; 0 = none yet
}

// Output implements workload.Ctx.
func (c appCtx) Output(payload []byte) {
	p := c.p
	if p.par.Outputs == nil {
		return
	}
	p.outSeq++
	if !p.par.Outputs.Requested(p.env.ID(), p.outSeq, p.env.Now(), payload) {
		return // rollback re-execution of an already-released output
	}
	p.pendingOuts = append(p.pendingOuts, coordWait{seq: p.outSeq})
}

// coverOutputs tags every uncovered pending output with the local snapshot
// being captured right now: the state that produced them is in the blob.
func (p *Process) coverOutputs(snapID uint32) {
	for i := range p.pendingOuts {
		if p.pendingOuts[i].snap == 0 {
			p.pendingOuts[i].snap = snapID
		}
	}
}

// commitOutputs releases every pending output covered by a snapshot at or
// below the just-committed id. A later snapshot strictly extends an
// abandoned earlier capture within the same epoch, so coverage by any
// id <= the committed one suffices.
func (p *Process) commitOutputs(committed uint32) {
	if p.par.Outputs == nil || len(p.pendingOuts) == 0 {
		return
	}
	now := p.env.Now()
	kept := p.pendingOuts[:0]
	for _, w := range p.pendingOuts {
		if w.snap != 0 && w.snap <= committed {
			p.par.Outputs.Committed(p.env.ID(), w.seq, now)
		} else {
			kept = append(kept, w)
		}
	}
	p.pendingOuts = kept
}

// commitRestored fires after a rollback restored a committed snapshot:
// every output the restored state had already produced (seq <= the
// restored outSeq) is part of the committed recovery line.
func (p *Process) commitRestored() {
	if p.par.Outputs != nil && p.outSeq > 0 {
		p.par.Outputs.CommitUpTo(p.env.ID(), p.outSeq, p.env.Now())
	}
}
