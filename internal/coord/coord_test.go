package coord

import (
	"testing"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/sim"
	"rollrec/internal/workload"
)

// harness wires n coordinated-checkpointing processes onto the simulator.
type harness struct {
	k         *sim.Kernel
	n         int
	rollbacks []rollbackEvent
	crashes   int
}

type rollbackEvent struct {
	proc  ids.ProcID
	epoch uint32
	lost  int64
}

func fastHW() node.Hardware {
	hw := node.Profile1995()
	hw.WatchdogDetect = 300 * time.Millisecond
	hw.RestartDelay = 50 * time.Millisecond
	hw.SuspectAfter = 400 * time.Millisecond
	hw.HeartbeatEvery = 50 * time.Millisecond
	hw.CPUMsgCost = 50 * time.Microsecond
	hw.CPUByteCost = 0
	hw.Disk.Latency = 2 * time.Millisecond
	hw.Disk.ReadBandwidth = 50e6
	hw.Disk.WriteBandwidth = 50e6
	return hw
}

func newHarness(t *testing.T, n int, seed int64, app workload.Factory) *harness {
	t.Helper()
	h := &harness{n: n}
	h.k = sim.New(sim.Config{Seed: seed, HW: fastHW()})
	par := Params{
		N:             n,
		App:           app,
		SnapshotEvery: 300 * time.Millisecond,
		StatePad:      4 << 10,
		Hooks: Hooks{
			OnRollback: func(p ids.ProcID, epoch uint32, lost int64) {
				h.rollbacks = append(h.rollbacks, rollbackEvent{p, epoch, lost})
			},
		},
	}
	for i := 0; i < n; i++ {
		h.k.AddNode(ids.ProcID(i), New(par))
	}
	h.k.Boot()
	return h
}

func (h *harness) proc(i ids.ProcID) *Process {
	p, _ := h.k.ProcOf(i).(*Process)
	return p
}

func (h *harness) digests() []uint64 {
	out := make([]uint64, h.n)
	for i := 0; i < h.n; i++ {
		if p := h.proc(ids.ProcID(i)); p != nil {
			out[i] = p.app.Digest()
		}
	}
	return out
}

// crashAt schedules a crash and records that the run must observe its
// cluster-wide rollback before it counts as settled.
func (h *harness) crashAt(at time.Duration, p ids.ProcID) {
	h.crashes++
	h.k.CrashAt(at, p)
}

func (h *harness) allDone() bool {
	// Every scheduled crash forces a rollback at every process.
	if len(h.rollbacks) < h.crashes*h.n {
		return false
	}
	for i := 0; i < h.n; i++ {
		p := h.proc(ids.ProcID(i))
		if p == nil || !p.app.Done() {
			return false
		}
	}
	return true
}

func (h *harness) runUntilDone(t *testing.T, horizon time.Duration) {
	t.Helper()
	for d := time.Second; d <= horizon; d += time.Second {
		h.k.Run(d)
		if h.allDone() {
			return
		}
	}
	for i := 0; i < h.n; i++ {
		if p := h.proc(ids.ProcID(i)); p != nil {
			t.Logf("p%d epoch=%d delivered=%d committed=%d", i, p.epoch, p.delivered, p.committedID)
		}
	}
	t.Fatal("coordinated cluster did not finish")
}

func TestFailureFreeSnapshotsCommit(t *testing.T) {
	h := newHarness(t, 4, 1, workload.NewTokenRing(8000, 32, int64(time.Millisecond)))
	h.runUntilDone(t, 60*time.Second)
	p := h.proc(0)
	if p.committedID == 0 {
		t.Fatal("no snapshot ever committed")
	}
	if len(h.rollbacks) != 0 {
		t.Fatalf("failure-free run rolled back: %v", h.rollbacks)
	}
}

func TestGlobalRollbackOnCrash(t *testing.T) {
	// Golden failure-free run for the final state.
	g := newHarness(t, 4, 2, workload.NewTokenRing(8000, 32, int64(time.Millisecond)))
	g.runUntilDone(t, 60*time.Second)

	h := newHarness(t, 4, 2, workload.NewTokenRing(8000, 32, int64(time.Millisecond)))
	h.crashAt(1500*time.Millisecond, 2)
	h.runUntilDone(t, 120*time.Second)

	// EVERY process must have rolled back — the defining cost of
	// coordinated checkpointing.
	seen := map[ids.ProcID]bool{}
	for _, r := range h.rollbacks {
		seen[r.proc] = true
	}
	if len(seen) != 4 {
		t.Fatalf("rollbacks hit %d processes, want all 4: %v", len(seen), h.rollbacks)
	}
	// The ring is one causal chain: the post-rollback re-execution must
	// reach the identical final state.
	gd, hd := g.digests(), h.digests()
	for i := range gd {
		if gd[i] != hd[i] {
			t.Errorf("process %d digest %#x, want golden %#x", i, hd[i], gd[i])
		}
	}
	// Live processes paid a restore stall.
	blockedSomewhere := false
	for i := 0; i < 4; i++ {
		if ids.ProcID(i) == 2 {
			continue
		}
		if h.k.Metrics(ids.ProcID(i)).BlockedTotal() > 0 {
			blockedSomewhere = true
		}
	}
	if !blockedSomewhere {
		t.Fatal("live processes must stall for the restore during a global rollback")
	}
}

func TestCrashBeforeFirstSnapshot(t *testing.T) {
	g := newHarness(t, 3, 3, workload.NewTokenRing(6000, 32, int64(time.Millisecond)))
	g.runUntilDone(t, 60*time.Second)

	h := newHarness(t, 3, 3, workload.NewTokenRing(6000, 32, int64(time.Millisecond)))
	h.crashAt(100*time.Millisecond, 1) // before any snapshot commits
	h.runUntilDone(t, 120*time.Second)
	gd, hd := g.digests(), h.digests()
	for i := range gd {
		if gd[i] != hd[i] {
			t.Errorf("process %d digest %#x, want golden %#x", i, hd[i], gd[i])
		}
	}
}

func TestCrashOfInitiator(t *testing.T) {
	g := newHarness(t, 4, 4, workload.NewTokenRing(8000, 32, int64(time.Millisecond)))
	g.runUntilDone(t, 60*time.Second)

	h := newHarness(t, 4, 4, workload.NewTokenRing(8000, 32, int64(time.Millisecond)))
	h.crashAt(1400*time.Millisecond, 0) // the snapshot initiator itself
	h.runUntilDone(t, 120*time.Second)
	gd, hd := g.digests(), h.digests()
	for i := range gd {
		if gd[i] != hd[i] {
			t.Errorf("process %d digest %#x, want golden %#x", i, hd[i], gd[i])
		}
	}
	// Snapshots must resume after the initiator's recovery.
	if p := h.proc(0); p.committedID == 0 {
		t.Fatal("snapshots never resumed after initiator crash")
	}
}

func TestRepeatedCrashes(t *testing.T) {
	g := newHarness(t, 4, 5, workload.NewTokenRing(9000, 32, int64(time.Millisecond)))
	g.runUntilDone(t, 120*time.Second)

	h := newHarness(t, 4, 5, workload.NewTokenRing(9000, 32, int64(time.Millisecond)))
	h.crashAt(800*time.Millisecond, 2)
	h.crashAt(2600*time.Millisecond, 3)
	h.runUntilDone(t, 240*time.Second)
	gd, hd := g.digests(), h.digests()
	for i := range gd {
		if gd[i] != hd[i] {
			t.Errorf("process %d digest %#x, want golden %#x", i, hd[i], gd[i])
		}
	}
}

// TestOverlappingCrashesBeforeFirstSnapshot pins the epoch-collision fix the
// schedule explorer (internal/explore) found: two processes crashing with
// overlapping outages before any snapshot commits each restart knowing only
// a stale epoch. Under naive epoch+1 allocation both recoveries pick the
// same number, the later broadcast is fenced as stale everywhere, and the
// channel state the second crash destroyed (the ring token) is never
// re-created — the cluster stalls forever. The mod-n epoch allocation plus
// the stale-restarter relay must recover both restart orderings.
func TestOverlappingCrashesBeforeFirstSnapshot(t *testing.T) {
	for _, tc := range []struct {
		name   string
		first  ids.ProcID
		second ids.ProcID
	}{
		// Low id restarts first: the second restarter's higher residue wins
		// directly. High id first: the second broadcast arrives stale and
		// must be relayed by a live peer.
		{"low-then-high", 0, 1},
		{"high-then-low", 1, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := newHarness(t, 3, 7, workload.NewTokenRing(6000, 32, int64(time.Millisecond)))
			g.runUntilDone(t, 60*time.Second)

			h := newHarness(t, 3, 7, workload.NewTokenRing(6000, 32, int64(time.Millisecond)))
			h.k.CrashAt(20*time.Millisecond, tc.first)
			h.k.CrashAt(25*time.Millisecond, tc.second)
			// Relays make the per-crash rollback count vary; only require
			// completion and the golden final state.
			h.crashes = 0
			h.runUntilDone(t, 120*time.Second)
			gd, hd := g.digests(), h.digests()
			for i := range gd {
				if gd[i] != hd[i] {
					t.Errorf("process %d digest %#x, want golden %#x", i, hd[i], gd[i])
				}
			}
		})
	}
}

func TestLostWorkIsClusterWide(t *testing.T) {
	h := newHarness(t, 4, 6, workload.NewTokenRing(9000, 32, int64(time.Millisecond)))
	h.crashAt(2*time.Second, 1)
	h.runUntilDone(t, 240*time.Second)
	// Every process lost work, not just the crashed one — the contrast
	// with message logging, where only the victim replays.
	var victims int
	for _, r := range h.rollbacks {
		if r.lost > 0 {
			victims++
		}
	}
	if victims < 3 {
		t.Fatalf("only %d processes lost work; a global rollback wastes everyone's", victims)
	}
}
