package bench

import (
	"fmt"
	"math"
)

// Regression is one metric of one cell that got worse beyond the
// threshold. All snapshot metrics are costs, so "worse" means "larger".
type Regression struct {
	Key    string
	Metric string
	Old    float64
	New    float64
	// Delta is the relative increase (new/old - 1); +Inf when old was 0.
	Delta float64
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: cell missing from new snapshot", r.Key)
	}
	if math.IsInf(r.Delta, 1) {
		return fmt.Sprintf("%s: %s %.3f -> %.3f (was zero)", r.Key, r.Metric, r.Old, r.New)
	}
	return fmt.Sprintf("%s: %s %.3f -> %.3f (+%.1f%%)", r.Key, r.Metric, r.Old, r.New, 100*r.Delta)
}

// metricsOf flattens the gated metrics of a cell. Delivered and SimMS are
// deliberately not gated: delivered work is a throughput (higher is
// better) and the horizon is a parameter, not a measurement.
func metricsOf(c Cell) []struct {
	Name  string
	Value float64
} {
	return []struct {
		Name  string
		Value float64
	}{
		{"recovery.mean_ms", c.Recovery.MeanMS},
		{"recovery.p99_ms", c.Recovery.P99MS},
		{"blocked.mean_ms", c.Blocked.MeanMS},
		{"blocked.p99_ms", c.Blocked.P99MS},
		{"ctl_msgs", float64(c.CtlMsgs)},
		{"ctl_bytes", float64(c.CtlBytes)},
		{"sim_events", float64(c.SimEvents)},
		{"output_commit.p50_ms", c.OutputCommit.P50MS},
		{"output_commit.p99_ms", c.OutputCommit.P99MS},
		{"errors", float64(c.Errors)},
	}
}

// Compare diffs new against old cell-by-cell and returns the regressions:
// cells that disappeared, invariant errors that appeared, and cost metrics
// that grew by more than threshold (relative; threshold 0 demands
// new <= old exactly, which deterministic snapshots of the same code
// satisfy bit-for-bit). Cells only present in new, and metrics that
// improved by more than the threshold, are returned as informational
// notes. Meta is ignored except for the schema check done at Decode time.
func Compare(old, new *Snapshot, threshold float64) (regs []Regression, notes []string) {
	newByKey := make(map[string]Cell, len(new.Cells))
	for _, c := range new.Cells {
		newByKey[c.Key] = c
	}
	oldKeys := make(map[string]bool, len(old.Cells))
	for _, oc := range old.Cells {
		oldKeys[oc.Key] = true
		nc, ok := newByKey[oc.Key]
		if !ok {
			regs = append(regs, Regression{Key: oc.Key, Metric: "missing"})
			continue
		}
		om, nm := metricsOf(oc), metricsOf(nc)
		for i := range om {
			o, n := om[i].Value, nm[i].Value
			name := om[i].Name
			if n <= o {
				if o > 0 && n < o*(1-threshold) {
					notes = append(notes, fmt.Sprintf("%s: %s improved %.3f -> %.3f",
						oc.Key, name, o, n))
				}
				continue
			}
			// Invariant violations gate unconditionally: a run that used
			// to be consistent must stay consistent.
			if name == "errors" {
				regs = append(regs, Regression{Key: oc.Key, Metric: name, Old: o, New: n,
					Delta: math.Inf(1)})
				continue
			}
			var delta float64
			if o == 0 {
				delta = math.Inf(1)
			} else {
				delta = n/o - 1
			}
			if math.IsInf(delta, 1) || delta > threshold {
				regs = append(regs, Regression{Key: oc.Key, Metric: name, Old: o, New: n, Delta: delta})
			}
		}
	}
	for _, c := range new.Cells {
		if !oldKeys[c.Key] {
			notes = append(notes, fmt.Sprintf("%s: new cell (not in old snapshot)", c.Key))
		}
	}
	return regs, notes
}
