package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"rollrec/internal/metrics"
)

// SchemaVersion identifies the snapshot layout. Bump it on any change to
// the cell schema or to the meaning of a metric. Decode upgrades older
// snapshots it can read losslessly (v1 cells are v2 cells whose new fields
// are zero) and refuses snapshots newer than this binary.
//
// v2: cells gained output_commit (DESIGN §10) and outputs; merged-seed
// cells gained params.seeds and across_seeds.
//
// v3: the offered-load axis (DESIGN §12). Loaded cells carry params.load
// (with a "/load=" key suffix), offered/shed arrival counts, and
// client_commit — the user-visible commit-latency distribution at the
// client tier. Load-free cells are byte-identical to their v2 form.
const SchemaVersion = 3

// Meta describes where a snapshot came from. It is informational only:
// compare and the golden tests diff axes+cells and ignore Meta, because
// git revision and toolchain legitimately differ between the two sides of
// a regression check.
type Meta struct {
	Schema    int    `json:"schema"`
	Label     string `json:"label"`
	GitRev    string `json:"git_rev"`
	GoVersion string `json:"go_version"`
}

// Dist summarizes a per-cell sample set in milliseconds. Values are
// rounded to 1 µs so the JSON stays legible; the rounding is deterministic
// and happens once, at aggregation time.
type Dist struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

func ms(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Microsecond)) / 1000
}

// distOf aggregates a sample set; order of samples does not matter (the
// quantile sorts, the mean is a sum).
func distOf(ds []time.Duration) Dist {
	if len(ds) == 0 {
		return Dist{}
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return Dist{
		MeanMS: ms(sum / time.Duration(len(ds))),
		P50MS:  ms(metrics.Quantile(ds, 0.50)),
		P99MS:  ms(metrics.Quantile(ds, 0.99)),
	}
}

// MinMeanMax summarizes one scalar across a merged cell's seeds.
type MinMeanMax struct {
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func minMeanMax(xs []float64) MinMeanMax {
	if len(xs) == 0 {
		return MinMeanMax{}
	}
	m := MinMeanMax{Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		m.Min = math.Min(m.Min, x)
		m.Max = math.Max(m.Max, x)
	}
	m.Mean = math.Round(sum/float64(len(xs))*1000) / 1000
	return m
}

// SeedSpread is a merged cell's across-seed variation: how the headline
// per-seed costs spread over the cell's seed list. It answers "is this
// number a property of the configuration or of one lucky seed?"
type SeedSpread struct {
	RecoveryMeanMS MinMeanMax `json:"recovery_mean_ms"`
	BlockedMeanMS  MinMeanMax `json:"blocked_mean_ms"`
	CtlMsgs        MinMeanMax `json:"ctl_msgs"`
	CtlBytes       MinMeanMax `json:"ctl_bytes"`
	SimEvents      MinMeanMax `json:"sim_events"`
}

// Cell is the measured outcome of one parameter combination. A merged cell
// (params.seeds set) pools samples and sums totals over every seed it ran.
type Cell struct {
	Key    string `json:"key"`
	Params Params `json:"params"`
	// Recovery aggregates crash-to-live latency over the cell's completed
	// recoveries (Recoveries of them; 0 in failure-free cells).
	Recovery   Dist `json:"recovery"`
	Recoveries int  `json:"recoveries"`
	// Blocked aggregates total blocked time over the processes that never
	// crashed — the paper's intrusion metric.
	Blocked Dist `json:"blocked"`
	// Control traffic attributable to the recovery protocol, summed over
	// the whole run (experiments.Result.RecoveryTraffic).
	CtlMsgs  int64 `json:"ctl_msgs"`
	CtlBytes int64 `json:"ctl_bytes"`
	// Delivered counts application messages delivered cluster-wide.
	Delivered int64 `json:"delivered"`
	// SimEvents is the number of simulator events processed — the
	// deterministic cost of simulating the cell. Wall-clock cost is
	// reported on stderr by cmd/bench and deliberately kept OUT of the
	// snapshot so files stay byte-identical across runs.
	SimEvents int64 `json:"sim_events"`
	// SimMS is the virtual horizon simulated.
	SimMS float64 `json:"sim_ms"`
	// Outputs counts externally-visible outputs the workload requested;
	// OutputCommit aggregates their request-to-release latency (DESIGN
	// §10). Zero for workloads that never call ctx.Output, like the
	// default sweep's gossip.
	Outputs      int64 `json:"outputs"`
	OutputCommit Dist  `json:"output_commit"`
	// Offered and Shed count the open-loop arrivals the traffic engine
	// generated and the ones lost to unavailable clients; ClientCommit is
	// the client tier's commit-latency distribution — what a user sees.
	// Only loaded cells (params.load > 0) carry them.
	Offered      int64 `json:"offered,omitempty"`
	Shed         int64 `json:"shed,omitempty"`
	ClientCommit *Dist `json:"client_commit,omitempty"`
	// Errors counts cross-process invariant violations (expected 0).
	Errors int `json:"errors"`
	// AcrossSeeds is the per-seed spread; only merged cells carry it.
	AcrossSeeds *SeedSpread `json:"across_seeds,omitempty"`
}

// Snapshot is the versioned, machine-readable result of one sweep: what
// BENCH_<label>.json holds.
type Snapshot struct {
	Meta  Meta   `json:"meta"`
	Axes  Axes   `json:"axes"`
	Cells []Cell `json:"cells"`
}

// Encode writes the canonical byte-stable JSON form: two-space indent,
// struct-ordered fields, trailing newline.
func (s *Snapshot) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes the snapshot to path in canonical form.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Decode reads a snapshot, upgrading older schemas it can represent
// losslessly and rejecting ones newer than this binary.
func Decode(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("bench: malformed snapshot: %w", err)
	}
	switch {
	case s.Meta.Schema < 1:
		return nil, fmt.Errorf("bench: snapshot schema %d invalid (earliest is 1)", s.Meta.Schema)
	case s.Meta.Schema > SchemaVersion:
		return nil, fmt.Errorf("bench: snapshot schema %d is newer than this binary's %d; rebuild or regenerate",
			s.Meta.Schema, SchemaVersion)
	case s.Meta.Schema < SchemaVersion:
		// v1 -> v2 -> v3: every field added since (outputs, output_commit,
		// seeds, across_seeds, loads, offered, shed, client_commit) is
		// absent in older files and zero-valued here, which is exactly
		// what an older run measured. Stamp and move on.
		s.Meta.Schema = SchemaVersion
	}
	return &s, nil
}

// ReadFile reads a snapshot from path.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Markdown renders the snapshot's cells as a GitHub-flavored markdown
// table — the form EXPERIMENTS.md's "Sweeps" section embeds, so the doc
// tables are regenerated by the harness rather than written by hand.
func Markdown(w io.Writer, s *Snapshot) error {
	if _, err := fmt.Fprintln(w,
		"| seed | n | f | hw | style | load | recovery mean (ms) | p50 | p99 | blocked mean (ms) | p99 | ctl msgs | ctl bytes | sim events |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w,
		"|---:|---:|---:|:---|:---|---:|---:|---:|---:|---:|---:|---:|---:|---:|"); err != nil {
		return err
	}
	for _, c := range s.Cells {
		load := "-"
		if c.Params.Load > 0 {
			load = fmt.Sprintf("%d", c.Params.Load)
		}
		if _, err := fmt.Fprintf(w, "| %s | %d | %d | %s | %s | %s | %.3f | %.3f | %.3f | %.3f | %.3f | %d | %d | %d |\n",
			c.Params.seedLabel(), c.Params.N, c.Params.Failures, c.Params.Profile, c.Params.Style, load,
			c.Recovery.MeanMS, c.Recovery.P50MS, c.Recovery.P99MS,
			c.Blocked.MeanMS, c.Blocked.P99MS,
			c.CtlMsgs, c.CtlBytes, c.SimEvents); err != nil {
			return err
		}
	}
	return nil
}
