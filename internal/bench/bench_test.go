package bench

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rollrec/internal/cluster"
)

// -update regenerates testdata/BENCH_golden.json from the current tree:
//
//	go test ./internal/bench -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata golden files")

func TestAxesCellsSortedAndDeduped(t *testing.T) {
	a := Axes{
		Seeds:    []int64{2, 1, 2},
		N:        []int{8, 4},
		Failures: []int{1},
		Profiles: []string{"1995"},
		Styles:   []string{"nonblocking", "blocking", "nonblocking"},
	}
	cells, err := a.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*1*1*2 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	for i := 1; i < len(cells); i++ {
		if cells[i-1].Key() >= cells[i].Key() {
			t.Fatalf("cells not strictly sorted: %q then %q", cells[i-1].Key(), cells[i].Key())
		}
	}
	if cells[0].Key() != "seed=1/n=4/f=1/hw=1995/style=blocking" {
		t.Fatalf("first cell %q", cells[0].Key())
	}
}

func TestAxesValidation(t *testing.T) {
	base := Axes{
		Seeds: []int64{1}, N: []int{4}, Failures: []int{1},
		Profiles: []string{"1995"}, Styles: []string{"nonblocking"},
	}
	bad := []func(*Axes){
		func(a *Axes) { a.Seeds = nil },
		func(a *Axes) { a.N = []int{1} },
		func(a *Axes) { a.N = []int{cluster.MaxProcs + 1} },
		func(a *Axes) { a.Failures = []int{-1} },
		func(a *Axes) { a.Failures = []int{4} }, // f >= n
		func(a *Axes) { a.Profiles = []string{"2095"} },
		func(a *Axes) { a.Styles = []string{"optimistic"} },
	}
	for i, mutate := range bad {
		a := base
		mutate(&a)
		if _, err := a.Cells(); err == nil {
			t.Errorf("case %d: invalid axes %+v accepted", i, a)
		}
	}
	if _, err := base.Cells(); err != nil {
		t.Fatalf("valid axes rejected: %v", err)
	}
}

func TestSpecForRejectsBadParams(t *testing.T) {
	for _, p := range []Params{
		{Seed: 1, N: 4, Failures: 1, Profile: "nope", Style: "nonblocking"},
		{Seed: 1, N: 4, Failures: 1, Profile: "1995", Style: "nope"},
		{Seed: 1, N: 1, Failures: 0, Profile: "1995", Style: "nonblocking"},
		{Seed: 1, N: 4, Failures: 4, Profile: "1995", Style: "nonblocking"},
		{Seed: 1, N: 4, Failures: -1, Profile: "1995", Style: "nonblocking"},
	} {
		if _, err := SpecFor(p); err == nil {
			t.Errorf("SpecFor(%+v) accepted invalid params", p)
		}
	}
	spec, err := SpecFor(Params{Seed: 7, N: 8, Failures: 2, Profile: "1995", Style: "blocking"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 8 || spec.F != 2 || spec.Seed != 7 || len(spec.Crashes) != 2 {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.Crashes[1].At-spec.Crashes[0].At != crashSpacing {
		t.Fatalf("crashes not staggered: %+v", spec.Crashes)
	}
	// Failure-free cells still need tolerance >= 1.
	spec, err = SpecFor(Params{Seed: 1, N: 4, Failures: 0, Profile: "modern", Style: "nonblocking"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.F != 1 || len(spec.Crashes) != 0 {
		t.Fatalf("failure-free spec = %+v", spec)
	}
}

func TestDistOf(t *testing.T) {
	if d := distOf(nil); d != (Dist{}) {
		t.Fatalf("empty dist = %+v", d)
	}
	d := distOf([]time.Duration{4 * time.Millisecond, 2 * time.Millisecond, 6 * time.Millisecond})
	if d.MeanMS != 4 || d.P50MS != 4 || d.P99MS < 5.9 {
		t.Fatalf("dist = %+v", d)
	}
}

// goldenAxes is the fixed-seed 2×2 sweep of the golden-file test: two
// seeds by two styles, small enough to run in a couple of seconds.
func goldenAxes() Axes {
	return Axes{
		Seeds:    []int64{1, 2},
		N:        []int{4},
		Failures: []int{1},
		Profiles: []string{"1995"},
		Styles:   []string{"nonblocking", "blocking"},
	}
}

func goldenMeta() Meta {
	return Meta{Label: "golden", GitRev: "fixed", GoVersion: "fixed"}
}

func encode(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenSnapshotByteStable is the determinism acceptance test: the
// same sweep run serially and on a 4-worker pool must produce the same
// bytes, and those bytes must match the committed golden file on every
// platform and -cpu setting (CI runs this with -cpu 1,4).
func TestGoldenSnapshotByteStable(t *testing.T) {
	ctx := context.Background()
	serial, err := RunSweep(ctx, goldenAxes(), Options{Workers: 1, Meta: goldenMeta()})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunSweep(ctx, goldenAxes(), Options{Workers: 4, Meta: goldenMeta()})
	if err != nil {
		t.Fatal(err)
	}
	got := encode(t, serial)
	if pooledBytes := encode(t, pooled); !bytes.Equal(got, pooledBytes) {
		t.Fatal("snapshot bytes differ between 1-worker and 4-worker runs")
	}
	for _, c := range serial.Cells {
		if c.Errors != 0 {
			t.Errorf("%s: %d invariant violations", c.Key, c.Errors)
		}
		if c.Recoveries != 1 {
			t.Errorf("%s: %d recoveries, want 1", c.Key, c.Recoveries)
		}
	}

	golden := filepath.Join("testdata", "BENCH_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/bench -run TestGolden -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot deviates from %s byte-for-byte; if the change is intended, "+
			"regenerate with -update and re-seed BENCH_seed.json (see Makefile bench-seed)", golden)
	}

	// The golden snapshot must round-trip through the decoder.
	back, err := Decode(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(serial.Cells) || back.Meta != serial.Meta {
		t.Fatal("decode round-trip lost data")
	}
}

func TestRunSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSweep(ctx, goldenAxes(), Options{Workers: 2, Meta: goldenMeta()}); err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := Decode(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := Decode(strings.NewReader(`{"meta":{"schema":0}}`)); err == nil {
		t.Fatal("schema 0 accepted")
	}
	_, err := Decode(strings.NewReader(`{"meta":{"schema":99}}`))
	if err == nil {
		t.Fatal("future schema version accepted")
	}
	if !strings.Contains(err.Error(), "newer than") {
		t.Fatalf("future-schema error %q does not say the file is newer", err)
	}
}

// TestV1SeedSnapshotUpgrades feeds the decoder real committed schema-v1
// bytes (the pre-v2 BENCH_seed.json): they must upgrade in place, and a
// fresh sweep over the same axes must still agree metric-for-metric at
// threshold 0 — the schema bump may not move any measured number.
func TestV1SeedSnapshotUpgrades(t *testing.T) {
	v1, err := ReadFile(filepath.Join("testdata", "BENCH_seed_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if v1.Meta.Schema != SchemaVersion {
		t.Fatalf("decoded schema %d, want upgraded to %d", v1.Meta.Schema, SchemaVersion)
	}
	fresh, err := RunSweep(context.Background(), v1.Axes, Options{Workers: 4, Meta: goldenMeta()})
	if err != nil {
		t.Fatal(err)
	}
	if regs, _ := Compare(v1, fresh, 0); len(regs) != 0 {
		t.Fatalf("v1 snapshot vs fresh v2 sweep regressed: %v", regs)
	}
	if regs, _ := Compare(fresh, v1, 0); len(regs) != 0 {
		t.Fatalf("fresh v2 sweep vs v1 snapshot regressed: %v", regs)
	}
}

// TestMergedSeedsSweep checks the multi-seed aggregation: one cell per
// configuration covering the whole seed axis, byte-deterministic for any
// worker count, carrying the across-seed spread.
func TestMergedSeedsSweep(t *testing.T) {
	axes := goldenAxes()
	axes.MergeSeeds = true
	ctx := context.Background()
	serial, err := RunSweep(ctx, axes, Options{Workers: 1, Meta: goldenMeta()})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunSweep(ctx, axes, Options{Workers: 4, Meta: goldenMeta()})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, serial), encode(t, pooled)) {
		t.Fatal("merged-seed snapshot differs between 1-worker and 4-worker runs")
	}
	if len(serial.Cells) != 2 { // styles only; the seed axis is folded
		t.Fatalf("got %d cells, want 2", len(serial.Cells))
	}
	c := serial.Cells[0]
	if c.Key != "seed=1+2/n=4/f=1/hw=1995/style=blocking" {
		t.Fatalf("merged key %q", c.Key)
	}
	if c.Recoveries != 2 { // one crash per seed
		t.Fatalf("merged cell has %d recoveries, want 2", c.Recoveries)
	}
	if c.AcrossSeeds == nil {
		t.Fatal("merged cell lacks across_seeds")
	}
	sp := c.AcrossSeeds.RecoveryMeanMS
	if !(sp.Min <= sp.Mean && sp.Mean <= sp.Max) || sp.Max == 0 {
		t.Fatalf("across-seed recovery spread inconsistent: %+v", sp)
	}
	// The pooled distribution must match re-aggregating the two single-seed
	// cells of the plain sweep.
	single, err := RunSweep(ctx, goldenAxes(), Options{Workers: 2, Meta: goldenMeta()})
	if err != nil {
		t.Fatal(err)
	}
	var msgs int64
	for _, sc := range single.Cells {
		if sc.Params.Style == "blocking" {
			msgs += sc.CtlMsgs
		}
	}
	if c.CtlMsgs != msgs {
		t.Fatalf("merged ctl_msgs %d != sum of single-seed cells %d", c.CtlMsgs, msgs)
	}
}

func sampleCell(key string, rec, blocked float64, msgs int64, errs int) Cell {
	return Cell{
		Key:      key,
		Recovery: Dist{MeanMS: rec, P50MS: rec, P99MS: rec},
		Blocked:  Dist{MeanMS: blocked, P99MS: blocked},
		CtlMsgs:  msgs, CtlBytes: msgs * 100, SimEvents: 1000,
		Errors: errs,
	}
}

func snapOf(cells ...Cell) *Snapshot {
	return &Snapshot{Meta: Meta{Schema: SchemaVersion}, Cells: cells}
}

func TestCompare(t *testing.T) {
	old := snapOf(sampleCell("a", 100, 10, 20, 0), sampleCell("b", 100, 0, 20, 0))

	if regs, _ := Compare(old, snapOf(sampleCell("a", 100, 10, 20, 0), sampleCell("b", 100, 0, 20, 0)), 0); len(regs) != 0 {
		t.Fatalf("identical snapshots regressed: %v", regs)
	}
	// Within threshold.
	if regs, _ := Compare(old, snapOf(sampleCell("a", 104, 10, 20, 0), sampleCell("b", 100, 0, 20, 0)), 0.05); len(regs) != 0 {
		t.Fatalf("4%% growth regressed at 5%% threshold: %v", regs)
	}
	// Beyond threshold: recovery mean and p99 are both gated (p50 is not).
	regs, _ := Compare(old, snapOf(sampleCell("a", 110, 10, 20, 0), sampleCell("b", 100, 0, 20, 0)), 0.05)
	if len(regs) != 2 {
		t.Fatalf("10%% recovery growth: got %d regressions %v, want 2 (mean+p99)", len(regs), regs)
	}
	// Zero-to-nonzero blocked time is always a regression.
	regs, _ = Compare(old, snapOf(sampleCell("a", 100, 10, 20, 0), sampleCell("b", 100, 5, 20, 0)), 0.5)
	if len(regs) == 0 {
		t.Fatal("blocked time appearing from zero not flagged")
	}
	// Invariant errors gate regardless of threshold.
	regs, _ = Compare(old, snapOf(sampleCell("a", 100, 10, 20, 1), sampleCell("b", 100, 0, 20, 0)), 10)
	if len(regs) != 1 || regs[0].Metric != "errors" {
		t.Fatalf("errors not gated: %v", regs)
	}
	// Missing cell.
	regs, _ = Compare(old, snapOf(sampleCell("a", 100, 10, 20, 0)), 0.05)
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("missing cell not flagged: %v", regs)
	}
	// Extra cell is a note, not a regression.
	regs, notes := Compare(old, snapOf(sampleCell("a", 100, 10, 20, 0), sampleCell("b", 100, 0, 20, 0), sampleCell("c", 1, 0, 1, 0)), 0.05)
	if len(regs) != 0 || len(notes) == 0 {
		t.Fatalf("extra cell: regs=%v notes=%v", regs, notes)
	}
	// Improvements are notes.
	_, notes = Compare(old, snapOf(sampleCell("a", 50, 10, 20, 0), sampleCell("b", 100, 0, 20, 0)), 0.05)
	if len(notes) == 0 {
		t.Fatal("improvement not noted")
	}
}

func TestMarkdown(t *testing.T) {
	s := snapOf(sampleCell("x", 100, 10, 20, 0))
	s.Cells[0].Params = Params{Seed: 1, N: 4, Failures: 1, Profile: "1995", Style: "blocking"}
	var buf bytes.Buffer
	if err := Markdown(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"| seed |", "| 1 | 4 | 1 | 1995 | blocking |", "100.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Fatalf("markdown has %d lines, want 3", lines)
	}
}

// TestLoadedCellSweep runs one offered-load cell end to end: the key gains
// the load suffix, the traffic readouts (offered/shed/client_commit) are
// populated, and a load-free cell from the same binary stays free of them
// so v2-era snapshots remain byte-comparable.
func TestLoadedCellSweep(t *testing.T) {
	axes := Axes{
		Seeds:    []int64{1},
		N:        []int{8},
		Failures: []int{1},
		Profiles: []string{"1995"},
		Styles:   []string{"nonblocking"},
		Loads:    []int{100},
	}
	s, err := RunSweep(context.Background(), axes, Options{Workers: 1, Meta: goldenMeta()})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(s.Cells))
	}
	c := s.Cells[0]
	if want := "seed=1/n=8/f=1/hw=1995/style=nonblocking/load=100"; c.Key != want {
		t.Fatalf("cell key %q, want %q", c.Key, want)
	}
	if c.Errors != 0 {
		t.Fatalf("%d invariant violations", c.Errors)
	}
	if c.Offered == 0 {
		t.Error("loaded cell offered no arrivals")
	}
	if c.Outputs == 0 {
		t.Error("loaded cell committed no outputs")
	}
	if c.ClientCommit == nil || c.ClientCommit.P99MS <= 0 {
		t.Errorf("client commit distribution missing or empty: %+v", c.ClientCommit)
	}
	if c.Recoveries != 1 {
		t.Errorf("%d recoveries, want 1", c.Recoveries)
	}
}

// TestLoadedAxesValidation: load values must be non-negative and every
// (n, f) pair must admit a traffic topology.
func TestLoadedAxesValidation(t *testing.T) {
	base := Axes{
		Seeds: []int64{1}, N: []int{8}, Failures: []int{1},
		Profiles: []string{"1995"}, Styles: []string{"nonblocking"},
	}
	neg := base
	neg.Loads = []int{-1}
	if _, err := neg.Cells(); err == nil {
		t.Error("negative load accepted")
	}
	// n=2 under load leaves no backend once a client and frontend are carved out.
	tiny := base
	tiny.N = []int{2}
	tiny.Loads = []int{100}
	if _, err := tiny.Cells(); err == nil {
		t.Error("n=2 loaded axes accepted despite empty backend tier")
	}
	// f larger than the backend tier cannot be assigned victims.
	overf := base
	overf.Failures = []int{5}
	overf.Loads = []int{100}
	if _, err := overf.Cells(); err == nil {
		t.Error("f=5 loaded axes accepted despite 4-backend tier")
	}
}
