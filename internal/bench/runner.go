package bench

import (
	"context"
	"runtime"
	"sync"
	"time"

	"rollrec/internal/experiments"
	"rollrec/internal/ids"
	"rollrec/internal/workload"
)

// Progress is called (serialized) after each cell completes. done counts
// completed cells; order of completion is nondeterministic, but only the
// stderr progress line sees it — snapshot cells are stored by index.
type Progress func(done, total int, c Cell)

// Options tune a sweep run.
type Options struct {
	// Workers bounds the pool; <=0 means GOMAXPROCS.
	Workers int
	// OnCell, if non-nil, observes completed cells for progress reporting.
	OnCell Progress
	// Meta is copied into the snapshot (Schema is forced).
	Meta Meta
}

// RunSweep expands the axes, runs every cell on a bounded worker pool,
// and returns the snapshot with cells in sorted parameter-key order.
//
// Each cell is one deterministic single-threaded simulation; the pool is
// pure fan-out with results written back by cell index, so the returned
// snapshot is identical for any worker count. On ctx cancellation the
// sweep aborts and returns ctx's error — a partial sweep is never
// reported, because a snapshot missing cells would read as a regression.
func RunSweep(ctx context.Context, axes Axes, opts Options) (*Snapshot, error) {
	cells, err := axes.Cells()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	out := make([]Cell, len(cells))
	errs := make([]error, len(cells))
	idxc := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // serializes OnCell and the done counter
		done     int
		progress = opts.OnCell
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				c, err := runCell(ctx, cells[i])
				out[i], errs[i] = c, err
				if err == nil && progress != nil {
					mu.Lock()
					done++
					progress(done, len(cells), c)
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case idxc <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxc)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	meta := opts.Meta
	meta.Schema = SchemaVersion
	return &Snapshot{Meta: meta, Axes: axes, Cells: out}, nil
}

// seedRun is the raw readout of one seed's simulation within a cell.
type seedRun struct {
	recoveries, blocked, outDeltas []time.Duration
	ctlMsgs, ctlBytes              int64
	delivered, simEvents, outputs  int64
	offered, shed                  int64
	clientDeltas                   []time.Duration
	errors                         int
}

// runCell executes one parameter combination — every seed it covers,
// serially, so the pool's nondeterministic scheduling can never reorder
// the aggregation — and reduces the readouts to a Cell.
func runCell(ctx context.Context, p Params) (Cell, error) {
	seeds := p.SeedList()
	runs := make([]seedRun, 0, len(seeds))
	var horizon time.Duration
	for _, seed := range seeds {
		sp := p
		sp.Seed, sp.Seeds = seed, nil
		spec, err := SpecFor(sp)
		if err != nil {
			return Cell{}, err
		}
		horizon = spec.Horizon
		run, err := runOne(ctx, spec)
		if err != nil {
			return Cell{}, err
		}
		runs = append(runs, run)
	}

	var all seedRun
	for _, run := range runs {
		all.recoveries = append(all.recoveries, run.recoveries...)
		all.blocked = append(all.blocked, run.blocked...)
		all.outDeltas = append(all.outDeltas, run.outDeltas...)
		all.clientDeltas = append(all.clientDeltas, run.clientDeltas...)
		all.ctlMsgs += run.ctlMsgs
		all.ctlBytes += run.ctlBytes
		all.delivered += run.delivered
		all.simEvents += run.simEvents
		all.outputs += run.outputs
		all.offered += run.offered
		all.shed += run.shed
		all.errors += run.errors
	}
	c := Cell{
		Key:          p.Key(),
		Params:       p,
		Recovery:     distOf(all.recoveries),
		Recoveries:   len(all.recoveries),
		Blocked:      distOf(all.blocked),
		CtlMsgs:      all.ctlMsgs,
		CtlBytes:     all.ctlBytes,
		Delivered:    all.delivered,
		SimEvents:    all.simEvents,
		SimMS:        ms(horizon),
		Outputs:      all.outputs,
		OutputCommit: distOf(all.outDeltas),
		Errors:       all.errors,
	}
	if p.Load > 0 {
		c.Offered, c.Shed = all.offered, all.shed
		d := distOf(all.clientDeltas)
		c.ClientCommit = &d
	}
	if len(runs) > 1 {
		per := func(f func(seedRun) float64) MinMeanMax {
			xs := make([]float64, len(runs))
			for i, run := range runs {
				xs[i] = f(run)
			}
			return minMeanMax(xs)
		}
		c.AcrossSeeds = &SeedSpread{
			RecoveryMeanMS: per(func(r seedRun) float64 { return distOf(r.recoveries).MeanMS }),
			BlockedMeanMS:  per(func(r seedRun) float64 { return distOf(r.blocked).MeanMS }),
			CtlMsgs:        per(func(r seedRun) float64 { return float64(r.ctlMsgs) }),
			CtlBytes:       per(func(r seedRun) float64 { return float64(r.ctlBytes) }),
			SimEvents:      per(func(r seedRun) float64 { return float64(r.simEvents) }),
		}
	}
	return c, nil
}

// runOne executes a single-seed spec and collects its readouts.
func runOne(ctx context.Context, spec experiments.Spec) (seedRun, error) {
	r, err := experiments.Run(ctx, spec)
	if err != nil {
		return seedRun{}, err
	}
	crashed := map[ids.ProcID]bool{}
	for _, cr := range spec.Crashes {
		crashed[cr.Proc] = true
	}
	var run seedRun
	for i := 0; i < spec.N; i++ {
		m := r.C.Metrics(ids.ProcID(i))
		run.delivered += m.Delivered
		for _, tr := range m.Recoveries {
			if tr.ReplayedAt != 0 {
				run.recoveries = append(run.recoveries, tr.Total())
			}
		}
		if !crashed[ids.ProcID(i)] {
			run.blocked = append(run.blocked, m.BlockedTotal())
		}
	}
	run.ctlMsgs, run.ctlBytes = r.RecoveryTraffic()
	run.simEvents = r.Events
	run.errors = len(r.Errors)
	// The ledger exists even when output tracking is off (it is then
	// empty); the default sweep keeps tracking off so its cells stay
	// byte-comparable with schema-v1 history.
	run.outputs = int64(r.C.Outputs().Total())
	run.outDeltas = r.C.Outputs().Deltas()
	// Loaded cells: the open-loop arrival counts and the client tier's
	// commit latencies — what a user of the simulated service experiences.
	if spec.Traffic != nil && r.Traffic != nil {
		run.offered = r.Traffic.Offered()
		run.shed = r.Traffic.Shed()
		for _, rec := range r.C.Outputs().Records() {
			if spec.Traffic.TierOf(rec.Proc) == workload.TierClient && rec.Committed() {
				run.clientDeltas = append(run.clientDeltas, rec.Latency())
			}
		}
	}
	return run, nil
}
