package bench

import (
	"context"
	"runtime"
	"sync"
	"time"

	"rollrec/internal/experiments"
	"rollrec/internal/ids"
)

// Progress is called (serialized) after each cell completes. done counts
// completed cells; order of completion is nondeterministic, but only the
// stderr progress line sees it — snapshot cells are stored by index.
type Progress func(done, total int, c Cell)

// Options tune a sweep run.
type Options struct {
	// Workers bounds the pool; <=0 means GOMAXPROCS.
	Workers int
	// OnCell, if non-nil, observes completed cells for progress reporting.
	OnCell Progress
	// Meta is copied into the snapshot (Schema is forced).
	Meta Meta
}

// RunSweep expands the axes, runs every cell on a bounded worker pool,
// and returns the snapshot with cells in sorted parameter-key order.
//
// Each cell is one deterministic single-threaded simulation; the pool is
// pure fan-out with results written back by cell index, so the returned
// snapshot is identical for any worker count. On ctx cancellation the
// sweep aborts and returns ctx's error — a partial sweep is never
// reported, because a snapshot missing cells would read as a regression.
func RunSweep(ctx context.Context, axes Axes, opts Options) (*Snapshot, error) {
	cells, err := axes.Cells()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	out := make([]Cell, len(cells))
	errs := make([]error, len(cells))
	idxc := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // serializes OnCell and the done counter
		done     int
		progress = opts.OnCell
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				c, err := runCell(ctx, cells[i])
				out[i], errs[i] = c, err
				if err == nil && progress != nil {
					mu.Lock()
					done++
					progress(done, len(cells), c)
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case idxc <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxc)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	meta := opts.Meta
	meta.Schema = SchemaVersion
	return &Snapshot{Meta: meta, Axes: axes, Cells: out}, nil
}

// runCell executes one parameter combination and aggregates its metrics.
func runCell(ctx context.Context, p Params) (Cell, error) {
	spec, err := SpecFor(p)
	if err != nil {
		return Cell{}, err
	}
	r, err := experiments.Run(ctx, spec)
	if err != nil {
		return Cell{}, err
	}

	crashed := map[ids.ProcID]bool{}
	for _, cr := range spec.Crashes {
		crashed[cr.Proc] = true
	}
	var recoveries, blocked []time.Duration
	var delivered int64
	for i := 0; i < spec.N; i++ {
		m := r.C.Metrics(ids.ProcID(i))
		delivered += m.Delivered
		for _, tr := range m.Recoveries {
			if tr.ReplayedAt != 0 {
				recoveries = append(recoveries, tr.Total())
			}
		}
		if !crashed[ids.ProcID(i)] {
			blocked = append(blocked, m.BlockedTotal())
		}
	}
	msgs, bytes := r.RecoveryTraffic()
	return Cell{
		Key:        p.Key(),
		Params:     p,
		Recovery:   distOf(recoveries),
		Recoveries: len(recoveries),
		Blocked:    distOf(blocked),
		CtlMsgs:    msgs,
		CtlBytes:   bytes,
		Delivered:  delivered,
		SimEvents:  r.Events,
		SimMS:      ms(spec.Horizon),
		Errors:     len(r.Errors),
	}, nil
}
