// Package bench is the parallel sweep/benchmark harness: it fans the
// deterministic experiments across a bounded worker pool and emits
// versioned BENCH_*.json snapshots of the paper's quantities (recovery
// time, live-process blocked time, recovery control traffic) over a
// parameter grid of seed × cluster size × failure count × hardware
// profile × recovery style.
//
// Each cell of the grid is one single-threaded, deterministic simulation
// (experiments.Run), so cells are embarrassingly parallel: the pool only
// changes wall-clock time, never results. Cells are generated in sorted
// parameter-key order and written back by index, which makes the snapshot
// byte-stable across runs, worker counts, and GOMAXPROCS settings — the
// property the golden tests and the CI regression gate rely on.
//
// The compare half (Compare) diffs two snapshots cell-by-cell and reports
// cost increases beyond a threshold, giving CI a perf gate over the same
// numbers EXPERIMENTS.md discusses. See DESIGN.md §9 for the schema and
// the determinism argument.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rollrec/internal/cluster"
	"rollrec/internal/experiments"
	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/recovery"
	"rollrec/internal/workload"
)

// styles maps the wire-format style names to recovery styles. Kept in
// explicit sorted-name order so Styles() doubles as the canonical axis
// order.
var styleNames = []string{"blocking", "manetho", "nonblocking"}

func styleOf(name string) (recovery.Style, error) {
	switch name {
	case "nonblocking":
		return recovery.NonBlocking, nil
	case "blocking":
		return recovery.Blocking, nil
	case "manetho":
		return recovery.Manetho, nil
	}
	return 0, fmt.Errorf("bench: unknown style %q (have %v)", name, styleNames)
}

// profileNames lists the hardware profiles in canonical axis order.
var profileNames = []string{"1995", "modern"}

func profileOf(name string) (node.Hardware, error) {
	switch name {
	case "1995":
		return node.Profile1995(), nil
	case "modern":
		return node.ProfileModern(), nil
	}
	return node.Hardware{}, fmt.Errorf("bench: unknown hardware profile %q (have %v)", name, profileNames)
}

// Axes is the sweep grid: the cross product of its fields is the cell set.
// Empty axes are invalid — a sweep must pin every dimension explicitly so
// two snapshots with equal axes are comparable cell-for-cell.
type Axes struct {
	Seeds []int64 `json:"seeds"`
	// MergeSeeds collapses the seed axis: instead of one cell per seed,
	// each (n, failures, profile, style) combination becomes ONE cell whose
	// seeds all run (serially, in one worker) and aggregate — pooled
	// sample distributions, summed totals, and an across-seed min/mean/max
	// spread. The default axes keep it off so CI snapshots stay tiny.
	MergeSeeds bool `json:"merge_seeds,omitempty"`
	// N is the cluster size axis.
	N []int `json:"n"`
	// Failures is the failure-count axis: the number of crashes injected
	// AND the tolerance f the protocol is configured for (f = max(1,
	// failures), so a failure-free cell measures the f=1 logging overhead).
	Failures []int `json:"failures"`
	// Profiles names hardware profiles ("1995", "modern").
	Profiles []string `json:"profiles"`
	// Styles names recovery styles ("nonblocking", "blocking", "manetho").
	Styles []string `json:"styles"`
	// Loads is the offered-load axis in requests per second. 0 (the
	// default when the axis is empty) runs the classic gossip workload;
	// a positive load hosts the open-loop multi-tier traffic workload
	// (DESIGN §12) at that aggregate rate instead, and the cell reports
	// offered/shed arrivals and client-tier commit latency.
	Loads []int `json:"loads,omitempty"`
}

// Params are one cell's coordinates in the grid.
type Params struct {
	Seed int64 `json:"seed"`
	// Seeds is set on merged cells (Axes.MergeSeeds): every seed the cell
	// aggregates, with Seed mirroring Seeds[0] for v1 readers. Nil on
	// plain single-seed cells.
	Seeds    []int64 `json:"seeds,omitempty"`
	N        int     `json:"n"`
	Failures int     `json:"failures"`
	Profile  string  `json:"profile"`
	Style    string  `json:"style"`
	// Load is the offered load in req/s; 0 selects the gossip workload.
	Load int `json:"load,omitempty"`
}

// SeedList returns the seeds the cell covers (at least one).
func (p Params) SeedList() []int64 {
	if len(p.Seeds) > 0 {
		return p.Seeds
	}
	return []int64{p.Seed}
}

// seedLabel renders the seed coordinate: "7" or "1+2+3" for a merged cell.
func (p Params) seedLabel() string {
	parts := make([]string, 0, len(p.Seeds)+1)
	for _, s := range p.SeedList() {
		parts = append(parts, fmt.Sprintf("%d", s))
	}
	return strings.Join(parts, "+")
}

// Key renders the parameter key the cells are sorted by. Load-free cells
// keep the historical five-part key, so snapshots taken before the loads
// axis existed stay comparable cell-for-cell.
func (p Params) Key() string {
	k := fmt.Sprintf("seed=%s/n=%d/f=%d/hw=%s/style=%s",
		p.seedLabel(), p.N, p.Failures, p.Profile, p.Style)
	if p.Load > 0 {
		k += fmt.Sprintf("/load=%d", p.Load)
	}
	return k
}

// normalize sorts and deduplicates one axis in place.
// DefaultAxes is the sweep the bench CLI runs when no axes are given: the
// paper's cluster-size range on both hardware profiles across all three
// recovery styles, with enough injected failures to exercise overlapping
// recoveries. Before the flat-heap scheduler this grid was too expensive
// to be a default; now it is the recommended starting snapshot. The
// Makefile's bench-seed axes stay narrower on purpose — the committed
// BENCH_seed.json is a regression gate, not a survey.
func DefaultAxes() Axes {
	return Axes{
		Seeds:    []int64{1},
		N:        []int{4, 8, 16, 32},
		Failures: []int{1, 2},
		Profiles: []string{"1995", "modern"},
		Styles:   []string{"nonblocking", "blocking", "manetho"},
	}
}

func normalize[T int | int64 | string](xs []T) []T {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Cells validates the axes and expands them into the sorted cell list:
// nested in coordinate order (seed, n, failures, profile, style, load).
// For load-free axes this is exactly ascending Params.Key order; a
// multi-valued loads axis keeps the nesting order even where the key
// strings would sort "load=1000" before "load=200" lexicographically.
func (a Axes) Cells() ([]Params, error) {
	if len(a.Seeds) == 0 || len(a.N) == 0 || len(a.Failures) == 0 ||
		len(a.Profiles) == 0 || len(a.Styles) == 0 {
		return nil, fmt.Errorf("bench: every axis needs at least one value, got %+v", a)
	}
	if len(a.Loads) == 0 {
		a.Loads = []int{0}
	}
	a.Seeds = normalize(a.Seeds)
	a.N = normalize(a.N)
	a.Failures = normalize(a.Failures)
	a.Profiles = normalize(a.Profiles)
	a.Styles = normalize(a.Styles)
	a.Loads = normalize(a.Loads)
	for _, s := range a.Styles {
		if _, err := styleOf(s); err != nil {
			return nil, err
		}
	}
	for _, p := range a.Profiles {
		if _, err := profileOf(p); err != nil {
			return nil, err
		}
	}
	for _, n := range a.N {
		if err := cluster.ValidateN(n); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
	}
	for _, f := range a.Failures {
		if f < 0 {
			return nil, fmt.Errorf("bench: failure count %d < 0", f)
		}
		for _, n := range a.N {
			if f >= n {
				return nil, fmt.Errorf("bench: %d failures need a cluster larger than n=%d", f, n)
			}
		}
	}
	for _, l := range a.Loads {
		if l < 0 {
			return nil, fmt.Errorf("bench: offered load %d < 0", l)
		}
		if l == 0 {
			continue
		}
		for _, n := range a.N {
			if _, err := trafficFor(n, l); err != nil {
				return nil, err
			}
			for _, f := range a.Failures {
				if _, err := trafficVictims(n, f); err != nil {
					return nil, err
				}
			}
		}
	}
	// Merged sweeps fold the whole seed axis into each cell; the nested
	// loop below then runs once with a single sentinel "seed group".
	seedGroups := make([][]int64, 0, len(a.Seeds))
	if a.MergeSeeds {
		seedGroups = append(seedGroups, a.Seeds)
	} else {
		for _, s := range a.Seeds {
			seedGroups = append(seedGroups, []int64{s})
		}
	}
	var cells []Params
	for _, group := range seedGroups {
		for _, n := range a.N {
			for _, f := range a.Failures {
				for _, hw := range a.Profiles {
					for _, style := range a.Styles {
						for _, load := range a.Loads {
							p := Params{Seed: group[0], N: n, Failures: f, Profile: hw, Style: style, Load: load}
							if a.MergeSeeds && len(group) > 1 {
								p.Seeds = group
							}
							cells = append(cells, p)
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// crashSpacing staggers injected crashes so each recovery window is
// disjoint on the 1995 profile (detection ≈3 s + restore ≈1.5 s); the
// first crash lands after the workload has built up log and checkpoint
// state, like the experiments' scenarios.
const (
	firstCrashAt = 10 * time.Second
	crashSpacing = 8 * time.Second
)

// trafficFor derives a cell's traffic topology from its cluster size:
// roughly a quarter of the processes each for clients and frontends, the
// rest backends, fan-out capped at 2 — the same shape D12 uses at n=8.
func trafficFor(n, load int) (workload.Traffic, error) {
	clients := max(1, n/4)
	frontends := max(1, n/4)
	backends := n - clients - frontends
	if backends < 1 {
		return workload.Traffic{}, fmt.Errorf("bench: n=%d too small for a traffic topology (need n >= 3)", n)
	}
	return workload.Traffic{
		Clients:    clients,
		Frontends:  frontends,
		Backends:   backends,
		FanOut:     min(2, backends),
		Load:       load,
		WorkPerHop: int64(500 * time.Microsecond),
		PayloadPad: 256,
	}, nil
}

// trafficVictims picks the crash victims of a traffic cell from the
// backend tail (n-1, n-2, ...): clients must never crash under FBL (see
// fbl.Process.Inject), and the classic victims 1..f would be clients or
// frontends in the traffic topology.
func trafficVictims(n, failures int) ([]ids.ProcID, error) {
	tr, err := trafficFor(n, 1)
	if err != nil {
		return nil, err
	}
	if failures > tr.Backends {
		return nil, fmt.Errorf("bench: %d failures exceed the %d backends of the n=%d traffic topology",
			failures, tr.Backends, n)
	}
	victims := make([]ids.ProcID, failures)
	for i := range victims {
		victims[i] = ids.ProcID(n - 1 - i)
	}
	return victims, nil
}

// SpecFor derives the experiment spec for one cell from the same
// PaperSpec baseline the E/D experiments use. Victims are processes
// 1..Failures, crashed crashSpacing apart starting at firstCrashAt; the
// horizon leaves every recovery room to complete. A loaded cell (Load >
// 0) swaps the gossip workload for the open-loop traffic topology, turns
// output tracking on, and crashes backends from the tail instead.
func SpecFor(p Params) (experiments.Spec, error) {
	style, err := styleOf(p.Style)
	if err != nil {
		return experiments.Spec{}, err
	}
	hw, err := profileOf(p.Profile)
	if err != nil {
		return experiments.Spec{}, err
	}
	if err := cluster.ValidateN(p.N); err != nil {
		return experiments.Spec{}, fmt.Errorf("bench: %w", err)
	}
	if p.Failures < 0 || p.Failures >= p.N {
		return experiments.Spec{}, fmt.Errorf("bench: failure count %d out of range [0,n) for n=%d", p.Failures, p.N)
	}
	spec := experiments.PaperSpec(style, p.Seed)
	spec.N = p.N
	spec.HW = hw
	spec.F = p.Failures
	if spec.F < 1 {
		spec.F = 1
	}
	victims := func(i int) ids.ProcID { return ids.ProcID(1 + i) }
	if p.Load > 0 {
		tr, err := trafficFor(p.N, p.Load)
		if err != nil {
			return experiments.Spec{}, err
		}
		vs, err := trafficVictims(p.N, p.Failures)
		if err != nil {
			return experiments.Spec{}, err
		}
		spec.App = nil
		spec.Traffic = &tr
		spec.TrackOutputs = true
		victims = func(i int) ids.ProcID { return vs[i] }
	}
	var plan failure.Plan
	for i := 0; i < p.Failures; i++ {
		plan = append(plan, failure.Crash{
			At:   firstCrashAt + time.Duration(i)*crashSpacing,
			Proc: victims(i),
		})
	}
	spec.Crashes = plan
	spec.Horizon = 20*time.Second + time.Duration(p.Failures)*10*time.Second
	return spec, nil
}
