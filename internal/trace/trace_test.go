package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestRecorderSpansAndInstants(t *testing.T) {
	r := NewRecorder(64)
	r.Instant(10, 0, EvSend, Tag{Kind: 1, Arg: 42})
	sp := r.Begin(20, 1, EvGather, Tag{Inc: 2})
	r.Instant(25, 1, EvAnnounce, Tag{})
	r.End(sp, 70)

	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	if ev[0].Name != EvSend || ev[0].TS != 10 || ev[0].Tag.Arg != 42 || ev[0].Span {
		t.Errorf("instant event wrong: %+v", ev[0])
	}
	if ev[1].Name != EvGather || !ev[1].Span || ev[1].Open || ev[1].Dur != 50 {
		t.Errorf("span event wrong: %+v", ev[1])
	}
	if ev[1].Tag.Inc != 2 {
		t.Errorf("span lost its tag: %+v", ev[1])
	}
}

func TestRecorderOpenSpanStaysOpen(t *testing.T) {
	r := NewRecorder(8)
	r.Begin(5, 0, EvDown, Tag{})
	ev := r.Events()
	if len(ev) != 1 || !ev[0].Open {
		t.Fatalf("open span not reported open: %+v", ev)
	}
	// Ending SpanRef(0) must be a no-op.
	r.End(0, 100)
	if got := r.Events(); !got[0].Open {
		t.Fatal("End(0) closed an unrelated span")
	}
}

func TestRecorderRingWraparound(t *testing.T) {
	r := NewRecorder(8) // rounds to 8
	sp := r.Begin(0, 0, EvDown, Tag{})
	for i := 0; i < 20; i++ {
		r.Instant(int64(i+1), 0, EvSend, Tag{})
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	if r.Dropped() != 13 { // 21 appended, 8 retained
		t.Fatalf("Dropped = %d, want 13", r.Dropped())
	}
	// The span was evicted: End must not corrupt the ring.
	r.End(sp, 100)
	ev := r.Events()
	if len(ev) != 8 {
		t.Fatalf("got %d events", len(ev))
	}
	for i, e := range ev {
		if e.Name != EvSend {
			t.Fatalf("event %d corrupted after stale End: %+v", i, e)
		}
	}
	// Events must be the newest 8, in order.
	if ev[0].TS != 13 || ev[7].TS != 20 {
		t.Fatalf("wrong window: first %d last %d", ev[0].TS, ev[7].TS)
	}
}

func TestRecorderDoubleEnd(t *testing.T) {
	r := NewRecorder(8)
	sp := r.Begin(10, 0, EvReplay, Tag{})
	r.End(sp, 20)
	r.End(sp, 99) // second End must not stretch the span
	if ev := r.Events(); ev[0].Dur != 10 {
		t.Fatalf("double End changed dur: %+v", ev[0])
	}
}

func TestNopTracer(t *testing.T) {
	var tr Tracer = Nop{}
	if tr.Enabled() {
		t.Fatal("Nop reports enabled")
	}
	sp := tr.Begin(0, 0, EvGather, Tag{})
	if sp != 0 {
		t.Fatalf("Nop.Begin = %d", sp)
	}
	tr.End(sp, 10)
	tr.Instant(0, 0, EvSend, Tag{})
	tr.Span(0, 1, 0, EvStorageRead, Tag{})
	if OrNop(nil) != (Nop{}) {
		t.Fatal("OrNop(nil) != Nop")
	}
	r := NewRecorder(8)
	if OrNop(r) != Tracer(r) {
		t.Fatal("OrNop(r) != r")
	}
}

func TestChromeExportParses(t *testing.T) {
	r := NewRecorder(64)
	r.Instant(1500, 3, EvSend, Tag{Kind: 1, Arg: 64})
	sp := r.Begin(2000, 3, EvGather, Tag{Inc: 2, Arg: 1})
	r.End(sp, 52000)
	r.Begin(60000, -1, EvStorageWrite, Tag{}) // left open; storage proc tid

	var buf bytes.Buffer
	if err := WriteChrome(&buf, r.Events(), ChromeOptions{
		KindName: func(k uint8) string { return "app" },
	}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var names []string
	var sawMeta, sawSpan, sawInstant, sawOpen bool
	for _, e := range doc.TraceEvents {
		names = append(names, e["name"].(string))
		switch e["ph"] {
		case "M":
			sawMeta = true
		case "X":
			sawSpan = true
			if args, ok := e["args"].(map[string]any); ok && args["open"] == float64(1) {
				sawOpen = true
				if e["tid"] != float64(storageTID) {
					t.Errorf("storage proc tid = %v, want %d", e["tid"], storageTID)
				}
			}
		case "i":
			sawInstant = true
			if args := e["args"].(map[string]any); args["kind"] != "app" {
				t.Errorf("kind name not applied: %v", args)
			}
		}
	}
	if !sawMeta || !sawSpan || !sawInstant || !sawOpen {
		t.Fatalf("missing event classes (meta=%v span=%v instant=%v open=%v) in %v",
			sawMeta, sawSpan, sawInstant, sawOpen, names)
	}
}

// TestChromeExportOutputCommit pins the span kind the output ledger emits
// (DESIGN §10): one complete event per committed output, spanning request to
// release, so commit latency is visible on the Perfetto timeline.
func TestChromeExportOutputCommit(t *testing.T) {
	r := NewRecorder(8)
	r.Span(1000, 250, 2, EvOutputCommit, Tag{Arg: 7}) // output seq 7
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r.Events(), ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	for _, e := range doc.TraceEvents {
		if e["name"] != EvOutputCommit || e["ph"] != "X" {
			continue
		}
		if e["dur"] != 0.25 || e["tid"] != float64(2) { // µs in Chrome format
			t.Fatalf("output-commit span mangled: %v", e)
		}
		return
	}
	t.Fatalf("no %q complete event in export: %s", EvOutputCommit, buf.String())
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.String() != "n=0" {
		t.Fatal("zero histogram not zero")
	}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != time.Second {
		t.Fatalf("min %v max %v", h.Min(), h.Max())
	}
	check := func(q, want float64) {
		got := h.Quantile(q).Seconds()
		if got < want*0.90 || got > want*1.10 {
			t.Errorf("p%.0f = %.4fs, want ≈%.4fs (±10%%)", q*100, got, want)
		}
	}
	check(0.50, 0.500)
	check(0.95, 0.950)
	check(0.99, 0.990)
	if h.Quantile(1) != h.Max() || h.Quantile(0) != h.Min() {
		t.Error("quantile extremes not clamped to observed min/max")
	}
	mean := h.Mean()
	if mean < 480*time.Millisecond || mean > 520*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's low value must map back to the same bucket, and
	// bucket lows must be strictly increasing.
	prev := int64(-1)
	for idx := 0; idx < histBuckets; idx++ {
		low := bucketLow(idx)
		if low <= prev {
			t.Fatalf("bucketLow not increasing at %d: %d <= %d", idx, low, prev)
		}
		prev = low
		if got := bucketOf(low); got != idx {
			t.Fatalf("bucketOf(bucketLow(%d)) = %d", idx, got)
		}
	}
	// Random values: the reported bucket low must be within 1/16 below.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := rng.Int63()
		low := bucketLow(bucketOf(v))
		if low > v || v-low > v>>histSubBits {
			t.Fatalf("value %d bucketed to low %d (err > 1/16)", v, low)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10 * time.Millisecond)
	b.Record(20 * time.Millisecond)
	b.Record(30 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 || a.Max() != 30*time.Millisecond || a.Min() != 10*time.Millisecond {
		t.Fatalf("merge wrong: %v", a.String())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 3 {
		t.Fatal("merging empty changed count")
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder(64)
	r.Span(0, int64(10*time.Millisecond), 0, EvGather, Tag{})
	r.Span(0, int64(30*time.Millisecond), 1, EvGather, Tag{})
	r.Instant(5, 2, EvAnnounce, Tag{})
	r.Begin(7, 2, EvDown, Tag{}) // open: counted, not timed

	stats := Summarize(r.Events())
	names := make([]string, len(stats))
	for i, s := range stats {
		names[i] = s.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("summary not sorted: %v", names)
	}
	byName := map[string]PhaseStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	if g := byName[EvGather]; g.Count != 2 || g.Spans.Count() != 2 || g.Spans.Max() != 30*time.Millisecond {
		t.Errorf("gather stat wrong: %+v", g)
	}
	if d := byName[EvDown]; d.Count != 1 || d.Spans.Count() != 0 {
		t.Errorf("open span must not contribute a duration: %+v", d)
	}

	var buf bytes.Buffer
	if err := WriteSummary(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"phase", EvGather, EvAnnounce, "p95"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramDelta: diffing two snapshots of one accumulating histogram
// yields exactly the window's observations — the tumbling-window primitive
// the timeline sampler builds its per-tick percentiles on.
func TestHistogramDelta(t *testing.T) {
	var h, snap Histogram
	h.Record(2 * time.Millisecond)
	h.Record(40 * time.Millisecond)
	snap = h

	h.Record(100 * time.Millisecond)
	h.Record(100 * time.Millisecond)
	h.Record(7 * time.Second)

	d := h.Delta(&snap)
	if d.Count() != 3 {
		t.Fatalf("window count = %d, want 3 (only post-snapshot records)", d.Count())
	}
	// Values are recovered to bucket resolution (≤ ~6% low).
	if p50 := d.Quantile(0.50); p50 < 90*time.Millisecond || p50 > 100*time.Millisecond {
		t.Errorf("window p50 = %v, want ~100ms", p50)
	}
	if d.Min() < 90*time.Millisecond || d.Min() > 100*time.Millisecond {
		t.Errorf("window min = %v, want ~100ms (pre-snapshot 2ms must not leak in)", d.Min())
	}
	if d.Max() < 6*time.Second || d.Max() > 7*time.Second {
		t.Errorf("window max = %v, want ~7s", d.Max())
	}

	// An idle window is empty, and a self-delta is empty.
	if e := h.Delta(&h); e.Count() != 0 {
		t.Errorf("self-delta count = %d, want 0", e.Count())
	}
	var zero Histogram
	full := h.Delta(&zero)
	if full.Count() != h.Count() {
		t.Errorf("delta against zero lost records: %d vs %d", full.Count(), h.Count())
	}

	// Misuse (prev ahead of h) clamps to empty rather than going negative.
	if bad := snap.Delta(&h); bad.Count() != 0 {
		t.Errorf("reversed delta count = %d, want 0", bad.Count())
	}
}

// TestChromeExportEmptyRecorder pins the byte-exact Chrome output of an
// empty recorder: a well-formed, deterministic document even when nothing
// was traced.
func TestChromeExportEmptyRecorder(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, NewRecorder(16).Events(), ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "{\"traceEvents\":[\n\n]}\n"
	if got != want {
		t.Fatalf("empty export = %q, want %q", got, want)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty export decoded %d events", len(doc.TraceEvents))
	}
}
