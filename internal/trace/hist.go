package trace

import (
	"fmt"
	"math/bits"
	"time"
)

// Log-bucketed histogram geometry: 16 sub-buckets per power of two gives a
// worst-case relative error of 1/16 ≈ 6% per recorded value, HDR-histogram
// style, over the full int64 nanosecond range.
const (
	histSubBits = 4
	histSubCnt  = 1 << histSubBits
	// 16 exact buckets for values < 16, then 16 sub-buckets per octave up
	// to the top int64 octave (exponent 62): 960 buckets, ~7.5 KB.
	histBuckets = (62-histSubBits)*histSubCnt + histSubCnt + histSubCnt
)

// Histogram is a fixed-size log-bucketed latency histogram. The zero value
// is ready to use; Record never allocates. It is not safe for concurrent
// use (the runtimes serialize per-process metrics; aggregate with Merge).
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < histSubCnt {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= histSubBits
	sub := int(uint64(v)>>(uint(exp)-histSubBits)) & (histSubCnt - 1)
	return (exp-histSubBits)*histSubCnt + histSubCnt + sub
}

// bucketLow returns the smallest value mapping to bucket idx.
func bucketLow(idx int) int64 {
	if idx < histSubCnt {
		return int64(idx)
	}
	exp := (idx-histSubCnt)/histSubCnt + histSubBits
	sub := int64(idx & (histSubCnt - 1))
	return (int64(histSubCnt) + sub) << (uint(exp) - histSubBits)
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Total returns the sum of all observations.
func (h *Histogram) Total() time.Duration { return time.Duration(h.sum) }

// Max returns the largest observation (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Min returns the smallest observation (exact, not bucketed).
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Mean returns the arithmetic mean.
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / h.n)
}

// Quantile returns the q-quantile (0..1) to bucket resolution, clamped to
// the exact observed extremes.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	rank := int64(q*float64(h.n-1)) + 1
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Delta returns the histogram of observations recorded in h but not in
// prev, assuming prev is an earlier snapshot of the same accumulating
// histogram (bucket counts monotonically non-decreasing). Min and max of
// the window are approximated to bucket resolution — the exact extremes of
// only the new observations are not recoverable from two cumulative
// snapshots. Buckets where prev exceeds h (a misuse) clamp to zero.
func (h *Histogram) Delta(prev *Histogram) Histogram {
	var d Histogram
	for i := range h.counts {
		c := h.counts[i] - prev.counts[i]
		if c <= 0 {
			continue
		}
		d.counts[i] = c
		d.n += c
		d.sum += c * bucketLow(i)
		if d.min == 0 && d.n == c { // first populated bucket
			d.min = bucketLow(i)
		}
		d.max = bucketLow(i)
	}
	return d
}

// String summarizes the distribution for logs and tables.
func (h *Histogram) String() string {
	if h.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v max=%v",
		h.n, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}
