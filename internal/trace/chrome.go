package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// ChromeOptions parameterizes the Chrome trace-event export.
type ChromeOptions struct {
	// ProcLabel names a process track; nil uses "p<id>" ("p[stable]" for
	// negative ids).
	ProcLabel func(proc int32) string
	// KindName names a wire kind for event args; nil emits the number.
	KindName func(kind uint8) string
}

// storageTID is the track id used for negative process ids (the
// stable-storage pseudo-process); chrome://tracing dislikes negative tids.
const storageTID = 999

func chromeTID(proc int32) int32 {
	if proc < 0 {
		return storageTID
	}
	return proc
}

func defaultProcLabel(proc int32) string {
	if proc < 0 {
		return "p[stable]"
	}
	return "p" + strconv.Itoa(int(proc))
}

// WriteChrome renders events in the Chrome trace-event JSON format
// understood by Perfetto (ui.perfetto.dev) and chrome://tracing: one
// "thread" track per process, complete ("X") events for spans, instant
// ("i") events for point events, and thread_name metadata naming the
// tracks. Timestamps are microseconds of virtual time. Spans still open at
// export time are clamped to the latest timestamp seen and tagged with
// "open":1.
func WriteChrome(w io.Writer, events []Event, opts ChromeOptions) error {
	label := opts.ProcLabel
	if label == nil {
		label = defaultProcLabel
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}

	var horizon int64
	seen := map[int32]bool{}
	var procs []int32
	for _, e := range events {
		if !seen[e.Proc] {
			seen[e.Proc] = true
			procs = append(procs, e.Proc)
		}
		end := e.TS + e.Dur
		if end > horizon {
			horizon = end
		}
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })

	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}

	for _, p := range procs {
		emit(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
			chromeTID(p), label(p)))
	}
	for _, e := range events {
		args := fmtArgs(e, opts)
		ts := float64(e.TS) / 1e3 // ns → µs
		if e.Span {
			dur := float64(e.Dur) / 1e3
			if e.Open {
				dur = float64(horizon-e.TS) / 1e3
			}
			emit(fmt.Sprintf(`{"ph":"X","pid":0,"tid":%d,"ts":%.3f,"dur":%.3f,"name":%q%s}`,
				chromeTID(e.Proc), ts, dur, e.Name, args))
			continue
		}
		emit(fmt.Sprintf(`{"ph":"i","s":"t","pid":0,"tid":%d,"ts":%.3f,"name":%q%s}`,
			chromeTID(e.Proc), ts, e.Name, args))
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// fmtArgs renders the non-zero tag fields as a trace-event args object.
func fmtArgs(e Event, opts ChromeOptions) string {
	t := e.Tag
	if t == (Tag{}) && !e.Open {
		return ""
	}
	s := `,"args":{`
	sep := ""
	if t.Kind != 0 {
		if opts.KindName != nil {
			s += fmt.Sprintf(`%s"kind":%q`, sep, opts.KindName(t.Kind))
		} else {
			s += fmt.Sprintf(`%s"kind":%d`, sep, t.Kind)
		}
		sep = ","
	}
	if t.Inc != 0 {
		s += fmt.Sprintf(`%s"inc":%d`, sep, t.Inc)
		sep = ","
	}
	if t.Arg != 0 {
		s += fmt.Sprintf(`%s"arg":%d`, sep, t.Arg)
		sep = ","
	}
	if e.Open {
		s += sep + `"open":1`
	}
	return s + "}"
}
