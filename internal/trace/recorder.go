package trace

import "sync"

// Event is one recorded trace event. Instants have Dur == 0 and Open ==
// false; spans in progress at export time have Open == true.
type Event struct {
	TS   int64 // virtual ns since run start
	Dur  int64 // span duration; 0 for instants
	Proc int32
	Name string
	Tag  Tag
	Span bool // span (Begin/Span) vs instant
	Open bool // span never ended (evicted Begin or still running)
}

const defaultCapacity = 1 << 16

// Recorder is the enabled Tracer: a fixed-capacity ring buffer of events.
// Recording never allocates in steady state; when the ring is full the
// oldest events are overwritten (Dropped counts them). Recorder is safe
// for concurrent use — the simulator is single-threaded but the livenet
// runtime records from many goroutines.
type Recorder struct {
	mu   sync.Mutex
	buf  []Event
	mask uint64
	next uint64 // total events ever appended; buf index = seq & mask
}

// NewRecorder returns a recorder holding up to capacity events (rounded up
// to a power of two; <= 0 selects the 65536-event default).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &Recorder{buf: make([]Event, c), mask: uint64(c - 1)}
}

// Enabled implements Tracer.
func (r *Recorder) Enabled() bool { return true }

// append stores e and returns its 1-based sequence number.
func (r *Recorder) append(e Event) uint64 {
	r.next++
	r.buf[r.next&r.mask] = e
	return r.next
}

// Instant implements Tracer.
func (r *Recorder) Instant(ts int64, proc int32, name string, tag Tag) {
	r.mu.Lock()
	r.append(Event{TS: ts, Proc: proc, Name: name, Tag: tag})
	r.mu.Unlock()
}

// Begin implements Tracer.
func (r *Recorder) Begin(ts int64, proc int32, name string, tag Tag) SpanRef {
	r.mu.Lock()
	seq := r.append(Event{TS: ts, Proc: proc, Name: name, Tag: tag, Span: true, Open: true})
	r.mu.Unlock()
	return SpanRef(seq)
}

// End implements Tracer.
func (r *Recorder) End(ref SpanRef, ts int64) {
	if ref == 0 {
		return
	}
	r.mu.Lock()
	seq := uint64(ref)
	// The span is still addressable only if the ring has not lapped it.
	if seq <= r.next && r.next-seq < uint64(len(r.buf)) {
		e := &r.buf[seq&r.mask]
		if e.Span && e.Open {
			e.Dur = ts - e.TS
			e.Open = false
		}
	}
	r.mu.Unlock()
}

// Span implements Tracer.
func (r *Recorder) Span(ts, dur int64, proc int32, name string, tag Tag) {
	r.mu.Lock()
	r.append(Event{TS: ts, Dur: dur, Proc: proc, Name: name, Tag: tag, Span: true})
	r.mu.Unlock()
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Dropped returns how many events were overwritten by ring wraparound.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return 0
	}
	return r.next - uint64(len(r.buf))
}

// Events returns the retained events in recording order. The slice is a
// copy; spans still open keep Open == true and Dur == 0.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	count := uint64(len(r.buf))
	if n < count {
		count = n
	}
	out := make([]Event, 0, count)
	for seq := n - count + 1; seq <= n; seq++ {
		out = append(out, r.buf[seq&r.mask])
	}
	return out
}
