package trace

import (
	"testing"
	"time"
)

// BenchmarkTracerDisabled measures the cost the kernel hot path pays when
// tracing is off: an interface dispatch into Nop. This must stay at ~0
// ns/op with zero allocations — it is the overhead every simulated event
// carries.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr Tracer = Nop{}
	tag := Tag{Kind: 1, Arg: 128}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Instant(int64(i), 3, EvSend, tag)
		sp := tr.Begin(int64(i), 3, EvGather, tag)
		tr.End(sp, int64(i)+10)
	}
}

// BenchmarkTracerEnabled measures the enabled steady-state recording path:
// ring-buffer stores under a mutex, no allocation per event.
func BenchmarkTracerEnabled(b *testing.B) {
	r := NewRecorder(1 << 12)
	var tr Tracer = r
	tag := Tag{Kind: 1, Arg: 128}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Instant(int64(i), 3, EvSend, tag)
		sp := tr.Begin(int64(i), 3, EvGather, tag)
		tr.End(sp, int64(i)+10)
	}
}

// BenchmarkHistogramRecord measures the per-observation cost of the
// latency histogram (bucket index computation + counter increment).
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
}
