// Package trace is the causal event-tracing subsystem: a zero-dependency
// (stdlib-only), allocation-conscious recorder of instant events and
// duration spans stamped with virtual time and tagged with the process,
// wire kind, and recovery incarnation that produced them.
//
// The paper's argument rests on *where time goes* during recovery — blocked
// time on live processes, stable-storage latency, and control-message
// rounds — so both runtimes, the recovery manager, and the storage path
// emit events here. Exporters turn one run into a browsable Perfetto /
// chrome://tracing timeline (one track per process) or a per-phase text
// summary; the Histogram type replaces sum-only accounting with
// log-bucketed latency distributions (p50/p95/p99/max).
//
// The Tracer interface has two implementations: *Recorder (enabled,
// ring-buffered, safe for concurrent use) and Nop (disabled, a true no-op
// whose cost is verified by BenchmarkTracerDisabled). Runtimes hold a
// Tracer and call it unconditionally; the disabled path must therefore be
// free of allocation and branching beyond the interface dispatch.
package trace

// Phase and event names used across the stack. Exporters and tests match
// on these strings; using the constants keeps the enabled recording path
// allocation-free (string headers only, no formatting).
const (
	// Kernel / runtime lifecycle.
	EvCrash   = "crash"   // instant: failure injected
	EvDown    = "down"    // span: crash → process image restarted
	EvRestart = "restart" // instant: watchdog restarted the process

	// Frame traffic (tagged with the wire kind).
	EvSend = "send" // instant: frame handed to the network
	EvRecv = "recv" // instant: frame delivered to a live process

	// Stable storage (span duration is the modeled access latency).
	EvStorageRead  = "storage-read"
	EvStorageWrite = "storage-write"

	// Recovery phases (paper §3.4), one span per phase per incarnation.
	EvRestore     = "restore"      // span: checkpoint read from stable storage
	EvAnnounce    = "announce"     // instant: recovery ordinal broadcast
	EvWaiting     = "waiting"      // span: announced → recovery data in hand
	EvGather      = "gather"       // span: one leader gather round (steps 4–5)
	EvGatherAbort = "gather-abort" // instant: gather restarted ("goto 4")
	EvReplay      = "replay"       // span: re-consuming logged deliveries
	EvBlocked     = "blocked"      // span: live process deferring deliveries
	EvCheckpoint  = "checkpoint"   // span: checkpoint capture → durable

	// Output commit (DESIGN §10): one span per externally-visible output,
	// request → commit; Arg carries the per-process output sequence number.
	EvOutputCommit = "output-commit"
)

// Tag carries optional event annotations. The zero Tag is valid; fields
// are only exported when non-zero.
type Tag struct {
	// Kind is the wire kind of the frame that produced the event (0 none).
	Kind uint8
	// Inc is the recovery incarnation the event belongs to (0 none).
	Inc uint32
	// Arg is free-form: frame bytes for send/recv, the round number for
	// gather spans, determinant counts, ...
	Arg int64
}

// SpanRef identifies an open span returned by Begin; 0 is "no span" and is
// safe to End (a no-op).
type SpanRef uint64

// Tracer is the recording interface the runtimes and the protocol layers
// call. Timestamps are virtual nanoseconds as reported by the runtime;
// proc is the process identifier (int32(ids.ProcID) — the package stays
// free of internal imports so every layer can depend on it).
type Tracer interface {
	// Enabled reports whether events are recorded; call sites may use it
	// to skip expensive argument preparation.
	Enabled() bool
	// Instant records a point event.
	Instant(ts int64, proc int32, name string, tag Tag)
	// Begin opens a duration span; close it with End.
	Begin(ts int64, proc int32, name string, tag Tag) SpanRef
	// End closes a span opened by Begin. Ending SpanRef(0), an evicted, or
	// an already-ended span is a no-op.
	End(ref SpanRef, ts int64)
	// Span records a complete span whose duration is already known (e.g. a
	// modeled storage access).
	Span(ts, dur int64, proc int32, name string, tag Tag)
}

// Nop is the disabled tracer: every method is an empty function so the
// compiler can reduce call sites to the interface dispatch alone.
type Nop struct{}

// Enabled implements Tracer.
func (Nop) Enabled() bool { return false }

// Instant implements Tracer.
func (Nop) Instant(int64, int32, string, Tag) {}

// Begin implements Tracer.
func (Nop) Begin(int64, int32, string, Tag) SpanRef { return 0 }

// End implements Tracer.
func (Nop) End(SpanRef, int64) {}

// Span implements Tracer.
func (Nop) Span(int64, int64, int32, string, Tag) {}

// OrNop returns t, or Nop if t is nil; runtimes use it so a nil Tracer in
// a config means "disabled" without nil checks on the hot path.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return Nop{}
	}
	return t
}
