package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// PhaseStat aggregates every span (or instant) sharing one name.
type PhaseStat struct {
	Name  string
	Spans Histogram // span durations (empty for pure instants)
	Count int64     // total events, spans + instants
}

// Summarize aggregates events by name. Open spans are excluded from the
// duration histogram (their length is unknown) but counted.
func Summarize(events []Event) []PhaseStat {
	byName := map[string]*PhaseStat{}
	var order []string
	for _, e := range events {
		st := byName[e.Name]
		if st == nil {
			st = &PhaseStat{Name: e.Name}
			byName[e.Name] = st
			order = append(order, e.Name)
		}
		st.Count++
		if e.Span && !e.Open {
			st.Spans.Record(time.Duration(e.Dur))
		}
	}
	sort.Strings(order)
	out := make([]PhaseStat, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out
}

// WriteSummary renders the per-phase table: for each event name, the
// occurrence count and — for spans — the latency distribution. This is the
// plain-text counterpart of the Perfetto timeline.
func WriteSummary(w io.Writer, events []Event) error {
	stats := Summarize(events)
	if _, err := fmt.Fprintf(w, "%-16s %8s %10s %10s %10s %10s %10s\n",
		"phase", "count", "total", "p50", "p95", "p99", "max"); err != nil {
		return err
	}
	for _, st := range stats {
		if st.Spans.Count() == 0 {
			if _, err := fmt.Fprintf(w, "%-16s %8d %10s %10s %10s %10s %10s\n",
				st.Name, st.Count, "-", "-", "-", "-", "-"); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%-16s %8d %10s %10s %10s %10s %10s\n",
			st.Name, st.Count,
			fmtDur(st.Spans.Total()), fmtDur(st.Spans.Quantile(0.50)),
			fmtDur(st.Spans.Quantile(0.95)), fmtDur(st.Spans.Quantile(0.99)),
			fmtDur(st.Spans.Max())); err != nil {
			return err
		}
	}
	return nil
}

// fmtDur renders durations compactly for the summary table.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
