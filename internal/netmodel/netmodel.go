package netmodel

import (
	"math/rand"
	"time"

	"rollrec/internal/ids"
)

// Params is the link cost model, identical for every link in the cluster.
type Params struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniform [0, Jitter) component per frame. FIFO order per
	// link is preserved regardless.
	Jitter time.Duration
	// Bandwidth is the link transmission rate in bytes/second; zero means
	// infinitely fast transmission.
	Bandwidth float64
	// DropRate drops a frame with this probability (0..1). The protocol
	// family assumes reliable channels; this knob exists for the failure-
	// injection tests that verify the assumption is load-bearing.
	DropRate float64
}

// TransmitTime returns the serialization delay of a frame of size bytes.
func (p Params) TransmitTime(size int) time.Duration {
	if p.Bandwidth <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / p.Bandwidth * float64(time.Second))
}

type linkKey struct{ from, to ids.ProcID }

type link struct {
	freeAt      int64 // when the sender's half-link finishes its last frame
	lastDeliver int64 // FIFO clamp
}

// Network tracks the state of all links. Not safe for concurrent use; the
// simulator owns it, and livenet guards it.
type Network struct {
	params Params
	links  map[linkKey]*link
	cut    map[linkKey]bool
	rng    *rand.Rand

	// Counters for tests and experiments.
	Frames  int64
	Bytes   int64
	Dropped int64
}

// New returns a network with the given parameters and randomness source
// (used for jitter and drops).
func New(p Params, rng *rand.Rand) *Network {
	return &Network{
		params: p,
		links:  make(map[linkKey]*link),
		cut:    make(map[linkKey]bool),
		rng:    rng,
	}
}

// Params returns the link cost model.
func (n *Network) Params() Params { return n.params }

// Schedule computes the delivery time for a frame of size bytes sent at
// virtual time now. ok is false when the frame is lost to a partition or a
// random drop.
func (n *Network) Schedule(now int64, from, to ids.ProcID, size int) (deliverAt int64, ok bool) {
	key := linkKey{from, to}
	if n.cut[key] {
		n.Dropped++
		return 0, false
	}
	if n.params.DropRate > 0 && n.rng.Float64() < n.params.DropRate {
		n.Dropped++
		return 0, false
	}
	l := n.links[key]
	if l == nil {
		l = &link{}
		n.links[key] = l
	}
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	l.freeAt = start + int64(n.params.TransmitTime(size))
	at := l.freeAt + int64(n.params.Latency)
	if n.params.Jitter > 0 {
		at += n.rng.Int63n(int64(n.params.Jitter))
	}
	// FIFO per link: never deliver before (or at the same instant as) the
	// previous frame on this link.
	if at <= l.lastDeliver {
		at = l.lastDeliver + 1
	}
	l.lastDeliver = at
	n.Frames++
	n.Bytes += int64(size)
	return at, true
}

// Cut severs the directed link from→to; frames on it are dropped until
// Heal. Use both directions for a symmetric partition.
func (n *Network) Cut(from, to ids.ProcID) { n.cut[linkKey{from, to}] = true }

// Heal restores the directed link from→to.
func (n *Network) Heal(from, to ids.ProcID) { delete(n.cut, linkKey{from, to}) }

// Isolate cuts every link to and from p (used to model a network-dead
// host, distinct from a crashed process).
func (n *Network) Isolate(p ids.ProcID, peers []ids.ProcID) {
	for _, q := range peers {
		if q != p {
			n.Cut(p, q)
			n.Cut(q, p)
		}
	}
}

// Rejoin heals every link to and from p.
func (n *Network) Rejoin(p ids.ProcID, peers []ids.ProcID) {
	for _, q := range peers {
		if q != p {
			n.Heal(p, q)
			n.Heal(q, p)
		}
	}
}
