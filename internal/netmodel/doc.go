// Package netmodel models the interconnect: per-pair FIFO links with
// propagation latency, optional jitter, bandwidth serialization, and
// partition/drop injection.
//
// The model is runtime-agnostic: given "a frame of s bytes leaves a for b
// now", it answers "when does it arrive, if at all", tracking per-link
// queueing so back-to-back large frames serialize realistically.
package netmodel
