package netmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rollrec/internal/ids"
)

func newTestNet(p Params) *Network {
	return New(p, rand.New(rand.NewSource(1)))
}

func TestLatencyOnly(t *testing.T) {
	n := newTestNet(Params{Latency: time.Millisecond})
	at, ok := n.Schedule(0, 0, 1, 100)
	if !ok {
		t.Fatal("frame dropped on healthy link")
	}
	if at != int64(time.Millisecond) {
		t.Fatalf("deliverAt = %d, want 1ms", at)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1 MB/s: a 1000-byte frame takes 1 ms to transmit.
	n := newTestNet(Params{Latency: time.Millisecond, Bandwidth: 1e6})
	a1, _ := n.Schedule(0, 0, 1, 1000)
	a2, _ := n.Schedule(0, 0, 1, 1000)
	if a1 != int64(2*time.Millisecond) {
		t.Fatalf("first frame at %v, want 2ms", time.Duration(a1))
	}
	if a2 != int64(3*time.Millisecond) {
		t.Fatalf("second frame must queue behind the first: at %v, want 3ms", time.Duration(a2))
	}
}

func TestLinksAreIndependent(t *testing.T) {
	n := newTestNet(Params{Latency: time.Millisecond, Bandwidth: 1e6})
	n.Schedule(0, 0, 1, 1000)
	a, _ := n.Schedule(0, 0, 2, 1000)
	if a != int64(2*time.Millisecond) {
		t.Fatalf("different destination must not queue: at %v", time.Duration(a))
	}
	b, _ := n.Schedule(0, 2, 1, 1000)
	if b != int64(2*time.Millisecond) {
		t.Fatalf("different source must not queue: at %v", time.Duration(b))
	}
}

func TestFIFOUnderJitter(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		n := New(Params{Latency: time.Millisecond, Jitter: 5 * time.Millisecond, Bandwidth: 1e7},
			rand.New(rand.NewSource(seed)))
		now, prev := int64(0), int64(-1)
		for _, s := range sizes {
			at, ok := n.Schedule(now, 0, 1, int(s))
			if !ok {
				return false
			}
			if at <= prev {
				return false
			}
			prev = at
			now += int64(100 * time.Microsecond)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCutAndHeal(t *testing.T) {
	n := newTestNet(Params{Latency: time.Millisecond})
	n.Cut(0, 1)
	if _, ok := n.Schedule(0, 0, 1, 10); ok {
		t.Fatal("cut link must drop")
	}
	if _, ok := n.Schedule(0, 1, 0, 10); !ok {
		t.Fatal("reverse direction must still work")
	}
	n.Heal(0, 1)
	if _, ok := n.Schedule(0, 0, 1, 10); !ok {
		t.Fatal("healed link must deliver")
	}
	if n.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Dropped)
	}
}

func TestIsolateRejoin(t *testing.T) {
	n := newTestNet(Params{Latency: time.Millisecond})
	peers := []ids.ProcID{0, 1, 2}
	n.Isolate(1, peers)
	if _, ok := n.Schedule(0, 0, 1, 10); ok {
		t.Fatal("isolated process must not receive")
	}
	if _, ok := n.Schedule(0, 1, 2, 10); ok {
		t.Fatal("isolated process must not send")
	}
	if _, ok := n.Schedule(0, 0, 2, 10); !ok {
		t.Fatal("unrelated links must survive isolation")
	}
	n.Rejoin(1, peers)
	if _, ok := n.Schedule(0, 0, 1, 10); !ok {
		t.Fatal("rejoined process must receive again")
	}
}

func TestDropRate(t *testing.T) {
	n := newTestNet(Params{DropRate: 1.0})
	if _, ok := n.Schedule(0, 0, 1, 10); ok {
		t.Fatal("DropRate 1.0 must drop everything")
	}
	n = newTestNet(Params{DropRate: 0.0})
	if _, ok := n.Schedule(0, 0, 1, 10); !ok {
		t.Fatal("DropRate 0 must drop nothing")
	}
}

func TestTransmitTime(t *testing.T) {
	p := Params{Bandwidth: 1e6}
	if got := p.TransmitTime(1000); got != time.Millisecond {
		t.Fatalf("TransmitTime = %v, want 1ms", got)
	}
	if got := (Params{}).TransmitTime(1000); got != 0 {
		t.Fatalf("zero bandwidth must be free: %v", got)
	}
	if got := p.TransmitTime(0); got != 0 {
		t.Fatalf("empty frame must be free: %v", got)
	}
}
