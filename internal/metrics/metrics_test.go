package metrics

import (
	"testing"
	"time"

	"rollrec/internal/trace"
)

func TestBlockedAccounting(t *testing.T) {
	p := NewProc()
	if p.Blocked() {
		t.Fatal("fresh proc must not be blocked")
	}
	p.BlockStart(100)
	if !p.Blocked() {
		t.Fatal("BlockStart must open a span")
	}
	p.BlockStart(200) // idempotent: must not reset the start
	p.BlockEnd(600)
	if p.Blocked() {
		t.Fatal("BlockEnd must close the span")
	}
	if p.BlockedTotal() != 500 {
		t.Fatalf("BlockedTotal = %v, want 500ns", p.BlockedTotal())
	}
	if p.BlockedSpans() != 1 {
		t.Fatalf("BlockedSpans = %d, want 1", p.BlockedSpans())
	}
	p.BlockEnd(700) // stray end must be a no-op
	if p.BlockedTotal() != 500 {
		t.Fatalf("stray BlockEnd changed total: %v", p.BlockedTotal())
	}
}

func TestSentReceivedCounters(t *testing.T) {
	p := NewProc()
	p.Sent(1, 100)
	p.Sent(1, 50)
	p.Sent(5, 10)
	p.Received(1, 100)
	if p.MsgsSent[1] != 2 || p.BytesSent[1] != 150 {
		t.Fatalf("kind-1 counters: %d msgs %d bytes", p.MsgsSent[1], p.BytesSent[1])
	}
	msgs, bytes := p.TotalSent(false, 1)
	if msgs != 3 || bytes != 160 {
		t.Fatalf("TotalSent(all) = %d, %d", msgs, bytes)
	}
	msgs, bytes = p.TotalSent(true, 1)
	if msgs != 1 || bytes != 10 {
		t.Fatalf("TotalSent(control) = %d, %d", msgs, bytes)
	}
	p.Sent(200, 10) // out-of-range kind must not panic or count
	if m, _ := p.TotalSent(false, 1); m != 3 {
		t.Fatal("out-of-range kind must be ignored")
	}
}

func TestStorageOp(t *testing.T) {
	p := NewProc()
	p.StorageOp(true, 1000, time.Millisecond)
	p.StorageOp(false, 500, 2*time.Millisecond)
	if p.StorageWrites != 1 || p.StorageReads != 1 {
		t.Fatal("op counters wrong")
	}
	if p.StorageWriteBytes != 1000 || p.StorageReadBytes != 500 {
		t.Fatal("byte counters wrong")
	}
	if p.StorageTime() != 3*time.Millisecond {
		t.Fatalf("StorageTime = %v", p.StorageTime())
	}
	if p.StorageHist.Count() != 2 {
		t.Fatalf("StorageHist.Count = %d, want 2", p.StorageHist.Count())
	}
	if p.StorageHist.Max() != 2*time.Millisecond {
		t.Fatalf("StorageHist.Max = %v", p.StorageHist.Max())
	}
}

func TestRecoveryTrace(t *testing.T) {
	p := NewProc()
	if p.CurrentRecovery() != nil {
		t.Fatal("no trace expected before a crash")
	}
	p.Recoveries = append(p.Recoveries, RecoveryTrace{CrashedAt: 1000})
	tr := p.CurrentRecovery()
	if tr == nil || tr.CrashedAt != 1000 {
		t.Fatal("CurrentRecovery must return the last trace")
	}
	tr.ReplayedAt = 6000
	if got := p.Recoveries[0].Total(); got != 5000 {
		t.Fatalf("Total = %v, want 5000ns (mutation through pointer must stick)", got)
	}
	if (RecoveryTrace{CrashedAt: 5}).Total() != 0 {
		t.Fatal("incomplete trace must report 0")
	}
}

func TestMeanBlocked(t *testing.T) {
	a, b, c := NewProc(), NewProc(), NewProc()
	a.BlockedHist.Record(100)
	b.BlockedHist.Record(300)
	c.BlockedHist.Record(1000)
	cl := Cluster{Procs: []*Proc{a, b, c}}
	mean, max := cl.MeanBlocked(nil)
	if mean != 466 || max != 1000 {
		t.Fatalf("MeanBlocked(all) = %v, %v", mean, max)
	}
	mean, max = cl.MeanBlocked([]int{0, 1})
	if mean != 200 || max != 300 {
		t.Fatalf("MeanBlocked(subset) = %v, %v", mean, max)
	}
	if m, x := (Cluster{}).MeanBlocked([]int{}); m != 0 || x != 0 {
		t.Fatal("empty cluster must report zeros")
	}
}

func TestQuantile(t *testing.T) {
	ds := []time.Duration{40, 10, 30, 20}
	if q := Quantile(ds, 0); q != 10 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(ds, 1); q != 40 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(ds, 0.5); q != 25 {
		t.Fatalf("q50 = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	// Input must not be reordered.
	if ds[0] != 40 {
		t.Fatal("Quantile must not mutate its input")
	}
}

func TestFmtDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{500 * time.Microsecond, "0.50ms"},
		{52 * time.Millisecond, "52.0ms"},
		{4900 * time.Millisecond, "4.90s"},
	}
	for _, c := range cases {
		if got := FmtDuration(c.d); got != c.want {
			t.Errorf("FmtDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestDerivedAccessorsMatchHandBuiltHistograms cross-checks every histogram-
// derived accessor against a trace.Histogram built by hand from the same
// observations: the accessors are thin views over the distributions, and
// this pins that they stay so (a regression here means double counting or a
// dropped record, not a formatting bug).
func TestDerivedAccessorsMatchHandBuiltHistograms(t *testing.T) {
	p := NewProc()
	var wantBlocked, wantStorage, wantOutput trace.Histogram

	// Three blocking spans with distinct lengths.
	for i, span := range []struct{ from, to int64 }{
		{100, int64(2 * time.Millisecond)},
		{int64(5 * time.Millisecond), int64(6 * time.Millisecond)},
		{int64(10 * time.Millisecond), int64(40 * time.Millisecond)},
	} {
		p.BlockStart(span.from)
		p.BlockEnd(span.to)
		wantBlocked.Record(time.Duration(span.to - span.from))
		if p.Blocked() {
			t.Fatalf("span %d left the proc blocked", i)
		}
	}
	if p.BlockedTotal() != wantBlocked.Total() {
		t.Errorf("BlockedTotal = %v, hand-built total %v", p.BlockedTotal(), wantBlocked.Total())
	}
	if p.BlockedSpans() != wantBlocked.Count() {
		t.Errorf("BlockedSpans = %d, hand-built count %d", p.BlockedSpans(), wantBlocked.Count())
	}
	if got, want := p.BlockedHist.Quantile(0.99), wantBlocked.Quantile(0.99); got != want {
		t.Errorf("blocked p99 = %v, hand-built %v", got, want)
	}

	// Storage ops: totals and distribution must agree with the hand-built
	// histogram, byte/op counters aside.
	for _, op := range []struct {
		write bool
		bytes int
		took  time.Duration
	}{
		{true, 4096, 18 * time.Millisecond},
		{true, 128, time.Millisecond},
		{false, 4096, 9 * time.Millisecond},
	} {
		p.StorageOp(op.write, op.bytes, op.took)
		wantStorage.Record(op.took)
	}
	if p.StorageTime() != wantStorage.Total() {
		t.Errorf("StorageTime = %v, hand-built total %v", p.StorageTime(), wantStorage.Total())
	}
	if p.StorageHist.Count() != wantStorage.Count() || p.StorageHist.Max() != wantStorage.Max() {
		t.Errorf("storage hist n=%d max=%v, hand-built n=%d max=%v",
			p.StorageHist.Count(), p.StorageHist.Max(), wantStorage.Count(), wantStorage.Max())
	}

	// Output commits feed OutputHist one for one.
	for _, d := range []time.Duration{3 * time.Millisecond, 90 * time.Millisecond} {
		p.OutputCommit(d)
		wantOutput.Record(d)
	}
	if p.OutputHist.Count() != wantOutput.Count() || p.OutputHist.Total() != wantOutput.Total() {
		t.Errorf("output hist n=%d total=%v, hand-built n=%d total=%v",
			p.OutputHist.Count(), p.OutputHist.Total(), wantOutput.Count(), wantOutput.Total())
	}
	if got, want := p.OutputHist.String(), wantOutput.String(); got != want {
		t.Errorf("output summary %q, hand-built %q", got, want)
	}
}
