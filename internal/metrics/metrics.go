// Package metrics collects the quantities the paper's evaluation reports:
// per-process blocked time (the intrusion of recovery on live processes),
// message and byte counts split by protocol kind (the traditional
// communication-overhead metric), stable-storage access counts and time, and
// per-recovery phase breakdowns.
//
// All timestamps are virtual nanoseconds as reported by the runtime; the
// package has no dependency on wall-clock time.
package metrics

import (
	"fmt"
	"sort"
	"time"

	"rollrec/internal/trace"
	"rollrec/internal/wire"
)

// maxKinds sizes the per-kind counter arrays. It is derived from the wire
// package's kind count so adding a wire kind can never silently overflow
// (or be silently dropped by) the counters.
const maxKinds = wire.KindCount

// Proc accumulates statistics for one process. The zero value is ready to
// use. Proc is not safe for concurrent use; the runtimes serialize event
// handling per process, and the livenet runtime guards it externally.
type Proc struct {
	// Message counters, indexed by wire kind.
	MsgsSent  [maxKinds]int64
	BytesSent [maxKinds]int64
	MsgsRecv  [maxKinds]int64
	BytesRecv [maxKinds]int64
	Dropped   int64 // frames that arrived while the process was down

	// Application-level progress.
	Delivered int64 // application messages delivered to the app
	Duplicate int64 // duplicates suppressed by (sender, ssn)
	Stale     int64 // messages rejected for carrying an old incarnation

	// Piggyback overhead (the FBL failure-free cost).
	PiggybackDets  int64 // determinants carried on outgoing app messages
	PiggybackBytes int64 // bytes of those determinants

	// Stable storage.
	StorageReads      int64
	StorageWrites     int64
	StorageReadBytes  int64
	StorageWriteBytes int64

	// Latency distributions (log-bucketed; p50/p95/p99/max). These replace
	// the former sum-only accounting: totals are derived from them.
	StorageHist  trace.Histogram // per-operation stable-storage access time
	BlockedHist  trace.Histogram // per-span live-process blocked time
	DeliveryHist trace.Histogram // per-frame network delivery latency
	OutputHist   trace.Histogram // per-output request→commit latency (DESIGN §10)

	// Intrusion accounting.
	blockedSince int64 // virtual ns; -1 when not blocked

	// Recovery traces, one per incarnation change.
	Recoveries []RecoveryTrace
}

// RecoveryTrace records the phases of one recovery of this process. A zero
// timestamp means the phase was never reached. All values are virtual
// nanoseconds since simulation start; CrashedAt is set by the harness, the
// rest by the protocol.
type RecoveryTrace struct {
	Incarnation uint32
	CrashedAt   int64 // when the crash was injected
	RestartedAt int64 // when the process image came back up
	RestoredAt  int64 // checkpoint read from stable storage completed
	GatheredAt  int64 // recovery data received from the leader
	ReplayedAt  int64 // replay finished; process is live again
	Rounds      int   // gather rounds observed (restarts due to failures)
	WasLeader   bool
}

// Total returns the crash-to-live recovery latency, or 0 if incomplete.
func (r RecoveryTrace) Total() time.Duration {
	if r.ReplayedAt == 0 || r.CrashedAt == 0 {
		return 0
	}
	return time.Duration(r.ReplayedAt - r.CrashedAt)
}

// NewProc returns an empty metrics accumulator.
func NewProc() *Proc {
	return &Proc{blockedSince: -1}
}

// Sent records an outgoing frame of the given kind and size.
//
//rollvet:hotpath
func (p *Proc) Sent(kind uint8, bytes int) {
	if int(kind) < maxKinds {
		p.MsgsSent[kind]++
		p.BytesSent[kind] += int64(bytes)
	}
}

// Received records an inbound frame delivered to the process.
//
//rollvet:hotpath
func (p *Proc) Received(kind uint8, bytes int) {
	if int(kind) < maxKinds {
		p.MsgsRecv[kind]++
		p.BytesRecv[kind] += int64(bytes)
	}
}

// BlockStart marks the beginning of an interval during which the protocol
// refuses to deliver application messages. Nested calls are idempotent.
func (p *Proc) BlockStart(now int64) {
	if p.blockedSince < 0 {
		p.blockedSince = now
	}
}

// BlockEnd closes a blocking interval opened by BlockStart, recording its
// length in the blocked-time distribution.
func (p *Proc) BlockEnd(now int64) {
	if p.blockedSince >= 0 {
		p.BlockedHist.Record(time.Duration(now - p.blockedSince))
		p.blockedSince = -1
	}
}

// Blocked reports whether a blocking interval is currently open.
func (p *Proc) Blocked() bool { return p.blockedSince >= 0 }

// BlockedTotal returns the accumulated blocked time across closed spans.
func (p *Proc) BlockedTotal() time.Duration { return p.BlockedHist.Total() }

// BlockedSpans returns the number of closed blocking intervals.
func (p *Proc) BlockedSpans() int64 { return p.BlockedHist.Count() }

// StorageOp records a completed stable-storage operation.
func (p *Proc) StorageOp(write bool, bytes int, took time.Duration) {
	if write {
		p.StorageWrites++
		p.StorageWriteBytes += int64(bytes)
	} else {
		p.StorageReads++
		p.StorageReadBytes += int64(bytes)
	}
	p.StorageHist.Record(took)
}

// OutputCommit records the request→commit latency of one externally-
// visible output released by this process.
//
//rollvet:hotpath
func (p *Proc) OutputCommit(took time.Duration) {
	p.OutputHist.Record(took)
}

// StorageTime returns the total time spent in storage operations.
func (p *Proc) StorageTime() time.Duration { return p.StorageHist.Total() }

// CurrentRecovery returns the in-progress trace (the last one appended), or
// nil if none has been started.
func (p *Proc) CurrentRecovery() *RecoveryTrace {
	if len(p.Recoveries) == 0 {
		return nil
	}
	return &p.Recoveries[len(p.Recoveries)-1]
}

// TotalSent sums sent messages, optionally restricted to control kinds.
func (p *Proc) TotalSent(controlOnly bool, appKind uint8) (msgs, bytes int64) {
	for k := 0; k < maxKinds; k++ {
		if controlOnly && uint8(k) == appKind {
			continue
		}
		msgs += p.MsgsSent[k]
		bytes += p.BytesSent[k]
	}
	return msgs, bytes
}

// Cluster aggregates per-process metrics with simple derived statistics.
type Cluster struct {
	Procs []*Proc
}

// MeanBlocked returns the mean and max blocked time across the given
// process indices (pass nil for all).
func (c Cluster) MeanBlocked(only []int) (mean, max time.Duration) {
	idx := only
	if idx == nil {
		idx = make([]int, len(c.Procs))
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return 0, 0
	}
	var sum time.Duration
	for _, i := range idx {
		b := c.Procs[i].BlockedTotal()
		sum += b
		if b > max {
			max = b
		}
	}
	return sum / time.Duration(len(idx)), max
}

// Quantile returns the q-quantile (0..1) of the given durations.
func Quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i] + time.Duration(frac*float64(s[i+1]-s[i]))
}

// FmtDuration renders a duration with millisecond precision for tables.
func FmtDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
