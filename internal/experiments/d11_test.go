package experiments

import (
	"context"
	"fmt"
	"testing"
	"time"

	"rollrec/internal/node"
)

// TestD11Deterministic runs the failure-free style trio twice at a short
// horizon and demands byte-identical ledger statistics: D11's tables must
// reproduce exactly for a given seed.
func TestD11Deterministic(t *testing.T) {
	render := func() string {
		var out string
		for _, row := range d11Rows(context.Background(), 1, node.Profile1995(), 0, 6*time.Second, false) {
			st := d11StatsOf(row.run().led)
			if st.committed == 0 {
				t.Errorf("%s: no outputs committed", row.style)
			}
			out += fmt.Sprintf("%s %d %d %v %v %v\n",
				row.style, st.total, st.committed, st.mean, st.p50, st.p99)
		}
		return out
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("two identical D11 runs disagree:\n--- first\n%s--- second\n%s", a, b)
	}
}

// TestD11StraddlersReleaseAfterRecovery is the failure-variant invariant:
// outputs requested before the server's crash but not yet committed may only
// commit once its recovery completes — never during the outage.
func TestD11StraddlersReleaseAfterRecovery(t *testing.T) {
	const crashAt = 3 * time.Second
	r := d11FBL(context.Background(), 1, node.Profile1995(), 2, crashAt, 12*time.Second, nil)
	if r.recoveryEnd <= crashAt {
		t.Fatalf("victim never recovered (recovery end %v)", r.recoveryEnd)
	}
	str := r.led.Straddling(int64(crashAt))
	if len(str) == 0 {
		t.Fatal("no outputs straddled the crash; the scenario lost its point")
	}
	released := 0
	for _, rec := range str {
		if !rec.Committed() {
			continue
		}
		released++
		if got := time.Duration(rec.CommittedAt); got < r.recoveryEnd {
			t.Errorf("output %d/%d committed at %v, before recovery ended at %v",
				rec.Proc, rec.Seq, got, r.recoveryEnd)
		}
	}
	if released == 0 {
		t.Fatal("no straddling output was ever released")
	}
}
