package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"rollrec/internal/coord"
	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/node"
	"rollrec/internal/optimistic"
	"rollrec/internal/output"
	"rollrec/internal/recovery"
	"rollrec/internal/sim"
	"rollrec/internal/timeline"
	"rollrec/internal/workload"
)

// D11 measures the output-commit latency (DESIGN §10) each style imposes on
// a client–server workload: how long an externally-visible reply waits
// between the server producing it and the protocol's commit rule allowing
// its release. This is where the paper's thesis lands for applications: FBL
// satisfies the rule by replication (determinants at f+1 hosts, no stable-
// storage write on the path), coordinated checkpointing waits for the next
// committed snapshot, and optimistic logging waits for the causal past to
// flush. The failure variant crashes the server mid-run and shows that
// outputs straddling the crash are released only after recovery completes.
func D11(ctx context.Context, seed int64) Table {
	t := Table{
		ID:    "D11",
		Title: "output-commit latency across styles (client–server, n=8)",
		Columns: []string{
			"profile", "style", "crash", "outputs", "committed",
			"commit mean", "p50", "p99",
		},
		Notes: []string{
			"FBL commits when the antecedent determinants reach f+1 hosts — replication over the",
			"existing piggyback channel, no synchronous stable write; stability returns on the next",
			"exchange, so latency is a couple of network round trips (one fewer at f=1);",
			"coordinated waits for the snapshot period; optimistic for the causal past to flush",
		},
	}

	const ffHorizon = 15 * time.Second
	for _, prof := range []struct {
		name string
		hw   node.Hardware
	}{{"1995", node.Profile1995()}, {"modern", node.ProfileModern()}} {
		for _, row := range d11Rows(ctx, seed, prof.hw, 0, ffHorizon, true) {
			r := row.run()
			if ctx.Err() != nil {
				return t
			}
			st := d11StatsOf(r.led)
			t.AddRow(prof.name, row.style, "none", st.total, st.committed,
				st.mean, st.p50, st.p99)
		}
	}

	// Failure variant (era hardware): crash the server at t=10s. The ledger
	// keeps each straddling output's original request time, so its latency
	// spans the whole outage — released only once recovery completes.
	const crashAt = 10 * time.Second
	for _, row := range d11Rows(ctx, seed, node.Profile1995(), crashAt, 25*time.Second, false) {
		r := row.run()
		if ctx.Err() != nil {
			return t
		}
		st := d11StatsOf(r.led)
		t.AddRow("1995", row.style, "server@10s", st.total, st.committed,
			st.mean, st.p50, st.p99)
		t.Notes = append(t.Notes, d11StraddleNote(row.style, r, crashAt))
	}
	return t
}

type d11Row struct {
	style string
	run   func() d11Run
}

// d11Rows enumerates the style configurations of one table block. The f=1
// FBL row only earns its place in the failure-free block (it isolates the
// no-holder-feedback case); the failure block keeps to one run per style.
func d11Rows(ctx context.Context, seed int64, hw node.Hardware, crashAt, horizon time.Duration, withF1 bool) []d11Row {
	rows := []d11Row{
		{"fbl f=2 nonblocking", func() d11Run { return d11FBL(ctx, seed, hw, 2, crashAt, horizon, nil) }},
	}
	if withF1 {
		rows = append(rows, d11Row{
			"fbl f=1 nonblocking", func() d11Run { return d11FBL(ctx, seed, hw, 1, crashAt, horizon, nil) }})
	}
	return append(rows,
		d11Row{"coordinated", func() d11Run { return d11Coord(ctx, seed, hw, crashAt, horizon, nil) }},
		d11Row{"optimistic", func() d11Run { return d11Optimistic(ctx, seed, hw, crashAt, horizon, nil) }},
	)
}

// d11App is the shared workload: every client pipelines requests at the
// server forever (K exceeds what any horizon can drain), the server's
// replies are the externally-visible outputs.
func d11App() workload.Factory {
	return workload.NewClientServer(1<<20, 256, int64(time.Millisecond))
}

type d11Run struct {
	led *output.Ledger
	// recoveryEnd is the virtual instant the victim finished recovering
	// (0 without a crash).
	recoveryEnd time.Duration
}

type d11Stats struct {
	total, committed int
	mean, p50, p99   time.Duration
}

// d11StatsOf reduces a ledger to the table's row quantities. Quantiles are
// exact (sorted deltas), not histogram-bucketed.
func d11StatsOf(l *output.Ledger) d11Stats {
	ds := l.Deltas()
	st := d11Stats{total: l.Total(), committed: len(ds)}
	if len(ds) == 0 {
		return st
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	st.mean = sum / time.Duration(len(ds))
	st.p50 = ds[(len(ds)-1)*50/100]
	st.p99 = ds[(len(ds)-1)*99/100]
	return st
}

func d11StraddleNote(style string, r d11Run, crashAt time.Duration) string {
	str := r.led.Straddling(int64(crashAt))
	released := 0
	var first time.Duration
	for _, rec := range str {
		if !rec.Committed() {
			continue
		}
		released++
		if c := time.Duration(rec.CommittedAt); first == 0 || c < first {
			first = c
		}
	}
	return fmt.Sprintf("%s crash: %d outputs straddled it (%d released after); first release t=%s, recovery end t=%s",
		style, len(str), released, metrics.FmtDuration(first), metrics.FmtDuration(r.recoveryEnd))
}

// d11FBL runs the paper's protocol through the full cluster harness (the
// ledger is wired by internal/cluster) and reads the run's ledger back.
// col, if non-nil, samples the run (see D11Timelines).
func d11FBL(ctx context.Context, seed int64, hw node.Hardware, f int, crashAt, horizon time.Duration, col *timeline.Collector) d11Run {
	spec := PaperSpec(recovery.NonBlocking, seed)
	spec.HW = hw
	spec.F = f
	spec.App = d11App()
	spec.Horizon = horizon
	spec.TrackOutputs = true
	spec.Timeline = col
	if crashAt > 0 {
		spec.Crashes = failure.Plan{{At: crashAt, Proc: 0}}
	}
	r := MustRun(ctx, spec)
	out := d11Run{led: r.C.Outputs()}
	if crashAt > 0 {
		if tr := r.Victim(0); tr != nil && tr.ReplayedAt != 0 {
			out.recoveryEnd = time.Duration(tr.ReplayedAt)
		}
	}
	return out
}

// d11Coord mirrors D9's coordinated scenario with the ledger attached.
// col, if non-nil, samples the run (see D11Timelines).
func d11Coord(ctx context.Context, seed int64, hw node.Hardware, crashAt, horizon time.Duration, col *timeline.Collector) d11Run {
	const n = 8
	led := output.NewLedger(n)
	k := sim.New(sim.Config{Seed: seed, HW: hw})
	led.SetMetrics(k.Metrics)
	par := coord.Params{
		N:             n,
		App:           workload.Seeded(d11App(), seed),
		SnapshotEvery: 4 * time.Second, // parity with PaperSpec's CPEvery
		StatePad:      1 << 20,
		Outputs:       led,
	}
	for i := 0; i < n; i++ {
		k.AddNode(ids.ProcID(i), coord.New(par))
	}
	k.Boot()
	if col != nil {
		attachKernelTimeline(col, k, led, n, func(i int) timeline.Phase {
			p, ok := k.ProcOf(ids.ProcID(i)).(*coord.Process)
			switch {
			case !ok || p == nil:
				return timeline.PhaseDown
			case p.Recovering():
				return timeline.PhaseRecovering
			default:
				return timeline.PhaseLive
			}
		}, nil, nil)
	}
	if crashAt > 0 {
		k.CrashAt(crashAt, 0)
	}
	if _, err := k.RunContext(ctx, horizon); err != nil {
		return d11Run{led: led}
	}
	out := d11Run{led: led}
	if crashAt > 0 {
		if tr := k.Metrics(0).CurrentRecovery(); tr != nil && tr.ReplayedAt != 0 {
			out.recoveryEnd = time.Duration(tr.ReplayedAt)
		}
	}
	return out
}

// d11Optimistic mirrors D10's optimistic scenario with the ledger attached.
// col, if non-nil, samples the run (see D11Timelines).
func d11Optimistic(ctx context.Context, seed int64, hw node.Hardware, crashAt, horizon time.Duration, col *timeline.Collector) d11Run {
	const n = 8
	led := output.NewLedger(n)
	k := sim.New(sim.Config{Seed: seed, HW: hw})
	led.SetMetrics(k.Metrics)
	par := optimistic.Params{
		N:          n,
		App:        workload.Seeded(d11App(), seed),
		FlushEvery: 500 * time.Millisecond,
		StatePad:   4 << 10,
		Outputs:    led,
	}
	for i := 0; i < n; i++ {
		k.AddNode(ids.ProcID(i), optimistic.New(par))
	}
	k.Boot()
	if col != nil {
		attachKernelTimeline(col, k, led, n, func(i int) timeline.Phase {
			p, ok := k.ProcOf(ids.ProcID(i)).(*optimistic.Process)
			switch {
			case !ok || p == nil:
				return timeline.PhaseDown
			case p.Rolling():
				return timeline.PhaseRecovering
			default:
				return timeline.PhaseLive
			}
		}, func(i int) (journal, lag int) {
			if p, ok := k.ProcOf(ids.ProcID(i)).(*optimistic.Process); ok && p != nil {
				total, durable := p.LogSizes()
				return total, total - durable
			}
			return 0, 0
		}, nil)
	}
	if crashAt > 0 {
		k.CrashAt(crashAt, 0)
	}
	if _, err := k.RunContext(ctx, horizon); err != nil {
		return d11Run{led: led}
	}
	out := d11Run{led: led}
	if crashAt > 0 {
		if tr := k.Metrics(0).CurrentRecovery(); tr != nil && tr.ReplayedAt != 0 {
			out.recoveryEnd = time.Duration(tr.ReplayedAt)
		}
	}
	return out
}
