package experiments

import (
	"context"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/node"
	"rollrec/internal/output"
	"rollrec/internal/sim"
	"rollrec/internal/timeline"
)

// attachKernelTimeline binds a collector to a raw kernel + ledger run (the
// coordinated and optimistic D11/D12 scenarios bypass the cluster harness,
// so they assemble their probes here). phase maps a process index to its
// lifecycle phase; journal, if non-nil, supplies the (journal, lag) gauges
// for styles that keep a volatile log; inflight, if non-nil, supplies the
// open-request gauge of the traffic workload.
func attachKernelTimeline(col *timeline.Collector, k *sim.Kernel, led *output.Ledger,
	n int, phase func(i int) timeline.Phase, journal func(i int) (journal, lag int),
	inflight func(i int) int) {
	met := func(i int) *metrics.Proc { return k.Metrics(ids.ProcID(i)) }
	col.Bind(timeline.Probes{
		Queue: func() (int, int) { return k.QueueDepth(), k.InFlightFrames() },
		Proc: func(i int) timeline.ProcGauges {
			id := ids.ProcID(i)
			g := timeline.ProcGauges{
				Phase:       phase(i),
				StableBytes: k.Store(id).Bytes(),
				Backlog:     led.OpenOf(id),
				OldestOpen:  led.OldestOpenOf(id),
			}
			if journal != nil {
				g.Journal, g.Lag = journal(i)
			}
			if inflight != nil {
				g.Inflight = inflight(i)
			}
			return g
		},
		Metrics: met,
		Markers: func() []timeline.Marker { return timeline.RecoveryMarkers(n, met) },
	})
	k.SetSampler(col.Interval(), col.Tick)
}

// D11Timeline is one style's sampled crash run.
type D11Timeline struct {
	Style  string
	Export *timeline.Export
}

// D11Timelines reruns the D11 failure variant (server crash at crashAt on
// era hardware, run to horizon; zero values select the experiment's 10 s /
// 25 s cell) under each style with a timeline collector attached, and
// returns the per-style exports — the runs behind the "recovery timeline
// explorer" walkthrough. Sampling is observation-only, so each run's event
// sequence is identical to its unsampled D11 counterpart. A cancelled ctx
// returns the prefix sampled so far.
func D11Timelines(ctx context.Context, seed int64, interval, crashAt, horizon time.Duration) []D11Timeline {
	if crashAt <= 0 {
		crashAt = 10 * time.Second
	}
	if horizon <= 0 {
		horizon = 25 * time.Second
	}
	hw := node.Profile1995()
	mk := func(style string) *timeline.Collector {
		return timeline.New(timeline.Config{
			Interval: interval,
			N:        8,
			Label:    "D11/" + style + " crash@" + crashAt.String(),
		})
	}

	fbl := mk("fbl")
	d11FBL(ctx, seed, hw, 2, crashAt, horizon, fbl)
	co := mk("coordinated")
	d11Coord(ctx, seed, hw, crashAt, horizon, co)
	opt := mk("optimistic")
	d11Optimistic(ctx, seed, hw, crashAt, horizon, opt)

	return []D11Timeline{
		{Style: "fbl", Export: fbl.Export()},
		{Style: "coordinated", Export: co.Export()},
		{Style: "optimistic", Export: opt.Export()},
	}
}
