package experiments

import (
	"bytes"
	"context"
	"testing"
	"time"

	"rollrec/internal/timeline"
)

// d11TestTimelines runs the short D11 crash cell used by the tests (server
// crash at 3 s, 12 s horizon — the same cell the CI smoke job samples).
func d11TestTimelines(t *testing.T) []D11Timeline {
	t.Helper()
	return D11Timelines(context.Background(), 1, 100*time.Millisecond, 3*time.Second, 12*time.Second)
}

// TestD11TimelineBacklogShape is the tentpole's acceptance criterion: in
// every style's crash run, the server's output-commit backlog rises at the
// crash marker and drains only after the recovery-end marker. The victim
// stops requesting outputs while it is down, so the rise shows in the
// backlog-age series (oldest_open_ms climbs tick for tick from the crash
// on) while the open count certifies the freeze: no straddler is released
// inside the outage, and the first drain of either series lands strictly
// after recovery end.
func TestD11TimelineBacklogShape(t *testing.T) {
	for _, tl := range d11TestTimelines(t) {
		e := tl.Export
		crash, ok := e.MarkerAt(timeline.MarkCrash, 0)
		if !ok {
			t.Errorf("%s: no crash marker for the server", tl.Style)
			continue
		}
		end, ok := e.MarkerAt(timeline.MarkRecoveryEnd, 0)
		if !ok {
			t.Errorf("%s: no recovery-end marker for the server", tl.Style)
			continue
		}
		if end.TMS <= crash.TMS {
			t.Errorf("%s: recovery end %v not after crash %v", tl.Style, end.TMS, crash.TMS)
			continue
		}

		backlog := e.ProcBacklog(0)
		age := e.ProcOldest(0)
		// atCrash: the last sample at or before the crash instant (the
		// sampler runs before same-time events, so this is pre-crash state).
		atCrash := -1
		for i, tk := range e.Ticks {
			if tk.TMS <= crash.TMS {
				atCrash = i
			}
		}
		if atCrash < 0 || backlog[atCrash] == 0 {
			t.Errorf("%s: no open outputs at the crash (tick %d); the scenario lost its point", tl.Style, atCrash)
			continue
		}

		inside := 0
		for i, tk := range e.Ticks {
			if tk.TMS <= crash.TMS || tk.TMS >= end.TMS {
				continue
			}
			inside++
			// The frozen straddlers must not be released inside the outage...
			if backlog[i] < backlog[atCrash] {
				t.Errorf("%s: open count fell %d → %d at t=%vms, inside the outage",
					tl.Style, backlog[atCrash], backlog[i], tk.TMS)
			}
			// ...so the backlog age rises tick for tick from the crash marker.
			if age[i] <= age[i-1] {
				t.Errorf("%s: backlog age stopped rising at t=%vms (%v → %v), inside the outage",
					tl.Style, tk.TMS, age[i-1], age[i])
			}
		}
		if inside < 2 {
			t.Errorf("%s: only %d samples inside the outage", tl.Style, inside)
		}

		// Drain only after recovery end: scanning from the crash, the first
		// tick where the age series falls must land strictly after the
		// recovery-end marker — and it must exist (the straddlers do
		// commit), collapsing the age from outage scale back down.
		firstDrop := -1
		for i := atCrash + 1; i < len(e.Ticks); i++ {
			if age[i] < age[i-1] {
				firstDrop = i
				break
			}
		}
		if firstDrop < 0 {
			t.Errorf("%s: backlog never drained by the horizon", tl.Style)
			continue
		}
		if at := e.Ticks[firstDrop].TMS; at <= end.TMS {
			t.Errorf("%s: backlog drained at t=%vms, before recovery ended at %vms",
				tl.Style, at, end.TMS)
		}
		if peak := age[firstDrop-1]; age[firstDrop] > peak/2 {
			t.Errorf("%s: post-recovery drain is not a collapse: %vms → %vms",
				tl.Style, peak, age[firstDrop])
		}
	}
}

// TestD11TimelinesDeterministic: two invocations of the sampled cells must
// export byte-identical JSON and CSV for every style.
func TestD11TimelinesDeterministic(t *testing.T) {
	render := func() map[string][2][]byte {
		out := map[string][2][]byte{}
		for _, tl := range d11TestTimelines(t) {
			var j, c bytes.Buffer
			if err := tl.Export.Encode(&j); err != nil {
				t.Fatal(err)
			}
			if err := tl.Export.EncodeCSV(&c); err != nil {
				t.Fatal(err)
			}
			out[tl.Style] = [2][]byte{j.Bytes(), c.Bytes()}
		}
		return out
	}
	a, b := render(), render()
	for style, fa := range a {
		fb := b[style]
		if !bytes.Equal(fa[0], fb[0]) {
			t.Errorf("%s: JSON exports differ across identical runs", style)
		}
		if !bytes.Equal(fa[1], fb[1]) {
			t.Errorf("%s: CSV exports differ across identical runs", style)
		}
	}
}

// TestSpecTimelineAttaches: the Spec hook samples a run end to end and the
// per-style kernel probes populate style-specific gauges.
func TestSpecTimelineAttaches(t *testing.T) {
	for _, tl := range d11TestTimelines(t) {
		e := tl.Export
		if want := int(12 * time.Second / (100 * time.Millisecond)); len(e.Ticks) != want {
			t.Errorf("%s: %d ticks, want %d", tl.Style, len(e.Ticks), want)
		}
		if e.Meta.N != 8 || e.Meta.Schema != timeline.SchemaVersion {
			t.Errorf("%s: meta %+v", tl.Style, e.Meta)
		}
		// Every style must show the server down right after the crash...
		for i, tk := range e.Ticks {
			if tk.TMS == 3100 && tk.Phases[0] != 'D' {
				t.Errorf("%s: tick %d phases %q, want server down", tl.Style, i, tk.Phases)
			}
		}
		// ...and live traffic in the delivery windows.
		if e.Ticks[10].Delivery.N == 0 {
			t.Errorf("%s: no delivery observations at t=1.1s", tl.Style)
		}
	}
}
