package experiments

import (
	"context"
	"time"

	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/optimistic"
	"rollrec/internal/recovery"
	"rollrec/internal/sim"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

// D10 puts the paper's §6 taxonomy on one table: optimistic logging is
// cheap in failure-free operation but lets live processes become ORPHANS
// of a failure (they roll back and lose work); the FBL family with the
// paper's recovery algorithm pays causal piggybacking up front and, at
// failure time, touches nobody.
func D10(ctx context.Context, seed int64) Table {
	t := Table{
		ID:      "D10",
		Title:   "orphans: FBL vs optimistic logging (single failure, n=8)",
		Columns: []string{"design", "orphaned lives", "deliveries lost (orphans)", "ff piggyback bytes/msg", "victim recovery"},
		Notes: []string{
			"paper §6: optimistic protocols risk 'processes that survive failures becoming orphans';",
			"FBL's determinants at f+1 hosts make the orphan count structurally zero",
		},
	}

	// FBL + the paper's non-blocking recovery.
	spec := PaperSpec(recovery.NonBlocking, seed)
	spec.Crashes = failure.Plan{{At: 10 * time.Second, Proc: 3}}
	r := MustRun(ctx, spec)
	if ctx.Err() != nil {
		return t
	}
	var appMsgs, piggyBytes int64
	for i := 0; i < spec.N; i++ {
		m := r.C.Metrics(ids.ProcID(i))
		appMsgs += m.MsgsSent[uint8(wire.KindApp)]
		piggyBytes += m.PiggybackBytes
	}
	if appMsgs == 0 {
		appMsgs = 1
	}
	t.AddRow("fbl (f=2) + nonblocking", 0, 0,
		float64(piggyBytes)/float64(appMsgs), r.Victim(3).Total())

	// Optimistic logging with asynchronous receiver-side logs.
	o := runOptimistic(ctx, seed, spec.Horizon)
	if ctx.Err() != nil {
		return t
	}
	t.AddRow("optimistic (Strom–Yemini style)", o.orphans, o.lost,
		o.dvBytesPerMsg, o.victimRecovery)
	return t
}

type optimisticResult struct {
	orphans        int
	lost           int64
	dvBytesPerMsg  float64
	victimRecovery time.Duration
}

func runOptimistic(ctx context.Context, seed int64, horizon time.Duration) optimisticResult {
	const n = 8
	spec := PaperSpec(recovery.NonBlocking, seed)
	k := sim.New(sim.Config{Seed: seed, HW: spec.HW})
	var out optimisticResult
	orphaned := map[ids.ProcID]bool{}
	par := optimistic.Params{
		N:          n,
		App:        workload.Seeded(spec.App, seed),
		FlushEvery: 500 * time.Millisecond,
		StatePad:   4 << 10,
		Hooks: optimistic.Hooks{
			OnOrphan: func(p, _ ids.ProcID, lost int64) {
				if p != 3 { // the victim itself is not an orphan
					orphaned[p] = true
					out.lost += lost
				}
			},
		},
	}
	for i := 0; i < n; i++ {
		k.AddNode(ids.ProcID(i), optimistic.New(par))
	}
	k.Boot()
	k.CrashAt(10*time.Second, 3)
	if _, err := k.RunContext(ctx, horizon); err != nil {
		return optimisticResult{}
	}

	out.orphans = len(orphaned)
	if tr := k.Metrics(3).CurrentRecovery(); tr != nil && tr.ReplayedAt != 0 {
		out.victimRecovery = time.Duration(tr.ReplayedAt - tr.CrashedAt)
	}
	// The failure-free dependency-tracking cost: the dv piggyback is a
	// fixed (8B index + 4B epoch) per process per message.
	out.dvBytesPerMsg = float64(12 * n)
	return out
}
