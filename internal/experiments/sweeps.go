package experiments

import (
	"context"
	"fmt"
	"time"

	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/recovery"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

// D1 sweeps the cluster size: the blocking algorithm's intrusion is paid by
// every live process, so its aggregate cost grows with n while the new
// algorithm stays at zero.
func D1(ctx context.Context, seed int64) Table {
	t := Table{
		ID:      "D1",
		Title:   "scale sweep: single failure, f=2, n ∈ {4..64} classic, {256,1024} sharded",
		Columns: []string{"n", "algorithm", "recovery", "live blocked (mean)", "blocked×lives (sum)"},
		Notes: []string{
			"n >= 256 runs on the sharded conservative-window scheduler (4 shards, fanout 8) with a",
			"slower gossip cadence (10 ms/delivery) so the aggregate message rate stays bounded; the",
			"small-n cells are byte-identical to the pre-sharding sweep",
		},
	}
	// n=64 was unaffordable before the flat-heap scheduler; n=1024 was
	// unaffordable before the sharded conservative-window scheduler and the
	// fanout protocol mode (DESIGN §2, §5).
	for _, n := range []int{4, 8, 16, 32, 64, 256, 1024} {
		for _, style := range []recovery.Style{recovery.NonBlocking, recovery.Blocking} {
			spec := PaperSpec(style, seed)
			spec.N = n
			spec.Crashes = failure.Plan{{At: 10 * time.Second, Proc: 1}}
			spec.Horizon = 20 * time.Second
			if n >= 256 {
				spec.Shards = 4
				spec.Fanout = 8
				// O(n) concurrent chains: stretch the per-delivery work so
				// the cluster-wide rate, and with it the simulation cost,
				// stays in the same regime as the small cells. The victim's
				// replay runs at the same 10 ms cadence, so give the
				// recovery room to finish before the horizon.
				spec.App = workload.NewRandomPeer(1, 1_000_000, 256, int64(10*time.Millisecond))
				spec.Horizon = 30 * time.Second
			}
			r := MustRun(ctx, spec)
			if ctx.Err() != nil {
				return t
			}
			mean, _ := r.LiveBlocked()
			t.AddRow(n, style.String(), r.Victim(1).Total(), mean,
				time.Duration(int64(mean)*int64(n-1)))
		}
	}
	return t
}

// D2 is the paper's central argument made quantitative: as the stable-
// storage penalty grows relative to communication, the blocking styles'
// intrusion grows with it while the new algorithm stays flat.
func D2(ctx context.Context, seed int64) Table {
	t := Table{
		ID:      "D2",
		Title:   "stable-storage latency sweep (×1..×16 of the 1995 disk), n=8, f=2",
		Columns: []string{"disk scale", "style", "recovery", "live blocked (mean)"},
		Notes: []string{
			"slower storage stretches the second victim's restore; the blocking styles make every live",
			"process wait it out (the 'tens of seconds or even minutes' of paper §2.2)",
			"at x16 a 1MB checkpoint write (~12s) no longer completes within the 4s interval, so victims",
			"lose their checkpoints and recover by whole-history replay — checkpointing that cannot keep",
			"up with its disk is itself a storage-latency casualty",
		},
	}
	for _, scale := range []float64{1, 4, 16} {
		for _, style := range []recovery.Style{recovery.NonBlocking, recovery.Blocking, recovery.Manetho} {
			spec := PaperSpec(style, seed)
			spec.HW.Disk = spec.HW.Disk.Scale(scale)
			// The overlapping-failure scenario: the gather stalls on the
			// second victim's detection+restore, which scales with the disk.
			spec.Crashes = failure.Plan{
				{At: 10 * time.Second, Proc: 3},
				{At: 14100*time.Millisecond + time.Duration(scale*float64(400*time.Millisecond)), Proc: 5},
			}
			// The x16 disk stretches restores to ~9 s each; leave room for
			// both recoveries to complete.
			spec.Horizon = 90 * time.Second
			r := MustRun(ctx, spec)
			if ctx.Err() != nil {
				return t
			}
			mean, _ := r.LiveBlocked()
			t.AddRow(fmt.Sprintf("x%.0f", scale), style.String(), r.Victim(3).Total(), mean)
		}
	}
	return t
}

// D3 counts the communication the paper argues is now cheap: recovery
// control messages by kind and size, per algorithm and cluster size. The
// new algorithm pays more messages — that is its stated price (§3.1).
func D3(ctx context.Context, seed int64) Table {
	t := Table{
		ID:      "D3",
		Title:   "recovery communication: control messages per recovery",
		Columns: []string{"n", "algorithm", "ctl msgs", "ctl bytes", "msgs/process"},
	}
	for _, n := range []int{4, 8, 16} {
		for _, style := range []recovery.Style{recovery.NonBlocking, recovery.Blocking} {
			spec := PaperSpec(style, seed)
			spec.N = n
			spec.Crashes = failure.Plan{{At: 10 * time.Second, Proc: 1}}
			spec.Horizon = 20 * time.Second
			r := MustRun(ctx, spec)
			if ctx.Err() != nil {
				return t
			}
			msgs, bytes := r.RecoveryTraffic()
			t.AddRow(n, style.String(), msgs, bytes, float64(msgs)/float64(n))
		}
	}
	return t
}

// D4 measures the failure-free cost of the protocol family as f varies:
// "applications pay only the overhead that corresponds to the number of
// failures they are willing to tolerate" (paper §2).
func D4(ctx context.Context, seed int64) Table {
	t := Table{
		ID:      "D4",
		Title:   "failure-free overhead vs f (n=8, no crashes, 20s of gossip)",
		Columns: []string{"f", "piggyback dets/app msg", "piggyback bytes/app msg", "storage msgs", "delivered"},
		Notes: []string{
			"f = n streams determinants to the stable-storage pseudo-process (Manetho instance, §3.3)",
		},
	}
	for _, f := range []int{1, 2, 4, 8} {
		spec := PaperSpec(recovery.NonBlocking, seed)
		spec.F = f
		spec.Horizon = 20 * time.Second
		r := MustRun(ctx, spec)
		if ctx.Err() != nil {
			return t
		}
		var appMsgs, dets, bytes, toStorage, delivered int64
		for i := 0; i < spec.N; i++ {
			m := r.C.Metrics(ids.ProcID(i))
			appMsgs += m.MsgsSent[uint8(wire.KindApp)]
			dets += m.PiggybackDets
			bytes += m.PiggybackBytes
			toStorage += m.MsgsSent[uint8(wire.KindDetsToStorage)]
			delivered += m.Delivered
		}
		if appMsgs == 0 {
			appMsgs = 1
		}
		t.AddRow(f, float64(dets)/float64(appMsgs), float64(bytes)/float64(appMsgs), toStorage, delivered)
	}
	return t
}

// D7 sweeps link latency from LAN to WAN: with expensive communication the
// new algorithm's extra round trips start to show — the regime the old
// message-complexity yardstick was built for (§1).
func D7(ctx context.Context, seed int64) Table {
	t := Table{
		ID:      "D7",
		Title:   "network latency sweep (single failure, n=8, f=2)",
		Columns: []string{"one-way latency", "algorithm", "recovery", "gather", "live blocked (mean)"},
		Notes: []string{
			"on a WAN the gather grows with round trips for both styles, but only the blocking style",
			"converts it into live-process stall; total recovery SHRINKS with latency only because the",
			"gossip itself slows down, leaving less to replay — compare the gather column",
		},
	}
	for _, lat := range []time.Duration{400 * time.Microsecond, 5 * time.Millisecond, 50 * time.Millisecond} {
		for _, style := range []recovery.Style{recovery.NonBlocking, recovery.Blocking} {
			spec := PaperSpec(style, seed)
			spec.HW.Net.Latency = lat
			spec.Crashes = failure.Plan{{At: 10 * time.Second, Proc: 3}}
			spec.Horizon = 30 * time.Second
			r := MustRun(ctx, spec)
			if ctx.Err() != nil {
				return t
			}
			b := BreakdownOf(r.Victim(3))
			mean, _ := r.LiveBlocked()
			t.AddRow(lat.String(), style.String(), b.Total, b.Gather, mean)
		}
	}
	return t
}

// All runs every experiment in index order, stopping early (with the
// tables produced so far) when ctx is done.
func All(ctx context.Context, seed int64) []Table {
	var out []Table
	for _, run := range []func(context.Context, int64) Table{
		E1, E2, D1, D2, D3, D4, D5, D6, D7, D8, D9, D10, D11,
	} {
		if ctx.Err() != nil {
			break
		}
		out = append(out, run(ctx, seed))
	}
	return out
}
