package experiments

import (
	"context"
	"testing"
	"time"

	"rollrec/internal/failure"
	"rollrec/internal/recovery"
	"rollrec/internal/workload"
)

// d1ScaleSpec is the D1 n=1024 cell with a shortened horizon: same
// scheduler (4 shards), same fanout, same slowed gossip cadence — the CI
// smoke shape for the scale sweep. The crash lands before the first
// checkpoint completes, so the victim recovers by whole-history replay;
// 18 s leaves it room to finish (detect ~7 s, restart, gather, ~4 s of
// replayed work).
func d1ScaleSpec(shards int) Spec {
	spec := PaperSpec(recovery.NonBlocking, 1)
	spec.N = 1024
	spec.Shards = shards
	spec.Fanout = 8
	spec.App = workload.NewRandomPeer(1, 1_000_000, 256, int64(10*time.Millisecond))
	spec.Crashes = failure.Plan{{At: 4 * time.Second, Proc: 1}}
	spec.Horizon = 18 * time.Second
	return spec
}

// TestD1Scale1024 smoke-runs the sweep's largest cell at 1 and 4 shards:
// both runs must be consistent, complete the victim's recovery, block no
// live process, and agree exactly on every readout — the n=1024 analogue
// of the sharded golden-trace gate, at the cost of two runs instead of
// three.
func TestD1Scale1024(t *testing.T) {
	if testing.Short() {
		t.Skip("n=1024 cell is a long test")
	}
	run := func(shards int) (*Result, []uint64) {
		r := MustRun(context.Background(), d1ScaleSpec(shards))
		if r.Victim(1).Total() <= 0 {
			t.Fatalf("shards=%d: victim recorded no recovery", shards)
		}
		if mean, _ := r.LiveBlocked(); mean != 0 {
			t.Fatalf("shards=%d: nonblocking style blocked live processes for %v (mean)", shards, mean)
		}
		return r, r.C.Digests()
	}
	r1, d1 := run(1)
	r4, d4 := run(4)
	for i := range d1 {
		if d1[i] != d4[i] {
			t.Fatalf("digest of proc %d differs across shard counts: %#x vs %#x", i, d1[i], d4[i])
		}
	}
	if a, b := r1.Victim(1).Total(), r4.Victim(1).Total(); a != b {
		t.Fatalf("victim recovery differs across shard counts: %v vs %v", a, b)
	}
	if a, b := r1.Events, r4.Events; a != b {
		t.Fatalf("event counts differ across shard counts: %d vs %d", a, b)
	}
}
