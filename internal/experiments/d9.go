package experiments

import (
	"context"
	"time"

	"rollrec/internal/coord"
	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/recovery"
	"rollrec/internal/sim"
	"rollrec/internal/workload"
)

// D9 compares the paper's protocol family against the classic alternative
// its related work contrasts it with: coordinated checkpointing
// (Chandy–Lamport snapshots [6]) with global rollback. Message logging
// confines a failure's cost to the failed process; a coordinated protocol
// makes every process roll back and redo work, and stalls every live
// process for a stable-storage restore.
func D9(ctx context.Context, seed int64) Table {
	t := Table{
		ID:      "D9",
		Title:   "message logging vs coordinated checkpointing (single failure, n=8)",
		Columns: []string{"design", "victim recovery", "live blocked (mean)", "deliveries redone (cluster)", "ff storage writes"},
		Notes: []string{
			"'deliveries redone' counts work re-executed after the failure: only the victim's replay",
			"under logging, everyone's lost suffix under coordinated rollback",
		},
	}

	// Message logging with the paper's non-blocking recovery.
	spec := PaperSpec(recovery.NonBlocking, seed)
	spec.Crashes = failure.Plan{{At: 10 * time.Second, Proc: 3}}
	r := MustRun(ctx, spec)
	if ctx.Err() != nil {
		return t
	}
	victim := r.Victim(3)
	mean, _ := r.LiveBlocked()
	met3 := r.C.Metrics(3)
	redone := met3.Delivered - int64(r.C.Proc(3).RSN())
	if redone < 0 {
		redone = 0
	}
	var ffWrites int64
	for i := 0; i < spec.N; i++ {
		ffWrites += r.C.Metrics(ids.ProcID(i)).StorageWrites
	}
	t.AddRow("fbl + nonblocking recovery", victim.Total(), mean, redone, ffWrites)

	// Coordinated checkpointing with global rollback.
	c := runCoord(ctx, seed, spec.Horizon)
	if ctx.Err() != nil {
		return t
	}
	t.AddRow("coordinated (Chandy–Lamport)", c.victimRecovery, c.liveBlockedMean, c.lost, c.storageWrites)
	return t
}

type coordResult struct {
	victimRecovery  time.Duration
	liveBlockedMean time.Duration
	lost            int64
	storageWrites   int64
}

// runCoord executes the coordinated-checkpointing scenario matching D9's
// logging run: same hardware, same gossip shape, one crash at t=10s.
func runCoord(ctx context.Context, seed int64, horizon time.Duration) coordResult {
	const n = 8
	spec := PaperSpec(recovery.NonBlocking, seed)
	k := sim.New(sim.Config{Seed: seed, HW: spec.HW})
	var lost int64
	par := coord.Params{
		N:             n,
		App:           workload.Seeded(spec.App, seed),
		SnapshotEvery: spec.CPEvery,
		StatePad:      spec.Pad,
		Hooks: coord.Hooks{
			OnRollback: func(p ids.ProcID, epoch uint32, l int64) { lost += l },
		},
	}
	for i := 0; i < n; i++ {
		k.AddNode(ids.ProcID(i), coord.New(par))
	}
	k.Boot()
	k.CrashAt(10*time.Second, 3)
	if _, err := k.RunContext(ctx, horizon); err != nil {
		return coordResult{}
	}

	out := coordResult{lost: lost}
	if tr := k.Metrics(3).CurrentRecovery(); tr != nil && tr.ReplayedAt != 0 {
		out.victimRecovery = time.Duration(tr.ReplayedAt - tr.CrashedAt)
	}
	var blocked time.Duration
	var writes int64
	lives := 0
	for i := 0; i < n; i++ {
		m := k.Metrics(ids.ProcID(i))
		writes += m.StorageWrites
		if ids.ProcID(i) != 3 {
			blocked += m.BlockedTotal()
			lives++
		}
	}
	out.liveBlockedMean = blocked / time.Duration(lives)
	out.storageWrites = writes
	// Sanity: the comparison is meaningless if the coordinated cluster
	// never resumed.
	var delivered int64
	for i := 0; i < n; i++ {
		delivered += k.Metrics(ids.ProcID(i)).Delivered
	}
	if delivered == 0 {
		panic("experiments: coordinated run made no progress")
	}
	return out
}
