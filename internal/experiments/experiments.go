// Package experiments reproduces the paper's evaluation (§5) and the
// derived sweeps its argument calls for. Each experiment returns a Table
// whose rows correspond to the quantities the paper reports; see DESIGN.md
// §3 for the experiment index and EXPERIMENTS.md for paper-vs-measured.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"rollrec/internal/cluster"
	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/node"
	"rollrec/internal/recovery"
	"rollrec/internal/timeline"
	"rollrec/internal/trace"
	"rollrec/internal/traffic"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

// DefaultTracer, if non-nil, is attached to every run whose Spec carries no
// tracer of its own. The experiments CLI sets it to capture recovery-phase
// spans across a whole experiment.
var DefaultTracer trace.Tracer

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = metrics.FmtDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", width[i]))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Spec describes one simulated run.
type Spec struct {
	N, F    int
	Style   recovery.Style
	Seed    int64
	HW      node.Hardware
	App     workload.Factory
	CPEvery time.Duration
	Pad     int
	Crashes failure.Plan
	Horizon time.Duration
	// Shards > 0 runs the cluster on the sharded conservative-window
	// scheduler (DESIGN §2); required for the n=1024 cells. Sharded runs
	// cannot host Timeline, TrackOutputs, or Traffic (all need the classic
	// kernel's cluster-wide instants), and DefaultTracer is not attached to
	// them (it is not safe for shard goroutines); an explicit Tracer must
	// be concurrency-safe.
	Shards int
	// Fanout > 0 selects the ring dissemination protocol mode with that
	// degree (cluster.Config.Fanout); 0 is the paper's all-peers broadcast.
	Fanout int
	// Tracer, if non-nil, records structured events for this run;
	// DefaultTracer is used when nil.
	Tracer trace.Tracer
	// TrackOutputs wires the output-commit ledger (DESIGN §10) into the
	// cluster; read it back with Result.C.Outputs().
	TrackOutputs bool
	// Timeline, if non-nil, is attached to the run's cluster before events
	// flow: the kernel samples it at the collector's interval (DESIGN §11).
	// Sampling is observation-only — it changes no event ordering — so a
	// spec with a collector simulates the exact run it would without one.
	Timeline *timeline.Collector
	// Traffic, if non-nil, replaces App with the open-loop multi-tier
	// serving workload (DESIGN §12): Run hosts traffic.NewApp(*Traffic) and
	// attaches a traffic.Engine driving seeded arrivals at the client tier
	// until the horizon. The spec's N must equal Traffic.N(), and — because
	// this harness hosts the FBL family, whose replay cannot regenerate
	// injected arrivals — the crash plan must not target the client tier;
	// Run panics on either misuse. Read the engine back via Result.Traffic.
	Traffic *workload.Traffic
}

// PaperSpec is the baseline configuration modeled on the paper's testbed:
// eight workstations, f = 2, ~1 MB process images, an active irregular
// workload, and era hardware. The experiments and the bench sweep harness
// both derive their scenarios from it, so the paper tables and the sweep
// snapshots can never drift apart.
func PaperSpec(style recovery.Style, seed int64) Spec {
	return Spec{
		N:     8,
		F:     2,
		Style: style,
		Seed:  seed,
		HW:    node.Profile1995(),
		// A long-TTL gossip keeps every process busy throughout the run;
		// one chain per process with ~1 ms of work per delivery keeps the
		// simulated message rate at roughly what the paper's testbed could
		// sustain.
		App:     workload.NewRandomPeer(1, 1_000_000, 256, int64(time.Millisecond)),
		CPEvery: 4 * time.Second,
		Pad:     1 << 20, // ~1 MB process state
		Horizon: 25 * time.Second,
	}
}

// Result captures what the experiments read out of a finished run.
type Result struct {
	C    *cluster.Cluster
	Spec Spec
	// Errors are the cross-process invariant violations found after the
	// run (empty on a consistent run).
	Errors []error
	// Events is the number of simulator events processed — the
	// deterministic cost of simulating the scenario, independent of the
	// host's wall clock.
	Events int64
	// Traffic is the arrival engine of a Spec.Traffic run (offered /
	// admitted / shed readouts); nil otherwise.
	Traffic  *traffic.Engine
	recStart map[ids.ProcID]int64
}

// Run executes a spec to its horizon, or until ctx is done, and returns the
// collected result. On cancellation the returned Result covers the prefix
// of virtual time that ran (its invariants are NOT checked — a cut-short
// run is consistent but incomplete) and the error is ctx's.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	tr := spec.Tracer
	if tr == nil && spec.Shards == 0 {
		tr = DefaultTracer
	}
	app := spec.App
	if spec.Traffic != nil {
		if spec.Shards > 0 {
			panic("experiments: Traffic needs the classic kernel (Shards=0); " +
				"open-loop injection has no cross-shard ordering")
		}
		if spec.Traffic.N() != spec.N {
			panic(fmt.Sprintf("experiments: traffic topology needs n=%d, spec has n=%d",
				spec.Traffic.N(), spec.N))
		}
		for _, cr := range spec.Crashes {
			if spec.Traffic.TierOf(cr.Proc) == workload.TierClient {
				panic(fmt.Sprintf("experiments: crash plan targets client %d; "+
					"FBL replay cannot regenerate injected arrivals", cr.Proc))
			}
		}
		app = traffic.NewApp(*spec.Traffic)
	}
	c := cluster.New(cluster.Config{
		N:               spec.N,
		F:               spec.F,
		Seed:            spec.Seed,
		HW:              spec.HW,
		Style:           spec.Style,
		App:             app,
		CheckpointEvery: spec.CPEvery,
		StatePad:        spec.Pad,
		Tracer:          tr,
		TrackOutputs:    spec.TrackOutputs,
		Shards:          spec.Shards,
		Fanout:          spec.Fanout,
	})
	if spec.Timeline != nil {
		c.AttachTimeline(spec.Timeline)
	}
	c.ApplyPlan(spec.Crashes)
	var eng *traffic.Engine
	if spec.Traffic != nil {
		eng = traffic.NewEngine(*spec.Traffic, spec.Seed)
		eng.Attach(traffic.Host{At: c.K.At, Inject: c.Inject}, spec.Horizon)
	}
	events, err := c.RunContext(ctx, spec.Horizon)
	r := &Result{C: c, Spec: spec, Events: events, Traffic: eng}
	if err != nil {
		return r, err
	}
	r.Errors = c.Check()
	return r, nil
}

// MustRun panics on invariant violations — experiments must only report
// numbers from consistent runs. A ctx-cancelled run returns its partial
// result unchecked; callers bail out via ctx.Err().
func MustRun(ctx context.Context, spec Spec) *Result {
	r, err := Run(ctx, spec)
	if err != nil {
		return r
	}
	// The gossip workload never reports Done, so liveness errors about the
	// workload itself do not occur; any error here is a real violation.
	if len(r.Errors) > 0 {
		panic(fmt.Sprintf("experiments: inconsistent run: %v", r.Errors[0]))
	}
	return r
}

// Victim returns the recovery trace of process p's last recovery.
func (r *Result) Victim(p ids.ProcID) *metrics.RecoveryTrace {
	return r.C.Metrics(p).CurrentRecovery()
}

// LiveBlocked returns mean and max blocked time over the processes that
// never crashed.
func (r *Result) LiveBlocked() (mean, max time.Duration) {
	crashed := map[ids.ProcID]bool{}
	for _, cr := range r.Spec.Crashes {
		crashed[cr.Proc] = true
	}
	var lives []int
	for i := 0; i < r.Spec.N; i++ {
		if !crashed[ids.ProcID(i)] {
			lives = append(lives, i)
		}
	}
	procs := make([]*metrics.Proc, r.Spec.N)
	for i := 0; i < r.Spec.N; i++ {
		procs[i] = r.C.Metrics(ids.ProcID(i))
	}
	return metrics.Cluster{Procs: procs}.MeanBlocked(lives)
}

// recoveryKinds are the control messages attributable to the recovery
// algorithm itself (heartbeats and checkpoint notices are background).
var recoveryKinds = []wire.Kind{
	wire.KindRecoveryAnnounce, wire.KindIncRequest, wire.KindIncReply,
	wire.KindDepRequest, wire.KindDepReply, wire.KindRecoveryData,
	wire.KindRecoveryComplete, wire.KindReplayRequest, wire.KindRecovered,
}

// RecoveryTraffic sums the recovery-protocol control messages and bytes
// sent by all processes over the whole run.
func (r *Result) RecoveryTraffic() (msgs, bytes int64) {
	for i := 0; i < r.Spec.N; i++ {
		m := r.C.Metrics(ids.ProcID(i))
		for _, k := range recoveryKinds {
			msgs += m.MsgsSent[uint8(k)]
			bytes += m.BytesSent[uint8(k)]
		}
	}
	return msgs, bytes
}

// Breakdown splits a recovery trace into the phases the paper discusses.
type Breakdown struct {
	DetectRestart time.Duration // crash → process image back up
	Restore       time.Duration // stable-storage read of the checkpoint
	Gather        time.Duration // recovery protocol to depinfo in hand
	Replay        time.Duration // re-execution
	Total         time.Duration
}

// BreakdownOf converts a trace.
func BreakdownOf(tr *metrics.RecoveryTrace) Breakdown {
	if tr == nil || tr.ReplayedAt == 0 {
		return Breakdown{}
	}
	return Breakdown{
		DetectRestart: time.Duration(tr.RestartedAt - tr.CrashedAt),
		Restore:       time.Duration(tr.RestoredAt - tr.RestartedAt),
		Gather:        time.Duration(tr.GatheredAt - tr.RestoredAt),
		Replay:        time.Duration(tr.ReplayedAt - tr.GatheredAt),
		Total:         time.Duration(tr.ReplayedAt - tr.CrashedAt),
	}
}
