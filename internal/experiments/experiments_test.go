package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"rollrec/internal/failure"
	"rollrec/internal/metrics"
	"rollrec/internal/node"
	"rollrec/internal/recovery"
	"rollrec/internal/workload"
)

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"name", "dur", "count", "ratio"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("x", 34*time.Millisecond, 7, 0.5)
	tab.AddRow("longer-name", 4900*time.Millisecond, 100, 2.0)
	out := tab.String()
	for _, want := range []string{"T0 — demo", "34.0ms", "4.90s", "longer-name", "0.50", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header, separator, two rows, one note, plus title line.
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestBreakdownOf(t *testing.T) {
	if b := BreakdownOf(nil); b.Total != 0 {
		t.Fatal("nil trace must give a zero breakdown")
	}
	tr := &metrics.RecoveryTrace{
		CrashedAt:   1000,
		RestartedAt: 4000,
		RestoredAt:  6000,
		GatheredAt:  7000,
		ReplayedAt:  9000,
	}
	b := BreakdownOf(tr)
	if b.DetectRestart != 3000 || b.Restore != 2000 || b.Gather != 1000 ||
		b.Replay != 2000 || b.Total != 8000 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b := BreakdownOf(&metrics.RecoveryTrace{CrashedAt: 5}); b.Total != 0 {
		t.Fatal("incomplete trace must give zero breakdown")
	}
}

// fastSpec is a miniature experiment configuration so the package test
// exercises the full Run/MustRun/Victim/LiveBlocked path in milliseconds.
func fastSpec(style recovery.Style) Spec {
	hw := node.Profile1995()
	hw.WatchdogDetect = 200 * time.Millisecond
	hw.RestartDelay = 50 * time.Millisecond
	hw.SuspectAfter = 300 * time.Millisecond
	hw.HeartbeatEvery = 50 * time.Millisecond
	hw.CPUMsgCost = 50 * time.Microsecond
	hw.CPUByteCost = 0
	hw.Disk.Latency = time.Millisecond
	hw.Disk.ReadBandwidth = 100e6
	hw.Disk.WriteBandwidth = 100e6
	return Spec{
		N: 4, F: 2, Style: style, Seed: 3, HW: hw,
		App:     workload.NewRandomPeer(1, 1_000_000, 32, int64(200*time.Microsecond)),
		CPEvery: 500 * time.Millisecond,
		Pad:     8 << 10,
		Crashes: failure.Plan{{At: time.Second, Proc: 1}},
		Horizon: 5 * time.Second,
	}
}

func TestRunCollectsVictimAndBlocked(t *testing.T) {
	r := MustRun(context.Background(), fastSpec(recovery.Blocking))
	tr := r.Victim(1)
	if tr == nil || tr.ReplayedAt == 0 {
		t.Fatal("victim trace incomplete")
	}
	mean, max := r.LiveBlocked()
	if mean == 0 || max < mean {
		t.Fatalf("blocked stats wrong: mean=%v max=%v", mean, max)
	}
	msgs, bytes := r.RecoveryTraffic()
	if msgs == 0 || bytes == 0 {
		t.Fatal("recovery traffic must be counted")
	}
}

func TestNonBlockingRunBlocksNobody(t *testing.T) {
	r := MustRun(context.Background(), fastSpec(recovery.NonBlocking))
	if mean, max := r.LiveBlocked(); mean != 0 || max != 0 {
		t.Fatalf("nonblocking run blocked lives: mean=%v max=%v", mean, max)
	}
}
