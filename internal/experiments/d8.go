package experiments

import (
	"context"
	"fmt"
	"time"

	"rollrec/internal/costmodel"
	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/recovery"
	"rollrec/internal/wire"
)

// D8 validates the analytical cost model (the paper's hoped-for
// "theoretical formulation", §7) against the simulator: for the E1
// scenario it compares the predicted and measured recovery-phase times and
// per-live-process intrusion, per recovery style.
func D8(ctx context.Context, seed int64) Table {
	t := Table{
		ID:      "D8",
		Title:   "analytical model vs simulation (single failure, n=8, f=2)",
		Columns: []string{"style", "quantity", "model", "measured", "ratio"},
		Notes: []string{
			"the model expresses recovery cost in technology terms (detection, storage, per-message",
			"cost) instead of message counts — the reformulation the paper's conclusion asks for",
		},
	}
	for _, style := range []recovery.Style{recovery.NonBlocking, recovery.Blocking, recovery.Manetho} {
		spec := PaperSpec(style, seed)
		spec.Crashes = failure.Plan{{At: 10 * time.Second, Proc: 3}}
		r := MustRun(ctx, spec)
		if ctx.Err() != nil {
			return t
		}
		tr := r.Victim(3)
		b := BreakdownOf(tr)
		meanBlocked, _ := r.LiveBlocked()

		in := modelInputsFrom(r)
		in.Style = style
		pred := costmodel.SingleFailure(in)

		add := func(q string, model, measured time.Duration) {
			ratio := "-"
			if measured > 0 && model > 0 {
				ratio = fmt.Sprintf("%.2f", float64(model)/float64(measured))
			}
			t.AddRow(style.String(), q, model, measured, ratio)
		}
		add("detect+restart", pred.DetectRestart, b.DetectRestart)
		add("restore", pred.Restore, b.Restore)
		add("gather", pred.Gather, b.Gather)
		add("total", pred.Total(), b.Total)
		add("live blocked", pred.LiveBlocked, meanBlocked)
	}
	return t
}

// modelInputsFrom derives the model's workload-dependent inputs from a
// finished run, so the validation compares like with like.
func modelInputsFrom(r *Result) costmodel.Inputs {
	// Depinfo size: the mean measured depinfo reply.
	var depMsgs, depBytes64 int64
	for i := 0; i < r.Spec.N; i++ {
		m := r.C.Metrics(ids.ProcID(i))
		depMsgs += m.MsgsSent[uint8(wire.KindDepReply)]
		depBytes64 += m.BytesSent[uint8(wire.KindDepReply)]
	}
	depBytes := 4096
	if depMsgs > 0 {
		depBytes = int(depBytes64 / depMsgs)
	}
	// Replayed deliveries: the victim's Delivered counter double-counts
	// exactly the replayed prefix relative to its timeline length.
	met3 := r.C.Metrics(3)
	replayed := int(met3.Delivered - int64(r.C.Proc(3).RSN()))
	if replayed < 0 {
		replayed = 0
	}
	var cpBytes int
	if s := r.C.K.Store(3); s != nil {
		cpBytes = s.Size("cp")
	}
	if cpBytes == 0 {
		cpBytes = r.Spec.Pad
	}
	return costmodel.Inputs{
		HW:              r.Spec.HW,
		N:               r.Spec.N,
		F:               r.Spec.F,
		CheckpointBytes: cpBytes,
		DepinfoBytes:    depBytes,
		ReplayMsgs:      replayed,
		ReplayMsgBytes:  330, // gossip payload + envelope overhead
		WorkPerMsg:      time.Millisecond,
	}
}
