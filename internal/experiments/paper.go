package experiments

import (
	"context"
	"time"

	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/recovery"
)

// E1 reproduces the paper's first experiment (§5 ¶2): a single failure on
// an eight-workstation cluster. The paper reports equal recovery time for
// both algorithms, ≈50 ms of blocking per live process under the blocking
// algorithm, and no effect on live processes under the new one.
func E1(ctx context.Context, seed int64) Table {
	t := Table{
		ID:      "E1",
		Title:   "single failure, n=8, f=2, 1995 hardware profile",
		Columns: []string{"algorithm", "recovery", "live blocked (mean)", "live blocked (max)", "recovery ctl msgs"},
		Notes: []string{
			"paper: equal recovery time; blocking ≈50ms per live process; new algorithm ≈0",
		},
	}
	for _, style := range []recovery.Style{recovery.NonBlocking, recovery.Blocking} {
		spec := PaperSpec(style, seed)
		spec.Crashes = failure.Plan{{At: 10 * time.Second, Proc: 3}}
		r := MustRun(ctx, spec)
		if ctx.Err() != nil {
			return t
		}
		tr := r.Victim(3)
		mean, max := r.LiveBlocked()
		msgs, _ := r.RecoveryTraffic()
		t.AddRow(style.String(), tr.Total(), mean, max, msgs)
	}
	return t
}

// E2 reproduces the paper's second experiment (§5 ¶3): a second process
// fails while the first is still recovering. Both algorithms need ≈5 s
// (failure detection plus state restore dominate); the blocking algorithm
// blocks every live process for that whole window, while the new
// algorithm's extra second-phase communication costs only milliseconds.
func E2(ctx context.Context, seed int64) Table {
	t := Table{
		ID:      "E2",
		Title:   "second failure during recovery, n=8, f=2",
		Columns: []string{"algorithm", "recovery p3", "recovery p5", "live blocked (mean)", "live blocked (max)", "gather rounds"},
		Notes: []string{
			"paper: both recoveries ≈5s, dominated by failure detection + restoring the second process;",
			"blocking algorithm blocks lives for the same window; new algorithm's extra messages cost ≈ms",
		},
	}
	for _, style := range []recovery.Style{recovery.NonBlocking, recovery.Blocking} {
		spec := PaperSpec(style, seed)
		spec.Crashes = failure.Plan{
			{At: 10 * time.Second, Proc: 3},
			// 1995 profile: p3 restarts at 13.5s, restores by ~14s, gathers;
			// crash p5 right inside the gather.
			{At: 14100 * time.Millisecond, Proc: 5},
		}
		spec.Horizon = 45 * time.Second
		r := MustRun(ctx, spec)
		if ctx.Err() != nil {
			return t
		}
		tr3, tr5 := r.Victim(3), r.Victim(5)
		mean, max := r.LiveBlocked()
		rounds := tr3.Rounds
		if tr5.Rounds > rounds {
			rounds = tr5.Rounds
		}
		t.AddRow(style.String(), tr3.Total(), tr5.Total(), mean, max, rounds)
	}
	return t
}

// D5 reports the recovery-time breakdown behind E1 and E2 — making visible
// the paper's claim that detection and stable-storage restore, not
// communication, dominate recovery.
func D5(ctx context.Context, seed int64) Table {
	t := Table{
		ID:      "D5",
		Title:   "recovery-time breakdown (nonblocking algorithm)",
		Columns: []string{"scenario", "victim", "detect+restart", "restore", "gather", "replay", "total"},
		Notes: []string{
			"paper §5: 'most of this time was spent in failure detection and in restoring the state'",
		},
	}
	one := PaperSpec(recovery.NonBlocking, seed)
	one.Crashes = failure.Plan{{At: 10 * time.Second, Proc: 3}}
	r1 := MustRun(ctx, one)
	if ctx.Err() != nil {
		return t
	}
	b := BreakdownOf(r1.Victim(3))
	t.AddRow("single failure", "p3", b.DetectRestart, b.Restore, b.Gather, b.Replay, b.Total)

	two := PaperSpec(recovery.NonBlocking, seed)
	two.Crashes = failure.Plan{
		{At: 10 * time.Second, Proc: 3},
		{At: 14100 * time.Millisecond, Proc: 5},
	}
	two.Horizon = 45 * time.Second
	r2 := MustRun(ctx, two)
	if ctx.Err() != nil {
		return t
	}
	b3 := BreakdownOf(r2.Victim(3))
	b5 := BreakdownOf(r2.Victim(5))
	t.AddRow("overlapping, first", "p3", b3.DetectRestart, b3.Restore, b3.Gather, b3.Replay, b3.Total)
	t.AddRow("overlapping, second", "p5", b5.DetectRestart, b5.Restore, b5.Gather, b5.Replay, b5.Total)
	return t
}

// D6 is the Manetho-mode ablation: live processes must synchronously log
// their recovery replies to stable storage (paper §2.2), so the gather —
// and with it every live process's stall — absorbs a disk write.
func D6(ctx context.Context, seed int64) Table {
	t := Table{
		ID:      "D6",
		Title:   "live-process intrusion by recovery style (single failure, n=8)",
		Columns: []string{"style", "live blocked (mean)", "live blocked (max)", "live storage writes", "recovery"},
		Notes: []string{
			"manetho adds a synchronous stable-storage write to every live reply (paper §2.2)",
		},
	}
	for _, style := range []recovery.Style{recovery.NonBlocking, recovery.Blocking, recovery.Manetho} {
		spec := PaperSpec(style, seed)
		spec.Crashes = failure.Plan{{At: 10 * time.Second, Proc: 3}}
		r := MustRun(ctx, spec)
		if ctx.Err() != nil {
			return t
		}
		mean, max := r.LiveBlocked()
		var writes int64
		for i := 0; i < spec.N; i++ {
			if ids.ProcID(i) == 3 {
				continue
			}
			writes += r.C.Metrics(ids.ProcID(i)).StorageWrites
		}
		t.AddRow(style.String(), mean, max, writes, r.Victim(3).Total())
	}
	return t
}
