package experiments

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"rollrec/internal/node"
	"rollrec/internal/traffic"
	"rollrec/internal/workload"
)

// d12TestTraffic is the lighter cell the tests drive: same 2/2/4 topology
// as the experiment, well under its 250 req/s heavy cell so the suite
// stays fast.
func d12TestTraffic() workload.Traffic {
	tr := d12Base()
	tr.Load = 150
	return tr
}

// TestD12Deterministic runs the failure-free style trio twice at a short
// horizon and demands identical tables: the open-loop engine must be a
// pure function of (seed, spec).
func TestD12Deterministic(t *testing.T) {
	tr := d12TestTraffic()
	render := func() string {
		var out string
		for _, row := range d12Rows(context.Background(), 1, tr, 0, 6*time.Second) {
			r := row.run()
			st := traffic.StatsPerTier(r.led, tr)
			cl := st[workload.TierClient]
			if cl.Committed == 0 {
				t.Errorf("%s: no client outputs committed", row.style)
			}
			if r.eng.Offered() == 0 {
				t.Errorf("%s: engine offered nothing", row.style)
			}
			out += fmt.Sprintf("%s %d %d %d %v %v %v\n",
				row.style, r.eng.Offered(), r.eng.Shed(), cl.Committed, cl.P50, cl.P99, cl.P999)
		}
		return out
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("two identical D12 runs disagree:\n--- first\n%s--- second\n%s", a, b)
	}
}

// TestD12CrashUnderLoadStraddlers is the failure-variant invariant under
// open-loop load: with a backend crashed mid-run, (a) the victim's
// straddling outputs release only after its recovery completes, and (b)
// user-visible releases stall — the client tier releases in admission
// order, so once a request's shard is stuck on the dead backend the
// release cursor freezes, and requests admitted before the crash come out
// only after recovery ends.
func TestD12CrashUnderLoadStraddlers(t *testing.T) {
	const crashAt = 3 * time.Second
	tr := d12TestTraffic()
	victim := d12Victim(tr)
	r := d12FBL(context.Background(), 1, node.Profile1995(), tr, crashAt, 12*time.Second, nil)
	if r.recoveryEnd <= crashAt {
		t.Fatalf("victim never recovered (recovery end %v)", r.recoveryEnd)
	}
	victimStr := 0
	for _, rec := range r.led.Straddling(int64(crashAt)) {
		if rec.Proc != victim {
			continue
		}
		victimStr++
		if rec.Committed() && time.Duration(rec.CommittedAt) < r.recoveryEnd {
			t.Errorf("victim output %d/%d committed at %v, before recovery ended at %v",
				rec.Proc, rec.Seq, time.Duration(rec.CommittedAt), r.recoveryEnd)
		}
	}
	if victimStr == 0 {
		t.Error("no victim outputs straddled the crash; the scenario lost its point")
	}

	// The client-side ledger record opens at release time (the app requests
	// the output when the reply reaches the head of the admission queue),
	// so the stall shows up as a gap in RequestedAt: in-flight requests
	// drain within the grace window, then nothing releases until the
	// victim has recovered and the stuck shards replay.
	grace := int64(crashAt + 500*time.Millisecond)
	resumed := false
	for _, rec := range r.led.Records() {
		if tr.TierOf(rec.Proc) != workload.TierClient {
			continue
		}
		if rec.RequestedAt >= grace && rec.RequestedAt < int64(r.recoveryEnd) {
			t.Errorf("client %d released output %d at %v, inside the outage stall",
				rec.Proc, rec.Seq, time.Duration(rec.RequestedAt))
		}
		if rec.RequestedAt >= int64(r.recoveryEnd) && rec.Committed() {
			resumed = true
		}
	}
	if !resumed {
		t.Error("client releases never resumed after recovery")
	}
	if st := traffic.StatsPerTier(r.led, tr); st[workload.TierClient].Committed == 0 {
		t.Error("no client outputs committed at all")
	}
}

// d12TestTimelines samples the short crash cell (backend crash at 3 s,
// 12 s horizon) at the test load.
func d12TestTimelines(t *testing.T) []D12Timeline {
	t.Helper()
	return d12Timelines(context.Background(), 1, d12TestTraffic(),
		100*time.Millisecond, 3*time.Second, 12*time.Second)
}

// TestD12TimelinesDeterministic: two invocations of the sampled cells must
// export byte-identical JSON and CSV for every style (run under -cpu 1,4
// in CI: GOMAXPROCS must not leak into the series).
func TestD12TimelinesDeterministic(t *testing.T) {
	render := func() map[string][2][]byte {
		out := map[string][2][]byte{}
		for _, tl := range d12TestTimelines(t) {
			var j, c bytes.Buffer
			if err := tl.Export.Encode(&j); err != nil {
				t.Fatal(err)
			}
			if err := tl.Export.EncodeCSV(&c); err != nil {
				t.Fatal(err)
			}
			out[tl.Style] = [2][]byte{j.Bytes(), c.Bytes()}
		}
		return out
	}
	a, b := render(), render()
	for style, fa := range a {
		fb := b[style]
		if !bytes.Equal(fa[0], fb[0]) {
			t.Errorf("%s: JSON exports differ across identical runs", style)
		}
		if !bytes.Equal(fa[1], fb[1]) {
			t.Errorf("%s: CSV exports differ across identical runs", style)
		}
	}
}

// TestD12TimelinesTiered: D12 exports carry the v2 per-tier series — the
// tier partition in meta, per-tier in-flight gauges that are actually
// non-zero under load, and per-tier output windows with client-tier
// observations.
func TestD12TimelinesTiered(t *testing.T) {
	tr := d12TestTraffic()
	for _, tl := range d12TestTimelines(t) {
		e := tl.Export
		if got, want := fmt.Sprint(e.Meta.Tiers), fmt.Sprint(tr.TierSizes()); got != want {
			t.Errorf("%s: meta tiers %s, want %s", tl.Style, got, want)
			continue
		}
		sawInflight, sawClientDist := false, false
		for _, tk := range e.Ticks {
			if len(tk.InflightReq) != 3 || len(tk.TierOutput) != 3 {
				t.Errorf("%s: tick t=%v has %d/%d tier lanes, want 3/3",
					tl.Style, tk.TMS, len(tk.InflightReq), len(tk.TierOutput))
				break
			}
			if tk.InflightReq[workload.TierClient] > 0 {
				sawInflight = true
			}
			if tk.TierOutput[workload.TierClient].N > 0 {
				sawClientDist = true
			}
		}
		if !sawInflight {
			t.Errorf("%s: client tier never held an open request", tl.Style)
		}
		if !sawClientDist {
			t.Errorf("%s: client tier never recorded an output window", tl.Style)
		}
	}
}
