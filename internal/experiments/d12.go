package experiments

import (
	"context"
	"fmt"
	"time"

	"rollrec/internal/coord"
	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/node"
	"rollrec/internal/optimistic"
	"rollrec/internal/output"
	"rollrec/internal/recovery"
	"rollrec/internal/sim"
	"rollrec/internal/timeline"
	"rollrec/internal/traffic"
	"rollrec/internal/workload"
)

// D12 drives the open-loop multi-tier traffic engine (DESIGN §12) against
// all three styles and reports what the user sees: the client tier's
// request-to-release percentiles under each style's output-commit rule.
// Open loop is the point — arrivals keep coming at the offered rate no
// matter what the cluster is doing, so commit stalls surface as tail
// latency and downtime surfaces as shed load, exactly as they would for
// an outside caller. The sweep crosses offered load x arrival process,
// and the failure variant crashes a backend mid-run to show the
// straddling requests riding out recovery.
func D12(ctx context.Context, seed int64) Table {
	t := Table{
		ID: "D12",
		Title: fmt.Sprintf("open-loop traffic: user-visible commit latency (n=%d, %d clients / %d frontends / %d backends, fan-out %d)",
			d12Base().N(), d12Base().Clients, d12Base().Frontends, d12Base().Backends, d12Base().FanOut),
		Columns: []string{
			"load", "arrival", "style", "crash", "offered", "shed", "released",
			"client p50", "client p99", "client p99.9",
		},
		Notes: []string{
			"released = client-tier outputs committed within the horizon; the client tier releases",
			"responses in admission order, so one straggling shard holds the line behind it — the",
			"open-loop p99.9 is where the styles' commit rules separate",
		},
	}

	const ffHorizon = 15 * time.Second
	base := d12Base()
	for _, load := range []int{100, 250} {
		tr := base
		tr.Load = load
		for _, row := range d12Rows(ctx, seed, tr, 0, ffHorizon) {
			r := row.run()
			if ctx.Err() != nil {
				return t
			}
			d12AddRow(&t, tr, row.style, "none", r)
		}
	}

	// Heavy tail: same offered load, bounded-Pareto gaps. Bursts pile
	// requests onto the same window, so the tail stretches with no change
	// in mean load.
	pareto := base
	pareto.Arrival = workload.ArrivalPareto
	for _, row := range d12Rows(ctx, seed, pareto, 0, ffHorizon) {
		r := row.run()
		if ctx.Err() != nil {
			return t
		}
		d12AddRow(&t, pareto, row.style, "none", r)
	}

	// Failure variant: crash a backend at t=10s under full load. Requests
	// whose shards straddle the crash release only after recovery ends.
	const crashAt = 10 * time.Second
	crash := base
	for _, row := range d12Rows(ctx, seed, crash, crashAt, 25*time.Second) {
		r := row.run()
		if ctx.Err() != nil {
			return t
		}
		d12AddRow(&t, crash, row.style, fmt.Sprintf("backend@%s", crashAt), r)
		t.Notes = append(t.Notes, d12StraddleNote(row.style, r, crashAt))
	}
	return t
}

// d12Base is the D12 topology: eight processes split 2/2/4 with fan-out 2,
// payloads padded like the D11 client–server. The load levels are set by
// the 1995 profile's per-message CPU cost (1 ms to send or receive), not
// by the 500 µs application work: each request costs a frontend about six
// message handlings, so the two frontends saturate near ~330 req/s before
// logging overhead. 100 req/s is the comfortable cell where the latency
// columns isolate the styles' commit rules; 250 req/s deliberately sits
// at the saturation knee, where open-loop queueing compounds them — the
// regime a closed-loop workload cannot produce at all.
func d12Base() workload.Traffic {
	return workload.Traffic{
		Clients:    2,
		Frontends:  2,
		Backends:   4,
		FanOut:     2,
		Load:       250,
		WorkPerHop: int64(500 * time.Microsecond),
		PayloadPad: 256,
	}
}

// d12Victim is the crash target: the last backend. Clients are excluded on
// FBL soundness grounds (see fbl.Process.Inject); a backend victim keeps
// the three styles' failure variants comparable.
func d12Victim(tr workload.Traffic) ids.ProcID { return ids.ProcID(tr.N() - 1) }

type d12Row struct {
	style string
	run   func() d12Run
}

// d12Rows enumerates one table block: the paper's FBL against the two
// alternative styles, all hosting the same traffic spec and seed.
func d12Rows(ctx context.Context, seed int64, tr workload.Traffic, crashAt, horizon time.Duration) []d12Row {
	hw := node.Profile1995()
	return []d12Row{
		{"fbl f=2 nonblocking", func() d12Run { return d12FBL(ctx, seed, hw, tr, crashAt, horizon, nil) }},
		{"coordinated", func() d12Run { return d12Coord(ctx, seed, hw, tr, crashAt, horizon, nil) }},
		{"optimistic", func() d12Run { return d12Optimistic(ctx, seed, hw, tr, crashAt, horizon, nil) }},
	}
}

type d12Run struct {
	led *output.Ledger
	eng *traffic.Engine
	// recoveryEnd is the virtual instant the victim finished recovering
	// (0 without a crash).
	recoveryEnd time.Duration
}

func d12AddRow(t *Table, tr workload.Traffic, style, crash string, r d12Run) {
	st := traffic.StatsPerTier(r.led, tr)
	cl := st[workload.TierClient]
	t.AddRow(tr.Load, tr.Arrival, style, crash, r.eng.Offered(), r.eng.Shed(),
		cl.Committed, cl.P50, cl.P99, cl.P999)
}

func d12StraddleNote(style string, r d12Run, crashAt time.Duration) string {
	str := r.led.Straddling(int64(crashAt))
	released := 0
	var first time.Duration
	for _, rec := range str {
		if !rec.Committed() {
			continue
		}
		released++
		if c := time.Duration(rec.CommittedAt); first == 0 || c < first {
			first = c
		}
	}
	return fmt.Sprintf("%s crash: %d outputs straddled it (%d released after), %d arrivals shed; first release t=%s, recovery end t=%s",
		style, len(str), released, r.eng.Shed(), metrics.FmtDuration(first), metrics.FmtDuration(r.recoveryEnd))
}

// d12FBL hosts the traffic spec on the full cluster harness: Spec.Traffic
// installs the app and Run attaches the engine. col, if non-nil, samples
// the run (see D12Timelines).
func d12FBL(ctx context.Context, seed int64, hw node.Hardware, tr workload.Traffic,
	crashAt, horizon time.Duration, col *timeline.Collector) d12Run {
	spec := PaperSpec(recovery.NonBlocking, seed)
	spec.N = tr.N()
	spec.HW = hw
	spec.App = nil
	spec.Traffic = &tr
	spec.Horizon = horizon
	spec.TrackOutputs = true
	spec.Timeline = col
	if crashAt > 0 {
		spec.Crashes = failure.Plan{{At: crashAt, Proc: d12Victim(tr)}}
	}
	r := MustRun(ctx, spec)
	out := d12Run{led: r.C.Outputs(), eng: r.Traffic}
	if crashAt > 0 {
		if rec := r.Victim(d12Victim(tr)); rec != nil && rec.ReplayedAt != 0 {
			out.recoveryEnd = time.Duration(rec.ReplayedAt)
		}
	}
	return out
}

// d12Coord hosts the traffic spec on a raw coordinated-checkpointing
// kernel, injecting arrivals through coord.Process.Inject.
func d12Coord(ctx context.Context, seed int64, hw node.Hardware, tr workload.Traffic,
	crashAt, horizon time.Duration, col *timeline.Collector) d12Run {
	n := tr.N()
	led := output.NewLedger(n)
	k := sim.New(sim.Config{Seed: seed, HW: hw})
	led.SetMetrics(k.Metrics)
	par := coord.Params{
		N:             n,
		App:           workload.Seeded(traffic.NewApp(tr), seed),
		SnapshotEvery: 4 * time.Second,
		StatePad:      1 << 20,
		Outputs:       led,
	}
	for i := 0; i < n; i++ {
		k.AddNode(ids.ProcID(i), coord.New(par))
	}
	k.Boot()
	if col != nil {
		attachKernelTimeline(col, k, led, n, func(i int) timeline.Phase {
			p, ok := k.ProcOf(ids.ProcID(i)).(*coord.Process)
			switch {
			case !ok || p == nil:
				return timeline.PhaseDown
			case p.Recovering():
				return timeline.PhaseRecovering
			default:
				return timeline.PhaseLive
			}
		}, nil, func(i int) int {
			if p, ok := k.ProcOf(ids.ProcID(i)).(*coord.Process); ok && p != nil {
				if a, ok := p.App().(interface{ InflightReqs() int }); ok {
					return a.InflightReqs()
				}
			}
			return 0
		})
	}
	eng := traffic.NewEngine(tr, seed)
	eng.Attach(traffic.Host{At: k.At, Inject: func(p ids.ProcID, payload []byte) bool {
		pr, ok := k.ProcOf(p).(*coord.Process)
		return ok && pr != nil && pr.Inject(payload)
	}}, horizon)
	if crashAt > 0 {
		k.CrashAt(crashAt, d12Victim(tr))
	}
	if _, err := k.RunContext(ctx, horizon); err != nil {
		return d12Run{led: led, eng: eng}
	}
	out := d12Run{led: led, eng: eng}
	if crashAt > 0 {
		if rec := k.Metrics(d12Victim(tr)).CurrentRecovery(); rec != nil && rec.ReplayedAt != 0 {
			out.recoveryEnd = time.Duration(rec.ReplayedAt)
		}
	}
	return out
}

// d12Optimistic hosts the traffic spec on a raw optimistic-logging kernel;
// arrivals are logged as self-entries (optimistic.Process.Inject), so any
// process — including clients — could crash here, but the victim stays a
// backend for cross-style comparability.
func d12Optimistic(ctx context.Context, seed int64, hw node.Hardware, tr workload.Traffic,
	crashAt, horizon time.Duration, col *timeline.Collector) d12Run {
	n := tr.N()
	led := output.NewLedger(n)
	k := sim.New(sim.Config{Seed: seed, HW: hw})
	led.SetMetrics(k.Metrics)
	par := optimistic.Params{
		N:          n,
		App:        workload.Seeded(traffic.NewApp(tr), seed),
		FlushEvery: 500 * time.Millisecond,
		StatePad:   4 << 10,
		Outputs:    led,
	}
	for i := 0; i < n; i++ {
		k.AddNode(ids.ProcID(i), optimistic.New(par))
	}
	k.Boot()
	if col != nil {
		attachKernelTimeline(col, k, led, n, func(i int) timeline.Phase {
			p, ok := k.ProcOf(ids.ProcID(i)).(*optimistic.Process)
			switch {
			case !ok || p == nil:
				return timeline.PhaseDown
			case p.Rolling():
				return timeline.PhaseRecovering
			default:
				return timeline.PhaseLive
			}
		}, func(i int) (journal, lag int) {
			if p, ok := k.ProcOf(ids.ProcID(i)).(*optimistic.Process); ok && p != nil {
				total, durable := p.LogSizes()
				return total, total - durable
			}
			return 0, 0
		}, func(i int) int {
			if p, ok := k.ProcOf(ids.ProcID(i)).(*optimistic.Process); ok && p != nil {
				if a, ok := p.App().(interface{ InflightReqs() int }); ok {
					return a.InflightReqs()
				}
			}
			return 0
		})
	}
	eng := traffic.NewEngine(tr, seed)
	eng.Attach(traffic.Host{At: k.At, Inject: func(p ids.ProcID, payload []byte) bool {
		pr, ok := k.ProcOf(p).(*optimistic.Process)
		return ok && pr != nil && pr.Inject(payload)
	}}, horizon)
	if crashAt > 0 {
		k.CrashAt(crashAt, d12Victim(tr))
	}
	if _, err := k.RunContext(ctx, horizon); err != nil {
		return d12Run{led: led, eng: eng}
	}
	out := d12Run{led: led, eng: eng}
	if crashAt > 0 {
		if rec := k.Metrics(d12Victim(tr)).CurrentRecovery(); rec != nil && rec.ReplayedAt != 0 {
			out.recoveryEnd = time.Duration(rec.ReplayedAt)
		}
	}
	return out
}

// D12Timeline is one style's sampled crash-under-load run.
type D12Timeline struct {
	Style  string
	Export *timeline.Export
}

// D12Timelines reruns the D12 failure variant (backend crash at crashAt
// under the experiment's full 250 req/s offered load; zero values select the
// experiment's 10 s / 25 s cell) under each style with a tiered timeline
// collector attached: the exports carry the per-tier in-flight and
// output-commit series on top of the usual lanes. Sampling is
// observation-only, so each run's event sequence is identical to its
// unsampled D12 counterpart.
func D12Timelines(ctx context.Context, seed int64, interval, crashAt, horizon time.Duration) []D12Timeline {
	if crashAt <= 0 {
		crashAt = 10 * time.Second
	}
	if horizon <= 0 {
		horizon = 25 * time.Second
	}
	return d12Timelines(ctx, seed, d12Base(), interval, crashAt, horizon)
}

// d12Timelines samples the crash variant of an arbitrary traffic spec (the
// tests use a lighter cell than the experiment's).
func d12Timelines(ctx context.Context, seed int64, tr workload.Traffic, interval, crashAt, horizon time.Duration) []D12Timeline {
	hw := node.Profile1995()
	mk := func(style string) *timeline.Collector {
		return timeline.New(timeline.Config{
			Interval: interval,
			N:        tr.N(),
			Label:    "D12/" + style + " load=" + fmt.Sprint(tr.Load) + " crash@" + crashAt.String(),
			Tiers:    tr.TierSizes(),
		})
	}

	fbl := mk("fbl")
	d12FBL(ctx, seed, hw, tr, crashAt, horizon, fbl)
	co := mk("coordinated")
	d12Coord(ctx, seed, hw, tr, crashAt, horizon, co)
	opt := mk("optimistic")
	d12Optimistic(ctx, seed, hw, tr, crashAt, horizon, opt)

	return []D12Timeline{
		{Style: "fbl", Export: fbl.Export()},
		{Style: "coordinated", Export: co.Export()},
		{Style: "optimistic", Export: opt.Export()},
	}
}
