// Package workload defines the application model the protocol stack hosts
// and three deterministic workloads used by the experiments.
//
// The rollback-recovery protocols assume piecewise-deterministic execution:
// the only nondeterministic events are message receipts. Applications here
// are therefore pure message-driven state machines — all state, including
// any pseudo-randomness, lives inside the checkpointable App so that
// replaying the same delivery sequence regenerates the identical sends.
package workload

import (
	"fmt"

	"rollrec/internal/ids"
)

// Ctx is the capability an App receives from its hosting protocol process.
type Ctx interface {
	// Self returns the hosting process identifier.
	Self() ids.ProcID
	// N returns the number of application processes.
	N() int
	// Send transmits an application payload to another process through the
	// logging protocol. Payloads are copied.
	Send(to ids.ProcID, payload []byte)
	// Work charges d nanoseconds of simulated computation.
	Work(d int64)
	// Output declares payload as externally visible: the protocol records
	// the output's causal dependencies now and commits it — releases it to
	// the outside world — once its style's output-commit rule holds (all
	// determinants of antecedent deliveries f+1-replicated or stable for
	// FBL; covered by a committed snapshot for coordinated checkpointing;
	// all causally-preceding state intervals logged stable for optimistic
	// logging). The payload is not transmitted anywhere; hosts without an
	// output ledger treat this as a no-op.
	Output(payload []byte)
	// Logf emits a trace line if tracing is enabled.
	Logf(format string, args ...any)
}

// App is a deterministic message-driven application.
//
// Determinism contract: Start and Handle must be pure functions of the app
// state and their arguments — no wall-clock, no shared globals, no
// goroutines. Given the same delivery sequence they must make the same
// Send calls in the same order.
type App interface {
	// Start runs once at the beginning of the computation (it is re-run
	// during recovery only when the checkpoint predates it).
	Start(ctx Ctx)
	// Handle processes one delivered message.
	Handle(ctx Ctx, from ids.ProcID, payload []byte)
	// Snapshot serializes the complete application state.
	Snapshot() []byte
	// Restore replaces the state with a snapshot produced by Snapshot.
	Restore(data []byte) error
	// Digest returns a deterministic fingerprint of the current state.
	Digest() uint64
	// Done reports whether this process's share of the workload finished;
	// experiments poll it to know when the system has quiesced.
	Done() bool
}

// Factory builds the App for one process.
type Factory func(self ids.ProcID, n int) App

// Seeder is implemented by workloads whose random choices should vary with
// the run-level simulation seed. A harness calls Reseed immediately after
// the factory builds the app — before Start and before any Restore — so
// the mixed seed becomes part of the app's initial checkpointable state
// and replay fidelity is unaffected. Workloads that ignore the run seed
// (token ring, client–server, Figure 1) simply don't implement it.
type Seeder interface {
	Reseed(runSeed int64)
}

// Seeded wraps a factory so every app it builds is reseeded with runSeed
// (when the workload supports it). Harnesses apply this once at cluster
// construction; the wrapped factory is then used for every (re)build of a
// process image, so restarts see the same stream.
func Seeded(f Factory, runSeed int64) Factory {
	if f == nil {
		return nil
	}
	return func(self ids.ProcID, n int) App {
		a := f(self, n)
		if s, ok := a.(Seeder); ok {
			s.Reseed(runSeed)
		}
		return a
	}
}

// PRNG is a tiny serializable xorshift64* generator. Apps must use it (not
// math/rand, whose state cannot be checkpointed) for any randomness.
type PRNG struct {
	s uint64
}

// NewPRNG seeds a generator; a zero seed is replaced to keep the stream
// non-degenerate.
func NewPRNG(seed uint64) PRNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return PRNG{s: seed}
}

// Next returns the next 64-bit value.
func (p *PRNG) Next() uint64 {
	p.s ^= p.s >> 12
	p.s ^= p.s << 25
	p.s ^= p.s >> 27
	return p.s * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Intn(%d)", n))
	}
	return int(p.Next() % uint64(n))
}

// State exposes the raw state for snapshots.
func (p PRNG) State() uint64 { return p.s }

// SetState restores the raw state.
func (p *PRNG) SetState(s uint64) { p.s = s }

// Mix64 is the shared digest mixer (splitmix64 finalizer).
func Mix64(h, v uint64) uint64 {
	h += v + 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}
