package workload

import (
	"errors"
	"fmt"

	"rollrec/internal/ids"
	"rollrec/internal/wire"
)

// errBadSnapshot is returned by Restore on malformed snapshots.
var errBadSnapshot = errors.New("workload: malformed snapshot")

// ---------------------------------------------------------------------------
// Token ring
// ---------------------------------------------------------------------------

// TokenRing circulates a single token around the ring 0→1→…→n-1→0, mixing a
// running accumulator at each hop. It is the most replay-sensitive workload:
// the entire computation is one causal chain, so any lost or duplicated
// delivery corrupts the final digest. MaxHops bounds the computation;
// PayloadPad inflates the token to model realistic message sizes.
type TokenRing struct {
	self       ids.ProcID
	n          int
	MaxHops    uint64
	PayloadPad int
	WorkPerMsg int64

	// Checkpointable state.
	visits  uint64
	lastHop uint64
	acc     uint64
}

// NewTokenRing returns a factory for a ring of maxHops hops with the given
// payload padding.
func NewTokenRing(maxHops uint64, payloadPad int, workPerMsg int64) Factory {
	return func(self ids.ProcID, n int) App {
		return &TokenRing{self: self, n: n, MaxHops: maxHops, PayloadPad: payloadPad, WorkPerMsg: workPerMsg}
	}
}

func (t *TokenRing) token(hop, acc uint64) []byte {
	w := wire.NewWriter(16 + t.PayloadPad)
	w.U64(hop)
	w.U64(acc)
	w.Bytes(make([]byte, t.PayloadPad))
	return w.Frame()
}

// Start launches the token from process 0.
func (t *TokenRing) Start(ctx Ctx) {
	if t.self == 0 && t.MaxHops > 0 {
		ctx.Send(1%ids.ProcID(t.n), t.token(1, Mix64(0, 0)))
	}
}

// Handle advances the token.
func (t *TokenRing) Handle(ctx Ctx, from ids.ProcID, payload []byte) {
	r := wire.NewReader(payload)
	hop := r.U64()
	acc := r.U64()
	r.Bytes()
	if r.Err() != nil {
		ctx.Logf("token-ring: bad payload from %v: %v", from, r.Err())
		return
	}
	if t.WorkPerMsg > 0 {
		ctx.Work(t.WorkPerMsg)
	}
	t.visits++
	t.lastHop = hop
	t.acc = Mix64(acc, uint64(t.self))
	if hop < t.MaxHops {
		next := ids.ProcID((int(t.self) + 1) % t.n)
		ctx.Send(next, t.token(hop+1, t.acc))
	}
}

// Snapshot serializes the ring state.
func (t *TokenRing) Snapshot() []byte {
	w := wire.NewWriter(24)
	w.U64(t.visits)
	w.U64(t.lastHop)
	w.U64(t.acc)
	return w.Frame()
}

// Restore replaces the ring state.
func (t *TokenRing) Restore(data []byte) error {
	r := wire.NewReader(data)
	t.visits = r.U64()
	t.lastHop = r.U64()
	t.acc = r.U64()
	if !r.Done() {
		return fmt.Errorf("%w: token ring", errBadSnapshot)
	}
	return nil
}

// Digest fingerprints the state.
func (t *TokenRing) Digest() uint64 {
	return Mix64(Mix64(t.visits, t.lastHop), t.acc)
}

// Done reports whether the token can no longer visit this process.
func (t *TokenRing) Done() bool {
	return t.lastHop+uint64(t.n) > t.MaxHops && t.visits > 0
}

// Acc exposes the accumulator for test assertions.
func (t *TokenRing) Acc() uint64 { return t.acc }

// Visits exposes the visit count for test assertions.
func (t *TokenRing) Visits() uint64 { return t.visits }

// ---------------------------------------------------------------------------
// Random peer gossip
// ---------------------------------------------------------------------------

// RandomPeer models the irregular communication the FBL piggybacking rules
// are designed for: every process seeds a few message chains; each delivery
// mixes the payload into local state and forwards a shorter chain to a
// pseudo-randomly chosen peer. The PRNG is part of the checkpointed state,
// so replay regenerates identical choices.
type RandomPeer struct {
	self       ids.ProcID
	n          int
	Seeds      int
	TTL        int
	PayloadPad int
	WorkPerMsg int64

	// Checkpointable state.
	rng     PRNG
	handled uint64
	acc     uint64
}

// NewRandomPeer returns a factory: each process starts seeds chains of
// length ttl+1 deliveries.
func NewRandomPeer(seeds, ttl, payloadPad int, workPerMsg int64) Factory {
	return func(self ids.ProcID, n int) App {
		return &RandomPeer{
			self: self, n: n, Seeds: seeds, TTL: ttl, PayloadPad: payloadPad,
			WorkPerMsg: workPerMsg,
			rng:        NewPRNG(uint64(self)*0xA24BAED4963EE407 + 1),
		}
	}
}

// Reseed folds the run-level seed into the gossip PRNG so different
// simulation seeds explore different communication patterns (Seeder
// contract: called before Start, so the mixed state is checkpointed like
// any other app state and replay regenerates identical choices).
func (g *RandomPeer) Reseed(runSeed int64) {
	g.rng = PRNG{s: Mix64(uint64(runSeed), g.rng.State())}
}

func (g *RandomPeer) pick() ids.ProcID {
	p := g.rng.Intn(g.n - 1)
	if p >= int(g.self) {
		p++
	}
	return ids.ProcID(p)
}

func (g *RandomPeer) chain(ttl int, body uint64) []byte {
	w := wire.NewWriter(16 + g.PayloadPad)
	w.U32(uint32(ttl))
	w.U64(body)
	w.Bytes(make([]byte, g.PayloadPad))
	return w.Frame()
}

// Start seeds the chains.
func (g *RandomPeer) Start(ctx Ctx) {
	for i := 0; i < g.Seeds; i++ {
		ctx.Send(g.pick(), g.chain(g.TTL, g.rng.Next()))
	}
}

// Handle mixes and forwards.
func (g *RandomPeer) Handle(ctx Ctx, from ids.ProcID, payload []byte) {
	r := wire.NewReader(payload)
	ttl := int(r.U32())
	body := r.U64()
	r.Bytes()
	if r.Err() != nil {
		ctx.Logf("random-peer: bad payload from %v: %v", from, r.Err())
		return
	}
	if g.WorkPerMsg > 0 {
		ctx.Work(g.WorkPerMsg)
	}
	g.handled++
	g.acc = Mix64(g.acc, Mix64(body, uint64(from)))
	if ttl > 0 {
		ctx.Send(g.pick(), g.chain(ttl-1, Mix64(body, g.acc)))
	}
}

// Snapshot serializes the gossip state.
func (g *RandomPeer) Snapshot() []byte {
	w := wire.NewWriter(24)
	w.U64(g.rng.State())
	w.U64(g.handled)
	w.U64(g.acc)
	return w.Frame()
}

// Restore replaces the gossip state.
func (g *RandomPeer) Restore(data []byte) error {
	r := wire.NewReader(data)
	g.rng.SetState(r.U64())
	g.handled = r.U64()
	g.acc = r.U64()
	if !r.Done() {
		return fmt.Errorf("%w: random peer", errBadSnapshot)
	}
	return nil
}

// Digest fingerprints the state.
func (g *RandomPeer) Digest() uint64 { return Mix64(Mix64(g.handled, g.acc), g.rng.State()) }

// Done always reports false: gossip quiesces by horizon, not by target.
func (g *RandomPeer) Done() bool { return false }

// Handled exposes the delivery count for assertions.
func (g *RandomPeer) Handled() uint64 { return g.handled }

// ---------------------------------------------------------------------------
// Client–server
// ---------------------------------------------------------------------------

// ClientServer runs process 0 as a server applying requests from every
// other process; each client pipelines one request at a time, K requests
// total. It models the output-commit-style workloads where a failed server
// must recover without the clients observing duplicated or lost
// applications.
type ClientServer struct {
	self       ids.ProcID
	n          int
	K          int
	PayloadPad int
	WorkPerMsg int64

	// Checkpointable state.
	rng     PRNG
	applied uint64 // server: requests applied
	state   uint64 // server: running state hash
	sent    int    // client: requests issued
	gotLast bool   // client: final reply received
}

// NewClientServer returns a factory where each of the n-1 clients issues k
// requests to the server at process 0.
func NewClientServer(k, payloadPad int, workPerMsg int64) Factory {
	return func(self ids.ProcID, n int) App {
		return &ClientServer{
			self: self, n: n, K: k, PayloadPad: payloadPad, WorkPerMsg: workPerMsg,
			rng: NewPRNG(uint64(self)*0xD1342543DE82EF95 + 7),
		}
	}
}

func (c *ClientServer) request(seq int) []byte {
	w := wire.NewWriter(16 + c.PayloadPad)
	w.U32(uint32(seq))
	w.U64(c.rng.Next())
	w.Bytes(make([]byte, c.PayloadPad))
	return w.Frame()
}

// Start issues each client's first request.
func (c *ClientServer) Start(ctx Ctx) {
	if c.self != 0 && c.K > 0 {
		c.sent = 1
		ctx.Send(0, c.request(1))
	}
}

// Handle applies a request (server) or issues the next one (client).
func (c *ClientServer) Handle(ctx Ctx, from ids.ProcID, payload []byte) {
	r := wire.NewReader(payload)
	seq := int(r.U32())
	body := r.U64()
	r.Bytes()
	if r.Err() != nil {
		ctx.Logf("client-server: bad payload from %v: %v", from, r.Err())
		return
	}
	if c.WorkPerMsg > 0 {
		ctx.Work(c.WorkPerMsg)
	}
	if c.self == 0 {
		c.applied++
		c.state = Mix64(c.state, Mix64(body, uint64(from)))
		reply := wire.NewWriter(20)
		reply.U32(uint32(seq))
		reply.U64(c.state)
		reply.Bytes(nil) // keep the request/reply frame layout identical
		// The reply is externally visible: the client acts on it, so it may
		// only leave once the protocol's output-commit rule holds.
		ctx.Output(reply.Frame())
		ctx.Send(from, reply.Frame())
		return
	}
	// Client: a reply to request seq.
	if seq >= c.K {
		c.gotLast = true
		return
	}
	c.sent = seq + 1
	ctx.Send(0, c.request(seq+1))
}

// Snapshot serializes the state.
func (c *ClientServer) Snapshot() []byte {
	w := wire.NewWriter(40)
	w.U64(c.rng.State())
	w.U64(c.applied)
	w.U64(c.state)
	w.U32(uint32(c.sent))
	last := uint8(0)
	if c.gotLast {
		last = 1
	}
	w.U8(last)
	return w.Frame()
}

// Restore replaces the state.
func (c *ClientServer) Restore(data []byte) error {
	r := wire.NewReader(data)
	c.rng.SetState(r.U64())
	c.applied = r.U64()
	c.state = r.U64()
	c.sent = int(r.U32())
	c.gotLast = r.U8() == 1
	if !r.Done() {
		return fmt.Errorf("%w: client-server", errBadSnapshot)
	}
	return nil
}

// Digest fingerprints the state.
func (c *ClientServer) Digest() uint64 {
	last := uint64(0)
	if c.gotLast {
		last = 1
	}
	return Mix64(Mix64(c.applied, c.state), Mix64(uint64(c.sent), last))
}

// Done reports completion: clients after the final reply, the server after
// applying every request.
func (c *ClientServer) Done() bool {
	if c.self == 0 {
		return c.applied >= uint64(c.K*(c.n-1))
	}
	return c.gotLast
}

// Applied exposes the server's applied count for assertions.
func (c *ClientServer) Applied() uint64 { return c.applied }
