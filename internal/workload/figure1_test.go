package workload

import (
	"testing"

	"rollrec/internal/ids"
)

// pump drives a 3-process Figure1 cluster to quiescence in-memory.
func pumpFigure1(t *testing.T, rounds int) []App {
	t.Helper()
	apps := make([]App, 3)
	ctxs := make([]*fakeCtx, 3)
	f := NewFigure1(rounds)
	for i := range apps {
		apps[i] = f(ids.ProcID(i), 3)
		ctxs[i] = &fakeCtx{self: ids.ProcID(i), n: 3}
	}
	type msg struct {
		from, to ids.ProcID
		payload  string
	}
	var q []msg
	pump := func(i int) {
		for _, s := range ctxs[i].sends {
			q = append(q, msg{ids.ProcID(i), s.to, s.payload})
		}
		ctxs[i].sends = nil
	}
	for i := range apps {
		apps[i].Start(ctxs[i])
		pump(i)
	}
	for len(q) > 0 {
		m := q[0]
		q = q[1:]
		apps[m.to].Handle(ctxs[m.to], m.from, []byte(m.payload))
		pump(int(m.to))
	}
	return apps
}

func TestFigure1ChainCompletes(t *testing.T) {
	apps := pumpFigure1(t, 5)
	for i, a := range apps {
		if !a.Done() {
			t.Errorf("process %d not done", i)
		}
	}
	// Each round is m → m' → m'' (+ a restart hop between rounds):
	// p sees m ×5, q sees m' ×5 + restart ×4, r sees m'' ×5.
	if got := apps[0].(*Figure1).Seen(); got != 5 {
		t.Errorf("p saw %d messages, want 5", got)
	}
	if got := apps[1].(*Figure1).Seen(); got != 9 {
		t.Errorf("q saw %d messages, want 9", got)
	}
	if got := apps[2].(*Figure1).Seen(); got != 5 {
		t.Errorf("r saw %d messages, want 5", got)
	}
}

func TestFigure1Deterministic(t *testing.T) {
	a := pumpFigure1(t, 7)
	b := pumpFigure1(t, 7)
	for i := range a {
		if a[i].Digest() != b[i].Digest() {
			t.Fatalf("process %d digests differ across identical runs", i)
		}
	}
}

func TestFigure1SnapshotRoundTrip(t *testing.T) {
	apps := pumpFigure1(t, 3)
	snap := apps[1].Snapshot()
	fresh := NewFigure1(3)(1, 3)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.Digest() != apps[1].Digest() {
		t.Fatal("snapshot round trip changed the digest")
	}
	if err := fresh.Restore([]byte{1}); err == nil {
		t.Fatal("garbage snapshot must be rejected")
	}
}

func TestFigure1RequiresThreeProcesses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong cluster size must panic")
		}
	}()
	NewFigure1(1)(0, 4)
}
