package workload

import (
	"fmt"
	"time"

	"rollrec/internal/ids"
)

// Tier names a position in the open-loop serving topology: requests enter
// at clients, fan out through frontends to backends, and the protocols'
// stable storage stands in for the storage tier.
type Tier uint8

const (
	// TierClient terminates user requests: it admits open-loop arrivals,
	// forwards them to a frontend, and releases the response to the user
	// (the user-visible output commit).
	TierClient Tier = iota
	// TierFrontend fans each request out to FanOut backends and fans the
	// shard replies back in.
	TierFrontend
	// TierBackend applies one shard of a request and replies.
	TierBackend
)

// String names the tier.
func (t Tier) String() string {
	return [...]string{"client", "frontend", "backend"}[t]
}

// Arrival selects the inter-arrival process of the open-loop engine.
type Arrival uint8

const (
	// ArrivalPoisson draws exponential inter-arrival gaps (memoryless open
	// loop, the M/…/… baseline).
	ArrivalPoisson Arrival = iota
	// ArrivalPareto draws bounded-Pareto gaps (alpha = 3/2, bounded at
	// 100x the scale): a heavy tail that bursts arrivals and starves the
	// gaps between bursts, the classic self-similar traffic shape.
	ArrivalPareto
)

// String names the arrival process.
func (a Arrival) String() string {
	return [...]string{"poisson", "pareto"}[a]
}

// Traffic describes an open-loop multi-tier serving workload: the tier
// topology (processes [0,Clients) are clients, the next Frontends are
// frontends, the rest backends), the request fan-out, and the arrival
// process the harness-side engine drives against the client tier. The
// protocols underneath are untouched — arrivals enter through a host
// injection point and everything downstream is ordinary application
// messaging, so each style's recovery and output-commit machinery applies
// to the request flow unchanged.
type Traffic struct {
	// Clients, Frontends, Backends partition the n processes into tiers,
	// in that id order. All three must be >= 1.
	Clients, Frontends, Backends int
	// FanOut is how many backends each request's shards hit (1..Backends).
	FanOut int
	// Arrival selects the inter-arrival process.
	Arrival Arrival
	// Load is the aggregate offered load in requests per second across
	// all clients (> 0).
	Load int
	// WorkPerHop is simulated compute per backend shard, in nanoseconds.
	WorkPerHop int64
	// PayloadPad inflates request frames to model realistic sizes.
	PayloadPad int
}

// N returns the total process count the topology needs.
func (t Traffic) N() int { return t.Clients + t.Frontends + t.Backends }

// Validate panics on an unusable topology. Panicking (rather than an
// error) matches cluster.New: a bad spec is a programming error at the
// experiment layer, and MustRun would silently swallow an error return.
func (t Traffic) Validate() {
	if t.Clients < 1 || t.Frontends < 1 || t.Backends < 1 {
		panic(fmt.Sprintf("workload: traffic tiers %d/%d/%d all need at least one process",
			t.Clients, t.Frontends, t.Backends))
	}
	if t.FanOut < 1 || t.FanOut > t.Backends {
		panic(fmt.Sprintf("workload: traffic fan-out %d out of range [1,%d]", t.FanOut, t.Backends))
	}
	if t.Load <= 0 {
		panic(fmt.Sprintf("workload: traffic load %d req/s must be positive", t.Load))
	}
	if t.Arrival > ArrivalPareto {
		panic(fmt.Sprintf("workload: unknown arrival process %d", t.Arrival))
	}
}

// TierOf maps a process id to its tier.
func (t Traffic) TierOf(p ids.ProcID) Tier {
	switch {
	case int(p) < t.Clients:
		return TierClient
	case int(p) < t.Clients+t.Frontends:
		return TierFrontend
	default:
		return TierBackend
	}
}

// TierSizes returns the per-tier process counts in tier order — the shape
// the timeline collector's per-tier series are configured with.
func (t Traffic) TierSizes() []int { return []int{t.Clients, t.Frontends, t.Backends} }

// MeanGap returns the per-client mean inter-arrival gap implied by the
// aggregate load, in nanoseconds of virtual time.
func (t Traffic) MeanGap() int64 {
	return int64(t.Clients) * int64(time.Second) / int64(t.Load)
}
