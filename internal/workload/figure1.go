package workload

import (
	"fmt"

	"rollrec/internal/ids"
	"rollrec/internal/wire"
)

// Figure1 enacts the example execution of the paper's Figure 1 with three
// processes p, q, r (ids 0, 1, 2):
//
//	q sends m to p;  p, on delivering m, sends m' to q;
//	q, on delivering m', sends m'' to r.
//
// So m is an antecedent of m', and m' of m”. With f = 2 the receipt order
// of m must reach three hosts — exactly p, q, r along the causal path. The
// figure1 example and tests crash p after it sent m' and verify that p
// recovers m's receipt order from its peers' volatile logs (paper §2.1),
// and that the recovered execution regenerates m' and m” identically.
//
// Rounds repeats the m → m' → m” chain so the computation stays active
// long enough for mid-chain crashes.
type Figure1 struct {
	self   ids.ProcID
	n      int
	Rounds int

	// Checkpointable state.
	acc   uint64
	seen  uint64 // messages delivered
	round uint64
}

// NewFigure1 returns the factory; the cluster must have exactly 3
// processes.
func NewFigure1(rounds int) Factory {
	return func(self ids.ProcID, n int) App {
		if n != 3 {
			panic(fmt.Sprintf("workload: Figure1 needs n=3, got %d", n))
		}
		return &Figure1{self: self, n: n, Rounds: rounds}
	}
}

func (f *Figure1) msg(tag string, round uint64, acc uint64) []byte {
	w := wire.NewWriter(32)
	w.Bytes([]byte(tag))
	w.U64(round)
	w.U64(acc)
	return w.Frame()
}

// Start: q launches the first chain.
func (f *Figure1) Start(ctx Ctx) {
	if f.self == 1 && f.Rounds > 0 {
		ctx.Send(0, f.msg("m", 1, Mix64(0, 1)))
	}
}

// Handle advances the m → m' → m” chain.
func (f *Figure1) Handle(ctx Ctx, from ids.ProcID, payload []byte) {
	r := wire.NewReader(payload)
	tag := string(r.Bytes())
	round := r.U64()
	acc := r.U64()
	if r.Err() != nil {
		ctx.Logf("figure1: bad payload: %v", r.Err())
		return
	}
	f.seen++
	f.round = round
	f.acc = Mix64(acc, uint64(f.self)<<8|uint64(len(tag)))
	switch {
	case f.self == 0 && tag == "m":
		ctx.Send(1, f.msg("m'", round, f.acc))
	case f.self == 1 && tag == "m'":
		ctx.Send(2, f.msg("m''", round, f.acc))
	case f.self == 2 && tag == "m''":
		if round < uint64(f.Rounds) {
			// r hands the chain back to q for the next round (keeps the
			// figure's communication structure cycling).
			ctx.Send(1, f.msg("restart", round+1, f.acc))
		}
	case f.self == 1 && tag == "restart":
		ctx.Send(0, f.msg("m", round, f.acc))
	}
}

// Snapshot serializes the state.
func (f *Figure1) Snapshot() []byte {
	w := wire.NewWriter(24)
	w.U64(f.acc)
	w.U64(f.seen)
	w.U64(f.round)
	return w.Frame()
}

// Restore replaces the state.
func (f *Figure1) Restore(data []byte) error {
	r := wire.NewReader(data)
	f.acc = r.U64()
	f.seen = r.U64()
	f.round = r.U64()
	if !r.Done() {
		return fmt.Errorf("%w: figure1", errBadSnapshot)
	}
	return nil
}

// Digest fingerprints the state.
func (f *Figure1) Digest() uint64 { return Mix64(Mix64(f.acc, f.seen), f.round) }

// Done: r has seen the final chain.
func (f *Figure1) Done() bool {
	if f.self == 2 {
		return f.round >= uint64(f.Rounds) && f.seen > 0
	}
	return f.round >= uint64(f.Rounds) && f.seen > 0
}

// Seen exposes the delivery count for assertions.
func (f *Figure1) Seen() uint64 { return f.seen }
