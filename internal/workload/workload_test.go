package workload

import (
	"testing"
	"testing/quick"

	"rollrec/internal/ids"
)

// fakeCtx records sends for determinism checks.
type fakeCtx struct {
	self  ids.ProcID
	n     int
	sends []sendRec
	work  int64
}

type sendRec struct {
	to      ids.ProcID
	payload string
}

func (f *fakeCtx) Self() ids.ProcID { return f.self }
func (f *fakeCtx) N() int           { return f.n }
func (f *fakeCtx) Send(to ids.ProcID, payload []byte) {
	f.sends = append(f.sends, sendRec{to, string(payload)})
}
func (f *fakeCtx) Work(d int64)        { f.work += d }
func (f *fakeCtx) Output([]byte)       {}
func (f *fakeCtx) Logf(string, ...any) {}

func TestPRNGDeterministicAndSerializable(t *testing.T) {
	a := NewPRNG(7)
	b := NewPRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give same stream")
		}
	}
	mid := a.State()
	c := NewPRNG(1)
	c.SetState(mid)
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			t.Fatal("restored state must continue the stream")
		}
	}
}

func TestPRNGZeroSeed(t *testing.T) {
	p := NewPRNG(0)
	if p.Next() == 0 && p.Next() == 0 {
		t.Fatal("zero seed must not produce a degenerate stream")
	}
}

func TestPRNGIntnRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		p := NewPRNG(seed)
		for i := 0; i < 20; i++ {
			v := p.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenRingCirculation(t *testing.T) {
	const n, hops = 4, 12
	apps := make([]App, n)
	ctxs := make([]*fakeCtx, n)
	factory := NewTokenRing(hops, 0, 0)
	for i := range apps {
		apps[i] = factory(ids.ProcID(i), n)
		ctxs[i] = &fakeCtx{self: ids.ProcID(i), n: n}
	}
	apps[0].Start(ctxs[0])
	// Pump messages until quiescent.
	type inflight struct {
		from ids.ProcID
		rec  sendRec
	}
	var queue []inflight
	drain := func(i int) {
		for _, s := range ctxs[i].sends {
			queue = append(queue, inflight{ids.ProcID(i), s})
		}
		ctxs[i].sends = nil
	}
	drain(0)
	deliveries := 0
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		to := int(m.rec.to)
		apps[to].Handle(ctxs[to], m.from, []byte(m.rec.payload))
		deliveries++
		drain(to)
	}
	if deliveries != hops {
		t.Fatalf("deliveries = %d, want %d", deliveries, hops)
	}
	for i, a := range apps {
		if !a.Done() {
			t.Errorf("process %d not Done after final hop", i)
		}
	}
	// All processes saw hops; total visits == hops.
	var visits uint64
	for _, a := range apps {
		visits += a.(*TokenRing).Visits()
	}
	if visits != hops {
		t.Fatalf("total visits = %d, want %d", visits, hops)
	}
}

// replaySends runs an app through a delivery sequence and returns the sends
// plus the final digest.
func replaySends(app App, deliveries []sendRec, start bool) ([]sendRec, uint64) {
	ctx := &fakeCtx{self: 1, n: 4}
	if start {
		app.Start(ctx)
	}
	for _, d := range deliveries {
		app.Handle(ctx, d.to /* reuse field as "from" */, []byte(d.payload))
	}
	return ctx.sends, app.Digest()
}

func TestAppsDeterministicReplay(t *testing.T) {
	factories := map[string]Factory{
		"ring":   NewTokenRing(100, 8, 0),
		"gossip": NewRandomPeer(2, 5, 8, 0),
		"cs":     NewClientServer(5, 8, 0),
	}
	mkDeliveries := func(f Factory) []sendRec {
		// Use another instance's outputs as plausible inputs.
		src := f(0, 4)
		ctx := &fakeCtx{self: 0, n: 4}
		src.Start(ctx)
		var ds []sendRec
		for i, s := range ctx.sends {
			ds = append(ds, sendRec{to: ids.ProcID(i % 4), payload: s.payload})
		}
		return ds
	}
	for name, f := range factories {
		ds := mkDeliveries(f)
		s1, d1 := replaySends(f(1, 4), ds, true)
		s2, d2 := replaySends(f(1, 4), ds, true)
		if d1 != d2 || len(s1) != len(s2) {
			t.Fatalf("%s: identical runs diverged", name)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("%s: send %d differs", name, i)
			}
		}
	}
}

func TestSnapshotRestoreMidStream(t *testing.T) {
	factories := map[string]Factory{
		"ring":   NewTokenRing(100, 4, 0),
		"gossip": NewRandomPeer(2, 5, 4, 0),
		"cs":     NewClientServer(5, 4, 0),
	}
	for name, f := range factories {
		// Generate a plausible delivery stream from sibling instances (both
		// a process-0 and a process-1 start, since some workloads only seed
		// from one role).
		var stream []string
		for _, self := range []ids.ProcID{0, 1} {
			src := f(self, 4)
			srcCtx := &fakeCtx{self: self, n: 4}
			src.Start(srcCtx)
			for _, s := range srcCtx.sends {
				stream = append(stream, s.payload)
			}
		}
		if len(stream) == 0 {
			t.Fatalf("%s: no seed messages generated", name)
		}
		for len(stream) < 6 {
			stream = append(stream, stream[0])
		}

		// Run A straight through.
		a := f(2, 4)
		actx := &fakeCtx{self: 2, n: 4}
		a.Start(actx)
		for _, p := range stream {
			a.Handle(actx, 0, []byte(p))
		}

		// Run B with a snapshot/restore in the middle.
		b := f(2, 4)
		bctx := &fakeCtx{self: 2, n: 4}
		b.Start(bctx)
		for _, p := range stream[:3] {
			b.Handle(bctx, 0, []byte(p))
		}
		snap := b.Snapshot()
		b2 := f(2, 4)
		if err := b2.Restore(snap); err != nil {
			t.Fatalf("%s: Restore: %v", name, err)
		}
		for _, p := range stream[3:] {
			b2.Handle(bctx, 0, []byte(p))
		}
		if a.Digest() != b2.Digest() {
			t.Fatalf("%s: snapshot/restore diverged from straight run", name)
		}
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	apps := []App{
		NewTokenRing(10, 0, 0)(0, 4),
		NewRandomPeer(1, 1, 0, 0)(0, 4),
		NewClientServer(1, 0, 0)(0, 4),
	}
	for i, a := range apps {
		if err := a.Restore([]byte{1, 2, 3}); err == nil {
			t.Errorf("app %d accepted a garbage snapshot", i)
		}
	}
}

func TestRandomPeerNeverSendsToSelf(t *testing.T) {
	f := NewRandomPeer(10, 10, 0, 0)
	app := f(2, 5).(*RandomPeer)
	for i := 0; i < 1000; i++ {
		if app.pick() == 2 {
			t.Fatal("pick must never choose self")
		}
	}
}

func TestClientServerCompletion(t *testing.T) {
	const n, k = 3, 4
	apps := make([]App, n)
	ctxs := make([]*fakeCtx, n)
	f := NewClientServer(k, 0, 0)
	for i := range apps {
		apps[i] = f(ids.ProcID(i), n)
		ctxs[i] = &fakeCtx{self: ids.ProcID(i), n: n}
	}
	type msg struct {
		from, to ids.ProcID
		payload  string
	}
	var q []msg
	pump := func(i int) {
		for _, s := range ctxs[i].sends {
			q = append(q, msg{ids.ProcID(i), s.to, s.payload})
		}
		ctxs[i].sends = nil
	}
	for i := range apps {
		apps[i].Start(ctxs[i])
		pump(i)
	}
	for len(q) > 0 {
		m := q[0]
		q = q[1:]
		apps[m.to].Handle(ctxs[m.to], m.from, []byte(m.payload))
		pump(int(m.to))
	}
	for i, a := range apps {
		if !a.Done() {
			t.Errorf("process %d not Done", i)
		}
	}
	if got := apps[0].(*ClientServer).Applied(); got != k*(n-1) {
		t.Fatalf("server applied %d, want %d", got, k*(n-1))
	}
}

func TestWorkIsCharged(t *testing.T) {
	f := NewTokenRing(5, 0, 123)
	app := f(1, 3)
	ctx := &fakeCtx{self: 1, n: 3}
	payload := NewTokenRing(5, 0, 0)(0, 3).(*TokenRing).token(1, 0)
	app.Handle(ctx, 0, payload)
	if ctx.work != 123 {
		t.Fatalf("work charged = %d, want 123", ctx.work)
	}
}
