package cluster

import (
	"testing"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/recovery"
	"rollrec/internal/workload"
)

// fastHW shrinks all timeouts so integration tests cover many virtual
// seconds cheaply while preserving the 1995 profile's structure.
func fastHW() node.Hardware {
	hw := node.Profile1995()
	hw.WatchdogDetect = 300 * time.Millisecond
	hw.RestartDelay = 50 * time.Millisecond
	hw.SuspectAfter = 400 * time.Millisecond
	hw.HeartbeatEvery = 50 * time.Millisecond
	hw.Disk.Latency = 2 * time.Millisecond
	hw.Disk.ReadBandwidth = 50e6
	hw.Disk.WriteBandwidth = 50e6
	return hw
}

func ringConfig(style recovery.Style, seed int64) Config {
	return Config{
		N:               4,
		F:               2,
		Seed:            seed,
		HW:              fastHW(),
		Style:           style,
		App:             workload.NewTokenRing(400, 64, int64(100*time.Microsecond)),
		CheckpointEvery: 500 * time.Millisecond,
		StatePad:        4 << 10,
	}
}

func mustCheck(t *testing.T, c *Cluster) {
	t.Helper()
	for _, err := range c.Check() {
		t.Error(err)
	}
}

func TestFailureFreeRing(t *testing.T) {
	c := New(ringConfig(recovery.NonBlocking, 1))
	if !c.RunUntilDone(time.Second, 60*time.Second) {
		t.Fatal("ring did not complete")
	}
	mustCheck(t, c)
	// Every process delivered roughly maxHops/n tokens.
	var total int64
	for i := 0; i < 4; i++ {
		total += c.Metrics(ids.ProcID(i)).Delivered
	}
	if total != 400 {
		t.Fatalf("total deliveries = %d, want 400", total)
	}
}

// goldenDigest runs the failure-free execution and returns the final ring
// accumulator, which any correct failure run must reproduce exactly.
func goldenDigest(t *testing.T, seed int64) []uint64 {
	t.Helper()
	c := New(ringConfig(recovery.NonBlocking, seed))
	if !c.RunUntilDone(time.Second, 60*time.Second) {
		t.Fatal("golden run did not complete")
	}
	return c.Digests()
}

func TestDeterminism(t *testing.T) {
	a := goldenDigest(t, 7)
	b := goldenDigest(t, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at process %d", i)
		}
	}
}

func TestSingleFailureRecovery(t *testing.T) {
	for _, style := range []recovery.Style{recovery.NonBlocking, recovery.Blocking} {
		t.Run(style.String(), func(t *testing.T) {
			golden := goldenDigest(t, 11)
			c := New(ringConfig(style, 11))
			c.Crash(2*time.Second, 1)
			if !c.RunUntilDone(time.Second, 120*time.Second) {
				t.Fatal("ring did not complete after crash")
			}
			mustCheck(t, c)
			// The ring is one causal chain: the recovered execution must
			// reach the identical final state.
			got := c.Digests()
			for i := range golden {
				if got[i] != golden[i] {
					t.Errorf("process %d digest %#x, want golden %#x", i, got[i], golden[i])
				}
			}
			tr := c.Metrics(1).CurrentRecovery()
			if tr == nil || tr.Total() == 0 {
				t.Fatal("no completed recovery trace")
			}
		})
	}
}

// TestLargeClusterBeyondOldCap runs a 96-process cluster — beyond the 64
// the kernel was capped at before the flat-heap scheduler — through a
// crash and recovery, and checks the recovered execution reproduces the
// failure-free digests. Holder bitsets, the wire codec, and the
// determinant tables are all width-agnostic; this pins that no hidden
// 64-bit assumption crept back in.
func TestLargeClusterBeyondOldCap(t *testing.T) {
	const n = 96
	large := func(seed int64) Config {
		cfg := ringConfig(recovery.NonBlocking, seed)
		cfg.N = n
		cfg.F = 1
		// The fastHW 1995-style CPU cost (1 ms per delivery) cannot sustain
		// full-mesh heartbeats at n=96 — 95 heartbeats per period would cost
		// more CPU than the period — so the large cluster runs on modern
		// per-message costs and a slower heartbeat.
		cfg.HW.CPUMsgCost = 5 * time.Microsecond
		cfg.HW.CPUByteCost = 0
		cfg.HW.HeartbeatEvery = 250 * time.Millisecond
		cfg.HW.SuspectAfter = time.Second
		return cfg
	}
	golden := New(large(5))
	if !golden.RunUntilDone(time.Second, 120*time.Second) {
		t.Fatal("failure-free large ring did not complete")
	}
	mustCheck(t, golden)

	c := New(large(5))
	c.Crash(2*time.Second, 17)
	if !c.RunUntilDone(time.Second, 240*time.Second) {
		t.Fatal("large ring did not complete after crash")
	}
	mustCheck(t, c)
	want, got := golden.Digests(), c.Digests()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("process %d digest %#x, want golden %#x", i, got[i], want[i])
		}
	}
	if tr := c.Metrics(17).CurrentRecovery(); tr == nil || tr.Total() == 0 {
		t.Fatal("no completed recovery trace for the victim")
	}
}

func TestBlockingStyleBlocksLives(t *testing.T) {
	c := New(ringConfig(recovery.Blocking, 13))
	c.Crash(2*time.Second, 1)
	if !c.RunUntilDone(time.Second, 120*time.Second) {
		t.Fatal("did not complete")
	}
	if errs := c.Check(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	var blocked time.Duration
	for i := 0; i < 4; i++ {
		if ids.ProcID(i) == 1 {
			continue
		}
		blocked += c.Metrics(ids.ProcID(i)).BlockedTotal()
	}
	if blocked == 0 {
		t.Fatal("blocking style produced zero live blocked time")
	}
	// And the nonblocking run of the same schedule blocks nobody (checked
	// inside Check for NonBlocking, asserted explicitly here).
	c2 := New(ringConfig(recovery.NonBlocking, 13))
	c2.Crash(2*time.Second, 1)
	if !c2.RunUntilDone(time.Second, 120*time.Second) {
		t.Fatal("nonblocking run did not complete")
	}
	mustCheck(t, c2)
}
