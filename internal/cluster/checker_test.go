package cluster

import (
	"strings"
	"testing"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/recovery"
	"rollrec/internal/workload"
)

// These tests verify the invariant CHECKER itself: a checker that cannot
// detect violations proves nothing about the protocol.

func quietCluster(t *testing.T) *Cluster {
	t.Helper()
	c := New(Config{
		N:               3,
		F:               2,
		Seed:            2,
		HW:              fastHW(),
		Style:           recovery.NonBlocking,
		App:             workload.NewTokenRing(10, 0, 0),
		CheckpointEvery: time.Second,
	})
	c.Run(2 * time.Second)
	if errs := c.Check(); len(errs) != 0 {
		t.Fatalf("baseline cluster must be clean: %v", errs)
	}
	return c
}

func hasViolation(errs []error, substr string) bool {
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return true
		}
	}
	return false
}

func TestCheckerDetectsOrphan(t *testing.T) {
	c := quietCluster(t)
	// Fabricate a delivery whose send never happened on any timeline.
	c.deliveries[2][99] = deliverInfo{msg: ids.MsgID{Sender: 0, SSN: 9999}, hash: 42}
	if !hasViolation(c.Check(), "orphan") {
		t.Fatal("checker missed a fabricated orphan")
	}
}

func TestCheckerDetectsContentMismatch(t *testing.T) {
	c := quietCluster(t)
	// Take an existing delivery and corrupt its recorded hash.
	for rsn, d := range c.deliveries[1] {
		d.hash ^= 0xdead
		c.deliveries[1][rsn] = d
		break
	}
	if !hasViolation(c.Check(), "orphan") {
		t.Fatal("checker missed a content mismatch")
	}
}

func TestCheckerDetectsDoubleDelivery(t *testing.T) {
	c := quietCluster(t)
	// Simulate the protocol delivering the same message twice at two
	// receive positions within one timeline.
	id := ids.MsgID{Sender: 0, SSN: 1}
	c.onDeliver(2, id, 0, 500, 7)
	c.onDeliver(2, id, 0, 501, 7)
	if !hasViolation(c.Check(), "exactly-once") {
		t.Fatal("checker missed a double delivery")
	}
}

func TestCheckerDetectsReplayInfidelity(t *testing.T) {
	c := quietCluster(t)
	id := ids.MsgID{Sender: 0, SSN: 1}
	c.onDeliver(2, id, 0, 500, 7)
	c.onDeliver(2, id, 0, 500, 8) // same rsn, different content
	if !hasViolation(c.Check(), "replay fidelity") {
		t.Fatal("checker missed divergent replay content")
	}
}

func TestCheckerDetectsStuckRecovery(t *testing.T) {
	c := quietCluster(t)
	// Crash for real but stop the clock before the watchdog can even
	// detect it: the kernel's effective-crash counter (what liveness
	// compares against) outruns completed recoveries.
	c.Crash(2100*time.Millisecond, 0)
	c.Run(2200 * time.Millisecond)
	errs := c.Check()
	if !hasViolation(errs, "liveness") {
		t.Fatal("checker missed a stuck recovery")
	}
}

func TestTimelineTruncationOnRollback(t *testing.T) {
	c := quietCluster(t)
	// A process delivers msgs at rsn 500..502, crashes, and its recovered
	// timeline replaces rsn 500 with a different message: the checker must
	// discard the stale tail rather than flag it.
	c.onDeliver(2, ids.MsgID{Sender: 0, SSN: 101}, 0, 500, 1)
	c.onDeliver(2, ids.MsgID{Sender: 0, SSN: 102}, 0, 501, 2)
	c.onDeliver(2, ids.MsgID{Sender: 0, SSN: 103}, 0, 502, 3)
	// Matching sends so the orphan check is satisfied for the survivor.
	c.onSend(0, ids.MsgID{Sender: 0, SSN: 201}, 2, 9)
	c.onDeliver(2, ids.MsgID{Sender: 0, SSN: 201}, 0, 500, 9)
	if _, ok := c.deliveries[2][501]; ok {
		t.Fatal("stale tail beyond the reused rsn must be dropped")
	}
	if _, ok := c.deliveries[2][502]; ok {
		t.Fatal("stale tail beyond the reused rsn must be dropped")
	}
}

func TestOnLiveTruncatesTimelines(t *testing.T) {
	c := quietCluster(t)
	c.onSend(1, ids.MsgID{Sender: 1, SSN: 900}, 2, 1)
	c.onDeliver(1, ids.MsgID{Sender: 0, SSN: 900}, 0, 800, 1)
	c.onLive(1, 2, 100, 100) // recovery frontier far below the fake events
	if _, ok := c.sends[1][900]; ok {
		t.Fatal("sends beyond the recovery frontier must be dropped")
	}
	if _, ok := c.deliveries[1][800]; ok {
		t.Fatal("deliveries beyond the recovery frontier must be dropped")
	}
}
