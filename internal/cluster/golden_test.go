package cluster

import (
	"testing"
	"time"

	"rollrec/internal/failure"
	"rollrec/internal/node"
	"rollrec/internal/recovery"
	"rollrec/internal/trace"
	"rollrec/internal/workload"
)

// goldenTraceHash pins the full event schedule of the seeded two-failure
// reference run below. It is an FNV-1a fold over every structured trace
// event (virtual time, arrival order, process, event name, tags) the run
// emits — sends, receives, storage accesses, crash/restart lifecycle, and
// recovery-phase spans — so ANY reordering, insertion, or removal of a
// scheduled event changes it. Scheduler optimizations must keep this hash
// fixed: the kernel's event *sequence* is part of the repo's compatibility
// contract (DESIGN.md §2, §9).
//
// Regenerate (only after an intended behavior change) with:
//
//	go test ./internal/cluster -run TestGoldenTraceHash -v
//
// and copy the printed hash here, then re-seed BENCH_seed.json.
const goldenTraceHash = 0x02bdbeb6cbabb88e

// hashTracer folds every trace callback into an FNV-1a accumulator. Each
// record mixes a per-callback tag, the global arrival index (the "seq" of
// the schedule), and the callback's full argument list, so the hash is a
// fingerprint of the entire deterministic event sequence.
type hashTracer struct {
	h    uint64
	seq  uint64
	refs uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newHashTracer() *hashTracer { return &hashTracer{h: fnvOffset} }

func (t *hashTracer) mix(vals ...uint64) {
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			t.h ^= v & 0xff
			t.h *= fnvPrime
			v >>= 8
		}
	}
}

func (t *hashTracer) mixString(s string) {
	for i := 0; i < len(s); i++ {
		t.h ^= uint64(s[i])
		t.h *= fnvPrime
	}
}

func (t *hashTracer) record(kind uint64, ts int64, proc int32, name string, tag trace.Tag) {
	t.seq++
	t.mix(kind, t.seq, uint64(ts), uint64(uint32(proc)))
	t.mixString(name)
	t.mix(uint64(tag.Kind), uint64(tag.Inc), uint64(tag.Arg))
}

func (t *hashTracer) Enabled() bool { return true }

func (t *hashTracer) Instant(ts int64, proc int32, name string, tag trace.Tag) {
	t.record(1, ts, proc, name, tag)
}

func (t *hashTracer) Begin(ts int64, proc int32, name string, tag trace.Tag) trace.SpanRef {
	t.record(2, ts, proc, name, tag)
	t.refs++
	return trace.SpanRef(t.refs)
}

func (t *hashTracer) End(ref trace.SpanRef, ts int64) {
	t.seq++
	t.mix(3, t.seq, uint64(ref), uint64(ts))
}

func (t *hashTracer) Span(ts, dur int64, proc int32, name string, tag trace.Tag) {
	t.record(4, ts, proc, name, tag)
	t.mix(uint64(dur))
}

// The pinned scenario: four processes on 1995 hardware, an overlapping
// two-failure schedule (the second crash lands mid-recovery of the first),
// run to quiescence. Config, plan, and horizon are factored out so the
// timeline tests can rerun the identical scenario with a sampler attached.
const goldenHorizon = 18 * time.Second

func goldenConfig(tr trace.Tracer) Config {
	return Config{
		N:               4,
		F:               2,
		Seed:            1,
		HW:              node.Profile1995(),
		Style:           recovery.NonBlocking,
		App:             workload.NewRandomPeer(1, 1_000_000, 256, int64(time.Millisecond)),
		CheckpointEvery: 4 * time.Second,
		StatePad:        1 << 20,
		Tracer:          tr,
	}
}

func goldenPlan() failure.Plan {
	return failure.Plan{
		{At: 6 * time.Second, Proc: 1},
		{At: 8 * time.Second, Proc: 2},
	}
}

func goldenRun(tr trace.Tracer) *Cluster {
	c := New(goldenConfig(tr))
	c.ApplyPlan(goldenPlan())
	c.Run(goldenHorizon)
	return c
}

// TestGoldenTraceHash is the determinism regression gate for the simulator
// scheduler: the hashed event trace of the seeded two-failure run must
// match the committed golden value. CI runs it under -cpu 1,4, proving the
// schedule is independent of GOMAXPROCS.
func TestGoldenTraceHash(t *testing.T) {
	tr := newHashTracer()
	c := goldenRun(tr)
	if errs := c.Check(); len(errs) > 0 {
		t.Fatalf("golden run inconsistent: %v", errs)
	}
	t.Logf("trace hash = %#x over %d trace events", tr.h, tr.seq)
	if tr.h != goldenTraceHash {
		t.Fatalf("event-trace hash = %#x over %d trace events, want %#x\n"+
			"the kernel's event sequence changed; if intended, update goldenTraceHash "+
			"and re-seed BENCH_seed.json (Makefile bench-seed)", tr.h, tr.seq, goldenTraceHash)
	}
}

// TestGoldenTraceHashRepeatable guards the guard: two runs in one process
// must hash identically, so a failure of TestGoldenTraceHash can only mean
// the schedule changed, never that the hash itself is unstable.
func TestGoldenTraceHashRepeatable(t *testing.T) {
	a, b := newHashTracer(), newHashTracer()
	goldenRun(a)
	goldenRun(b)
	if a.h != b.h || a.seq != b.seq {
		t.Fatalf("same-process runs diverged: %#x/%d vs %#x/%d", a.h, a.seq, b.h, b.seq)
	}
}
