package cluster

import (
	"fmt"
	"testing"

	"rollrec/internal/trace"
)

// shardedGoldenTraceHash pins the merged per-process event lanes of the
// seeded two-failure reference run on the sharded conservative-window
// scheduler. It differs from goldenTraceHash by construction — sharded runs
// use the FIFO defer queue, and the fold is per-process-lane rather than
// global arrival order — but it must be byte-identical for EVERY shard
// count and GOMAXPROCS value: the partitioning may only change wall-clock
// time, never any process's execution (DESIGN §2). CI runs this under
// -cpu 1,4 with shard counts {1,4}.
//
// Regenerate (only after an intended behavior change) with:
//
//	go test ./internal/cluster -run TestShardedGoldenTraceHash -v
const shardedGoldenTraceHash uint64 = 0x8d3c59124d2c9b9f

// laneTracer adapts hashTracer to sharded runs: one lane per process,
// merged canonically at the end. Every trace emission in the tree is
// attributed to the process whose execution produced it, so each lane has
// exactly one writer at any instant (its owner's shard goroutine within a
// window, the coordinator between windows) and the window barrier provides
// the cross-window happens-before — no locking needed. A global
// arrival-order fold would NOT be shard-count invariant; per-process order
// is.
type laneTracer struct {
	lanes []*hashTracer // index proc+1; lane 0 is the storage pseudo-process
}

func newLaneTracer(n int) *laneTracer {
	lt := &laneTracer{lanes: make([]*hashTracer, n+1)}
	for i := range lt.lanes {
		lt.lanes[i] = newHashTracer()
	}
	return lt
}

func (lt *laneTracer) lane(proc int32) *hashTracer { return lt.lanes[proc+1] }

func (lt *laneTracer) Enabled() bool { return true }

func (lt *laneTracer) Instant(ts int64, proc int32, name string, tag trace.Tag) {
	lt.lane(proc).Instant(ts, proc, name, tag)
}

// Begin tags the lane-local ref with the owning lane so End — the one
// callback with no proc argument — can route back to it.
func (lt *laneTracer) Begin(ts int64, proc int32, name string, tag trace.Tag) trace.SpanRef {
	ref := lt.lane(proc).Begin(ts, proc, name, tag)
	return trace.SpanRef(uint64(uint32(proc+1))<<32 | uint64(uint32(ref)))
}

func (lt *laneTracer) End(ref trace.SpanRef, ts int64) {
	proc := int32(uint32(uint64(ref)>>32)) - 1
	lt.lane(proc).End(trace.SpanRef(uint32(uint64(ref))), ts)
}

func (lt *laneTracer) Span(ts, dur int64, proc int32, name string, tag trace.Tag) {
	lt.lane(proc).Span(ts, dur, proc, name, tag)
}

// sum folds the lanes in ascending process order into one fingerprint and
// returns it with the total event count.
func (lt *laneTracer) sum() (uint64, uint64) {
	m := newHashTracer()
	var events uint64
	for _, l := range lt.lanes {
		m.mix(l.h, l.seq)
		events += l.seq
	}
	return m.h, events
}

func shardedGoldenRun(shards int) (*Cluster, *laneTracer) {
	lt := newLaneTracer(4)
	cfg := goldenConfig(lt)
	cfg.Shards = shards
	c := New(cfg)
	c.ApplyPlan(goldenPlan())
	c.Run(goldenHorizon)
	return c, lt
}

// TestShardedGoldenTraceHash is the determinism gate for the sharded
// scheduler: the same seeded two-failure scenario as TestGoldenTraceHash,
// run with 1 and 4 shards, must produce the committed lane fingerprint both
// times — proving the event schedule is a function of (seed, scenario)
// alone, independent of the partitioning and of GOMAXPROCS.
func TestShardedGoldenTraceHash(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c, lt := shardedGoldenRun(shards)
			if errs := c.Check(); len(errs) > 0 {
				t.Fatalf("sharded golden run inconsistent: %v", errs)
			}
			h, n := lt.sum()
			t.Logf("lane fingerprint = %#x over %d trace events", h, n)
			if h != shardedGoldenTraceHash {
				t.Fatalf("lane fingerprint = %#x over %d trace events, want %#x\n"+
					"the sharded event schedule changed; if intended, update shardedGoldenTraceHash",
					h, n, shardedGoldenTraceHash)
			}
		})
	}
}
