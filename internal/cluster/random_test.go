package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/recovery"
	"rollrec/internal/workload"
)

// TestFigure1Scenario reproduces the paper's running example: p (process 0)
// crashes after sending m'; its recovery must find m's receipt order in the
// volatile logs of q or r and replay to a state consistent with both.
func TestFigure1Scenario(t *testing.T) {
	mk := func(style recovery.Style) Config {
		return Config{
			N:               3,
			F:               2,
			Seed:            5,
			HW:              fastHW(),
			Style:           style,
			App:             workload.NewFigure1(800),
			CheckpointEvery: 400 * time.Millisecond,
			StatePad:        2 << 10,
		}
	}
	golden := New(mk(recovery.NonBlocking))
	settle(t, golden, 120*time.Second)

	for _, style := range []recovery.Style{recovery.NonBlocking, recovery.Blocking} {
		t.Run(style.String(), func(t *testing.T) {
			c := New(mk(style))
			c.Crash(700*time.Millisecond, 0) // p, mid-chain
			settle(t, c, 240*time.Second)
			mustCheck(t, c)
			g, got := golden.Digests(), c.Digests()
			for i := range g {
				if g[i] != got[i] {
					t.Errorf("process %d digest %#x, want golden %#x", i, got[i], g[i])
				}
			}
		})
	}
}

// TestRandomCrashSchedules is the randomized property test: any crash
// schedule with at most f overlapping failures must preserve every
// invariant, for every style and the f = n instance.
func TestRandomCrashSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	styles := []recovery.Style{recovery.NonBlocking, recovery.Blocking, recovery.Manetho}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(4) // 3..6 processes
			f := 2
			if rng.Intn(4) == 0 {
				f = n // f = n instance
			}
			style := styles[rng.Intn(len(styles))]

			// Random schedule: 1..f crashes (when f=n, up to 2 to keep the
			// runtime modest), spread across the active window.
			maxCrashes := f
			if maxCrashes > 2 {
				maxCrashes = 2
			}
			var plan failure.Plan
			used := map[ids.ProcID]bool{}
			for i, k := 0, 1+rng.Intn(maxCrashes); i < k; i++ {
				v := ids.ProcID(rng.Intn(n))
				if used[v] {
					continue
				}
				used[v] = true
				at := time.Duration(500+rng.Intn(2500)) * time.Millisecond
				plan = append(plan, failure.Crash{At: at, Proc: v})
			}

			cfg := Config{
				N:               n,
				F:               f,
				Seed:            seed * 101,
				HW:              fastHW(),
				Style:           style,
				App:             workload.NewRandomPeer(2, 600, 32, int64(time.Millisecond)),
				CheckpointEvery: 400 * time.Millisecond,
				StatePad:        2 << 10,
			}
			c := New(cfg)
			c.ApplyPlan(plan)
			c.Run(30 * time.Second)
			t.Logf("n=%d f=%d style=%v crashes=%d", n, f, style, len(plan))
			for i := 0; i < n; i++ {
				if p := c.Proc(ids.ProcID(i)); p == nil || p.Mode().String() != "live" {
					c.Run(60 * time.Second) // allow stragglers
					break
				}
			}
			mustCheck(t, c)
		})
	}
}

// TestSequentialCrashesBeyondF checks that more than f crashes are fine as
// long as they never overlap: recovery data re-replicates determinants to
// the recovered process, so the budget is about concurrency, not totals.
func TestSequentialCrashesBeyondF(t *testing.T) {
	golden := New(slowRingConfig(recovery.NonBlocking, 111, 4, 1))
	settle(t, golden, 120*time.Second)

	c := New(slowRingConfig(recovery.NonBlocking, 111, 4, 1))
	// f = 1, three crashes, each fully recovered (fastHW recovery ≈ 0.4 s)
	// before the next.
	c.Crash(1000*time.Millisecond, 0)
	c.Crash(2500*time.Millisecond, 2)
	c.Crash(4000*time.Millisecond, 3)
	settle(t, c, 240*time.Second)
	mustCheck(t, c)
	g, got := golden.Digests(), c.Digests()
	for i := range g {
		if g[i] != got[i] {
			t.Errorf("process %d digest %#x, want golden %#x", i, got[i], g[i])
		}
	}
}

// TestRepeatedCrashSameProcess crashes the same process twice; the second
// recovery must produce incarnation 3 and still converge.
func TestRepeatedCrashSameProcess(t *testing.T) {
	golden := New(slowRingConfig(recovery.NonBlocking, 121, 4, 2))
	settle(t, golden, 120*time.Second)

	c := New(slowRingConfig(recovery.NonBlocking, 121, 4, 2))
	c.Crash(1000*time.Millisecond, 1)
	c.Crash(3000*time.Millisecond, 1)
	settle(t, c, 240*time.Second)
	mustCheck(t, c)
	if p := c.Proc(1); p.Incarnation() != 3 {
		t.Errorf("incarnation = %d, want 3", p.Incarnation())
	}
	g, got := golden.Digests(), c.Digests()
	for i := range g {
		if g[i] != got[i] {
			t.Errorf("process %d digest %#x, want golden %#x", i, got[i], g[i])
		}
	}
}

// TestCrashDuringReplay re-crashes a process while it is replaying.
func TestCrashDuringReplay(t *testing.T) {
	golden := New(slowRingConfig(recovery.NonBlocking, 131, 4, 2))
	settle(t, golden, 120*time.Second)

	c := New(slowRingConfig(recovery.NonBlocking, 131, 4, 2))
	c.Crash(1000*time.Millisecond, 1)
	// fastHW: restart at ~1.35s, replay shortly after; crash again right in
	// that window.
	c.Crash(1400*time.Millisecond, 1)
	settle(t, c, 240*time.Second)
	mustCheck(t, c)
	g, got := golden.Digests(), c.Digests()
	for i := range g {
		if g[i] != got[i] {
			t.Errorf("process %d digest %#x, want golden %#x", i, got[i], g[i])
		}
	}
}
