// Package cluster wires n FBL protocol processes, their workload, a crash
// plan, and a runtime together, and checks the cross-process correctness
// invariants the paper's proofs promise (§4): safety (no orphans),
// liveness (every recovery completes), and exactly-once delivery.
package cluster

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"rollrec/internal/failure"
	"rollrec/internal/fbl"
	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/node"
	"rollrec/internal/output"
	"rollrec/internal/recovery"
	"rollrec/internal/sim"
	"rollrec/internal/timeline"
	"rollrec/internal/trace"
	"rollrec/internal/workload"
)

// Config describes a simulated cluster.
type Config struct {
	// N is the number of application processes (2..MaxProcs).
	N int
	// F is the failure budget; F >= N selects the f = n instance.
	F int
	// Seed drives all randomness.
	Seed int64
	// HW is the hardware cost model (defaults to Profile1995).
	HW node.Hardware
	// Style selects the recovery algorithm variant.
	Style recovery.Style
	// App builds each process's application.
	App workload.Factory
	// CheckpointEvery is the periodic checkpoint interval.
	CheckpointEvery time.Duration
	// StatePad models the process image size (bytes added per checkpoint).
	StatePad int
	// Trace, if non-nil, receives event trace lines.
	Trace io.Writer
	// Tracer, if non-nil, records structured events and recovery-phase
	// spans (see internal/trace). Nil disables structured tracing. With
	// Shards > 0 the tracer is invoked from shard goroutines and must be
	// safe for concurrent use (merge lanes per process; see the sharded
	// golden-trace test for the canonical pattern).
	Tracer trace.Tracer
	// Shards > 0 runs the cluster on the sharded conservative-window
	// scheduler (DESIGN §2) with that many shards instead of the classic
	// single-heap kernel. Sharded runs also switch the kernel's busy-node
	// backlog to the FIFO defer queue, so their event interleaving differs
	// from the classic kernel's (each mode pins its own golden hash);
	// per-process behavior is byte-identical across shard counts. Mutually
	// exclusive with Trace, TrackOutputs, and AttachTimeline.
	Shards int
	// Fanout > 0 selects the ring-based dissemination protocol mode with
	// that fanout degree (see fbl.Params.Fanout); 0 is the paper's literal
	// all-peers broadcast.
	Fanout int
	// TrackOutputs wires the output-commit ledger (DESIGN §10) into every
	// process. Off by default: tracking also changes the piggyback policy
	// (holder knowledge travels one hop past the stability threshold), so
	// runs without externally-visible output keep byte-identical traces.
	TrackOutputs bool
}

// MaxProcs bounds the cluster size. Holder sets, the wire codec, and the
// determinant tables are all width-agnostic (multi-word bitsets, tagged
// adaptive holder encodings, length-prefixed arrays), so this is a sanity
// cap on sweep cost rather than a structural limit; the sharded
// conservative-window scheduler and the fanout protocol mode keep n=1024
// tractable (see DESIGN.md §2, §5).
const MaxProcs = 1024

// ValidateN checks a cluster size against MaxProcs. Every entry point that
// accepts an n — cluster construction and the bench sweep axes — funnels
// through this one helper so the limit and its message cannot drift apart.
func ValidateN(n int) error {
	if n < 2 || n > MaxProcs {
		return fmt.Errorf("cluster size n=%d out of range [2,%d]", n, MaxProcs)
	}
	return nil
}

type sendInfo struct {
	to   ids.ProcID
	hash uint64
}

type deliverInfo struct {
	msg  ids.MsgID
	hash uint64
}

// Cluster is a running simulation plus its invariant-checking observers.
type Cluster struct {
	cfg  Config
	K    sim.Runtime
	outs *output.Ledger

	// mu serializes the protocol hooks: under the sharded scheduler they
	// fire from per-shard goroutines, and violations/liveAgain span
	// processes. The per-process timelines are only ever touched by their
	// own process's hook, but one lock for all hook state is cheap and
	// removes the reasoning burden.
	mu sync.Mutex

	// Harness-side timelines (survive crashes; truncated on OnLive).
	sends      []map[ids.SSN]sendInfo    // per sender: ssn → send record
	deliveries []map[ids.RSN]deliverInfo // per receiver: rsn → delivery
	seen       []map[ids.MsgID]ids.RSN   // per receiver: fast duplicate check
	violations []string
	crashes    int
	liveAgain  int
}

// New builds and boots a cluster.
func New(cfg Config) *Cluster {
	if err := ValidateN(cfg.N); err != nil {
		panic("cluster: " + err.Error())
	}
	if cfg.F < 1 {
		cfg.F = 1
	}
	if cfg.HW == (node.Hardware{}) {
		cfg.HW = node.Profile1995()
	}
	c := &Cluster{
		cfg:        cfg,
		sends:      make([]map[ids.SSN]sendInfo, cfg.N),
		deliveries: make([]map[ids.RSN]deliverInfo, cfg.N),
		seen:       make([]map[ids.MsgID]ids.RSN, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		c.sends[i] = make(map[ids.SSN]sendInfo)
		c.deliveries[i] = make(map[ids.RSN]deliverInfo)
		c.seen[i] = make(map[ids.MsgID]ids.RSN)
	}

	simCfg := sim.Config{Seed: cfg.Seed, HW: cfg.HW, Trace: cfg.Trace, Tracer: cfg.Tracer}
	if cfg.Shards > 0 {
		if cfg.Trace != nil {
			panic("cluster: Trace (text event log) requires the classic kernel; shard goroutines would interleave lines")
		}
		if cfg.TrackOutputs {
			panic("cluster: TrackOutputs requires the classic kernel (Shards=0); the ledger is not shard-safe")
		}
		simCfg.FIFODefer = true
		c.K = sim.NewSharded(simCfg, cfg.Shards)
	} else {
		c.K = sim.New(simCfg)
	}
	c.outs = output.NewLedger(cfg.N)
	par := fbl.Params{
		N:               cfg.N,
		F:               cfg.F,
		Fanout:          cfg.Fanout,
		App:             workload.Seeded(cfg.App, cfg.Seed),
		Style:           cfg.Style,
		CheckpointEvery: cfg.CheckpointEvery,
		StatePad:        cfg.StatePad,
		HeartbeatEvery:  cfg.HW.HeartbeatEvery,
		SuspectAfter:    cfg.HW.SuspectAfter,
		Hooks: fbl.Hooks{
			OnSend:    c.onSend,
			OnDeliver: c.onDeliver,
			OnLive:    c.onLive,
		},
	}
	if cfg.TrackOutputs {
		c.outs.SetTracer(trace.OrNop(cfg.Tracer))
		c.outs.SetMetrics(c.K.Metrics)
		par.Outputs = c.outs
	}
	for i := 0; i < cfg.N; i++ {
		c.K.AddNode(ids.ProcID(i), fbl.New(par))
	}
	if cfg.F >= cfg.N {
		c.K.AddNode(ids.StorageProc, fbl.NewStorageNode(cfg.N, cfg.F))
	}
	c.K.Boot()
	return c
}

// onSend maintains the sender's current-timeline send history: a send at
// ssn k supersedes any previously recorded sends at ssn >= k (they belonged
// to a rolled-back execution).
func (c *Cluster) onSend(self ids.ProcID, id ids.MsgID, to ids.ProcID, hash uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tl := c.sends[self]
	if old, ok := tl[id.SSN]; ok && (old.to != to || old.hash != hash) {
		// Divergent regeneration: drop the stale tail beyond this point.
		for ssn := range tl {
			if ssn > id.SSN {
				delete(tl, ssn)
			}
		}
	}
	tl[id.SSN] = sendInfo{to: to, hash: hash}
}

// onDeliver maintains the receiver's current-timeline delivery history and
// checks exactly-once within a timeline.
func (c *Cluster) onDeliver(self ids.ProcID, id ids.MsgID, from ids.ProcID, rsn ids.RSN, hash uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tl := c.deliveries[self]
	if old, ok := tl[rsn]; ok && old.msg != id {
		// A new execution reused this rsn: everything beyond belonged to
		// the rolled-back timeline.
		for r := range tl {
			if r > rsn {
				sn := c.seen[self]
				delete(sn, tl[r].msg)
				delete(tl, r)
			}
		}
		delete(c.seen[self], old.msg)
	}
	if prevRSN, dup := c.seen[self][id]; dup && prevRSN != rsn {
		c.violations = append(c.violations, fmt.Sprintf(
			"exactly-once: %v delivered %v at rsn %d and again at rsn %d", self, id, prevRSN, rsn))
	}
	if old, ok := tl[rsn]; ok && old.msg == id && old.hash != hash {
		c.violations = append(c.violations, fmt.Sprintf(
			"replay fidelity: %v re-delivered %v at rsn %d with different content", self, id, rsn))
	}
	tl[rsn] = deliverInfo{msg: id, hash: hash}
	c.seen[self][id] = rsn
}

// onLive truncates the harness timelines to the surviving frontier: any
// send/delivery beyond the post-replay counters was rolled back for good.
func (c *Cluster) onLive(self ids.ProcID, inc ids.Incarnation, ssn ids.SSN, rsn ids.RSN) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.liveAgain++
	for s := range c.sends[self] {
		if s > ssn {
			delete(c.sends[self], s)
		}
	}
	for r := range c.deliveries[self] {
		if r > rsn {
			delete(c.seen[self], c.deliveries[self][r].msg)
			delete(c.deliveries[self], r)
		}
	}
}

// AttachTimeline binds col's probes to this cluster and installs its
// sampler on the kernel. The sampler fires from inside the run loop at
// virtual-time boundaries without enqueueing events, so attaching a
// collector leaves the event sequence — and the golden trace hash — exactly
// as it would be without one. Call before Run; col.N() must equal cfg.N.
func (c *Cluster) AttachTimeline(col *timeline.Collector) {
	if c.cfg.Shards > 0 {
		panic("cluster: timeline capture requires the classic kernel (Shards=0); the sharded scheduler has no cluster-wide sampling instants")
	}
	if col.N() != c.cfg.N {
		panic(fmt.Sprintf("cluster: timeline collector for n=%d attached to n=%d cluster",
			col.N(), c.cfg.N))
	}
	col.Bind(timeline.Probes{
		Queue: func() (int, int) {
			return c.K.QueueDepth(), c.K.InFlightFrames()
		},
		Proc: func(i int) timeline.ProcGauges {
			id := ids.ProcID(i)
			g := timeline.ProcGauges{
				Phase:       timeline.PhaseDown,
				StableBytes: c.K.Store(id).Bytes(),
			}
			if c.cfg.TrackOutputs {
				g.Backlog = c.outs.OpenOf(id)
				g.OldestOpen = c.outs.OldestOpenOf(id)
			}
			p := c.Proc(id)
			if p == nil {
				return g
			}
			g.Phase = fblPhase(p)
			g.Journal = p.DetLogLen()
			g.Lag = p.DetPending()
			if a, ok := p.App().(interface{ InflightReqs() int }); ok {
				g.Inflight = a.InflightReqs()
			}
			return g
		},
		Metrics: func(i int) *metrics.Proc { return c.K.Metrics(ids.ProcID(i)) },
		Markers: func() []timeline.Marker {
			return timeline.RecoveryMarkers(c.cfg.N, func(i int) *metrics.Proc {
				return c.K.Metrics(ids.ProcID(i))
			})
		},
	})
	c.K.SetSampler(col.Interval(), col.Tick)
}

// fblPhase maps an FBL process's lifecycle mode onto the timeline phase
// alphabet, splitting ModeLive into live vs blocked (the paper's intrusion).
func fblPhase(p *fbl.Process) timeline.Phase {
	switch p.Mode() {
	case fbl.ModeRestoring:
		return timeline.PhaseRestoring
	case fbl.ModeRecovering:
		return timeline.PhaseRecovering
	case fbl.ModeReplaying:
		return timeline.PhaseReplaying
	default:
		if p.Blocked() {
			return timeline.PhaseBlocked
		}
		return timeline.PhaseLive
	}
}

// Run advances virtual time to the given instant since start.
func (c *Cluster) Run(until time.Duration) { c.K.Run(until) }

// RunContext advances virtual time to the given instant since start,
// stopping early when ctx is done. It returns the number of simulator
// events processed — the deterministic cost of simulating the scenario,
// which the bench harness reports as sim_events — and ctx's error if the
// run was cut short.
func (c *Cluster) RunContext(ctx context.Context, until time.Duration) (int64, error) {
	return c.K.RunContext(ctx, until)
}

// Crash schedules a crash of process p at virtual time at.
func (c *Cluster) Crash(at time.Duration, p ids.ProcID) {
	c.crashes++
	c.K.CrashAt(at, p)
}

// CrashAtStep schedules a crash of p at the given kernel event-dispatch
// boundary (sim.CrashAtStep). Step-indexed crashes require the classic
// kernel: the sharded runtime has no single global event order to index.
func (c *Cluster) CrashAtStep(step int64, p ids.ProcID) {
	k := c.Kernel()
	if k == nil {
		panic("cluster: CrashAtStep requires the classic (non-sharded) kernel")
	}
	c.crashes++
	k.CrashAtStep(step, p)
}

// ApplyPlan schedules a whole crash plan; entries with Step > 0 are
// injected at event-dispatch boundaries, the rest at virtual times.
func (c *Cluster) ApplyPlan(plan failure.Plan) {
	for _, cr := range plan.Sorted() {
		if cr.Step > 0 {
			c.CrashAtStep(cr.Step, cr.Proc)
		} else {
			c.Crash(cr.At, cr.Proc)
		}
	}
}

// Kernel returns the classic single-heap kernel driving the cluster, or
// nil when it runs on the sharded coordinator. The explorer uses it to
// attach step probes and read step indices.
func (c *Cluster) Kernel() *sim.Kernel {
	k, _ := c.K.(*sim.Kernel)
	return k
}

// LiveAgain returns how many completed recoveries the cluster observed —
// the counter Check's liveness clause compares against effective crash
// injections.
func (c *Cluster) LiveAgain() int { return c.liveAgain }

// Inject offers an open-loop arrival to process p's application (see
// fbl.Process.Inject). It reports whether the arrival was admitted; a
// down, blocked, or recovering process sheds. Injections are only
// replay-sound on processes that never crash — keep injected processes
// out of the crash plan (the orphan check catches violations).
func (c *Cluster) Inject(p ids.ProcID, payload []byte) bool {
	pr := c.Proc(p)
	return pr != nil && pr.Inject(payload)
}

// Proc returns the protocol instance at p, or nil while p is down.
func (c *Cluster) Proc(p ids.ProcID) *fbl.Process {
	if pr, ok := c.K.ProcOf(p).(*fbl.Process); ok {
		return pr
	}
	return nil
}

// Metrics returns process p's accumulator.
func (c *Cluster) Metrics(p ids.ProcID) *metrics.Proc { return c.K.Metrics(p) }

// Outputs returns the cluster-wide output-commit ledger (DESIGN §10).
func (c *Cluster) Outputs() *output.Ledger { return c.outs }

// App returns the application hosted at p (nil while down).
func (c *Cluster) App(p ids.ProcID) workload.App {
	if pr := c.Proc(p); pr != nil {
		return pr.App()
	}
	return nil
}

// AllDone reports whether every application says its share of the workload
// completed (down processes count as not done).
func (c *Cluster) AllDone() bool {
	for i := 0; i < c.cfg.N; i++ {
		a := c.App(ids.ProcID(i))
		if a == nil || !a.Done() {
			return false
		}
	}
	return true
}

// Settled reports whether the workload finished AND every scheduled crash
// has completed its recovery.
func (c *Cluster) Settled() bool {
	return c.AllDone() && c.liveAgain >= c.crashes
}

// RunUntilDone advances time in steps until the cluster is settled (see
// Settled) or the horizon passes.
func (c *Cluster) RunUntilDone(step, horizon time.Duration) bool {
	for t := step; t <= horizon; t += step {
		c.Run(t)
		if c.Settled() {
			return true
		}
	}
	return c.Settled()
}

// Check verifies the end-state invariants and returns every violation
// found (nil means the run was consistent).
func (c *Cluster) Check() []error {
	var errs []error
	for _, v := range c.violations {
		errs = append(errs, fmt.Errorf("%s", v))
	}

	// Liveness (§4.2/§4.4): every crashed process must be live again. The
	// count compares against *effective* injections (sim.CrashesApplied),
	// not the plan length: explorer-synthesized schedules may re-crash a
	// process that is still down, which the kernel treats as a no-op.
	if applied := c.K.CrashesApplied(); c.liveAgain < applied {
		errs = append(errs, fmt.Errorf("liveness: %d crashes applied but only %d recoveries completed",
			applied, c.liveAgain))
	}
	for i := 0; i < c.cfg.N; i++ {
		p := c.Proc(ids.ProcID(i))
		if p == nil {
			errs = append(errs, fmt.Errorf("liveness: %v still down", ids.ProcID(i)))
			continue
		}
		if p.Mode() != fbl.ModeLive {
			errs = append(errs, fmt.Errorf("liveness: %v stuck in mode %v", ids.ProcID(i), p.Mode()))
		}
	}

	// Safety (§4.3): every delivery on a surviving timeline must match a
	// send on the sender's surviving timeline — otherwise the receiver is
	// an orphan of a rolled-back execution.
	for recv := 0; recv < c.cfg.N; recv++ {
		for rsn, d := range c.deliveries[recv] {
			s := d.msg.Sender
			rec, ok := c.sends[s][d.msg.SSN]
			if !ok {
				errs = append(errs, fmt.Errorf(
					"orphan: %v delivered %v (rsn %d) but %v's surviving execution never sent it",
					ids.ProcID(recv), d.msg, rsn, s))
				continue
			}
			if rec.to != ids.ProcID(recv) || rec.hash != d.hash {
				errs = append(errs, fmt.Errorf(
					"orphan: %v delivered %v (rsn %d) but %v's surviving send differs (to %v)",
					ids.ProcID(recv), d.msg, rsn, s, rec.to))
			}
			if p := c.Proc(s); p != nil && d.msg.SSN > p.SSN() {
				errs = append(errs, fmt.Errorf(
					"orphan: %v delivered %v but %v's execution only reached ssn %d",
					ids.ProcID(recv), d.msg, s, p.SSN()))
			}
		}
	}

	// Non-intrusion: the paper's algorithm never blocks live processes.
	if c.cfg.Style == recovery.NonBlocking {
		for i := 0; i < c.cfg.N; i++ {
			if b := c.Metrics(ids.ProcID(i)).BlockedTotal(); b != 0 {
				errs = append(errs, fmt.Errorf(
					"intrusion: nonblocking style blocked %v for %v", ids.ProcID(i), b))
			}
		}
	}
	return errs
}

// Digests returns each live application's state fingerprint.
func (c *Cluster) Digests() []uint64 {
	out := make([]uint64, c.cfg.N)
	for i := 0; i < c.cfg.N; i++ {
		if a := c.App(ids.ProcID(i)); a != nil {
			out[i] = a.Digest()
		}
	}
	return out
}
