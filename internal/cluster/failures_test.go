package cluster

import (
	"fmt"
	"testing"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/recovery"
	"rollrec/internal/workload"
)

// slowRing keeps the token circulating for several virtual seconds so
// crashes land mid-computation.
func slowRingConfig(style recovery.Style, seed int64, n, f int) Config {
	return Config{
		N:               n,
		F:               f,
		Seed:            seed,
		HW:              fastHW(),
		Style:           style,
		App:             workload.NewTokenRing(2000, 64, int64(2*time.Millisecond)),
		CheckpointEvery: 400 * time.Millisecond,
		StatePad:        4 << 10,
	}
}

func settle(t *testing.T, c *Cluster, horizon time.Duration) {
	t.Helper()
	if !c.RunUntilDone(time.Second, horizon) {
		for i := 0; i < 4; i++ {
			if p := c.Proc(ids.ProcID(i)); p != nil {
				t.Logf("p%d mode=%v rsn=%d", i, p.Mode(), p.RSN())
			} else {
				t.Logf("p%d down", i)
			}
		}
		t.Fatal("cluster did not settle before horizon")
	}
}

func TestMidComputationCrash(t *testing.T) {
	for _, style := range []recovery.Style{recovery.NonBlocking, recovery.Blocking, recovery.Manetho} {
		t.Run(style.String(), func(t *testing.T) {
			golden := New(slowRingConfig(recovery.NonBlocking, 21, 4, 2))
			settle(t, golden, 120*time.Second)

			c := New(slowRingConfig(style, 21, 4, 2))
			c.Crash(1500*time.Millisecond, 2) // token is mid-flight
			settle(t, c, 240*time.Second)
			mustCheck(t, c)
			g, got := golden.Digests(), c.Digests()
			for i := range g {
				if g[i] != got[i] {
					t.Errorf("process %d digest %#x, want golden %#x", i, got[i], g[i])
				}
			}
		})
	}
}

func TestCrashTokenHolder(t *testing.T) {
	// Crash every process in turn at a moment it plausibly holds the token.
	for victim := ids.ProcID(0); victim < 4; victim++ {
		t.Run(fmt.Sprintf("victim%d", victim), func(t *testing.T) {
			golden := New(slowRingConfig(recovery.NonBlocking, 33, 4, 2))
			settle(t, golden, 120*time.Second)

			c := New(slowRingConfig(recovery.NonBlocking, 33, 4, 2))
			c.Crash(time.Second+time.Duration(victim)*2*time.Millisecond, victim)
			settle(t, c, 240*time.Second)
			mustCheck(t, c)
			g, got := golden.Digests(), c.Digests()
			for i := range g {
				if g[i] != got[i] {
					t.Errorf("process %d digest %#x, want golden %#x", i, got[i], g[i])
				}
			}
		})
	}
}

func TestOverlappingFailures(t *testing.T) {
	// A second process fails while the first is still recovering — the
	// paper's second experiment, and the scenario its new algorithm's
	// gather-restart (step 5 → goto 4) exists for.
	for _, style := range []recovery.Style{recovery.NonBlocking, recovery.Blocking} {
		t.Run(style.String(), func(t *testing.T) {
			golden := New(slowRingConfig(recovery.NonBlocking, 44, 4, 2))
			settle(t, golden, 120*time.Second)

			c := New(slowRingConfig(style, 44, 4, 2))
			c.Crash(1200*time.Millisecond, 1)
			// fastHW: watchdog 300ms + restart 50ms + restore ≈ 360ms, so
			// the gather is in flight around 1.6s; crash a live process.
			c.Crash(1600*time.Millisecond, 3)
			settle(t, c, 240*time.Second)
			mustCheck(t, c)
			g, got := golden.Digests(), c.Digests()
			for i := range g {
				if g[i] != got[i] {
					t.Errorf("process %d digest %#x, want golden %#x", i, got[i], g[i])
				}
			}
			// Both recoveries must have completed.
			for _, p := range []ids.ProcID{1, 3} {
				tr := c.Metrics(p).CurrentRecovery()
				if tr == nil || tr.ReplayedAt == 0 {
					t.Errorf("%v has no completed recovery trace", p)
				}
			}
		})
	}
}

func TestSimultaneousFailures(t *testing.T) {
	golden := New(slowRingConfig(recovery.NonBlocking, 55, 4, 2))
	settle(t, golden, 120*time.Second)

	c := New(slowRingConfig(recovery.NonBlocking, 55, 4, 2))
	c.Crash(1300*time.Millisecond, 0)
	c.Crash(1300*time.Millisecond, 2)
	settle(t, c, 240*time.Second)
	mustCheck(t, c)
	g, got := golden.Digests(), c.Digests()
	for i := range g {
		if g[i] != got[i] {
			t.Errorf("process %d digest %#x, want golden %#x", i, got[i], g[i])
		}
	}
}

func TestManethoInstance(t *testing.T) {
	// f = n: determinants are stable only at the storage pseudo-process.
	cfg := slowRingConfig(recovery.NonBlocking, 66, 4, 4)
	golden := New(cfg)
	settle(t, golden, 120*time.Second)

	c := New(slowRingConfig(recovery.NonBlocking, 66, 4, 4))
	c.Crash(1500*time.Millisecond, 1)
	settle(t, c, 240*time.Second)
	mustCheck(t, c)
	g, got := golden.Digests(), c.Digests()
	for i := range g {
		if g[i] != got[i] {
			t.Errorf("process %d digest %#x, want golden %#x", i, got[i], g[i])
		}
	}
	// The storage process must have accumulated determinants.
	if c.Metrics(ids.StorageProc).MsgsRecv[3] == 0 { // KindDetsToStorage
		t.Error("storage pseudo-process never received determinants")
	}
}

func TestGossipWithCrashes(t *testing.T) {
	cfg := Config{
		N:               6,
		F:               2,
		Seed:            77,
		HW:              fastHW(),
		Style:           recovery.NonBlocking,
		App:             workload.NewRandomPeer(3, 400, 64, int64(time.Millisecond)),
		CheckpointEvery: 400 * time.Millisecond,
		StatePad:        4 << 10,
	}
	c := New(cfg)
	c.Crash(1200*time.Millisecond, 4)
	c.Crash(2500*time.Millisecond, 0)
	c.Run(30 * time.Second)
	mustCheck(t, c)
	var handled uint64
	for i := 0; i < 6; i++ {
		if a, ok := c.App(ids.ProcID(i)).(*workload.RandomPeer); ok {
			handled += a.Handled()
		}
	}
	if handled == 0 {
		t.Fatal("gossip made no progress")
	}
}

func TestClientServerWithServerCrash(t *testing.T) {
	cfg := Config{
		N:               5,
		F:               2,
		Seed:            88,
		HW:              fastHW(),
		Style:           recovery.NonBlocking,
		App:             workload.NewClientServer(300, 64, int64(time.Millisecond)),
		CheckpointEvery: 400 * time.Millisecond,
		StatePad:        4 << 10,
	}
	golden := New(cfg)
	settle(t, golden, 240*time.Second)
	goldenApplied := golden.App(0).(*workload.ClientServer).Applied()

	c := New(Config{
		N: 5, F: 2, Seed: 88, HW: fastHW(), Style: recovery.NonBlocking,
		App:             workload.NewClientServer(300, 64, int64(time.Millisecond)),
		CheckpointEvery: 400 * time.Millisecond,
		StatePad:        4 << 10,
	})
	c.Crash(1500*time.Millisecond, 0) // the server itself
	settle(t, c, 480*time.Second)
	mustCheck(t, c)
	if got := c.App(0).(*workload.ClientServer).Applied(); got != goldenApplied {
		t.Errorf("server applied %d requests, golden run applied %d", got, goldenApplied)
	}
}

func TestClientServerWithClientCrash(t *testing.T) {
	c := New(Config{
		N: 5, F: 2, Seed: 99, HW: fastHW(), Style: recovery.NonBlocking,
		App:             workload.NewClientServer(300, 64, int64(time.Millisecond)),
		CheckpointEvery: 400 * time.Millisecond,
		StatePad:        4 << 10,
	})
	c.Crash(1500*time.Millisecond, 2)
	settle(t, c, 480*time.Second)
	mustCheck(t, c)
	if got := c.App(0).(*workload.ClientServer).Applied(); got != 300*4 {
		t.Errorf("server applied %d, want %d", got, 300*4)
	}
}
