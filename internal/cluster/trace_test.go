package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/recovery"
	"rollrec/internal/trace"
	"rollrec/internal/workload"
)

func tracedConfig(rec *trace.Recorder) Config {
	return Config{
		N:               8,
		F:               2,
		Seed:            1,
		Style:           recovery.NonBlocking,
		App:             workload.NewRandomPeer(1, 1_000_000, 256, int64(time.Millisecond)),
		CheckpointEvery: 4 * time.Second,
		StatePad:        1 << 20,
		Tracer:          rec,
	}
}

// TestTraceTwoFailureGatherRestart drives the paper's second experiment
// (a live process dies mid-gather) and asserts the exported trace shows the
// leader's round being aborted and restarted after the second victim
// re-announces: gather → gather-abort → announce(p5) → gather.
func TestTraceTwoFailureGatherRestart(t *testing.T) {
	rec := trace.NewRecorder(1 << 20)
	c := New(tracedConfig(rec))
	c.Crash(10*time.Second, 3)
	c.Crash(14100*time.Millisecond, 5)
	c.Run(45 * time.Second)
	if errs := c.Check(); len(errs) > 0 {
		t.Fatalf("invariants violated: %v", errs[0])
	}
	if rec.Dropped() > 0 {
		t.Fatalf("ring dropped %d events; capacity too small for the assertion", rec.Dropped())
	}

	events := rec.Events()
	// Scan for the causal subsequence on the leader's (p3's) track.
	stage := 0
	for _, e := range events {
		switch stage {
		case 0: // p3's first gather round begins
			if e.Proc == 3 && e.Name == trace.EvGather {
				stage = 1
			}
		case 1: // that round is aborted (p5 died mid-gather)
			if e.Proc == 3 && e.Name == trace.EvGatherAbort {
				stage = 2
			}
		case 2: // p5 comes back and re-announces with a fresh incarnation
			if e.Proc == 5 && e.Name == trace.EvAnnounce {
				stage = 3
			}
		case 3: // the leader runs a fresh gather round
			if e.Proc == 3 && e.Name == trace.EvGather {
				stage = 4
			}
		}
	}
	if stage != 4 {
		t.Fatalf("gather → abort → re-announce → gather sequence not found (reached stage %d)", stage)
	}

	// Both victims must have completed a replay span.
	replayed := map[int32]bool{}
	for _, e := range events {
		if e.Name == trace.EvReplay && e.Span && !e.Open {
			replayed[e.Proc] = true
		}
	}
	if !replayed[3] || !replayed[5] {
		t.Fatalf("closed replay spans missing: %v", replayed)
	}
}

// chromeEvent mirrors the subset of the trace-event schema the export uses.
type chromeEvent struct {
	Ph   string  `json:"ph"`
	TID  int32   `json:"tid"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Name string  `json:"name"`
}

// TestTraceChromeExport runs the README's single-failure scenario and
// asserts the Chrome export is valid JSON with at least one span per live
// process and the named recovery-phase spans present.
func TestTraceChromeExport(t *testing.T) {
	rec := trace.NewRecorder(1 << 20)
	c := New(tracedConfig(rec))
	c.Crash(10*time.Second, 3)
	c.Run(30 * time.Second)
	if errs := c.Check(); len(errs) > 0 {
		t.Fatalf("invariants violated: %v", errs[0])
	}

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, rec.Events(), trace.ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export is empty")
	}

	spansPer := map[int32]int{}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spansPer[e.TID]++
			names[e.Name] = true
		}
	}
	for i := int32(0); i < 8; i++ {
		if i == 3 {
			continue // the victim has spans too, but it is not required here
		}
		if spansPer[i] == 0 {
			t.Errorf("live process p%d has no spans", i)
		}
	}
	for _, phase := range []string{trace.EvRestore, trace.EvWaiting, trace.EvGather, trace.EvReplay} {
		if !names[phase] {
			t.Errorf("recovery-phase span %q missing from export", phase)
		}
	}
}

// TestTraceDisabledByDefault asserts that a cluster without a tracer runs
// with the no-op implementation: the Env must still return a usable tracer.
func TestTraceDisabledByDefault(t *testing.T) {
	c := New(Config{
		N:     4,
		F:     1,
		Seed:  1,
		Style: recovery.NonBlocking,
		App:   workload.NewRandomPeer(1, 1000, 64, int64(time.Millisecond)),
	})
	c.Run(2 * time.Second)
	tr := c.K.Metrics(ids.ProcID(0)) // metrics exist
	if tr == nil {
		t.Fatal("metrics missing")
	}
}
