package cluster

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rollrec/internal/timeline"
	"rollrec/internal/trace"
)

// goldenRunSampled is the pinned golden scenario with a timeline collector
// attached — same config, same crash plan, same horizon.
func goldenRunSampled(tr trace.Tracer, interval time.Duration) (*Cluster, *timeline.Collector) {
	col := timeline.New(timeline.Config{Interval: interval, N: 4, Label: "golden"})
	c := goldenRun2(tr, col)
	return c, col
}

// goldenRun2 mirrors goldenRun but attaches col before events flow.
func goldenRun2(tr trace.Tracer, col *timeline.Collector) *Cluster {
	c := New(goldenConfig(tr))
	if col != nil {
		c.AttachTimeline(col)
	}
	c.ApplyPlan(goldenPlan())
	c.Run(goldenHorizon)
	return c
}

// TestTimelineSamplingPreservesGoldenHash is the tentpole's determinism
// claim, stated at its strongest: sampling ENABLED leaves the golden event
// sequence untouched. The sampler fires between events without scheduling
// anything, so the hashed trace of the sampled run must equal the committed
// golden hash — not merely be self-consistent.
func TestTimelineSamplingPreservesGoldenHash(t *testing.T) {
	tr := newHashTracer()
	c, col := goldenRunSampled(tr, 100*time.Millisecond)
	if errs := c.Check(); len(errs) > 0 {
		t.Fatalf("sampled golden run inconsistent: %v", errs)
	}
	if tr.h != goldenTraceHash {
		t.Fatalf("sampling changed the event sequence: hash %#x, want %#x", tr.h, goldenTraceHash)
	}
	if want := int(goldenHorizon / (100 * time.Millisecond)); col.Ticks() != want {
		t.Fatalf("collector took %d ticks, want %d (one per boundary to the horizon)", col.Ticks(), want)
	}
}

// TestTimelineExportDeterministic: two sampled runs of the same scenario
// must export byte-identical JSON and CSV.
func TestTimelineExportDeterministic(t *testing.T) {
	render := func() ([]byte, []byte) {
		_, col := goldenRunSampled(trace.Nop{}, 100*time.Millisecond)
		e := col.Export()
		var j, c bytes.Buffer
		if err := e.Encode(&j); err != nil {
			t.Fatal(err)
		}
		if err := e.EncodeCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}
	j1, c1 := render()
	j2, c2 := render()
	if !bytes.Equal(j1, j2) {
		t.Error("JSON exports of identical runs differ")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("CSV exports of identical runs differ")
	}
	if len(j1) == 0 || len(c1) == 0 {
		t.Fatal("empty export")
	}
}

// TestTimelineSeriesShape checks the sampled series against what the golden
// scenario is known to do: both crash victims read Down at the tick after
// their crash, every crash produces its marker set, and the round-tripped
// export decodes to the same tick count.
func TestTimelineSeriesShape(t *testing.T) {
	_, col := goldenRunSampled(trace.Nop{}, 100*time.Millisecond)
	e := col.Export()

	// Tick i samples boundary (i+1)*interval; the tick right after each
	// crash must show the victim down.
	tickAt := func(d time.Duration) timeline.Tick {
		idx := int(d/(100*time.Millisecond)) + 1 - 1 // boundary index after d, 0-based
		if idx >= len(e.Ticks) {
			t.Fatalf("no tick at %v (have %d)", d, len(e.Ticks))
		}
		return e.Ticks[idx]
	}
	if ph := tickAt(6 * time.Second).Phases; ph[1] != 'D' {
		t.Errorf("tick after first crash: phases %q, want proc 1 down", ph)
	}
	if ph := tickAt(8 * time.Second).Phases; ph[2] != 'D' {
		t.Errorf("tick after second crash: phases %q, want proc 2 down", ph)
	}
	if ph := e.Ticks[0].Phases; ph != "LLLL" {
		t.Errorf("first tick phases %q, want all live", ph)
	}

	for _, want := range []struct {
		kind string
		proc int
	}{
		{timeline.MarkCrash, 1}, {timeline.MarkCrash, 2},
		{timeline.MarkRecoveryEnd, 1}, {timeline.MarkRecoveryEnd, 2},
	} {
		if _, ok := e.MarkerAt(want.kind, want.proc); !ok {
			t.Errorf("missing %s marker for proc %d", want.kind, want.proc)
		}
	}
	cm1, _ := e.MarkerAt(timeline.MarkCrash, 1)
	if cm1.TMS != 6000 {
		t.Errorf("proc 1 crash marker at %v ms, want 6000", cm1.TMS)
	}

	// The workload keeps traffic flowing, so delivery windows must carry
	// observations and the journal must be populated while processes live.
	if e.Ticks[10].Delivery.N == 0 {
		t.Error("delivery window at t=1.1s recorded no observations")
	}
	sawJournal := false
	for _, tk := range e.Ticks {
		for _, j := range tk.Journal {
			if j > 0 {
				sawJournal = true
			}
		}
	}
	if !sawJournal {
		t.Error("determinant journal series never rose above zero")
	}

	var buf bytes.Buffer
	if err := e.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := timeline.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Ticks) != len(e.Ticks) || len(rt.Markers) != len(e.Markers) {
		t.Fatalf("round trip lost rows: %d/%d ticks, %d/%d markers",
			len(rt.Ticks), len(e.Ticks), len(rt.Markers), len(e.Markers))
	}

	// The renderer must cover every lane and the marker legend.
	var sb strings.Builder
	timeline.Render(&sb, e, 80)
	out := sb.String()
	for _, lane := range []string{"queue", "backlog", "dlv_p99", "markers", "X=crash"} {
		if !strings.Contains(out, lane) {
			t.Errorf("render output missing %q lane:\n%s", lane, out)
		}
	}
}
