package cluster

import (
	"testing"
	"time"

	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/recovery"
	"rollrec/internal/workload"
)

// config1024 is the n=1024 scale scenario: the sharded conservative-window
// scheduler and the fanout protocol mode together (ROADMAP item 1). Finite
// gossip chains let the traffic quiesce inside the horizon; the fanout of 8
// keeps the per-process dissemination cost O(k) instead of O(n).
func config1024(shards int) Config {
	return Config{
		N:               1024,
		F:               1,
		Seed:            1,
		HW:              node.Profile1995(),
		Style:           recovery.NonBlocking,
		App:             workload.NewRandomPeer(1, 40, 64, int64(time.Millisecond)),
		CheckpointEvery: 3 * time.Second,
		StatePad:        1 << 12,
		Shards:          shards,
		Fanout:          8,
	}
}

// TestSharded1024CrashRestart is the scale gate: a 1024-process cluster on
// 4 shards survives a mid-run crash — watchdog restart, scoped dependency
// gather, replay — and ends with every cross-process invariant intact.
func TestSharded1024CrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("n=1024 scenario is a long test")
	}
	c := New(config1024(4))
	c.ApplyPlan(failure.Plan{{At: 5 * time.Second, Proc: 100}})
	c.Run(16 * time.Second)
	if errs := c.Check(); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatalf("n=1024 sharded run inconsistent (%d violations)", len(errs))
	}
	if c.liveAgain < 1 {
		t.Fatal("crashed process never completed recovery")
	}
	p := c.Proc(ids.ProcID(100))
	if p == nil {
		t.Fatal("process 100 still down after horizon")
	}
	if got := p.App().Digest(); got == 0 {
		t.Error("restarted process has empty application state")
	}
}

// TestSharded1024Deterministic proves the scale scenario's digests are a
// function of the seed alone: 1 shard and 4 shards must agree exactly.
func TestSharded1024Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("n=1024 scenario is a long test")
	}
	run := func(shards int) []uint64 {
		c := New(config1024(shards))
		c.ApplyPlan(failure.Plan{{At: 5 * time.Second, Proc: 100}})
		c.Run(16 * time.Second)
		if errs := c.Check(); len(errs) > 0 {
			t.Fatalf("shards=%d inconsistent: %v", shards, errs[0])
		}
		return c.Digests()
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("digest of proc %d differs across shard counts: %#x vs %#x", i, a[i], b[i])
		}
	}
}
