package costmodel

import (
	"testing"
	"time"

	"rollrec/internal/node"
	"rollrec/internal/recovery"
)

func baseInputs(style recovery.Style) Inputs {
	return Inputs{
		HW:              node.Profile1995(),
		N:               8,
		F:               2,
		Style:           style,
		CheckpointBytes: 1 << 20,
		DepinfoBytes:    8 << 10,
		ReplayMsgs:      300,
		ReplayMsgBytes:  300,
		WorkPerMsg:      time.Millisecond,
	}
}

func TestDetectionDominatesOn1995Hardware(t *testing.T) {
	p := SingleFailure(baseInputs(recovery.NonBlocking))
	// The paper's argument: detection and storage dwarf communication.
	if p.DetectRestart < 10*p.Gather {
		t.Fatalf("detection (%v) must dominate the gather (%v) on the 1995 profile",
			p.DetectRestart, p.Gather)
	}
	if p.Restore < p.Gather {
		t.Fatalf("restoring 1 MB (%v) must outweigh the gather (%v)", p.Restore, p.Gather)
	}
	if p.Total() < 4*time.Second || p.Total() > 7*time.Second {
		t.Fatalf("total = %v, want the paper's ~5s ballpark", p.Total())
	}
}

func TestIntrusionByStyle(t *testing.T) {
	nb := SingleFailure(baseInputs(recovery.NonBlocking))
	bl := SingleFailure(baseInputs(recovery.Blocking))
	ma := SingleFailure(baseInputs(recovery.Manetho))
	if nb.LiveBlocked != 0 {
		t.Fatalf("nonblocking intrusion must be zero, got %v", nb.LiveBlocked)
	}
	if bl.LiveBlocked <= 0 {
		t.Fatal("blocking intrusion must be positive")
	}
	if ma.LiveBlocked <= bl.LiveBlocked {
		t.Fatalf("manetho (%v) must exceed blocking (%v): the synchronous write",
			ma.LiveBlocked, bl.LiveBlocked)
	}
	// Blocking intrusion on the 1995 profile lands in the paper's "about
	// 50 ms" regime.
	if bl.LiveBlocked < 5*time.Millisecond || bl.LiveBlocked > 200*time.Millisecond {
		t.Fatalf("blocking intrusion = %v, want tens of ms", bl.LiveBlocked)
	}
}

func TestRecoveryTimeIndependentOfStyle(t *testing.T) {
	nb := SingleFailure(baseInputs(recovery.NonBlocking))
	bl := SingleFailure(baseInputs(recovery.Blocking))
	// "The recovering process took the same time to recover under both
	// algorithms" — the styles differ in who waits, not in how long
	// recovery takes (Manetho's write sits on the gather path, so it is
	// exempt from this equality).
	if nb.Total() != bl.Total() {
		t.Fatalf("totals differ: %v vs %v", nb.Total(), bl.Total())
	}
}

func TestOverlappingStallIsSeconds(t *testing.T) {
	o := Overlapping(baseInputs(recovery.Blocking))
	if o.GatherStall < 3*time.Second {
		t.Fatalf("stall = %v; detection+restore of the second victim is seconds", o.GatherStall)
	}
	if o.First.Total() <= o.Second.Total() {
		t.Fatal("the first victim waits out the second's recovery, so its total is larger")
	}
	blocked := LiveBlockedOverlap(baseInputs(recovery.Blocking))
	if blocked < 3*time.Second {
		t.Fatalf("blocking intrusion under overlap = %v, want the paper's ~5s window", blocked)
	}
	if LiveBlockedOverlap(baseInputs(recovery.NonBlocking)) != 0 {
		t.Fatal("the new algorithm's intrusion must stay zero under overlap")
	}
}

func TestModernHardwareShrinksEverythingButDetection(t *testing.T) {
	in := baseInputs(recovery.Blocking)
	in.HW = node.ProfileModern()
	p := SingleFailure(in)
	old := SingleFailure(baseInputs(recovery.Blocking))
	if p.Restore >= old.Restore || p.Gather >= old.Gather {
		t.Fatal("modern hardware must shrink storage and communication terms")
	}
	// The message COUNT is identical — the paper's point that the count
	// was never the interesting quantity.
	if p.CtlMsgs != old.CtlMsgs {
		t.Fatal("control message count is technology-independent")
	}
}

func TestGatherScalesWithN(t *testing.T) {
	small := baseInputs(recovery.NonBlocking)
	big := baseInputs(recovery.NonBlocking)
	big.N = 32
	ps, pb := SingleFailure(small), SingleFailure(big)
	if pb.Gather <= ps.Gather {
		t.Fatal("gather must grow with cluster size")
	}
	if pb.CtlMsgs <= ps.CtlMsgs {
		t.Fatal("control messages must grow with cluster size")
	}
}

func TestWANMakesCommunicationMatterAgain(t *testing.T) {
	in := baseInputs(recovery.Blocking)
	in.HW.Net.Latency = 50 * time.Millisecond
	p := SingleFailure(in)
	lan := SingleFailure(baseInputs(recovery.Blocking))
	if p.Gather <= lan.Gather {
		t.Fatal("WAN latency must inflate the gather")
	}
	if p.LiveBlocked <= lan.LiveBlocked {
		t.Fatal("WAN latency must inflate the blocking intrusion")
	}
}
