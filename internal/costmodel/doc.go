// Package costmodel is the "theoretical formulation" the paper's
// conclusion asks for: closed-form predictions of what a recovery costs —
// the recovering process's downtime and, crucially, the intrusion imposed
// on every live process — expressed in terms of the technology parameters
// (network latency/bandwidth, CPU per-message cost, stable-storage latency,
// failure-detection timeouts) rather than the message count alone.
//
// The model deliberately mirrors the paper's argument: the traditional
// metric (messages exchanged) appears only inside the Gather term, which
// the parameters of modern systems make small; the detection and
// stable-storage terms, which message-complexity analysis ignores, are the
// ones that grow. The experiments package validates these formulas against
// the discrete-event simulator (experiment D8).
package costmodel
