package costmodel

import (
	"time"

	"rollrec/internal/node"
	"rollrec/internal/recovery"
)

// Inputs are the scenario parameters of a prediction.
type Inputs struct {
	// HW is the hardware profile (the technology terms).
	HW node.Hardware
	// N is the cluster size; F the failure budget.
	N int
	F int
	// Style is the recovery algorithm variant under analysis.
	Style recovery.Style
	// CheckpointBytes is the stable-storage size of one checkpoint
	// (process image plus protocol state).
	CheckpointBytes int
	// DepinfoBytes is the typical size of one live process's determinant
	// log when serialized into a depinfo reply.
	DepinfoBytes int
	// ReplayMsgs is the expected number of deliveries to re-execute
	// (roughly the per-process delivery rate times half the checkpoint
	// interval).
	ReplayMsgs int
	// ReplayMsgBytes is the typical application frame size.
	ReplayMsgBytes int
	// WorkPerMsg is the application compute per delivery.
	WorkPerMsg time.Duration
}

// Prediction is the model's output for one failure scenario.
type Prediction struct {
	// DetectRestart is the crash-to-process-image-up term: the watchdog's
	// timeout plus the restart cost. Pure failure-detection technology.
	DetectRestart time.Duration
	// Restore is the stable-storage term: reading the incarnation record
	// and the checkpoint.
	Restore time.Duration
	// Gather is the communication term — the only place message counts
	// appear. For the non-blocking algorithm it is also an upper bound on
	// nothing at all: lives are unaffected.
	Gather time.Duration
	// Replay is the re-execution term.
	Replay time.Duration
	// LiveBlocked is the per-live-process intrusion: zero for the
	// non-blocking algorithm, about the gather tail for the blocking
	// baseline, plus a synchronous storage write for Manetho mode.
	LiveBlocked time.Duration
	// CtlMsgs is the traditional metric: recovery control messages for one
	// single-failure recovery.
	CtlMsgs int
}

// Total returns the predicted crash-to-live latency.
func (p Prediction) Total() time.Duration {
	return p.DetectRestart + p.Restore + p.Gather + p.Replay
}

// frame sizes for the small control messages (announce, requests,
// completion); measured envelope overhead is ~30–60 bytes.
const ctlFrameBytes = 48

// SingleFailure predicts the cost of recovering one crashed process while
// everyone else stays up.
func SingleFailure(in Inputs) Prediction {
	hw := in.HW
	lives := in.N - 1

	var p Prediction
	p.DetectRestart = hw.WatchdogDetect + hw.RestartDelay
	// Two reads (incarnation record, checkpoint) + one small write (new
	// incarnation record) before the process can announce.
	p.Restore = hw.Disk.ReadTime(16) + hw.Disk.ReadTime(in.CheckpointBytes) +
		hw.Disk.WriteTime(16)

	// Gather: the leader serializes (n-1) announces and (n-1) requests,
	// the last request flies one way, a live process turns it around, the
	// reply (depinfo) flies back, and the leader absorbs (n-1) replies.
	send := func(bytes int) time.Duration {
		return hw.SendCost(bytes) + hw.Net.TransmitTime(bytes)
	}
	oneWay := hw.Net.Latency
	leaderOut := time.Duration(2*lives) * send(ctlFrameBytes) // announces + requests
	liveTurn := hw.RecvCost(ctlFrameBytes) + send(in.DepinfoBytes)
	if in.Style == recovery.Manetho {
		liveTurn += hw.Disk.WriteTime(in.DepinfoBytes)
	}
	leaderIn := time.Duration(lives) * (hw.RecvCost(in.DepinfoBytes) + hw.Net.TransmitTime(in.DepinfoBytes))
	complete := send(ctlFrameBytes)
	p.Gather = leaderOut + oneWay + liveTurn + oneWay + leaderIn + complete

	// Replay: request retransmissions, then re-execute each delivery
	// (handling cost on both ends plus the application's work).
	perMsg := hw.SendCost(in.ReplayMsgBytes) + hw.RecvCost(in.ReplayMsgBytes) +
		hw.Net.TransmitTime(in.ReplayMsgBytes) + in.WorkPerMsg
	p.Replay = time.Duration(lives)*send(ctlFrameBytes) + oneWay +
		time.Duration(in.ReplayMsgs)*perMsg

	// Intrusion: what each live process cannot do while the protocol holds
	// it. The blocking baseline holds lives from the depinfo request to the
	// completion broadcast — roughly the reply legs plus the leader's
	// absorption of everyone's replies.
	switch in.Style {
	case recovery.NonBlocking:
		p.LiveBlocked = 0
	case recovery.Blocking:
		p.LiveBlocked = send(in.DepinfoBytes) + leaderIn + oneWay + complete
	case recovery.Manetho:
		p.LiveBlocked = hw.Disk.WriteTime(in.DepinfoBytes) +
			send(in.DepinfoBytes) + leaderIn + oneWay + complete
	}

	// The traditional metric: announces, requests, replies, completion,
	// data distribution, replay requests, recovered broadcast.
	p.CtlMsgs = lives /*announce*/ + lives /*dep req*/ + lives /*dep reply*/ +
		lives /*complete*/ + lives /*replay req*/ + lives /*recovered*/
	return p
}

// OverlappingFailure predicts the paper's second experiment: a second
// process crashes while the first is mid-gather. The gather restarts and
// stalls for the second victim's detection and restore — which is why both
// the first victim's recovery and (under the blocking baseline) every live
// process's stall inflate to seconds.
type OverlapPrediction struct {
	First       Prediction    // the original victim
	Second      Prediction    // the process that died mid-gather
	GatherStall time.Duration // how long the restarted gather waits
}

// Overlapping computes the two-failure predictions.
func Overlapping(in Inputs) OverlapPrediction {
	base := SingleFailure(in)
	second := SingleFailure(in)

	// The leader notices the second victim via heartbeat silence, then
	// waits for it to restart, restore, and announce.
	stall := in.HW.SuspectAfter + second.DetectRestart + second.Restore
	if detectFirst := in.HW.SuspectAfter; detectFirst > second.DetectRestart+second.Restore {
		// Detection of silence and the watchdog run concurrently; the
		// stall is bounded below by whichever finishes last.
		stall = detectFirst + in.HW.Disk.ReadTime(in.CheckpointBytes)
	}

	first := base
	first.Gather += stall

	out := OverlapPrediction{First: first, Second: second, GatherStall: stall}
	return out
}

// LiveBlockedOverlap predicts the per-live intrusion for the two-failure
// scenario: under the blocking styles the lives sit out the whole stalled
// gather; under the new algorithm, nothing.
func LiveBlockedOverlap(in Inputs) time.Duration {
	if in.Style == recovery.NonBlocking {
		return 0
	}
	o := Overlapping(in)
	return o.GatherStall + SingleFailure(in).LiveBlocked
}
