package vclock

import (
	"fmt"
	"strings"

	"rollrec/internal/ids"
)

// Lamport is a classic Lamport scalar clock. The zero value is ready to use.
type Lamport struct {
	t uint64
}

// Tick advances the clock for a local event and returns the new value.
func (l *Lamport) Tick() uint64 {
	l.t++
	return l.t
}

// Witness merges an observed remote timestamp into the clock and ticks,
// returning the new value.
func (l *Lamport) Witness(remote uint64) uint64 {
	if remote > l.t {
		l.t = remote
	}
	l.t++
	return l.t
}

// Now returns the current value without advancing.
func (l *Lamport) Now() uint64 { return l.t }

// IncVector records, per process, the highest incarnation number known to be
// current. A message tagged with an incarnation lower than the recorded
// value for its sender is stale — it was sent by an execution that has since
// been rolled back — and must be rejected (paper §3.2, §3.3).
type IncVector struct {
	inc []ids.Incarnation
}

// NewIncVector returns a vector for n processes, all at incarnation 1 (the
// initial execution).
func NewIncVector(n int) IncVector {
	v := IncVector{inc: make([]ids.Incarnation, n)}
	for i := range v.inc {
		v.inc[i] = 1
	}
	return v
}

// Len returns the number of processes covered by the vector.
func (v IncVector) Len() int { return len(v.inc) }

// Get returns the recorded incarnation for p. The storage pseudo-process is
// always at incarnation 1 (it never fails). Unknown processes report 0.
func (v IncVector) Get(p ids.ProcID) ids.Incarnation {
	if p.IsStorage() {
		return 1
	}
	if p < 0 || int(p) >= len(v.inc) {
		return 0
	}
	return v.inc[p]
}

// Bump records that p has entered incarnation inc if it is newer than what
// the vector already holds. It reports whether the vector changed.
func (v *IncVector) Bump(p ids.ProcID, inc ids.Incarnation) bool {
	if p < 0 || int(p) >= len(v.inc) || inc <= v.inc[p] {
		return false
	}
	v.inc[p] = inc
	return true
}

// Merge takes the elementwise maximum of v and o in place and reports
// whether v changed. Merging is commutative, associative, and idempotent,
// which is what makes the recovery leader's broadcast of its incvector safe
// to apply in any order.
func (v *IncVector) Merge(o IncVector) bool {
	changed := false
	for i, inc := range o.inc {
		if i < len(v.inc) && inc > v.inc[i] {
			v.inc[i] = inc
			changed = true
		}
	}
	return changed
}

// Stale reports whether a message from sender p tagged with incarnation inc
// must be rejected because the vector already knows a newer incarnation of p.
func (v IncVector) Stale(p ids.ProcID, inc ids.Incarnation) bool {
	return inc < v.Get(p)
}

// Clone returns an independent copy.
func (v IncVector) Clone() IncVector {
	c := IncVector{inc: make([]ids.Incarnation, len(v.inc))}
	copy(c.inc, v.inc)
	return c
}

// Equal reports whether two vectors record identical incarnations.
func (v IncVector) Equal(o IncVector) bool {
	if len(v.inc) != len(o.inc) {
		return false
	}
	for i := range v.inc {
		if v.inc[i] != o.inc[i] {
			return false
		}
	}
	return true
}

// Slice exposes the raw incarnations for the wire codec. The returned slice
// aliases the vector and must not be modified.
func (v IncVector) Slice() []ids.Incarnation { return v.inc }

// FromSlice rebuilds a vector from codec values. The slice is copied.
func FromSlice(inc []ids.Incarnation) IncVector {
	c := IncVector{inc: make([]ids.Incarnation, len(inc))}
	copy(c.inc, inc)
	return c
}

// String renders the vector as "[1 2 1 ...]".
func (v IncVector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, inc := range v.inc {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", inc)
	}
	b.WriteByte(']')
	return b.String()
}
