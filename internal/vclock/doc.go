// Package vclock implements the logical-time machinery the recovery
// algorithm relies on: Lamport clocks (used to generate the system-wide
// monotonic recovery ordinal of §3.2) and incarnation vectors (used by live
// processes to reject stale messages that originate from a failed
// incarnation of their sender).
package vclock
