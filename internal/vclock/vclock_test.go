package vclock

import (
	"testing"
	"testing/quick"

	"rollrec/internal/ids"
)

func TestLamportTick(t *testing.T) {
	var l Lamport
	if l.Now() != 0 {
		t.Fatal("zero-value clock must read 0")
	}
	if got := l.Tick(); got != 1 {
		t.Fatalf("first Tick = %d, want 1", got)
	}
	if got := l.Tick(); got != 2 {
		t.Fatalf("second Tick = %d, want 2", got)
	}
}

func TestLamportWitness(t *testing.T) {
	var l Lamport
	l.Tick() // 1
	if got := l.Witness(10); got != 11 {
		t.Fatalf("Witness(10) = %d, want 11", got)
	}
	if got := l.Witness(3); got != 12 {
		t.Fatalf("Witness(3) = %d, want 12 (must still advance)", got)
	}
}

func TestLamportMonotone(t *testing.T) {
	f := func(remotes []uint64) bool {
		var l Lamport
		prev := l.Now()
		for _, r := range remotes {
			now := l.Witness(r % 1000)
			if now <= prev || now <= r%1000 {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIncVectorBasics(t *testing.T) {
	v := NewIncVector(4)
	for p := ids.ProcID(0); p < 4; p++ {
		if v.Get(p) != 1 {
			t.Fatalf("initial incarnation of %v = %d, want 1", p, v.Get(p))
		}
	}
	if v.Get(ids.StorageProc) != 1 {
		t.Fatal("storage process must always be incarnation 1")
	}
	if v.Get(99) != 0 {
		t.Fatal("out-of-range process must report 0")
	}
}

func TestIncVectorBump(t *testing.T) {
	v := NewIncVector(3)
	if !v.Bump(1, 2) {
		t.Fatal("bump to newer incarnation must change vector")
	}
	if v.Bump(1, 2) {
		t.Fatal("re-bump to same incarnation must be a no-op")
	}
	if v.Bump(1, 1) {
		t.Fatal("bump to older incarnation must be a no-op")
	}
	if v.Get(1) != 2 {
		t.Fatalf("Get(1) = %d, want 2", v.Get(1))
	}
	if v.Bump(ids.StorageProc, 5) {
		t.Fatal("storage process incarnation must never change")
	}
}

func TestIncVectorStale(t *testing.T) {
	v := NewIncVector(3)
	v.Bump(2, 3)
	if v.Stale(2, 3) {
		t.Fatal("current incarnation must not be stale")
	}
	if !v.Stale(2, 2) {
		t.Fatal("older incarnation must be stale")
	}
	if v.Stale(2, 4) {
		t.Fatal("newer incarnation must not be stale")
	}
	if v.Stale(ids.StorageProc, 1) {
		t.Fatal("storage process is never stale")
	}
}

func TestIncVectorMerge(t *testing.T) {
	a := NewIncVector(3)
	b := NewIncVector(3)
	a.Bump(0, 5)
	b.Bump(1, 4)
	if !a.Merge(b) {
		t.Fatal("merge bringing news must report change")
	}
	if a.Get(0) != 5 || a.Get(1) != 4 || a.Get(2) != 1 {
		t.Fatalf("merge result wrong: %v", a)
	}
	if a.Merge(b) {
		t.Fatal("second merge must be a no-op")
	}
}

func vecFrom(raw []uint8, n int) IncVector {
	v := NewIncVector(n)
	for i, r := range raw {
		v.Bump(ids.ProcID(i%n), ids.Incarnation(1+r%7))
	}
	return v
}

func TestQuickMergeCommutative(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 8
		a1, b1 := vecFrom(xs, n), vecFrom(ys, n)
		a2, b2 := b1.Clone(), a1.Clone()
		a1.Merge(b1)
		a2.Merge(b2)
		return a1.Equal(a2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeIdempotent(t *testing.T) {
	f := func(xs []uint8) bool {
		const n = 8
		a := vecFrom(xs, n)
		b := a.Clone()
		if a.Merge(b) {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeAssociative(t *testing.T) {
	f := func(xs, ys, zs []uint8) bool {
		const n = 8
		// (a ∨ b) ∨ c == a ∨ (b ∨ c)
		left := vecFrom(xs, n)
		left.Merge(vecFrom(ys, n))
		left.Merge(vecFrom(zs, n))
		bc := vecFrom(ys, n)
		bc.Merge(vecFrom(zs, n))
		right := vecFrom(xs, n)
		right.Merge(bc)
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSliceRoundTrip(t *testing.T) {
	v := NewIncVector(5)
	v.Bump(3, 9)
	got := FromSlice(v.Slice())
	if !got.Equal(v) {
		t.Fatalf("round trip mismatch: %v vs %v", got, v)
	}
}
