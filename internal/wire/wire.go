// Package wire defines the protocol message vocabulary (the envelope) and a
// hand-written binary codec for it.
//
// Both runtimes transmit encoded bytes rather than shared pointers: every
// delivery round-trips through the codec, which guarantees processes share
// no mutable state and gives the network model exact message sizes — the
// quantity the paper's "communication overhead" metric counts.
package wire

import (
	"rollrec/internal/det"
	"rollrec/internal/ids"
)

// Kind discriminates envelope types.
type Kind uint8

// Envelope kinds. The first group is the failure-free protocol (§2); the
// second group is the recovery algorithm (§3.4).
const (
	// KindApp carries an application payload plus the causal piggyback of
	// not-yet-stable determinants.
	KindApp Kind = iota + 1
	// KindCheckpointNotice announces that the sender checkpointed: peers can
	// garbage-collect determinants and sender-log entries the checkpoint
	// covers.
	KindCheckpointNotice
	// KindDetsToStorage streams determinants to the stable-storage
	// pseudo-process (f = n instance only).
	KindDetsToStorage
	// KindStorageAck acknowledges determinants durably held by storage.
	KindStorageAck
	// KindHeartbeat feeds the failure detector.
	KindHeartbeat

	// KindRecoveryAnnounce is broadcast by a process entering recovery: it
	// carries the new incarnation and the recovery ordinal (§3.2 "ord").
	KindRecoveryAnnounce
	// KindIncRequest is the leader's step-4 query to a recovering process.
	KindIncRequest
	// KindIncReply answers with the recovering process's incarnation.
	KindIncReply
	// KindDepRequest is the leader's step-5 query to a live process; it
	// carries the leader's incvector so the live process starts rejecting
	// stale messages before replying.
	KindDepRequest
	// KindDepReply returns a live process's entire determinant log.
	KindDepReply
	// KindRecoveryData is the leader's step-6 delivery of the aggregated
	// depinfo to each recovering process.
	KindRecoveryData
	// KindRecoveryComplete tells live processes the gather finished; the
	// blocking baseline unblocks on it.
	KindRecoveryComplete
	// KindReplayRequest asks a sender to retransmit logged messages by id.
	KindReplayRequest
	// KindRecovered is broadcast by a process that finished replaying.
	KindRecovered

	// Coordinated-checkpointing comparator (Chandy–Lamport snapshots with
	// global rollback; see internal/coord).
	//
	// KindMarker is the snapshot marker flooding every channel.
	KindMarker
	// KindSnapState carries a participant's local snapshot acknowledgment
	// to the initiator.
	KindSnapState
	// KindSnapCommit announces that a global snapshot is complete and is
	// now the recovery line.
	KindSnapCommit
	// KindRollback orders every process back to the committed recovery
	// line after a failure.
	KindRollback

	kindMax
)

// KindCount is the size any array indexed by Kind must have (kinds start
// at 1; index 0 is unused). The metrics package sizes its per-kind counter
// arrays with it, so adding a kind above automatically widens them.
const KindCount = int(kindMax)

// String names the kind for traces.
func (k Kind) String() string {
	names := [...]string{
		KindApp:              "app",
		KindCheckpointNotice: "cp-notice",
		KindDetsToStorage:    "dets-to-storage",
		KindStorageAck:       "storage-ack",
		KindHeartbeat:        "heartbeat",
		KindRecoveryAnnounce: "rec-announce",
		KindIncRequest:       "inc-request",
		KindIncReply:         "inc-reply",
		KindDepRequest:       "dep-request",
		KindDepReply:         "dep-reply",
		KindRecoveryData:     "rec-data",
		KindRecoveryComplete: "rec-complete",
		KindReplayRequest:    "replay-request",
		KindRecovered:        "recovered",
		KindMarker:           "cl-marker",
		KindSnapState:        "cl-snap-state",
		KindSnapCommit:       "cl-snap-commit",
		KindRollback:         "cl-rollback",
	}
	if int(k) < len(names) && names[k] != "" {
		return names[k]
	}
	return "kind?"
}

// Control reports whether the kind is protocol control traffic (as opposed
// to an application message). The paper's communication-overhead metric
// counts exactly these during recovery.
func (k Kind) Control() bool { return k != KindApp }

// Envelope is the single on-wire message type; unused fields stay at their
// zero values and cost two bytes of presence bitmap.
type Envelope struct {
	Kind    Kind
	From    ids.ProcID
	To      ids.ProcID
	FromInc ids.Incarnation

	// Application path.
	SSN  ids.SSN // sender-global send sequence number (KindApp)
	Dseq uint64  // per-destination sequence for duplicate suppression;
	// on KindReplayRequest it is the requester's delivered watermark instead
	Payload []byte      // application bytes (KindApp)
	Dets    []det.Entry // piggyback, dep replies, recovery data, storage stream

	// Checkpoint notices.
	CPRsn         ids.RSN   // receiver-order watermark covered by the checkpoint
	SSNWatermarks []ids.SSN // per-sender delivered-SSN watermarks
	// CPDseq piggybacks the sender's checkpoint-time delivered watermark
	// for the destination on KindApp frames (fanout mode): the receiver can
	// garbage-collect sender-log entries the watermark covers without
	// waiting for a direct checkpoint notice.
	CPDseq uint64

	// Recovery protocol.
	Ord    ids.Ordinal       // recovery ordinal of the round
	Round  uint32            // gather attempt counter within one ordinal
	IncVec []ids.Incarnation // leader's incarnation vector
	MsgIDs []ids.MsgID       // replay requests, storage acks
	// Members lists the recovering processes a KindDepRequest gathers for;
	// live repliers and the storage node scope their determinant logs to
	// these receivers instead of shipping the whole log. Empty means
	// unscoped (the pre-fanout behavior).
	Members []ids.ProcID
}

// Clone returns a deep copy of the envelope.
func (e *Envelope) Clone() *Envelope {
	c := *e
	if e.Payload != nil {
		c.Payload = append([]byte(nil), e.Payload...)
	}
	if e.Dets != nil {
		c.Dets = make([]det.Entry, len(e.Dets))
		for i := range e.Dets {
			c.Dets[i] = e.Dets[i].Clone()
		}
	}
	if e.SSNWatermarks != nil {
		c.SSNWatermarks = append([]ids.SSN(nil), e.SSNWatermarks...)
	}
	if e.IncVec != nil {
		c.IncVec = append([]ids.Incarnation(nil), e.IncVec...)
	}
	if e.MsgIDs != nil {
		c.MsgIDs = append([]ids.MsgID(nil), e.MsgIDs...)
	}
	if e.Members != nil {
		c.Members = append([]ids.ProcID(nil), e.Members...)
	}
	return &c
}
