package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rollrec/internal/bitset"
	"rollrec/internal/det"
	"rollrec/internal/ids"
)

func sampleEnvelopes() []*Envelope {
	return []*Envelope{
		{Kind: KindHeartbeat, From: 1, To: 2, FromInc: 1},
		{
			Kind: KindApp, From: 0, To: 3, FromInc: 2, SSN: 77, Dseq: 12,
			Payload: []byte("hello"),
			Dets: []det.Entry{
				{
					Det:     det.Determinant{Msg: ids.MsgID{Sender: 0, SSN: 1}, Receiver: 3, RSN: 9},
					Holders: bitset.FromSlice([]int{0, 3, 64}),
				},
			},
		},
		{
			Kind: KindCheckpointNotice, From: 2, To: 0, FromInc: 1,
			CPRsn: 42, SSNWatermarks: []ids.SSN{1, 0, 7, 3},
		},
		{
			Kind: KindDepRequest, From: 1, To: 2, FromInc: 3,
			Ord: ids.Ordinal{Clock: 12, Proc: 1}, Round: 2,
			IncVec: []ids.Incarnation{1, 3, 1, 2},
		},
		{
			Kind: KindReplayRequest, From: 1, To: 0, FromInc: 3,
			MsgIDs: []ids.MsgID{{Sender: 0, SSN: 4}, {Sender: 0, SSN: 5}},
		},
		{
			Kind: KindDetsToStorage, From: 2, To: ids.StorageProc, FromInc: 1,
			Dets: []det.Entry{
				{Det: det.Determinant{Msg: ids.MsgID{Sender: 2, SSN: 8}, Receiver: 1, RSN: 3}},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, e := range sampleEnvelopes() {
		frame := Encode(e)
		got, err := Decode(frame)
		if err != nil {
			t.Fatalf("%v: decode: %v", e.Kind, err)
		}
		if !equalEnvelopes(e, got) {
			t.Fatalf("%v: round trip mismatch:\n in: %+v\nout: %+v", e.Kind, e, got)
		}
	}
}

// equalEnvelopes compares semantically: bitsets with different capacities
// but equal contents compare equal.
func equalEnvelopes(a, b *Envelope) bool {
	if a.Kind != b.Kind || a.From != b.From || a.To != b.To || a.FromInc != b.FromInc ||
		a.SSN != b.SSN || a.Dseq != b.Dseq || a.CPRsn != b.CPRsn || a.Ord != b.Ord || a.Round != b.Round ||
		a.CPDseq != b.CPDseq {
		return false
	}
	if !bytes.Equal(a.Payload, b.Payload) {
		return false
	}
	if len(a.Dets) != len(b.Dets) {
		return false
	}
	for i := range a.Dets {
		if a.Dets[i].Det != b.Dets[i].Det || !a.Dets[i].Holders.Equal(b.Dets[i].Holders) {
			return false
		}
	}
	if len(a.SSNWatermarks) != len(b.SSNWatermarks) || len(a.IncVec) != len(b.IncVec) ||
		len(a.MsgIDs) != len(b.MsgIDs) || len(a.Members) != len(b.Members) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	for i := range a.SSNWatermarks {
		if a.SSNWatermarks[i] != b.SSNWatermarks[i] {
			return false
		}
	}
	for i := range a.IncVec {
		if a.IncVec[i] != b.IncVec[i] {
			return false
		}
	}
	for i := range a.MsgIDs {
		if a.MsgIDs[i] != b.MsgIDs[i] {
			return false
		}
	}
	return true
}

func TestSizeMatchesEncode(t *testing.T) {
	for _, e := range sampleEnvelopes() {
		if got, want := Size(e), len(Encode(e)); got != want {
			t.Errorf("%v: Size = %d, Encode length = %d", e.Kind, got, want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	good := Encode(sampleEnvelopes()[1])

	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); err == nil {
			t.Fatal("decoding empty frame must fail")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 99
		if _, err := Decode(bad); err == nil {
			t.Fatal("bad version must fail")
		}
	})
	t.Run("bad kind", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[1] = 0
		if _, err := Decode(bad); err == nil {
			t.Fatal("kind 0 must fail")
		}
		bad[1] = byte(kindMax)
		if _, err := Decode(bad); err == nil {
			t.Fatal("kind out of range must fail")
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for cut := 1; cut < len(good); cut++ {
			if _, err := Decode(good[:cut]); err == nil {
				t.Fatalf("truncation at %d must fail", cut)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := Decode(append(append([]byte(nil), good...), 0xFF)); err == nil {
			t.Fatal("trailing bytes must fail")
		}
	})
}

// randomEnvelope builds an arbitrary but valid envelope from fuzz input.
func randomEnvelope(rng *rand.Rand) *Envelope {
	e := &Envelope{
		Kind:    Kind(1 + rng.Intn(int(kindMax)-1)),
		From:    ids.ProcID(rng.Intn(8)),
		To:      ids.ProcID(rng.Intn(8)),
		FromInc: ids.Incarnation(rng.Intn(5)),
		SSN:     ids.SSN(rng.Intn(100)),
		Dseq:    uint64(rng.Intn(50)),
		Round:   uint32(rng.Intn(3)),
		CPRsn:   ids.RSN(rng.Intn(50)),
	}
	if rng.Intn(2) == 0 {
		e.Payload = make([]byte, rng.Intn(64))
		rng.Read(e.Payload)
	}
	if rng.Intn(3) == 0 {
		e.CPDseq = uint64(1 + rng.Intn(50))
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		e.Members = append(e.Members, ids.ProcID(rng.Intn(1024)))
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		holders := bitset.Set{}
		// Span the full n=1024 universe (and occasionally beyond) so the
		// fuzz covers every holder encoding the chooser can pick.
		universe := []int{65, 1025, 70_000}[rng.Intn(3)]
		for j, m := 0, rng.Intn(40); j < m; j++ {
			holders.Add(rng.Intn(universe))
		}
		if rng.Intn(4) == 0 { // long runs favor the RLE form
			start := rng.Intn(1024)
			for j, m := 0, rng.Intn(200); j < m; j++ {
				holders.Add(start + j)
			}
		}
		e.Dets = append(e.Dets, det.Entry{
			Det: det.Determinant{
				Msg:      ids.MsgID{Sender: ids.ProcID(rng.Intn(8)), SSN: ids.SSN(rng.Intn(1000))},
				Receiver: ids.ProcID(rng.Intn(8)),
				RSN:      ids.RSN(rng.Intn(1000)),
			},
			Holders: holders,
		})
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		e.SSNWatermarks = append(e.SSNWatermarks, ids.SSN(rng.Intn(100)))
		e.IncVec = append(e.IncVec, ids.Incarnation(rng.Intn(5)))
		e.MsgIDs = append(e.MsgIDs, ids.MsgID{Sender: ids.ProcID(rng.Intn(8)), SSN: ids.SSN(rng.Intn(100))})
	}
	if rng.Intn(3) == 0 {
		e.Ord = ids.Ordinal{Clock: uint64(1 + rng.Intn(100)), Proc: ids.ProcID(rng.Intn(8))}
	}
	return e
}

func TestQuickRoundTripAndSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomEnvelope(rng)
		frame := Encode(e)
		if len(frame) != Size(e) {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			return false
		}
		return equalEnvelopes(e, got)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeNeverPanics feeds random bytes to the decoder; it must
// return an error or an envelope, never panic or over-allocate.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(frame []byte) bool {
		_, _ = Decode(frame)
		return true
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := sampleEnvelopes()[1]
	c := e.Clone()
	c.Payload[0] = 'X'
	c.Dets[0].Holders.Add(50)
	if e.Payload[0] == 'X' {
		t.Fatal("Clone shares payload")
	}
	if e.Dets[0].Holders.Contains(50) {
		t.Fatal("Clone shares holder sets")
	}
	if !reflect.DeepEqual(e.Kind, c.Kind) || e.SSN != c.SSN {
		t.Fatal("Clone lost fields")
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(1); k < kindMax; k++ {
		if k.String() == "kind?" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(0).String() != "kind?" || Kind(200).String() != "kind?" {
		t.Error("unknown kinds must render as kind?")
	}
	if KindApp.Control() {
		t.Error("app messages are not control traffic")
	}
	if !KindDepRequest.Control() {
		t.Error("dep requests are control traffic")
	}
}

func BenchmarkEncodeApp(b *testing.B) {
	e := sampleEnvelopes()[1]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(e)
	}
}

func BenchmarkDecodeApp(b *testing.B) {
	frame := Encode(sampleEnvelopes()[1])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
