package wire

import (
	"errors"
	"testing"
)

// holderFrame assembles a KindApp frame whose single determinant entry
// carries hand-written holder-set bytes, for exercising the decoder's
// corrupted-encoding guards.
func holderFrame(holders func(w *Writer)) []byte {
	w := NewWriter(64)
	w.U8(2)        // codec version
	w.U8(1)        // KindApp
	w.I32(0)       // from
	w.I32(1)       // to
	w.U32(0)       // inc
	w.U16(hasDets) // presence
	w.U32(1)       // one entry
	w.I32(0)       // det sender
	w.U64(7)       // det ssn
	w.I32(1)       // det receiver
	w.U64(9)       // det rsn
	holders(w)
	return w.Frame()
}

// TestDecodeHolderAmplificationGuards pins two fuzzer findings: a tiny
// frame must not be able to demand work or memory wildly out of proportion
// to its size. Overlapping run-length runs (which the encoder never emits)
// could expand ~30 bytes into millions of set inserts, and a dense-u16
// word count was allocated before checking the words were present.
func TestDecodeHolderAmplificationGuards(t *testing.T) {
	overlapping := holderFrame(func(w *Writer) {
		w.U8(holderTagRuns)
		w.U16(2)
		w.U16(0)
		w.U16(0xFFFF) // run [0,65535]
		w.U16(0)
		w.U16(0xFFFF) // the same run again: 131072 > 65536 elements
	})
	if _, err := Decode(overlapping); !errors.Is(err, ErrBadHolders) {
		t.Fatalf("overlapping runs decoded with err=%v, want ErrBadHolders", err)
	}

	truncatedDense := holderFrame(func(w *Writer) {
		w.U8(holderTagDenseU16)
		w.U16(0xFFFF) // claims 65535 words (512 KiB) with none present
	})
	if _, err := Decode(truncatedDense); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated dense-u16 decoded with err=%v, want ErrTruncated", err)
	}
}

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder. Three
// properties must hold for every input:
//
//  1. Decode never panics — corrupted frames fail with an error.
//  2. Any envelope Decode accepts is re-encodable (EncodeChecked must not
//     reject a frame the decoder considered well-formed), and Size agrees
//     with the encoder byte-for-byte.
//  3. Re-encoding then decoding is semantically lossless. Byte-identity is
//     NOT required: Decode accepts v1 frames and presence bits the encoder
//     would normalize away, but the envelope's meaning must survive the
//     round trip.
//
// The seed corpus covers every envelope kind via the codec tests' sample
// envelopes, both as emitted (v2) and with the version byte rewritten to 1
// (small holder sets keep the v1 layout, so many of these are exactly what
// a v1 encoder produced), plus a few degenerate frames.
func FuzzDecodeFrame(f *testing.F) {
	for _, e := range sampleEnvelopes() {
		frame := Encode(e)
		f.Add(frame)
		v1 := append([]byte(nil), frame...)
		v1[0] = 1
		f.Add(v1)
	}
	f.Add([]byte{})
	f.Add([]byte{2})
	f.Add([]byte{2, 1})
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		frame, err := EncodeChecked(e)
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v\nenvelope: %+v", err, e)
		}
		if got := Size(e); got != len(frame) {
			t.Fatalf("Size reports %d, encoder produced %d bytes", got, len(frame))
		}
		e2, err := Decode(frame)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !equalEnvelopes(e, e2) {
			t.Fatalf("round trip changed the envelope:\n first: %+v\nsecond: %+v", e, e2)
		}
	})
}
