package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"rollrec/internal/bitset"
	"rollrec/internal/det"
	"rollrec/internal/ids"
)

// codecVersion is bumped on any incompatible format change.
//
// Version history:
//
//	v1 — original format. Determinant holder sets were written as a u8
//	     word count followed by dense 64-bit words, which silently
//	     truncated any set spanning more than 255 words (n > ~16k) and
//	     wasted bytes on sparse sets at large n.
//	v2 — tagged holder-set encodings (dense-u8 / sparse-u16 / run-length /
//	     dense-u16, chosen adaptively by encoded size) plus the CPDseq and
//	     Members envelope fields. Sets spanning at most four words keep the
//	     exact v1 byte layout, so every frame a pre-v2 build could emit at
//	     n <= 256 is unchanged. Decode still accepts v1 frames (old golden
//	     traces remain readable); Encode always emits v2.
const (
	codecVersion     = 2
	minDecodeVersion = 1
)

// maxListLen bounds every decoded list length to catch corrupted frames
// before they trigger huge allocations. Encode enforces the same bound, so
// an encodable frame is always decodable.
const maxListLen = 1 << 22

// Sentinel decoding errors.
var (
	ErrTruncated  = errors.New("wire: truncated frame")
	ErrBadVersion = errors.New("wire: unknown codec version")
	ErrBadKind    = errors.New("wire: unknown envelope kind")
	ErrOversized  = errors.New("wire: list length exceeds limit")
	ErrBadHolders = errors.New("wire: bad holder-set encoding")
	// ErrRange is returned by EncodeChecked when a count or id does not fit
	// its wire representation; the pre-v2 codec silently truncated instead.
	ErrRange = errors.New("wire: value out of encodable range")
)

// Holder-set encoding tags (codec v2). A tag byte of 0..250 IS the dense
// word count — the v1 layout — and the encoder emits it whenever the set
// spans at most holderDenseU8Words words, keeping small-n frames
// byte-identical to v1. Larger sets use one of the tagged forms below,
// whichever encodes smallest.
const (
	holderTagDenseU8Max = 250 // tags 0..250: word count, dense words follow
	holderTagSparse     = 251 // u16 element count, ascending u16 elements
	holderTagRuns       = 252 // u16 run count, (u16 start, u16 end) inclusive pairs
	holderTagDenseU16   = 253 // u16 word count, dense words follow
	holderDenseU8Words  = 4   // dense-u8 cutoff: sets this small keep the v1 layout
)

// Presence bits: only non-empty optional fields are written, keeping the
// common heartbeat/app frames small.
const (
	hasPayload = 1 << iota
	hasDets
	hasCPRsn
	hasSSNWatermarks
	hasOrd
	hasRound
	hasIncVec
	hasMsgIDs
	hasSSN
	hasDseq
	hasCPDseq  // v2
	hasMembers // v2
)

// Writer is a little-endian append-only frame builder shared by the envelope
// codec and the checkpoint codec. The zero value is ready to use.
type Writer struct{ buf []byte }

// NewWriter returns a writer with the given initial capacity.
func NewWriter(capacity int) *Writer { return &Writer{buf: make([]byte, 0, capacity)} }

// Frame returns the accumulated bytes.
func (w *Writer) Frame() []byte { return w.buf }

func (w *Writer) U8(v uint8)   { w.buf = append(w.buf, v) }
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *Writer) I32(v int32)  { w.U32(uint32(v)) }
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader is the matching cursor-based frame parser. Errors are sticky: after
// the first failure every subsequent read returns zero values and Err()
// reports the cause.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over the given frame.
func NewReader(frame []byte) *Reader { return &Reader{buf: frame} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Done reports whether the whole frame was consumed without error.
func (r *Reader) Done() bool { return r.err == nil && r.off == len(r.buf) }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return false
	}
	return true
}

func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *Reader) I32() int32 { return int32(r.U32()) }

func (r *Reader) ListLen() int {
	n := r.U32()
	if n > maxListLen {
		r.fail(ErrOversized)
		return 0
	}
	return int(n)
}

func (r *Reader) Bytes() []byte {
	n := r.ListLen()
	if n == 0 || !r.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+n])
	r.off += n
	return out
}

func presence(e *Envelope) uint16 {
	var p uint16
	if len(e.Payload) > 0 {
		p |= hasPayload
	}
	if len(e.Dets) > 0 {
		p |= hasDets
	}
	if e.CPRsn != 0 {
		p |= hasCPRsn
	}
	if len(e.SSNWatermarks) > 0 {
		p |= hasSSNWatermarks
	}
	if !e.Ord.IsZero() {
		p |= hasOrd
	}
	if e.Round != 0 {
		p |= hasRound
	}
	if len(e.IncVec) > 0 {
		p |= hasIncVec
	}
	if len(e.MsgIDs) > 0 {
		p |= hasMsgIDs
	}
	if e.SSN != 0 {
		p |= hasSSN
	}
	if e.Dseq != 0 {
		p |= hasDseq
	}
	if e.CPDseq != 0 {
		p |= hasCPDseq
	}
	if len(e.Members) > 0 {
		p |= hasMembers
	}
	return p
}

// checkLen guards every encoded list against the decoder's bound so an
// encodable frame is always decodable.
func checkLen(what string, n int) error {
	if n > maxListLen {
		return fmt.Errorf("%w: %s length %d exceeds %d", ErrRange, what, n, maxListLen)
	}
	return nil
}

// Encode serializes the envelope to a self-contained frame. Inside the
// simulator every envelope is encodable by construction (list lengths and
// holder universes are bounded by the cluster size), so an encoding error
// is an invariant violation and panics; external callers that handle
// untrusted or generated envelopes should use EncodeChecked.
func Encode(e *Envelope) []byte {
	frame, err := EncodeChecked(e)
	if err != nil {
		panic(fmt.Sprintf("wire: unencodable envelope: %v", err))
	}
	return frame
}

// EncodeChecked serializes the envelope, returning an error (wrapping
// ErrRange) instead of truncating when a count or holder set exceeds its
// wire representation.
func EncodeChecked(e *Envelope) ([]byte, error) {
	w := &Writer{buf: make([]byte, 0, 64+len(e.Payload))}
	w.U8(codecVersion)
	w.U8(uint8(e.Kind))
	w.I32(int32(e.From))
	w.I32(int32(e.To))
	w.U32(uint32(e.FromInc))
	p := presence(e)
	w.U16(p)
	if p&hasSSN != 0 {
		w.U64(uint64(e.SSN))
	}
	if p&hasDseq != 0 {
		w.U64(e.Dseq)
	}
	if p&hasPayload != 0 {
		if err := checkLen("payload", len(e.Payload)); err != nil {
			return nil, err
		}
		w.Bytes(e.Payload)
	}
	if p&hasDets != 0 {
		if err := checkLen("dets", len(e.Dets)); err != nil {
			return nil, err
		}
		w.U32(uint32(len(e.Dets)))
		for i := range e.Dets {
			if err := encodeEntry(w, &e.Dets[i]); err != nil {
				return nil, err
			}
		}
	}
	if p&hasCPRsn != 0 {
		w.U64(uint64(e.CPRsn))
	}
	if p&hasSSNWatermarks != 0 {
		if err := checkLen("ssn-watermarks", len(e.SSNWatermarks)); err != nil {
			return nil, err
		}
		w.U32(uint32(len(e.SSNWatermarks)))
		for _, s := range e.SSNWatermarks {
			w.U64(uint64(s))
		}
	}
	if p&hasOrd != 0 {
		w.U64(e.Ord.Clock)
		w.I32(int32(e.Ord.Proc))
	}
	if p&hasRound != 0 {
		w.U32(e.Round)
	}
	if p&hasIncVec != 0 {
		if err := checkLen("incvec", len(e.IncVec)); err != nil {
			return nil, err
		}
		w.U32(uint32(len(e.IncVec)))
		for _, inc := range e.IncVec {
			w.U32(uint32(inc))
		}
	}
	if p&hasMsgIDs != 0 {
		if err := checkLen("msgids", len(e.MsgIDs)); err != nil {
			return nil, err
		}
		w.U32(uint32(len(e.MsgIDs)))
		for _, id := range e.MsgIDs {
			w.I32(int32(id.Sender))
			w.U64(uint64(id.SSN))
		}
	}
	if p&hasCPDseq != 0 {
		w.U64(e.CPDseq)
	}
	if p&hasMembers != 0 {
		if err := checkLen("members", len(e.Members)); err != nil {
			return nil, err
		}
		w.U32(uint32(len(e.Members)))
		for _, m := range e.Members {
			w.I32(int32(m))
		}
	}
	return w.buf, nil
}

func encodeEntry(w *Writer, e *det.Entry) error {
	w.I32(int32(e.Det.Msg.Sender))
	w.U64(uint64(e.Det.Msg.SSN))
	w.I32(int32(e.Det.Receiver))
	w.U64(uint64(e.Det.RSN))
	return encodeHolders(w, e.Holders)
}

// holderEnc picks the cheapest valid v2 encoding for a holder set and
// returns its tag plus the full encoded size (tag byte included); ok is
// false when the set fits no representation (more than 65535 backing
// words). Sets of at most holderDenseU8Words words always take the
// v1-compatible dense-u8 form. Size() relies on this function to stay in
// lockstep with encodeHolders, and it runs per piggybacked determinant on
// the send path, so it must not allocate.
//
//rollvet:hotpath
func holderEnc(s bitset.Set) (tag uint8, size int, ok bool) {
	words := s.Words()
	nw := len(words)
	if nw <= holderDenseU8Words {
		return uint8(nw), 1 + 8*nw, true
	}
	tag, size = 0, -1
	if nw <= 0xFFFF {
		tag, size = holderTagDenseU16, 3+8*nw
	}
	maxElem := nw*64 - 1 - bits.LeadingZeros64(words[nw-1])
	if maxElem <= 0xFFFF {
		if runs := s.RunCount(); size < 0 || 3+4*runs < size {
			tag, size = holderTagRuns, 3+4*runs
		}
		if count := s.Count(); count <= 0xFFFF && (size < 0 || 3+2*count <= size) {
			tag, size = holderTagSparse, 3+2*count
		}
	}
	if size < 0 {
		return 0, 0, false
	}
	return tag, size, true
}

func encodeHolders(w *Writer, s bitset.Set) error {
	tag, _, ok := holderEnc(s)
	if !ok {
		return fmt.Errorf("%w: holder set spans %d words", ErrRange, len(s.Words()))
	}
	w.U8(tag)
	words := s.Words()
	switch {
	case tag <= holderTagDenseU8Max:
		for _, word := range words {
			w.U64(word)
		}
	case tag == holderTagSparse:
		w.U16(uint16(s.Count()))
		for wi, word := range words {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				w.U16(uint16(wi*64 + b))
				word &= word - 1
			}
		}
	case tag == holderTagRuns:
		w.U16(uint16(s.RunCount()))
		start, prev := -1, -2
		for wi, word := range words {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				e := wi*64 + b
				if e != prev+1 {
					if start >= 0 {
						w.U16(uint16(start))
						w.U16(uint16(prev))
					}
					start = e
				}
				prev = e
				word &= word - 1
			}
		}
		if start >= 0 {
			w.U16(uint16(start))
			w.U16(uint16(prev))
		}
	case tag == holderTagDenseU16:
		w.U16(uint16(len(words)))
		for _, word := range words {
			w.U64(word)
		}
	}
	return nil
}

func readHolderWords(r *Reader, nw int) bitset.Set {
	// Check the words are actually present before allocating: a corrupted
	// word count must not provoke a large allocation from a tiny frame.
	if nw == 0 || !r.need(8*nw) {
		return bitset.Set{}
	}
	words := make([]uint64, nw)
	for i := range words {
		words[i] = r.U64()
	}
	if r.err != nil {
		return bitset.Set{}
	}
	return bitset.FromWords(words)
}

func decodeHolders(r *Reader, version uint8) bitset.Set {
	if version < 2 {
		return readHolderWords(r, int(r.U8()))
	}
	tag := r.U8()
	switch {
	case tag <= holderTagDenseU8Max:
		return readHolderWords(r, int(tag))
	case tag == holderTagSparse:
		n := int(r.U16())
		if !r.need(2 * n) {
			return bitset.Set{}
		}
		maxElem := 0
		base := r.off
		for i := 0; i < n; i++ {
			if e := int(binary.LittleEndian.Uint16(r.buf[base+2*i:])); e > maxElem {
				maxElem = e
			}
		}
		s := bitset.New(maxElem + 1)
		for i := 0; i < n; i++ {
			s.Add(int(r.U16()))
		}
		return s
	case tag == holderTagRuns:
		n := int(r.U16())
		if !r.need(4 * n) {
			return bitset.Set{}
		}
		base := r.off
		maxEnd, total := 0, 0
		for i := 0; i < n; i++ {
			start := int(binary.LittleEndian.Uint16(r.buf[base+4*i:]))
			end := int(binary.LittleEndian.Uint16(r.buf[base+4*i+2:]))
			if end < start {
				r.fail(fmt.Errorf("%w: run [%d,%d]", ErrBadHolders, start, end))
				return bitset.Set{}
			}
			total += end - start + 1
			// u16 runs can cover at most 65536 distinct elements; a larger
			// total means overlapping runs, which the encoder never emits
			// and which would let a ~30-byte frame demand millions of set
			// inserts (a decode-side amplification attack the fuzzer found).
			if total > 1<<16 {
				r.fail(fmt.Errorf("%w: runs expand to %d elements", ErrBadHolders, total))
				return bitset.Set{}
			}
			if end > maxEnd {
				maxEnd = end
			}
		}
		s := bitset.New(maxEnd + 1)
		for i := 0; i < n; i++ {
			start := int(r.U16())
			end := int(r.U16())
			for e := start; e <= end; e++ {
				s.Add(e)
			}
		}
		return s
	case tag == holderTagDenseU16:
		nw := int(r.U16())
		if nw > maxListLen/8 {
			r.fail(ErrOversized)
			return bitset.Set{}
		}
		return readHolderWords(r, nw)
	default:
		r.fail(fmt.Errorf("%w: tag %d", ErrBadHolders, tag))
		return bitset.Set{}
	}
}

func decodeEntry(r *Reader, version uint8) det.Entry {
	var e det.Entry
	e.Det.Msg.Sender = ids.ProcID(r.I32())
	e.Det.Msg.SSN = ids.SSN(r.U64())
	e.Det.Receiver = ids.ProcID(r.I32())
	e.Det.RSN = ids.RSN(r.U64())
	e.Holders = decodeHolders(r, version)
	return e
}

// Decode parses a frame produced by Encode. Frames from every codec
// version back to minDecodeVersion are accepted, so traces recorded before
// a version bump remain readable.
func Decode(frame []byte) (*Envelope, error) {
	r := &Reader{buf: frame}
	v := r.U8()
	if r.err == nil && (v < minDecodeVersion || v > codecVersion) {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	kind := Kind(r.U8())
	if r.err == nil && (kind == 0 || kind >= kindMax) {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
	e := &Envelope{Kind: kind}
	e.From = ids.ProcID(r.I32())
	e.To = ids.ProcID(r.I32())
	e.FromInc = ids.Incarnation(r.U32())
	p := r.U16()
	if p&hasSSN != 0 {
		e.SSN = ids.SSN(r.U64())
	}
	if p&hasDseq != 0 {
		e.Dseq = r.U64()
	}
	if p&hasPayload != 0 {
		e.Payload = r.Bytes()
	}
	if p&hasDets != 0 {
		n := r.ListLen()
		if r.err == nil && n > 0 {
			e.Dets = make([]det.Entry, 0, min(n, 4096))
			for i := 0; i < n && r.err == nil; i++ {
				e.Dets = append(e.Dets, decodeEntry(r, v))
			}
		}
	}
	if p&hasCPRsn != 0 {
		e.CPRsn = ids.RSN(r.U64())
	}
	if p&hasSSNWatermarks != 0 {
		n := r.ListLen()
		if r.err == nil && n > 0 {
			e.SSNWatermarks = make([]ids.SSN, 0, min(n, 4096))
			for i := 0; i < n && r.err == nil; i++ {
				e.SSNWatermarks = append(e.SSNWatermarks, ids.SSN(r.U64()))
			}
		}
	}
	if p&hasOrd != 0 {
		e.Ord.Clock = r.U64()
		e.Ord.Proc = ids.ProcID(r.I32())
	}
	if p&hasRound != 0 {
		e.Round = r.U32()
	}
	if p&hasIncVec != 0 {
		n := r.ListLen()
		if r.err == nil && n > 0 {
			e.IncVec = make([]ids.Incarnation, 0, min(n, 4096))
			for i := 0; i < n && r.err == nil; i++ {
				e.IncVec = append(e.IncVec, ids.Incarnation(r.U32()))
			}
		}
	}
	if p&hasMsgIDs != 0 {
		n := r.ListLen()
		if r.err == nil && n > 0 {
			e.MsgIDs = make([]ids.MsgID, 0, min(n, 4096))
			for i := 0; i < n && r.err == nil; i++ {
				var id ids.MsgID
				id.Sender = ids.ProcID(r.I32())
				id.SSN = ids.SSN(r.U64())
				e.MsgIDs = append(e.MsgIDs, id)
			}
		}
	}
	if p&hasCPDseq != 0 {
		e.CPDseq = r.U64()
	}
	if p&hasMembers != 0 {
		n := r.ListLen()
		if r.err == nil && n > 0 {
			e.Members = make([]ids.ProcID, 0, min(n, 4096))
			for i := 0; i < n && r.err == nil; i++ {
				e.Members = append(e.Members, ids.ProcID(r.I32()))
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(frame) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(frame)-r.off)
	}
	return e, nil
}

// Size returns the encoded length of the envelope without allocating the
// frame; the network model charges bandwidth by this number. It is kept in
// lockstep with Encode by tests.
//
//rollvet:hotpath
func Size(e *Envelope) int {
	n := 1 + 1 + 4 + 4 + 4 + 2 // version, kind, from, to, inc, presence
	p := presence(e)
	if p&hasSSN != 0 {
		n += 8
	}
	if p&hasDseq != 0 {
		n += 8
	}
	if p&hasPayload != 0 {
		n += 4 + len(e.Payload)
	}
	if p&hasDets != 0 {
		n += 4
		for i := range e.Dets {
			_, hn, _ := holderEnc(e.Dets[i].Holders)
			n += 4 + 8 + 4 + 8 + hn
		}
	}
	if p&hasCPRsn != 0 {
		n += 8
	}
	if p&hasSSNWatermarks != 0 {
		n += 4 + 8*len(e.SSNWatermarks)
	}
	if p&hasOrd != 0 {
		n += 12
	}
	if p&hasRound != 0 {
		n += 4
	}
	if p&hasIncVec != 0 {
		n += 4 + 4*len(e.IncVec)
	}
	if p&hasMsgIDs != 0 {
		n += 4 + 12*len(e.MsgIDs)
	}
	if p&hasCPDseq != 0 {
		n += 8
	}
	if p&hasMembers != 0 {
		n += 4 + 4*len(e.Members)
	}
	return n
}
