package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rollrec/internal/bitset"
	"rollrec/internal/det"
	"rollrec/internal/ids"
)

// codecVersion is bumped on any incompatible format change.
const codecVersion = 1

// maxListLen bounds every decoded list length to catch corrupted frames
// before they trigger huge allocations.
const maxListLen = 1 << 22

// Sentinel decoding errors.
var (
	ErrTruncated  = errors.New("wire: truncated frame")
	ErrBadVersion = errors.New("wire: unknown codec version")
	ErrBadKind    = errors.New("wire: unknown envelope kind")
	ErrOversized  = errors.New("wire: list length exceeds limit")
)

// Presence bits: only non-empty optional fields are written, keeping the
// common heartbeat/app frames small.
const (
	hasPayload = 1 << iota
	hasDets
	hasCPRsn
	hasSSNWatermarks
	hasOrd
	hasRound
	hasIncVec
	hasMsgIDs
	hasSSN
	hasDseq
)

// Writer is a little-endian append-only frame builder shared by the envelope
// codec and the checkpoint codec. The zero value is ready to use.
type Writer struct{ buf []byte }

// NewWriter returns a writer with the given initial capacity.
func NewWriter(capacity int) *Writer { return &Writer{buf: make([]byte, 0, capacity)} }

// Frame returns the accumulated bytes.
func (w *Writer) Frame() []byte { return w.buf }

func (w *Writer) U8(v uint8)   { w.buf = append(w.buf, v) }
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *Writer) I32(v int32)  { w.U32(uint32(v)) }
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader is the matching cursor-based frame parser. Errors are sticky: after
// the first failure every subsequent read returns zero values and Err()
// reports the cause.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over the given frame.
func NewReader(frame []byte) *Reader { return &Reader{buf: frame} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Done reports whether the whole frame was consumed without error.
func (r *Reader) Done() bool { return r.err == nil && r.off == len(r.buf) }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return false
	}
	return true
}

func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *Reader) I32() int32 { return int32(r.U32()) }

func (r *Reader) ListLen() int {
	n := r.U32()
	if n > maxListLen {
		r.fail(ErrOversized)
		return 0
	}
	return int(n)
}

func (r *Reader) Bytes() []byte {
	n := r.ListLen()
	if n == 0 || !r.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+n])
	r.off += n
	return out
}

func presence(e *Envelope) uint16 {
	var p uint16
	if len(e.Payload) > 0 {
		p |= hasPayload
	}
	if len(e.Dets) > 0 {
		p |= hasDets
	}
	if e.CPRsn != 0 {
		p |= hasCPRsn
	}
	if len(e.SSNWatermarks) > 0 {
		p |= hasSSNWatermarks
	}
	if !e.Ord.IsZero() {
		p |= hasOrd
	}
	if e.Round != 0 {
		p |= hasRound
	}
	if len(e.IncVec) > 0 {
		p |= hasIncVec
	}
	if len(e.MsgIDs) > 0 {
		p |= hasMsgIDs
	}
	if e.SSN != 0 {
		p |= hasSSN
	}
	if e.Dseq != 0 {
		p |= hasDseq
	}
	return p
}

// Encode serializes the envelope to a self-contained frame.
func Encode(e *Envelope) []byte {
	w := &Writer{buf: make([]byte, 0, 64+len(e.Payload))}
	w.U8(codecVersion)
	w.U8(uint8(e.Kind))
	w.I32(int32(e.From))
	w.I32(int32(e.To))
	w.U32(uint32(e.FromInc))
	p := presence(e)
	w.U16(p)
	if p&hasSSN != 0 {
		w.U64(uint64(e.SSN))
	}
	if p&hasDseq != 0 {
		w.U64(e.Dseq)
	}
	if p&hasPayload != 0 {
		w.Bytes(e.Payload)
	}
	if p&hasDets != 0 {
		w.U32(uint32(len(e.Dets)))
		for i := range e.Dets {
			encodeEntry(w, &e.Dets[i])
		}
	}
	if p&hasCPRsn != 0 {
		w.U64(uint64(e.CPRsn))
	}
	if p&hasSSNWatermarks != 0 {
		w.U32(uint32(len(e.SSNWatermarks)))
		for _, s := range e.SSNWatermarks {
			w.U64(uint64(s))
		}
	}
	if p&hasOrd != 0 {
		w.U64(e.Ord.Clock)
		w.I32(int32(e.Ord.Proc))
	}
	if p&hasRound != 0 {
		w.U32(e.Round)
	}
	if p&hasIncVec != 0 {
		w.U32(uint32(len(e.IncVec)))
		for _, inc := range e.IncVec {
			w.U32(uint32(inc))
		}
	}
	if p&hasMsgIDs != 0 {
		w.U32(uint32(len(e.MsgIDs)))
		for _, id := range e.MsgIDs {
			w.I32(int32(id.Sender))
			w.U64(uint64(id.SSN))
		}
	}
	return w.buf
}

func encodeEntry(w *Writer, e *det.Entry) {
	w.I32(int32(e.Det.Msg.Sender))
	w.U64(uint64(e.Det.Msg.SSN))
	w.I32(int32(e.Det.Receiver))
	w.U64(uint64(e.Det.RSN))
	words := e.Holders.Words()
	w.U8(uint8(len(words)))
	for _, word := range words {
		w.U64(word)
	}
}

func decodeEntry(r *Reader) det.Entry {
	var e det.Entry
	e.Det.Msg.Sender = ids.ProcID(r.I32())
	e.Det.Msg.SSN = ids.SSN(r.U64())
	e.Det.Receiver = ids.ProcID(r.I32())
	e.Det.RSN = ids.RSN(r.U64())
	nw := int(r.U8())
	if nw > 0 {
		words := make([]uint64, nw)
		for i := range words {
			words[i] = r.U64()
		}
		e.Holders = bitset.FromWords(words)
	}
	return e
}

// Decode parses a frame produced by Encode.
func Decode(frame []byte) (*Envelope, error) {
	r := &Reader{buf: frame}
	if v := r.U8(); r.err == nil && v != codecVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	kind := Kind(r.U8())
	if r.err == nil && (kind == 0 || kind >= kindMax) {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
	e := &Envelope{Kind: kind}
	e.From = ids.ProcID(r.I32())
	e.To = ids.ProcID(r.I32())
	e.FromInc = ids.Incarnation(r.U32())
	p := r.U16()
	if p&hasSSN != 0 {
		e.SSN = ids.SSN(r.U64())
	}
	if p&hasDseq != 0 {
		e.Dseq = r.U64()
	}
	if p&hasPayload != 0 {
		e.Payload = r.Bytes()
	}
	if p&hasDets != 0 {
		n := r.ListLen()
		if r.err == nil && n > 0 {
			e.Dets = make([]det.Entry, 0, min(n, 4096))
			for i := 0; i < n && r.err == nil; i++ {
				e.Dets = append(e.Dets, decodeEntry(r))
			}
		}
	}
	if p&hasCPRsn != 0 {
		e.CPRsn = ids.RSN(r.U64())
	}
	if p&hasSSNWatermarks != 0 {
		n := r.ListLen()
		if r.err == nil && n > 0 {
			e.SSNWatermarks = make([]ids.SSN, 0, min(n, 4096))
			for i := 0; i < n && r.err == nil; i++ {
				e.SSNWatermarks = append(e.SSNWatermarks, ids.SSN(r.U64()))
			}
		}
	}
	if p&hasOrd != 0 {
		e.Ord.Clock = r.U64()
		e.Ord.Proc = ids.ProcID(r.I32())
	}
	if p&hasRound != 0 {
		e.Round = r.U32()
	}
	if p&hasIncVec != 0 {
		n := r.ListLen()
		if r.err == nil && n > 0 {
			e.IncVec = make([]ids.Incarnation, 0, min(n, 4096))
			for i := 0; i < n && r.err == nil; i++ {
				e.IncVec = append(e.IncVec, ids.Incarnation(r.U32()))
			}
		}
	}
	if p&hasMsgIDs != 0 {
		n := r.ListLen()
		if r.err == nil && n > 0 {
			e.MsgIDs = make([]ids.MsgID, 0, min(n, 4096))
			for i := 0; i < n && r.err == nil; i++ {
				var id ids.MsgID
				id.Sender = ids.ProcID(r.I32())
				id.SSN = ids.SSN(r.U64())
				e.MsgIDs = append(e.MsgIDs, id)
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(frame) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(frame)-r.off)
	}
	return e, nil
}

// Size returns the encoded length of the envelope without allocating the
// frame; the network model charges bandwidth by this number. It is kept in
// lockstep with Encode by tests.
//
//rollvet:hotpath
func Size(e *Envelope) int {
	n := 1 + 1 + 4 + 4 + 4 + 2 // version, kind, from, to, inc, presence
	p := presence(e)
	if p&hasSSN != 0 {
		n += 8
	}
	if p&hasDseq != 0 {
		n += 8
	}
	if p&hasPayload != 0 {
		n += 4 + len(e.Payload)
	}
	if p&hasDets != 0 {
		n += 4
		for i := range e.Dets {
			n += 4 + 8 + 4 + 8 + 1 + 8*len(e.Dets[i].Holders.Words())
		}
	}
	if p&hasCPRsn != 0 {
		n += 8
	}
	if p&hasSSNWatermarks != 0 {
		n += 4 + 8*len(e.SSNWatermarks)
	}
	if p&hasOrd != 0 {
		n += 12
	}
	if p&hasRound != 0 {
		n += 4
	}
	if p&hasIncVec != 0 {
		n += 4 + 4*len(e.IncVec)
	}
	if p&hasMsgIDs != 0 {
		n += 4 + 12*len(e.MsgIDs)
	}
	return n
}
