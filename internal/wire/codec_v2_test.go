package wire

import (
	"errors"
	"testing"

	"rollrec/internal/bitset"
	"rollrec/internal/det"
	"rollrec/internal/ids"
)

// detEnvelope wraps a single holder set in an app envelope, the shape the
// simulator piggybacks determinants in.
func detEnvelope(holders bitset.Set) *Envelope {
	return &Envelope{
		Kind: KindApp, From: 0, To: 1, FromInc: 1, SSN: 1, Dseq: 1,
		Dets: []det.Entry{{
			Det:     det.Determinant{Msg: ids.MsgID{Sender: 0, SSN: 1}, Receiver: 1, RSN: 1},
			Holders: holders,
		}},
	}
}

// rangeSet builds {lo..hi}.
func rangeSet(lo, hi int) bitset.Set {
	s := bitset.New(hi + 1)
	for i := lo; i <= hi; i++ {
		s.Add(i)
	}
	return s
}

// TestHolderEncodingBoundaries round-trips holder sets at every boundary of
// the v2 encoding chooser — exactly the sets the v1 codec either truncated
// (word counts past 255) or stored dense at large n. The pre-fix encoder
// wrote `U8(len(words))`, so any set spanning more than 255 words silently
// lost holders; these sets must now survive encode→decode bit-exactly.
func TestHolderEncodingBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		holders bitset.Set
		wantTag uint8
	}{
		{"empty", bitset.Set{}, 0},
		{"one word", bitset.FromSlice([]int{0, 63}), 1},
		{"four words (dense-u8 cutoff)", bitset.FromSlice([]int{0, 255}), 4},
		{"five words, two elems", bitset.FromSlice([]int{0, 256}), holderTagSparse},
		{"n=1024 quorum (f+1 sparse)", bitset.FromSlice([]int{3, 500, 1024}), holderTagSparse},
		{"n=1024 full run", rangeSet(0, 1024), holderTagRuns},
		{"straddling run", rangeSet(60, 70), 2}, // two words: dense-u8 still smallest
		{"255-word boundary (v1 max)", bitset.FromSlice([]int{255*64 - 1}), holderTagSparse},
		{"256 words (v1 truncated)", bitset.FromSlice([]int{0, 256*64 - 1}), holderTagSparse},
		{"dense past u16 elements", func() bitset.Set {
			// Elements above 65535 rule out sparse and runs; only the
			// dense-u16 form can carry them.
			s := bitset.New(70_001)
			for i := 0; i <= 70_000; i += 2 {
				s.Add(i)
			}
			return s
		}(), holderTagDenseU16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tag, size, ok := holderEnc(c.holders)
			if !ok {
				t.Fatalf("holderEnc rejected the set")
			}
			if tag != c.wantTag {
				t.Errorf("chose tag %d, want %d", tag, c.wantTag)
			}
			e := detEnvelope(c.holders)
			frame := Encode(e)
			if len(frame) != Size(e) {
				t.Errorf("Size = %d, frame length = %d", Size(e), len(frame))
			}
			got, err := Decode(frame)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !got.Dets[0].Holders.Equal(c.holders) {
				t.Fatalf("holders corrupted: sent %d elems, got %d",
					c.holders.Count(), got.Dets[0].Holders.Count())
			}
			// The chooser must never beat itself: the picked form's size is
			// the frame's det-holder block, tag byte included.
			base := len(Encode(detEnvelope(bitset.Set{}))) - 1
			if len(frame)-base != size {
				t.Errorf("holder block costs %d bytes, holderEnc predicted %d", len(frame)-base, size)
			}
		})
	}
}

// TestEncodeRangeErrors proves the codec now refuses, with an explicit
// error, everything the v1 codec silently truncated.
func TestEncodeRangeErrors(t *testing.T) {
	t.Run("holder set past u16 words", func(t *testing.T) {
		// 65536 backing words: no representation left.
		huge := bitset.FromSlice([]int{65536 * 64})
		if _, _, ok := holderEnc(huge); ok {
			t.Fatal("holderEnc accepted a 65537-word set")
		}
		if _, err := EncodeChecked(detEnvelope(huge)); !errors.Is(err, ErrRange) {
			t.Fatalf("EncodeChecked = %v, want ErrRange", err)
		}
		defer func() {
			if recover() == nil {
				t.Fatal("Encode must panic on an unencodable envelope")
			}
		}()
		Encode(detEnvelope(huge))
	})
	t.Run("oversized list", func(t *testing.T) {
		e := &Envelope{Kind: KindDepRequest, From: 0, To: 1, FromInc: 1,
			Members: make([]ids.ProcID, maxListLen+1)}
		if _, err := EncodeChecked(e); !errors.Is(err, ErrRange) {
			t.Fatalf("EncodeChecked = %v, want ErrRange", err)
		}
	})
}

// TestDecodeRejectsBadHolders hand-crafts v2 frames with invalid holder
// blocks; the decoder must fail cleanly rather than fabricate sets.
func TestDecodeRejectsBadHolders(t *testing.T) {
	// Frame skeleton up to the holder tag of a single det entry.
	skel := func() *Writer {
		w := NewWriter(64)
		w.U8(codecVersion)
		w.U8(uint8(KindApp))
		w.I32(0)       // from
		w.I32(1)       // to
		w.U32(1)       // inc
		w.U16(hasDets) // presence
		w.U32(1)       // one entry
		w.I32(0)       // sender
		w.U64(1)       // ssn
		w.I32(1)       // receiver
		w.U64(1)       // rsn
		return w
	}
	t.Run("reserved tag", func(t *testing.T) {
		w := skel()
		w.U8(254)
		if _, err := Decode(w.Frame()); !errors.Is(err, ErrBadHolders) {
			t.Fatalf("Decode = %v, want ErrBadHolders", err)
		}
	})
	t.Run("inverted run", func(t *testing.T) {
		w := skel()
		w.U8(holderTagRuns)
		w.U16(1)
		w.U16(10) // start
		w.U16(5)  // end < start
		if _, err := Decode(w.Frame()); !errors.Is(err, ErrBadHolders) {
			t.Fatalf("Decode = %v, want ErrBadHolders", err)
		}
	})
	t.Run("truncated sparse", func(t *testing.T) {
		w := skel()
		w.U8(holderTagSparse)
		w.U16(3)
		w.U16(7) // only one of three elements present
		if _, err := Decode(w.Frame()); !errors.Is(err, ErrTruncated) {
			t.Fatalf("Decode = %v, want ErrTruncated", err)
		}
	})
}

// TestV1FramesStillDecode pins backward compatibility across the version
// bump: for holder sets of at most four words the v2 byte layout is
// identical to v1 by construction, so rewriting the version byte of a v2
// frame yields exactly the frame a v1 encoder would have produced — and
// the decoder must accept it.
func TestV1FramesStillDecode(t *testing.T) {
	for _, e := range sampleEnvelopes() {
		if e.CPDseq != 0 || len(e.Members) > 0 {
			continue // fields that postdate v1
		}
		frame := Encode(e)
		v1 := append([]byte(nil), frame...)
		v1[0] = 1
		got, err := Decode(v1)
		if err != nil {
			t.Fatalf("%v: v1 decode: %v", e.Kind, err)
		}
		if !equalEnvelopes(e, got) {
			t.Fatalf("%v: v1 round trip mismatch:\n in: %+v\nout: %+v", e.Kind, e, got)
		}
	}
}

// TestV2KeepsSmallFrameBytes pins the compatibility rule the golden trace
// hashes rely on: apart from the version byte, frames whose holder sets
// span at most four words are byte-identical to the v1 encoding (same
// layout, same sizes), so the n<=256 goldens and BENCH snapshots see no
// size change from the codec bump.
func TestV2KeepsSmallFrameBytes(t *testing.T) {
	for _, e := range sampleEnvelopes() {
		for i := range e.Dets {
			if len(e.Dets[i].Holders.Words()) > holderDenseU8Words {
				t.Fatalf("sample %v holder set too large for this pin", e.Kind)
			}
		}
		frame := Encode(e)
		if frame[0] != codecVersion {
			t.Fatalf("version byte = %d, want %d", frame[0], codecVersion)
		}
		// The layout rule: re-decoding as v1 must reconstruct the same
		// envelope (checked above); here we additionally pin the size.
		if len(frame) != Size(e) {
			t.Fatalf("%v: Size = %d, frame = %d", e.Kind, Size(e), len(frame))
		}
	}
}
