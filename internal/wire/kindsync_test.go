package wire

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"rollrec/internal/ids"
)

// These tests are the runtime counterpart of rollvet's static wiresync
// check (internal/analysis): the analyzer proves the constant table, the
// sentinel, KindCount, and the String() names agree in the source; the
// tests here prove the running codec agrees with that table.

// kindConstNames parses wire.go and returns the constant names declared in
// the Kind block (the GenDecl whose first spec is typed Kind), excluding the
// kindMax sentinel. Counting the source directly keeps the test honest even
// if a future refactor forgets to update KindCount.
func kindConstNames(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "wire.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing wire.go: %v", err)
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST || len(gd.Specs) == 0 {
			continue
		}
		first, ok := gd.Specs[0].(*ast.ValueSpec)
		if !ok {
			continue
		}
		if id, ok := first.Type.(*ast.Ident); !ok || id.Name != "Kind" {
			continue
		}
		var names []string
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, n := range vs.Names {
				if n.Name == "kindMax" || n.Name == "_" {
					continue
				}
				names = append(names, n.Name)
			}
		}
		return names
	}
	t.Fatal("wire.go has no Kind constant block")
	return nil
}

// TestKindCountMatchesConstants pins KindCount to the number of declared
// kinds: kinds start at 1, so a block of n kinds implies KindCount == n+1.
func TestKindCountMatchesConstants(t *testing.T) {
	names := kindConstNames(t)
	if got, want := KindCount, len(names)+1; got != want {
		t.Fatalf("KindCount = %d but wire.go declares %d kinds (%v); kindMax is out of sync",
			got, len(names), names)
	}
}

// TestKindStringsCompleteAndUnique walks every runtime kind value: each must
// render a real, distinct trace name, and the first value past the table
// must not.
func TestKindStringsCompleteAndUnique(t *testing.T) {
	seen := make(map[string]Kind, KindCount)
	for k := Kind(1); int(k) < KindCount; k++ {
		s := k.String()
		if s == "kind?" {
			t.Errorf("kind %d has no String() name", k)
			continue
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kind %d and %d share the name %q", prev, k, s)
		}
		seen[s] = k
	}
	if s := Kind(KindCount).String(); s != "kind?" {
		t.Errorf("Kind(KindCount) renders %q; the name table extends past kindMax", s)
	}
}

// TestEveryKindRoundTrips encodes and decodes an envelope of every kind,
// with representative optional fields, proving the codec accepts the whole
// vocabulary and that Size stays in lockstep with Encode.
func TestEveryKindRoundTrips(t *testing.T) {
	for k := Kind(1); int(k) < KindCount; k++ {
		e := &Envelope{
			Kind:    k,
			From:    1,
			To:      2,
			FromInc: 3,
			Dseq:    7,
			Ord:     ids.Ordinal{Clock: 5, Proc: 1},
		}
		frame := Encode(e)
		if len(frame) != Size(e) {
			t.Errorf("%v: Size = %d, encoded length = %d", k, Size(e), len(frame))
		}
		got, err := Decode(frame)
		if err != nil {
			t.Fatalf("%v: decode: %v", k, err)
		}
		if got.Kind != k {
			t.Fatalf("%v: decoded kind %v", k, got.Kind)
		}
		if !equalEnvelopes(e, got) {
			t.Fatalf("%v: round trip mismatch:\n in: %+v\nout: %+v", k, e, got)
		}
	}
	// One past the vocabulary must be rejected, mirroring the decoder's
	// bounds check that wiresync's [1, kindMax) invariant relies on.
	bad := Encode(&Envelope{Kind: KindApp, From: 1, To: 2})
	bad[1] = byte(KindCount)
	if _, err := Decode(bad); err == nil {
		t.Fatal("Decode accepted kind == kindMax")
	}
}
