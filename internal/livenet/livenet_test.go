package livenet

import (
	"sync/atomic"
	"testing"
	"time"

	"rollrec/internal/fbl"
	"rollrec/internal/ids"
	"rollrec/internal/netmodel"
	"rollrec/internal/node"
	"rollrec/internal/recovery"
	"rollrec/internal/storage"
	"rollrec/internal/trace"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

// tinyHW keeps the wall-clock cost of live tests small.
func tinyHW() node.Hardware {
	return node.Hardware{
		Net:            netmodel.Params{Latency: time.Millisecond},
		Disk:           storage.Params{Latency: time.Millisecond},
		WatchdogDetect: 80 * time.Millisecond,
		RestartDelay:   20 * time.Millisecond,
		HeartbeatEvery: 20 * time.Millisecond,
		SuspectAfter:   150 * time.Millisecond,
	}
}

// echoProc counts deliveries and bounces payloads, for runtime-level tests.
type echoProc struct {
	env   node.Env
	count *atomic.Int64
	max   int64
}

func (p *echoProc) Boot(env node.Env, restart bool) {
	p.env = env
	if env.ID() == 0 && !restart {
		env.Send(1, &wire.Envelope{Kind: wire.KindApp, FromInc: 1, SSN: 1})
	}
}

func (p *echoProc) Deliver(e *wire.Envelope) {
	if p.count.Add(1) >= p.max {
		return
	}
	p.env.Send(e.From, &wire.Envelope{Kind: wire.KindApp, FromInc: 1, SSN: e.SSN + 1})
}

func TestEchoAcrossGoroutines(t *testing.T) {
	n := New(Config{HW: tinyHW(), Seed: 1})
	var count atomic.Int64
	for _, id := range []ids.ProcID{0, 1} {
		n.AddNode(id, func() node.Process { return &echoProc{count: &count, max: 20} })
	}
	n.Boot()
	deadline := time.Now().Add(5 * time.Second)
	for count.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	n.Close()
	if count.Load() < 20 {
		t.Fatalf("echo made %d deliveries, want >= 20", count.Load())
	}
}

func TestTimerAndStop(t *testing.T) {
	n := New(Config{HW: tinyHW(), Seed: 1})
	fired := make(chan struct{}, 2)
	var stop node.Timer
	n.AddNode(0, bootFactory(func(env node.Env, _ bool) {
		env.After(10*time.Millisecond, func() { fired <- struct{}{} })
		stop = env.After(10*time.Millisecond, func() { fired <- struct{}{} })
	}))
	n.Boot()
	stop.Stop()
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	case <-time.After(100 * time.Millisecond):
	}
	n.Close()
}

type bootFn struct {
	fn func(env node.Env, restart bool)
}

func (b *bootFn) Boot(env node.Env, restart bool) { b.fn(env, restart) }
func (b *bootFn) Deliver(e *wire.Envelope)        {}

func bootFactory(fn func(env node.Env, restart bool)) node.Factory {
	return func() node.Process { return &bootFn{fn: fn} }
}

func TestStableStorageAcrossCrash(t *testing.T) {
	n := New(Config{HW: tinyHW(), Seed: 1})
	got := make(chan string, 1)
	n.AddNode(0, bootFactory(func(env node.Env, restart bool) {
		if !restart {
			env.WriteStable("k", []byte("v1"), nil)
			return
		}
		env.ReadStable("k", func(data []byte, ok bool) {
			if ok {
				got <- string(data)
			} else {
				got <- "<missing>"
			}
		})
	}))
	n.Boot()
	time.Sleep(50 * time.Millisecond) // let the write land
	n.Crash(0)
	select {
	case v := <-got:
		if v != "v1" {
			t.Fatalf("restart read %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("restart never read storage")
	}
	n.Close()
}

// TestFullProtocolOnLivenet runs the complete FBL stack — the same code the
// simulator runs — on real goroutines, crashes a process mid-computation,
// and waits for its recovery to complete.
func TestFullProtocolOnLivenet(t *testing.T) {
	hw := tinyHW()
	// Record a structured trace: every goroutine hits the shared Recorder,
	// which the race target uses to prove it is concurrency-safe.
	rec := trace.NewRecorder(1 << 14)
	n := New(Config{HW: hw, Seed: 42, Tracer: rec})
	par := fbl.Params{
		N:               3,
		F:               2,
		App:             workload.NewTokenRing(100000, 32, int64(200*time.Microsecond)),
		Style:           recovery.NonBlocking,
		CheckpointEvery: 100 * time.Millisecond,
		StatePad:        1 << 10,
		HeartbeatEvery:  hw.HeartbeatEvery,
		SuspectAfter:    hw.SuspectAfter,
		RetryEvery:      100 * time.Millisecond,
	}
	for i := 0; i < 3; i++ {
		n.AddNode(ids.ProcID(i), fbl.New(par))
	}
	n.Boot()
	time.Sleep(300 * time.Millisecond) // let the ring spin and checkpoint
	n.Crash(1)

	deadline := time.Now().Add(10 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		n.Inspect(1, func(p node.Process) {
			if fp, ok := p.(*fbl.Process); ok && fp.Mode() == fbl.ModeLive && fp.Incarnation() == 2 {
				recovered = true
			}
		})
		if recovered {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	n.Close()
	if !recovered {
		t.Fatal("process 1 never recovered on the live runtime")
	}
	tr := n.Metrics(1).CurrentRecovery()
	if tr == nil || tr.ReplayedAt == 0 {
		t.Fatal("no completed recovery trace")
	}
	// The structured trace must show the crash and a completed replay span.
	var sawCrash, sawReplay bool
	for _, e := range rec.Events() {
		if e.Proc == 1 && e.Name == trace.EvCrash {
			sawCrash = true
		}
		if e.Proc == 1 && e.Name == trace.EvReplay && e.Span && !e.Open {
			sawReplay = true
		}
	}
	if !sawCrash || !sawReplay {
		t.Fatalf("trace missing crash/replay events (crash=%v replay=%v)", sawCrash, sawReplay)
	}
}
