// Package livenet runs the same node.Process protocol code the simulator
// runs, but on real goroutines with real time: one lock-serialized process
// per node, channels-of-control via time.AfterFunc deliveries, and
// per-link FIFO preserved. The examples use it to demonstrate the library
// as an actual concurrent system; the experiments use the simulator for
// determinism.
package livenet

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/node"
	"rollrec/internal/storage"
	"rollrec/internal/timeline"
	"rollrec/internal/trace"
	"rollrec/internal/wire"
)

// Config parameterizes the runtime.
type Config struct {
	// HW is the hardware cost model: network latency/bandwidth and storage
	// latency are honored in (scaled) real time. CPU costs are modeled by
	// sleeping while holding the process lock.
	HW node.Hardware
	// TimeScale maps virtual time to wall time: 0.1 runs ten times faster
	// than the model. Zero means 1.0.
	TimeScale float64
	// Seed drives per-node randomness.
	Seed int64
	// Trace, if non-nil, receives event lines (synchronized).
	Trace io.Writer
	// Tracer, if non-nil, records structured events and spans; it must be
	// safe for concurrent use (trace.Recorder is). Nil disables tracing.
	Tracer trace.Tracer
}

// Net is a running cluster of goroutine-backed nodes. Create with New, add
// nodes, Boot, and Close when done.
type Net struct {
	cfg   Config
	tr    trace.Tracer
	start time.Time

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
	nodes  map[ids.ProcID]*lnode
	nApp   int
	links  map[[2]ids.ProcID]time.Time // per-link FIFO frontier
	traceM sync.Mutex
}

// New returns an empty runtime.
func New(cfg Config) *Net {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	return &Net{
		cfg:   cfg,
		tr:    trace.OrNop(cfg.Tracer),
		start: time.Now(),
		nodes: make(map[ids.ProcID]*lnode),
		links: make(map[[2]ids.ProcID]time.Time),
	}
}

// scale converts a virtual duration to wall time.
func (n *Net) scale(d time.Duration) time.Duration {
	return time.Duration(float64(d) * n.cfg.TimeScale)
}

// vnow returns virtual nanoseconds since start.
func (n *Net) vnow() int64 {
	return int64(float64(time.Since(n.start)) / n.cfg.TimeScale)
}

// enter registers an in-flight callback; it returns false after Close.
func (n *Net) enter() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.wg.Add(1)
	return true
}

func (n *Net) exit() { n.wg.Done() }

// AddNode registers a node slot (before Boot).
func (n *Net) AddNode(id ids.ProcID, factory node.Factory) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("livenet: duplicate node %v", id))
	}
	n.nodes[id] = &lnode{
		net:     n,
		id:      id,
		factory: factory,
		stable:  storage.NewStore(),
		met:     metrics.NewProc(),
		rng:     rand.New(rand.NewSource(n.cfg.Seed ^ int64(id)*7919)),
	}
	if !id.IsStorage() {
		n.nApp++
	}
}

// Boot starts every node.
func (n *Net) Boot() {
	n.mu.Lock()
	list := make([]*lnode, 0, len(n.nodes))
	for _, ln := range n.nodes {
		list = append(list, ln)
	}
	n.start = time.Now()
	n.mu.Unlock()
	for _, ln := range list {
		ln.mu.Lock()
		ln.up = true
		ln.proc = ln.factory()
		ln.proc.Boot(ln, false)
		ln.mu.Unlock()
	}
}

// Close shuts the runtime down and waits for in-flight handlers.
func (n *Net) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
}

// Crash kills a node; the watchdog restarts it after the configured
// detection and restart delays, exactly like the simulator.
func (n *Net) Crash(id ids.ProcID) {
	ln := n.node(id)
	if ln == nil {
		return
	}
	ln.mu.Lock()
	if !ln.up {
		ln.mu.Unlock()
		return
	}
	ln.up = false
	ln.epoch++
	ln.proc = nil
	ln.met.BlockEnd(n.vnow())
	ln.met.Recoveries = append(ln.met.Recoveries, metrics.RecoveryTrace{CrashedAt: n.vnow()})
	n.tr.Instant(n.vnow(), int32(id), trace.EvCrash, trace.Tag{})
	ln.downSpan = n.tr.Begin(n.vnow(), int32(id), trace.EvDown, trace.Tag{})
	ln.mu.Unlock()
	n.tracef("%v CRASH", id)

	delay := n.scale(n.cfg.HW.WatchdogDetect + n.cfg.HW.RestartDelay)
	time.AfterFunc(delay, func() {
		if !n.enter() {
			return
		}
		defer n.exit()
		ln.mu.Lock()
		defer ln.mu.Unlock()
		if ln.up {
			return
		}
		ln.up = true
		ln.proc = ln.factory()
		if tr := ln.met.CurrentRecovery(); tr != nil && tr.RestartedAt == 0 {
			tr.RestartedAt = n.vnow()
		}
		n.tr.End(ln.downSpan, n.vnow())
		ln.downSpan = 0
		n.tr.Instant(n.vnow(), int32(id), trace.EvRestart, trace.Tag{})
		n.tracef("%v RESTART", id)
		ln.proc.Boot(ln, true)
	})
}

func (n *Net) node(id ids.ProcID) *lnode {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nodes[id]
}

// Metrics returns a node's accumulator. Callers must treat it as
// read-mostly; precise reads should happen after Close.
func (n *Net) Metrics(id ids.ProcID) *metrics.Proc {
	if ln := n.node(id); ln != nil {
		return ln.met
	}
	return nil
}

// Inspect runs fn with the node's process instance under the node lock
// (nil if the node is down); used by examples to read protocol state.
func (n *Net) Inspect(id ids.ProcID, fn func(p node.Process)) {
	ln := n.node(id)
	if ln == nil {
		fn(nil)
		return
	}
	ln.mu.Lock()
	defer ln.mu.Unlock()
	fn(ln.proc)
}

// AttachTimeline drives col from a wall-clock ticker at the collector's
// interval (scaled by TimeScale) — the live-runtime analogue of the
// simulator's virtual-time sampler, sampling the same gauges so sim and
// live timelines are directly comparable. Rows are stamped with virtual
// time, like the simulator's; unlike the simulator's, tick alignment is
// best-effort (the ticker drifts with the host scheduler). The returned
// stop function halts sampling; call it before Close.
func (n *Net) AttachTimeline(col *timeline.Collector) (stop func()) {
	met := func(i int) *metrics.Proc { return n.Metrics(ids.ProcID(i)) }
	col.Bind(timeline.Probes{
		Proc: func(i int) timeline.ProcGauges {
			ln := n.node(ids.ProcID(i))
			if ln == nil {
				return timeline.ProcGauges{Phase: timeline.PhaseDown}
			}
			ln.mu.Lock()
			defer ln.mu.Unlock()
			g := timeline.ProcGauges{Phase: timeline.PhaseDown, StableBytes: ln.stable.Bytes()}
			if !ln.up {
				return g
			}
			g.Phase = timeline.PhaseLive
			// The runtime is protocol-agnostic, so protocol gauges come from
			// optional introspection interfaces (fbl.Process has all three).
			if b, ok := ln.proc.(interface{ Blocked() bool }); ok && b.Blocked() {
				g.Phase = timeline.PhaseBlocked
			}
			if j, ok := ln.proc.(interface{ DetLogLen() int }); ok {
				g.Journal = j.DetLogLen()
			}
			if j, ok := ln.proc.(interface{ DetPending() int }); ok {
				g.Lag = j.DetPending()
			}
			return g
		},
		Metrics: met,
		Markers: func() []timeline.Marker {
			return timeline.RecoveryMarkers(n.nApp, met)
		},
	})
	ticker := time.NewTicker(n.scale(col.Interval()))
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				col.Tick(n.vnow())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			ticker.Stop()
			close(done)
		})
	}
}

func (n *Net) tracef(format string, args ...any) {
	if n.cfg.Trace == nil {
		return
	}
	n.traceM.Lock()
	defer n.traceM.Unlock()
	fmt.Fprintf(n.cfg.Trace, "[%12s] ", time.Duration(n.vnow()))
	fmt.Fprintf(n.cfg.Trace, format, args...)
	fmt.Fprintln(n.cfg.Trace)
}

// lnode implements node.Env for one goroutine-backed node.
type lnode struct {
	net     *Net
	id      ids.ProcID
	factory node.Factory
	stable  *storage.Store
	met     *metrics.Proc
	rng     *rand.Rand

	mu       sync.Mutex // serializes all process event handling
	up       bool
	epoch    uint64
	proc     node.Process
	downSpan trace.SpanRef // open crash→restart span
}

var _ node.Env = (*lnode)(nil)

func (ln *lnode) ID() ids.ProcID         { return ln.id }
func (ln *lnode) N() int                 { return ln.net.nApp }
func (ln *lnode) Now() int64             { return ln.net.vnow() }
func (ln *lnode) Rand() *rand.Rand       { return ln.rng }
func (ln *lnode) Metrics() *metrics.Proc { return ln.met }
func (ln *lnode) Tracer() trace.Tracer   { return ln.net.tr }

func (ln *lnode) Logf(format string, args ...any) {
	if ln.net.cfg.Trace != nil {
		ln.net.tracef("%v: %s", ln.id, fmt.Sprintf(format, args...))
	}
}

// Busy models CPU consumption by sleeping while holding the node lock.
func (ln *lnode) Busy(d time.Duration) {
	time.Sleep(ln.net.scale(d))
}

// Send encodes and schedules delivery after the modeled link delay, FIFO
// per link.
func (ln *lnode) Send(to ids.ProcID, e *wire.Envelope) {
	if to == ln.id {
		panic(fmt.Sprintf("livenet: %v sent to itself", ln.id))
	}
	e.From = ln.id
	frame := wire.Encode(e)
	ln.met.Sent(uint8(e.Kind), len(frame))
	n := ln.net
	sentAt := n.vnow()
	n.tr.Instant(sentAt, int32(ln.id), trace.EvSend,
		trace.Tag{Kind: uint8(e.Kind), Arg: int64(len(frame))})

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	delay := n.scale(n.cfg.HW.Net.Latency + n.cfg.HW.Net.TransmitTime(len(frame)))
	at := time.Now().Add(delay)
	key := [2]ids.ProcID{ln.id, to}
	if prev, ok := n.links[key]; ok && !at.After(prev) {
		at = prev.Add(time.Microsecond)
	}
	n.links[key] = at
	n.mu.Unlock()

	time.AfterFunc(time.Until(at), func() {
		if !n.enter() {
			return
		}
		defer n.exit()
		dst := n.node(to)
		if dst == nil {
			return
		}
		dst.mu.Lock()
		defer dst.mu.Unlock()
		if !dst.up {
			dst.met.Dropped++
			return
		}
		decoded, err := wire.Decode(frame)
		if err != nil {
			panic(fmt.Sprintf("livenet: undecodable frame: %v", err))
		}
		dst.met.Received(uint8(decoded.Kind), len(frame))
		dst.met.DeliveryHist.Record(time.Duration(n.vnow() - sentAt))
		n.tr.Instant(n.vnow(), int32(to), trace.EvRecv,
			trace.Tag{Kind: uint8(decoded.Kind), Arg: int64(len(frame))})
		dst.proc.Deliver(decoded)
	})
}

type liveTimer struct {
	t *time.Timer
}

func (t *liveTimer) Stop() { t.t.Stop() }

// After schedules fn under the node lock; the timer dies with the process
// instance.
func (ln *lnode) After(d time.Duration, fn func()) node.Timer {
	epoch := ln.epoch
	n := ln.net
	t := time.AfterFunc(n.scale(d), func() {
		if !n.enter() {
			return
		}
		defer n.exit()
		ln.mu.Lock()
		defer ln.mu.Unlock()
		if !ln.up || ln.epoch != epoch {
			return
		}
		fn()
	})
	return &liveTimer{t: t}
}

// ReadStable reads after the modeled storage latency.
func (ln *lnode) ReadStable(key string, cb func(data []byte, ok bool)) {
	ln.stableOp(true, key, nil, func(data []byte, ok bool) { cb(data, ok) })
}

// WriteStable writes after the modeled storage latency; a crash before
// completion loses the write.
func (ln *lnode) WriteStable(key string, data []byte, cb func()) {
	cp := append([]byte(nil), data...)
	ln.stableOp(false, key, cp, func([]byte, bool) {
		if cb != nil {
			cb()
		}
	})
}

func (ln *lnode) stableOp(read bool, key string, data []byte, cb func([]byte, bool)) {
	n := ln.net
	epoch := ln.epoch
	var dur time.Duration
	var got []byte
	var ok bool
	if read {
		got, ok = ln.stable.Get(key)
		dur = n.cfg.HW.Disk.ReadTime(len(got))
		ln.met.StorageOp(false, len(got), dur)
		n.tr.Span(n.vnow(), int64(dur), int32(ln.id), trace.EvStorageRead,
			trace.Tag{Arg: int64(len(got))})
	} else {
		dur = n.cfg.HW.Disk.WriteTime(len(data))
		ln.met.StorageOp(true, len(data), dur)
		n.tr.Span(n.vnow(), int64(dur), int32(ln.id), trace.EvStorageWrite,
			trace.Tag{Arg: int64(len(data))})
	}
	time.AfterFunc(n.scale(dur), func() {
		if !n.enter() {
			return
		}
		defer n.exit()
		ln.mu.Lock()
		defer ln.mu.Unlock()
		if ln.epoch != epoch {
			return
		}
		if !read {
			ln.stable.Put(key, data)
		}
		if !ln.up {
			return
		}
		cb(got, ok)
	})
}
