package failure

import (
	"testing"
	"time"

	"rollrec/internal/ids"
)

const sec = int64(time.Second)

func TestSuspectAfterSilence(t *testing.T) {
	var suspects []ids.ProcID
	d := NewDetector(0, 3, 3*time.Second, 0, func(p ids.ProcID) { suspects = append(suspects, p) })
	d.Heard(1, 1*sec)
	d.Heard(2, 1*sec)
	d.Tick(3 * sec)
	if len(suspects) != 0 {
		t.Fatalf("suspected too early: %v", suspects)
	}
	d.Heard(2, 4*sec)
	d.Tick(4*sec + 100)
	if len(suspects) != 1 || suspects[0] != 1 {
		t.Fatalf("suspects = %v, want [1]", suspects)
	}
	if !d.Suspected(1) || d.Suspected(2) {
		t.Fatal("Suspected state wrong")
	}
}

func TestSuspectFiresOnce(t *testing.T) {
	fired := 0
	d := NewDetector(0, 2, time.Second, 0, func(ids.ProcID) { fired++ })
	d.Tick(5 * sec)
	d.Tick(6 * sec)
	d.Tick(7 * sec)
	if fired != 1 {
		t.Fatalf("onSuspect fired %d times, want 1", fired)
	}
}

func TestHeardClearsSuspicion(t *testing.T) {
	fired := 0
	d := NewDetector(0, 2, time.Second, 0, func(ids.ProcID) { fired++ })
	d.Tick(5 * sec)
	if !d.Suspected(1) {
		t.Fatal("expected suspicion")
	}
	d.Heard(1, 6*sec)
	if d.Suspected(1) {
		t.Fatal("traffic must clear suspicion")
	}
	d.Tick(10 * sec)
	if fired != 2 {
		t.Fatalf("re-suspicion after clear must fire again: fired=%d", fired)
	}
}

func TestNeverSuspectsSelfOrStorage(t *testing.T) {
	d := NewDetector(1, 3, time.Second, 0, nil)
	d.Tick(100 * sec)
	if d.Suspected(1) {
		t.Fatal("must never suspect self")
	}
	if d.Suspected(ids.StorageProc) {
		t.Fatal("must never suspect the storage pseudo-process")
	}
	// Heard from storage must not panic or misindex.
	d.Heard(ids.StorageProc, 5*sec)
	set := d.SuspectedSet()
	if len(set) != 2 || set[0] != 0 || set[1] != 2 {
		t.Fatalf("SuspectedSet = %v, want [0 2]", set)
	}
}

func TestClear(t *testing.T) {
	d := NewDetector(0, 2, time.Second, 0, nil)
	d.Tick(5 * sec)
	d.Clear(1, 5*sec)
	if d.Suspected(1) {
		t.Fatal("Clear must remove suspicion")
	}
}

func TestPlanSorted(t *testing.T) {
	p := Plan{{At: 3 * time.Second, Proc: 2}, {At: time.Second, Proc: 0}, {At: 2 * time.Second, Proc: 1}}
	s := p.Sorted()
	if s[0].Proc != 0 || s[1].Proc != 1 || s[2].Proc != 2 {
		t.Fatalf("Sorted = %v", s)
	}
	if p[0].Proc != 2 {
		t.Fatal("Sorted must not mutate the original plan")
	}
}

func TestMaxConcurrent(t *testing.T) {
	p := Plan{
		{At: 1 * time.Second, Proc: 0},
		{At: 2 * time.Second, Proc: 1}, // overlaps the first for window 5s
		{At: 20 * time.Second, Proc: 2},
	}
	if got := p.MaxConcurrent(5 * time.Second); got != 2 {
		t.Fatalf("MaxConcurrent(5s) = %d, want 2", got)
	}
	if got := p.MaxConcurrent(500 * time.Millisecond); got != 1 {
		t.Fatalf("MaxConcurrent(0.5s) = %d, want 1", got)
	}
	if got := (Plan{}).MaxConcurrent(time.Second); got != 0 {
		t.Fatalf("empty plan MaxConcurrent = %d", got)
	}
}
