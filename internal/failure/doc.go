// Package failure provides the timeout-based failure detector the recovery
// algorithm consumes, and crash-injection plans for experiments.
//
// Detection works the way the paper describes production systems of its era
// working (§2.2): peers exchange periodic heartbeats, and "a typical
// implementation would require several seconds of timeouts and retrials to
// detect that process q has indeed failed". The detector is deliberately
// simple — time since last traffic — because its *latency*, not its
// sophistication, is what dominates the recovery numbers.
package failure
