// Package failure provides the timeout-based failure detector the recovery
// algorithm consumes, and crash-injection plans for experiments.
//
// Detection works the way the paper describes production systems of its era
// working (§2.2): peers exchange periodic heartbeats, and "a typical
// implementation would require several seconds of timeouts and retrials to
// detect that process q has indeed failed". The detector is deliberately
// simple — time since last traffic — because its *latency*, not its
// sophistication, is what dominates the recovery numbers.
//
// Injection is the other half: a Plan is a deterministic list of Crash
// instants (virtual time, per process) that the harness applies before the
// run starts, so every experiment and bench cell replays the identical
// failure schedule for a given spec. Plans compose with the open-loop
// traffic engine (DESIGN §12) under one constraint the experiments package
// enforces: under FBL, clients must never be crash victims, because client
// arrivals enter through Inject and bypass sender-based logging — crashing
// a client would lose arrivals no protocol is expected to recover. D12's
// crash cells therefore target backend-tier processes, where a crash is
// user-visible as a client-side release stall rather than lost input.
package failure
