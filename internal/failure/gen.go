package failure

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"rollrec/internal/ids"
)

// Seeded crash-plan generators. Both are pure functions of their arguments:
// the same seed yields the same plan, byte for byte, which is what lets the
// explorer's random frontier and the experiments' churn knob replay any
// schedule from its seed alone.

// UniformPlan draws `crashes` failures with victims uniform over the n
// application processes and injection times uniform over (0, horizon].
// Crash times avoid t=0 (a crash before boot is a different experiment) and
// the returned plan is sorted.
func UniformPlan(seed int64, n, crashes int, horizon time.Duration) Plan {
	if n < 1 || crashes < 0 || horizon <= 0 {
		panic(fmt.Sprintf("failure: UniformPlan(n=%d, crashes=%d, horizon=%v): bad arguments",
			n, crashes, horizon))
	}
	rng := rand.New(rand.NewSource(seed))
	p := make(Plan, 0, crashes)
	for i := 0; i < crashes; i++ {
		p = append(p, Crash{
			At:   time.Duration(rng.Int63n(int64(horizon))) + 1,
			Proc: ids.ProcID(rng.Intn(n)),
		})
	}
	return p.Sorted()
}

// PhaseBiasedPlan draws `crashes` failures whose times cluster just after
// protocol phase boundaries (checkpoint commits, recovery transitions, …):
// each crash picks a boundary uniformly from the given set and lands at a
// uniform offset in [boundary, boundary+jitter). Crashes that would land at
// or before t=0 clamp to 1ns. The boundary set is canonicalized (sorted) so
// the plan depends only on the set, not the caller's ordering; the returned
// plan is sorted.
func PhaseBiasedPlan(seed int64, n, crashes int, boundaries []time.Duration, jitter time.Duration) Plan {
	if n < 1 || crashes < 0 || len(boundaries) == 0 || jitter <= 0 {
		panic(fmt.Sprintf("failure: PhaseBiasedPlan(n=%d, crashes=%d, boundaries=%d, jitter=%v): bad arguments",
			n, crashes, len(boundaries), jitter))
	}
	bs := append([]time.Duration(nil), boundaries...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	rng := rand.New(rand.NewSource(seed))
	p := make(Plan, 0, crashes)
	for i := 0; i < crashes; i++ {
		at := bs[rng.Intn(len(bs))] + time.Duration(rng.Int63n(int64(jitter)))
		if at <= 0 {
			at = 1
		}
		p = append(p, Crash{At: at, Proc: ids.ProcID(rng.Intn(n))})
	}
	return p.Sorted()
}

// ChurnPlan draws a uniform crash plan that respects a failure budget: it
// retries derived seeds (seed, seed+1, ...) until the plan's recoveries,
// each assumed to last `window`, never exceed f concurrent failures — the
// precondition the FBL protocol needs to guarantee determinant
// availability. The result is still a pure function of the arguments, so
// an experiment's churn schedule replays from its seed alone. Panics if no
// conforming plan is found within a generous retry budget (the caller
// asked for more sustained churn than the budget admits).
func ChurnPlan(seed int64, n, f, crashes int, horizon, window time.Duration) Plan {
	if f < 1 {
		panic(fmt.Sprintf("failure: ChurnPlan(f=%d): need a positive failure budget", f))
	}
	const retries = 10_000
	for i := int64(0); i < retries; i++ {
		p := UniformPlan(seed+i, n, crashes, horizon)
		if p.MaxConcurrent(window) <= f {
			return p
		}
	}
	panic(fmt.Sprintf("failure: ChurnPlan(n=%d, f=%d, crashes=%d, horizon=%v, window=%v): no conforming plan in %d attempts",
		n, f, crashes, horizon, window, retries))
}
