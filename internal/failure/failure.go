package failure

import (
	"sort"
	"time"

	"rollrec/internal/ids"
)

// Detector tracks peer liveness for one process. It is driven entirely by
// its owner: call Heard on every inbound frame and Tick periodically.
// Not safe for concurrent use.
type Detector struct {
	self         ids.ProcID
	n            int
	suspectAfter time.Duration
	lastHeard    []int64
	suspected    []bool
	onSuspect    func(p ids.ProcID)
	// monitored restricts Tick's silence scan to a subset of peers (the
	// fanout ring: only processes that actually heartbeat us). nil means
	// every peer is monitored (all-to-all heartbeats).
	monitored []ids.ProcID
}

// NewDetector returns a detector for a cluster of n processes. onSuspect
// fires exactly once per suspicion (until Clear); it may be nil.
func NewDetector(self ids.ProcID, n int, suspectAfter time.Duration, now int64, onSuspect func(ids.ProcID)) *Detector {
	d := &Detector{
		self:         self,
		n:            n,
		suspectAfter: suspectAfter,
		lastHeard:    make([]int64, n),
		suspected:    make([]bool, n),
		onSuspect:    onSuspect,
	}
	for i := range d.lastHeard {
		d.lastHeard[i] = now
	}
	return d
}

// Heard records traffic from p at virtual time now and clears any standing
// suspicion of p (hearing from a process proves it is up again).
func (d *Detector) Heard(p ids.ProcID, now int64) {
	if !d.tracks(p) {
		return
	}
	d.lastHeard[p] = now
	d.suspected[p] = false
}

// SetMonitored restricts the silence scan to the given peers (the given
// order is preserved, keeping suspicion order deterministic). Peers outside the
// set still clear suspicions via Heard but are never suspected by Tick —
// under ring heartbeating their silence is expected, not a failure signal.
func (d *Detector) SetMonitored(ps []ids.ProcID) {
	d.monitored = append([]ids.ProcID(nil), ps...)
}

// Tick scans for peers that have been silent longer than the suspicion
// threshold and fires onSuspect for each new suspicion.
func (d *Detector) Tick(now int64) {
	if d.monitored != nil {
		for _, pid := range d.monitored {
			d.tick1(pid, now)
		}
		return
	}
	for p := 0; p < d.n; p++ {
		d.tick1(ids.ProcID(p), now)
	}
}

func (d *Detector) tick1(pid ids.ProcID, now int64) {
	if !d.tracks(pid) || d.suspected[pid] {
		return
	}
	if now-d.lastHeard[pid] > int64(d.suspectAfter) {
		d.suspected[pid] = true
		if d.onSuspect != nil {
			d.onSuspect(pid)
		}
	}
}

// Suspected reports whether p is currently suspected. The storage
// pseudo-process and the owner itself are never suspected.
func (d *Detector) Suspected(p ids.ProcID) bool {
	return d.tracks(p) && d.suspected[p]
}

// Clear removes a suspicion without fresh traffic (e.g., after the peer's
// recovery announcement arrived through a third party).
func (d *Detector) Clear(p ids.ProcID, now int64) { d.Heard(p, now) }

// SuspectedSet returns the currently suspected processes in ascending order.
func (d *Detector) SuspectedSet() []ids.ProcID {
	var out []ids.ProcID
	for p := 0; p < d.n; p++ {
		if d.suspected[p] {
			out = append(out, ids.ProcID(p))
		}
	}
	return out
}

func (d *Detector) tracks(p ids.ProcID) bool {
	return p != d.self && !p.IsStorage() && p >= 0 && int(p) < d.n
}

// Crash is one injected failure: Proc crashes at virtual time At, or — when
// Step is positive — at the event-dispatch boundary Step of the classic
// kernel (sim.CrashAtStep). Step-indexed crashes are what the explorer uses
// to land failures between any two events, including inside an in-progress
// recovery; time-indexed crashes remain the experiments' coarse knob.
type Crash struct {
	At   time.Duration
	Proc ids.ProcID
	Step int64
}

// Plan is a crash schedule. Use Sorted before applying.
type Plan []Crash

// Sorted returns the plan ordered by injection time, step-indexed entries
// tie-broken by step (stable for equal keys). Step crashes carry At == 0,
// so a mixed plan applies them first — they name early-run boundaries.
func (p Plan) Sorted() Plan {
	out := append(Plan(nil), p...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Step < out[j].Step
	})
	return out
}

// MaxConcurrent returns the largest number of crashes whose recovery
// windows overlap, assuming each recovery lasts `window`. Experiments use
// it to assert a plan stays within the protocol's f budget.
func (p Plan) MaxConcurrent(window time.Duration) int {
	s := p.Sorted()
	max := 0
	for i := range s {
		c := 1
		for j := i + 1; j < len(s); j++ {
			if s[j].At-s[i].At < window {
				c++
			}
		}
		if c > max {
			max = c
		}
	}
	return max
}
