package failure

import (
	"reflect"
	"testing"
	"time"

	"rollrec/internal/ids"
)

func TestUniformPlanDeterministic(t *testing.T) {
	a := UniformPlan(7, 4, 5, 30*time.Second)
	b := UniformPlan(7, 4, 5, 30*time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%v\n%v", a, b)
	}
	c := UniformPlan(8, 4, 5, 30*time.Second)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the identical plan (suspicious)")
	}
	if len(a) != 5 {
		t.Fatalf("len = %d, want 5", len(a))
	}
	for i, cr := range a {
		if cr.At <= 0 || cr.At > 30*time.Second {
			t.Fatalf("crash %d at %v outside (0, horizon]", i, cr.At)
		}
		if cr.Proc < 0 || int(cr.Proc) >= 4 {
			t.Fatalf("crash %d victim %v outside [0, n)", i, cr.Proc)
		}
		if i > 0 && a[i-1].At > cr.At {
			t.Fatal("plan not sorted")
		}
	}
}

func TestPhaseBiasedPlanDeterministicAndNearBoundaries(t *testing.T) {
	bounds := []time.Duration{4 * time.Second, 8 * time.Second, 12 * time.Second}
	jitter := 500 * time.Millisecond
	a := PhaseBiasedPlan(3, 4, 8, bounds, jitter)
	b := PhaseBiasedPlan(3, 4, 8, bounds, jitter)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%v\n%v", a, b)
	}
	// The boundary set is canonicalized: permuting it changes nothing.
	perm := []time.Duration{12 * time.Second, 4 * time.Second, 8 * time.Second}
	if c := PhaseBiasedPlan(3, 4, 8, perm, jitter); !reflect.DeepEqual(a, c) {
		t.Fatalf("boundary order leaked into the plan:\n%v\n%v", a, c)
	}
	for i, cr := range a {
		in := false
		for _, bd := range bounds {
			if cr.At >= bd && cr.At < bd+jitter {
				in = true
				break
			}
		}
		if !in {
			t.Fatalf("crash %d at %v not within jitter of any boundary", i, cr.At)
		}
	}
}

func TestPhaseBiasedPlanClampsToPositiveTime(t *testing.T) {
	p := PhaseBiasedPlan(1, 2, 4, []time.Duration{0}, time.Nanosecond)
	for _, cr := range p {
		if cr.At <= 0 {
			t.Fatalf("crash at %v, want > 0", cr.At)
		}
	}
}

// ── Plan.Sorted / MaxConcurrent edge cases ─────────────────────────────

func TestSortedEmptyPlan(t *testing.T) {
	var p Plan
	if got := p.Sorted(); len(got) != 0 {
		t.Fatalf("Sorted(empty) = %v", got)
	}
	if got := p.MaxConcurrent(time.Second); got != 0 {
		t.Fatalf("MaxConcurrent(empty) = %d, want 0", got)
	}
}

func TestSortedEqualTimesIsStable(t *testing.T) {
	p := Plan{{At: 5 * time.Second, Proc: 2}, {At: 5 * time.Second, Proc: 0}, {At: 5 * time.Second, Proc: 1}}
	got := p.Sorted()
	want := Plan{{At: 5 * time.Second, Proc: 2}, {At: 5 * time.Second, Proc: 0}, {At: 5 * time.Second, Proc: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("equal-time sort not stable: %v", got)
	}
}

func TestSortedStepTieBreak(t *testing.T) {
	p := Plan{{Step: 40, Proc: 1}, {Step: 7, Proc: 0}, {At: time.Second, Proc: 2}}
	got := p.Sorted()
	want := Plan{{Step: 7, Proc: 0}, {Step: 40, Proc: 1}, {At: time.Second, Proc: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("step tie-break wrong: %v", got)
	}
}

func TestMaxConcurrentWindowBoundaryIsExclusive(t *testing.T) {
	// Two crashes exactly one window apart do not overlap: the recovery
	// started at t ends at t+window, strictly before a crash at t+window.
	p := Plan{{At: 2 * time.Second, Proc: 0}, {At: 4 * time.Second, Proc: 1}}
	if got := p.MaxConcurrent(2 * time.Second); got != 1 {
		t.Fatalf("boundary-separated crashes: MaxConcurrent = %d, want 1", got)
	}
	if got := p.MaxConcurrent(2*time.Second + 1); got != 2 {
		t.Fatalf("just-overlapping crashes: MaxConcurrent = %d, want 2", got)
	}
}

func TestMaxConcurrentEqualTimes(t *testing.T) {
	p := Plan{{At: time.Second, Proc: 0}, {At: time.Second, Proc: 1}, {At: time.Second, Proc: 2}}
	if got := p.MaxConcurrent(time.Nanosecond); got != 3 {
		t.Fatalf("simultaneous crashes: MaxConcurrent = %d, want 3", got)
	}
}

// TestPlanFullFWithStoragePresent exercises the f = n shape: every
// application process crashes (the storage pseudo-process, ids.StorageProc,
// never does — the kernel enforces that at injection). Sorting and overlap
// accounting must handle the full-f plan without special cases.
func TestPlanFullFWithStoragePresent(t *testing.T) {
	n := 4
	p := Plan{}
	for i := n - 1; i >= 0; i-- {
		p = append(p, Crash{At: time.Duration(i+1) * time.Second, Proc: ids.ProcID(i)})
	}
	s := p.Sorted()
	for i := 1; i < len(s); i++ {
		if s[i-1].At > s[i].At {
			t.Fatal("full-f plan not sorted")
		}
	}
	if got := s.MaxConcurrent(10 * time.Second); got != n {
		t.Fatalf("all-overlapping full-f plan: MaxConcurrent = %d, want %d", got, n)
	}
	if got := s.MaxConcurrent(time.Second); got != 1 {
		t.Fatalf("serialized full-f plan: MaxConcurrent = %d, want 1", got)
	}
}

func TestChurnPlanRespectsBudgetAndIsDeterministic(t *testing.T) {
	const window = 2 * time.Second
	a := ChurnPlan(42, 8, 1, 5, 30*time.Second, window)
	b := ChurnPlan(42, 8, 1, 5, 30*time.Second, window)
	if len(a) != 5 {
		t.Fatalf("plan has %d crashes, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same arguments produced different plans:\n%v\n%v", a, b)
		}
	}
	if mc := a.MaxConcurrent(window); mc > 1 {
		t.Fatalf("plan exceeds the f=1 budget: MaxConcurrent=%d, plan=%v", mc, a)
	}
	// The f=1 constraint is tight enough here that the first derived seed
	// cannot always satisfy it: the helper must actually be reseeding, not
	// merely forwarding UniformPlan.
	if u := UniformPlan(42, 8, 5, 30*time.Second); u.MaxConcurrent(window) <= 1 {
		t.Skip("seed 42 conformed on the first draw; pick a tighter constraint")
	}
}

func TestChurnPlanLooseBudgetIsFirstDraw(t *testing.T) {
	// With f = crashes the first draw always conforms, so ChurnPlan must
	// degenerate to UniformPlan(seed).
	got := ChurnPlan(7, 4, 3, 3, 10*time.Second, time.Hour)
	want := UniformPlan(7, 4, 3, 10*time.Second)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("loose-budget churn plan %v differs from uniform plan %v", got, want)
		}
	}
}
