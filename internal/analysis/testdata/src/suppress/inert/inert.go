// Package inert holds suppressions and directives that silence nothing.
// Each must surface as a finding: a stale allow hides future regressions on
// its line, and a typoed directive would otherwise be dead weight the
// author believes is active.
package inert

import "time"

//rollvet:allow simtime -- nothing below reads a clock // want "silences nothing"
var sequence = 1

//rollvet:allowsimtime -- the missing space makes this no directive at all // want "unknown rollvet directive"
func mistyped() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

//rollvet:hotpth // want "unknown rollvet directive"
func typoedAnnotation() int { return sequence }

func live() time.Time {
	return time.Now() //rollvet:allow simtime -- fixture demonstrates a live allow
}
