// Package bad holds malformed suppression directives. The driver must turn
// each one into a "suppress" finding instead of honoring it, and the
// underlying violations must still be reported.
package bad

import "time"

//rollvet:allow simtime
func reasonless() time.Time { return time.Now() }

//rollvet:allow nosuchcheck -- the check name does not exist
func unknownCheck() time.Time { return time.Now() }

//rollvet:allow
func nameless() {}

//rollvet:allow simtime detrand -- one directive may name only one check
func twoNames() {}
