// Package plainpkg is outside the deterministic set, so even an
// order-leaking map iteration stays silent: maporder is scoped to the
// packages that must replay identically.
package plainpkg

func appends(m map[uint64]int) []uint64 {
	var out []uint64
	for k := range m {
		out = append(out, k)
	}
	return out
}
