// Package fbl — the name places it in rollvet's deterministic-package set —
// exercises the maporder check.
package fbl

import "sort"

func appends(m map[uint64]int) []uint64 {
	var out []uint64
	for k := range m { // want "randomized map order and appending"
		out = append(out, k)
	}
	return out
}

func sends(m map[uint64]int, ch chan int) {
	for _, v := range m { // want "randomized map order and sending on a channel"
		ch <- v
	}
}

func calls(m map[uint64]int, emit func(uint64)) {
	for k := range m { // want "calling emit with the iteration element"
		emit(k)
	}
}

func deletesConditionally(m map[uint64]int, keep func(int) bool) {
	for k, v := range m { // want "calling keep with the iteration element"
		if !keep(v) {
			delete(m, k)
		}
	}
}

func commutativeFold(m map[uint64]int) int {
	total := 0
	for _, v := range m { // pure commutative fold: silent
		total += v
	}
	return total
}

func existence(m map[uint64]*int) bool {
	for k := range m { // call-free body and len/cap are safe
		if m[k] == nil && len(m) > 0 {
			return true
		}
	}
	return false
}

func sortedIteration(m map[uint64]int) []uint64 {
	keys := make([]uint64, 0, len(m))
	//rollvet:allow maporder -- keys are fully sorted below before any use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func overSlice(s []int) []int {
	var out []int
	for _, v := range s { // slices iterate deterministically: silent
		out = append(out, v)
	}
	return out
}
