// Package proto exercises the detrand check: the global math/rand
// convenience functions are banned, explicitly seeded streams are the
// sanctioned path.
package proto

import "math/rand"

func bad() int {
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand.Shuffle"
	if rand.Float64() < 0.5 {          // want "global math/rand.Float64"
		return rand.Int() // want "global math/rand.Int"
	}
	return rand.Intn(10) // want "global math/rand.Intn"
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() // methods on a threaded *rand.Rand are fine
}

func suppressed() float64 {
	return rand.Float64() //rollvet:allow detrand -- fixture demonstrates the allow path
}
