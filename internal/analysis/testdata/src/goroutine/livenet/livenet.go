// Package livenet owns the real-time execution model, so goroutines are its
// business: the check stays silent here.
package livenet

func spawn(f func()) {
	go f()
}
