// Package sim — in the deterministic set — exercises the goroutine check.
package sim

func spawn(f func()) {
	go f() // want "go statement in deterministic package sim"
}

func spawnClosure(n int, out chan<- int) {
	go func() { out <- n }() // want "go statement in deterministic package sim"
}

func suppressedSpawn(f func()) {
	go f() //rollvet:allow goroutine -- fixture demonstrates the allow path
}
