// Package hot exercises the hotalloc check: //rollvet:hotpath functions and
// their static callees must not allocate, with panic arguments exempt and
// cold functions untouched.
package hot

type ring struct {
	buf []int
	n   int
}

type point struct{ x, y int }

//rollvet:hotpath
func (r *ring) push(v int) {
	r.buf = append(r.buf, v) // want "append may grow its backing array"
	r.record(v)
}

// record is hot by reachability from push, not by its own annotation.
func (r *ring) record(v int) {
	s := make([]int, 4) // want "make allocates"
	s[0] = v
	p := new(point) // want "new allocates"
	p.x = v
	q := &point{v, v} // want "taking the address of a composite literal allocates"
	q.y = v
	_ = []int{v} // want "slice literal allocates its backing array"
	box(v) // want "passing int as any boxes the value"
}

func box(x any) { _ = x }

//rollvet:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//rollvet:hotpath
func capture(v int) func() int {
	return func() int { return v } // want "closure creation allocates"
}

//rollvet:hotpath
func spread(a, b int) int {
	return sum(a, b) // want "variadic call allocates its argument slice"
}

func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

//rollvet:hotpath
func rawBytes(s string) int {
	return len([]byte(s)) // want "conversion between string and byte/rune slice allocates"
}

// guard shows the panic exemption: the concatenation feeding panic sits off
// the measured path.
//
//rollvet:hotpath
func guard(i, n int, what string) {
	if i >= n {
		panic("index out of range in " + what)
	}
}

// cold allocates at will; nothing reaches it from a hotpath root.
func cold(v int) []int {
	return append([]int{}, v)
}

// amortized demonstrates the allow path for sanctioned growth.
//
//rollvet:hotpath
func amortized(buf []int, v int) []int {
	//rollvet:allow hotalloc -- amortized growth measured by the arena benchmarks
	return append(buf, v)
}
