// Package wire mirrors the real wire package's Kind vocabulary shape: a
// contiguous constant block closed by a kindMax sentinel, an exported
// KindCount, and a complete String() name table. Nothing to report.
package wire

// Kind discriminates envelope types.
type Kind uint8

const (
	KindA Kind = iota + 1
	KindB
	KindC

	kindMax
)

// KindCount is the size any array indexed by Kind must have.
const KindCount = int(kindMax)

// String names the kind for traces.
func (k Kind) String() string {
	names := [...]string{
		KindA: "a",
		KindB: "b",
		KindC: "c",
	}
	if int(k) < len(names) && names[k] != "" {
		return names[k]
	}
	return "kind?"
}
