// Package wire exercises every wiresync failure mode: a kind missing from
// the String() table, a kind outside [1, kindMax), and a KindCount that
// disagrees with the sentinel.
package wire

type Kind uint8

const (
	KindA Kind = iota + 1
	KindB // want "kind KindB has no entry in the String"

	kindMax
)

// KindZ sits beyond the sentinel: the codec's bounds check rejects it and
// per-kind counter arrays cannot index it.
const KindZ Kind = 99 // want "out of range"

const KindCount = int(kindMax) + 1 // want "KindCount = 4 disagrees with kindMax = 3"

func (k Kind) String() string {
	names := [...]string{
		KindA: "a",
	}
	if int(k) < len(names) && names[k] != "" {
		return names[k]
	}
	return "kind?"
}
