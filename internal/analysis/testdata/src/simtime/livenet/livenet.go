// Package livenet is exempt from simtime: it is the wall-clock runtime and
// owns every real timer.
package livenet

import "time"

func clock() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}

func timer(f func()) *time.Timer {
	return time.AfterFunc(time.Second, f)
}
