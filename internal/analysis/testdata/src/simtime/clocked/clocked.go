// Package clocked exercises the simtime check: observing the wall clock is
// a violation, pure time.Duration arithmetic is not.
package clocked

import "time"

func bad() time.Time {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	return time.Now()            // want "time.Now reads the wall clock"
}

func badTimers(f func()) {
	time.AfterFunc(time.Second, f) // want "time.AfterFunc reads the wall clock"
	<-time.After(time.Second)      // want "time.After reads the wall clock"
}

func badDelta(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func durationsAreFine() time.Duration {
	d := 3 * time.Second
	return d.Round(time.Millisecond)
}

func suppressedStandalone() time.Time {
	//rollvet:allow simtime -- fixture demonstrates the standalone allow form
	return time.Now()
}

func suppressedTrailing() time.Time {
	return time.Now() //rollvet:allow simtime -- fixture demonstrates the trailing allow form
}
