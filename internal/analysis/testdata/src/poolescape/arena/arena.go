// Package arena exercises the poolescape check: pointers into a
// //rollvet:pooled slot arena must not outlive the handler that obtained
// them, while value copies and handler-local use stay legal.
package arena

// event is one recycled arena slot.
//
//rollvet:pooled
type event struct {
	at  int64
	seq uint64
	pos int
}

type kernel struct {
	slots []event
	held  *event
	byID  map[int]*event
}

type holder struct{ e *event }

var global *event

func (k *kernel) recycle() {}

func (k *kernel) storeField(i int) {
	e := &k.slots[i]
	k.held = e // want "pooled arena.event pointer stored to a field"
}

func (k *kernel) storeGlobal(i int) {
	global = &k.slots[i] // want "stored to package-level variable global"
}

func (k *kernel) storeMap(i int) {
	k.byID[i] = &k.slots[i] // want "stored to a map or slice element"
}

func (k *kernel) appendEscape(i int, out []*event) []*event {
	return append(out, &k.slots[i]) // want "appended to a slice"
}

func (k *kernel) structLit(i int) holder {
	return holder{e: &k.slots[i]} // want "stored in a composite literal"
}

func (k *kernel) send(ch chan *event, i int) {
	ch <- &k.slots[i] // want "sent on a channel"
}

func (k *kernel) capture(i int) func() int64 {
	e := &k.slots[i]
	return func() int64 {
		return e.at // want "captured by a closure"
	}
}

func (k *kernel) useAfterCall(i int) int64 {
	e := &k.slots[i]
	k.recycle()
	return e.at // want "used after a call that may recycle the arena"
}

// copyOut is the sanctioned pattern: copy the slot by value, then calls may
// recycle it freely.
func (k *kernel) copyOut(i int) int64 {
	e := k.slots[i]
	k.recycle()
	return e.at
}

// localUse never lets the pointer cross a call; all quiet.
func (k *kernel) localUse(i int) int64 {
	e := &k.slots[i]
	e.seq++
	return e.at + int64(e.seq)
}

// rebind overwrites the stale pointer after the call instead of reading
// through it; the assignment target is not a use.
func (k *kernel) rebind(i, j int) int64 {
	e := &k.slots[i]
	_ = e.at
	k.recycle()
	e = &k.slots[j]
	return e.at
}

// suppressed demonstrates the allow path for an intentional hold.
func (k *kernel) suppressed(i int) {
	e := &k.slots[i]
	//rollvet:allow poolescape -- fixture demonstrates the allow path
	k.held = e
}
