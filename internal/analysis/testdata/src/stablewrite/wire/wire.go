// Package wire exercises the stablewrite check against a miniature of the
// real codec: discarded Decode/Sync errors and readers whose Err/Done is
// never consulted are findings; checked, escaped, and suppressed uses stay
// quiet.
package wire

import "errors"

// ErrTruncated mirrors the codec's short-input error.
var ErrTruncated = errors.New("wire: truncated frame")

// Envelope is a decoded frame.
type Envelope struct {
	Seq uint32
}

// Reader is a sticky-error cursor over one frame.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader positions a Reader at the start of buf.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// U32 decodes a big-endian uint32, or zero once the reader has failed.
func (r *Reader) U32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.err = ErrTruncated
		return 0
	}
	b := r.buf[r.off : r.off+4]
	r.off += 4
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Err reports the sticky decode error.
func (r *Reader) Err() error { return r.err }

// Done reports whether the frame was fully and cleanly consumed.
func (r *Reader) Done() bool { return r.err == nil && r.off == len(r.buf) }

// Decode parses one envelope, consulting the reader as the check demands.
func Decode(data []byte) (*Envelope, error) {
	r := NewReader(data)
	seq := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &Envelope{Seq: seq}, nil
}

// Sync pretends to flush to stable storage.
func Sync() error { return nil }

func discardStmt(data []byte) {
	Decode(data) // want "error result of wire.Decode is discarded"
}

func discardBlank(data []byte) *Envelope {
	env, _ := Decode(data) // want "error result of wire.Decode is discarded"
	return env
}

func discardPaired() {
	_ = Sync() // want "error result of wire.Sync is discarded"
}

func discardDefer() {
	defer Sync() // want "error result of wire.Sync is discarded"
}

func checked(data []byte) (*Envelope, error) {
	env, err := Decode(data)
	if err != nil {
		return nil, err
	}
	return env, nil
}

func chainedRead(data []byte) uint32 {
	return NewReader(data).U32() // want "value read from an unchecked wire.Reader"
}

func uncheckedVar(data []byte) uint32 {
	r := NewReader(data) // want "wire.Reader r is read but neither Err nor Done is ever consulted"
	return r.U32()
}

func checkedVar(data []byte) (uint32, error) {
	r := NewReader(data)
	v := r.U32()
	if err := r.Err(); err != nil {
		return 0, err
	}
	return v, nil
}

func doneVar(data []byte) (uint32, bool) {
	r := NewReader(data)
	v := r.U32()
	return v, r.Done()
}

// escaped hands the reader to a helper; custody transfers with it.
func escaped(data []byte) uint32 {
	r := NewReader(data)
	return drain(r)
}

func drain(r *Reader) uint32 {
	v := r.U32()
	if !r.Done() {
		return 0
	}
	return v
}

// suppressed demonstrates the allow path for a best-effort write.
func suppressed() {
	//rollvet:allow stablewrite -- fixture demonstrates the allow path
	Sync()
}
