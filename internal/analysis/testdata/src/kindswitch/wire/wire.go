// Package wire exercises the kindswitch check: a switch over Kind with no
// default must enumerate every exported kind. The vocabulary mirrors the
// real package (contiguous block, kindMax sentinel, KindCount, String
// table) so wiresync stays quiet.
package wire

// Kind discriminates envelope types.
type Kind uint8

const (
	KindA Kind = iota + 1
	KindB
	KindC

	kindMax
)

// KindCount is the size any array indexed by Kind must have.
const KindCount = int(kindMax)

// String names the kind for traces.
func (k Kind) String() string {
	names := [...]string{
		KindA: "a",
		KindB: "b",
		KindC: "c",
	}
	if int(k) < len(names) && names[k] != "" {
		return names[k]
	}
	return "kind?"
}

func incomplete(k Kind) int {
	switch k { // want "switch over wire.Kind has no default and misses KindC"
	case KindA, KindB:
		return 1
	}
	return 0
}

func defaulted(k Kind) int {
	switch k {
	case KindA:
		return 1
	default:
		return 0
	}
}

func exhaustive(k Kind) int {
	switch k {
	case KindA:
		return 1
	case KindB:
		return 2
	case KindC:
		return 3
	}
	return 0
}

// otherSwitch is over a plain int; no exhaustiveness demanded.
func otherSwitch(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}
