package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StableWrite guards the durability contract of output commit: the f+1
// stability guarantee holds only if every stable-storage write and every
// wire encode/decode failure is observed. Two rules:
//
//  1. An error result from a function in internal/storage or internal/wire
//     must not be discarded — not dropped at statement level, not assigned
//     to _, not thrown away by go/defer.
//  2. A wire.Reader bound from NewReader must have Err() or Done()
//     consulted before its decoded values are trusted (the reader is
//     sticky-error by design; reading past truncation yields zeros, which
//     then masquerade as protocol state). A reader that escapes — passed
//     to another function, returned, stored — is the callee's
//     responsibility and is not flagged.
var StableWrite = &Analyzer{
	Name: "stablewrite",
	Doc:  "storage/wire errors must be checked; wire readers must consult Err or Done",
	Run:  runStableWrite,
}

// stablePackages are the package names whose error results guard
// durability or frame integrity.
var stablePackages = map[string]bool{
	"storage": true,
	"wire":    true,
}

func runStableWrite(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if fn, _ := stableErrCallee(pass.Info, n.X); fn != nil {
					reportDiscard(pass, n.Pos(), fn)
				}
			case *ast.GoStmt:
				if fn, _ := stableErrCallee(pass.Info, n.Call); fn != nil {
					reportDiscard(pass, n.Pos(), fn)
				}
			case *ast.DeferStmt:
				if fn, _ := stableErrCallee(pass.Info, n.Call); fn != nil {
					reportDiscard(pass, n.Pos(), fn)
				}
			case *ast.AssignStmt:
				checkBlankErr(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkReaderVars(pass, n.Body)
				}
			case *ast.SelectorExpr:
				// Chained read off an unbound reader:
				// wire.NewReader(data).U32() has no variable through which
				// Err could ever be consulted.
				if call, ok := unparen(n.X).(*ast.CallExpr); ok &&
					isNewReader(pass.Info, call) && !isReaderCheck(n.Sel.Name) {
					pass.Reportf(n.Sel.Pos(),
						"value read from an unchecked wire.Reader; bind the reader and consult Err or Done")
				}
			}
			return true
		})
	}
}

func reportDiscard(pass *Pass, pos token.Pos, fn *types.Func) {
	pass.Reportf(pos,
		"error result of %s.%s is discarded; check it or annotate //rollvet:allow stablewrite -- <reason>",
		fn.Pkg().Name(), fn.Name())
}

// stableErrCallee resolves expr to a call of a storage/wire function whose
// final result is an error, returning the callee and that result's index.
func stableErrCallee(info *types.Info, expr ast.Expr) (*types.Func, int) {
	call, ok := unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil, 0
	}
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || !stablePackages[fn.Pkg().Name()] {
		return nil, 0
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil, 0
	}
	last := sig.Results().Len() - 1
	if !isErrorType(sig.Results().At(last).Type()) {
		return nil, 0
	}
	return fn, last
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// checkBlankErr flags assignments that route a stable error into the blank
// identifier, in both the multi-value form env, _ := Decode(b) and the
// paired form _ = st.Sync().
func checkBlankErr(pass *Pass, as *ast.AssignStmt) {
	flag := func(lhs ast.Expr, fn *types.Func) {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			reportDiscard(pass, id.Pos(), fn)
		}
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if fn, errIdx := stableErrCallee(pass.Info, as.Rhs[0]); fn != nil && errIdx < len(as.Lhs) {
			flag(as.Lhs[errIdx], fn)
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		if fn, _ := stableErrCallee(pass.Info, rhs); fn != nil {
			flag(as.Lhs[i], fn)
		}
	}
}

// isNewReader reports whether call constructs a wire.Reader.
func isNewReader(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	return fn != nil && fn.Name() == "NewReader" &&
		fn.Pkg() != nil && fn.Pkg().Name() == "wire"
}

func isReaderCheck(name string) bool { return name == "Err" || name == "Done" }

// readerState tracks one reader-typed local bound from NewReader.
type readerState struct {
	def     token.Pos
	read    bool // a decode method was called on it
	checked bool // Err or Done was consulted
	escaped bool // passed on, returned, or otherwise out of local custody
}

// checkReaderVars enforces rule 2 over the locals of one function body.
func checkReaderVars(pass *Pass, body *ast.BlockStmt) {
	readers := make(map[*types.Var]*readerState)
	var order []*types.Var

	// First pass: find r := NewReader(...) bindings.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := unparen(rhs).(*ast.CallExpr)
			if !ok || !isNewReader(pass.Info, call) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := pass.Info.Defs[id].(*types.Var); ok {
				readers[v] = &readerState{def: id.Pos()}
				order = append(order, v)
			}
		}
		return true
	})
	if len(readers) == 0 {
		return
	}

	// Second pass: classify every use. An ident consumed as the X of a
	// selector is a method access (Err/Done checks, decode reads); anything
	// else — argument, return value, reassignment source — is an escape.
	consumed := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := unparen(n.X).(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := pass.Info.Uses[id].(*types.Var)
			st := readers[v]
			if st == nil {
				return true
			}
			consumed[id] = true
			if isReaderCheck(n.Sel.Name) {
				st.checked = true
			} else {
				st.read = true
			}
		case *ast.AssignStmt:
			// A rebinding target is neither a read nor an escape.
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if v, _ := pass.Info.Uses[id].(*types.Var); v != nil && readers[v] != nil {
						consumed[id] = true
					}
				}
			}
		case *ast.Ident:
			v, _ := pass.Info.Uses[n].(*types.Var)
			if st := readers[v]; st != nil && !consumed[n] {
				st.escaped = true
			}
		}
		return true
	})

	for _, v := range order {
		st := readers[v]
		if st.read && !st.checked && !st.escaped {
			pass.Reportf(st.def,
				"wire.Reader %s is read but neither Err nor Done is ever consulted; truncated input would decode as zeros",
				v.Name())
		}
	}
}
