package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// allowMarker introduces a suppression comment:
//
//	//rollvet:allow <check> -- <reason>
//
// A suppression on line L silences findings of <check> on line L (trailing
// form) and on line L+1 (standalone form, placed directly above the code).
// The reason after " -- " is mandatory and the check name must exist, so a
// stale or sloppy suppression shows up as a finding instead of silently
// rotting.
const allowMarker = "rollvet:allow"

// allowSet indexes suppressions by file, line, and check name.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) add(file string, line int, check string) {
	byLine := s[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	checks := byLine[line]
	if checks == nil {
		checks = make(map[string]bool)
		byLine[line] = checks
	}
	checks[check] = true
}

// covers reports whether d is silenced by a suppression on its own line or
// on the line directly above it.
func (s allowSet) covers(d Diagnostic) bool {
	byLine := s[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[d.Pos.Line][d.Check] || byLine[d.Pos.Line-1][d.Check]
}

// collectSuppressions scans a package's comments for allowMarker directives.
// Well-formed ones are returned as an allowSet; malformed ones (missing
// reason, unknown check) come back as "suppress" diagnostics so they cannot
// silently disable anything.
func collectSuppressions(pkg *Package, known map[string]bool) (allowSet, []Diagnostic) {
	allows := make(allowSet)
	var diags []Diagnostic
	bad := func(c *ast.Comment, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(c.Pos()),
			Check:   "suppress",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowMarker)
				if !ok {
					continue
				}
				directive, reason, hasReason := strings.Cut(text, "--")
				check := strings.TrimSpace(directive)
				switch {
				case check == "":
					bad(c, "suppression names no check: //%s <check> -- <reason>", allowMarker)
				case strings.ContainsAny(check, " \t"):
					bad(c, "suppression must name exactly one check, got %q", check)
				case !known[check]:
					bad(c, "suppression names unknown check %q", check)
				case !hasReason || strings.TrimSpace(reason) == "":
					bad(c, "suppression of %q is missing its mandatory reason: //%s %s -- <reason>", check, allowMarker, check)
				default:
					pos := pkg.Fset.Position(c.Pos())
					allows.add(pos.Filename, pos.Line, check)
				}
			}
		}
	}
	return allows, diags
}
