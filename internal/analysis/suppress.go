package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// allowMarker introduces a suppression comment:
//
//	//rollvet:allow <check> -- <reason>
//
// A suppression on line L silences findings of <check> on line L (trailing
// form) and on line L+1 (standalone form, placed directly above the code).
// The reason after " -- " is mandatory, the check name must exist, and the
// suppression must actually silence something: a stale or sloppy
// suppression shows up as a finding instead of silently rotting.
const allowMarker = "rollvet:allow"

// directivePrefix is the common stem of every rollvet source directive.
// Any comment starting with it must parse as one of the known directives
// (allow, pooled, hotpath); a typo like //rollvet:allowsimtime or
// //rollvet:hotpth would otherwise be silently inert — or worse, silently
// honored as a different directive than the author intended.
const directivePrefix = "//rollvet:"

// allowEntry is one well-formed suppression, tracked so that suppressions
// which never fire can be reported as stale.
type allowEntry struct {
	pos   token.Position
	check string
	used  bool
}

// allowSet indexes suppressions by file, line, and check name, keeping the
// original scan order for deterministic stale-suppression reporting.
type allowSet struct {
	entries []*allowEntry
	byLine  map[string]map[int]map[string]*allowEntry
}

func newAllowSet() *allowSet {
	return &allowSet{byLine: make(map[string]map[int]map[string]*allowEntry)}
}

func (s *allowSet) add(pos token.Position, check string) {
	e := &allowEntry{pos: pos, check: check}
	s.entries = append(s.entries, e)
	byLine := s.byLine[pos.Filename]
	if byLine == nil {
		byLine = make(map[int]map[string]*allowEntry)
		s.byLine[pos.Filename] = byLine
	}
	checks := byLine[pos.Line]
	if checks == nil {
		checks = make(map[string]*allowEntry)
		byLine[pos.Line] = checks
	}
	checks[check] = e
}

// covers reports whether d is silenced by a suppression on its own line or
// on the line directly above it, marking every matching entry as used.
func (s *allowSet) covers(d Diagnostic) bool {
	byLine := s.byLine[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	hit := false
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if e := byLine[line][d.Check]; e != nil {
			e.used = true
			hit = true
		}
	}
	return hit
}

// stale returns one "suppress" diagnostic per entry that silenced nothing,
// in scan order.
func (s *allowSet) stale() []Diagnostic {
	var diags []Diagnostic
	for _, e := range s.entries {
		if e.used {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   e.pos,
			Check: "suppress",
			Message: fmt.Sprintf(
				"suppression of %q silences nothing on this line or the next; delete the stale //%s",
				e.check, allowMarker),
		})
	}
	return diags
}

// collectSuppressions scans a package's comments for rollvet directives.
// Well-formed allows are returned as an allowSet; malformed ones (missing
// reason, unknown check, unknown directive word) come back as "suppress"
// diagnostics so they cannot silently disable anything.
func collectSuppressions(pkg *Package, known map[string]bool) (*allowSet, []Diagnostic) {
	allows := newAllowSet()
	var diags []Diagnostic
	bad := func(c *ast.Comment, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(c.Pos()),
			Check:   "suppress",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				word := rest
				if i := strings.IndexAny(word, " \t"); i >= 0 {
					word = word[:i]
				}
				switch word {
				case "allow":
					text := strings.TrimPrefix(rest, "allow")
					directive, reason, hasReason := strings.Cut(text, "--")
					check := strings.TrimSpace(directive)
					switch {
					case check == "":
						bad(c, "suppression names no check: //%s <check> -- <reason>", allowMarker)
					case strings.ContainsAny(check, " \t"):
						bad(c, "suppression must name exactly one check, got %q", check)
					case !known[check]:
						bad(c, "suppression names unknown check %q", check)
					case !hasReason || strings.TrimSpace(reason) == "":
						bad(c, "suppression of %q is missing its mandatory reason: //%s %s -- <reason>", check, allowMarker, check)
					default:
						allows.add(pkg.Fset.Position(c.Pos()), check)
					}
				case "pooled", "hotpath":
					// Annotation directives consumed by buildProgram.
				default:
					bad(c, "unknown rollvet directive %q; known directives are allow, pooled, hotpath",
						directivePrefix+word)
				}
			}
		}
	}
	return allows, diags
}
