package analysis

import (
	"go/ast"
	"go/types"
)

// detRandAllowed names the math/rand identifiers that are safe to reference:
// the constructors and types used to build explicitly seeded streams. Every
// other selector on the package is a top-level convenience function backed
// by the process-global, entropy-seeded source.
var detRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
	"Zipf":      true,
}

// DetRand enforces seeded-stream discipline: simulations must be replayable
// from a Config.Seed, so randomness has to flow through *rand.Rand values
// constructed with rand.New(rand.NewSource(seed)) and threaded from
// internal/sim (or internal/livenet's per-node seeds). The global functions
// (rand.Intn, rand.Float64, ...) draw from a shared source seeded from
// entropy and are banned outside test files.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "global math/rand functions are entropy-seeded; use seeded *rand.Rand streams",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if path := pn.Imported().Path(); path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if detRandAllowed[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"global math/rand.%s draws from the process-wide entropy-seeded source; thread a seeded *rand.Rand from the sim config instead",
				sel.Sel.Name)
			return true
		})
	}
}
