package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Source annotations read by the dataflow-capable checks. Unlike
// //rollvet:allow these are not suppressions — they *opt code in* to
// stricter invariants:
//
//	//rollvet:pooled   on a type declaration: values of this type live in a
//	                   recycled pool/arena; pointers to them must not escape
//	                   the handler that obtained them (check poolescape).
//	//rollvet:hotpath  on a function declaration: this function and every
//	                   function it statically calls must be allocation-free
//	                   (check hotalloc).
//
// Both markers go in the doc comment of the declaration they annotate.
const (
	pooledMarker  = "rollvet:pooled"
	hotpathMarker = "rollvet:hotpath"
)

// hasDirective reports whether the comment group carries the given marker
// as a standalone //rollvet:<name> line (optionally followed by prose).
func hasDirective(groups []*ast.CommentGroup, marker string) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text, ok := strings.CutPrefix(c.Text, "//"+marker)
			if ok && (text == "" || text[0] == ' ' || text[0] == '\t') {
				return true
			}
		}
	}
	return false
}

// funcBody locates the syntax of one module function.
type funcBody struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// Program is the whole-module view shared by every Pass of one
// CheckPackages run: the directive index (pooled types, hotpath roots) and
// a static callgraph over the loaded packages. Calls into packages outside
// the analyzed set (the standard library, or module packages excluded by
// the load patterns) are leaves: they are recorded as edges but never
// traversed, so dynamic dispatch through interfaces and function values
// bounds the reachable set instead of exploding it.
type Program struct {
	pooled map[*types.TypeName]bool
	roots  []*types.Func // //rollvet:hotpath functions, source order
	decls  map[*types.Func]funcBody
	calls  map[*types.Func][]*types.Func

	hot map[*types.Func]*types.Func // hot function -> the root that reaches it
}

// buildProgram indexes directives and the callgraph over pkgs. pkgs must be
// in a deterministic order (Load returns them sorted by import path), which
// makes root order — and therefore hot-set attribution — deterministic.
func buildProgram(pkgs []*Package) *Program {
	pr := &Program{
		pooled: make(map[*types.TypeName]bool),
		decls:  make(map[*types.Func]funcBody),
		calls:  make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					pr.decls[obj] = funcBody{pkg: pkg, decl: d}
					if hasDirective([]*ast.CommentGroup{d.Doc}, hotpathMarker) {
						pr.roots = append(pr.roots, obj)
					}
					if d.Body != nil {
						pr.calls[obj] = collectCallees(pkg.Info, d.Body)
					}
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if !hasDirective([]*ast.CommentGroup{d.Doc, ts.Doc, ts.Comment}, pooledMarker) {
							continue
						}
						if obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
							pr.pooled[obj] = true
						}
					}
				}
			}
		}
	}
	return pr
}

// collectCallees returns the statically resolvable callees of body, in
// first-occurrence order, deduplicated.
func collectCallees(info *types.Info, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeOf(info, call); fn != nil && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// calleeOf resolves a call to the *types.Func it statically invokes:
// package functions, methods (through concrete or interface receivers), but
// not function values, conversions, or builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// hotFuncs returns every function reachable from a //rollvet:hotpath root
// through the static callgraph (the roots included), mapped to the first
// root that reaches it. Built once per Program, on first use.
func (pr *Program) hotFuncs() map[*types.Func]*types.Func {
	if pr.hot != nil {
		return pr.hot
	}
	pr.hot = make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for _, r := range pr.roots {
		if _, ok := pr.hot[r]; ok {
			continue
		}
		pr.hot[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		root := pr.hot[fn]
		for _, callee := range pr.calls[fn] {
			if _, ok := pr.hot[callee]; ok {
				continue
			}
			if _, hasBody := pr.decls[callee]; !hasBody {
				continue // leaf: no syntax to scan or traverse
			}
			pr.hot[callee] = root
			queue = append(queue, callee)
		}
	}
	return pr.hot
}

// pooledPtrElem returns the pooled type name when t is a pointer to a
// //rollvet:pooled named type, and nil otherwise. Value copies of a pooled
// type are deliberately legal: copying the payload out of a slot is exactly
// how handlers are supposed to survive pool recycling.
func (pr *Program) pooledPtrElem(t types.Type) *types.TypeName {
	if t == nil || len(pr.pooled) == 0 {
		return nil
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || !pr.pooled[named.Obj()] {
		return nil
	}
	return named.Obj()
}
