package analysis

import "go/ast"

// Goroutine bans go statements in the deterministic packages. The simulator
// runs every process as a single-threaded event handler on the virtual
// clock; a goroutine inside protocol code would race the event loop and make
// replay depend on the Go scheduler. Concurrency belongs to
// internal/livenet, which owns the real-time execution model (and to test
// files, which are never loaded here).
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "no go statements in sim-driven packages; concurrency belongs to internal/livenet",
	Run:  runGoroutine,
}

func runGoroutine(pass *Pass) {
	if !detPackages[pass.Pkg.Name] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"go statement in deterministic package %s schedules work outside the event loop; move concurrency to internal/livenet",
					pass.Pkg.Name)
			}
			return true
		})
	}
}
