// Package analysis implements rollvet, the repo's determinism and
// protocol-invariant static analyzer.
//
// The whole reproduction rests on piecewise determinism: the simulator's
// virtual clock, seeded RNG streams, and replay that regenerates identical
// sends (DESIGN S1/S12; the paper's §4 correctness argument assumes a
// deterministic replay). Those invariants used to be enforced only by code
// review. This package makes them mechanical: a small analyzer framework
// built exclusively on the standard library (go/parser, go/ast, go/types
// with the source importer) walks every package and reports violations.
//
// Checks:
//
//   - simtime:   no wall-clock time.Now/Sleep/After/... outside
//     internal/livenet (sim-driven code must use the virtual clock).
//   - detrand:   no global math/rand top-level functions — only seeded
//     *rand.Rand streams threaded from the simulator configuration.
//   - maporder:  no map iteration in deterministic packages whose body can
//     leak the nondeterministic order into protocol-visible state.
//   - goroutine: no go statements in sim-driven packages — concurrency
//     belongs to internal/livenet.
//   - wiresync:  the wire.Kind constant table, its kindMax sentinel,
//     KindCount, and the String() name table stay in lockstep.
//   - poolescape: a pointer into a //rollvet:pooled arena (the sim kernel's
//     event slots) must not outlive the handler that obtained it — no
//     stores to fields/globals/maps/slices, no closure capture, no use
//     across a call that may recycle the pool.
//   - hotalloc:  functions annotated //rollvet:hotpath, and everything they
//     statically call, must not contain allocating constructs; this is the
//     compile-time explanation of the AllocsPerRun CI gates.
//   - stablewrite: error results from internal/storage and internal/wire
//     must be checked (an ignored stable-write error silently breaks the
//     f+1 stability guarantee), and a wire.Reader must have Err/Done
//     consulted before its values are trusted.
//   - kindswitch: a switch over wire.Kind without a default must enumerate
//     every kind, so new message kinds cannot silently fall through.
//
// Findings are suppressed per line with
//
//	//rollvet:allow <check> -- <reason>
//
// placed at the end of the offending line or on the line directly above
// it. The reason is mandatory: a suppression without one is itself a
// finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Finding is a diagnostic plus its suppression state. CheckPackagesAll
// returns findings (machine-readable output wants the suppressed ones too);
// CheckPackages keeps the original filtered view.
type Finding struct {
	Diagnostic
	Suppressed bool
}

// Pass hands one analyzer everything it needs to examine one package.
type Pass struct {
	Fset     *token.FileSet
	Pkg      *Package
	Files    []*ast.File
	TypesPkg *types.Package
	Info     *types.Info
	Prog     *Program // whole-run directive index and static callgraph

	check  string
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All is the full rollvet suite in reporting order.
var All = []*Analyzer{
	SimTime, DetRand, MapOrder, Goroutine, WireSync,
	PoolEscape, HotAlloc, StableWrite, KindSwitch,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// detPackages are the packages whose event handlers must be deterministic:
// they run identically during live execution and replay, so any order or
// scheduling nondeterminism in them breaks the recovery correctness
// argument. Identified by package name; the repo has exactly one of each.
var detPackages = map[string]bool{
	"fbl":        true,
	"det":        true,
	"recovery":   true,
	"coord":      true,
	"optimistic": true,
	"wire":       true,
	"sim":        true,
}

// CheckPackages runs every analyzer over every package, applies suppression
// comments, and returns the surviving findings sorted by position.
// Malformed or stale suppressions are returned as findings of check
// "suppress".
func CheckPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, f := range CheckPackagesAll(pkgs, analyzers) {
		if !f.Suppressed {
			out = append(out, f.Diagnostic)
		}
	}
	return out
}

// CheckPackagesAll is CheckPackages without the suppression filter: every
// finding is returned, suppressed ones flagged rather than dropped, so
// machine-readable consumers (cmd/rollvet -json) can expose the full
// picture. The whole package set is indexed once into a shared Program
// (pooled/hotpath directives plus the static callgraph) before any
// analyzer runs, so the dataflow checks see cross-package annotations.
func CheckPackagesAll(pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	prog := buildProgram(pkgs)
	var out []Finding
	for _, pkg := range pkgs {
		allows, supDiags := collectSuppressions(pkg, known)
		for _, d := range supDiags {
			out = append(out, Finding{Diagnostic: d})
		}
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Pkg:      pkg,
				Files:    pkg.Files,
				TypesPkg: pkg.Types,
				Info:     pkg.Info,
				Prog:     prog,
				check:    a.Name,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			a.Run(pass)
		}
		for _, d := range raw {
			out = append(out, Finding{Diagnostic: d, Suppressed: allows.covers(d)})
		}
		for _, d := range allows.stale() {
			out = append(out, Finding{Diagnostic: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}
