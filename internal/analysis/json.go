package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// JSONFinding is the machine-readable form of one finding. File paths are
// module-root-relative with forward slashes, so the output is byte-stable
// across machines and working directories.
type JSONFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Check      string `json:"check"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// jsonReport is the envelope cmd/rollvet -json emits. Total counts the
// findings that fail the build (unsuppressed); Suppressed counts the
// findings carried by a //rollvet:allow.
type jsonReport struct {
	Version    int           `json:"version"`
	Total      int           `json:"total"`
	Suppressed int           `json:"suppressed"`
	Findings   []JSONFinding `json:"findings"`
}

// ModuleRoot locates the module root directory for dir (the directory
// holding go.mod), for callers that want root-relative paths.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	root, _, err := findModule(abs)
	return root, err
}

// WriteJSON renders findings (as returned by CheckPackagesAll: sorted,
// suppressed entries included and flagged) as one indented JSON document.
// The encoding is deterministic: fixed field order, findings already
// position-sorted, paths relativized to root.
func WriteJSON(w io.Writer, root string, findings []Finding) error {
	rep := jsonReport{Version: 1, Findings: make([]JSONFinding, 0, len(findings))}
	for _, f := range findings {
		name := f.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		rep.Findings = append(rep.Findings, JSONFinding{
			File:       filepath.ToSlash(name),
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Check:      f.Check,
			Message:    f.Message,
			Suppressed: f.Suppressed,
		})
		if f.Suppressed {
			rep.Suppressed++
		} else {
			rep.Total++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
