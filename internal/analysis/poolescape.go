package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape polices pointers into recycled arenas. The sim kernel hands
// event handlers views into its flat slot arena (//rollvet:pooled); a slot
// is reused the moment the kernel releases it, so a pointer that outlives
// the handler — stored in a field, a global, a container, captured by a
// closure, or merely held across a call that can recycle the arena — reads
// someone else's event later. Value copies are the sanctioned way out and
// are never flagged.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "pointers into //rollvet:pooled arenas must not outlive the handler that obtained them",
	Run:  runPoolEscape,
}

func runPoolEscape(pass *Pass) {
	if len(pass.Prog.pooled) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolEscapes(pass, fd)
		}
	}
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(pass *Pass, v *types.Var) bool {
	return v.Parent() == pass.TypesPkg.Scope()
}

// pooledName labels a pooled pointer type for diagnostics, e.g. "sim.event".
func pooledName(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Name() + "." + tn.Name()
}

// callSpan is the source range of a call that could recycle an arena.
type callSpan struct{ pos, end token.Pos }

func checkPoolEscapes(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	pooledExpr := func(e ast.Expr) *types.TypeName {
		return pass.Prog.pooledPtrElem(info.TypeOf(e))
	}
	pooledVar := func(id *ast.Ident) (*types.Var, *types.TypeName) {
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return nil, nil
		}
		tn := pass.Prog.pooledPtrElem(v.Type())
		if tn == nil {
			return nil, nil
		}
		return v, tn
	}

	// Every call except builtins and conversions is assumed able to reach
	// the kernel and recycle slots; the use-after-call rule below compares
	// their ranges against pointer lifetimes.
	var calls []callSpan
	// defs records where each pooled-pointer local was (re)bound: the End
	// of the defining statement, in source order.
	defs := make(map[*types.Var][]token.Pos)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, cannot touch the arena
			}
			if id, ok := unparen(n.Fun).(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					return true
				}
			}
			calls = append(calls, callSpan{n.Pos(), n.End()})
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || pooledExpr(rhs) == nil {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if v, ok := info.Defs[id].(*types.Var); ok {
						defs[v] = append(defs[v], n.End())
					} else if v, ok := info.Uses[id].(*types.Var); ok && !isPackageLevel(pass, v) {
						defs[v] = append(defs[v], n.End())
					}
				}
			}
		case *ast.ValueSpec:
			for i, val := range n.Values {
				if i >= len(n.Names) || pooledExpr(val) == nil {
					continue
				}
				if v, ok := info.Defs[n.Names[i]].(*types.Var); ok {
					defs[v] = append(defs[v], n.End())
				}
			}
		}
		return true
	})

	// rebound marks assignment targets: overwriting a pooled local is a
	// rebinding, not a use of the stale pointer.
	rebound := make(map[*ast.Ident]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					rebound[id] = true
				}
			}
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				tn := pooledExpr(rhs)
				if tn == nil {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.SelectorExpr:
					pass.Reportf(n.Pos(),
						"pooled %s pointer stored to a field; the arena recycles the slot after the handler returns — copy the value instead",
						pooledName(tn))
				case *ast.IndexExpr:
					pass.Reportf(n.Pos(),
						"pooled %s pointer stored to a map or slice element that outlives the handler",
						pooledName(tn))
				case *ast.Ident:
					if v, ok := info.Uses[lhs].(*types.Var); ok && isPackageLevel(pass, v) {
						pass.Reportf(n.Pos(),
							"pooled %s pointer stored to package-level variable %s",
							pooledName(tn), v.Name())
					}
				case *ast.StarExpr:
					pass.Reportf(n.Pos(),
						"pooled %s pointer stored through a pointer that may outlive the handler",
						pooledName(tn))
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if tn := pooledExpr(val); tn != nil {
					pass.Reportf(val.Pos(),
						"pooled %s pointer stored in a composite literal that may outlive the handler",
						pooledName(tn))
				}
			}
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					for _, arg := range n.Args[1:] {
						if tn := pooledExpr(arg); tn != nil {
							pass.Reportf(arg.Pos(),
								"pooled %s pointer appended to a slice that may outlive the handler",
								pooledName(tn))
						}
					}
				}
			}
		case *ast.SendStmt:
			if tn := pooledExpr(n.Value); tn != nil {
				pass.Reportf(n.Pos(),
					"pooled %s pointer sent on a channel; the receiver sees a recycled slot",
					pooledName(tn))
			}
		case *ast.FuncLit:
			reportClosureCaptures(pass, n, pooledVar)
			return false // captures inside nested literals are reported there
		case *ast.Ident:
			if rebound[n] {
				return true
			}
			v, tn := pooledVar(n)
			if v == nil {
				return true
			}
			ends := defs[v]
			var defEnd token.Pos
			for _, e := range ends {
				if e <= n.Pos() && e > defEnd {
					defEnd = e
				}
			}
			if defEnd == token.NoPos {
				return true
			}
			for _, c := range calls {
				if c.pos >= defEnd && c.end <= n.Pos() {
					pass.Reportf(n.Pos(),
						"pooled %s pointer %s used after a call that may recycle the arena; copy the fields you need before the call",
						pooledName(tn), v.Name())
					break
				}
			}
		}
		return true
	})
}

// reportClosureCaptures flags pooled-pointer variables from an enclosing
// scope referenced inside a function literal: the closure may run after the
// arena slot has been recycled.
func reportClosureCaptures(pass *Pass, lit *ast.FuncLit, pooledVar func(*ast.Ident) (*types.Var, *types.TypeName)) {
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, tn := pooledVar(id)
		if v == nil || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal itself
		}
		seen[v] = true
		pass.Reportf(id.Pos(),
			"pooled %s pointer %s captured by a closure that may outlive the handler",
			pooledName(tn), v.Name())
		return true
	})
}
