package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapOrder flags range statements over maps, inside the deterministic
// packages, whose body can leak Go's randomized iteration order into
// protocol-visible state. A loop body is risky when it
//
//   - appends (the resulting slice order depends on iteration order),
//   - sends on a channel, or
//   - calls any function or method with a loop variable in reach (the
//     callee may record, transmit, or encode the element).
//
// Pure reads that fold commutatively (counting, min/max without calls,
// existence checks) pass. The fix is to iterate sorted keys — see
// fbl.sortedKeys — or, when the body is provably commutative (e.g. deleting
// a value-independent subset), to annotate the loop:
//
//	//rollvet:allow maporder -- <why the order cannot be observed>
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not reach messages, checkpoints, or replay schedules",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !detPackages[pass.Pkg.Name] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			loopVars := rangeVars(pass, rs)
			if risk := bodyRisk(pass, rs.Body, loopVars); risk != "" {
				pass.Reportf(rs.Pos(),
					"iterating %s in randomized map order %s; iterate sorted keys or annotate //rollvet:allow maporder -- <reason>",
					types.TypeString(t, types.RelativeTo(pass.TypesPkg)), risk)
			}
			return true
		})
	}
}

// rangeVars collects the objects bound by the range statement's key and
// value, for both := and = forms.
func rangeVars(pass *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, expr := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := expr.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

// bodyRisk describes why the loop body is order-sensitive, or returns "".
func bodyRisk(pass *Pass, body *ast.BlockStmt, loopVars map[types.Object]bool) string {
	risk := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if risk != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			risk = "and sending on a channel"
		case *ast.CallExpr:
			switch builtinName(pass, n) {
			case "append":
				risk = "and appending per element"
				return false
			case "len", "cap":
				// Pure; safe regardless of arguments.
				return false
			}
			if usesAny(pass, n, loopVars) {
				risk = fmt.Sprintf("and calling %s with the iteration element", callName(n))
				return false
			}
		}
		return true
	})
	return risk
}

// builtinName returns the name of the builtin being called, or "".
func builtinName(pass *Pass, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}

// usesAny reports whether the expression mentions any of the given objects.
func usesAny(pass *Pass, node ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && objs[pass.Info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// callName renders the callee for the diagnostic.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	default:
		return "a function"
	}
}
