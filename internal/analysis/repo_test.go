package analysis

import "testing"

// TestRepoInvariants runs the full rollvet suite over the repo itself — the
// root package and everything under internal/ — so plain `go test ./...`
// (the tier-1 gate) fails the moment a change reintroduces wall-clock
// reads, global randomness, order-leaking map iteration, stray goroutines,
// or a wire.Kind table mismatch. cmd/ and examples/ are covered by the
// `make lint` / CI invocation of `go run ./cmd/rollvet ./...`.
func TestRepoInvariants(t *testing.T) {
	pkgs, err := Load("../..", []string{".", "./internal/..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := CheckPackages(pkgs, All)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the code or, if the order is provably unobservable, annotate the line with //rollvet:allow <check> -- <reason>")
	}
}
