package analysis

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden fixtures under testdata/src mirror x/tools' analysistest
// convention: a trailing comment
//
//	// want "regexp"
//
// on a line declares that the suite must report a finding there whose
// message matches the regexp; multiple quoted patterns declare multiple
// findings. Lines without a want comment must stay silent. The fixtures run
// through the full CheckPackages pipeline, so the suppression path
// (//rollvet:allow ... -- reason) is exercised exactly as in production.

// loadFixture parses and type-checks one fixture directory as a standalone
// package (fixtures import only the standard library).
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s holds no Go files", dir)
	}
	pkg.RelDir = filepath.ToSlash(dir)
	pkg.ImportPath = "fixture/" + filepath.ToSlash(dir)
	imp := &moduleImporter{
		fset:   fset,
		mod:    map[string]*Package{pkg.ImportPath: pkg},
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		status: make(map[string]int),
	}
	if err := imp.ensure(pkg); err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	return pkg
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`want "([^"]*)"`)

// collectWants indexes every want pattern by file:line.
func collectWants(t *testing.T, pkg *Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// runFixture checks one fixture directory against its want comments.
func runFixture(t *testing.T, rel string) {
	t.Helper()
	pkg := loadFixture(t, filepath.Join("testdata", "src", filepath.FromSlash(rel)))
	wants := collectWants(t, pkg)
	for _, d := range CheckPackages([]*Package{pkg}, All) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q, got none", key, w.re)
			}
		}
	}
}

func TestSimTimeFixtures(t *testing.T) {
	runFixture(t, "simtime/clocked")
	runFixture(t, "simtime/livenet")
}

func TestDetRandFixtures(t *testing.T) {
	runFixture(t, "detrand/proto")
}

func TestMapOrderFixtures(t *testing.T) {
	runFixture(t, "maporder/fbl")
	runFixture(t, "maporder/plainpkg")
}

func TestGoroutineFixtures(t *testing.T) {
	runFixture(t, "goroutine/sim")
	runFixture(t, "goroutine/livenet")
}

func TestWireSyncFixtures(t *testing.T) {
	runFixture(t, "wiresync/good")
	runFixture(t, "wiresync/bad")
}

func TestPoolEscapeFixtures(t *testing.T) {
	runFixture(t, "poolescape/arena")
}

func TestHotAllocFixtures(t *testing.T) {
	runFixture(t, "hotalloc/hot")
}

func TestStableWriteFixtures(t *testing.T) {
	runFixture(t, "stablewrite/wire")
}

func TestKindSwitchFixtures(t *testing.T) {
	runFixture(t, "kindswitch/wire")
}

// TestInertSuppressions checks the stale-allow and unknown-directive
// findings: a suppression that silences nothing and a typoed rollvet
// directive must both surface instead of rotting silently.
func TestInertSuppressions(t *testing.T) {
	runFixture(t, "suppress/inert")
}

// TestMalformedSuppressions checks the driver refuses sloppy allow
// directives: each malformed form becomes a "suppress" finding and the
// underlying violation is still reported.
func TestMalformedSuppressions(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "suppress", "bad"))
	diags := CheckPackages([]*Package{pkg}, All)
	wantSubstrings := []string{
		"missing its mandatory reason",
		"names unknown check",
		"names no check",
		"must name exactly one check",
		"time.Now reads the wall clock", // the one under the reasonless allow
		"time.Now reads the wall clock", // the one under the unknown-check allow
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	for _, sub := range wantSubstrings {
		found := -1
		for i, m := range msgs {
			if strings.Contains(m, sub) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("no finding containing %q in %v", sub, msgs)
			continue
		}
		msgs = append(msgs[:found], msgs[found+1:]...)
	}
	if len(msgs) != 0 {
		t.Errorf("unexpected extra findings: %v", msgs)
	}
}

// TestByName keeps the CLI's -list mapping honest.
func TestByName(t *testing.T) {
	for _, a := range All {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName must return nil for unknown checks")
	}
}
