package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// KindSwitch enforces exhaustiveness on the wire protocol vocabulary: a
// switch over wire.Kind that has no default clause must enumerate every
// kind. The repo is about to grow CIC/partial-snapshot message kinds
// (ROADMAP), and a dispatch switch that silently falls through on a new
// kind drops protocol messages on the floor — the exact bug shape wiresync
// guards against at the constant-table level, lifted to the dispatch sites.
var KindSwitch = &Analyzer{
	Name: "kindswitch",
	Doc:  "a switch over wire.Kind without a default must enumerate every kind",
	Run:  runKindSwitch,
}

func runKindSwitch(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			kind := wireKindType(pass.Info.TypeOf(sw.Tag))
			if kind == nil {
				return true
			}
			covered := make(map[int64]bool)
			for _, stmt := range sw.Body.List {
				clause, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if clause.List == nil {
					return true // a default clause catches new kinds
				}
				for _, expr := range clause.List {
					tv, ok := pass.Info.Types[expr]
					if !ok || tv.Value == nil {
						continue
					}
					if v, exact := constant.Int64Val(tv.Value); exact {
						covered[v] = true
					}
				}
			}
			var missing []string
			for _, c := range kindConsts(kind) {
				if v, _ := constant.Int64Val(c.Val()); !covered[v] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(),
					"switch over %s.Kind has no default and misses %s; handle them or add a default clause",
					kind.Obj().Pkg().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// wireKindType returns t as a named type when it is the Kind vocabulary of
// a package named wire, and nil otherwise.
func wireKindType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Kind" || obj.Pkg() == nil || obj.Pkg().Name() != "wire" {
		return nil
	}
	return named
}

// kindConsts returns the exported Kind constants of the defining package in
// ascending value order. The unexported kindMax sentinel (and any other
// internal marker) is excluded: it is not a message kind.
func kindConsts(kind *types.Named) []*types.Const {
	scope := kind.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !types.Identical(c.Type(), kind) {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		vi, _ := constant.Int64Val(out[i].Val())
		vj, _ := constant.Int64Val(out[j].Val())
		return vi < vj
	})
	return out
}
