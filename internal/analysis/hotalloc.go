package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc is the compile-time face of the AllocsPerRun CI gates: functions
// annotated //rollvet:hotpath, plus everything they statically call inside
// the module, must not contain allocating constructs. Where the runtime
// gate says "1 alloc/op appeared", this check says which line. Flagged
// constructs:
//
//   - make, new
//   - &T{...}, slice and map literals (value struct literals stay legal —
//     they live on the stack unless something else makes them escape)
//   - every append (growth is what the pre-sized-arena design forbids;
//     amortized-growth sites carry a //rollvet:allow with their argument)
//   - non-constant string concatenation, string<->[]byte/[]rune conversions
//   - closure creation
//   - variadic calls with arguments (they materialize the argument slice)
//   - interface boxing of non-pointer concrete arguments
//
// Constructs inside panic(...) arguments are exempt: a panicking hot path
// is already off the measured path.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//rollvet:hotpath functions and their static callees must not allocate",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	hot := pass.Prog.hotFuncs()
	if len(hot) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			root, isHot := hot[obj]
			if !isHot {
				continue
			}
			where := fmt.Sprintf("in //rollvet:hotpath %s", obj.Name())
			if obj != root {
				where = fmt.Sprintf("in %s (reached from //rollvet:hotpath %s)", obj.Name(), root.Name())
			}
			checkHotBody(pass, fd.Body, where)
		}
	}
}

func checkHotBody(pass *Pass, body *ast.BlockStmt, where string) {
	info := pass.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(info, n) {
				return false // cold by definition; skip the argument subtree
			}
			checkHotCall(pass, n, where)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "taking the address of a composite literal allocates %s", where)
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates its backing array %s", where)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates %s", where)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !isConstExpr(info, n) && isStringType(info.TypeOf(n)) {
				pass.Reportf(n.Pos(), "string concatenation allocates %s", where)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure creation allocates %s", where)
			return false // its body executes elsewhere; the closure value is the cost here
		}
		return true
	})
}

// checkHotCall classifies one call in a hot body: builtin allocators, heap
// conversions, variadic slice materialization, and interface boxing.
func checkHotCall(pass *Pass, call *ast.CallExpr, where string) {
	info := pass.Info

	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: string <-> []byte/[]rune copies.
		if len(call.Args) == 1 {
			to, from := tv.Type, info.TypeOf(call.Args[0])
			if stringSliceConv(to, from) || stringSliceConv(from, to) {
				pass.Reportf(call.Pos(), "conversion between string and byte/rune slice allocates %s", where)
			}
		}
		return
	}

	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates %s", where)
			case "new":
				pass.Reportf(call.Pos(), "new allocates %s", where)
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array %s", where)
			}
			return
		}
	}

	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	nFixed := params.Len()
	if sig.Variadic() {
		nFixed--
		if !call.Ellipsis.IsValid() && len(call.Args) > nFixed {
			pass.Reportf(call.Pos(), "variadic call allocates its argument slice %s", where)
		}
	}
	for i, arg := range call.Args {
		if i >= nFixed {
			break // variadic tail already reported as the slice allocation
		}
		if boxed := boxesInterface(info, arg, params.At(i).Type()); boxed != "" {
			pass.Reportf(arg.Pos(), "passing %s as %s boxes the value and may allocate %s",
				boxed, params.At(i).Type().String(), where)
		}
	}
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}

func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringSliceConv reports a string -> []byte/[]rune shape (one direction).
func stringSliceConv(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	s, ok := to.Underlying().(*types.Slice)
	if !ok || !isStringType(from) {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return e.Kind() == types.Byte || e.Kind() == types.Rune
}

// boxesInterface returns the concrete type name when assigning arg to a
// parameter of interface type forces a heap box: non-pointer-shaped
// concrete values (structs, strings, slices, large scalars) are copied into
// an allocated box; pointers, channels, maps, and funcs fit the interface
// word directly, and nil costs nothing.
func boxesInterface(info *types.Info, arg ast.Expr, param types.Type) string {
	if param == nil {
		return ""
	}
	if _, ok := param.Underlying().(*types.Interface); !ok {
		return ""
	}
	tv, ok := info.Types[arg]
	if !ok || tv.IsNil() {
		return ""
	}
	at := tv.Type
	if at == nil {
		return ""
	}
	switch at.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return ""
	}
	return at.String()
}
