package analysis

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONDeterminism renders the same fixture twice through fresh loads
// and demands byte-identical output: the -json contract CI artifacts and
// diff tooling rely on. The stablewrite fixture is used because it carries
// both failing and suppressed findings.
func TestJSONDeterminism(t *testing.T) {
	render := func() string {
		pkg := loadFixture(t, filepath.Join("testdata", "src", "stablewrite", "wire"))
		var buf bytes.Buffer
		if err := WriteJSON(&buf, "", CheckPackagesAll([]*Package{pkg}, All)); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("JSON output is not byte-deterministic:\n--- first\n%s\n--- second\n%s", first, second)
	}

	var rep struct {
		Version    int `json:"version"`
		Total      int `json:"total"`
		Suppressed int `json:"suppressed"`
		Findings   []struct {
			File       string `json:"file"`
			Line       int    `json:"line"`
			Check      string `json:"check"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(first), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Version != 1 {
		t.Errorf("version = %d, want 1", rep.Version)
	}
	if rep.Total == 0 {
		t.Error("fixture should yield failing findings, got total = 0")
	}
	if rep.Suppressed == 0 {
		t.Error("fixture should yield a suppressed finding, got suppressed = 0")
	}
	if got := rep.Total + rep.Suppressed; got != len(rep.Findings) {
		t.Errorf("total %d + suppressed %d != %d findings", rep.Total, rep.Suppressed, len(rep.Findings))
	}
	sawSuppressed := false
	for _, f := range rep.Findings {
		if strings.Contains(f.File, "\\") {
			t.Errorf("file %q must use forward slashes", f.File)
		}
		if f.Suppressed {
			sawSuppressed = true
			if f.Check != "stablewrite" {
				t.Errorf("suppressed finding has check %q, want stablewrite", f.Check)
			}
		}
	}
	if !sawSuppressed {
		t.Error("no finding flagged suppressed: true")
	}
}

// TestJSONRelativizesPaths checks WriteJSON trims the module root prefix.
func TestJSONRelativizesPaths(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "kindswitch", "wire"))
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, root, CheckPackagesAll([]*Package{pkg}, All)); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := buf.String()
	if strings.Contains(out, filepath.ToSlash(root)) {
		t.Errorf("output still contains the absolute module root %q:\n%s", root, out)
	}
	if !strings.Contains(out, "testdata/src/kindswitch/wire/wire.go") {
		t.Errorf("expected root-relative fixture path in output:\n%s", out)
	}
}
