package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Test files (*_test.go) are excluded: the invariants guard the
// protocol implementation, and tests legitimately use wall clocks and
// unordered iteration.
type Package struct {
	Dir        string // absolute directory
	RelDir     string // slash-separated path relative to the module root ("" = root)
	ImportPath string
	Name       string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Load parses and type-checks the module containing dir using only the
// standard library: go/parser for syntax and go/types with the source
// importer for semantics. Intra-module imports are resolved against the
// module's own parsed packages so no compiled export data is ever needed.
// It returns the packages matching patterns, which follow the go tool's
// shape relative to dir: ".", "./pkg", "./pkg/..." or "./...".
func Load(dir string, patterns []string) ([]*Package, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(absDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	byPath, err := scanModule(fset, root, modPath)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{
		fset:   fset,
		mod:    byPath,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		status: make(map[string]int),
	}
	// Type-check deterministically: sorted import paths; dependencies are
	// pulled in recursively by the importer.
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := imp.ensure(byPath[p]); err != nil {
			return nil, err
		}
	}
	pats, err := resolvePatterns(absDir, root, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range paths {
		pkg := byPath[p]
		for _, pat := range pats {
			if pat.match(pkg.RelDir) {
				out = append(out, pkg)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %q under %s", patterns, absDir)
	}
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// scanModule parses every non-test package in the module. Directories named
// testdata or vendor and hidden/underscore directories are skipped, matching
// the go tool.
func scanModule(fset *token.FileSet, root, modPath string) (map[string]*Package, error) {
	byPath := make(map[string]*Package)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != root && (base == "testdata" || base == "vendor" ||
			strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		pkg, err := parseDir(fset, path)
		if err != nil {
			return err
		}
		if pkg == nil {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		pkg.RelDir = filepath.ToSlash(rel)
		if pkg.RelDir == "." {
			pkg.RelDir = ""
		}
		pkg.ImportPath = modPath
		if pkg.RelDir != "" {
			pkg.ImportPath = modPath + "/" + pkg.RelDir
		}
		byPath[pkg.ImportPath] = pkg
		return nil
	})
	if err != nil {
		return nil, err
	}
	return byPath, nil
}

// parseDir parses the non-test Go files of one directory; it returns nil if
// the directory holds no Go package.
func parseDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Name = f.Name.Name
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// moduleImporter resolves intra-module imports from the scanned packages and
// everything else (the standard library) through the source importer, so the
// loader never depends on compiled export data.
type moduleImporter struct {
	fset   *token.FileSet
	mod    map[string]*Package
	std    types.ImporterFrom
	status map[string]int // 0 unvisited, 1 in progress, 2 done
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := m.mod[path]; ok {
		if err := m.ensure(pkg); err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}

// ensure type-checks pkg (and, through the importer, its dependencies).
func (m *moduleImporter) ensure(pkg *Package) error {
	switch m.status[pkg.ImportPath] {
	case 2:
		return nil
	case 1:
		return fmt.Errorf("import cycle through %s", pkg.ImportPath)
	}
	m.status[pkg.ImportPath] = 1
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: m,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(pkg.ImportPath, m.fset, pkg.Files, info)
	if firstErr != nil {
		return fmt.Errorf("type-checking %s: %w", pkg.ImportPath, firstErr)
	}
	if err != nil {
		return fmt.Errorf("type-checking %s: %w", pkg.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	m.status[pkg.ImportPath] = 2
	return nil
}

// pattern is one resolved package pattern, as a module-root-relative
// directory prefix.
type pattern struct {
	rel       string // "" means the module root
	recursive bool
}

func (p pattern) match(relDir string) bool {
	if !p.recursive {
		return relDir == p.rel
	}
	return p.rel == "" || relDir == p.rel || strings.HasPrefix(relDir, p.rel+"/")
}

// resolvePatterns turns go-tool-style patterns relative to dir into
// module-root-relative matchers.
func resolvePatterns(dir, root string, patterns []string) ([]pattern, error) {
	base, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	base = filepath.ToSlash(base)
	if base == "." {
		base = ""
	}
	if strings.HasPrefix(base, "..") {
		return nil, fmt.Errorf("%s is outside module root %s", dir, root)
	}
	join := func(a, b string) string {
		switch {
		case a == "":
			return b
		case b == "":
			return a
		default:
			return a + "/" + b
		}
	}
	var out []pattern
	for _, raw := range patterns {
		p := strings.TrimPrefix(filepath.ToSlash(raw), "./")
		if p == "." {
			p = ""
		}
		rec := false
		if p == "..." {
			p, rec = "", true
		} else if rest, ok := strings.CutSuffix(p, "/..."); ok {
			p, rec = rest, true
		}
		out = append(out, pattern{rel: join(base, p), recursive: rec})
	}
	return out, nil
}
