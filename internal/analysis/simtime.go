package analysis

import (
	"go/ast"
	"go/types"
)

// wallClock lists the package-level time functions that read or schedule
// against the machine's real clock. time.Duration arithmetic and constants
// stay legal everywhere — only observing the wall clock is restricted.
var wallClock = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// SimTime enforces the virtual-clock discipline: the discrete-event
// simulator owns time (DESIGN S1), so protocol and simulator code must get
// "now" and timers from node.Env, never from the time package. Only
// internal/livenet — the wall-clock runtime — may touch the real clock.
// Test files are exempt by construction (they are never loaded).
var SimTime = &Analyzer{
	Name: "simtime",
	Doc:  "wall-clock time.* calls outside internal/livenet break deterministic replay",
	Run:  runSimTime,
}

func runSimTime(pass *Pass) {
	if pass.Pkg.Name == "livenet" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" || !wallClock[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock outside internal/livenet; sim-driven code must use the virtual clock (node.Env.Now/After)",
				sel.Sel.Name)
			return true
		})
	}
}
