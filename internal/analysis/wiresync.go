package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// WireSync keeps the wire protocol's Kind vocabulary consistent: every Kind
// constant must sit in [1, kindMax), values must be distinct and contiguous
// (the codec validates frames with kind < kindMax, and metrics size
// per-kind arrays with KindCount), KindCount must equal kindMax, and every
// kind needs an entry in the String() name table so traces never print
// "kind?". The runtime counterpart lives in internal/wire's tests, which
// round-trip every kind through the codec.
var WireSync = &Analyzer{
	Name: "wiresync",
	Doc:  "wire.Kind constants, kindMax, KindCount, and the String() table stay in lockstep",
	Run:  runWireSync,
}

func runWireSync(pass *Pass) {
	if pass.Pkg.Name != "wire" {
		return
	}
	scope := pass.TypesPkg.Scope()
	kindObj, ok := scope.Lookup("Kind").(*types.TypeName)
	if !ok {
		return // not a protocol vocabulary package
	}
	kindType := kindObj.Type()

	var kinds []*types.Const
	var sentinel *types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), kindType) {
			continue
		}
		if name == "kindMax" {
			sentinel = c
		} else {
			kinds = append(kinds, c)
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].Pos() < kinds[j].Pos() })
	if sentinel == nil {
		pass.Reportf(kindObj.Pos(), "type Kind has no kindMax sentinel closing its constant block")
		return
	}
	maxVal, _ := constant.Int64Val(sentinel.Val())

	// Bounds and duplicates.
	seen := make(map[int64]string)
	inRange := 0
	for _, c := range kinds {
		v, _ := constant.Int64Val(c.Val())
		if v < 1 || v >= maxVal {
			pass.Reportf(c.Pos(),
				"kind %s = %d is out of range [1, kindMax=%d); the codec rejects it and per-kind arrays cannot index it",
				c.Name(), v, maxVal)
			continue
		}
		if prev, dup := seen[v]; dup {
			pass.Reportf(c.Pos(), "kind %s = %d collides with %s", c.Name(), v, prev)
			continue
		}
		seen[v] = c.Name()
		inRange++
	}
	if int64(inRange) != maxVal-1 {
		pass.Reportf(sentinel.Pos(),
			"kind values are not contiguous: %d distinct kinds in range but kindMax = %d implies %d",
			inRange, maxVal, maxVal-1)
	}

	// KindCount must mirror the sentinel.
	if kc, ok := scope.Lookup("KindCount").(*types.Const); !ok {
		pass.Reportf(kindObj.Pos(), "package wire must export KindCount = int(kindMax)")
	} else if kcVal, _ := constant.Int64Val(kc.Val()); kcVal != maxVal {
		pass.Reportf(kc.Pos(), "KindCount = %d disagrees with kindMax = %d", kcVal, maxVal)
	}

	// Every kind needs a String() name so traces stay readable.
	names, namesPos := stringNameKeys(pass, kindType)
	if names == nil {
		pass.Reportf(kindObj.Pos(), "Kind has no String() method with a name-table literal")
		return
	}
	for _, c := range kinds {
		if v, _ := constant.Int64Val(c.Val()); v < 1 || v >= maxVal {
			continue // already reported above
		}
		if !names[c.Name()] {
			pass.Reportf(c.Pos(), "kind %s has no entry in the String() name table at %s",
				c.Name(), pass.Fset.Position(namesPos))
		}
	}
}

// stringNameKeys finds Kind's String() method and returns the set of
// constant names used as keys in its first keyed composite literal, plus the
// literal's position. It returns nil if no such method or literal exists.
func stringNameKeys(pass *Pass, kindType types.Type) (map[string]bool, token.Pos) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "String" || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recv := pass.Info.TypeOf(fd.Recv.List[0].Type)
			if recv == nil || !types.Identical(recv, kindType) {
				continue
			}
			var keys map[string]bool
			var pos token.Pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if keys != nil {
					return false
				}
				lit, ok := n.(*ast.CompositeLit)
				if !ok || len(lit.Elts) == 0 {
					return true
				}
				found := make(map[string]bool)
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						return true // not a keyed table
					}
					if id, ok := kv.Key.(*ast.Ident); ok {
						found[id.Name] = true
					}
				}
				keys, pos = found, lit.Pos()
				return false
			})
			if keys != nil {
				return keys, pos
			}
		}
	}
	return nil, token.NoPos
}
