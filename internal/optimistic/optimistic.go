// Package optimistic implements an optimistic message-logging protocol in
// the Strom–Yemini tradition [17], the other pole of the design space the
// paper positions FBL against (§6).
//
// Failure-free operation is cheaper than FBL's: each receiver logs its
// deliveries to its OWN stable storage asynchronously (no causal
// piggybacking of determinants, no sender involvement in replay) and
// messages carry only an n-entry dependency vector. The price is paid at
// failure time: deliveries that had not yet reached stable storage are
// lost, and any process whose state depends on a lost interval is an
// ORPHAN — it must roll back too, possibly cascading. The paper's §6:
// "Optimistic protocols reduce the overhead of tracking dependencies
// during failure-free operation at the expense of complicating recovery
// and the potential for processes that survive failures to become
// orphans."
//
// Mechanics:
//
//   - Delivery i at process p defines p's state interval i. Outgoing
//     messages carry p's transitive dependency vector dv (dv[q] = highest
//     interval of q that p's state depends on); receivers merge it.
//   - The delivery log (message + the dv in force after it) sits in a
//     volatile buffer, flushed to stable storage every FlushEvery.
//   - On crash, p restores by re-reading its stable log and replaying it
//     locally (re-executing sends, which receivers de-duplicate). Its
//     frontier is the logged length; everything beyond is lost. It then
//     broadcasts a retraction (victim, frontier, epoch).
//   - On a retraction, a process whose dv[victim] exceeds the frontier is
//     an orphan: it truncates its own log to the longest prefix not
//     depending on the lost suffix, replays locally, and broadcasts its
//     own retraction — the cascade.
//   - After any rollback, the process asks every peer to retransmit from
//     its (reverted) per-sender watermark; senders serve from volatile
//     send buffers, garbage-collected by flush notices.
package optimistic

import (
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/output"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

// Params configures one optimistic-logging process.
type Params struct {
	// N is the number of application processes.
	N int
	// App builds the hosted application.
	App workload.Factory
	// FlushEvery is the asynchronous log-flush period.
	FlushEvery time.Duration
	// StatePad models the per-flush stable-storage payload beyond the
	// entries themselves.
	StatePad int
	// RetryEvery is the retransmission-request retry period after a
	// rollback.
	RetryEvery time.Duration
	// Outputs receives the output-commit lifecycle (nil disables tracking;
	// Ctx.Output is then a no-op).
	Outputs output.Sink
	// Hooks observe the run.
	Hooks Hooks
}

// Hooks are optional observation callbacks.
type Hooks struct {
	// OnOrphan fires when a live process discovers it is an orphan; lost is
	// the number of its own deliveries it must abandon.
	OnOrphan func(self ids.ProcID, victim ids.ProcID, lost int64)
	// OnRecovered fires when a process finishes a local replay (after its
	// own crash or an orphan rollback).
	OnRecovered func(self ids.ProcID, epoch uint32, frontier int64)
}

// Stable-store keys.
const (
	keyLog   = "olog"
	keyEpoch = "oepoch"
)

// interval identifies one state interval of a process: the epoch
// (incarnation) it was created in and its index. Pairs order
// lexicographically; a retraction kills every pair of an older epoch
// beyond the surviving frontier (the Strom–Yemini incarnation end table).
type interval struct {
	epoch uint32
	index int64
}

func (a interval) less(b interval) bool {
	if a.epoch != b.epoch {
		return a.epoch < b.epoch
	}
	return a.index < b.index
}

type logEntry struct {
	from    ids.ProcID
	ssn     ids.SSN
	dseq    uint64
	payload []byte
	dv      []interval // dependency vector in force after this delivery
}

// endRecord says: intervals of victim with epoch <= upto and index >
// frontier are dead.
type endRecord struct {
	upto     uint32
	frontier int64
}

type sendRec struct {
	ssn     ids.SSN
	payload []byte
}

// Process is one optimistic-logging protocol instance.
type Process struct {
	env node.Env
	par Params
	n   int

	app     workload.App
	started bool
	epoch   uint32

	ssn     ids.SSN
	dseqOut []uint64
	sendBuf []map[uint64]sendRec // volatile retransmission buffers

	expDseq []uint64
	oooBuf  []map[uint64]*wire.Envelope

	dv       []interval // transitive dependency vector (self entry = own interval)
	log      []logEntry // full delivery log (prefix durable up to flushed)
	flushed  int        // entries durably on stable storage
	flushing bool

	// endTable[q] holds the incarnation end records for q: which of its
	// state intervals have been retracted. Messages depending on a dead
	// interval are rejected — this is what stops an abandoned timeline's
	// in-flight messages from resurrecting it.
	endTable []([]endRecord)

	epochVec []uint32 // newest known epoch per process (stale rejection)
	// durFrontier[q] is q's last announced durable interval frontier; the
	// componentwise-dominated prefix of our log is the globally stable
	// recovery line, the only part senders may garbage-collect against.
	durFrontier []int64
	rolling     bool // local replay in progress
	deferred    []*wire.Envelope
	retryTimer  node.Timer

	// Output commit (DESIGN §10).
	outSeq      uint64    // outputs requested so far on the surviving timeline
	pendingOuts []optWait // requested, causal past not yet fully durable
}

var _ node.Process = (*Process)(nil)

// New returns a node.Factory for optimistic-logging processes.
func New(par Params) node.Factory {
	if par.FlushEvery <= 0 {
		par.FlushEvery = 500 * time.Millisecond
	}
	if par.RetryEvery <= 0 {
		par.RetryEvery = time.Second
	}
	return func() node.Process { return &Process{par: par} }
}

// Boot implements node.Process.
func (p *Process) Boot(env node.Env, restart bool) {
	p.env = env
	p.n = env.N()
	p.dseqOut = make([]uint64, p.n)
	p.sendBuf = make([]map[uint64]sendRec, p.n)
	p.expDseq = make([]uint64, p.n)
	p.oooBuf = make([]map[uint64]*wire.Envelope, p.n)
	for i := 0; i < p.n; i++ {
		p.sendBuf[i] = make(map[uint64]sendRec)
		p.oooBuf[i] = make(map[uint64]*wire.Envelope)
	}
	p.dv = make([]interval, p.n)
	p.epochVec = make([]uint32, p.n)
	p.durFrontier = make([]int64, p.n)
	p.endTable = make([][]endRecord, p.n)
	p.app = p.par.App(env.ID(), p.n)

	var flushTick func()
	flushTick = func() {
		p.flush()
		p.env.After(p.par.FlushEvery, flushTick)
	}
	env.After(p.par.FlushEvery, flushTick)

	if !restart {
		p.epoch = 1
		p.epochVec[env.ID()] = 1
		p.started = true
		p.app.Start(appCtx{p})
		return
	}
	// Crash recovery: replay the durable log locally — no coordination
	// with anyone (the optimistic selling point) — then retract the lost
	// suffix.
	p.rolling = true
	env.ReadStable(keyEpoch, func(ed []byte, _ bool) {
		prevEpoch := parseEpoch(ed)
		env.ReadStable(keyLog, func(data []byte, ok bool) {
			if tr := env.Metrics().CurrentRecovery(); tr != nil {
				tr.RestoredAt = env.Now()
			}
			p.epoch = prevEpoch + 1
			p.epochVec[env.ID()] = p.epoch
			p.persistEpoch()
			var entries []logEntry
			if ok {
				entries = decodeLog(data, p.n)
			}
			p.rebuildFrom(entries)
			p.broadcastRetract()
			p.finishRollback()
		})
	})
}

func (p *Process) persistEpoch() {
	w := wire.NewWriter(4)
	w.U32(p.epoch)
	p.env.WriteStable(keyEpoch, w.Frame(), nil)
}

func parseEpoch(data []byte) uint32 {
	if len(data) < 4 {
		return 1
	}
	r := wire.NewReader(data)
	epoch := r.U32()
	if r.Err() != nil {
		return 1
	}
	return epoch
}

// selfIndex returns this process's current state-interval index (its
// delivery count on the surviving timeline).
func (p *Process) selfIndex() int64 { return p.dv[p.env.ID()].index }

// dead reports whether an interval of process q has been retracted.
func (p *Process) dead(q ids.ProcID, iv interval) bool {
	for _, r := range p.endTable[q] {
		if iv.epoch <= r.upto && iv.index > r.frontier {
			return true
		}
	}
	return false
}

// rebuildFrom resets all volatile state and replays the given log through a
// fresh application instance, re-executing (and re-transmitting) its sends.
func (p *Process) rebuildFrom(entries []logEntry) {
	p.ssn = 0
	p.dseqOut = make([]uint64, p.n)
	for i := 0; i < p.n; i++ {
		p.sendBuf[i] = make(map[uint64]sendRec)
		p.oooBuf[i] = make(map[uint64]*wire.Envelope)
	}
	p.expDseq = make([]uint64, p.n)
	// The self entry starts at zero and is re-merged from the replayed
	// entries (which carry their original epochs); new deliveries then
	// continue in the current epoch, which orders above all survivors.
	p.dv = make([]interval, p.n)
	p.log = nil
	p.flushed = 0
	// Replay re-executes the surviving prefix's outputs, re-requesting the
	// same sequence numbers; the ledger recognizes already-released ones.
	p.outSeq = 0
	p.pendingOuts = nil
	p.app = p.par.App(p.env.ID(), p.n)
	p.started = true
	p.app.Start(appCtx{p})
	for _, e := range entries {
		p.applyDelivery(e.from, e.ssn, e.dseq, e.payload, e.dv, true)
	}
	p.flushed = len(p.log)
}

func (p *Process) finishRollback() {
	if tr := p.env.Metrics().CurrentRecovery(); tr != nil && tr.ReplayedAt == 0 {
		tr.GatheredAt = p.env.Now()
		tr.ReplayedAt = p.env.Now()
		tr.Incarnation = p.epoch
	}
	if p.par.Hooks.OnRecovered != nil {
		p.par.Hooks.OnRecovered(p.env.ID(), p.epoch, p.selfIndex())
	}
	p.env.Logf("optimistic: recovered to interval %d (epoch %d)", p.selfIndex(), p.epoch)
	p.rolling = false
	// Recovery complete: the replayed (durable) prefix's outputs commit now.
	p.checkOutputs()
	buf := p.deferred
	p.deferred = nil
	for _, e := range buf {
		p.Deliver(e)
	}
	p.requestRetransmits()
	p.armRetry()
}

func (p *Process) broadcastRetract() {
	// Record our own retraction too: in-flight messages that causally depend
	// on the lost suffix must be stale-dropped, not delivered. Delivering
	// one would merge the dead intervals back into our dependency vector —
	// resurrecting the abandoned timeline and making us an orphan of our
	// own rollback when the peers' retractions arrive.
	p.endTable[p.env.ID()] = append(p.endTable[p.env.ID()],
		endRecord{upto: p.epoch - 1, frontier: p.selfIndex()})
	for q := 0; q < p.n; q++ {
		if ids.ProcID(q) == p.env.ID() {
			continue
		}
		p.env.Send(ids.ProcID(q), &wire.Envelope{
			Kind:    wire.KindRecoveryAnnounce, // reused as RETRACT in this protocol
			FromInc: ids.Incarnation(p.epoch),
			SSN:     ids.SSN(p.selfIndex()), // the surviving frontier
		})
	}
}

// requestRetransmits asks every peer to resend from our per-sender
// watermark (reusing the replay-request kind).
func (p *Process) requestRetransmits() {
	for q := 0; q < p.n; q++ {
		if ids.ProcID(q) == p.env.ID() {
			continue
		}
		p.env.Send(ids.ProcID(q), &wire.Envelope{
			Kind:    wire.KindReplayRequest,
			FromInc: ids.Incarnation(p.epoch),
			Dseq:    p.expDseq[q],
		})
	}
}

func (p *Process) armRetry() {
	if p.retryTimer != nil {
		p.retryTimer.Stop()
	}
	count := 0
	var tick func()
	tick = func() {
		// A few retries cover races around concurrent rollbacks; steady
		// state needs none.
		if count++; count > 5 {
			return
		}
		p.requestRetransmits()
		p.retryTimer = p.env.After(p.par.RetryEvery, tick)
	}
	p.retryTimer = p.env.After(p.par.RetryEvery, tick)
}
