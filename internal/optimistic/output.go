package optimistic

// This file implements the optimistic-logging output-commit rule (DESIGN
// §10): an output may be released once every state interval in its causal
// past is logged stable — its dependency vector is componentwise covered
// by the durable frontiers (own flushed log length, peers' announced
// flush frontiers). Until then the output could be orphaned by a crash
// anywhere in that past. The commit latency is therefore bounded by the
// slowest relevant flush period — the asynchronous-stable-write cost that
// defines the optimistic trade (§6).

// optWait is one requested output with the dependency vector in force at
// request time.
type optWait struct {
	seq uint64
	dv  []interval
}

// Output implements workload.Ctx.
func (c appCtx) Output(payload []byte) {
	p := c.p
	if p.par.Outputs == nil {
		return
	}
	p.outSeq++
	if !p.par.Outputs.Requested(p.env.ID(), p.outSeq, p.env.Now(), payload) {
		return // rollback re-execution of an already-released output
	}
	p.pendingOuts = append(p.pendingOuts, optWait{
		seq: p.outSeq,
		dv:  append([]interval(nil), p.dv...),
	})
	// An output with no unstable antecedents commits immediately.
	p.checkOutputs()
}

// checkOutputs releases every pending output whose causal past is now
// durable. It runs after each flush completes, on every flush notice from
// a peer, and when a rollback finishes; a rolling process defers releases,
// which is why crash-straddling outputs commit only after recovery.
func (p *Process) checkOutputs() {
	if len(p.pendingOuts) == 0 || p.rolling {
		return
	}
	p.durFrontier[p.env.ID()] = int64(p.flushed)
	now := p.env.Now()
	kept := p.pendingOuts[:0]
	for _, w := range p.pendingOuts {
		if p.dvDurable(w.dv) {
			p.par.Outputs.Committed(p.env.ID(), w.seq, now)
		} else {
			kept = append(kept, w)
		}
	}
	p.pendingOuts = kept
}

// dvDurable reports whether every component of dv is covered by the
// corresponding durable frontier (the same index-wise comparison as
// stablePrefix).
func (p *Process) dvDurable(dv []interval) bool {
	for q := 0; q < p.n; q++ {
		if dv[q].index > p.durFrontier[q] {
			return false
		}
	}
	return true
}
