package optimistic

import (
	"sort"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

// This file implements the delivery path, the asynchronous log flush, and
// orphan detection with cascading rollback.

// Deliver implements node.Process.
func (p *Process) Deliver(e *wire.Envelope) {
	// Learn epochs from any frame.
	if int(e.From) >= 0 && int(e.From) < p.n && uint32(e.FromInc) > p.epochVec[e.From] {
		p.epochVec[e.From] = uint32(e.FromInc)
	}
	switch e.Kind {
	case wire.KindApp:
		dv := dvFromWire(e, p.n)
		stale := uint32(e.FromInc) < p.epochVec[e.From]
		for q := 0; q < p.n && !stale; q++ {
			// The incarnation end table: a message whose state depends on
			// a retracted interval belongs to an abandoned timeline and
			// must never be consumed, or the dead execution would
			// resurrect itself through in-flight traffic.
			if p.dead(ids.ProcID(q), dv[q]) {
				stale = true
			}
		}
		if stale {
			p.env.Metrics().Stale++
			return
		}
		if p.rolling {
			p.deferred = append(p.deferred, e)
			return
		}
		p.deliverApp(e)
	case wire.KindRecoveryAnnounce: // retraction in this protocol
		if p.rolling {
			// Re-examined after our own rollback completes: we may be an
			// orphan of this victim too.
			p.deferred = append(p.deferred, e)
			return
		}
		p.onRetract(e)
	case wire.KindReplayRequest:
		p.serveRetransmit(e)
	case wire.KindCheckpointNotice: // flush notice in this protocol
		p.onFlushNotice(e)
	case wire.KindHeartbeat:
		// Liveness only.
	default:
		// Kinds owned by the other protocols (FBL storage traffic,
		// coordinated-checkpointing rounds) never reach an optimistic
		// cluster; dropping them is deliberate, not a missed dispatch.
	}
}

// deliverApp applies per-pair FIFO de-duplication, then the delivery.
func (p *Process) deliverApp(e *wire.Envelope) {
	from := int(e.From)
	exp := p.expDseq[from]
	switch {
	case e.Dseq <= exp:
		p.env.Metrics().Duplicate++
		return
	case e.Dseq > exp+1:
		p.oooBuf[from][e.Dseq] = e
		return
	}
	p.applyDelivery(e.From, e.SSN, e.Dseq, e.Payload, dvFromWire(e, p.n), false)
	for {
		next, ok := p.oooBuf[from][p.expDseq[from]+1]
		if !ok {
			break
		}
		delete(p.oooBuf[from], p.expDseq[from]+1)
		p.applyDelivery(next.From, next.SSN, next.Dseq, next.Payload, dvFromWire(next, p.n), false)
	}
}

// applyDelivery merges the incoming dependency vector, advances our state
// interval, logs the delivery, and runs the application. During replay,
// dvIn is the recorded post-delivery vector (which already counts this
// delivery in our own entry); live deliveries carry the sender's vector and
// the interval advances here.
func (p *Process) applyDelivery(from ids.ProcID, ssn ids.SSN, dseq uint64, payload []byte, dvIn []interval, replay bool) {
	p.expDseq[from] = dseq
	for i := 0; i < p.n && i < len(dvIn); i++ {
		if p.dv[i].less(dvIn[i]) {
			p.dv[i] = dvIn[i]
		}
	}
	if !replay {
		self := p.env.ID()
		p.dv[self] = interval{epoch: p.epoch, index: p.dv[self].index + 1}
	}
	entry := logEntry{
		from: from, ssn: ssn, dseq: dseq,
		payload: append([]byte(nil), payload...),
		dv:      append([]interval(nil), p.dv...),
	}
	p.log = append(p.log, entry)
	p.env.Metrics().Delivered++
	p.app.Handle(appCtx{p}, from, payload)
}

// appCtx implements workload.Ctx.
type appCtx struct{ p *Process }

var _ workload.Ctx = appCtx{}

func (c appCtx) Self() ids.ProcID { return c.p.env.ID() }
func (c appCtx) N() int           { return c.p.n }
func (c appCtx) Work(d int64)     { c.p.env.Busy(time.Duration(d)) }
func (c appCtx) Logf(format string, args ...any) {
	c.p.env.Logf(format, args...)
}

// Send transmits an application payload with the dependency vector
// piggyback; the copy kept in the volatile buffer serves retransmissions.
func (c appCtx) Send(to ids.ProcID, payload []byte) {
	p := c.p
	p.ssn++
	p.dseqOut[to]++
	dseq := p.dseqOut[to]
	cp := append([]byte(nil), payload...)
	p.sendBuf[to][dseq] = sendRec{ssn: p.ssn, payload: cp}
	// During replay the send is only recorded: re-transmitting the whole
	// re-executed prefix floods the network with duplicates (the peers
	// delivered almost all of it long ago) and queues seconds ahead of the
	// recovery control traffic on era links. Peers pull the part they are
	// actually missing — the victim's retract carries its frontier, and
	// anyone not orphaned by it answers with a replay-request watermark.
	if !p.rolling {
		p.transmit(to, dseq, sendRec{ssn: p.ssn, payload: cp})
	}
}

func (p *Process) transmit(to ids.ProcID, dseq uint64, rec sendRec) {
	idx := make([]ids.SSN, p.n)
	eps := make([]ids.Incarnation, p.n)
	for i, v := range p.dv {
		idx[i] = ids.SSN(v.index)
		eps[i] = ids.Incarnation(v.epoch)
	}
	p.env.Send(to, &wire.Envelope{
		Kind:          wire.KindApp,
		FromInc:       ids.Incarnation(p.epoch),
		SSN:           rec.ssn,
		Dseq:          dseq,
		Payload:       rec.payload,
		SSNWatermarks: idx, // the dependency vector indices ride here
		IncVec:        eps, // and the per-component epochs here
	})
}

func dvFromWire(e *wire.Envelope, n int) []interval {
	out := make([]interval, n)
	for i := 0; i < n; i++ {
		if i < len(e.SSNWatermarks) {
			out[i].index = int64(e.SSNWatermarks[i])
		}
		if i < len(e.IncVec) {
			out[i].epoch = uint32(e.IncVec[i])
		}
	}
	return out
}

// stablePrefix returns the longest log prefix that is globally stable: its
// dependency vectors are componentwise covered by every process's durable
// frontier, so no orphan truncation anywhere can ever cut into it. This is
// the recovery line; only it may drive sender-side garbage collection.
func (p *Process) stablePrefix() int {
	p.durFrontier[p.env.ID()] = int64(p.flushed)
	return sort.Search(len(p.log), func(i int) bool {
		for q := 0; q < p.n; q++ {
			if p.log[i].dv[q].index > p.durFrontier[q] {
				return true
			}
		}
		return false
	})
}

// flush writes the whole delivery log to stable storage asynchronously and
// announces the new durable frontier plus garbage-collection watermarks
// over the globally stable prefix. (A production implementation would
// append; rewriting keeps truncation after rollbacks trivial.)
func (p *Process) flush() {
	if p.flushing || p.rolling || p.flushed == len(p.log) {
		return
	}
	p.flushing = true
	upto := len(p.log)
	blob := encodeLog(p.log[:upto], p.par.StatePad)
	p.env.WriteStable(keyLog, blob, func() {
		p.flushing = false
		if upto > p.flushed {
			p.flushed = upto
		}
		p.checkOutputs()
		stable := p.stablePrefix()
		wm := make([]ids.SSN, p.n)
		for _, e := range p.log[:stable] {
			if d := ids.SSN(e.dseq); d > wm[e.from] {
				wm[e.from] = d
			}
		}
		for q := 0; q < p.n; q++ {
			if ids.ProcID(q) == p.env.ID() {
				continue
			}
			p.env.Send(ids.ProcID(q), &wire.Envelope{
				Kind:          wire.KindCheckpointNotice,
				FromInc:       ids.Incarnation(p.epoch),
				SSN:           ids.SSN(p.flushed), // durable interval frontier
				SSNWatermarks: wm,
			})
		}
	})
}

// onFlushNotice records the peer's durable frontier and garbage-collects
// the volatile send buffer up to its stable-prefix watermark.
func (p *Process) onFlushNotice(e *wire.Envelope) {
	self := int(p.env.ID())
	if self >= len(e.SSNWatermarks) || !e.From.Valid(p.n) || e.From.IsStorage() {
		return
	}
	p.durFrontier[e.From] = int64(e.SSN)
	p.checkOutputs()
	wm := uint64(e.SSNWatermarks[self])
	buf := p.sendBuf[e.From]
	//rollvet:allow maporder -- deletes the value-independent prefix d <= wm; commutative
	for d := range buf {
		if d <= wm {
			delete(buf, d)
		}
	}
}

// serveRetransmit resends buffered messages beyond the requester's
// watermark, in order.
func (p *Process) serveRetransmit(e *wire.Envelope) {
	to := e.From
	if !to.Valid(p.n) || to.IsStorage() {
		return
	}
	buf := p.sendBuf[to]
	dseqs := make([]uint64, 0, len(buf))
	//rollvet:allow maporder -- the sort below totally orders the unique dseq keys before transmission
	for d := range buf {
		if d > e.Dseq {
			dseqs = append(dseqs, d)
		}
	}
	sort.Slice(dseqs, func(i, j int) bool { return dseqs[i] < dseqs[j] })
	for _, d := range dseqs {
		p.transmit(to, d, buf[d])
	}
}

// onRetract is orphan detection: the victim announces the frontier that
// survived; if our state depends on anything beyond it, our state is based
// on a lost execution and we must roll back too (§6's orphan cascade).
func (p *Process) onRetract(e *wire.Envelope) {
	victim := e.From
	frontier := int64(e.SSN)
	newEpoch := uint32(e.FromInc)
	if !victim.Valid(p.n) || victim.IsStorage() || newEpoch == 0 {
		return
	}
	// Record the incarnation end: intervals of epochs before newEpoch
	// beyond the frontier are dead.
	p.endTable[victim] = append(p.endTable[victim], endRecord{upto: newEpoch - 1, frontier: frontier})
	if frontier < p.durFrontier[victim] {
		p.durFrontier[victim] = frontier
	}
	if !p.dead(victim, p.dv[victim]) {
		// Not an orphan. The victim replayed without re-transmitting its
		// re-executed sends; ask for the slice past our watermark (replies
		// of its durable suffix that were in flight when it crashed).
		p.env.Send(victim, &wire.Envelope{
			Kind:    wire.KindReplayRequest,
			FromInc: ids.Incarnation(p.epoch),
			Dseq:    p.expDseq[victim],
		})
		return
	}
	// Longest log prefix whose state does not depend on the lost suffix;
	// the dependence is monotone along the log.
	keep := sort.Search(len(p.log), func(i int) bool {
		return p.dead(victim, p.log[i].dv[victim])
	})
	lost := int64(len(p.log) - keep)
	if p.par.Hooks.OnOrphan != nil {
		p.par.Hooks.OnOrphan(p.env.ID(), victim, lost)
	}
	p.env.Logf("optimistic: orphaned by %v (frontier %d): rolling back %d deliveries",
		victim, frontier, lost)
	p.rolling = true
	p.epoch++
	p.epochVec[p.env.ID()] = p.epoch
	p.persistEpoch()
	kept := append([]logEntry(nil), p.log[:keep]...)
	// Truncate the durable log first so a crash cannot resurrect the
	// orphaned suffix.
	p.env.WriteStable(keyLog, encodeLog(kept, p.par.StatePad), func() {
		p.flushed = len(kept)
		p.rebuildFrom(kept)
		p.flushed = len(kept)
		p.broadcastRetract()
		p.finishRollback()
	})
}

// Introspection for tests and experiments.

// Interval returns the current state-interval index (delivery count on the
// surviving timeline).
func (p *Process) Interval() int64 { return p.selfIndex() }

// Epoch returns the rollback epoch.
func (p *Process) Epoch() uint32 { return p.epoch }

// App returns the hosted application.
func (p *Process) App() workload.App { return p.app }

// Rolling reports whether a rollback is in progress.
func (p *Process) Rolling() bool { return p.rolling }

// LogSizes returns (total, durable) delivery-log lengths.
func (p *Process) LogSizes() (total, durable int) { return len(p.log), p.flushed }

// encodeLog serializes the delivery log.
func encodeLog(entries []logEntry, pad int) []byte {
	w := wire.NewWriter(64 + len(entries)*64 + pad)
	w.U32(uint32(len(entries)))
	for _, e := range entries {
		w.I32(int32(e.from))
		w.U64(uint64(e.ssn))
		w.U64(e.dseq)
		w.Bytes(e.payload)
		w.U32(uint32(len(e.dv)))
		for _, v := range e.dv {
			w.U32(v.epoch)
			w.U64(uint64(v.index))
		}
	}
	w.Bytes(make([]byte, pad))
	return w.Frame()
}

// decodeLog parses a serialized delivery log.
func decodeLog(data []byte, n int) []logEntry {
	r := wire.NewReader(data)
	cnt := r.ListLen()
	out := make([]logEntry, 0, cnt)
	for i := 0; i < cnt && r.Err() == nil; i++ {
		var e logEntry
		e.from = ids.ProcID(r.I32())
		e.ssn = ids.SSN(r.U64())
		e.dseq = r.U64()
		e.payload = r.Bytes()
		dn := r.ListLen()
		e.dv = make([]interval, dn)
		for j := 0; j < dn; j++ {
			e.dv[j].epoch = r.U32()
			e.dv[j].index = int64(r.U64())
		}
		out = append(out, e)
	}
	r.Bytes() // padding
	if r.Err() != nil {
		panic("optimistic: corrupt stable log: " + r.Err().Error())
	}
	return out
}
