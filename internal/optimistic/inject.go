package optimistic

// Inject hands the application an open-loop arrival (a user request
// entering at this process). Unlike the other styles, optimistic logging
// can make injections crash-safe on any process: the arrival is recorded
// as a log entry from the process itself, so rebuildFrom replays it in
// receive order like any other delivery and the re-execution regenerates
// the same downstream sends with the same counters. The entry rides the
// existing logEntry/wire encoding (from is a signed field, and a
// self-entry's dseq uses the otherwise-idle expDseq[self] lane); it
// advances the state-interval index like any delivery, so the
// dependency-vector accounting — orphan detection, flush frontiers,
// output commits — covers injected work with no special cases.
//
// A rolling-back process sheds (returns false): its log suffix is being
// rebuilt and an interleaved fresh arrival would fork the replayed
// timeline.
func (p *Process) Inject(payload []byte) bool {
	if p.rolling {
		return false
	}
	self := p.env.ID()
	p.applyDelivery(self, 0, p.expDseq[self]+1, payload, nil, false)
	return true
}
