package optimistic

import (
	"testing"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/sim"
	"rollrec/internal/workload"
)

type harness struct {
	k         *sim.Kernel
	n         int
	orphans   []orphanEvent
	recovers  int
	crashes   int
	frontiers []int64 // recovered frontiers, in completion order
}

type orphanEvent struct {
	proc, victim ids.ProcID
	lost         int64
}

func fastHW() node.Hardware {
	hw := node.Profile1995()
	hw.WatchdogDetect = 300 * time.Millisecond
	hw.RestartDelay = 50 * time.Millisecond
	hw.SuspectAfter = 400 * time.Millisecond
	hw.HeartbeatEvery = 50 * time.Millisecond
	hw.CPUMsgCost = 50 * time.Microsecond
	hw.CPUByteCost = 0
	hw.Disk.Latency = 2 * time.Millisecond
	hw.Disk.ReadBandwidth = 50e6
	hw.Disk.WriteBandwidth = 50e6
	return hw
}

func newHarness(t *testing.T, n int, seed int64, app workload.Factory, flushEvery time.Duration) *harness {
	t.Helper()
	h := &harness{n: n}
	h.k = sim.New(sim.Config{Seed: seed, HW: fastHW()})
	par := Params{
		N:          n,
		App:        app,
		FlushEvery: flushEvery,
		StatePad:   2 << 10,
		RetryEvery: 200 * time.Millisecond,
		Hooks: Hooks{
			OnOrphan: func(p, v ids.ProcID, lost int64) {
				h.orphans = append(h.orphans, orphanEvent{p, v, lost})
			},
			OnRecovered: func(_ ids.ProcID, _ uint32, frontier int64) {
				h.recovers++
				h.frontiers = append(h.frontiers, frontier)
			},
		},
	}
	for i := 0; i < n; i++ {
		h.k.AddNode(ids.ProcID(i), New(par))
	}
	h.k.Boot()
	return h
}

func (h *harness) proc(i ids.ProcID) *Process {
	p, _ := h.k.ProcOf(i).(*Process)
	return p
}

func (h *harness) crashAt(at time.Duration, p ids.ProcID) {
	h.crashes++
	h.k.CrashAt(at, p)
}

func (h *harness) settled() bool {
	if h.recovers < h.crashes {
		return false
	}
	for i := 0; i < h.n; i++ {
		p := h.proc(ids.ProcID(i))
		if p == nil || p.Rolling() || !p.App().Done() {
			return false
		}
	}
	return true
}

func (h *harness) runUntilDone(t *testing.T, horizon time.Duration) {
	t.Helper()
	for d := time.Second; d <= horizon; d += time.Second {
		h.k.Run(d)
		if h.settled() {
			return
		}
	}
	for i := 0; i < h.n; i++ {
		if p := h.proc(ids.ProcID(i)); p != nil {
			total, durable := p.LogSizes()
			t.Logf("p%d epoch=%d interval=%d log=%d/%d rolling=%v done=%v",
				i, p.Epoch(), p.Interval(), durable, total, p.Rolling(), p.App().Done())
		}
	}
	t.Fatal("optimistic cluster did not settle")
}

func (h *harness) digests() []uint64 {
	out := make([]uint64, h.n)
	for i := 0; i < h.n; i++ {
		if p := h.proc(ids.ProcID(i)); p != nil {
			out[i] = p.App().Digest()
		}
	}
	return out
}

func ring(hops uint64) workload.Factory {
	return workload.NewTokenRing(hops, 32, int64(time.Millisecond))
}

func TestFailureFreeMatchesGolden(t *testing.T) {
	h := newHarness(t, 4, 1, ring(4000), 200*time.Millisecond)
	h.runUntilDone(t, 60*time.Second)
	if len(h.orphans) != 0 {
		t.Fatalf("failure-free run produced orphans: %v", h.orphans)
	}
	for i := 0; i < 4; i++ {
		total, durable := h.proc(ids.ProcID(i)).LogSizes()
		if durable == 0 || durable > total {
			t.Fatalf("p%d durable log %d/%d implausible", i, durable, total)
		}
	}
}

// TestCrashCreatesOrphans is the protocol's defining behavior: a crash
// wipes the unflushed suffix and processes that consumed its effects must
// roll back — the phenomenon FBL exists to prevent (paper §6).
func TestCrashCreatesOrphans(t *testing.T) {
	// Golden run for the final state.
	g := newHarness(t, 4, 2, ring(8000), 400*time.Millisecond)
	g.runUntilDone(t, 60*time.Second)

	h := newHarness(t, 4, 2, ring(8000), 400*time.Millisecond)
	// Crash just before a flush boundary so a fat suffix is lost: the ring
	// moves ~2200 hops/s, so ~350 ms past the last flush loses hundreds of
	// deliveries whose effects have long since reached every peer.
	h.crashAt(1390*time.Millisecond, 2)
	h.runUntilDone(t, 120*time.Second)

	if len(h.orphans) == 0 {
		t.Fatal("a mid-interval crash must orphan the processes that consumed the lost suffix")
	}
	var lost int64
	for _, o := range h.orphans {
		lost += o.lost
	}
	if lost == 0 {
		t.Fatal("orphans must have lost deliveries")
	}
	// Despite the cascade, the re-execution converges to the golden state.
	gd, hd := g.digests(), h.digests()
	for i := range gd {
		if gd[i] != hd[i] {
			t.Errorf("process %d digest %#x, want golden %#x", i, hd[i], gd[i])
		}
	}
}

func TestFrequentFlushesPreserveMoreState(t *testing.T) {
	slow := newHarness(t, 4, 3, ring(8000), 800*time.Millisecond)
	slow.crashAt(1500*time.Millisecond, 1)
	slow.runUntilDone(t, 120*time.Second)
	fast := newHarness(t, 4, 3, ring(8000), 50*time.Millisecond)
	fast.crashAt(1500*time.Millisecond, 1)
	fast.runUntilDone(t, 120*time.Second)
	// The crashed process's first recovered frontier is how much of its
	// execution survived: a tighter flush period must preserve more.
	if len(slow.frontiers) == 0 || len(fast.frontiers) == 0 {
		t.Fatal("no recoveries observed")
	}
	if fast.frontiers[0] <= slow.frontiers[0] {
		t.Fatalf("frequent flushing must preserve a larger frontier: slow=%d fast=%d",
			slow.frontiers[0], fast.frontiers[0])
	}
}

func TestRepeatedCrashesConverge(t *testing.T) {
	g := newHarness(t, 4, 5, ring(9000), 300*time.Millisecond)
	g.runUntilDone(t, 120*time.Second)

	h := newHarness(t, 4, 5, ring(9000), 300*time.Millisecond)
	h.crashAt(1100*time.Millisecond, 0)
	h.crashAt(2900*time.Millisecond, 3)
	h.runUntilDone(t, 240*time.Second)
	gd, hd := g.digests(), h.digests()
	for i := range gd {
		if gd[i] != hd[i] {
			t.Errorf("process %d digest %#x, want golden %#x", i, hd[i], gd[i])
		}
	}
}

func TestLogCodecRoundTrip(t *testing.T) {
	entries := []logEntry{
		{from: 1, ssn: 5, dseq: 2, payload: []byte("abc"),
			dv: []interval{{1, 1}, {1, 2}, {2, 3}}},
		{from: 2, ssn: 9, dseq: 1, payload: nil,
			dv: []interval{{1, 4}, {1, 5}, {2, 6}}},
	}
	out := decodeLog(encodeLog(entries, 128), 3)
	if len(out) != 2 {
		t.Fatalf("decoded %d entries", len(out))
	}
	if out[0].from != 1 || out[0].ssn != 5 || string(out[0].payload) != "abc" ||
		out[0].dv[2] != (interval{2, 3}) {
		t.Fatalf("entry 0 mismatch: %+v", out[0])
	}
	if out[1].dv[0] != (interval{1, 4}) {
		t.Fatalf("entry 1 mismatch: %+v", out[1])
	}
}
