// Package bitset provides a compact set of small non-negative integers.
//
// The protocol uses bitsets to track which hosts hold a copy of a
// determinant (the Log(m) set of the Family-Based Logging protocols): a
// determinant is stable once its holder set has reached cardinality f+1.
// Sets are value types; the zero value is the empty set.
package bitset
