package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueIsEmpty(t *testing.T) {
	var s Set
	if !s.Empty() || s.Count() != 0 {
		t.Fatalf("zero value not empty: count=%d", s.Count())
	}
	if s.Contains(0) || s.Contains(100) {
		t.Fatal("zero value contains elements")
	}
}

func TestAddContainsRemove(t *testing.T) {
	var s Set
	elems := []int{0, 1, 63, 64, 65, 127, 128, 500}
	for _, e := range elems {
		s.Add(e)
	}
	for _, e := range elems {
		if !s.Contains(e) {
			t.Errorf("missing %d after Add", e)
		}
	}
	if got := s.Count(); got != len(elems) {
		t.Fatalf("Count = %d, want %d", got, len(elems))
	}
	for _, e := range elems {
		s.Remove(e)
		if s.Contains(e) {
			t.Errorf("still contains %d after Remove", e)
		}
	}
	if !s.Empty() {
		t.Fatal("set not empty after removing everything")
	}
}

func TestAddIdempotent(t *testing.T) {
	var s Set
	s.Add(7)
	s.Add(7)
	if s.Count() != 1 {
		t.Fatalf("Count = %d after double add, want 1", s.Count())
	}
}

func TestNegativeIgnored(t *testing.T) {
	var s Set
	s.Add(-1)
	s.Remove(-5)
	if !s.Empty() || s.Contains(-1) {
		t.Fatal("negative elements must be ignored")
	}
}

func TestUnionAndSubtract(t *testing.T) {
	a := FromSlice([]int{1, 2, 3, 70})
	b := FromSlice([]int{3, 4, 200})
	a.Union(b)
	want := []int{1, 2, 3, 4, 70, 200}
	got := a.Elems()
	if len(got) != len(want) {
		t.Fatalf("union elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union elems = %v, want %v", got, want)
		}
	}
	a.Subtract(b)
	if a.Contains(3) || a.Contains(4) || a.Contains(200) {
		t.Fatalf("subtract left elements: %v", a.Elems())
	}
	if !a.Contains(1) || !a.Contains(70) {
		t.Fatalf("subtract removed too much: %v", a.Elems())
	}
}

func TestEqualIgnoresCapacity(t *testing.T) {
	a := New(1000)
	var b Set
	a.Add(3)
	b.Add(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("sets with same elements but different capacity must be Equal")
	}
	b.Add(999)
	if a.Equal(b) {
		t.Fatal("different sets reported Equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]int{1, 2})
	c := a.Clone()
	c.Add(3)
	if a.Contains(3) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestIntersects(t *testing.T) {
	a := FromSlice([]int{1, 65})
	b := FromSlice([]int{65})
	c := FromSlice([]int{2, 66})
	if !a.Intersects(b) {
		t.Fatal("a and b share 65")
	}
	if a.Intersects(c) {
		t.Fatal("a and c are disjoint")
	}
	var empty Set
	if a.Intersects(empty) || empty.Intersects(a) {
		t.Fatal("empty set intersects nothing")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	a := FromSlice([]int{0, 63, 64, 300})
	b := FromWords(a.Words())
	if !a.Equal(b) {
		t.Fatalf("round trip mismatch: %v vs %v", a, b)
	}
	// Trailing zero words must be trimmed.
	s := New(1024)
	s.Add(1)
	if got := len(s.Words()); got != 1 {
		t.Fatalf("Words() kept %d words, want 1", got)
	}
}

func TestString(t *testing.T) {
	s := FromSlice([]int{2, 0, 65})
	if got := s.String(); got != "{0,2,65}" {
		t.Fatalf("String = %q", got)
	}
	var e Set
	if got := e.String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// normalize keeps quick-generated elements small and non-negative so the
// properties exercise word boundaries without huge allocations.
func normalize(raw []uint16) []int {
	out := make([]int, len(raw))
	for i, v := range raw {
		out[i] = int(v % 300)
	}
	return out
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a1 := FromSlice(normalize(xs))
		b1 := FromSlice(normalize(ys))
		a2 := b1.Clone()
		b2 := a1.Clone()
		a1.Union(b1)
		a2.Union(b2)
		return a1.Equal(a2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionIdempotent(t *testing.T) {
	f := func(xs []uint16) bool {
		a := FromSlice(normalize(xs))
		b := a.Clone()
		a.Union(b)
		return a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionSupersets(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		ex, ey := normalize(xs), normalize(ys)
		a := FromSlice(ex)
		a.Union(FromSlice(ey))
		for _, e := range ex {
			if !a.Contains(e) {
				return false
			}
		}
		for _, e := range ey {
			if !a.Contains(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesElems(t *testing.T) {
	f := func(xs []uint16) bool {
		s := FromSlice(normalize(xs))
		return s.Count() == len(s.Elems())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWordsRoundTrip(t *testing.T) {
	f := func(xs []uint16) bool {
		s := FromSlice(normalize(xs))
		return FromWords(s.Words()).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := New(64)
	c := New(64)
	for i := 0; i < 32; i++ {
		a.Add(rng.Intn(64))
		c.Add(rng.Intn(64))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Union(c)
	}
}

func TestElemsFromSliceRoundTrip(t *testing.T) {
	cases := [][]int{
		nil,
		{0},
		{0, 1, 63, 64, 65, 127, 128, 500},
		{7, 7, 7}, // duplicates collapse
	}
	for _, elems := range cases {
		s := FromSlice(elems)
		back := FromSlice(s.Elems())
		if !s.Equal(back) {
			t.Errorf("FromSlice(%v).Elems() round trip mismatch: %v vs %v", elems, s, back)
		}
		got := back.Elems()
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Errorf("Elems() not strictly ascending: %v", got)
			}
		}
	}
}

func TestQuickElemsRoundTrip(t *testing.T) {
	f := func(xs []uint16) bool {
		s := FromSlice(normalize(xs))
		return FromSlice(s.Elems()).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHotOpsDoNotAllocate pins the invariant the //rollvet:hotpath callers
// rely on: once a set has grown to cover its element universe, the
// operations on the determinant hot path are allocation-free. Add's growth
// append carries the matching //rollvet:allow hotalloc and is exercised
// separately above.
func TestHotOpsDoNotAllocate(t *testing.T) {
	a := FromSlice([]int{1, 63, 64, 200})
	b := FromSlice([]int{2, 63, 199, 200})
	sink := false
	sinkInt := 0
	var sinkWords []uint64
	ops := map[string]func(){
		"Contains":   func() { sink = a.Contains(64) },
		"Count":      func() { sinkInt = a.Count() },
		"Empty":      func() { sink = a.Empty() },
		"Equal":      func() { sink = a.Equal(b) },
		"Intersects": func() { sink = a.Intersects(b) },
		"Words":      func() { sinkWords = a.Words() },
		"AddNoGrow":  func() { a.Add(100) },
		"Remove":     func() { a.Remove(100) },
		"Subtract":   func() { a.Subtract(b) },
		"UnionNoGrow": func() {
			// b's backing is no longer than a's, so Union never appends.
			a.Union(b)
		},
	}
	for name, op := range ops {
		if allocs := testing.AllocsPerRun(100, op); allocs != 0 {
			t.Errorf("%s allocates %.1f times per call; hot-path ops must be allocation-free", name, allocs)
		}
	}
	_, _, _ = sink, sinkInt, sinkWords
}

// TestGrowthSingleAllocation pins the n=1024 scaling fix: growing a set to
// cover element i must cost exactly one backing allocation, not one append
// per 64-bit word. At a 1024-process universe the old loop performed ~16
// appends (and up to 16 copies) per fresh holder set.
func TestGrowthSingleAllocation(t *testing.T) {
	for _, elem := range []int{0, 63, 64, 1023, 1024, 4096} {
		allocs := testing.AllocsPerRun(100, func() {
			var s Set
			s.Add(elem)
		})
		if allocs > 1 {
			t.Errorf("Add(%d) on a zero set allocates %.1f times, want 1", elem, allocs)
		}
		allocs = testing.AllocsPerRun(100, func() {
			s := FromSlice([]int{0})
			s.Add(elem)
		})
		if allocs > 2 { // FromSlice's word + at most one growth step
			t.Errorf("grow-to-%d allocates %.1f times, want <= 2", elem, allocs)
		}
	}
	big := New(4096)
	allocs := testing.AllocsPerRun(100, func() {
		var s Set
		s.Union(big)
	})
	if allocs > 1 {
		t.Errorf("Union growth allocates %.1f times, want 1", allocs)
	}
}

// TestRunCount checks the word-parallel run counter against a direct scan.
func TestRunCount(t *testing.T) {
	cases := []struct {
		elems []int
		want  int
	}{
		{nil, 0},
		{[]int{5}, 1},
		{[]int{5, 6, 7}, 1},
		{[]int{5, 7}, 2},
		{[]int{0, 63, 64, 65, 200}, 3},   // run straddles the word boundary
		{[]int{62, 63, 64, 127, 128}, 2}, // two straddling runs
		{[]int{0, 1, 2, 3, 1020, 1021, 1023}, 3},
	}
	for _, c := range cases {
		s := FromSlice(c.elems)
		if got := s.RunCount(); got != c.want {
			t.Errorf("RunCount(%v) = %d, want %d", c.elems, got, c.want)
		}
	}
}

// TestQuickRunCount cross-checks RunCount against a naive count over Elems.
func TestQuickRunCount(t *testing.T) {
	f := func(elems []uint16) bool {
		var s Set
		for _, e := range elems {
			s.Add(int(e))
		}
		naive := 0
		prev := -2
		for _, e := range s.Elems() {
			if e != prev+1 {
				naive++
			}
			prev = e
		}
		return s.RunCount() == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
