package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

// wordBits is the number of elements each backing word covers.
const wordBits = 64

// Set is a growable bitset. The zero value is an empty set ready for use.
// Methods with a pointer receiver may grow the backing storage; read-only
// methods take value receivers and never allocate.
type Set struct {
	words []uint64
}

// New returns a set pre-sized to hold elements in [0, n).
func New(n int) Set {
	if n <= 0 {
		return Set{}
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice builds a set containing exactly the given elements. Negative
// elements are ignored.
func FromSlice(elems []int) Set {
	var s Set
	for _, e := range elems {
		if e >= 0 {
			s.Add(e)
		}
	}
	return s
}

// Add inserts element i (i must be >= 0; negative values are ignored).
func (s *Set) Add(i int) {
	if i < 0 {
		return
	}
	w := i / wordBits
	if w >= len(s.words) {
		//rollvet:allow hotalloc -- growth is bounded by the holder-universe size (n+1 bits) and happens once per set
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	s.words[w] |= 1 << uint(i%wordBits)
}

// Remove deletes element i if present.
func (s *Set) Remove(i int) {
	if i < 0 {
		return
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(i%wordBits)
	}
}

// Contains reports whether element i is in the set.
func (s Set) Contains(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(i%wordBits)) != 0
}

// Count returns the cardinality of the set.
func (s Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// RunCount returns the number of maximal runs of consecutive set elements.
// A run starts at every set bit whose predecessor bit is clear; the count is
// computed word-at-a-time with a carry for runs that straddle word
// boundaries, so it never allocates. The wire codec uses it to decide when
// run-length encoding beats the sparse and dense holder representations.
func (s Set) RunCount() int {
	n := 0
	carry := uint64(0)
	for _, w := range s.words {
		n += bits.OnesCount64(w &^ (w<<1 | carry))
		carry = w >> 63
	}
	return n
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Union merges o into s in place and reports whether s changed.
func (s *Set) Union(o Set) bool {
	if len(s.words) < len(o.words) {
		grown := make([]uint64, len(o.words))
		copy(grown, s.words)
		s.words = grown
	}
	changed := false
	for i, w := range o.words {
		if s.words[i]|w != s.words[i] {
			s.words[i] |= w
			changed = true
		}
	}
	return changed
}

// Intersects reports whether s and o share at least one element.
func (s Set) Intersects(o Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Subtract removes every element of o from s in place.
func (s *Set) Subtract(o Set) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= o.words[i]
	}
}

// Equal reports whether s and o contain exactly the same elements,
// regardless of backing capacity.
func (s Set) Equal(o Set) bool {
	long, short := s.words, o.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	if len(s.words) == 0 {
		return Set{}
	}
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

// Elems returns the elements in ascending order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// Words returns the backing words with trailing zero words trimmed; used by
// the wire codec. The returned slice aliases the set and must not be
// modified.
func (s Set) Words() []uint64 {
	w := s.words
	for len(w) > 0 && w[len(w)-1] == 0 {
		w = w[:len(w)-1]
	}
	return w
}

// FromWords rebuilds a set from codec words. The slice is copied.
func FromWords(words []uint64) Set {
	if len(words) == 0 {
		return Set{}
	}
	w := make([]uint64, len(words))
	copy(w, words)
	return Set{words: w}
}

// String renders the set as "{a,b,c}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range s.Elems() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(e))
	}
	b.WriteByte('}')
	return b.String()
}
