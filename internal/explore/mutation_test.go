package explore

import (
	"context"
	"testing"
	"time"

	"rollrec/internal/fbl"
	"rollrec/internal/recovery"
)

// TestMutationDetected is the explorer's self-test: it seeds a known
// protocol bug (fbl.TestingDropDetPiggyback strips the causal-determinant
// piggyback from every send, so receipt orders never reach f+1 holders) and
// asserts the explorer actually finds a violating schedule — proving the
// invariant catalog does not pass vacuously — and that the emitted
// counterexample replays to a byte-identical branch fingerprint.
//
// Not parallel: the mutation knob is package-global.
func TestMutationDetected(t *testing.T) {
	fbl.TestingDropDetPiggyback = true
	defer func() { fbl.TestingDropDetPiggyback = false }()

	spec := testSpec(FamilyFBL, recovery.NonBlocking)
	// No checkpoint ever covers the deliveries: recovery must reconstruct
	// every receipt order from the (sabotaged) distributed determinant
	// copies, maximizing the mutation's blast radius.
	spec.CheckpointEvery = time.Hour
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) == 0 {
		t.Fatalf("mutation not detected: %d branches, 0 violations — the invariant checker is vacuous",
			rep.Branches)
	}
	t.Logf("mutation detected: %d violations across %d branches", rep.Violations, rep.Branches)

	cx := rep.Counterexamples[0]
	t.Logf("first counterexample:\n%s", cx)
	res, err := Replay(context.Background(), cx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced {
		t.Fatalf("counterexample did not reproduce on replay: %+v", res)
	}
	if !res.FingerprintMatch {
		t.Fatalf("replay fingerprint %#x differs from recorded %#x — branch not byte-identical",
			res.Fingerprint, cx.Fingerprint)
	}
}

// TestMutationAbsentIsClean double-checks the control: the identical spec
// without the mutation explores clean, so TestMutationDetected's violations
// are attributable to the seeded bug alone.
func TestMutationAbsentIsClean(t *testing.T) {
	spec := testSpec(FamilyFBL, recovery.NonBlocking)
	spec.CheckpointEvery = time.Hour
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, cx := range rep.Counterexamples {
		t.Errorf("counterexample:\n%s", cx)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d violations on the unmutated control", rep.Violations)
	}
}
