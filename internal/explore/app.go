package explore

import (
	"fmt"

	"rollrec/internal/ids"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

// The explorer's workloads are chosen for *detection power*, not realism:
// every delivery feeds an order-sensitive accumulator, so a protocol that
// loses, duplicates, or reorders even one message under some crash schedule
// ends the run with a different digest than the crash-free baseline — and
// every delivery also produces externally-visible output, so the ledger's
// commit rule is exercised on every branch.

// ringApp is a token ring (one causal chain, like workload.TokenRing) that
// additionally declares every hop externally visible via Ctx.Output. Used
// for the coordinated and optimistic families, whose recovery re-executes
// the deterministic chain.
type ringApp struct {
	self    ids.ProcID
	n       int
	maxHops uint64
	pad     int
	work    int64

	// Checkpointable state.
	visits  uint64
	lastHop uint64
	acc     uint64
	outs    uint64
}

// ringFactory returns a ring of maxHops hops.
func ringFactory(maxHops uint64, pad int, work int64) workload.Factory {
	return func(self ids.ProcID, n int) workload.App {
		return &ringApp{self: self, n: n, maxHops: maxHops, pad: pad, work: work}
	}
}

func (t *ringApp) token(hop, acc uint64) []byte {
	w := wire.NewWriter(16 + t.pad)
	w.U64(hop)
	w.U64(acc)
	w.Bytes(make([]byte, t.pad))
	return w.Frame()
}

func (t *ringApp) Start(ctx workload.Ctx) {
	if t.self == 0 && t.maxHops > 0 {
		ctx.Send(1%ids.ProcID(t.n), t.token(1, workload.Mix64(0, 0)))
	}
}

func (t *ringApp) Handle(ctx workload.Ctx, from ids.ProcID, payload []byte) {
	r := wire.NewReader(payload)
	hop := r.U64()
	acc := r.U64()
	r.Bytes()
	if r.Err() != nil {
		ctx.Logf("explore-ring: bad payload from %v: %v", from, r.Err())
		return
	}
	if t.work > 0 {
		ctx.Work(t.work)
	}
	t.visits++
	t.lastHop = hop
	t.acc = workload.Mix64(acc, uint64(t.self))
	t.outs++
	out := wire.NewWriter(16)
	out.U64(t.outs)
	out.U64(t.acc)
	ctx.Output(out.Frame())
	if hop < t.maxHops {
		next := ids.ProcID((int(t.self) + 1) % t.n)
		ctx.Send(next, t.token(hop+1, t.acc))
	}
}

func (t *ringApp) Snapshot() []byte {
	w := wire.NewWriter(32)
	w.U64(t.visits)
	w.U64(t.lastHop)
	w.U64(t.acc)
	w.U64(t.outs)
	return w.Frame()
}

func (t *ringApp) Restore(data []byte) error {
	r := wire.NewReader(data)
	t.visits = r.U64()
	t.lastHop = r.U64()
	t.acc = r.U64()
	t.outs = r.U64()
	if !r.Done() {
		return fmt.Errorf("explore: malformed ring snapshot")
	}
	return nil
}

func (t *ringApp) Digest() uint64 {
	return workload.Mix64(workload.Mix64(t.visits, t.lastHop), workload.Mix64(t.acc, t.outs))
}

func (t *ringApp) Done() bool {
	return t.lastHop+uint64(t.n) > t.maxHops && t.visits > 0
}

// funnelApp is a many-to-one request/reply workload: every client 1..n-1
// ping-pongs `rounds` requests at server 0, which folds them into a single
// *cross-sender order-sensitive* chain, outputs the chain state per request,
// and acks the sender. The server's digest depends on the exact global
// interleaving of client requests — the quantity a message-logging protocol
// must pin with determinants, and precisely what breaks when the
// determinant piggyback is sabotaged (the mutation self-test). Used for the
// FBL family.
type funnelApp struct {
	self   ids.ProcID
	n      int
	rounds uint64
	pad    int
	work   int64

	// Checkpointable state.
	chain   uint64 // server: order-sensitive fold of every request
	handled uint64 // server: requests processed
	acked   uint64 // client: replies received
	acc     uint64 // client: fold of observed server chain states
}

// funnelFactory returns a funnel of `rounds` requests per client.
func funnelFactory(rounds uint64, pad int, work int64) workload.Factory {
	return func(self ids.ProcID, n int) workload.App {
		return &funnelApp{self: self, n: n, rounds: rounds, pad: pad, work: work}
	}
}

func (f *funnelApp) frame(round, val uint64) []byte {
	w := wire.NewWriter(16 + f.pad)
	w.U64(round)
	w.U64(val)
	w.Bytes(make([]byte, f.pad))
	return w.Frame()
}

func (f *funnelApp) Start(ctx workload.Ctx) {
	if f.self != 0 && f.rounds > 0 {
		ctx.Send(0, f.frame(1, workload.Mix64(uint64(f.self), 1)))
	}
}

func (f *funnelApp) Handle(ctx workload.Ctx, from ids.ProcID, payload []byte) {
	r := wire.NewReader(payload)
	round := r.U64()
	val := r.U64()
	r.Bytes()
	if r.Err() != nil {
		ctx.Logf("explore-funnel: bad payload from %v: %v", from, r.Err())
		return
	}
	if f.work > 0 {
		// Content-dependent work staggers the clients asymmetrically, so the
		// server's cross-sender receipt order is a genuine race: a recovery
		// that replays from retransmission arrival order (burst-paced)
		// instead of logged determinants reconstructs a *different*
		// interleaving — the divergence the explorer's orphan and fidelity
		// invariants exist to catch.
		ctx.Work(f.work * (1 + int64(val%3)))
	}
	if f.self == 0 {
		// Server: fold in cross-sender arrival order, output, ack.
		f.chain = workload.Mix64(f.chain, workload.Mix64(val, uint64(from)<<20|round))
		f.handled++
		out := wire.NewWriter(16)
		out.U64(f.handled)
		out.U64(f.chain)
		ctx.Output(out.Frame())
		ctx.Send(from, f.frame(round, f.chain))
		return
	}
	// Client: absorb the server's chain state, issue the next round. The
	// per-client, per-round skew keeps the clients out of lockstep: the
	// server's original receipt order is irregular, while a sabotaged
	// replay paced by retransmission bursts is near-alternating — so the
	// two interleavings cannot coincide by accident.
	f.acked++
	f.acc = workload.Mix64(f.acc, val)
	if round < f.rounds {
		// Higher-id clients think much longer between rounds, so the fast
		// client laps the slow ones and the server's original receipt order
		// is far from a strict alternation — while a sabotaged replay fed by
		// back-to-back retransmission bursts IS near-alternating, so the two
		// interleavings cannot coincide by accident.
		if skew := f.work * int64(f.self-1) * int64(round) * 8; skew > 0 {
			ctx.Work(skew)
		}
		ctx.Send(0, f.frame(round+1, workload.Mix64(uint64(f.self), round+1)))
	}
}

func (f *funnelApp) Snapshot() []byte {
	w := wire.NewWriter(32)
	w.U64(f.chain)
	w.U64(f.handled)
	w.U64(f.acked)
	w.U64(f.acc)
	return w.Frame()
}

func (f *funnelApp) Restore(data []byte) error {
	r := wire.NewReader(data)
	f.chain = r.U64()
	f.handled = r.U64()
	f.acked = r.U64()
	f.acc = r.U64()
	if !r.Done() {
		return fmt.Errorf("explore: malformed funnel snapshot")
	}
	return nil
}

func (f *funnelApp) Digest() uint64 {
	return workload.Mix64(workload.Mix64(f.chain, f.handled), workload.Mix64(f.acked, f.acc))
}

func (f *funnelApp) Done() bool {
	if f.self == 0 {
		return f.handled >= uint64(f.n-1)*f.rounds
	}
	return f.acked >= f.rounds
}
