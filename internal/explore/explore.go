// Package explore is the exhaustive failure-schedule explorer: it exploits
// the byte-deterministic simulation kernel to enumerate crash schedules for
// small n over event-index boundaries — model-checking depth at
// bench-harness speed — and checks protocol invariants on every branch's
// terminal state.
//
// The decision-point model: a crash-free probe run records, via a
// step-boundary probe (sim.SetStepProbe) and the structured trace stream,
// the step indices right after every protocol-relevant event — application
// frame receipts, checkpoint/snapshot commits, stable-storage writes. Each
// (decision point × victim) pair becomes a branch: a fresh instance of the
// identical scenario re-run with sim.CrashAtStep landing the crash exactly
// between two events. Branches themselves record the step indices of
// recovery-phase transitions (restore, announce, gather, replay, restart),
// which seed a bounded second level of schedules whose second crash lands
// *inside* an in-progress recovery; a seeded-random frontier on top draws
// multi-crash schedules from the same candidate pool.
//
// The invariant catalog, checked on every branch:
//
//   - orphan-freedom / family safety: the family's own end-state checker
//     (cluster.Check for FBL: orphan deliveries, exactly-once, replay
//     fidelity, liveness, non-intrusion; liveness/rollback-completion
//     probes for coordinated and optimistic);
//   - state fidelity: terminal application digests must equal the
//     crash-free baseline's (the workloads are deterministic, so any loss,
//     duplication, or reordering of deliveries diverges the digest);
//   - output-commit safety: no output may be re-requested with different
//     content after its release (output.Ledger.SetOnConflict) — the
//     externally-visible inconsistency the commit rules exist to prevent;
//   - prefix fidelity: a branch's event stream before its first crash must
//     be byte-identical to the probe run's prefix (rolling step-stream
//     hash), pinning that schedules only diverge *at* the injected fault;
//   - bounded recovery: a branch must finish within BudgetFactor× the
//     baseline event count — a runaway retry/replay storm is a liveness
//     bug even when the state eventually converges.
//
// Every violation is minimized (greedy crash-removal while the violation
// reproduces) and emitted as a replayable counterexample: the exact
// failure.Plan plus the full Spec, which Replay re-executes to a
// byte-identical branch fingerprint.
package explore

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/recovery"
	"rollrec/internal/sim"
)

// Family selects the protocol family under exploration.
type Family string

const (
	// FamilyFBL is the paper's family-based-logging cluster (all three
	// recovery styles: nonblocking, blocking, manetho).
	FamilyFBL Family = "fbl"
	// FamilyCoordinated is Chandy–Lamport coordinated checkpointing.
	FamilyCoordinated Family = "coordinated"
	// FamilyOptimistic is optimistic message logging.
	FamilyOptimistic Family = "optimistic"
)

// Families returns every explorable family, in canonical order.
func Families() []Family { return []Family{FamilyFBL, FamilyCoordinated, FamilyOptimistic} }

// Spec parameterizes one exploration. The zero value of most fields selects
// a sensible default (see withDefaults); Family is required.
type Spec struct {
	// Family is the protocol family; Style further selects the FBL recovery
	// style (ignored by the other families).
	Family Family         `json:"family"`
	Style  recovery.Style `json:"style"`
	// N is the cluster size, F the FBL failure budget (F >= N selects the
	// f = n storage-backed instance).
	N int `json:"n"`
	F int `json:"f"`
	// Seed drives the scenario; every branch replays it exactly.
	Seed int64 `json:"seed"`
	// Horizon is the virtual-time budget of every branch. SettleSlack is
	// reserved at the tail: decision points are only taken from the first
	// Horizon-SettleSlack so every injected recovery has room to finish.
	Horizon     time.Duration `json:"horizon"`
	SettleSlack time.Duration `json:"settle_slack"`
	// CheckpointEvery is the family's periodic-commit knob: FBL checkpoint
	// interval, coordinated snapshot period, optimistic flush period.
	CheckpointEvery time.Duration `json:"checkpoint_every"`
	// MaxPoints caps the decision points (deterministic even subsample).
	MaxPoints int `json:"max_points"`
	// MaxCrashes bounds the crashes per schedule: 1 explores every single-
	// crash branch; >= 2 additionally aims second crashes inside the
	// recoveries observed on first-level branches (capped by DeepBranches).
	MaxCrashes   int `json:"max_crashes"`
	DeepBranches int `json:"deep_branches"`
	// Random adds that many seeded-random multi-crash branches on top of
	// the bounded-exhaustive pass.
	Random     int   `json:"random"`
	RandomSeed int64 `json:"random_seed"`
	// BudgetFactor bounds every branch's event count at
	// BudgetFactor*baseline + slack (the bounded-recovery invariant).
	BudgetFactor int `json:"budget_factor"`
}

func (s Spec) withDefaults() Spec {
	if s.N == 0 {
		s.N = 3
	}
	if s.F == 0 {
		s.F = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Horizon == 0 {
		s.Horizon = 12 * time.Second
	}
	if s.SettleSlack == 0 {
		s.SettleSlack = 6 * time.Second
	}
	if s.CheckpointEvery == 0 {
		switch s.Family {
		case FamilyCoordinated:
			s.CheckpointEvery = 1500 * time.Millisecond
		case FamilyOptimistic:
			s.CheckpointEvery = 400 * time.Millisecond
		default:
			s.CheckpointEvery = 2 * time.Second
		}
	}
	if s.MaxPoints == 0 {
		s.MaxPoints = 36
	}
	if s.MaxCrashes == 0 {
		s.MaxCrashes = 1
	}
	if s.DeepBranches == 0 {
		s.DeepBranches = 48
	}
	if s.Random > 0 && s.RandomSeed == 0 {
		s.RandomSeed = s.Seed + 1
	}
	if s.BudgetFactor == 0 {
		s.BudgetFactor = 4
	}
	return s
}

// Report is the outcome of one exploration.
type Report struct {
	Spec            Spec             `json:"spec"`
	Points          int              `json:"points"`
	Branches        int              `json:"branches"`
	Violations      int              `json:"violations"`
	BaselineEvents  int64            `json:"baseline_events"`
	Fingerprint     uint64           `json:"fingerprint"`
	Counterexamples []Counterexample `json:"counterexamples,omitempty"`
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mix(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

// foldStep accumulates one StepInfo into a rolling stream hash.
func foldStep(h uint64, s sim.StepInfo) uint64 {
	h = mix(h, uint64(s.Step))
	h = mix(h, uint64(s.At))
	h = mix(h, uint64(s.Kind))
	h = mix(h, uint64(uint32(s.Proc)))
	return h
}

// branchResult is everything one branch run yields.
type branchResult struct {
	fingerprint   uint64
	events        int64
	steps         int64
	digests       []uint64
	conflicts     []string
	famErrs       []string
	points        []point
	recSteps      []int64
	prefix        []uint64 // probe run only: prefix[i] = hash of steps < i
	prefixCut     uint64   // branch runs: hash of steps < first crash step
	cutSeen       bool
	stateFidelity bool // compare digests against the baseline (see instance)
}

// runBranch builds a fresh instance of the spec's scenario, applies the
// plan, runs it to the horizon, and collects the terminal evidence.
// recordAll additionally keeps the full per-step prefix-hash array (the
// probe run needs it; branches only need the hash at their own cut).
func runBranch(ctx context.Context, spec Spec, plan failure.Plan, recordAll bool) (*branchResult, error) {
	in := build(spec)
	res := &branchResult{}
	cut := int64(-1)
	for _, cr := range plan {
		if cr.Step > 0 && (cut < 0 || cr.Step < cut) {
			cut = cr.Step
		}
	}
	h := uint64(fnvOffset)
	in.kern.SetStepProbe(func(s sim.StepInfo) {
		if recordAll {
			res.prefix = append(res.prefix, h)
		}
		if s.Step == cut {
			res.prefixCut, res.cutSeen = h, true
		}
		h = foldStep(h, s)
	})
	in.applyPlan(plan)
	n, err := in.run(ctx, spec.Horizon)
	if err != nil {
		return nil, err
	}
	res.events = n
	res.steps = in.kern.Steps()
	res.digests = in.digests()
	res.conflicts = in.conflicts
	res.famErrs = in.endCheck()
	res.points = in.tracer.points
	res.recSteps = in.tracer.recSteps
	res.stateFidelity = in.stateFidelity
	res.fingerprint = h
	for _, d := range res.digests {
		res.fingerprint = mix(res.fingerprint, d)
	}
	return res, nil
}

// checkBranch evaluates the invariant catalog for one branch against the
// crash-free baseline. It returns every violation found.
func checkBranch(base, res *branchResult, plan failure.Plan, budget int64) []string {
	var v []string
	v = append(v, res.famErrs...)
	for _, c := range res.conflicts {
		v = append(v, "output-commit: "+c)
	}
	if res.stateFidelity {
		if len(res.digests) != len(base.digests) {
			v = append(v, "state-fidelity: digest cardinality diverged")
		} else {
			for i := range res.digests {
				if res.digests[i] != base.digests[i] {
					v = append(v, fmt.Sprintf(
						"state-fidelity: proc %d terminal digest %#x diverges from crash-free %#x",
						i, res.digests[i], base.digests[i]))
				}
			}
		}
	}
	cut := int64(-1)
	for _, cr := range plan {
		if cr.Step > 0 && (cut < 0 || cr.Step < cut) {
			cut = cr.Step
		}
	}
	if cut >= 0 && res.cutSeen && cut < int64(len(base.prefix)) && res.prefixCut != base.prefix[cut] {
		v = append(v, fmt.Sprintf(
			"prefix-fidelity: event stream before crash step %d diverged from the probe run (%#x vs %#x)",
			cut, res.prefixCut, base.prefix[cut]))
	}
	if res.events > budget {
		v = append(v, fmt.Sprintf(
			"bounded-recovery: branch processed %d events, budget %d (baseline %d)",
			res.events, budget, base.events))
	}
	return v
}

// selectPoints canonicalizes (sort by step, dedupe) and evenly subsamples
// the candidate decision points down to max.
func selectPoints(ps []point, max int) []point {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Step < ps[j].Step })
	out := ps[:0]
	var last int64 = -1
	for _, p := range ps {
		if p.Step != last {
			out = append(out, p)
			last = p.Step
		}
	}
	if len(out) <= max {
		return append([]point(nil), out...)
	}
	sub := make([]point, 0, max)
	for i := 0; i < max; i++ {
		sub = append(sub, out[i*len(out)/max])
	}
	return sub
}

// dedupeSteps canonicalizes a recovery-transition step list.
func dedupeSteps(ss []int64) []int64 {
	sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
	out := ss[:0]
	var last int64 = -1
	for _, s := range ss {
		if s != last {
			out = append(out, s)
			last = s
		}
	}
	return append([]int64(nil), out...)
}

// Run explores the spec and returns the report. It is deterministic: two
// runs of the same spec produce byte-identical reports (the double-run CI
// gate relies on it).
func Run(ctx context.Context, spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	base, err := runBranch(ctx, spec, nil, true)
	if err != nil {
		return nil, err
	}
	rep := &Report{Spec: spec, BaselineEvents: base.events, Fingerprint: base.fingerprint}
	if bad := append(append([]string(nil), base.famErrs...), base.conflicts...); len(bad) > 0 {
		// The crash-free probe run itself is inconsistent: exploring crash
		// schedules on top of a broken baseline is meaningless, so report
		// the empty schedule as the counterexample and stop.
		rep.Violations = 1
		rep.Counterexamples = append(rep.Counterexamples, Counterexample{
			Spec: spec, Violations: bad,
			Fingerprint: base.fingerprint, Events: base.events,
		})
		return rep, nil
	}

	points := selectPoints(base.points, spec.MaxPoints)
	rep.Points = len(points)
	budget := base.events*int64(spec.BudgetFactor) + 20_000
	r := &runner{spec: spec, base: base, budget: budget, rep: rep, fp: base.fingerprint}

	// Level 1: bounded-exhaustive single crashes — every decision point ×
	// every application process.
	type firstBranch struct {
		plan     failure.Plan
		recSteps []int64
	}
	var firsts []firstBranch
	for _, pt := range points {
		for v := 0; v < spec.N; v++ {
			plan := failure.Plan{{Step: pt.Step, Proc: ids.ProcID(v)}}
			res, err := r.branch(ctx, plan)
			if err != nil {
				return nil, err
			}
			if spec.MaxCrashes >= 2 && len(res.recSteps) > 0 {
				firsts = append(firsts, firstBranch{plan: plan, recSteps: dedupeSteps(res.recSteps)})
			}
		}
	}

	// Level 2: aim a second crash inside the recoveries the first level
	// exposed. Round-robin across first-level branches so the deep budget
	// spreads over distinct recoveries instead of exhausting one.
	if spec.MaxCrashes >= 2 {
		deep := 0
		for idx := 0; deep < spec.DeepBranches; idx++ {
			progressed := false
			for _, fb := range firsts {
				if idx >= len(fb.recSteps) || deep >= spec.DeepBranches {
					continue
				}
				progressed = true
				step := fb.recSteps[idx]
				for v := 0; v < spec.N && deep < spec.DeepBranches; v++ {
					plan := append(append(failure.Plan(nil), fb.plan...),
						failure.Crash{Step: step, Proc: ids.ProcID(v)})
					if _, err := r.branch(ctx, plan); err != nil {
						return nil, err
					}
					deep++
				}
			}
			if !progressed {
				break
			}
		}
	}

	// Seeded-random frontier: multi-crash schedules drawn from the same
	// candidate pool, deterministic per RandomSeed.
	if spec.Random > 0 && len(points) > 0 {
		rng := rand.New(rand.NewSource(spec.RandomSeed))
		for i := 0; i < spec.Random; i++ {
			k := 1 + rng.Intn(spec.MaxCrashes)
			var plan failure.Plan
			for j := 0; j < k; j++ {
				pt := points[rng.Intn(len(points))]
				plan = append(plan, failure.Crash{Step: pt.Step, Proc: ids.ProcID(rng.Intn(spec.N))})
			}
			if _, err := r.branch(ctx, plan.Sorted()); err != nil {
				return nil, err
			}
		}
	}

	rep.Fingerprint = r.fp
	return rep, nil
}

// MustRun is Run, panicking on context/runtime error (test convenience).
func MustRun(ctx context.Context, spec Spec) *Report {
	rep, err := Run(ctx, spec)
	if err != nil {
		panic(err)
	}
	return rep
}

// runner threads the exploration state through branch launches.
type runner struct {
	spec   Spec
	base   *branchResult
	budget int64
	rep    *Report
	fp     uint64
}

// branch runs one schedule, folds its fingerprint into the report, and —
// when the invariants are violated — minimizes the schedule and records a
// replayable counterexample.
func (r *runner) branch(ctx context.Context, plan failure.Plan) (*branchResult, error) {
	res, err := runBranch(ctx, r.spec, plan, false)
	if err != nil {
		return nil, err
	}
	r.rep.Branches++
	r.fp = mix(r.fp, res.fingerprint)
	if viol := checkBranch(r.base, res, plan, r.budget); len(viol) > 0 {
		r.rep.Violations++
		minPlan, minRes, minViol, err := r.minimize(ctx, plan, res, viol)
		if err != nil {
			return nil, err
		}
		r.rep.Counterexamples = append(r.rep.Counterexamples, Counterexample{
			Spec:        r.spec,
			Plan:        minPlan,
			Violations:  minViol,
			Fingerprint: minRes.fingerprint,
			Events:      minRes.events,
		})
	}
	return res, nil
}

// minimize greedily removes crashes while the schedule still violates some
// invariant, yielding the smallest reproducing sub-schedule.
func (r *runner) minimize(ctx context.Context, plan failure.Plan, res *branchResult, viol []string) (failure.Plan, *branchResult, []string, error) {
	cur, curRes, curViol := plan, res, viol
	for changed := true; changed && len(cur) > 1; {
		changed = false
		for i := range cur {
			cand := append(append(failure.Plan(nil), cur[:i]...), cur[i+1:]...)
			candRes, err := runBranch(ctx, r.spec, cand, false)
			if err != nil {
				return nil, nil, nil, err
			}
			if cv := checkBranch(r.base, candRes, cand, r.budget); len(cv) > 0 {
				cur, curRes, curViol = cand, candRes, cv
				changed = true
				break
			}
		}
	}
	return cur, curRes, curViol, nil
}
