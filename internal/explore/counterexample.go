package explore

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"rollrec/internal/failure"
)

// Counterexample is a replayable violation: the full Spec plus the exact
// crash schedule, enough to rebuild the scenario from scratch and land the
// same crashes at the same event boundaries. Fingerprint and Events pin the
// branch the explorer observed; Replay checks a fresh execution against
// both byte-for-byte.
type Counterexample struct {
	Spec        Spec         `json:"spec"`
	Plan        failure.Plan `json:"plan"`
	Violations  []string     `json:"violations"`
	Fingerprint uint64       `json:"fingerprint"`
	Events      int64        `json:"events"`
}

// String renders a one-glance summary.
func (cx Counterexample) String() string {
	s := fmt.Sprintf("%s/%s n=%d seed=%d: %d crash(es)", cx.Spec.Family, cx.Spec.Style, cx.Spec.N, cx.Spec.Seed, len(cx.Plan))
	for _, cr := range cx.Plan {
		if cr.Step > 0 {
			s += fmt.Sprintf(" [proc %d @ step %d]", cr.Proc, cr.Step)
		} else {
			s += fmt.Sprintf(" [proc %d @ t=%v]", cr.Proc, cr.At)
		}
	}
	for _, v := range cx.Violations {
		s += "\n  - " + v
	}
	return s
}

// ReplayResult is the verdict of re-executing a counterexample.
type ReplayResult struct {
	// Fingerprint and Events are the fresh execution's values.
	Fingerprint uint64 `json:"fingerprint"`
	Events      int64  `json:"events"`
	// Violations is the fresh execution's violation list.
	Violations []string `json:"violations"`
	// FingerprintMatch reports that the fresh branch was byte-identical to
	// the one the explorer recorded; Reproduced that it still violates the
	// invariants.
	FingerprintMatch bool `json:"fingerprint_match"`
	Reproduced       bool `json:"reproduced"`
}

// Replay re-executes a counterexample from scratch: a fresh crash-free
// probe run re-derives the baseline, then the recorded plan runs as a
// branch and is re-checked against the invariant catalog. Determinism of
// the kernel makes this exact — FingerprintMatch is a byte-identity claim,
// not a statistical one.
func Replay(ctx context.Context, cx Counterexample) (*ReplayResult, error) {
	spec := cx.Spec.withDefaults()
	base, err := runBranch(ctx, spec, nil, true)
	if err != nil {
		return nil, err
	}
	budget := base.events*int64(spec.BudgetFactor) + 20_000
	if len(cx.Plan) == 0 {
		// Probe-run counterexample: the violation is in the crash-free
		// execution itself.
		viol := append(append([]string(nil), base.famErrs...), base.conflicts...)
		return &ReplayResult{
			Fingerprint:      base.fingerprint,
			Events:           base.events,
			Violations:       viol,
			FingerprintMatch: base.fingerprint == cx.Fingerprint,
			Reproduced:       len(viol) > 0,
		}, nil
	}
	res, err := runBranch(ctx, spec, cx.Plan, false)
	if err != nil {
		return nil, err
	}
	viol := checkBranch(base, res, cx.Plan, budget)
	return &ReplayResult{
		Fingerprint:      res.fingerprint,
		Events:           res.events,
		Violations:       viol,
		FingerprintMatch: res.fingerprint == cx.Fingerprint,
		Reproduced:       len(viol) > 0,
	}, nil
}

// SaveCounterexample writes a counterexample as pretty-printed JSON.
func SaveCounterexample(path string, cx Counterexample) error {
	data, err := json.MarshalIndent(cx, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCounterexample reads a counterexample written by SaveCounterexample.
func LoadCounterexample(path string) (Counterexample, error) {
	var cx Counterexample
	data, err := os.ReadFile(path)
	if err != nil {
		return cx, err
	}
	if err := json.Unmarshal(data, &cx); err != nil {
		return cx, fmt.Errorf("explore: parsing %s: %w", path, err)
	}
	return cx, nil
}
