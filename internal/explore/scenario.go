package explore

import (
	"context"
	"fmt"
	"time"

	"rollrec/internal/cluster"
	"rollrec/internal/coord"
	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/optimistic"
	"rollrec/internal/output"
	"rollrec/internal/sim"
	"rollrec/internal/trace"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

// exploreHW is the accelerated hardware profile every exploration runs on:
// era-1995 cost ratios with detection/restart latencies compressed so a
// full crash-recovery cycle fits in a couple of virtual seconds — the same
// compression the coord/optimistic test harnesses use. All branches of one
// exploration share it, so cross-branch comparisons stay apples-to-apples.
func exploreHW() node.Hardware {
	hw := node.Profile1995()
	hw.WatchdogDetect = 300 * time.Millisecond
	hw.RestartDelay = 50 * time.Millisecond
	hw.SuspectAfter = 400 * time.Millisecond
	hw.HeartbeatEvery = 50 * time.Millisecond
	hw.CPUMsgCost = 50 * time.Microsecond
	hw.CPUByteCost = 0
	hw.Disk.Latency = 2 * time.Millisecond
	hw.Disk.ReadBandwidth = 50e6
	hw.Disk.WriteBandwidth = 50e6
	return hw
}

// point is one decision-point candidate: a step boundary right after an
// event the protocol state machine pivots on.
type point struct {
	Step int64  `json:"step"`
	At   int64  `json:"at"`
	Why  string `json:"why"`
}

// maxRecorded bounds the tracer's memory on pathological branches.
const maxRecorded = 1 << 16

// decisionTracer derives decision points from the structured trace stream:
// application-relevant frame receipts (anything but heartbeats), checkpoint
// captures, and stable-storage writes become crash candidates; recovery-
// phase transitions (restore, announce, gather, replay, restart) are
// recorded separately so a second crash can be aimed *inside* an
// in-progress recovery. The step index is read from the kernel mid-
// dispatch, which names the boundary immediately after the observed event.
type decisionTracer struct {
	steps      func() int64 // kernel step counter; wired after kernel build
	pointLimit int64        // only events at/before this virtual time become candidates
	points     []point
	recSteps   []int64
}

var _ trace.Tracer = (*decisionTracer)(nil)

func (d *decisionTracer) Enabled() bool { return true }

func (d *decisionTracer) mark(ts int64, why string) {
	if d.steps == nil || ts > d.pointLimit || len(d.points) >= maxRecorded {
		return
	}
	d.points = append(d.points, point{Step: d.steps(), At: ts, Why: why})
}

func (d *decisionTracer) markRec(ts int64) {
	if d.steps == nil || ts > d.pointLimit || len(d.recSteps) >= maxRecorded {
		return
	}
	d.recSteps = append(d.recSteps, d.steps())
}

func (d *decisionTracer) Instant(ts int64, proc int32, name string, tag trace.Tag) {
	switch name {
	case trace.EvRecv:
		if tag.Kind == uint8(wire.KindHeartbeat) {
			return
		}
		d.mark(ts, fmt.Sprintf("recv-kind-%d", tag.Kind))
	case trace.EvAnnounce, trace.EvGatherAbort, trace.EvRestart:
		d.markRec(ts)
	}
}

func (d *decisionTracer) Begin(ts int64, proc int32, name string, tag trace.Tag) trace.SpanRef {
	switch name {
	case trace.EvCheckpoint:
		d.mark(ts, "checkpoint")
	case trace.EvRestore, trace.EvWaiting, trace.EvGather, trace.EvReplay:
		d.markRec(ts)
	}
	return 0
}

func (d *decisionTracer) End(ref trace.SpanRef, ts int64) {}

func (d *decisionTracer) Span(ts, dur int64, proc int32, name string, tag trace.Tag) {
	if name == trace.EvStorageWrite {
		d.mark(ts, "storage-write")
	}
}

// instance is one freshly-built scenario, ready to run exactly once.
type instance struct {
	kern      *sim.Kernel
	tracer    *decisionTracer
	conflicts []string
	applyPlan func(failure.Plan)
	run       func(ctx context.Context, until time.Duration) (int64, error)
	digests   func() []uint64
	endCheck  func() []string
	// stateFidelity marks that terminal digests must equal the crash-free
	// baseline's. Valid only when the workload is a single causal chain
	// (coordinated/optimistic ring): the FBL funnel's digest depends on the
	// cross-sender arrival interleaving, which message logging pins only
	// for deliveries that happened *before* the crash — post-crash
	// interleavings may legitimately differ from a crash-free execution,
	// so FBL relies on the protocol-level checks (orphans, exactly-once,
	// replay fidelity) instead.
	stateFidelity bool
}

func (in *instance) watchConflicts(led *output.Ledger) {
	led.SetOnConflict(func(proc ids.ProcID, seq uint64, oldHash, newHash uint64) {
		in.conflicts = append(in.conflicts, fmt.Sprintf(
			"proc %d output #%d re-requested with different content after release (%#x -> %#x)",
			proc, seq, oldHash, newHash))
	})
}

// build constructs a fresh instance of the spec's scenario. Workload sizes
// are fixed per family: small enough that the bounded-exhaustive pass stays
// cheap, busy enough that decision points cover sends, commits, and
// storage traffic.
func build(spec Spec) *instance {
	switch spec.Family {
	case FamilyFBL:
		return buildFBL(spec)
	case FamilyCoordinated:
		return buildCoord(spec)
	case FamilyOptimistic:
		return buildOptimistic(spec)
	default:
		panic(fmt.Sprintf("explore: unknown family %q", spec.Family))
	}
}

func buildFBL(spec Spec) *instance {
	dt := &decisionTracer{pointLimit: int64(spec.Horizon - spec.SettleSlack)}
	c := cluster.New(cluster.Config{
		N:               spec.N,
		F:               spec.F,
		Seed:            spec.Seed,
		HW:              exploreHW(),
		Style:           spec.Style,
		App:             funnelFactory(5, 64, int64(200*time.Microsecond)),
		CheckpointEvery: spec.CheckpointEvery,
		StatePad:        16 << 10,
		Tracer:          dt,
		TrackOutputs:    true,
	})
	k := c.Kernel()
	dt.steps = k.Steps
	in := &instance{
		kern:      k,
		tracer:    dt,
		applyPlan: c.ApplyPlan,
		run:       c.RunContext,
		digests:   c.Digests,
		endCheck: func() []string {
			var out []string
			for _, err := range c.Check() {
				out = append(out, err.Error())
			}
			return out
		},
	}
	in.watchConflicts(c.Outputs())
	return in
}

func buildCoord(spec Spec) *instance {
	dt := &decisionTracer{pointLimit: int64(spec.Horizon - spec.SettleSlack)}
	led := output.NewLedger(spec.N)
	k := sim.New(sim.Config{Seed: spec.Seed, HW: exploreHW(), Tracer: dt})
	dt.steps = k.Steps
	led.SetMetrics(k.Metrics)
	par := coord.Params{
		N:             spec.N,
		App:           workload.Seeded(ringFactory(uint64(8*spec.N), 64, int64(500*time.Microsecond)), spec.Seed),
		SnapshotEvery: spec.CheckpointEvery,
		StatePad:      8 << 10,
		Outputs:       led,
	}
	for i := 0; i < spec.N; i++ {
		k.AddNode(ids.ProcID(i), coord.New(par))
	}
	k.Boot()
	in := &instance{kern: k, tracer: dt, stateFidelity: true}
	in.watchConflicts(led)
	in.applyPlan = kernelPlan(k)
	in.run = k.RunContext
	in.digests = func() []uint64 {
		out := make([]uint64, spec.N)
		for i := 0; i < spec.N; i++ {
			if p, ok := k.ProcOf(ids.ProcID(i)).(*coord.Process); ok {
				out[i] = p.App().Digest()
			}
		}
		return out
	}
	in.endCheck = func() []string {
		var out []string
		for i := 0; i < spec.N; i++ {
			p, ok := k.ProcOf(ids.ProcID(i)).(*coord.Process)
			if !ok {
				out = append(out, fmt.Sprintf("liveness: proc %d still down at horizon", i))
				continue
			}
			if p.Recovering() {
				out = append(out, fmt.Sprintf("liveness: proc %d still recovering at horizon", i))
			}
			if !p.App().Done() {
				out = append(out, fmt.Sprintf("liveness: proc %d workload incomplete at horizon", i))
			}
		}
		return out
	}
	return in
}

func buildOptimistic(spec Spec) *instance {
	dt := &decisionTracer{pointLimit: int64(spec.Horizon - spec.SettleSlack)}
	led := output.NewLedger(spec.N)
	k := sim.New(sim.Config{Seed: spec.Seed, HW: exploreHW(), Tracer: dt})
	dt.steps = k.Steps
	led.SetMetrics(k.Metrics)
	par := optimistic.Params{
		N:          spec.N,
		App:        workload.Seeded(ringFactory(uint64(8*spec.N), 64, int64(500*time.Microsecond)), spec.Seed),
		FlushEvery: spec.CheckpointEvery,
		StatePad:   2 << 10,
		RetryEvery: 200 * time.Millisecond,
		Outputs:    led,
	}
	for i := 0; i < spec.N; i++ {
		k.AddNode(ids.ProcID(i), optimistic.New(par))
	}
	k.Boot()
	in := &instance{kern: k, tracer: dt, stateFidelity: true}
	in.watchConflicts(led)
	in.applyPlan = kernelPlan(k)
	in.run = k.RunContext
	in.digests = func() []uint64 {
		out := make([]uint64, spec.N)
		for i := 0; i < spec.N; i++ {
			if p, ok := k.ProcOf(ids.ProcID(i)).(*optimistic.Process); ok {
				out[i] = p.App().Digest()
			}
		}
		return out
	}
	in.endCheck = func() []string {
		var out []string
		for i := 0; i < spec.N; i++ {
			p, ok := k.ProcOf(ids.ProcID(i)).(*optimistic.Process)
			if !ok {
				out = append(out, fmt.Sprintf("liveness: proc %d still down at horizon", i))
				continue
			}
			if p.Rolling() {
				out = append(out, fmt.Sprintf("liveness: proc %d still rolling back at horizon", i))
			}
			if !p.App().Done() {
				out = append(out, fmt.Sprintf("liveness: proc %d workload incomplete at horizon", i))
			}
		}
		return out
	}
	return in
}

// kernelPlan routes a crash plan straight at a bare kernel (the coord and
// optimistic families have no cluster harness).
func kernelPlan(k *sim.Kernel) func(failure.Plan) {
	return func(plan failure.Plan) {
		for _, cr := range plan.Sorted() {
			if cr.Step > 0 {
				k.CrashAtStep(cr.Step, cr.Proc)
			} else {
				k.CrashAt(cr.At, cr.Proc)
			}
		}
	}
}
