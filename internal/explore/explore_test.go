package explore

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"rollrec/internal/failure"
	"rollrec/internal/recovery"
)

// testSpec returns a spec sized for CI: fewer decision points than the
// defaults, same invariant catalog.
func testSpec(fam Family, style recovery.Style) Spec {
	return Spec{Family: fam, Style: style, MaxPoints: 12}
}

// TestExploreCleanAllFamilies is the n=3 bounded-exhaustive gate: every
// single-crash schedule over the sampled decision points must satisfy the
// full invariant catalog, for all three protocol families (and all three
// FBL recovery styles).
func TestExploreCleanAllFamilies(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"fbl-nonblocking", testSpec(FamilyFBL, recovery.NonBlocking)},
		{"fbl-blocking", testSpec(FamilyFBL, recovery.Blocking)},
		{"fbl-manetho", testSpec(FamilyFBL, recovery.Manetho)},
		{"coordinated", testSpec(FamilyCoordinated, 0)},
		{"optimistic", testSpec(FamilyOptimistic, 0)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(context.Background(), tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Points == 0 {
				t.Fatalf("no decision points derived (baseline events %d)", rep.BaselineEvents)
			}
			if rep.Branches == 0 {
				t.Fatal("no branches explored")
			}
			for _, cx := range rep.Counterexamples {
				t.Errorf("counterexample:\n%s", cx)
			}
			if rep.Violations != 0 {
				t.Fatalf("%d violations across %d branches", rep.Violations, rep.Branches)
			}
			t.Logf("%s: %d points, %d branches, baseline %d events, fingerprint %#x",
				tc.name, rep.Points, rep.Branches, rep.BaselineEvents, rep.Fingerprint)
		})
	}
}

// TestExploreDeterministicReport pins the CI double-run gate: two
// explorations of the same spec must produce byte-identical reports,
// including the fold over every branch fingerprint.
func TestExploreDeterministicReport(t *testing.T) {
	spec := testSpec(FamilyFBL, recovery.NonBlocking)
	spec.MaxPoints = 8
	spec.Random = 4
	spec.MaxCrashes = 2
	spec.DeepBranches = 6
	a, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("reports diverged:\n%s\n%s", ja, jb)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints diverged: %#x vs %#x", a.Fingerprint, b.Fingerprint)
	}
}

// TestExploreMultiCrash drives the depth-2 pass (second crash aimed inside
// observed recoveries) plus the random frontier on the coordinated family.
func TestExploreMultiCrash(t *testing.T) {
	spec := testSpec(FamilyCoordinated, 0)
	spec.MaxPoints = 6
	spec.MaxCrashes = 2
	spec.DeepBranches = 9
	spec.Random = 3
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, cx := range rep.Counterexamples {
		t.Errorf("counterexample:\n%s", cx)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d violations across %d branches", rep.Violations, rep.Branches)
	}
	if rep.Branches <= rep.Points*spec.N {
		t.Fatalf("expected deep/random branches beyond the %d singles, got %d total",
			rep.Points*spec.N, rep.Branches)
	}
}

// TestCounterexampleRoundTrip checks save/load JSON fidelity.
func TestCounterexampleRoundTrip(t *testing.T) {
	cx := Counterexample{
		Spec:        testSpec(FamilyFBL, recovery.Blocking).withDefaults(),
		Violations:  []string{"orphan: proc 2 delivered beyond stable frontier"},
		Fingerprint: 0xdeadbeef,
		Events:      1234,
	}
	cx.Plan = append(cx.Plan, failure.Crash{Step: 17, Proc: 1})
	path := filepath.Join(t.TempDir(), "cx", "case-0.json")
	if err := SaveCounterexample(path, cx); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCounterexample(path)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(cx)
	jb, _ := json.Marshal(got)
	if string(ja) != string(jb) {
		t.Fatalf("round trip diverged:\n%s\n%s", ja, jb)
	}
}
