// Package fbl implements the Family-Based Logging protocol engine (paper
// §2): sender-based volatile message logging, causal determinant
// piggybacking parameterized by the failure budget f, periodic
// checkpointing with distributed garbage collection, and the deterministic
// replay machinery the recovery algorithm drives.
//
// Instances of the family: f = 1 behaves like Sender-Based Message Logging,
// intermediate f like the Alvisi–Marzullo FBL protocols, and f = n like
// Manetho, with a never-failing stable-storage pseudo-process as the
// required (f+1)-th determinant holder (§3.3).
package fbl

import (
	"fmt"
	"time"

	"rollrec/internal/bitset"
	"rollrec/internal/det"
	"rollrec/internal/failure"
	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/output"
	"rollrec/internal/recovery"
	"rollrec/internal/trace"
	"rollrec/internal/vclock"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

// Params configures one protocol process.
type Params struct {
	// N is the number of application processes; F the failure budget
	// (F >= N selects the f = n instance with the storage pseudo-process).
	N int
	F int
	// App builds the hosted application.
	App workload.Factory
	// Style selects the recovery algorithm variant.
	Style recovery.Style
	// CheckpointEvery is the periodic checkpoint interval (0 disables
	// periodic checkpoints; recovery then replays from the beginning).
	CheckpointEvery time.Duration
	// StatePad inflates checkpoints by this many bytes to model the process
	// image size (the paper's processes were ~1 MB).
	StatePad int
	// HeartbeatEvery / SuspectAfter drive the failure detector.
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	// RetryEvery is the recovery-protocol retransmission period.
	RetryEvery time.Duration
	// StorageFlushEvery is the determinant streaming period to the storage
	// pseudo-process (f = n only).
	StorageFlushEvery time.Duration
	// SnapshotCPUPerByte charges checkpoint serialization cost.
	SnapshotCPUPerByte time.Duration
	// Fanout bounds per-process control traffic for large clusters. 0 (the
	// default) keeps the paper's all-to-all behavior: heartbeats and
	// checkpoint notices go to every peer. A positive k switches to a ring
	// scheme: heartbeats go to the k ring successors only (and the failure
	// detector monitors the k ring predecessors), checkpoint notices are
	// ring-scoped, and their garbage-collection content instead piggybacks
	// on application sends (CPRsn/CPDseq), so GC information still reaches
	// exactly the peers that hold state for us. Recovery announcements and
	// replay requests stay broadcast, and depinfo gathers become scoped to
	// the recovering members. Fanout 0 is byte-identical to the pre-fanout
	// protocol.
	Fanout int
	// Outputs receives the output-commit lifecycle (nil disables tracking;
	// Ctx.Output is then a no-op).
	Outputs output.Sink
	// Hooks receive out-of-band observation events for tests.
	Hooks Hooks
}

// withDefaults fills unset timing parameters.
func (p Params) withDefaults() Params {
	if p.HeartbeatEvery <= 0 {
		p.HeartbeatEvery = 250 * time.Millisecond
	}
	if p.SuspectAfter <= 0 {
		p.SuspectAfter = 3 * time.Second
	}
	if p.RetryEvery <= 0 {
		p.RetryEvery = time.Second
	}
	if p.StorageFlushEvery <= 0 {
		p.StorageFlushEvery = 100 * time.Millisecond
	}
	if p.SnapshotCPUPerByte < 0 {
		p.SnapshotCPUPerByte = 0
	}
	return p
}

// Hooks are optional observation callbacks used by the test harness to
// check cross-process invariants (exactly-once, orphan-freedom). They live
// outside the simulated world: crashing a process does not reset them.
type Hooks struct {
	// OnSend fires for every application send (including regenerated sends
	// during replay).
	OnSend func(self ids.ProcID, id ids.MsgID, to ids.ProcID, payloadHash uint64)
	// OnDeliver fires for every application delivery.
	OnDeliver func(self ids.ProcID, id ids.MsgID, from ids.ProcID, rsn ids.RSN, payloadHash uint64)
	// OnLive fires when a process (re)joins as live after replay; ssn and
	// rsn are the post-replay counters, i.e. the surviving timeline's
	// frontier (everything beyond was lost to the rollback).
	OnLive func(self ids.ProcID, inc ids.Incarnation, ssn ids.SSN, rsn ids.RSN)
}

// Mode is the process lifecycle state.
type Mode int

const (
	// ModeLive: normal operation.
	ModeLive Mode = iota
	// ModeRestoring: reading the checkpoint from stable storage.
	ModeRestoring
	// ModeRecovering: running the recovery protocol (waiting or leading).
	ModeRecovering
	// ModeReplaying: re-consuming logged deliveries.
	ModeReplaying
)

// String names the mode.
func (m Mode) String() string {
	return [...]string{"live", "restoring", "recovering", "replaying"}[m]
}

type logRec struct {
	ssn     ids.SSN
	payload []byte
}

type servedMark struct {
	inc ids.Incarnation
	max uint64
}

// Process is one FBL protocol instance hosting one application. It
// implements node.Process; a crash discards it entirely (volatile state)
// while its stable store persists in the runtime.
type Process struct {
	env node.Env
	par Params
	n   int
	cfg det.Config

	inc    ids.Incarnation
	incVec vclock.IncVector
	lam    vclock.Lamport

	app     workload.App
	started bool
	mode    Mode

	// Send path.
	ssn     ids.SSN
	dseqOut []uint64
	sendLog []map[uint64]logRec // per destination: dseq → record

	// Receive path.
	rsn     ids.RSN
	expDseq []uint64
	oooBuf  []map[uint64]*wire.Envelope

	dets  *det.Log
	cpRSN ids.RSN // delivery watermark covered by the last durable checkpoint
	// cpExpDseq is the per-sender consumed watermark as of the last durable
	// checkpoint (the same snapshot a checkpoint notice's SSNWatermarks
	// carries). Fanout mode piggybacks it on application sends so receivers
	// can prune their send logs without a broadcast notice. It must never
	// track the live expDseq: a watermark beyond the durable checkpoint
	// would let senders drop messages we still need for replay.
	cpExpDseq []uint64

	// detSent estimates, per destination, which determinant copies the
	// destination already stores (keyed by message, valued by a fingerprint
	// of the holder set last sent). This is the dependency-matrix estimate
	// of the FBL protocols [Alvisi–Marzullo]: an entry already held by the
	// receiver need not be piggybacked again, which is what keeps the
	// piggyback bounded. The estimate is reset for a destination when it
	// reincarnates (its volatile log died with it).
	detSent []map[ids.MsgID]uint64
	// detCursor is each destination's position in the determinant log's
	// modification journal; -1 forces a full rescan (after the peer
	// reincarnated).
	detCursor []int
	// replayServed remembers, per requester, the highest send-log dseq
	// already retransmitted to a given incarnation, so periodic replay-
	// request retries do not flood the recovering process with redundant
	// copies (the requester's CPU absorbing duplicates would otherwise
	// dominate its replay).
	replayServed []servedMark

	mgr    *recovery.Manager
	detect *failure.Detector

	// Replay state.
	needed    map[ids.MsgID]ids.RSN
	replayBuf map[ids.RSN]*wire.Envelope
	nextRSN   ids.RSN
	maxRSN    ids.RSN
	replayT   node.Timer

	// Live-side blocking and recovery-time buffering.
	blocked     bool
	deferred    []*wire.Envelope
	blockedSpan trace.SpanRef

	// Open replay-phase span.
	replaySpan trace.SpanRef

	// Checkpoint bookkeeping.
	cpBusy bool

	// Output commit (DESIGN §10).
	outSeq      uint64     // outputs requested so far (checkpointed)
	cpOutSeq    uint64     // outputs covered by the last durable checkpoint
	pendingOuts []*outWait // requested, rule not yet satisfied, seq-ascending
	// outWaiters maps each awaited determinant id to the outputs waiting on
	// it; outCursor is this consumer's position in the determinant log's
	// modification journal (see checkOutputs).
	outWaiters map[ids.MsgID][]*outWait
	outCursor  int

	// Observability (volatile, test-only).
	journal []det.Determinant
}

var _ node.Process = (*Process)(nil)
var _ recovery.Host = (*Process)(nil)

// New returns a node.Factory producing protocol instances for one slot.
func New(par Params) node.Factory {
	par = par.withDefaults()
	return func() node.Process { return &Process{par: par} }
}

// Boot implements node.Process.
func (p *Process) Boot(env node.Env, restart bool) {
	p.env = env
	p.n = env.N()
	p.cfg = det.Config{N: p.n, F: p.par.F}
	p.incVec = vclock.NewIncVector(p.n)
	p.dets = det.NewLog(p.cfg)
	p.dseqOut = make([]uint64, p.n)
	p.expDseq = make([]uint64, p.n)
	p.cpExpDseq = make([]uint64, p.n)
	// The per-destination maps are allocated lazily (sendLogFor and friends):
	// at n=1024 the eager 3n maps per process cost ~3M allocations per boot
	// cluster-wide, almost all for peers a process never exchanges traffic
	// with.
	p.sendLog = make([]map[uint64]logRec, p.n)
	p.oooBuf = make([]map[uint64]*wire.Envelope, p.n)
	p.detSent = make([]map[ids.MsgID]uint64, p.n)
	p.detCursor = make([]int, p.n)
	p.replayServed = make([]servedMark, p.n)
	p.outWaiters = make(map[ids.MsgID][]*outWait)
	p.app = p.par.App(env.ID(), p.n)
	p.mgr = recovery.NewManager(recovery.Config{
		Style:        p.par.Style,
		F:            p.par.F,
		RetryEvery:   p.par.RetryEvery,
		ScopedGather: p.par.Fanout > 0,
	}, p, env)
	p.detect = failure.NewDetector(env.ID(), p.n, p.par.SuspectAfter, env.Now(),
		func(q ids.ProcID) { p.mgr.OnSuspect(q) })
	if p.par.Fanout > 0 {
		p.detect.SetMonitored(p.ring(-1))
	}
	p.startTimers()

	if !restart {
		p.inc = 1
		p.writeIncRecord(func() {})
		p.mode = ModeLive
		p.started = true
		p.app.Start(appCtx{p})
		p.scheduleCheckpoint()
		return
	}
	// Reincarnation: restore from stable storage (recovery step 1).
	p.mode = ModeRestoring
	p.restore()
}

// ring returns the Fanout-sized ring neighborhood of this process: the
// successors (self+1, self+2, …) mod n for dir=+1, the predecessors for
// dir=-1. With Fanout >= n-1 (or 0) it degenerates to every peer.
func (p *Process) ring(dir int) []ids.ProcID {
	k := p.par.Fanout
	if k <= 0 || k > p.n-1 {
		k = p.n - 1
	}
	out := make([]ids.ProcID, 0, k)
	self := int(p.env.ID())
	for i := 1; i <= k; i++ {
		out = append(out, ids.ProcID(((self+dir*i)%p.n+p.n)%p.n))
	}
	return out
}

// sendLogFor, oooBufFor and detSentFor lazily allocate the per-destination
// maps; see Boot.
func (p *Process) sendLogFor(to ids.ProcID) map[uint64]logRec {
	if p.sendLog[to] == nil {
		p.sendLog[to] = make(map[uint64]logRec)
	}
	return p.sendLog[to]
}

func (p *Process) oooBufFor(from ids.ProcID) map[uint64]*wire.Envelope {
	if p.oooBuf[from] == nil {
		p.oooBuf[from] = make(map[uint64]*wire.Envelope)
	}
	return p.oooBuf[from]
}

func (p *Process) detSentFor(to ids.ProcID) map[ids.MsgID]uint64 {
	if p.detSent[to] == nil {
		p.detSent[to] = make(map[ids.MsgID]uint64)
	}
	return p.detSent[to]
}

func (p *Process) startTimers() {
	var beat func()
	beat = func() {
		hb := &wire.Envelope{Kind: wire.KindHeartbeat, FromInc: p.inc}
		if p.par.Fanout > 0 {
			// Ring heartbeats: each process pings its k successors, so each
			// is monitored by its k predecessors.
			for _, q := range p.ring(+1) {
				p.env.Send(q, hb.Clone())
			}
		} else {
			for q := 0; q < p.n; q++ {
				if ids.ProcID(q) == p.env.ID() {
					continue
				}
				p.env.Send(ids.ProcID(q), hb.Clone())
			}
		}
		p.detect.Tick(p.env.Now())
		p.env.After(p.par.HeartbeatEvery, beat)
	}
	p.env.After(p.par.HeartbeatEvery, beat)

	if p.cfg.Manetho() {
		var flush func()
		flush = func() {
			p.flushToStorage()
			p.env.After(p.par.StorageFlushEvery, flush)
		}
		p.env.After(p.par.StorageFlushEvery, flush)
	}
}

// flushToStorage streams determinants not yet held by the storage
// pseudo-process (f = n instance).
func (p *Process) flushToStorage() {
	if p.mode != ModeLive && p.mode != ModeReplaying {
		return
	}
	pending := p.dets.PendingForStorage()
	if len(pending) == 0 {
		return
	}
	p.env.Send(ids.StorageProc, &wire.Envelope{
		Kind:    wire.KindDetsToStorage,
		FromInc: p.inc,
		Dets:    pending,
	})
}

// Deliver implements node.Process.
func (p *Process) Deliver(e *wire.Envelope) {
	p.detect.Heard(e.From, p.env.Now())
	if !e.Ord.IsZero() {
		p.lam.Witness(e.Ord.Clock)
	}
	// Learn newer incarnations from any frame; reject stale application
	// frames (paper §3.2: "a receiver rejects any message that originates
	// from a previous incarnation of its sender").
	p.learnIncarnation(e.From, e.FromInc)
	if e.Kind == wire.KindApp && p.incVec.Stale(e.From, e.FromInc) {
		p.env.Metrics().Stale++
		return
	}
	// Record piggybacked determinants before anything else so our own
	// subsequent sends forward them (the causal propagation of §2.1).
	if e.Kind == wire.KindApp && len(e.Dets) > 0 {
		p.absorbDets(e.Dets)
	}
	if e.Kind == wire.KindApp && p.par.Fanout > 0 {
		p.applyPiggybackGC(e)
	}

	switch e.Kind {
	case wire.KindApp:
		p.appPath(e)
	case wire.KindHeartbeat:
		// Heard() above is all a heartbeat is for.
	case wire.KindCheckpointNotice:
		p.onCheckpointNotice(e)
	case wire.KindStorageAck:
		for _, id := range e.MsgIDs {
			p.dets.AddHolder(id, ids.StorageProc)
		}
	case wire.KindReplayRequest:
		p.serveReplay(e)
	default:
		if !p.mgr.HandleMessage(e) {
			p.env.Logf("fbl: unhandled kind %v from %v", e.Kind, e.From)
		}
	}
	// Holder knowledge only grows on the receive path, so this is the one
	// place pending outputs can become committable.
	p.checkOutputs()
}

// applyPiggybackGC consumes the checkpoint watermarks riding on a fanout-
// mode application frame: the sender's determinants up to its checkpointed
// RSN are replay-dead, and our logged messages it had consumed by that
// checkpoint will never be re-requested. Both are the exact operations a
// broadcast checkpoint notice performs, delivered point-to-point instead.
func (p *Process) applyPiggybackGC(e *wire.Envelope) {
	if e.CPRsn > 0 {
		p.dets.GCReceiver(e.From, e.CPRsn)
	}
	if e.CPDseq > 0 && e.From.Valid(p.n) && !e.From.IsStorage() {
		log := p.sendLog[e.From]
		//rollvet:allow maporder -- deletes the value-independent prefix d <= wm; commutative
		for d := range log {
			if d <= e.CPDseq {
				delete(log, d)
			}
		}
	}
}

// absorbDets merges piggybacked determinant entries and marks ourselves as
// a holder of each (we now store the receipt order in our volatile log).
func (p *Process) absorbDets(entries []det.Entry) {
	self := det.HolderIndex(p.env.ID(), p.n)
	for _, en := range entries {
		en = en.Clone()
		en.Holders.Add(self)
		if err := p.dets.Record(en); err != nil {
			panic(fmt.Sprintf("fbl: %v: conflicting piggybacked determinant: %v", p.env.ID(), err))
		}
	}
}

// appPath routes an application frame according to the lifecycle mode.
func (p *Process) appPath(e *wire.Envelope) {
	switch p.mode {
	case ModeLive:
		if p.blocked {
			p.deferred = append(p.deferred, e)
			return
		}
		p.deliverNow(e)
	case ModeReplaying:
		p.replayAccept(e)
	case ModeRestoring, ModeRecovering:
		// Too early to decide: buffer until replay begins.
		p.deferred = append(p.deferred, e)
	}
}

// deliverNow performs normal-path delivery with per-sender FIFO
// de-duplication.
func (p *Process) deliverNow(e *wire.Envelope) {
	from := int(e.From)
	exp := p.expDseq[from]
	switch {
	case e.Dseq <= exp:
		p.env.Metrics().Duplicate++
		return
	case e.Dseq > exp+1:
		p.oooBufFor(e.From)[e.Dseq] = e
		return
	}
	p.consume(e, 0)
	// Drain any buffered successors that became contiguous.
	for {
		next, ok := p.oooBuf[from][p.expDseq[from]+1]
		if !ok {
			break
		}
		delete(p.oooBuf[from], p.expDseq[from]+1)
		p.consume(next, 0)
	}
}

// consume delivers one application frame: it assigns the receive sequence
// number (forcedRSN overrides during replay), records the determinant, and
// hands the payload to the application.
func (p *Process) consume(e *wire.Envelope, forcedRSN ids.RSN) {
	from := int(e.From)
	p.expDseq[from] = e.Dseq
	if forcedRSN != 0 {
		p.rsn = forcedRSN
	} else {
		p.rsn++
	}
	d := det.Determinant{
		Msg:      ids.MsgID{Sender: e.From, SSN: e.SSN},
		Receiver: p.env.ID(),
		RSN:      p.rsn,
	}
	if forcedRSN == 0 {
		holders := newHolders(p.env.ID(), p.n)
		if err := p.dets.Record(det.Entry{Det: d, Holders: holders}); err != nil {
			panic(fmt.Sprintf("fbl: %v: recording own determinant: %v", p.env.ID(), err))
		}
	} else {
		// Replay: the determinant is already in the gathered log; we hold
		// it again now.
		p.dets.AddHolder(d.Msg, p.env.ID())
	}
	p.journal = append(p.journal, d)
	p.env.Metrics().Delivered++
	if p.par.Hooks.OnDeliver != nil {
		p.par.Hooks.OnDeliver(p.env.ID(), d.Msg, e.From, d.RSN, hashBytes(e.Payload))
	}
	p.app.Handle(appCtx{p}, e.From, e.Payload)
}

// learnIncarnation records a newer incarnation of q and invalidates the
// piggyback estimate for it: a reincarnated process lost its volatile
// determinant log, so nothing can be assumed already held there.
func (p *Process) learnIncarnation(q ids.ProcID, inc ids.Incarnation) {
	if p.incVec.Bump(q, inc) {
		if q >= 0 && int(q) < p.n {
			p.detSent[q] = nil  // reset; reallocated lazily on the next send
			p.detCursor[q] = -1 // offer everything pending again
		}
	}
}

func newHolders(self ids.ProcID, n int) bitset.Set {
	var s bitset.Set
	s.Add(det.HolderIndex(self, n))
	return s
}

// hashBytes is a small FNV-1a for hook payload fingerprints.
func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
