package fbl

import (
	"rollrec/internal/ids"
)

// This file implements the FBL output-commit rule (DESIGN §10): an output
// may be released once every determinant of a causally-antecedent delivery
// is either stable — replicated on f+1 hosts, or held by the storage
// pseudo-process in the f = n instance — or covered by this process's own
// durable checkpoint. No synchronous stable-storage write is required: the
// commit point arrives with ordinary piggyback traffic returning holder
// knowledge, or with the asynchronous periodic checkpoint.
//
// Bookkeeping is incremental: each output carries only a count of awaited
// determinants, a reverse index maps determinant ids to their waiters, and
// the determinant log's modification journal (ScanStabilized) retires wait
// entries as ids become stable or are garbage-collected. The per-delivery
// cost is proportional to what changed, not to what is pending — a full
// rescan per delivery made the D11 client–server runs quadratic.

// outWait is one requested output waiting for `remaining` antecedent
// determinants to become stable or gone.
type outWait struct {
	seq       uint64
	remaining int
}

// Output implements workload.Ctx.
func (c appCtx) Output(payload []byte) {
	p := c.p
	if p.par.Outputs == nil {
		return
	}
	p.outSeq++
	if !p.par.Outputs.Requested(p.env.ID(), p.outSeq, p.env.Now(), payload) {
		return // rollback re-execution of an already-released output
	}
	// The output depends on every delivery in its causal past whose
	// determinant is not yet stable. The local pending set is a
	// conservative superset of that past (it may include concurrent
	// entries we merely forward), which can only delay, never wrongly
	// permit, a release.
	w := &outWait{seq: p.outSeq}
	p.dets.PendingIDs(func(id ids.MsgID) {
		w.remaining++
		p.outWaiters[id] = append(p.outWaiters[id], w)
	})
	if w.remaining == 0 && p.mode == ModeLive {
		p.par.Outputs.Committed(p.env.ID(), p.outSeq, p.env.Now())
		return
	}
	p.pendingOuts = append(p.pendingOuts, w)
}

// checkOutputs retires wait entries for determinants that stabilized (or
// were GC'd) since the last call, then releases every pending output whose
// rule now holds. It runs at the end of each Deliver (holder knowledge only
// changes there), after a checkpoint becomes durable, and when replay
// finishes. A recovering process defers all releases until it is live
// again, which is why outputs straddling a crash commit only after
// recovery completes.
func (p *Process) checkOutputs() {
	if len(p.outWaiters) == 0 {
		// Nothing awaited: keep the journal cursor pinned to now so the
		// checkpoint-time Compact is never held back.
		p.outCursor = p.dets.Cursor()
	} else if p.outCursor != p.dets.Cursor() {
		p.outCursor = p.dets.ScanStabilized(p.outCursor, func(id ids.MsgID) {
			ws, ok := p.outWaiters[id]
			if !ok {
				return
			}
			delete(p.outWaiters, id)
			// Decrements for already-released outputs (committed via
			// checkpoint coverage) are harmless: they left pendingOuts.
			for _, w := range ws {
				w.remaining--
			}
		})
	}
	if len(p.pendingOuts) == 0 || p.mode != ModeLive {
		return
	}
	now := p.env.Now()
	kept := p.pendingOuts[:0]
	for _, w := range p.pendingOuts {
		if w.remaining <= 0 || w.seq <= p.cpOutSeq {
			p.par.Outputs.Committed(p.env.ID(), w.seq, now)
		} else {
			kept = append(kept, w)
		}
	}
	p.pendingOuts = kept
}
