package fbl

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/trace"
	"rollrec/internal/vclock"
	"rollrec/internal/wire"
)

// Stable-store keys.
const (
	keyCheckpoint  = "cp"
	keyIncarnation = "inc"
)

const checkpointVersion = 1

// writeIncRecord durably records the incarnation number and the highest
// ordinal clock used, so a re-crash during recovery still produces a fresh
// incarnation and a fresh ordinal.
func (p *Process) writeIncRecord(done func()) {
	w := wire.NewWriter(12)
	w.U32(uint32(p.inc))
	w.U64(p.lam.Now())
	p.env.WriteStable(keyIncarnation, w.Frame(), done)
}

func parseIncRecord(data []byte) (ids.Incarnation, uint64, bool) {
	r := wire.NewReader(data)
	inc := ids.Incarnation(r.U32())
	clk := r.U64()
	if !r.Done() {
		return 0, 0, false
	}
	return inc, clk, true
}

// encodeCheckpoint serializes the complete recoverable state: application
// snapshot, send/receive counters, the volatile send log (sender-based
// logging survives the sender's own failure through its checkpoint), and
// the incarnation vector. StatePad models the paper's ~1 MB process images.
func (p *Process) encodeCheckpoint() []byte {
	app := p.app.Snapshot()
	w := wire.NewWriter(256 + len(app) + p.par.StatePad)
	w.U8(checkpointVersion)
	w.U32(uint32(p.inc))
	w.U64(p.lam.Now())
	if p.started {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U64(uint64(p.ssn))
	w.U64(uint64(p.rsn))
	for i := 0; i < p.n; i++ {
		w.U64(p.dseqOut[i])
		w.U64(p.expDseq[i])
		w.U32(uint32(p.incVec.Get(ids.ProcID(i))))
	}
	w.Bytes(app)
	for to := 0; to < p.n; to++ {
		log := p.sendLog[to]
		w.U32(uint32(len(log)))
		for _, d := range sortedKeys(log) {
			rec := log[d]
			w.U64(d)
			w.U64(uint64(rec.ssn))
			w.Bytes(rec.payload)
		}
	}
	w.Bytes(make([]byte, p.par.StatePad))
	// The output-commit counter rides after the padding, and only when the
	// process ever produced output: workloads that never call Ctx.Output
	// keep byte-identical checkpoints (and thus identical storage timings
	// and golden traces) across this format extension.
	if p.outSeq != 0 {
		w.U64(p.outSeq)
	}
	return w.Frame()
}

// sortedKeys returns m's keys in ascending order. Every protocol-path
// iteration over a map whose order can reach message contents, checkpoints,
// or replay schedules must go through it (or carry a rollvet suppression
// proving commutativity).
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	//rollvet:allow maporder -- keys are fully sorted below before any use
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// decodeCheckpoint restores the state captured by encodeCheckpoint.
func (p *Process) decodeCheckpoint(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U8(); v != checkpointVersion {
		return fmt.Errorf("fbl: checkpoint version %d", v)
	}
	p.inc = ids.Incarnation(r.U32())
	lam := r.U64()
	for p.lam.Now() < lam {
		p.lam.Witness(lam - 1)
	}
	p.started = r.U8() == 1
	p.ssn = ids.SSN(r.U64())
	p.rsn = ids.RSN(r.U64())
	vec := make([]ids.Incarnation, p.n)
	for i := 0; i < p.n; i++ {
		p.dseqOut[i] = r.U64()
		p.expDseq[i] = r.U64()
		vec[i] = ids.Incarnation(r.U32())
	}
	p.incVec.Merge(vclock.FromSlice(vec))
	app := r.Bytes()
	for to := 0; to < p.n; to++ {
		cnt := r.ListLen()
		if cnt == 0 {
			continue // keep the lazily-nil map
		}
		p.sendLog[to] = make(map[uint64]logRec, cnt)
		for i := 0; i < cnt && r.Err() == nil; i++ {
			d := r.U64()
			ssn := ids.SSN(r.U64())
			payload := r.Bytes()
			p.sendLog[to][d] = logRec{ssn: ssn, payload: payload}
		}
	}
	r.Bytes() // padding
	if !r.Done() {
		p.outSeq = r.U64() // optional tail: see encodeCheckpoint
	}
	if !r.Done() {
		return fmt.Errorf("fbl: corrupt checkpoint: %v", r.Err())
	}
	if err := p.app.Restore(app); err != nil {
		return fmt.Errorf("fbl: restoring app snapshot: %w", err)
	}
	return nil
}

// scheduleCheckpoint arms the periodic checkpoint, staggered per process so
// the cluster's checkpoints do not synchronize.
func (p *Process) scheduleCheckpoint() {
	if p.par.CheckpointEvery <= 0 {
		return
	}
	first := p.par.CheckpointEvery +
		p.par.CheckpointEvery*time.Duration(p.env.ID()+1)/time.Duration(p.n+1)
	p.env.After(first, p.checkpointTick)
}

func (p *Process) checkpointTick() {
	p.env.After(p.par.CheckpointEvery, p.checkpointTick)
	if p.mode != ModeLive || p.cpBusy || p.blocked {
		return
	}
	p.doCheckpoint()
}

// doCheckpoint captures and durably writes the state, then announces the
// new garbage-collection watermarks.
func (p *Process) doCheckpoint() {
	cpSpan := p.env.Tracer().Begin(p.env.Now(), int32(p.env.ID()),
		trace.EvCheckpoint, trace.Tag{Inc: uint32(p.inc)})
	data := p.encodeCheckpoint()
	if p.par.SnapshotCPUPerByte > 0 {
		p.env.Busy(time.Duration(len(data)) * p.par.SnapshotCPUPerByte)
	}
	p.cpBusy = true
	rsnAt := p.rsn
	outAt := p.outSeq
	expAt := make([]ids.SSN, p.n)
	for i, d := range p.expDseq {
		expAt[i] = ids.SSN(d)
	}
	// Compact the determinant journal up to the slowest consumer: the
	// piggyback cursors and (when output tracking is on) the output-commit
	// scan cursor.
	minCur := p.dets.Cursor()
	if p.par.Fanout == 0 || p.par.Outputs != nil {
		// The piggyback cursors only exist on the journal-scan transmit
		// path; fanout mode scans the live pending index instead, so its
		// journal has no consumers to hold compaction back.
		for _, c := range p.detCursor {
			if c >= 0 && c < minCur {
				minCur = c
			}
		}
	}
	if p.par.Outputs != nil && p.outCursor < minCur {
		minCur = p.outCursor
	}
	p.dets.Compact(minCur)
	p.env.WriteStable(keyCheckpoint, data, func() {
		p.env.Tracer().End(cpSpan, p.env.Now())
		p.cpBusy = false
		p.cpRSN = rsnAt
		for i, d := range expAt {
			p.cpExpDseq[i] = uint64(d)
		}
		// Outputs captured by the now-durable checkpoint are recoverable
		// regardless of determinant replication.
		p.cpOutSeq = outAt
		p.checkOutputs()
		// Our own determinants for deliveries the checkpoint covers will
		// never be replayed again.
		p.dets.GCReceiver(p.env.ID(), rsnAt)
		notice := &wire.Envelope{
			Kind:          wire.KindCheckpointNotice,
			FromInc:       p.inc,
			CPRsn:         rsnAt,
			SSNWatermarks: expAt,
		}
		if p.par.Fanout > 0 {
			// Fanout mode: the broadcast is O(n²) cluster-wide, so the
			// notice goes to the ring successors only. Everyone else learns
			// the watermarks from the CPRsn/CPDseq piggyback on the next
			// application send (see transmit).
			for _, q := range p.ring(+1) {
				p.env.Send(q, notice.Clone())
			}
		} else {
			for q := 0; q < p.n; q++ {
				if ids.ProcID(q) == p.env.ID() {
					continue
				}
				p.env.Send(ids.ProcID(q), notice.Clone())
			}
		}
		if p.cfg.Manetho() {
			p.env.Send(ids.StorageProc, notice.Clone())
		}
	})
}

// onCheckpointNotice garbage-collects state the peer's checkpoint covers:
// determinants of its deliveries, and our send-log entries it has consumed.
func (p *Process) onCheckpointNotice(e *wire.Envelope) {
	p.dets.GCReceiver(e.From, e.CPRsn)
	self := int(p.env.ID())
	if self < len(e.SSNWatermarks) && e.From.Valid(p.n) && !e.From.IsStorage() {
		wm := uint64(e.SSNWatermarks[self])
		log := p.sendLog[e.From]
		//rollvet:allow maporder -- deletes the value-independent prefix d <= wm; commutative
		for d := range log {
			if d <= wm {
				delete(log, d)
			}
		}
	}
}

// restore is the recovery boot path: read the incarnation record and the
// checkpoint (paying the stable-storage latency that dominates the paper's
// five-second recoveries), then start the recovery protocol.
func (p *Process) restore() {
	restoreSpan := p.env.Tracer().Begin(p.env.Now(), int32(p.env.ID()),
		trace.EvRestore, trace.Tag{})
	p.env.ReadStable(keyIncarnation, func(incData []byte, okInc bool) {
		p.env.ReadStable(keyCheckpoint, func(cpData []byte, okCP bool) {
			prevInc := ids.Incarnation(1)
			var prevClk uint64
			if okInc {
				if inc, clk, ok := parseIncRecord(incData); ok {
					prevInc, prevClk = inc, clk
				}
			}
			if okCP {
				if err := p.decodeCheckpoint(cpData); err != nil {
					panic(fmt.Sprintf("fbl: %v: %v", p.env.ID(), err))
				}
				p.cpRSN = p.rsn
				p.cpOutSeq = p.outSeq
				copy(p.cpExpDseq, p.expDseq)
			}
			// No checkpoint: the initial state (fresh app, Start not yet
			// run) is itself a valid recovery point.
			if p.inc < prevInc {
				p.inc = prevInc
			}
			p.inc++
			for p.lam.Now() < prevClk {
				p.lam.Witness(prevClk - 1)
			}
			ord := ids.Ordinal{Clock: p.lam.Tick(), Proc: p.env.ID()}
			p.writeIncRecord(func() {
				if tr := p.env.Metrics().CurrentRecovery(); tr != nil {
					tr.RestoredAt = p.env.Now()
					tr.Incarnation = uint32(p.inc)
				}
				p.env.Tracer().End(restoreSpan, p.env.Now())
				p.mode = ModeRecovering
				p.env.Logf("fbl: restored at rsn %d, incarnation %d, ord %v", p.cpRSN, p.inc, ord)
				p.mgr.StartRecovery(ord, p.inc)
			})
		})
	})
}
