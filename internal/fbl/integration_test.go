package fbl

import (
	"testing"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/recovery"
	"rollrec/internal/sim"
	"rollrec/internal/workload"
)

// In-package integration tests: the cluster package exercises these paths
// too, but running them here keeps the protocol's own replay, checkpoint,
// and storage-streaming code under its own test coverage.

func simHW() node.Hardware {
	hw := node.Profile1995()
	hw.WatchdogDetect = 300 * time.Millisecond
	hw.RestartDelay = 50 * time.Millisecond
	hw.SuspectAfter = 400 * time.Millisecond
	hw.HeartbeatEvery = 50 * time.Millisecond
	hw.CPUMsgCost = 50 * time.Microsecond
	hw.CPUByteCost = 0
	hw.Disk.Latency = 2 * time.Millisecond
	hw.Disk.ReadBandwidth = 50e6
	hw.Disk.WriteBandwidth = 50e6
	return hw
}

func simCluster(t *testing.T, n, f int, seed int64, style recovery.Style) *sim.Kernel {
	t.Helper()
	k := sim.New(sim.Config{Seed: seed, HW: simHW()})
	par := Params{
		N: n, F: f,
		App:             workload.NewRandomPeer(1, 1_000_000, 32, int64(time.Millisecond)),
		Style:           style,
		CheckpointEvery: 300 * time.Millisecond,
		StatePad:        4 << 10,
		HeartbeatEvery:  50 * time.Millisecond,
		SuspectAfter:    400 * time.Millisecond,
		RetryEvery:      200 * time.Millisecond,
	}
	for i := 0; i < n; i++ {
		k.AddNode(ids.ProcID(i), New(par))
	}
	if f >= n {
		k.AddNode(ids.StorageProc, NewStorageNode(n, f))
	}
	k.Boot()
	return k
}

func waitLive(t *testing.T, k *sim.Kernel, victim ids.ProcID, horizon time.Duration) *Process {
	t.Helper()
	for d := time.Second; d <= horizon; d += time.Second {
		k.Run(d)
		if p, ok := k.ProcOf(victim).(*Process); ok && p.Mode() == ModeLive && p.Incarnation() > 1 {
			return p
		}
	}
	t.Fatalf("%v never recovered", victim)
	return nil
}

func TestRecoveryEndToEndInPackage(t *testing.T) {
	k := simCluster(t, 4, 2, 11, recovery.NonBlocking)
	k.CrashAt(1500*time.Millisecond, 2)
	p := waitLive(t, k, 2, 30*time.Second)
	if p.RecoveryState() != recovery.StateLive {
		t.Fatalf("recovery state = %v", p.RecoveryState())
	}
	tr := k.Metrics(2).CurrentRecovery()
	if tr.RestoredAt == 0 || tr.GatheredAt == 0 || tr.ReplayedAt == 0 {
		t.Fatalf("trace incomplete: %+v", tr)
	}
	if !tr.WasLeader {
		t.Fatal("a lone victim must lead its own recovery")
	}
	// Keep running: the recovered process must keep participating.
	before := k.Metrics(2).Delivered
	k.Run(time.Duration(k.Now()) + 3*time.Second)
	if k.Metrics(2).Delivered <= before {
		t.Fatal("recovered process made no further progress")
	}
}

func TestManethoInstanceStreamsToStorage(t *testing.T) {
	k := simCluster(t, 3, 3, 12, recovery.NonBlocking)
	k.Run(3 * time.Second)
	sn, ok := k.ProcOf(ids.StorageProc).(*StorageNode)
	if !ok {
		t.Fatal("storage node missing")
	}
	if sn.Len() == 0 {
		t.Fatal("storage pseudo-process holds no determinants")
	}
	// Crash and recover under f=n: the gather must include storage.
	k.CrashAt(3100*time.Millisecond, 1)
	waitLive(t, k, 1, 30*time.Second)
	if k.Metrics(ids.StorageProc).MsgsRecv[9] == 0 { // KindDepRequest
		t.Fatal("leader never queried the storage pseudo-process")
	}
}

func TestBlockingStyleBuffersAndDrains(t *testing.T) {
	k := simCluster(t, 4, 2, 13, recovery.Blocking)
	k.CrashAt(1500*time.Millisecond, 0)
	waitLive(t, k, 0, 30*time.Second)
	blocked := false
	for i := 1; i < 4; i++ {
		m := k.Metrics(ids.ProcID(i))
		if m.BlockedTotal() > 0 && m.BlockedSpans() > 0 {
			blocked = true
		}
		if m.Blocked() {
			t.Fatalf("p%d still blocked after recovery completed", i)
		}
	}
	if !blocked {
		t.Fatal("blocking style never blocked a live process")
	}
}

func TestCheckpointGCBoundsState(t *testing.T) {
	k := simCluster(t, 4, 2, 14, recovery.NonBlocking)
	k.Run(2 * time.Second)
	sizeEarly := 0
	if p, ok := k.ProcOf(1).(*Process); ok {
		sizeEarly = p.SendLogSize() + len(p.DetEntries())
	}
	k.Run(8 * time.Second)
	p, _ := k.ProcOf(1).(*Process)
	sizeLate := p.SendLogSize() + len(p.DetEntries())
	// With periodic checkpoints and notices, volatile state must stay
	// bounded, not grow with the run.
	if sizeLate > sizeEarly*8 {
		t.Fatalf("volatile state grew from %d to %d: GC not working", sizeEarly, sizeLate)
	}
}
