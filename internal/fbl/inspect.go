package fbl

import (
	"rollrec/internal/det"
	"rollrec/internal/ids"
	"rollrec/internal/recovery"
	"rollrec/internal/workload"
)

// This file exposes read-only introspection for tests and experiments;
// none of it is part of the protocol.

// Mode returns the lifecycle mode.
func (p *Process) Mode() Mode { return p.mode }

// Incarnation returns the current incarnation number.
func (p *Process) Incarnation() ids.Incarnation { return p.inc }

// App returns the hosted application.
func (p *Process) App() workload.App { return p.app }

// Journal returns this instance's deliveries (in rsn order since this
// incarnation booted). Volatile: a crash clears it.
func (p *Process) Journal() []det.Determinant {
	return append([]det.Determinant(nil), p.journal...)
}

// SSN returns the last assigned send sequence number.
func (p *Process) SSN() ids.SSN { return p.ssn }

// RSN returns the last assigned receive sequence number.
func (p *Process) RSN() ids.RSN { return p.rsn }

// Blocked reports whether the live process is currently deferring
// application deliveries (blocking/Manetho styles during a gather).
func (p *Process) Blocked() bool { return p.blocked }

// DetEntries returns the current determinant log content.
func (p *Process) DetEntries() []det.Entry { return p.dets.All() }

// DetLogLen returns the number of determinants in the volatile log.
func (p *Process) DetLogLen() int { return p.dets.Len() }

// DetPending returns the number of determinants not yet stable (below the
// f+1-holder watermark). Allocation-free, for the timeline sampler.
func (p *Process) DetPending() int { return p.dets.PendingCount() }

// RecoveryState returns the recovery manager state.
func (p *Process) RecoveryState() recovery.State { return p.mgr.State() }

// SendLogSize returns the number of volatile send-log entries (all
// destinations), a garbage-collection observability hook.
func (p *Process) SendLogSize() int {
	total := 0
	for _, m := range p.sendLog {
		total += len(m)
	}
	return total
}

// ReplayProgress exposes the replay engine's position for tests and
// diagnostics: the next and final receive sequence numbers, how many
// needed messages are still missing, and how many frames sit deferred.
func (p *Process) ReplayProgress() (next, max ids.RSN, missing, deferred int) {
	return p.nextRSN, p.maxRSN, len(p.needed), len(p.deferred)
}

// MissingReplays returns the still-unreceived replay messages as
// (rsn, msgid) pairs in rsn order; diagnostics only.
func (p *Process) MissingReplays() []det.Determinant {
	out := make([]det.Determinant, 0, len(p.needed))
	//rollvet:allow maporder -- RSNs are unique per receiver, so sortByRSN below fully determines the order
	for id, rsn := range p.needed {
		out = append(out, det.Determinant{Msg: id, Receiver: p.env.ID(), RSN: rsn})
	}
	sortByRSN(out)
	return out
}

func sortByRSN(s []det.Determinant) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].RSN < s[j-1].RSN; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SendLogSSNs returns the (dseq, ssn) pairs logged for destination q, in
// dseq order; diagnostics only.
func (p *Process) SendLogSSNs(q ids.ProcID) [][2]uint64 {
	log := p.sendLog[q]
	out := make([][2]uint64, 0, len(log))
	for _, d := range sortedKeys(log) {
		out = append(out, [2]uint64{d, uint64(log[d].ssn)})
	}
	return out
}

// ExpDseq returns the expected-dseq watermark for sender q.
func (p *Process) ExpDseq(q ids.ProcID) uint64 { return p.expDseq[q] }

// SetDebugReplay toggles verbose replay tracing (diagnostics only).
func SetDebugReplay(v bool) { debugReplay = v }
