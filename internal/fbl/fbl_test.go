package fbl

import (
	"math/rand"
	"testing"
	"time"

	"rollrec/internal/bitset"
	"rollrec/internal/det"
	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/node"
	"rollrec/internal/recovery"
	"rollrec/internal/storage"
	"rollrec/internal/trace"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

// fakeEnv is a minimal node.Env for protocol unit tests: sends are
// recorded, timers are collected (never fire), storage is immediate.
type fakeEnv struct {
	id     ids.ProcID
	n      int
	now    int64
	sent   []*wire.Envelope
	met    *metrics.Proc
	stable *storage.Store
	rng    *rand.Rand
}

type noopTimer struct{}

func (noopTimer) Stop() {}

func newFakeEnv(id ids.ProcID, n int) *fakeEnv {
	return &fakeEnv{
		id: id, n: n,
		met:    metrics.NewProc(),
		stable: storage.NewStore(),
		rng:    rand.New(rand.NewSource(9)),
	}
}

func (f *fakeEnv) ID() ids.ProcID { return f.id }
func (f *fakeEnv) N() int         { return f.n }
func (f *fakeEnv) Now() int64     { return f.now }
func (f *fakeEnv) Send(to ids.ProcID, e *wire.Envelope) {
	c := e.Clone()
	c.From = f.id
	c.To = to
	f.sent = append(f.sent, c)
}
func (f *fakeEnv) After(time.Duration, func()) node.Timer { return noopTimer{} }
func (f *fakeEnv) Busy(time.Duration)                     {}
func (f *fakeEnv) ReadStable(k string, cb func([]byte, bool)) {
	v, ok := f.stable.Get(k)
	cb(v, ok)
}
func (f *fakeEnv) WriteStable(k string, d []byte, cb func()) {
	f.stable.Put(k, d)
	if cb != nil {
		cb()
	}
}
func (f *fakeEnv) Rand() *rand.Rand       { return f.rng }
func (f *fakeEnv) Logf(string, ...any)    {}
func (f *fakeEnv) Metrics() *metrics.Proc { return f.met }
func (f *fakeEnv) Tracer() trace.Tracer   { return trace.Nop{} }

func (f *fakeEnv) takeKind(kind wire.Kind) []*wire.Envelope {
	var out, rest []*wire.Envelope
	for _, e := range f.sent {
		if e.Kind == kind {
			out = append(out, e)
		} else {
			rest = append(rest, e)
		}
	}
	f.sent = rest
	return out
}

func testParams(n, f int) Params {
	return Params{
		N: n, F: f,
		App:             workload.NewRandomPeer(0, 0, 0, 0), // inert app
		Style:           recovery.NonBlocking,
		CheckpointEvery: time.Hour, // manual checkpoints only
	}
}

func bootProc(t *testing.T, id ids.ProcID, n, f int) (*Process, *fakeEnv) {
	t.Helper()
	env := newFakeEnv(id, n)
	p := New(testParams(n, f))().(*Process)
	p.Boot(env, false)
	env.sent = nil
	return p, env
}

func appFrame(from ids.ProcID, inc ids.Incarnation, ssn ids.SSN, dseq uint64) *wire.Envelope {
	return &wire.Envelope{
		Kind: wire.KindApp, From: from, FromInc: inc, SSN: ssn, Dseq: dseq,
		Payload: []byte{byte(ssn)},
	}
}

func TestDeliverAssignsRSNAndDeterminant(t *testing.T) {
	p, env := bootProc(t, 0, 3, 2)
	p.Deliver(appFrame(1, 1, 7, 1))
	if p.RSN() != 1 {
		t.Fatalf("rsn = %d, want 1", p.RSN())
	}
	e, ok := p.dets.Lookup(ids.MsgID{Sender: 1, SSN: 7})
	if !ok {
		t.Fatal("own determinant not recorded")
	}
	if e.Det.Receiver != 0 || e.Det.RSN != 1 {
		t.Fatalf("determinant = %v", e.Det)
	}
	if !e.Holders.Contains(0) {
		t.Fatal("receiver must hold its own determinant")
	}
	if env.met.Delivered != 1 {
		t.Fatalf("Delivered = %d", env.met.Delivered)
	}
}

func TestStaleIncarnationRejected(t *testing.T) {
	p, env := bootProc(t, 0, 3, 2)
	p.learnIncarnation(1, 2)
	p.Deliver(appFrame(1, 1, 7, 1))
	if env.met.Stale != 1 || env.met.Delivered != 0 {
		t.Fatalf("stale=%d delivered=%d, want 1/0", env.met.Stale, env.met.Delivered)
	}
	// The current incarnation passes.
	p.Deliver(appFrame(1, 2, 7, 1))
	if env.met.Delivered != 1 {
		t.Fatal("current incarnation must be delivered")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	p, env := bootProc(t, 0, 3, 2)
	p.Deliver(appFrame(1, 1, 7, 1))
	p.Deliver(appFrame(1, 1, 7, 1))
	if env.met.Duplicate != 1 || env.met.Delivered != 1 {
		t.Fatalf("dup=%d delivered=%d, want 1/1", env.met.Duplicate, env.met.Delivered)
	}
}

func TestOutOfOrderBuffering(t *testing.T) {
	p, env := bootProc(t, 0, 3, 2)
	p.Deliver(appFrame(1, 1, 8, 2)) // early
	if env.met.Delivered != 0 {
		t.Fatal("gap must not be delivered")
	}
	p.Deliver(appFrame(1, 1, 7, 1))
	if env.met.Delivered != 2 {
		t.Fatalf("delivered = %d, want both after the gap filled", env.met.Delivered)
	}
	j := p.Journal()
	if j[0].Msg.SSN != 7 || j[1].Msg.SSN != 8 {
		t.Fatalf("delivery order wrong: %v", j)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	p, _ := bootProc(t, 0, 3, 2)
	// Push some state through the process.
	p.Deliver(appFrame(1, 1, 7, 1))
	p.Deliver(appFrame(2, 1, 4, 1))
	appCtx{p}.Send(1, []byte("payload-a"))
	appCtx{p}.Send(2, []byte("payload-b"))
	p.learnIncarnation(2, 3)
	data := p.encodeCheckpoint()

	q, _ := bootProc(t, 0, 3, 2)
	if err := q.decodeCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	if q.ssn != p.ssn || q.rsn != p.rsn || q.started != p.started || q.inc != p.inc {
		t.Fatal("counters did not round-trip")
	}
	for i := 0; i < 3; i++ {
		if q.dseqOut[i] != p.dseqOut[i] || q.expDseq[i] != p.expDseq[i] {
			t.Fatalf("per-peer counters differ at %d", i)
		}
	}
	if q.incVec.Get(2) != 3 {
		t.Fatal("incarnation vector did not round-trip")
	}
	rec, ok := q.sendLog[1][1]
	if !ok || string(rec.payload) != "payload-a" {
		t.Fatalf("send log did not round-trip: %+v", rec)
	}
	if q.app.Digest() != p.app.Digest() {
		t.Fatal("app state did not round-trip")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	p, _ := bootProc(t, 0, 3, 2)
	if err := p.decodeCheckpoint([]byte{9, 9, 9}); err == nil {
		t.Fatal("garbage checkpoint must be rejected")
	}
}

func TestCheckpointNoticeGCsSendLogAndDets(t *testing.T) {
	p, _ := bootProc(t, 0, 3, 2)
	appCtx{p}.Send(1, []byte("a")) // dseq 1
	appCtx{p}.Send(1, []byte("b")) // dseq 2
	appCtx{p}.Send(1, []byte("c")) // dseq 3
	// Record a determinant for a delivery at p1.
	if err := p.dets.Record(det.Entry{
		Det: det.Determinant{Msg: ids.MsgID{Sender: 0, SSN: 1}, Receiver: 1, RSN: 5},
	}); err != nil {
		t.Fatal(err)
	}
	// p1 checkpoints having delivered our dseq <= 2 and its rsn <= 5.
	wm := make([]ids.SSN, 3)
	wm[0] = 2
	p.Deliver(&wire.Envelope{
		Kind: wire.KindCheckpointNotice, From: 1, FromInc: 1,
		CPRsn: 5, SSNWatermarks: wm,
	})
	if len(p.sendLog[1]) != 1 {
		t.Fatalf("send log entries after GC = %d, want 1 (dseq 3)", len(p.sendLog[1]))
	}
	if _, ok := p.sendLog[1][3]; !ok {
		t.Fatal("the uncovered entry must survive")
	}
	if _, ok := p.dets.Lookup(ids.MsgID{Sender: 0, SSN: 1}); ok {
		t.Fatal("covered determinant must be GC'd")
	}
}

func TestServeReplayResendsInOrder(t *testing.T) {
	p, env := bootProc(t, 0, 3, 2)
	appCtx{p}.Send(1, []byte("a"))
	appCtx{p}.Send(1, []byte("b"))
	appCtx{p}.Send(1, []byte("c"))
	env.sent = nil
	p.Deliver(&wire.Envelope{Kind: wire.KindReplayRequest, From: 1, FromInc: 2, Dseq: 1})
	frames := env.takeKind(wire.KindApp)
	if len(frames) != 2 {
		t.Fatalf("retransmitted %d frames, want 2 (dseq > 1)", len(frames))
	}
	if frames[0].Dseq != 2 || frames[1].Dseq != 3 {
		t.Fatalf("retransmission order wrong: %d, %d", frames[0].Dseq, frames[1].Dseq)
	}
	if string(frames[0].Payload) != "b" || string(frames[1].Payload) != "c" {
		t.Fatal("retransmitted payloads wrong")
	}
}

func TestPiggybackDedupPerDestination(t *testing.T) {
	p, env := bootProc(t, 0, 3, 2)
	p.Deliver(appFrame(1, 1, 7, 1)) // creates one pending determinant
	env.sent = nil

	appCtx{p}.Send(2, []byte("x"))
	first := env.takeKind(wire.KindApp)
	if len(first) != 1 || len(first[0].Dets) != 1 {
		t.Fatalf("first send must piggyback the pending determinant, got %v", first)
	}
	appCtx{p}.Send(2, []byte("y"))
	second := env.takeKind(wire.KindApp)
	if len(second[0].Dets) != 0 {
		t.Fatal("unchanged determinant must not be piggybacked twice to the same peer")
	}
	// A different destination still gets it.
	appCtx{p}.Send(1, []byte("z"))
	other := env.takeKind(wire.KindApp)
	if len(other[0].Dets) != 1 {
		t.Fatal("another peer must still receive the pending determinant")
	}
}

func TestPiggybackResetOnReincarnation(t *testing.T) {
	p, env := bootProc(t, 0, 3, 2)
	p.Deliver(appFrame(1, 1, 7, 1))
	env.sent = nil
	appCtx{p}.Send(2, []byte("x"))
	env.sent = nil
	// p2 reincarnates: its volatile log died, the estimate must reset.
	p.learnIncarnation(2, 2)
	appCtx{p}.Send(2, []byte("y"))
	frames := env.takeKind(wire.KindApp)
	if len(frames[0].Dets) != 1 {
		t.Fatal("reincarnated peer must receive pending determinants again")
	}
}

func TestPiggybackStopsWhenStable(t *testing.T) {
	p, env := bootProc(t, 0, 4, 1) // f=1: stable at 2 holders
	p.Deliver(appFrame(1, 1, 7, 1))
	// Learn that p2 also holds it: 2 holders = stable for f=1... but the
	// entry here only has ourselves; merge a 2-holder copy.
	if err := p.dets.Record(det.Entry{
		Det:     det.Determinant{Msg: ids.MsgID{Sender: 1, SSN: 7}, Receiver: 0, RSN: 1},
		Holders: holdersOf(0, 2),
	}); err != nil {
		t.Fatal(err)
	}
	env.sent = nil
	appCtx{p}.Send(3, []byte("x"))
	frames := env.takeKind(wire.KindApp)
	if len(frames[0].Dets) != 0 {
		t.Fatalf("stable determinant must not be piggybacked: %v", frames[0].Dets)
	}
}

func holdersOf(elems ...int) (s bitset.Set) {
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

func TestSortedKeys(t *testing.T) {
	m := map[uint64]logRec{5: {}, 1: {}, 3: {}}
	got := sortedKeys(m)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("sortedKeys = %v", got)
	}
	if len(sortedKeys(map[uint64]logRec(nil))) != 0 {
		t.Fatal("empty map must give empty keys")
	}
}

func TestHashBytes(t *testing.T) {
	if hashBytes([]byte("a")) == hashBytes([]byte("b")) {
		t.Fatal("different payloads must hash differently")
	}
	if hashBytes(nil) != hashBytes([]byte{}) {
		t.Fatal("nil and empty must hash equally")
	}
}

func TestIncRecordRoundTrip(t *testing.T) {
	p, env := bootProc(t, 0, 3, 2)
	p.inc = 4
	for p.lam.Now() < 17 {
		p.lam.Tick()
	}
	p.writeIncRecord(nil)
	data, ok := env.stable.Get(keyIncarnation)
	if !ok {
		t.Fatal("inc record not written")
	}
	inc, clk, ok := parseIncRecord(data)
	if !ok || inc != 4 || clk != 17 {
		t.Fatalf("parsed (%d,%d,%v), want (4,17,true)", inc, clk, ok)
	}
	if _, _, ok := parseIncRecord([]byte{1}); ok {
		t.Fatal("short record must be rejected")
	}
}

func TestModeStrings(t *testing.T) {
	for m := ModeLive; m <= ModeReplaying; m++ {
		if m.String() == "" {
			t.Fatalf("mode %d has no name", m)
		}
	}
}
