package fbl

import (
	"fmt"
	"time"

	"rollrec/internal/det"
	"rollrec/internal/ids"
	"rollrec/internal/wire"
)

// appCtx implements workload.Ctx on top of the protocol process.
type appCtx struct{ p *Process }

func (c appCtx) Self() ids.ProcID { return c.p.env.ID() }
func (c appCtx) N() int           { return c.p.n }
func (c appCtx) Work(d int64)     { c.p.env.Busy(time.Duration(d)) }
func (c appCtx) Logf(format string, args ...any) {
	c.p.env.Logf(format, args...)
}

// Send is the application send path: assign identifiers, log the message in
// the sender's volatile store (sender-based message logging), attach the
// causal piggyback, and transmit.
func (c appCtx) Send(to ids.ProcID, payload []byte) {
	p := c.p
	if to == p.env.ID() || !to.Valid(p.n) || to.IsStorage() {
		panic(fmt.Sprintf("fbl: %v: invalid app destination %v", p.env.ID(), to))
	}
	p.ssn++
	p.dseqOut[to]++
	dseq := p.dseqOut[to]
	cp := append([]byte(nil), payload...)
	p.sendLogFor(to)[dseq] = logRec{ssn: p.ssn, payload: cp}
	id := ids.MsgID{Sender: p.env.ID(), SSN: p.ssn}
	if p.par.Hooks.OnSend != nil {
		p.par.Hooks.OnSend(p.env.ID(), id, to, hashBytes(cp))
	}
	if debugReplay && p.mode == ModeReplaying {
		p.env.Logf("REPLAYDBG send to=%v ssn=%d dseq=%d", to, p.ssn, dseq)
	}
	p.transmit(to, dseq, logRec{ssn: p.ssn, payload: cp})
}

// holderFingerprint folds a holder set into a comparable value.
//
//rollvet:hotpath
func holderFingerprint(e det.Entry) uint64 {
	h := uint64(1469598103934665603)
	for _, w := range e.Holders.Words() {
		h ^= w
		h *= 1099511628211
	}
	return h
}

// transmit sends one logged application message (used by both fresh sends
// and replay retransmissions). The piggyback carries every determinant not
// yet known to be stable (§2.1) that the destination is not already known
// to hold with the same holder information — the FBL estimate that stops
// the propagation of a receipt order "as soon as it has been recorded in
// f+1 hosts".
func (p *Process) transmit(to ids.ProcID, dseq uint64, rec logRec) {
	sent := p.detSentFor(to)
	var piggy []det.Entry
	consider := func(e det.Entry) {
		fp := holderFingerprint(e)
		if prev, ok := sent[e.Det.Msg]; ok && prev == fp {
			return
		}
		sent[e.Det.Msg] = fp
		piggy = append(piggy, e)
	}
	if p.par.Fanout > 0 && p.par.Outputs == nil {
		// Fanout mode drops the per-destination journal cursors: with O(n)
		// destinations each contacted rarely, every transmit would re-scan
		// the whole modification history since last contact — quadratic at
		// n=1024. The live pending set is small (entries stabilize within a
		// few hops) and the detSent fingerprints still deduplicate offers,
		// so scanning it whole is both flat-cost and offer-equivalent.
		p.dets.ScanPending(consider)
	} else if p.detCursor[to] < 0 {
		// The peer reincarnated: offer every pending determinant once.
		for _, e := range p.dets.Pending() {
			consider(e)
		}
		p.detCursor[to] = p.dets.Cursor()
	} else if p.par.Outputs != nil {
		// Output tracking needs holder knowledge to travel one hop past the
		// f+1 threshold: only learning that its antecedents are stable lets
		// the entry's receiver release output (DESIGN §10). The detSent
		// fingerprint still bounds this to one extra copy per destination.
		p.detCursor[to] = p.dets.ScanModified(p.detCursor[to], consider)
	} else {
		p.detCursor[to] = p.dets.ScanPendingModified(p.detCursor[to], consider)
	}
	if TestingDropDetPiggyback {
		// Mutation hook (see TestingDropDetPiggyback): the determinants were
		// scanned and memoized as sent, but never leave the process — the
		// exact bug class the explorer's orphan/fidelity invariants exist to
		// catch.
		piggy = nil
	}
	if p.par.Fanout > 0 {
		// The FBL sender-side estimate (§2.1): piggybacking a determinant
		// to a destination makes that destination a holder, so count it now
		// and stop propagating once the estimate reaches f+1. Without this,
		// a copy's holder view stalls below the threshold forever (stable
		// copies are never re-piggybacked, so nobody echoes the knowledge
		// back) and every process keeps offering every determinant it saw
		// until checkpoint GC — the piggyback volume that made n=1024
		// unaffordable. The estimate is optimistic about in-flight copies,
		// which is exactly the paper's stated trade; the cluster's orphan
		// checker guards the invariant in every scenario we run.
		for i := range piggy {
			p.dets.AddHolder(piggy[i].Det.Msg, to)
		}
	}
	met := p.env.Metrics()
	met.PiggybackDets += int64(len(piggy))
	for i := range piggy {
		met.PiggybackBytes += int64(32 + 8*len(piggy[i].Holders.Words()))
	}
	e := &wire.Envelope{
		Kind:    wire.KindApp,
		FromInc: p.inc,
		SSN:     rec.ssn,
		Dseq:    dseq,
		Payload: rec.payload,
		Dets:    piggy,
	}
	if p.par.Fanout > 0 {
		// Fanout mode replaces broadcast checkpoint notices with this
		// piggyback: the receiver garbage-collects our determinants up to
		// CPRsn and its send log for us up to CPDseq — the checkpoint-time
		// watermarks, never the live counters (see cpExpDseq).
		e.CPRsn = p.cpRSN
		e.CPDseq = p.cpExpDseq[to]
	}
	p.env.Send(to, e)
}

// serveReplay answers a recovering process's retransmission request: resend
// every logged message destined to it with dseq beyond its restored
// watermark, in order. This covers both the messages it must re-deliver in
// logged order and the in-flight ones it never delivered.
func (p *Process) serveReplay(e *wire.Envelope) {
	to := e.From
	if !to.Valid(p.n) || to.IsStorage() {
		return
	}
	// Serve each logged message at most once per requester incarnation:
	// the periodic request retries exist to pick up entries regenerated
	// since the last service (and to survive requester restarts, which
	// change the incarnation and reset the memo). Without the memo every
	// retry would re-send the full suffix and the requester would spend
	// its recovery absorbing duplicates.
	start := e.Dseq
	if m := p.replayServed[to]; m.inc == e.FromInc && m.max > start {
		start = m.max
	}
	log := p.sendLog[to]
	dseqs := make([]uint64, 0, len(log))
	for _, d := range sortedKeys(log) {
		if d > start {
			dseqs = append(dseqs, d)
		}
	}
	if len(dseqs) == 0 {
		return
	}
	p.env.Logf("fbl: replaying %d logged messages to %v (watermark %d, served %d)",
		len(dseqs), to, e.Dseq, start)
	for _, d := range dseqs {
		p.transmit(to, d, log[d])
	}
	p.replayServed[to] = servedMark{inc: e.FromInc, max: dseqs[len(dseqs)-1]}
}
