package fbl

// TestingDropDetPiggyback, when set, strips the causal determinant
// piggyback from every application send: determinants are logged locally
// and memoized as sent, but copies never reach other holders, so the f+1
// stability the protocol's orphan-freedom and output-commit arguments rest
// on is silently never established. A crash then forces the victim to
// replay from retransmissions whose interleaving the lost determinants were
// supposed to pin — the classic message-logging bug class.
//
// This is a test-only mutation knob: the explorer's mutation self-test
// (internal/explore) flips it to prove the invariant checker actually
// detects a seeded-in violation rather than passing vacuously. Never set it
// outside tests.
var TestingDropDetPiggyback bool
