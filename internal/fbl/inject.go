package fbl

// Inject hands the application an open-loop arrival: a nondeterministic
// event originating outside the cluster (a user request entering at this
// process), delivered to the app as a message from itself. The handling —
// and every send and output it triggers — runs through the ordinary
// appCtx paths, so downstream processes see plain logged application
// traffic.
//
// Replay soundness: FBL logs message receipts, not injections, so a
// crashed process cannot regenerate the arrivals it admitted — its replay
// would silently drop them and orphan every receiver of the sends they
// caused. Injections are therefore only sound on processes that never
// crash; the traffic harness keeps the client tier out of every crash
// plan, and the cluster-level orphan check (cluster.Check) would flag a
// violation of that discipline. A busy host sheds instead of queueing:
// Inject reports false — and the arrival is lost, as an open-loop
// request to an unavailable endpoint is — unless the process is live and
// unblocked.
func (p *Process) Inject(payload []byte) bool {
	if p.mode != ModeLive || p.blocked {
		return false
	}
	p.app.Handle(appCtx{p}, p.env.ID(), payload)
	// The arrival may have requested outputs whose rule already holds
	// (same pattern as the Deliver tail).
	p.checkOutputs()
	return true
}
