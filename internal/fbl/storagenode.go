package fbl

import (
	"rollrec/internal/det"
	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/wire"
)

// StorageNode is the stable-storage pseudo-process of the f = n instance
// (paper §3.3: "we model stable storage as an additional process that never
// fails or sends a message" — it only ever replies). It accumulates
// determinants streamed by the application processes; a determinant is
// stable once it holds it, and it contributes its log to every gather.
type StorageNode struct {
	env  node.Env
	dets *det.Log
}

var _ node.Process = (*StorageNode)(nil)

// NewStorageNode returns a factory for the pseudo-process. n and f must
// match the cluster's configuration.
func NewStorageNode(n, f int) node.Factory {
	return func() node.Process {
		return &StorageNode{dets: det.NewLog(det.Config{N: n, F: f})}
	}
}

// Boot implements node.Process.
func (s *StorageNode) Boot(env node.Env, restart bool) {
	s.env = env
	if restart {
		panic("fbl: the storage pseudo-process never restarts")
	}
}

// Deliver implements node.Process.
func (s *StorageNode) Deliver(e *wire.Envelope) {
	switch e.Kind {
	case wire.KindDetsToStorage:
		acked := make([]ids.MsgID, 0, len(e.Dets))
		for _, en := range e.Dets {
			en = en.Clone()
			en.Holders.Add(det.HolderIndex(ids.StorageProc, s.env.N()))
			if err := s.dets.Record(en); err != nil {
				panic("fbl: storage received conflicting determinant: " + err.Error())
			}
			acked = append(acked, en.Det.Msg)
		}
		s.env.Send(e.From, &wire.Envelope{
			Kind:    wire.KindStorageAck,
			FromInc: 1,
			MsgIDs:  acked,
		})
	case wire.KindDepRequest:
		// The storage process is one of the hosts the leader gathers from.
		// A scoped request (fanout mode) names the recovering members; only
		// their determinants matter for replay.
		var dets []det.Entry
		if len(e.Members) > 0 {
			dets = s.dets.AllForReceivers(e.Members)
		} else {
			dets = s.dets.All()
		}
		s.env.Send(e.From, &wire.Envelope{
			Kind:    wire.KindDepReply,
			FromInc: 1,
			Ord:     e.Ord,
			Round:   e.Round,
			Dets:    dets,
		})
	case wire.KindCheckpointNotice:
		s.dets.GCReceiver(e.From, e.CPRsn)
	default:
		// Heartbeats and broadcast recovery traffic are irrelevant here.
	}
}

// Len exposes the stored determinant count for tests.
func (s *StorageNode) Len() int { return s.dets.Len() }
