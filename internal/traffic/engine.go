package traffic

import (
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/workload"
)

// Host is the injection surface a harness lends the engine: At schedules a
// callback at an absolute virtual time on the simulation clock, Inject
// offers one arrival frame to a process and reports whether it was
// admitted. Both the cluster harness (FBL) and the raw-kernel harnesses
// (coordinated, optimistic) satisfy it with two closures.
type Host struct {
	At     func(at time.Duration, fn func())
	Inject func(p ids.ProcID, payload []byte) bool
}

// Engine drives the open-loop arrival processes against the client tier.
// It is harness-side state — never checkpointed, never rolled back — which
// is exactly the open-loop model: the outside world keeps sending at its
// own pace regardless of what the cluster is going through. Arrivals that
// land on a crashed, blocked, or rolling-back client are shed, not queued.
//
// Determinism: each client owns a PRNG seeded from (runSeed, client), and
// both its gaps and its request bodies come from that stream, so the full
// arrival schedule is a pure function of the seed and spec. Gaps are
// sampled with the integer-only samplers in arrival.go and scheduled via
// kernel timers (the PR 6 sampler discipline), so attaching the engine
// perturbs no existing event ordering and golden traces without traffic
// stay byte-identical.
type Engine struct {
	spec    workload.Traffic
	host    Host
	horizon time.Duration
	clients []clientSource

	offered  int64
	admitted int64
	shed     int64
}

// clientSource is one client's arrival stream.
type clientSource struct {
	rng    workload.PRNG
	seq    uint64
	nextAt int64 // absolute virtual ns of the next arrival
}

// NewEngine builds an engine for the given traffic spec and run seed.
func NewEngine(spec workload.Traffic, seed int64) *Engine {
	spec.Validate()
	e := &Engine{spec: spec, clients: make([]clientSource, spec.Clients)}
	for i := range e.clients {
		e.clients[i].rng = workload.NewPRNG(workload.Mix64(uint64(seed), 0x656E67696E65+uint64(i)))
	}
	return e
}

// Attach starts the arrival processes on the given host: each client's
// first arrival is scheduled at its first sampled gap, and every arrival
// schedules the next, up to (and including) the horizon. Attach must be
// called before the simulation runs.
func (e *Engine) Attach(h Host, horizon time.Duration) {
	if h.At == nil || h.Inject == nil {
		panic("traffic: host needs both At and Inject")
	}
	e.host, e.horizon = h, horizon
	for i := range e.clients {
		e.schedule(i)
	}
}

func (e *Engine) schedule(ci int) {
	c := &e.clients[ci]
	c.nextAt += nextGap(e.spec.Arrival, &c.rng, e.spec.MeanGap())
	if at := time.Duration(c.nextAt); at <= e.horizon {
		e.host.At(at, func() { e.arrive(ci) })
	}
}

func (e *Engine) arrive(ci int) {
	c := &e.clients[ci]
	c.seq++
	e.offered++
	if e.host.Inject(ids.ProcID(ci), arrivalFrame(c.seq, c.rng.Next())) {
		e.admitted++
	} else {
		e.shed++
	}
	e.schedule(ci)
}

// Offered reports the total arrivals generated within the horizon.
func (e *Engine) Offered() int64 { return e.offered }

// Admitted reports arrivals the client tier accepted.
func (e *Engine) Admitted() int64 { return e.admitted }

// Shed reports arrivals lost to an unavailable client (crashed, blocked,
// or rolling back) — the open-loop analogue of a connection error.
func (e *Engine) Shed() int64 { return e.shed }
