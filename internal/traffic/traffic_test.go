package traffic

import (
	"testing"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/workload"
)

func TestExpGapMeanAndDeterminism(t *testing.T) {
	const mean = int64(time.Millisecond)
	rng := workload.NewPRNG(42)
	const n = 200000
	var sum int64
	for i := 0; i < n; i++ {
		g := expGap(&rng, mean)
		if g <= 0 {
			t.Fatalf("sample %d: non-positive gap %d", i, g)
		}
		sum += g
	}
	got := sum / n
	if got < mean*97/100 || got > mean*103/100 {
		t.Fatalf("empirical mean %d outside 3%% of %d", got, mean)
	}

	a, b := workload.NewPRNG(7), workload.NewPRNG(7)
	for i := 0; i < 1000; i++ {
		if ga, gb := expGap(&a, mean), expGap(&b, mean); ga != gb {
			t.Fatalf("sample %d: same seed diverged: %d vs %d", i, ga, gb)
		}
	}
}

func TestParetoGapBoundsAndMean(t *testing.T) {
	const mean = int64(10 * time.Millisecond)
	low := mean * 1000 / 2703
	rng := workload.NewPRNG(99)
	const n = 200000
	var sum int64
	for i := 0; i < n; i++ {
		g := paretoGap(&rng, mean)
		if g < low || g > 100*low {
			t.Fatalf("sample %d: gap %d outside [%d, %d]", i, g, low, 100*low)
		}
		sum += g
	}
	got := sum / n
	if got < mean*90/100 || got > mean*110/100 {
		t.Fatalf("empirical mean %d outside 10%% of %d", got, mean)
	}
}

func TestEngineScheduleIsSeedPure(t *testing.T) {
	spec := workload.Traffic{Clients: 2, Frontends: 1, Backends: 1, FanOut: 1, Load: 1000}
	type ev struct {
		at time.Duration
		p  ids.ProcID
	}
	run := func(seed int64) []ev {
		var got []ev
		var pendingAt []time.Duration
		var pendingFn []func()
		h := Host{
			At: func(at time.Duration, fn func()) {
				pendingAt = append(pendingAt, at)
				pendingFn = append(pendingFn, fn)
			},
			Inject: func(p ids.ProcID, payload []byte) bool {
				got = append(got, ev{pendingAt[0], p})
				return true
			},
		}
		e := NewEngine(spec, seed)
		e.Attach(h, 100*time.Millisecond)
		// Drain in FIFO order; exact interleaving doesn't matter for this
		// test — only that the (time, proc) stream is a pure seed function.
		for len(pendingFn) > 0 {
			fn := pendingFn[0]
			pendingFn = pendingFn[1:]
			fn()
			pendingAt = pendingAt[1:]
		}
		if e.Offered() != e.Admitted() || e.Shed() != 0 {
			t.Fatalf("counters: offered %d admitted %d shed %d", e.Offered(), e.Admitted(), e.Shed())
		}
		return got
	}
	a, b := run(5), run(5)
	if len(a) == 0 {
		t.Fatal("no arrivals within horizon")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(6)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical arrival schedule")
	}
}

// chanCtx is a test host: it queues sends for synchronous in-order delivery
// and records outputs.
type chanCtx struct {
	t       *testing.T
	self    ids.ProcID
	n       int
	apps    []workload.App
	queue   *[]queuedMsg
	outputs *[][]byte
}

type queuedMsg struct {
	from, to ids.ProcID
	payload  []byte
}

func (c chanCtx) Self() ids.ProcID { return c.self }
func (c chanCtx) N() int           { return c.n }
func (c chanCtx) Work(int64)       {}
func (c chanCtx) Send(to ids.ProcID, payload []byte) {
	*c.queue = append(*c.queue, queuedMsg{c.self, to, append([]byte(nil), payload...)})
}
func (c chanCtx) Output(payload []byte) {
	*c.outputs = append(*c.outputs, append([]byte(nil), payload...))
}
func (c chanCtx) Logf(format string, args ...any) { c.t.Logf(format, args...) }

func TestAppRequestRoundTrip(t *testing.T) {
	spec := workload.Traffic{Clients: 1, Frontends: 1, Backends: 2, FanOut: 2, Load: 100, PayloadPad: 8}
	factory := NewApp(spec)
	n := spec.N()
	apps := make([]workload.App, n)
	for i := range apps {
		apps[i] = factory(ids.ProcID(i), n)
	}
	var queue []queuedMsg
	var outputs [][]byte
	ctx := func(self ids.ProcID) chanCtx {
		return chanCtx{t: t, self: self, n: n, apps: apps, queue: &queue, outputs: &outputs}
	}

	// Inject two arrivals, drain the message queue to quiescence.
	apps[0].Handle(ctx(0), 0, arrivalFrame(1, 111))
	apps[0].Handle(ctx(0), 0, arrivalFrame(2, 222))
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		apps[m.to].Handle(ctx(m.to), m.from, m.payload)
	}

	cl := apps[0].(*app)
	if cl.Released() != 2 {
		t.Fatalf("client released %d of 2 requests", cl.Released())
	}
	if got := cl.InflightReqs(); got != 0 {
		t.Fatalf("client still holds %d open requests", got)
	}
	if fe := apps[1].(*app); fe.InflightReqs() != 0 {
		t.Fatalf("frontend still fanning in %d requests", fe.InflightReqs())
	}
	// 2 requests x (2 shard outputs + 1 frontend output + 1 client release).
	if len(outputs) != 8 {
		t.Fatalf("got %d outputs, want 8", len(outputs))
	}
	var shards uint64
	for _, a := range apps[2:] {
		shards += a.(*app).Applied()
	}
	if shards != 4 {
		t.Fatalf("backends applied %d shards, want 4", shards)
	}
}

func TestAppSnapshotRoundTrip(t *testing.T) {
	spec := workload.Traffic{Clients: 1, Frontends: 1, Backends: 2, FanOut: 2, Load: 100}
	factory := NewApp(spec)
	n := spec.N()
	apps := make([]workload.App, n)
	for i := range apps {
		apps[i] = factory(ids.ProcID(i), n)
	}
	var queue []queuedMsg
	var outputs [][]byte
	ctx := func(self ids.ProcID) chanCtx {
		return chanCtx{t: t, self: self, n: n, apps: apps, queue: &queue, outputs: &outputs}
	}
	// Leave the system mid-request: inject but only deliver the first two
	// hops, so client queue and frontend fan-in state are non-trivial.
	apps[0].Handle(ctx(0), 0, arrivalFrame(1, 333))
	for i := 0; i < 2 && len(queue) > 0; i++ {
		m := queue[0]
		queue = queue[1:]
		apps[m.to].Handle(ctx(m.to), m.from, m.payload)
	}
	for i, a := range apps {
		snap := a.Snapshot()
		fresh := factory(ids.ProcID(i), n)
		if err := fresh.Restore(snap); err != nil {
			t.Fatalf("proc %d: restore: %v", i, err)
		}
		if fresh.Digest() != a.Digest() {
			t.Fatalf("proc %d: digest mismatch after snapshot round trip", i)
		}
	}
	if err := apps[0].Restore([]byte{1, 2, 3}); err == nil {
		t.Fatal("restore accepted a garbage snapshot")
	}
}
