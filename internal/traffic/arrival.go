package traffic

import (
	"math/bits"

	"rollrec/internal/workload"
)

// This file implements the arrival-process samplers under the integer-only
// determinism rule (DESIGN §12): gaps are computed with integer and
// fixed-point arithmetic exclusively, never float64 transcendentals. The
// obvious exponential sampler — -mean * math.Log(u) — is not portable at
// the bit level: Go explicitly permits fusing a*b+c into FMA instructions
// (arm64 does, amd64 without FMA does not), so a float implementation of
// log can round differently across architectures, and one ulp of
// difference in a single gap reshuffles every subsequent event in the
// simulation. Byte-identical timelines across hosts are a repo invariant,
// so the samplers below stay in uint64 land where every machine agrees.

// expGap draws an exponential (Poisson-process) inter-arrival gap with the
// given mean, in nanoseconds, using von Neumann's 1951 comparison method:
// draw uniforms U1 >= U2 >= ... until the first ascent at position N; if N
// is odd accept X = A + U1 (A counts the rejected rounds, each worth one
// mean), else increment A and retry. P(N odd and U1 <= x) telescopes to
// 1 - e^-x, so the accepted U1 is Exp(1) on [0,1) and A carries the
// integer part — no logarithm anywhere, just uint64 comparisons and one
// 128-bit multiply to scale the fraction by the mean.
func expGap(rng *workload.PRNG, mean int64) int64 {
	var a int64
	for {
		u1 := rng.Next()
		prev := u1
		n := 1
		for {
			u := rng.Next()
			if u > prev {
				break
			}
			prev = u
			n++
		}
		if n%2 == 1 {
			frac, _ := bits.Mul64(u1, uint64(mean)) // floor(u1 * mean / 2^64)
			if g := a*mean + int64(frac); g > 0 {
				return g
			}
			return 1
		}
		a++
	}
}

// paretoGap draws a bounded-Pareto(alpha = 3/2, L, H = 100L) gap whose
// mean is the given mean: E[X] = 3L(1 - (L/H)^(1/2)) / (1 - (L/H)^(3/2))
// = 2.703L for H = 100L, so L = mean/2.703. Inversion solves
// (L/x)^(3/2) = W for a uniform W on [(L/H)^(3/2), 1) — the lower bound
// renormalizes the truncation — which squares to the cubic (L/x)^3 = W^2,
// solved by integer bisection on x: with t = (L << 31)/x (the ratio in
// Q0.31) and w a Q0.31 uniform, accept once t^3 <= w^2 << 31, both sides
// compared as 128-bit values. Heavy tail, integer-exact, ~27 probes.
func paretoGap(rng *workload.PRNG, mean int64) int64 {
	low := mean * 1000 / 2703
	if low < 1 {
		low = 1
	}
	high := 100 * low
	const q = int64(1) << 31
	const wMin = q/1000 + 1 // (L/H)^(3/2) = 10^-3 in Q0.31, rounded up
	u := int64(rng.Next() >> 33)
	w := uint64(wMin + ((q-wMin)*u)>>31)
	w2 := w * w // <= 2^62
	rhsHi, rhsLo := w2>>33, w2<<31
	lo, hi := low, high
	for lo < hi {
		mid := lo + (hi-lo)/2
		t := uint64((low << 31) / mid)
		t3Hi, t3Lo := bits.Mul64(t*t, t)
		if t3Hi < rhsHi || (t3Hi == rhsHi && t3Lo <= rhsLo) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// nextGap dispatches on the spec's arrival process.
func nextGap(kind workload.Arrival, rng *workload.PRNG, mean int64) int64 {
	if kind == workload.ArrivalPareto {
		return paretoGap(rng, mean)
	}
	return expGap(rng, mean)
}
