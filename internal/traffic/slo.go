package traffic

import (
	"sort"
	"time"

	"rollrec/internal/output"
	"rollrec/internal/workload"
)

// TierStats is the SLO readout for one tier: how many outputs its
// processes requested, how many committed within the run, and exact
// quantiles of the request→commit latency (the per-hop "request to
// release" time the output ledger measures). The client tier's numbers
// are the user-visible ones — a client output commits only when the
// response may actually leave the system under the hosting style's rule.
type TierStats struct {
	Tier      workload.Tier
	Requested int
	Committed int
	P50       time.Duration
	P99       time.Duration
	P999      time.Duration
}

// StatsPerTier groups the ledger's committed outputs by tier and returns
// one TierStats per tier in tier order. Quantiles are exact
// (sorted-sample index, matching the experiment tables), not estimates.
func StatsPerTier(led *output.Ledger, spec workload.Traffic) []TierStats {
	lats := make([][]time.Duration, 3)
	stats := make([]TierStats, 3)
	for i := range stats {
		stats[i].Tier = workload.Tier(i)
	}
	for _, rec := range led.Records() {
		t := spec.TierOf(rec.Proc)
		stats[t].Requested++
		if rec.Committed() {
			stats[t].Committed++
			lats[t] = append(lats[t], rec.Latency())
		}
	}
	for i, ds := range lats {
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		stats[i].P50 = ds[(len(ds)-1)*50/100]
		stats[i].P99 = ds[(len(ds)-1)*99/100]
		stats[i].P999 = ds[(len(ds)-1)*999/1000]
	}
	return stats
}
