package traffic

import (
	"errors"

	"rollrec/internal/ids"
	"rollrec/internal/wire"
	"rollrec/internal/workload"
)

// Application frame kinds. The arrival frame is built by the engine and
// injected at a client; everything else is ordinary app messaging.
const (
	frameArrival  uint8 = 1 // engine -> client: seq, body
	frameRequest  uint8 = 2 // client -> frontend: seq, body, pad
	frameShardReq uint8 = 3 // frontend -> backend: seq, client, shard, body, pad
	frameShardRep uint8 = 4 // backend -> frontend: seq, client, shard, digest
	frameReply    uint8 = 5 // frontend -> client: seq, digest
)

// arrivalFrame builds the injected frame for one open-loop arrival.
func arrivalFrame(seq, body uint64) []byte {
	w := wire.NewWriter(17)
	w.U8(frameArrival)
	w.U64(seq)
	w.U64(body)
	return w.Frame()
}

var errBadSnapshot = errors.New("traffic: bad snapshot")

// clientReq is one admitted request awaiting its reply. The client releases
// outputs in admission order (head-of-line), so replies that overtake each
// other are still released to the user in request order.
type clientReq struct {
	seq    uint64
	done   bool
	digest uint64
}

// feReq is one request a frontend is fanning in. A slice (not a map) keeps
// scans and snapshots in deterministic order; entries are removed with an
// order-preserving copy.
type feReq struct {
	client ids.ProcID
	seq    uint64
	want   uint32
	got    uint32
	acc    uint64
}

// app is the role-switched multi-tier serving application: the same type
// hosts all three tiers, with spec.TierOf(self) selecting which message
// kinds it reacts to. All state — including the PRNG driving frontend and
// shard placement — is checkpointable, so every style's recovery replays
// the same routing decisions.
type app struct {
	self ids.ProcID
	spec workload.Traffic
	pad  []byte

	rng workload.PRNG

	// Client tier.
	queue    []clientReq
	released uint64
	relAcc   uint64

	// Frontend tier.
	pending []feReq
	served  uint64

	// Backend tier.
	applied uint64
	state   uint64
}

// NewApp builds the factory for the multi-tier serving app described by
// spec. The spec must describe exactly the cluster size it is hosted on;
// the factory panics otherwise (a wiring bug, per Validate's rationale).
func NewApp(spec workload.Traffic) workload.Factory {
	spec.Validate()
	return func(self ids.ProcID, n int) workload.App {
		if n != spec.N() {
			panic("traffic: cluster size does not match the traffic topology")
		}
		return &app{
			self: self,
			spec: spec,
			pad:  make([]byte, spec.PayloadPad),
			rng:  workload.NewPRNG(workload.Mix64(0x74726166666963, uint64(self))),
		}
	}
}

// Reseed folds the run-level seed into the routing stream (workload.Seeder).
func (a *app) Reseed(runSeed int64) {
	a.rng.SetState(workload.Mix64(uint64(runSeed), a.rng.State()))
}

// Start is a no-op: the workload is driven entirely by injected arrivals.
func (a *app) Start(workload.Ctx) {}

// Handle dispatches one frame by kind. Frames of the wrong kind for this
// process's tier (or malformed frames) are dropped with a trace line —
// they indicate a harness bug, not an app state.
func (a *app) Handle(ctx workload.Ctx, from ids.ProcID, payload []byte) {
	r := wire.NewReader(payload)
	kind := r.U8()
	tier := a.spec.TierOf(a.self)
	switch {
	case kind == frameArrival && tier == workload.TierClient:
		seq, body := r.U64(), r.U64()
		if !r.Done() {
			ctx.Logf("traffic: bad arrival frame")
			return
		}
		a.onArrival(ctx, seq, body)
	case kind == frameRequest && tier == workload.TierFrontend:
		seq, body := r.U64(), r.U64()
		r.Bytes() // pad
		if !r.Done() {
			ctx.Logf("traffic: bad request frame")
			return
		}
		a.onRequest(ctx, from, seq, body)
	case kind == frameShardReq && tier == workload.TierBackend:
		seq := r.U64()
		client := ids.ProcID(r.I32())
		shard := r.U32()
		body := r.U64()
		r.Bytes() // pad
		if !r.Done() {
			ctx.Logf("traffic: bad shard request frame")
			return
		}
		a.onShardReq(ctx, from, seq, client, shard, body)
	case kind == frameShardRep && tier == workload.TierFrontend:
		seq := r.U64()
		client := ids.ProcID(r.I32())
		shard := r.U32()
		digest := r.U64()
		if !r.Done() {
			ctx.Logf("traffic: bad shard reply frame")
			return
		}
		a.onShardRep(ctx, seq, client, shard, digest)
	case kind == frameReply && tier == workload.TierClient:
		seq, digest := r.U64(), r.U64()
		if !r.Done() {
			ctx.Logf("traffic: bad reply frame")
			return
		}
		a.onReply(ctx, seq, digest)
	default:
		ctx.Logf("traffic: %s got unexpected frame kind %d from %d", tier, kind, from)
	}
}

// onArrival admits a request at a client: queue it and forward to a
// uniformly chosen frontend.
func (a *app) onArrival(ctx workload.Ctx, seq, body uint64) {
	fe := ids.ProcID(a.spec.Clients + a.rng.Intn(a.spec.Frontends))
	a.queue = append(a.queue, clientReq{seq: seq})
	w := wire.NewWriter(21 + len(a.pad))
	w.U8(frameRequest)
	w.U64(seq)
	w.U64(body)
	w.Bytes(a.pad)
	ctx.Send(fe, w.Frame())
}

// onRequest fans a request out at a frontend: FanOut contiguous shards
// starting at a random backend.
func (a *app) onRequest(ctx workload.Ctx, client ids.ProcID, seq, body uint64) {
	base := a.rng.Intn(a.spec.Backends)
	a.pending = append(a.pending, feReq{client: client, seq: seq, want: uint32(a.spec.FanOut)})
	for j := 0; j < a.spec.FanOut; j++ {
		be := ids.ProcID(a.spec.Clients + a.spec.Frontends + (base+j)%a.spec.Backends)
		w := wire.NewWriter(29 + len(a.pad))
		w.U8(frameShardReq)
		w.U64(seq)
		w.I32(int32(client))
		w.U32(uint32(j))
		w.U64(body)
		w.Bytes(a.pad)
		ctx.Send(be, w.Frame())
	}
}

// onShardReq applies one shard at a backend: charge the per-hop compute,
// fold the shard into the backend state, commit the hop's output, reply.
func (a *app) onShardReq(ctx workload.Ctx, fe ids.ProcID, seq uint64, client ids.ProcID, shard uint32, body uint64) {
	if a.spec.WorkPerHop > 0 {
		ctx.Work(a.spec.WorkPerHop)
	}
	a.applied++
	a.state = workload.Mix64(a.state, workload.Mix64(body, uint64(client)<<32|uint64(shard)))
	digest := workload.Mix64(a.state, seq)
	w := wire.NewWriter(25)
	w.U8(frameShardRep)
	w.U64(seq)
	w.I32(int32(client))
	w.U32(shard)
	w.U64(digest)
	ctx.Output(w.Frame())
	ctx.Send(fe, w.Frame())
}

// onShardRep fans a shard reply in at a frontend; on the last shard the
// assembled reply is committed as this hop's output and sent to the client.
func (a *app) onShardRep(ctx workload.Ctx, seq uint64, client ids.ProcID, shard uint32, digest uint64) {
	for i := range a.pending {
		p := &a.pending[i]
		if p.client != client || p.seq != seq {
			continue
		}
		p.got++
		p.acc = workload.Mix64(p.acc, workload.Mix64(digest, uint64(shard)))
		if p.got < p.want {
			return
		}
		a.served++
		w := wire.NewWriter(17)
		w.U8(frameReply)
		w.U64(seq)
		w.U64(p.acc)
		ctx.Output(w.Frame())
		ctx.Send(client, w.Frame())
		copy(a.pending[i:], a.pending[i+1:])
		a.pending = a.pending[:len(a.pending)-1]
		return
	}
	// Unknown (client, seq): a stale reply for a request the fan-in already
	// completed or a rollback discarded. Shed silently — the client-side
	// queue is the authority on what is still owed.
}

// onReply completes a request at a client and releases every finished
// request at the head of the admission queue (the user-visible output
// commits). Rolled-back admissions vanish from the queue with the rollback
// itself, so they can never block the release cursor.
func (a *app) onReply(ctx workload.Ctx, seq, digest uint64) {
	for i := range a.queue {
		if a.queue[i].seq == seq {
			a.queue[i].done = true
			a.queue[i].digest = digest
			break
		}
	}
	for len(a.queue) > 0 && a.queue[0].done {
		head := a.queue[0]
		w := wire.NewWriter(17)
		w.U8(frameReply)
		w.U64(head.seq)
		w.U64(head.digest)
		ctx.Output(w.Frame())
		a.released++
		a.relAcc = workload.Mix64(a.relAcc, head.digest)
		a.queue = a.queue[1:]
	}
}

// Snapshot serializes the complete state (all roles; idle roles' fields
// are empty and cost a few bytes).
func (a *app) Snapshot() []byte {
	w := wire.NewWriter(64 + 17*len(a.queue) + 24*len(a.pending))
	w.U64(a.rng.State())
	w.U32(uint32(len(a.queue)))
	for _, q := range a.queue {
		w.U64(q.seq)
		if q.done {
			w.U8(1)
		} else {
			w.U8(0)
		}
		w.U64(q.digest)
	}
	w.U64(a.released)
	w.U64(a.relAcc)
	w.U32(uint32(len(a.pending)))
	for _, p := range a.pending {
		w.I32(int32(p.client))
		w.U64(p.seq)
		w.U32(p.want)
		w.U32(p.got)
		w.U64(p.acc)
	}
	w.U64(a.served)
	w.U64(a.applied)
	w.U64(a.state)
	return w.Frame()
}

// Restore replaces the state with a Snapshot frame.
func (a *app) Restore(data []byte) error {
	r := wire.NewReader(data)
	rs := r.U64()
	nq := r.ListLen()
	queue := make([]clientReq, 0, nq)
	for i := 0; i < nq && r.Err() == nil; i++ {
		var q clientReq
		q.seq = r.U64()
		q.done = r.U8() == 1
		q.digest = r.U64()
		queue = append(queue, q)
	}
	released, relAcc := r.U64(), r.U64()
	np := r.ListLen()
	pending := make([]feReq, 0, np)
	for i := 0; i < np && r.Err() == nil; i++ {
		var p feReq
		p.client = ids.ProcID(r.I32())
		p.seq = r.U64()
		p.want = r.U32()
		p.got = r.U32()
		p.acc = r.U64()
		pending = append(pending, p)
	}
	served := r.U64()
	applied, state := r.U64(), r.U64()
	if !r.Done() {
		return errBadSnapshot
	}
	a.rng.SetState(rs)
	a.queue, a.released, a.relAcc = queue, released, relAcc
	a.pending, a.served = pending, served
	a.applied, a.state = applied, state
	return nil
}

// Digest fingerprints the full state.
func (a *app) Digest() uint64 {
	h := workload.Mix64(a.rng.State(), uint64(a.self))
	h = workload.Mix64(h, uint64(len(a.queue)))
	for _, q := range a.queue {
		d := q.digest
		if q.done {
			d |= 1 << 63
		}
		h = workload.Mix64(h, workload.Mix64(q.seq, d))
	}
	h = workload.Mix64(h, workload.Mix64(a.released, a.relAcc))
	h = workload.Mix64(h, uint64(len(a.pending)))
	for _, p := range a.pending {
		h = workload.Mix64(h, workload.Mix64(p.seq, uint64(p.client)<<32|uint64(p.got)))
		h = workload.Mix64(h, p.acc)
	}
	h = workload.Mix64(h, a.served)
	return workload.Mix64(h, workload.Mix64(a.applied, a.state))
}

// Done always reports false: an open-loop workload has no natural end —
// the experiment horizon decides when the run stops.
func (a *app) Done() bool { return false }

// InflightReqs reports this process's open-request gauge for the timeline
// collector: admitted-but-unreleased at a client, fanning-in at a
// frontend, zero at a backend (backends hold no per-request state).
func (a *app) InflightReqs() int {
	switch a.spec.TierOf(a.self) {
	case workload.TierClient:
		return len(a.queue)
	case workload.TierFrontend:
		return len(a.pending)
	}
	return 0
}

// Released reports how many requests this client has released to the user.
func (a *app) Released() uint64 { return a.released }

// Applied reports how many shards this backend has applied.
func (a *app) Applied() uint64 { return a.applied }
