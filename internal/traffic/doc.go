// Package traffic is the open-loop multi-tier traffic engine: it drives
// seeded arrival processes against a serving topology hosted on any of
// the three rollback-recovery styles, so experiments can ask what a user
// actually experiences — request-to-release latency at the client tier —
// while the protocols checkpoint, log, crash, and recover underneath.
//
// Three pieces:
//
//   - arrival.go: deterministic inter-arrival samplers (Poisson via von
//     Neumann's comparison method, bounded Pareto via fixed-point
//     bisection) built from integer arithmetic only, so the arrival
//     schedule is bit-identical on every architecture (DESIGN §12).
//
//   - app.go: a role-switched workload.App implementing the
//     clients → frontends → backends topology of workload.Traffic.
//     Requests enter at a client, fan out to FanOut backend shards, fan
//     back in, and release to the user in admission order; every hop
//     declares an output, so the PR 5 ledger captures per-tier commit
//     latency under each style's output-commit rule.
//
//   - engine.go: the harness-side open-loop source. It schedules
//     arrivals on the simulation clock via kernel timers and offers
//     each to its client through a per-style injection point
//     (fbl/coord/optimistic Process.Inject); arrivals during downtime
//     are shed, never queued, which is what makes the loop open.
//
// The split matters for recovery semantics: everything the app does is
// checkpointable and replayable, while the engine — the outside world —
// is not rolled back with the cluster. A crash therefore sheds load,
// orphans in-flight requests for the rollback machinery to reconcile,
// and stalls client outputs until the style's commit rule holds again;
// slo.go turns the resulting ledger into per-tier p50/p99/p99.9 tables
// (experiment D12).
package traffic
