// Package det implements determinants and the volatile determinant log of
// the Family-Based Logging protocols.
//
// A determinant #m = (sender, ssn, receiver, rsn) records the one
// nondeterministic outcome of delivering message m: the position it took in
// its receiver's delivery order. The FBL insight (paper §2) is that
// tolerating f failures only requires each determinant to reach the volatile
// stores of f+1 different hosts; the message data itself stays in the
// volatile store of its sender. Determinants spread causally: every outgoing
// message piggybacks the determinants its sender does not yet know to be
// replicated widely enough, so any process whose state causally depends on a
// delivery also holds (or once held) its determinant — which is exactly the
// property the paper's safety proof (§4.3) relies on.
package det

import (
	"fmt"
	"sort"

	"rollrec/internal/bitset"
	"rollrec/internal/ids"
)

// Determinant is the receipt-order record for one message delivery.
type Determinant struct {
	Msg      ids.MsgID  // the message: (sender, send sequence number)
	Receiver ids.ProcID // who delivered it
	RSN      ids.RSN    // position in the receiver's delivery order
}

// String renders the determinant.
func (d Determinant) String() string {
	return fmt.Sprintf("#(%v->%v@%d)", d.Msg, d.Receiver, d.RSN)
}

// Entry pairs a determinant with the set of hosts known to hold it. Entries
// travel on the wire inside piggyback lists and depinfo replies, carrying
// the holder estimate along so that receivers can stop forwarding
// determinants that are already stable.
type Entry struct {
	Det     Determinant
	Holders bitset.Set // indices per HolderIndex
}

// Clone returns a deep copy of the entry.
func (e Entry) Clone() Entry {
	return Entry{Det: e.Det, Holders: e.Holders.Clone()}
}

// HolderIndex maps a process identifier to its slot in holder sets for a
// cluster of n application processes. The stable-storage pseudo-process
// (f = n mode) occupies slot n. It returns -1 for identifiers that cannot
// hold determinants.
func HolderIndex(p ids.ProcID, n int) int {
	switch {
	case p.IsStorage():
		return n
	case p >= 0 && int(p) < n:
		return int(p)
	default:
		return -1
	}
}

// Config captures the replication rule parameters.
type Config struct {
	N int // number of application processes
	F int // failures to tolerate; F >= N selects the f = n (Manetho) instance
}

// Manetho reports whether the configuration is the f = n instance, where
// determinants are stable only once the stable-storage pseudo-process holds
// them (paper §3.3 models stable storage as a process that never fails).
func (c Config) Manetho() bool { return c.F >= c.N }

// Stable reports whether a determinant with the given holder set needs no
// further propagation: either f+1 hosts hold it, or — in the f = n
// instance — stable storage does.
func (c Config) Stable(holders bitset.Set) bool {
	if c.Manetho() {
		return holders.Contains(c.N)
	}
	return holders.Count() >= c.F+1
}

// Log is a process's volatile determinant store. The zero value is not
// usable; construct with NewLog. Log is not safe for concurrent use — each
// process owns one and the runtimes serialize event handling per process.
type Log struct {
	cfg     Config
	entries map[ids.MsgID]*Entry

	// byRecv indexes entry ids by the determinant's receiver. ForReceiver,
	// AllForReceivers, and GCReceiver run per checkpoint notice and per
	// recovery; without the index each is a scan of the whole log, which
	// turns quadratic at n=1024 (every notice from every peer walks every
	// entry). A determinant's receiver never changes, so the index only
	// updates on insert and GC.
	byRecv map[ids.ProcID]map[ids.MsgID]struct{}

	// Modification journal: every holder-set change appends the message id
	// here, so piggyback construction can scan "what changed since I last
	// sent to this peer" instead of the whole log (which dominates CPU
	// otherwise). base counts compacted-away prefix entries; cursors are
	// absolute positions (base + offset).
	journal []ids.MsgID
	base    int

	// Live pending index: the currently non-stable entries in
	// first-recorded order, pruned lazily by ScanPending. Per-destination
	// journal cursors are the wrong shape at large n — a rarely-contacted
	// destination's cursor makes each transmit to it re-scan every
	// modification since last contact, so total piggyback cost grows as
	// destinations × journal growth (quadratic at n=1024). The pending set
	// itself stays small (entries cross the f+1 threshold within a few
	// hops), so scanning it whole per transmit is O(pending) flat.
	pendList []ids.MsgID
	pendSet  map[ids.MsgID]struct{}
}

// NewLog returns an empty determinant log for the given configuration.
func NewLog(cfg Config) *Log {
	return &Log{
		cfg:     cfg,
		entries: make(map[ids.MsgID]*Entry),
		byRecv:  make(map[ids.ProcID]map[ids.MsgID]struct{}),
		pendSet: make(map[ids.MsgID]struct{}),
	}
}

// mark appends id to the modification journal consumed by the scan
// cursors.
//
//rollvet:hotpath
func (l *Log) mark(id ids.MsgID) {
	//rollvet:allow hotalloc -- journal growth is amortized; Compact recycles the prefix via the base offset
	l.journal = append(l.journal, id)
}

// Cursor returns the current journal position for ScanPendingModified.
func (l *Log) Cursor() int { return l.base + len(l.journal) }

// scanJournal walks the journal from cursor, deduplicating ids within the
// scan, and invokes visit with each id's current entry (nil when the entry
// was garbage-collected since it was marked). It returns the new cursor.
func (l *Log) scanJournal(cursor int, visit func(id ids.MsgID, e *Entry)) int {
	if cursor < l.base {
		cursor = l.base
	}
	var seen map[ids.MsgID]bool
	for i := cursor - l.base; i < len(l.journal); i++ {
		id := l.journal[i]
		if seen[id] {
			continue
		}
		if seen == nil {
			seen = make(map[ids.MsgID]bool)
		}
		seen[id] = true
		visit(id, l.entries[id])
	}
	return l.Cursor()
}

// ScanPendingModified invokes fn with a copy of every non-stable entry
// modified at or after cursor (deduplicated within the scan) and returns
// the new cursor.
func (l *Log) ScanPendingModified(cursor int, fn func(Entry)) int {
	return l.scanJournal(cursor, func(_ ids.MsgID, e *Entry) {
		if e != nil && !l.cfg.Stable(e.Holders) {
			fn(e.Clone())
		}
	})
}

// ScanModified is ScanPendingModified without the stability filter: fn
// also receives entries that crossed the f+1 threshold. The output-commit
// piggyback path uses it so holder knowledge travels one hop further than
// replication needs — the process whose delivery an entry records can only
// release dependent output once IT learns the entry is stable; with the
// stability-filtered scan that knowledge would arrive only with its next
// checkpoint (see fbl/send.go).
func (l *Log) ScanModified(cursor int, fn func(Entry)) int {
	return l.scanJournal(cursor, func(_ ids.MsgID, e *Entry) {
		if e != nil {
			fn(e.Clone())
		}
	})
}

// Compact discards the journal prefix below minCursor, the smallest cursor
// any consumer still holds.
func (l *Log) Compact(minCursor int) {
	if minCursor <= l.base {
		return
	}
	drop := minCursor - l.base
	if drop > len(l.journal) {
		drop = len(l.journal)
	}
	l.journal = append([]ids.MsgID(nil), l.journal[drop:]...)
	l.base += drop
}

// Config returns the replication configuration of the log.
func (l *Log) Config() Config { return l.cfg }

// Len returns the number of determinants currently held.
func (l *Log) Len() int { return len(l.entries) }

// PendingCount returns the number of entries that are not yet stable — the
// stability lag: determinants still below the f+1-holder watermark, whose
// loss in a failure would orphan somebody. Allocation-free, for samplers.
//
//rollvet:hotpath
func (l *Log) PendingCount() int {
	n := 0
	//rollvet:allow maporder -- counts a pure predicate over values; the sum is order-independent
	for _, e := range l.entries {
		if !l.cfg.Stable(e.Holders) {
			n++
		}
	}
	return n
}

// Record merges an entry into the log: a new determinant is stored, a known
// one has its holder set unioned. It returns an error if the incoming
// determinant disagrees with a stored one about the receiver or the receipt
// order of the same message — that would mean two executions delivered the
// same message differently, which the protocol must never allow.
func (l *Log) Record(e Entry) error {
	if cur, ok := l.entries[e.Det.Msg]; ok {
		if cur.Det != e.Det {
			return fmt.Errorf("det: conflicting determinants for %v: have %v, got %v",
				e.Det.Msg, cur.Det, e.Det)
		}
		if cur.Holders.Union(e.Holders) {
			l.mark(e.Det.Msg)
		}
		return nil
	}
	cp := e.Clone()
	l.entries[e.Det.Msg] = &cp
	if !l.cfg.Stable(cp.Holders) {
		l.pendAdd(e.Det.Msg)
	}
	idx := l.byRecv[e.Det.Receiver]
	if idx == nil {
		idx = make(map[ids.MsgID]struct{})
		l.byRecv[e.Det.Receiver] = idx
	}
	idx[e.Det.Msg] = struct{}{}
	l.mark(e.Det.Msg)
	return nil
}

// AddHolder marks process p as holding the determinant of msg, if known.
//
//rollvet:hotpath
func (l *Log) AddHolder(msg ids.MsgID, p ids.ProcID) {
	if e, ok := l.entries[msg]; ok {
		if idx := HolderIndex(p, l.cfg.N); idx >= 0 && !e.Holders.Contains(idx) {
			e.Holders.Add(idx)
			l.mark(msg)
		}
	}
}

// Lookup returns the determinant entry for msg, if present.
func (l *Log) Lookup(msg ids.MsgID) (Entry, bool) {
	if e, ok := l.entries[msg]; ok {
		return e.Clone(), true
	}
	return Entry{}, false
}

// StableOrGone reports whether msg needs no further replication: its
// determinant is either stable or no longer tracked (garbage-collected,
// which only happens once its receiver checkpointed past the delivery).
// Unlike Lookup it allocates nothing, so it is safe on hot paths.
//
//rollvet:hotpath
func (l *Log) StableOrGone(msg ids.MsgID) bool {
	e, ok := l.entries[msg]
	return !ok || l.cfg.Stable(e.Holders)
}

// PendingIDs invokes fn with the id of every non-stable entry, in no
// particular order: callers must treat the result as a set (the output-
// commit wait counters do). Unlike Pending it clones and sorts nothing.
func (l *Log) PendingIDs(fn func(ids.MsgID)) {
	//rollvet:allow maporder -- callers build order-independent sets/counters from the ids
	for id, e := range l.entries {
		if !l.cfg.Stable(e.Holders) {
			fn(id)
		}
	}
}

// pendAdd inserts id into the live pending index if absent.
//
//rollvet:hotpath
func (l *Log) pendAdd(id ids.MsgID) {
	if _, ok := l.pendSet[id]; ok {
		return
	}
	l.pendSet[id] = struct{}{}
	//rollvet:allow hotalloc -- index growth is amortized; ScanPending compacts stabilized ids in place
	l.pendList = append(l.pendList, id)
}

// ScanPending invokes fn with a copy of every currently-pending entry, in
// first-recorded order, pruning ids that stabilized or were collected since
// the last scan. This is the piggyback source for protocol modes without
// per-destination journal cursors (fanout): cost is O(pending now), not
// O(modifications since this destination was last contacted).
func (l *Log) ScanPending(fn func(Entry)) {
	w := 0
	for _, id := range l.pendList {
		e, ok := l.entries[id]
		if !ok || l.cfg.Stable(e.Holders) {
			delete(l.pendSet, id)
			continue
		}
		l.pendList[w] = id
		w++
		fn(e.Clone())
	}
	l.pendList = l.pendList[:w]
}

// ScanStabilized invokes fn once per message id that was modified at or
// after cursor and is now stable or gone, and returns the new cursor.
// Garbage collection marks the journal too, so ids GC'd since the last
// scan are reported. The output-commit rule consumes this to retire wait
// entries incrementally instead of re-polling its whole wait set.
func (l *Log) ScanStabilized(cursor int, fn func(ids.MsgID)) int {
	return l.scanJournal(cursor, func(id ids.MsgID, e *Entry) {
		if e == nil || l.cfg.Stable(e.Holders) {
			fn(id)
		}
	})
}

// Pending returns the entries that are not yet stable, in deterministic
// (sender, ssn) order: exactly the set a process must piggyback on its next
// outgoing message.
func (l *Log) Pending() []Entry {
	var out []Entry
	//rollvet:allow maporder -- sortEntries below totally orders by the unique MsgID key; Stable is a pure predicate
	for _, e := range l.entries {
		if !l.cfg.Stable(e.Holders) {
			out = append(out, e.Clone())
		}
	}
	sortEntries(out)
	return out
}

// PendingForStorage returns the entries whose holder set does not yet
// include the stable-storage pseudo-process; the f = n instance streams
// these to storage asynchronously.
func (l *Log) PendingForStorage() []Entry {
	var out []Entry
	//rollvet:allow maporder -- sortEntries below totally orders by the unique MsgID key; Contains is a pure predicate
	for _, e := range l.entries {
		if !e.Holders.Contains(l.cfg.N) {
			out = append(out, e.Clone())
		}
	}
	sortEntries(out)
	return out
}

// All returns every entry in deterministic order. Used when a live process
// answers the recovery leader's depinfo request (§3.4 step 5).
func (l *Log) All() []Entry {
	out := make([]Entry, 0, len(l.entries))
	//rollvet:allow maporder -- sortEntries below totally orders by the unique MsgID key
	for _, e := range l.entries {
		out = append(out, e.Clone())
	}
	sortEntries(out)
	return out
}

// ForReceiver returns the determinants recording deliveries at process p
// with RSN strictly greater than after, in ascending RSN order: the replay
// schedule a recovering process must re-consume (paper §2.1).
func (l *Log) ForReceiver(p ids.ProcID, after ids.RSN) []Determinant {
	var out []Determinant
	//rollvet:allow maporder -- the sort below totally orders by RSN, which is unique per receiver
	for id := range l.byRecv[p] {
		if e := l.entries[id]; e.Det.RSN > after {
			out = append(out, e.Det)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RSN < out[j].RSN })
	return out
}

// AllForReceivers returns every entry recording a delivery at one of the
// given processes, in deterministic order. Scoped depinfo replies (fanout
// mode) use it so a live process ships only the determinants the recovering
// set can actually need, instead of its whole log.
func (l *Log) AllForReceivers(procs []ids.ProcID) []Entry {
	var out []Entry
	for _, p := range procs {
		//rollvet:allow maporder -- sortEntries below totally orders by the unique MsgID key
		for id := range l.byRecv[p] {
			out = append(out, l.entries[id].Clone())
		}
	}
	sortEntries(out)
	return out
}

// GCReceiver drops determinants for deliveries at p with RSN <= upTo: once
// p has checkpointed past a delivery it can never be asked to replay it.
// It returns the number of entries discarded.
func (l *Log) GCReceiver(p ids.ProcID, upTo ids.RSN) int {
	n := 0
	//rollvet:allow maporder -- deletes the value-independent subset (receiver, RSN <= upTo); commutative
	for id := range l.byRecv[p] {
		if e := l.entries[id]; e.Det.RSN <= upTo {
			delete(l.entries, id)
			delete(l.byRecv[p], id)
			// Journal the removal so ScanStabilized consumers observe it.
			l.mark(id)
			n++
		}
	}
	return n
}

// MergeEntries records a batch, stopping at the first conflict.
func (l *Log) MergeEntries(entries []Entry) error {
	for _, e := range entries {
		if err := l.Record(e); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns a deep copy of the log, used when checkpoint contents
// must be captured at an instant.
func (l *Log) Snapshot() []Entry { return l.All() }

func sortEntries(s []Entry) {
	sort.Slice(s, func(i, j int) bool { return s[i].Det.Msg.Less(s[j].Det.Msg) })
}
