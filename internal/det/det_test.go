package det

import (
	"testing"
	"testing/quick"

	"rollrec/internal/bitset"
	"rollrec/internal/ids"
)

func entry(sender ids.ProcID, ssn ids.SSN, recv ids.ProcID, rsn ids.RSN, holders ...int) Entry {
	return Entry{
		Det:     Determinant{Msg: ids.MsgID{Sender: sender, SSN: ssn}, Receiver: recv, RSN: rsn},
		Holders: bitset.FromSlice(holders),
	}
}

func TestHolderIndex(t *testing.T) {
	const n = 4
	if got := HolderIndex(2, n); got != 2 {
		t.Fatalf("HolderIndex(2) = %d", got)
	}
	if got := HolderIndex(ids.StorageProc, n); got != n {
		t.Fatalf("HolderIndex(storage) = %d, want %d", got, n)
	}
	if got := HolderIndex(9, n); got != -1 {
		t.Fatalf("HolderIndex(out of range) = %d, want -1", got)
	}
	if got := HolderIndex(ids.Nobody, n); got != -1 {
		t.Fatalf("HolderIndex(nobody) = %d, want -1", got)
	}
}

func TestStableRule(t *testing.T) {
	cfg := Config{N: 4, F: 2}
	h := bitset.FromSlice([]int{0, 1})
	if cfg.Stable(h) {
		t.Fatal("2 holders must not be stable for f=2")
	}
	h.Add(3)
	if !cfg.Stable(h) {
		t.Fatal("3 holders must be stable for f=2")
	}
}

func TestStableRuleManetho(t *testing.T) {
	cfg := Config{N: 4, F: 4}
	if !cfg.Manetho() {
		t.Fatal("f=n must select Manetho mode")
	}
	h := bitset.FromSlice([]int{0, 1, 2, 3})
	if cfg.Stable(h) {
		t.Fatal("all volatile holders are not enough in f=n mode")
	}
	h.Add(4) // storage slot
	if !cfg.Stable(h) {
		t.Fatal("storage holder must make the determinant stable in f=n mode")
	}
}

func TestRecordAndMergeHolders(t *testing.T) {
	l := NewLog(Config{N: 4, F: 2})
	if err := l.Record(entry(0, 1, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(entry(0, 1, 1, 1, 2)); err != nil {
		t.Fatal(err)
	}
	e, ok := l.Lookup(ids.MsgID{Sender: 0, SSN: 1})
	if !ok {
		t.Fatal("determinant missing after Record")
	}
	if !e.Holders.Contains(1) || !e.Holders.Contains(2) {
		t.Fatalf("holders not merged: %v", e.Holders)
	}
}

func TestRecordConflict(t *testing.T) {
	l := NewLog(Config{N: 4, F: 2})
	if err := l.Record(entry(0, 1, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(entry(0, 1, 1, 2, 1)); err == nil {
		t.Fatal("conflicting RSN for the same message must be rejected")
	}
	if err := l.Record(entry(0, 1, 2, 1, 1)); err == nil {
		t.Fatal("conflicting receiver for the same message must be rejected")
	}
}

func TestPendingExcludesStable(t *testing.T) {
	l := NewLog(Config{N: 4, F: 1})
	if err := l.Record(entry(0, 1, 1, 1, 1)); err != nil { // 1 holder: pending
		t.Fatal(err)
	}
	if err := l.Record(entry(0, 2, 1, 2, 1, 2)); err != nil { // 2 holders: stable at f=1
		t.Fatal(err)
	}
	p := l.Pending()
	if len(p) != 1 || p[0].Det.Msg.SSN != 1 {
		t.Fatalf("Pending = %v, want just ssn 1", p)
	}
}

func TestPendingDeterministicOrder(t *testing.T) {
	l := NewLog(Config{N: 4, F: 3})
	_ = l.Record(entry(2, 5, 1, 1, 1))
	_ = l.Record(entry(0, 9, 1, 2, 1))
	_ = l.Record(entry(0, 3, 1, 3, 1))
	p := l.Pending()
	for i := 1; i < len(p); i++ {
		if !p[i-1].Det.Msg.Less(p[i].Det.Msg) {
			t.Fatalf("Pending not sorted: %v", p)
		}
	}
}

func TestForReceiverOrdersByRSN(t *testing.T) {
	l := NewLog(Config{N: 4, F: 2})
	_ = l.Record(entry(0, 3, 2, 7, 0))
	_ = l.Record(entry(1, 1, 2, 5, 0))
	_ = l.Record(entry(0, 1, 2, 6, 0))
	_ = l.Record(entry(0, 2, 3, 1, 0)) // other receiver
	ds := l.ForReceiver(2, 5)
	if len(ds) != 2 {
		t.Fatalf("ForReceiver returned %d determinants, want 2 (after rsn 5)", len(ds))
	}
	if ds[0].RSN != 6 || ds[1].RSN != 7 {
		t.Fatalf("ForReceiver order wrong: %v", ds)
	}
}

func TestGCReceiver(t *testing.T) {
	l := NewLog(Config{N: 4, F: 2})
	_ = l.Record(entry(0, 1, 2, 1, 0))
	_ = l.Record(entry(0, 2, 2, 2, 0))
	_ = l.Record(entry(0, 3, 3, 2, 0))
	if n := l.GCReceiver(2, 1); n != 1 {
		t.Fatalf("GCReceiver dropped %d, want 1", n)
	}
	if _, ok := l.Lookup(ids.MsgID{Sender: 0, SSN: 1}); ok {
		t.Fatal("GC'd determinant still present")
	}
	if _, ok := l.Lookup(ids.MsgID{Sender: 0, SSN: 2}); !ok {
		t.Fatal("determinant past the watermark must survive")
	}
	if _, ok := l.Lookup(ids.MsgID{Sender: 0, SSN: 3}); !ok {
		t.Fatal("other receiver's determinant must survive")
	}
}

func TestPendingForStorage(t *testing.T) {
	l := NewLog(Config{N: 2, F: 2})
	_ = l.Record(entry(0, 1, 1, 1, 0, 1)) // volatile only
	_ = l.Record(entry(0, 2, 1, 2, 0, 2)) // slot 2 == storage for N=2
	p := l.PendingForStorage()
	if len(p) != 1 || p[0].Det.Msg.SSN != 1 {
		t.Fatalf("PendingForStorage = %v", p)
	}
}

// TestQuickMergeIsIdempotentAndMonotone checks that recording the same
// entries repeatedly, in any order, yields the same log: the leader may
// aggregate overlapping depinfo replies from many processes.
func TestQuickMergeIsIdempotentAndMonotone(t *testing.T) {
	f := func(perm []uint8, holdersRaw []uint8) bool {
		cfg := Config{N: 8, F: 2}
		base := make([]Entry, 8)
		for i := range base {
			h := []int{i % 8}
			if len(holdersRaw) > 0 {
				h = append(h, int(holdersRaw[i%len(holdersRaw)])%8)
			}
			base[i] = entry(ids.ProcID(i%4), ids.SSN(i), ids.ProcID((i+1)%4), ids.RSN(i+1), h...)
		}
		l1 := NewLog(cfg)
		l2 := NewLog(cfg)
		if err := l1.MergeEntries(base); err != nil {
			return false
		}
		// Apply to l2 in a permuted order, twice.
		for round := 0; round < 2; round++ {
			for _, p := range perm {
				if err := l2.Record(base[int(p)%len(base)]); err != nil {
					return false
				}
			}
		}
		if err := l2.MergeEntries(base); err != nil {
			return false
		}
		a, b := l1.All(), l2.All()
		if len(b) > len(a) {
			return false
		}
		// Every entry l2 has must match l1's determinant exactly.
		for i := range b {
			found := false
			for j := range a {
				if a[j].Det == b[i].Det {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	l := NewLog(Config{N: 4, F: 2})
	_ = l.Record(entry(0, 1, 1, 1, 0))
	snap := l.Snapshot()
	snap[0].Holders.Add(3)
	e, _ := l.Lookup(ids.MsgID{Sender: 0, SSN: 1})
	if e.Holders.Contains(3) {
		t.Fatal("Snapshot must not alias the log's holder sets")
	}
}
