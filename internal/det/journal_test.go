package det

import (
	"testing"
	"testing/quick"

	"rollrec/internal/ids"
)

func TestScanPendingModified(t *testing.T) {
	l := NewLog(Config{N: 4, F: 2})
	cur := l.Cursor()
	if cur != 0 {
		t.Fatalf("fresh log cursor = %d", cur)
	}
	_ = l.Record(entry(0, 1, 1, 1, 1))
	_ = l.Record(entry(0, 2, 1, 2, 1))

	var seen []ids.SSN
	cur = l.ScanPendingModified(cur, func(e Entry) { seen = append(seen, e.Det.Msg.SSN) })
	if len(seen) != 2 {
		t.Fatalf("first scan saw %d entries, want 2", len(seen))
	}
	// Nothing changed: a re-scan from the new cursor sees nothing.
	seen = nil
	cur = l.ScanPendingModified(cur, func(e Entry) { seen = append(seen, e.Det.Msg.SSN) })
	if len(seen) != 0 {
		t.Fatalf("idle re-scan saw %v", seen)
	}
	// A holder change re-surfaces exactly that entry.
	l.AddHolder(ids.MsgID{Sender: 0, SSN: 1}, 2)
	seen = nil
	cur = l.ScanPendingModified(cur, func(e Entry) { seen = append(seen, e.Det.Msg.SSN) })
	if len(seen) != 1 || seen[0] != 1 {
		t.Fatalf("post-change scan saw %v, want [1]", seen)
	}
	// Redundant AddHolder must not mark.
	before := l.Cursor()
	l.AddHolder(ids.MsgID{Sender: 0, SSN: 1}, 2)
	if l.Cursor() != before {
		t.Fatal("no-op AddHolder must not grow the journal")
	}
}

func TestScanSkipsStableAndGCed(t *testing.T) {
	l := NewLog(Config{N: 4, F: 1}) // stable at 2 holders
	_ = l.Record(entry(0, 1, 1, 1, 1, 2))
	_ = l.Record(entry(0, 2, 1, 2, 1))
	_ = l.Record(entry(0, 3, 2, 9, 1))
	l.GCReceiver(2, 9) // removes the third
	var seen []ids.SSN
	l.ScanPendingModified(0, func(e Entry) { seen = append(seen, e.Det.Msg.SSN) })
	if len(seen) != 1 || seen[0] != 2 {
		t.Fatalf("scan = %v, want only the pending non-GC'd entry [2]", seen)
	}
}

func TestScanDeduplicatesWithinWindow(t *testing.T) {
	l := NewLog(Config{N: 4, F: 3})
	_ = l.Record(entry(0, 1, 1, 1, 1))
	l.AddHolder(ids.MsgID{Sender: 0, SSN: 1}, 2)
	l.AddHolder(ids.MsgID{Sender: 0, SSN: 1}, 3)
	count := 0
	l.ScanPendingModified(0, func(Entry) { count++ })
	if count != 1 {
		t.Fatalf("scan visited the same entry %d times", count)
	}
}

func TestCompact(t *testing.T) {
	l := NewLog(Config{N: 4, F: 2})
	for i := 0; i < 10; i++ {
		_ = l.Record(entry(0, ids.SSN(i), 1, ids.RSN(i+1), 1))
	}
	mid := 5
	l.Compact(mid)
	// A cursor below the compaction floor is clamped, not an error.
	count := 0
	l.ScanPendingModified(0, func(Entry) { count++ })
	if count != 5 {
		t.Fatalf("post-compact scan from 0 saw %d, want the 5 surviving marks", count)
	}
	// Compacting beyond the journal end is a no-op clamp.
	l.Compact(10_000)
	count = 0
	l.ScanPendingModified(0, func(Entry) { count++ })
	if count != 0 {
		t.Fatalf("fully compacted journal still yields %d entries", count)
	}
	// Entries themselves survive compaction (only the journal shrinks).
	if l.Len() != 10 {
		t.Fatalf("Len = %d after compaction, want 10", l.Len())
	}
}

// TestQuickScanEquivalentToPending: scanning from zero must visit exactly
// the pending set (the journal is an index, not a different truth).
func TestQuickScanEquivalentToPending(t *testing.T) {
	f := func(ops []uint16) bool {
		l := NewLog(Config{N: 8, F: 2})
		for _, op := range ops {
			s := ids.ProcID(op % 4)
			ssn := ids.SSN(op % 16)
			switch (op / 16) % 3 {
			case 0:
				_ = l.Record(entry(s, ssn, ids.ProcID((op+1)%4), ids.RSN(ssn+1), int(op%8)))
			case 1:
				l.AddHolder(ids.MsgID{Sender: s, SSN: ssn}, ids.ProcID(op%8))
			case 2:
				l.GCReceiver(ids.ProcID((op+1)%4), ids.RSN(op%8))
			}
		}
		want := map[ids.MsgID]bool{}
		for _, e := range l.Pending() {
			want[e.Det.Msg] = true
		}
		got := map[ids.MsgID]bool{}
		l.ScanPendingModified(0, func(e Entry) { got[e.Det.Msg] = true })
		if len(got) != len(want) {
			return false
		}
		for id := range want {
			if !got[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
