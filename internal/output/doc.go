// Package output is the output-commit subsystem: it tracks externally-
// visible output from the moment an application requests its release
// (workload.Ctx.Output) to the moment the hosting protocol's commit rule
// is satisfied and the output may actually leave the system.
//
// The paper's thesis — stable-storage latency, not message counts,
// dominates rollback-recovery cost — is ultimately about this commit
// point: output can only be released once its causal past is guaranteed
// recoverable. Each protocol style has its own rule (DESIGN §10): FBL
// commits when every determinant of an antecedent delivery is replicated
// on f+1 hosts or stable; coordinated checkpointing commits when the
// output is covered by a committed snapshot epoch; optimistic logging
// commits when every causally-preceding state interval is logged stable.
//
// The Ledger is the harness-side half: protocols call Requested at
// Output() time and Committed (or CommitUpTo) when their rule fires; the
// ledger keeps the request→commit virtual-time deltas, feeds them into
// the per-process metrics histogram and the causal trace (one
// EvOutputCommit span per output), and exposes deterministic readouts
// for the experiment tables and bench cells: totals and open counts,
// per-process backlogs and oldest-open ages (the timeline gauges),
// commit-latency deltas, and Straddling — the outputs whose request/commit
// interval spans a given instant, the population D11 and D12 interrogate
// after a crash.
//
// Under the open-loop traffic engine (internal/traffic, DESIGN §12) the
// ledger carries per-tier meaning: a backend record opens when a shard is
// applied, but a client-tier record opens only when the reply reaches the
// head of the client's admission queue and is released to the user. A
// crashed backend therefore shows up in client records as a release
// *stall* — a gap in RequestedAt — rather than as late commits; see
// traffic.StatsPerTier and experiment D12.
//
// A Ledger serves one run and is not safe for concurrent use: the
// simulator is single-threaded, and that is the only runtime wired to
// it today.
package output
