package output

import (
	"fmt"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/trace"
)

// Record is the ledger's view of one output. Seq is 1-based and dense
// per process: after a rollback a process re-executes and re-requests
// the same sequence numbers, which lets the ledger identify "the same
// output, requested again" without the protocols exchanging identity.
type Record struct {
	Proc        ids.ProcID
	Seq         uint64
	RequestedAt int64 // virtual ns of the first request (survives rollback)
	CommittedAt int64 // virtual ns of commit; 0 while open
	Size        int   // payload bytes at the most recent request
	Hash        uint64
}

// Committed reports whether the output has been released.
func (r Record) Committed() bool { return r.CommittedAt != 0 }

// Latency returns the request→commit delta, or 0 while open.
func (r Record) Latency() time.Duration {
	if r.CommittedAt == 0 {
		return 0
	}
	return time.Duration(r.CommittedAt - r.RequestedAt)
}

// Sink is the narrow interface the protocols hold (fbl/coord/optimistic
// Params carry one; nil disables output tracking entirely).
type Sink interface {
	// Requested records that proc asked to release its seq-th output now.
	// It returns false when that output already committed — the request is
	// a rollback re-execution of released output and the protocol should
	// not track it again. Re-requesting an open output keeps the original
	// RequestedAt, so crash-straddling outputs measure the full
	// first-request→post-recovery-commit latency.
	Requested(proc ids.ProcID, seq uint64, now int64, payload []byte) bool
	// Committed marks proc's seq-th output as released. Idempotent.
	Committed(proc ids.ProcID, seq uint64, now int64)
	// CommitUpTo commits every open output of proc with Seq <= seq, e.g.
	// when a restored checkpoint or snapshot is known to cover them.
	CommitUpTo(proc ids.ProcID, seq uint64, now int64)
}

// Ledger implements Sink and the readout side. The zero value is not
// usable; construct with NewLedger.
type Ledger struct {
	recs       [][]Record // indexed [proc][seq-1]
	tr         trace.Tracer
	metrics    func(ids.ProcID) *metrics.Proc
	onConflict func(proc ids.ProcID, seq uint64, oldHash, newHash uint64)
	open       int
	total      int
}

var _ Sink = (*Ledger)(nil)

// NewLedger returns a ledger for a run with n application processes.
func NewLedger(n int) *Ledger {
	return &Ledger{recs: make([][]Record, n), tr: trace.Nop{}}
}

// SetTracer routes one EvOutputCommit span per committed output to t.
func (l *Ledger) SetTracer(t trace.Tracer) { l.tr = trace.OrNop(t) }

// SetMetrics wires the per-process histogram sink; f is typically
// (*sim.Kernel).Metrics. A nil f disables histogram recording.
func (l *Ledger) SetMetrics(f func(ids.ProcID) *metrics.Proc) { l.metrics = f }

// SetOnConflict installs a probe that fires when a rollback re-execution
// re-requests an already-committed output with *different* content — the
// externally-visible inconsistency every output-commit rule exists to
// prevent (the original bytes already left the system). The explorer checks
// this invariant on every branch; a same-content re-request (deterministic
// re-execution of released output) does not fire.
func (l *Ledger) SetOnConflict(fn func(proc ids.ProcID, seq uint64, oldHash, newHash uint64)) {
	l.onConflict = fn
}

func (l *Ledger) procRecs(proc ids.ProcID) []Record {
	if int(proc) >= len(l.recs) {
		panic(fmt.Sprintf("output: proc %d outside ledger of %d", proc, len(l.recs)))
	}
	return l.recs[proc]
}

// Requested implements Sink.
//
//rollvet:hotpath
func (l *Ledger) Requested(proc ids.ProcID, seq uint64, now int64, payload []byte) bool {
	rs := l.procRecs(proc)
	if seq == 0 || seq > uint64(len(rs))+1 {
		panic(fmt.Sprintf("output: proc %d requested seq %d with %d recorded", proc, seq, len(rs)))
	}
	if seq == uint64(len(rs))+1 {
		//rollvet:allow hotalloc -- per-process record growth is amortized append-only history
		l.recs[proc] = append(rs, Record{
			Proc: proc, Seq: seq, RequestedAt: now,
			Size: len(payload), Hash: hash(payload),
		})
		l.open++
		l.total++
		return true
	}
	r := &rs[seq-1]
	if r.Committed() {
		if l.onConflict != nil && r.Hash != hash(payload) {
			l.onConflict(proc, seq, r.Hash, hash(payload))
		}
		return false // rollback re-execution of already-released output
	}
	// Re-request of an open output: a rollback may re-execute it with
	// different content (the original was never released, so that is
	// legal); track what will actually leave, keep the first timestamp.
	r.Size = len(payload)
	r.Hash = hash(payload)
	return true
}

// Committed implements Sink.
//
//rollvet:hotpath
func (l *Ledger) Committed(proc ids.ProcID, seq uint64, now int64) {
	rs := l.procRecs(proc)
	if seq == 0 || seq > uint64(len(rs)) {
		panic(fmt.Sprintf("output: proc %d committed unknown seq %d", proc, seq))
	}
	r := &rs[seq-1]
	if r.Committed() {
		return
	}
	r.CommittedAt = now
	l.open--
	l.tr.Span(r.RequestedAt, now-r.RequestedAt, int32(proc), trace.EvOutputCommit, trace.Tag{Arg: int64(seq)})
	if l.metrics != nil {
		l.metrics(proc).OutputCommit(time.Duration(now - r.RequestedAt))
	}
}

// CommitUpTo implements Sink.
//
//rollvet:hotpath
func (l *Ledger) CommitUpTo(proc ids.ProcID, seq uint64, now int64) {
	rs := l.procRecs(proc)
	if seq > uint64(len(rs)) {
		seq = uint64(len(rs))
	}
	for s := uint64(1); s <= seq; s++ {
		if !rs[s-1].Committed() {
			l.Committed(proc, s, now)
		}
	}
}

// Total returns the number of distinct outputs requested.
func (l *Ledger) Total() int { return l.total }

// Open returns the number of outputs requested but not yet committed.
func (l *Ledger) Open() int { return l.open }

// OpenOf returns proc's requested-but-uncommitted output count: the
// per-process output-commit backlog the timeline sampler reads.
//
//rollvet:hotpath
func (l *Ledger) OpenOf(proc ids.ProcID) int {
	n := 0
	for _, r := range l.procRecs(proc) {
		if !r.Committed() {
			n++
		}
	}
	return n
}

// OldestOpenOf returns the RequestedAt instant of proc's oldest still-open
// output, or 0 when none are open. The timeline sampler turns it into the
// backlog-age series: commit rules release outputs roughly in request
// order, so this age sits near the steady-state commit latency while the
// rule can fire and climbs linearly from the moment a failure freezes it.
//
//rollvet:hotpath
func (l *Ledger) OldestOpenOf(proc ids.ProcID) int64 {
	for _, r := range l.procRecs(proc) {
		if !r.Committed() {
			return r.RequestedAt
		}
	}
	return 0
}

// Records returns a copy of every record, proc-ascending then
// seq-ascending — a deterministic order for tables and tests.
func (l *Ledger) Records() []Record {
	out := make([]Record, 0, l.total)
	for _, rs := range l.recs {
		out = append(out, rs...)
	}
	return out
}

// Deltas returns the request→commit latencies of all committed outputs
// in the same deterministic order as Records.
func (l *Ledger) Deltas() []time.Duration {
	out := make([]time.Duration, 0, l.total-l.open)
	for _, rs := range l.recs {
		for _, r := range rs {
			if r.Committed() {
				out = append(out, r.Latency())
			}
		}
	}
	return out
}

// Straddling returns the records requested strictly before at (a crash
// instant) that had not committed by then — the outputs whose release
// the failure delays until recovery.
func (l *Ledger) Straddling(at int64) []Record {
	var out []Record
	for _, rs := range l.recs {
		for _, r := range rs {
			if r.RequestedAt < at && (r.CommittedAt == 0 || r.CommittedAt >= at) {
				out = append(out, r)
			}
		}
	}
	return out
}

// hash is FNV-1a over the payload; it fingerprints content without
// retaining it.
func hash(p []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range p {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h
}
