package output

import (
	"testing"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/trace"
)

func TestLedgerLifecycle(t *testing.T) {
	l := NewLedger(2)
	if !l.Requested(0, 1, 100, []byte("a")) {
		t.Fatal("fresh request rejected")
	}
	if !l.Requested(0, 2, 200, []byte("b")) {
		t.Fatal("second request rejected")
	}
	if l.Total() != 2 || l.Open() != 2 {
		t.Fatalf("total=%d open=%d", l.Total(), l.Open())
	}
	l.Committed(0, 1, 150)
	l.Committed(0, 1, 999) // idempotent: must not move the commit point
	if l.Open() != 1 {
		t.Fatalf("open=%d after one commit", l.Open())
	}
	recs := l.Records()
	if recs[0].Latency() != 50 || recs[0].CommittedAt != 150 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Committed() {
		t.Fatalf("record 1 committed early: %+v", recs[1])
	}
	if ds := l.Deltas(); len(ds) != 1 || ds[0] != 50*time.Nanosecond {
		t.Fatalf("deltas = %v", ds)
	}
}

func TestLedgerRollbackReRequest(t *testing.T) {
	l := NewLedger(1)
	l.Requested(0, 1, 100, []byte("a"))
	l.Requested(0, 2, 200, []byte("b"))
	l.Committed(0, 1, 150)

	// A rollback re-executes both outputs. Seq 1 already committed: the
	// re-request must be refused so the protocol drops it. Seq 2 is open:
	// the re-request may carry different content but keeps the original
	// request time, so the measured latency spans the crash.
	if l.Requested(0, 1, 1000, []byte("a")) {
		t.Fatal("re-request of committed output accepted")
	}
	if !l.Requested(0, 2, 1000, []byte("b'")) {
		t.Fatal("re-request of open output rejected")
	}
	r := l.Records()[1]
	if r.RequestedAt != 200 {
		t.Fatalf("re-request moved RequestedAt to %d", r.RequestedAt)
	}
	if r.Hash == hash([]byte("b")) {
		t.Fatal("re-request did not track the re-executed content")
	}
	l.Committed(0, 2, 1200)
	if lat := l.Records()[1].Latency(); lat != 1000 {
		t.Fatalf("straddle latency = %d, want 1000", lat)
	}
}

func TestLedgerCommitUpTo(t *testing.T) {
	l := NewLedger(1)
	for s := uint64(1); s <= 4; s++ {
		l.Requested(0, s, int64(s*10), nil)
	}
	l.Committed(0, 2, 25)
	l.CommitUpTo(0, 3, 500)
	if l.Open() != 1 {
		t.Fatalf("open=%d after CommitUpTo(3)", l.Open())
	}
	recs := l.Records()
	if recs[0].CommittedAt != 500 || recs[1].CommittedAt != 25 || recs[2].CommittedAt != 500 {
		t.Fatalf("commit points %d/%d/%d", recs[0].CommittedAt, recs[1].CommittedAt, recs[2].CommittedAt)
	}
	// Beyond the recorded range is clamped, not a panic.
	l.CommitUpTo(0, 99, 600)
	if l.Open() != 0 {
		t.Fatalf("open=%d after clamped CommitUpTo", l.Open())
	}
}

func TestLedgerStraddling(t *testing.T) {
	l := NewLedger(1)
	l.Requested(0, 1, 100, nil)
	l.Requested(0, 2, 200, nil)
	l.Requested(0, 3, 900, nil)
	l.Committed(0, 1, 300) // committed before the crash: not a straddler
	const crash = 500
	l.Committed(0, 2, 800) // requested before, committed after: straddler
	got := l.Straddling(crash)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("straddling = %+v", got)
	}
}

func TestLedgerTraceAndMetrics(t *testing.T) {
	l := NewLedger(3)
	rec := trace.NewRecorder(16)
	l.SetTracer(rec)
	procs := map[ids.ProcID]*metrics.Proc{2: metrics.NewProc()}
	l.SetMetrics(func(id ids.ProcID) *metrics.Proc { return procs[id] })

	l.Requested(2, 1, 1000, []byte("out"))
	l.Committed(2, 1, 4000)

	evs := rec.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d trace events", len(evs))
	}
	e := evs[0]
	if e.Name != trace.EvOutputCommit || !e.Span || e.TS != 1000 || e.Dur != 3000 || e.Proc != 2 || e.Tag.Arg != 1 {
		t.Fatalf("span = %+v", e)
	}
	if procs[2].OutputHist.Count() != 1 || procs[2].OutputHist.Total() != 3000*time.Nanosecond {
		t.Fatalf("histogram count=%d total=%v", procs[2].OutputHist.Count(), procs[2].OutputHist.Total())
	}
}

func TestLedgerPanicsOnProtocolBugs(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	l := NewLedger(1)
	mustPanic("sparse seq", func() { l.Requested(0, 3, 0, nil) })
	mustPanic("zero seq", func() { l.Requested(0, 0, 0, nil) })
	mustPanic("unknown commit", func() { l.Committed(0, 1, 0) })
	mustPanic("proc out of range", func() { l.Requested(5, 1, 0, nil) })
}

// TestCommitAllocs gates the hot path alongside the kernel AllocsPerRun
// gates in CI: committing an already-requested output must not allocate
// (it runs from the per-delivery protocol path).
func TestCommitAllocs(t *testing.T) {
	l := NewLedger(1)
	m := metrics.NewProc()
	l.SetMetrics(func(ids.ProcID) *metrics.Proc { return m })
	const n = 1000
	for s := uint64(1); s <= n; s++ {
		l.Requested(0, s, int64(s), nil)
	}
	seq := uint64(0)
	avg := testing.AllocsPerRun(n-1, func() {
		seq++
		l.Committed(0, seq, int64(seq)+5)
	})
	if avg != 0 {
		t.Fatalf("Committed allocates %.1f per op", avg)
	}
}
