// Package sim is a deterministic discrete-event simulator that executes
// node.Process instances in virtual time.
//
// Every run with the same configuration and seed produces the identical
// event sequence, which is what makes the failure-injection experiments and
// the golden-run consistency checks possible. The kernel owns the clock,
// the event queue, the network model, and per-node state (stable storage
// survives crashes; the process image does not).
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/netmodel"
	"rollrec/internal/node"
	"rollrec/internal/storage"
	"rollrec/internal/trace"
	"rollrec/internal/wire"
)

// Config parameterizes a simulation.
type Config struct {
	// Seed drives every random stream in the simulation.
	Seed int64
	// HW is the hardware cost model.
	HW node.Hardware
	// Trace, if non-nil, receives human-readable event lines.
	Trace io.Writer
	// Tracer, if non-nil, records structured events and spans (crash /
	// restart, frame traffic, storage accesses) for timeline export. Nil
	// disables tracing at no measurable cost.
	Tracer trace.Tracer
	// MaxEvents bounds the total number of processed events as a runaway
	// guard; zero selects a generous default.
	MaxEvents int64
}

const defaultMaxEvents = 200_000_000

// event is one scheduled callback; seq breaks ties deterministically.
type event struct {
	at  int64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is the simulation instance. It is not safe for concurrent use:
// construct, add nodes, then drive it from a single goroutine.
type Kernel struct {
	cfg    Config
	tr     trace.Tracer
	now    int64
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	net    *netmodel.Network
	nodes  map[ids.ProcID]*nodeState
	order  []ids.ProcID // insertion order, for deterministic boot
	nApp   int
	count  int64
}

// New returns a kernel with no nodes.
func New(cfg Config) *Kernel {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = defaultMaxEvents
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Kernel{
		cfg:   cfg,
		tr:    trace.OrNop(cfg.Tracer),
		rng:   rng,
		net:   netmodel.New(cfg.HW.Net, rand.New(rand.NewSource(cfg.Seed+1))),
		nodes: make(map[ids.ProcID]*nodeState),
	}
}

// AddNode registers a process slot. Application processes must be added
// with ids 0..n-1; the stable-storage pseudo-process uses ids.StorageProc.
func (k *Kernel) AddNode(id ids.ProcID, factory node.Factory) {
	if _, dup := k.nodes[id]; dup {
		panic(fmt.Sprintf("sim: duplicate node %v", id))
	}
	ns := &nodeState{
		k:       k,
		id:      id,
		factory: factory,
		stable:  storage.NewStore(),
		rng:     rand.New(rand.NewSource(k.cfg.Seed ^ (int64(id)+2)*0x9E3779B97F4A7C)),
		met:     metrics.NewProc(),
	}
	k.nodes[id] = ns
	k.order = append(k.order, id)
	if !id.IsStorage() {
		k.nApp++
	}
}

// Boot starts every registered node with restart = false, in registration
// order.
func (k *Kernel) Boot() {
	for _, id := range k.order {
		ns := k.nodes[id]
		ns.up = true
		ns.proc = ns.factory()
		ns.proc.Boot(ns, false)
	}
}

// Now returns the current virtual time in nanoseconds.
func (k *Kernel) Now() int64 { return k.now }

// Net exposes the network model for partition injection and counters.
func (k *Kernel) Net() *netmodel.Network { return k.net }

// Metrics returns the accumulator of the given node.
func (k *Kernel) Metrics(id ids.ProcID) *metrics.Proc { return k.nodes[id].met }

// Store returns the crash-surviving stable store of the given node.
func (k *Kernel) Store(id ids.ProcID) *storage.Store { return k.nodes[id].stable }

// ProcOf returns the current process instance of the node (nil while down);
// tests use it for white-box inspection between Run calls.
func (k *Kernel) ProcOf(id ids.ProcID) node.Process {
	if ns := k.nodes[id]; ns != nil {
		return ns.proc
	}
	return nil
}

// Up reports whether the node currently has a live process image.
func (k *Kernel) Up(id ids.ProcID) bool {
	ns := k.nodes[id]
	return ns != nil && ns.up
}

// At schedules a harness callback at absolute virtual time d from start.
func (k *Kernel) At(d time.Duration, fn func()) {
	at := int64(d)
	if at < k.now {
		at = k.now
	}
	k.schedule(at, fn)
}

func (k *Kernel) schedule(at int64, fn func()) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	heap.Push(&k.events, &event{at: at, seq: k.seq, fn: fn})
}

// Run processes events until virtual time `until` (from simulation start);
// the clock then reads exactly `until`. It returns the number of events
// processed by this call.
func (k *Kernel) Run(until time.Duration) int64 {
	n, _ := k.RunContext(context.Background(), until)
	return n
}

// cancelCheckEvery is how many events the kernel processes between context
// checks. Cancellation is a wall-clock concern; checking it per batch keeps
// the virtual-time hot loop free of atomic loads while still bounding the
// latency of a Ctrl-C or deadline to a few thousand events.
const cancelCheckEvery = 4096

// RunContext is Run with cooperative cancellation: it stops early (without
// disturbing the event queue) when ctx is done and returns ctx's error.
// A cancelled run leaves the kernel in a consistent but incomplete state;
// resuming with a later RunContext call continues deterministically, so
// cancellation never changes the event sequence of the events that do run.
func (k *Kernel) RunContext(ctx context.Context, until time.Duration) (int64, error) {
	limit := int64(until)
	var processed int64
	for len(k.events) > 0 {
		if processed%cancelCheckEvery == 0 {
			select {
			case <-ctx.Done():
				return processed, ctx.Err()
			default:
			}
		}
		next := k.events[0]
		if next.at > limit {
			break
		}
		heap.Pop(&k.events)
		if next.at > k.now {
			k.now = next.at
		}
		next.fn()
		processed++
		k.count++
		if k.count > k.cfg.MaxEvents {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v (runaway schedule?)",
				k.cfg.MaxEvents, time.Duration(k.now)))
		}
	}
	if limit > k.now {
		k.now = limit
	}
	return processed, nil
}

// Crash kills node id immediately: the process image, its timers, and its
// pending callbacks vanish; stable storage survives. A watchdog restart is
// scheduled automatically after WatchdogDetect + RestartDelay.
func (k *Kernel) Crash(id ids.ProcID) {
	ns := k.nodes[id]
	if ns == nil || !ns.up {
		return
	}
	if id.IsStorage() {
		panic("sim: the stable-storage pseudo-process never fails (paper §3.3)")
	}
	k.tracef("%v CRASH", id)
	k.tr.Instant(k.now, int32(id), trace.EvCrash, trace.Tag{})
	ns.downSpan = k.tr.Begin(k.now, int32(id), trace.EvDown, trace.Tag{})
	ns.up = false
	ns.epoch++
	ns.proc = nil
	ns.busyUntil = 0
	ns.met.BlockEnd(k.now) // a dead process is not "blocked"
	ns.met.Recoveries = append(ns.met.Recoveries, metrics.RecoveryTrace{CrashedAt: k.now})
	restartAt := k.now + int64(k.cfg.HW.WatchdogDetect) + int64(k.cfg.HW.RestartDelay)
	k.schedule(restartAt, func() { k.restart(ns) })
}

// CrashAt schedules a crash of id at virtual time d from start.
func (k *Kernel) CrashAt(d time.Duration, id ids.ProcID) {
	k.At(d, func() { k.Crash(id) })
}

func (k *Kernel) restart(ns *nodeState) {
	if ns.up {
		return
	}
	k.tracef("%v RESTART", ns.id)
	k.tr.End(ns.downSpan, k.now)
	ns.downSpan = 0
	k.tr.Instant(k.now, int32(ns.id), trace.EvRestart, trace.Tag{})
	ns.up = true
	ns.proc = ns.factory()
	if tr := ns.met.CurrentRecovery(); tr != nil && tr.RestartedAt == 0 {
		tr.RestartedAt = k.now
	}
	ns.proc.Boot(ns, true)
}

func (k *Kernel) tracef(format string, args ...any) {
	if k.cfg.Trace != nil {
		fmt.Fprintf(k.cfg.Trace, "[%12s] ", time.Duration(k.now))
		fmt.Fprintf(k.cfg.Trace, format, args...)
		fmt.Fprintln(k.cfg.Trace)
	}
}

// nodeState implements node.Env for one node.
type nodeState struct {
	k         *Kernel
	id        ids.ProcID
	factory   node.Factory
	proc      node.Process
	up        bool
	epoch     uint64
	busyUntil int64
	stable    *storage.Store
	rng       *rand.Rand
	met       *metrics.Proc
	downSpan  trace.SpanRef // open crash→restart span
}

var _ node.Env = (*nodeState)(nil)

func (ns *nodeState) ID() ids.ProcID         { return ns.id }
func (ns *nodeState) N() int                 { return ns.k.nApp }
func (ns *nodeState) Now() int64             { return ns.k.now }
func (ns *nodeState) Rand() *rand.Rand       { return ns.rng }
func (ns *nodeState) Metrics() *metrics.Proc { return ns.met }
func (ns *nodeState) Tracer() trace.Tracer   { return ns.k.tr }

func (ns *nodeState) Logf(format string, args ...any) {
	if ns.k.cfg.Trace != nil {
		ns.k.tracef("%v: %s", ns.id, fmt.Sprintf(format, args...))
	}
}

// Busy charges CPU time: deliveries and timers that arrive while the
// process is busy are deferred until it is free.
func (ns *nodeState) Busy(d time.Duration) {
	start := ns.k.now
	if ns.busyUntil > start {
		start = ns.busyUntil
	}
	ns.busyUntil = start + int64(d)
}

func (ns *nodeState) Send(to ids.ProcID, e *wire.Envelope) {
	if !ns.up {
		return
	}
	if to == ns.id {
		panic(fmt.Sprintf("sim: %v sent to itself", ns.id))
	}
	e.From = ns.id
	frame := wire.Encode(e)
	ns.Busy(ns.k.cfg.HW.SendCost(len(frame)))
	ns.met.Sent(uint8(e.Kind), len(frame))
	ns.k.tr.Instant(ns.k.now, int32(ns.id), trace.EvSend,
		trace.Tag{Kind: uint8(e.Kind), Arg: int64(len(frame))})
	at, ok := ns.k.net.Schedule(ns.k.now, ns.id, to, len(frame))
	if !ok {
		return
	}
	k := ns.k
	sentAt := k.now
	k.schedule(at, func() { k.deliverFrame(to, frame, sentAt) })
}

// deliverFrame is the network-side arrival of an encoded frame sent at
// virtual time sentAt.
func (k *Kernel) deliverFrame(to ids.ProcID, frame []byte, sentAt int64) {
	ns := k.nodes[to]
	if ns == nil {
		return
	}
	if !ns.up {
		ns.met.Dropped++
		return
	}
	ns.met.DeliveryHist.Record(time.Duration(k.now - sentAt))
	ns.exec(ns.epoch, func() {
		e, err := wire.Decode(frame)
		if err != nil {
			panic(fmt.Sprintf("sim: undecodable frame for %v: %v", to, err))
		}
		ns.Busy(k.cfg.HW.SendCost(len(frame)))
		ns.met.Received(uint8(e.Kind), len(frame))
		k.tracef("%v <- %v %v", to, e.From, e.Kind)
		k.tr.Instant(k.now, int32(to), trace.EvRecv,
			trace.Tag{Kind: uint8(e.Kind), Arg: int64(len(frame))})
		ns.proc.Deliver(e)
	})
}

// exec runs fn when the process is free, dropping it if the process
// instance it belongs to has since crashed.
func (ns *nodeState) exec(epoch uint64, fn func()) {
	if ns.epoch != epoch || !ns.up {
		return
	}
	if ns.busyUntil > ns.k.now {
		resume := ns.busyUntil
		ns.k.schedule(resume, func() { ns.exec(epoch, fn) })
		return
	}
	fn()
}

type simTimer struct{ stopped bool }

func (t *simTimer) Stop() { t.stopped = true }

func (ns *nodeState) After(d time.Duration, fn func()) node.Timer {
	t := &simTimer{}
	epoch := ns.epoch
	ns.k.schedule(ns.k.now+int64(d), func() {
		if t.stopped {
			return
		}
		ns.exec(epoch, fn)
	})
	return t
}

func (ns *nodeState) ReadStable(key string, cb func(data []byte, ok bool)) {
	data, ok := ns.stable.Get(key)
	dur := ns.k.cfg.HW.Disk.ReadTime(len(data))
	ns.met.StorageOp(false, len(data), dur)
	ns.k.tr.Span(ns.k.now, int64(dur), int32(ns.id), trace.EvStorageRead,
		trace.Tag{Arg: int64(len(data))})
	epoch := ns.epoch
	ns.k.schedule(ns.k.now+int64(dur), func() {
		ns.exec(epoch, func() { cb(data, ok) })
	})
}

func (ns *nodeState) WriteStable(key string, data []byte, cb func()) {
	cp := append([]byte(nil), data...)
	dur := ns.k.cfg.HW.Disk.WriteTime(len(cp))
	ns.met.StorageOp(true, len(cp), dur)
	ns.k.tr.Span(ns.k.now, int64(dur), int32(ns.id), trace.EvStorageWrite,
		trace.Tag{Arg: int64(len(cp))})
	epoch := ns.epoch
	ns.k.schedule(ns.k.now+int64(dur), func() {
		// Durability happens at completion: a crash while the write is in
		// flight loses it, like a disk without a committed block.
		if ns.epoch != epoch {
			return
		}
		ns.stable.Put(key, cp)
		ns.exec(epoch, func() {
			if cb != nil {
				cb()
			}
		})
	})
}
