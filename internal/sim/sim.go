// Package sim is a deterministic discrete-event simulator that executes
// node.Process instances in virtual time.
//
// Every run with the same configuration and seed produces the identical
// event sequence, which is what makes the failure-injection experiments and
// the golden-run consistency checks possible. The kernel owns the clock,
// the event queue, the network model, and per-node state (stable storage
// survives crashes; the process image does not).
//
// The scheduler is built for throughput: events live in a flat slot arena
// ([]event) recycled through a free list, ordered by an index-based 4-ary
// min-heap, so the schedule/deliver hot path is allocation-free in steady
// state (no per-event heap allocation, no interface boxing — see
// bench_test.go for the container/heap baseline it replaced). The hottest
// event kinds (network arrival, deferred delivery, deferred execution) are
// encoded as typed slot fields instead of closures. Timers support real
// cancellation: Stop removes the event from the heap and recycles its slot
// immediately, while the deadline is credited to the processed-event
// accounting so Run totals — and therefore BENCH snapshot cells — are
// bit-identical to a scheduler without cancellation.
package sim

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/netmodel"
	"rollrec/internal/node"
	"rollrec/internal/storage"
	"rollrec/internal/trace"
	"rollrec/internal/wire"
)

// Config parameterizes a simulation.
type Config struct {
	// Seed drives every random stream in the simulation.
	Seed int64
	// HW is the hardware cost model.
	HW node.Hardware
	// Trace, if non-nil, receives human-readable event lines.
	Trace io.Writer
	// Tracer, if non-nil, records structured events and spans (crash /
	// restart, frame traffic, storage accesses) for timeline export. Nil
	// disables tracing at no measurable cost.
	Tracer trace.Tracer
	// MaxEvents bounds the total number of processed events as a runaway
	// guard; zero selects a generous default.
	MaxEvents int64
	// FIFODefer selects the FIFO busy-deferral queue: frames and callbacks
	// that find the receiver busy join a per-node queue drained one item per
	// wake event, instead of being re-pushed into the heap at busyUntil.
	// Re-pushing is quadratic in the number of simultaneously deferred
	// items (each pop re-pushes while the backlog drains), which dominates
	// event counts at n=1024; the FIFO queue is linear. The deferral
	// *ordering* differs from the classic re-push scheduler, so the flag is
	// opt-in: the small-n golden traces pin the classic order.
	FIFODefer bool
}

const defaultMaxEvents = 200_000_000

// Event kinds. evFunc is the generic closure event (harness callbacks,
// crash restarts, storage completions); the message hot path uses typed
// kinds so scheduling a delivery allocates nothing.
const (
	// evFunc runs fn.
	evFunc uint8 = iota
	// evExec runs ns.exec(epoch, fn): timer fires and deferred callbacks.
	evExec
	// evArrive is a frame reaching its destination's network interface
	// (ns may be nil for frames addressed to an unregistered node).
	evArrive
	// evDeliver is a frame whose delivery was deferred because the
	// receiver was busy; epoch-guarded like exec.
	evDeliver
	// evWake drains one item from a node's FIFO deferral queue
	// (Config.FIFODefer); epoch-guarded like exec.
	evWake
)

// event is one scheduled callback slot; seq breaks ties deterministically.
// Slots are pooled: while queued, pos is the index in Kernel.heap; while
// free, nextFree links the free list and gen has been bumped so stale
// timer handles can detect reuse. Pointers into the arena go stale the
// moment a slot is released or the backing array grows — copy the slot out
// by value (as RunContext does) before any call that can touch the arena.
//
//rollvet:pooled
type event struct {
	at     int64
	seq    uint64
	gen    uint64 // bumped on release; validates simTimer handles
	epoch  uint64 // owning process incarnation (evExec, evDeliver)
	ns     *nodeState
	fn     func()
	frame  []byte
	sentAt int64 // virtual send time (evArrive)
	pos    int32 // heap index while queued
	next   int32 // free-list link while free
	kind   uint8
}

// credit records the deadline of a cancelled event. Cancelled timers are
// removed from the heap at Stop time (releasing the slot and the callback),
// but their would-have-popped deadline still counts toward Run's processed
// totals — so event accounting, MaxEvents, and BENCH sim_events stay
// bit-identical whether or not a workload cancels timers.
type credit struct {
	at  int64
	seq uint64
}

// Kernel is the simulation instance. It is not safe for concurrent use:
// construct, add nodes, then drive it from a single goroutine.
type Kernel struct {
	cfg       Config
	tr        trace.Tracer
	now       int64
	seq       uint64
	slots     []event  // event arena; index = slot id
	heap      []int32  // 4-ary min-heap of slot ids ordered by (at, seq)
	free      int32    // free-list head into slots, -1 when empty
	cancelled []credit // binary min-heap of cancelled deadlines
	rng       *rand.Rand
	net       *netmodel.Network
	nodes     map[ids.ProcID]*nodeState
	order     []ids.ProcID // insertion order, for deterministic boot
	nApp      int
	count     int64
	inflight  int // frames scheduled to arrive but not yet popped

	// Sampler hook: fired from inside the run loop at exact virtual-time
	// boundaries without enqueueing events, so attaching a sampler consumes
	// no sequence numbers, draws no randomness, and changes no event counts
	// — the golden trace hash is identical with or without it.
	samplerEvery int64
	samplerNext  int64
	samplerFn    func(now int64)

	// Sharded-mode hooks (see shard.go). arrivalSink, when non-nil,
	// intercepts every scheduled arrival instead of enqueueing it locally:
	// the coordinator buffers it and injects it into the owning shard at the
	// next window boundary. nOverride makes nodeState.N() report the full
	// cluster size when this kernel owns only a shard of it.
	arrivalSink func(at int64, from, to ids.ProcID, frame []byte, sentAt int64)
	nOverride   int

	// Step-boundary hook (see step.go). dispatched counts events dispatched
	// so far; the boundary before dispatch i is step index i. Like the
	// sampler, the probe consumes no sequence numbers and no randomness, so
	// an attached probe leaves the event sequence bit-identical. stepCrash
	// maps step indices to crash victims injected at that boundary;
	// crashApplied counts the crashes that actually took effect (the victim
	// was up), which is what liveness checks must compare recoveries against
	// when a schedule may re-crash an already-down process.
	dispatched   int64
	stepFn       StepFunc
	stepCrash    map[int64][]ids.ProcID
	crashApplied int
}

// New returns a kernel with no nodes.
func New(cfg Config) *Kernel {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = defaultMaxEvents
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Kernel{
		cfg:   cfg,
		tr:    trace.OrNop(cfg.Tracer),
		free:  -1,
		rng:   rng,
		net:   netmodel.New(cfg.HW.Net, rand.New(rand.NewSource(cfg.Seed+1))),
		nodes: make(map[ids.ProcID]*nodeState),
	}
}

// AddNode registers a process slot. Application processes must be added
// with ids 0..n-1; the stable-storage pseudo-process uses ids.StorageProc.
func (k *Kernel) AddNode(id ids.ProcID, factory node.Factory) {
	if _, dup := k.nodes[id]; dup {
		panic(fmt.Sprintf("sim: duplicate node %v", id))
	}
	ns := &nodeState{
		k:       k,
		id:      id,
		factory: factory,
		stable:  storage.NewStore(),
		rng:     rand.New(rand.NewSource(k.cfg.Seed ^ (int64(id)+2)*0x9E3779B97F4A7C)),
		met:     metrics.NewProc(),
	}
	k.nodes[id] = ns
	k.order = append(k.order, id)
	if !id.IsStorage() {
		k.nApp++
	}
}

// Boot starts every registered node with restart = false, in registration
// order.
func (k *Kernel) Boot() {
	for _, id := range k.order {
		ns := k.nodes[id]
		ns.up = true
		ns.proc = ns.factory()
		ns.proc.Boot(ns, false)
	}
}

// Now returns the current virtual time in nanoseconds.
func (k *Kernel) Now() int64 { return k.now }

// QueueDepth returns the number of events currently queued (timer credits
// excluded — a cancelled timer holds no queue space).
func (k *Kernel) QueueDepth() int { return len(k.heap) }

// InFlightFrames returns the number of frames scheduled on the network but
// not yet arrived.
func (k *Kernel) InFlightFrames() int { return k.inflight }

// SetSampler installs fn to be invoked at every multiple of `every` in
// virtual time, from inside the run loop. The contract that keeps sampling
// observation-only: a sample at boundary b runs after every event with
// at < b and before any event with at >= b, fn must not schedule events or
// touch kernel state, and the boundary clock persists across Run calls.
// Because no event is enqueued, the event sequence, the processed-event
// totals, and the golden trace hash are bit-identical with sampling on or
// off. A nil fn detaches the sampler.
func (k *Kernel) SetSampler(every time.Duration, fn func(now int64)) {
	if fn == nil {
		k.samplerFn = nil
		return
	}
	if every <= 0 {
		panic(fmt.Sprintf("sim: SetSampler(%v): non-positive sampling interval", every))
	}
	k.samplerEvery = int64(every)
	k.samplerNext = (k.now/k.samplerEvery + 1) * k.samplerEvery
	k.samplerFn = fn
}

// fireSampler invokes the sampler at every pending boundary <= upto.
func (k *Kernel) fireSampler(upto int64) {
	for k.samplerFn != nil && k.samplerNext <= upto {
		k.samplerFn(k.samplerNext)
		k.samplerNext += k.samplerEvery
	}
}

// Net exposes the network model for partition injection and counters.
func (k *Kernel) Net() *netmodel.Network { return k.net }

// peekNextAt reports the virtual time of the earliest queued event, if any.
// The sharded coordinator uses it to fast-forward over empty windows;
// cancelled-timer credits are ignored (nothing executes at a credit, and
// RunContext accounts for every credit inside the window it runs).
func (k *Kernel) peekNextAt() (int64, bool) {
	if len(k.heap) == 0 {
		return 0, false
	}
	return k.slots[k.heap[0]].at, true
}

// node returns the state of id, panicking on unknown ids: asking for the
// metrics or storage of a node that was never added is a harness bug, and
// a named panic beats the anonymous nil dereference it used to be.
func (k *Kernel) node(id ids.ProcID) *nodeState {
	ns := k.nodes[id]
	if ns == nil {
		panic(fmt.Sprintf("sim: unknown node %v (was it registered with AddNode?)", id))
	}
	return ns
}

// Metrics returns the accumulator of the given node; it panics on unknown
// ids (use Up/ProcOf for nil-safe liveness queries).
func (k *Kernel) Metrics(id ids.ProcID) *metrics.Proc { return k.node(id).met }

// Store returns the crash-surviving stable store of the given node; it
// panics on unknown ids (use Up/ProcOf for nil-safe liveness queries).
func (k *Kernel) Store(id ids.ProcID) *storage.Store { return k.node(id).stable }

// ProcOf returns the current process instance of the node (nil while down
// or for ids never registered); tests use it for white-box inspection
// between Run calls.
func (k *Kernel) ProcOf(id ids.ProcID) node.Process {
	if ns := k.nodes[id]; ns != nil {
		return ns.proc
	}
	return nil
}

// Up reports whether the node currently has a live process image (false
// for ids never registered).
func (k *Kernel) Up(id ids.ProcID) bool {
	ns := k.nodes[id]
	return ns != nil && ns.up
}

// At schedules a harness callback at absolute virtual time d from start.
// Negative times are harness typos and panic; past times (≥ 0 but before
// the clock) are clamped to "now" by schedule, the single clamp point.
func (k *Kernel) At(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: At(%v): negative schedule time", d))
	}
	k.schedule(int64(d), fn)
}

// ── Slot arena and 4-ary heap ──────────────────────────────────────────
//
// The heap orders slot indices by (at, seq); seq is unique, so the order
// is total and pop order is independent of heap arity or layout — the
// property the golden trace-hash test pins.

// alloc returns a free slot index, growing the arena only when the free
// list is empty.
func (k *Kernel) alloc() int32 {
	if i := k.free; i >= 0 {
		k.free = k.slots[i].next
		return i
	}
	//rollvet:allow hotalloc -- arena growth is amortized and bounded by peak queue depth; the AllocsPerRun gate measures the steady state
	k.slots = append(k.slots, event{})
	return int32(len(k.slots) - 1)
}

// release recycles a slot: bump gen (invalidating timer handles), drop
// references so the GC can reclaim callbacks and frames, and push the slot
// onto the free list.
func (k *Kernel) release(i int32) {
	s := &k.slots[i]
	s.gen++
	s.ns = nil
	s.fn = nil
	s.frame = nil
	s.pos = -1
	s.next = k.free
	k.free = i
}

// newEvent allocates a slot stamped with the clamped time and the next
// sequence number. The caller fills the payload and calls push.
func (k *Kernel) newEvent(at int64) int32 {
	if at < k.now {
		at = k.now
	}
	k.seq++
	i := k.alloc()
	s := &k.slots[i]
	s.at = at
	s.seq = k.seq
	return i
}

func (k *Kernel) less(a, b int32) bool {
	ea, eb := &k.slots[a], &k.slots[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (k *Kernel) heapSwap(i, j int) {
	k.heap[i], k.heap[j] = k.heap[j], k.heap[i]
	k.slots[k.heap[i]].pos = int32(i)
	k.slots[k.heap[j]].pos = int32(j)
}

func (k *Kernel) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 4
		if !k.less(k.heap[i], k.heap[p]) {
			return
		}
		k.heapSwap(i, p)
		i = p
	}
}

func (k *Kernel) siftDown(i int) {
	n := len(k.heap)
	for {
		best := i
		first := 4*i + 1
		if first >= n {
			return
		}
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if k.less(k.heap[c], k.heap[best]) {
				best = c
			}
		}
		if best == i {
			return
		}
		k.heapSwap(i, best)
		i = best
	}
}

// push enqueues a filled slot.
func (k *Kernel) push(i int32) {
	k.slots[i].pos = int32(len(k.heap))
	//rollvet:allow hotalloc -- heap growth is amortized and bounded by peak queue depth; steady state reuses the backing array
	k.heap = append(k.heap, i)
	k.siftUp(len(k.heap) - 1)
}

// popTop removes the minimum slot index from the heap (the slot itself is
// released by the caller once its payload has been copied out).
func (k *Kernel) popTop() {
	last := len(k.heap) - 1
	k.heap[0] = k.heap[last]
	k.slots[k.heap[0]].pos = 0
	k.heap = k.heap[:last]
	if last > 0 {
		k.siftDown(0)
	}
}

// remove deletes the heap entry at position pos (timer cancellation).
func (k *Kernel) remove(pos int32) {
	last := len(k.heap) - 1
	if int(pos) != last {
		k.heap[pos] = k.heap[last]
		k.slots[k.heap[pos]].pos = pos
	}
	k.heap = k.heap[:last]
	if int(pos) < last {
		k.siftDown(int(pos))
		k.siftUp(int(pos))
	}
}

// ── Cancelled-deadline credits ─────────────────────────────────────────

// pushCredit records a cancelled event's deadline (binary min-heap by
// (at, seq)).
func (k *Kernel) pushCredit(c credit) {
	//rollvet:allow hotalloc -- credit-heap growth is amortized and bounded by the number of simultaneously cancelled timers
	k.cancelled = append(k.cancelled, c)
	i := len(k.cancelled) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !creditLess(k.cancelled[i], k.cancelled[p]) {
			break
		}
		k.cancelled[i], k.cancelled[p] = k.cancelled[p], k.cancelled[i]
		i = p
	}
}

func (k *Kernel) popCredit() {
	last := len(k.cancelled) - 1
	k.cancelled[0] = k.cancelled[last]
	k.cancelled = k.cancelled[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && creditLess(k.cancelled[l], k.cancelled[best]) {
			best = l
		}
		if r < last && creditLess(k.cancelled[r], k.cancelled[best]) {
			best = r
		}
		if best == i {
			return
		}
		k.cancelled[i], k.cancelled[best] = k.cancelled[best], k.cancelled[i]
		i = best
	}
}

func creditLess(a, b credit) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// ── Scheduling ─────────────────────────────────────────────────────────

// schedule enqueues a generic callback; past times clamp to "now" (the
// only clamp point — At and the typed schedulers all funnel through
// newEvent).
//
//rollvet:hotpath
func (k *Kernel) schedule(at int64, fn func()) {
	i := k.newEvent(at)
	s := &k.slots[i]
	s.kind = evFunc
	s.fn = fn
	k.push(i)
}

// scheduleExec enqueues an epoch-guarded callback on ns (timer fires and
// busy-deferred callbacks) without allocating a wrapper closure.
//
//rollvet:hotpath
func (k *Kernel) scheduleExec(at int64, ns *nodeState, epoch uint64, fn func()) int32 {
	i := k.newEvent(at)
	s := &k.slots[i]
	s.kind = evExec
	s.ns = ns
	s.epoch = epoch
	s.fn = fn
	k.push(i)
	return i
}

// scheduleArrive enqueues a frame arrival (ns nil for unregistered
// destinations, preserved so the event count matches the send schedule).
//
//rollvet:hotpath
func (k *Kernel) scheduleArrive(at int64, ns *nodeState, frame []byte, sentAt int64) {
	i := k.newEvent(at)
	s := &k.slots[i]
	s.kind = evArrive
	s.ns = ns
	s.frame = frame
	s.sentAt = sentAt
	k.inflight++
	k.push(i)
}

// scheduleDeliver enqueues a busy-deferred delivery.
//
//rollvet:hotpath
func (k *Kernel) scheduleDeliver(at int64, ns *nodeState, frame []byte, epoch uint64) {
	i := k.newEvent(at)
	s := &k.slots[i]
	s.kind = evDeliver
	s.ns = ns
	s.frame = frame
	s.epoch = epoch
	k.push(i)
}

// Run processes events until virtual time `until` (from simulation start);
// the clock then reads exactly `until`. It returns the number of events
// processed by this call.
func (k *Kernel) Run(until time.Duration) int64 {
	n, _ := k.RunContext(context.Background(), until)
	return n
}

// cancelCheckEvery is how many events the kernel processes between context
// checks. Cancellation is a wall-clock concern; checking it per batch keeps
// the virtual-time hot loop free of atomic loads while still bounding the
// latency of a Ctrl-C or deadline to a few thousand events.
const cancelCheckEvery = 4096

// RunContext is Run with cooperative cancellation: it stops early (without
// disturbing the event queue) when ctx is done and returns ctx's error.
// A cancelled run leaves the kernel in a consistent but incomplete state;
// resuming with a later RunContext call continues deterministically, so
// cancellation never changes the event sequence of the events that do run.
func (k *Kernel) RunContext(ctx context.Context, until time.Duration) (int64, error) {
	limit := int64(until)
	var processed int64
	for len(k.heap) > 0 {
		if processed%cancelCheckEvery == 0 {
			select {
			case <-ctx.Done():
				return processed, ctx.Err()
			default:
			}
		}
		top := k.heap[0]
		at, seq := k.slots[top].at, k.slots[top].seq
		// Credit cancelled deadlines that would have popped before this
		// event, keeping processed-event totals identical to a scheduler
		// that leaves cancelled timers queued until their deadline.
		for len(k.cancelled) > 0 && k.cancelled[0].at <= limit &&
			creditLess(k.cancelled[0], credit{at: at, seq: seq}) {
			k.popCredit()
			processed++
			k.countEvent()
		}
		if at > limit {
			break
		}
		// Sample boundaries up to and including this event's time, before it
		// dispatches: a tick at boundary b observes the state produced by
		// all events with at < b and none with at >= b.
		k.fireSampler(at)
		e := k.slots[top] // copy out: dispatch may grow or recycle the arena
		k.popTop()
		k.release(top)
		if e.at > k.now {
			k.now = e.at
		}
		// Step boundary (see step.go): the probe observes the event about to
		// dispatch, and step-indexed crashes land here — after the slot is
		// off the heap (an injected crash schedules a restart event, which
		// must not displace the pending heap top) and before the dispatch,
		// so a crash at step i interleaves exactly between events i-1 and i.
		// dispatched is bumped before the dispatch so Steps() read from
		// inside a handler or tracer callback names the boundary immediately
		// after the event being dispatched.
		if k.stepFn != nil || len(k.stepCrash) > 0 {
			k.stepBoundary(&e)
		}
		k.dispatched++
		switch e.kind {
		case evFunc:
			e.fn()
		case evExec:
			e.ns.exec(e.epoch, e.fn)
		case evArrive:
			k.inflight--
			if e.ns != nil {
				k.frameArrived(e.ns, e.frame, e.sentAt)
			}
		case evDeliver:
			k.deliver(e.ns, e.frame, e.epoch)
		case evWake:
			k.wake(e.ns, e.epoch)
		}
		processed++
		k.countEvent()
	}
	// Credit any cancelled deadlines inside the window beyond the last
	// queued event.
	for len(k.cancelled) > 0 && k.cancelled[0].at <= limit {
		k.popCredit()
		processed++
		k.countEvent()
	}
	// Fire the remaining boundaries between the last dispatched event and
	// the horizon: a run to `until` always yields floor(until/interval)
	// samples, quiescent tail included.
	k.fireSampler(limit)
	if limit > k.now {
		k.now = limit
	}
	return processed, nil
}

func (k *Kernel) countEvent() {
	k.count++
	if k.count > k.cfg.MaxEvents {
		panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v (runaway schedule?)",
			k.cfg.MaxEvents, time.Duration(k.now)))
	}
}

// Crash kills node id immediately: the process image, its timers, and its
// pending callbacks vanish; stable storage survives. A watchdog restart is
// scheduled automatically after WatchdogDetect + RestartDelay.
func (k *Kernel) Crash(id ids.ProcID) {
	ns := k.nodes[id]
	if ns == nil || !ns.up {
		return
	}
	if id.IsStorage() {
		panic("sim: the stable-storage pseudo-process never fails (paper §3.3)")
	}
	k.crashApplied++
	k.tracef("%v CRASH", id)
	k.tr.Instant(k.now, int32(id), trace.EvCrash, trace.Tag{})
	ns.downSpan = k.tr.Begin(k.now, int32(id), trace.EvDown, trace.Tag{})
	ns.up = false
	ns.epoch++
	ns.proc = nil
	ns.busyUntil = 0
	// The FIFO deferral queue is volatile process state; any armed wake
	// event is neutralized by the epoch bump.
	ns.defq = nil
	ns.defHead = 0
	ns.wakeArmed = false
	ns.met.BlockEnd(k.now) // a dead process is not "blocked"
	ns.met.Recoveries = append(ns.met.Recoveries, metrics.RecoveryTrace{CrashedAt: k.now})
	restartAt := k.now + int64(k.cfg.HW.WatchdogDetect) + int64(k.cfg.HW.RestartDelay)
	k.schedule(restartAt, func() { k.restart(ns) })
}

// CrashAt schedules a crash of id at virtual time d from start.
func (k *Kernel) CrashAt(d time.Duration, id ids.ProcID) {
	k.At(d, func() { k.Crash(id) })
}

func (k *Kernel) restart(ns *nodeState) {
	if ns.up {
		return
	}
	k.tracef("%v RESTART", ns.id)
	k.tr.End(ns.downSpan, k.now)
	ns.downSpan = 0
	k.tr.Instant(k.now, int32(ns.id), trace.EvRestart, trace.Tag{})
	ns.up = true
	ns.proc = ns.factory()
	if tr := ns.met.CurrentRecovery(); tr != nil && tr.RestartedAt == 0 {
		tr.RestartedAt = k.now
	}
	ns.proc.Boot(ns, true)
}

func (k *Kernel) tracef(format string, args ...any) {
	if k.cfg.Trace != nil {
		fmt.Fprintf(k.cfg.Trace, "[%12s] ", time.Duration(k.now))
		fmt.Fprintf(k.cfg.Trace, format, args...)
		fmt.Fprintln(k.cfg.Trace)
	}
}

// defItem is one entry of the FIFO busy-deferral queue: either a deferred
// frame delivery (frame set) or a deferred callback (fn set).
type defItem struct {
	epoch uint64
	fn    func()
	frame []byte
}

// nodeState implements node.Env for one node.
type nodeState struct {
	k         *Kernel
	id        ids.ProcID
	factory   node.Factory
	proc      node.Process
	up        bool
	epoch     uint64
	busyUntil int64
	stable    *storage.Store
	rng       *rand.Rand
	met       *metrics.Proc
	downSpan  trace.SpanRef // open crash→restart span

	// FIFO busy-deferral queue (Config.FIFODefer); defHead indexes the next
	// item so draining is O(1) per item without reslicing the backing array
	// away from reuse.
	defq      []defItem
	defHead   int
	wakeArmed bool
}

var _ node.Env = (*nodeState)(nil)

func (ns *nodeState) ID() ids.ProcID { return ns.id }

// N reports the application cluster size: the nodes of this kernel, unless
// the kernel is one shard of a larger cluster (see Sharded), in which case
// the coordinator's override reports the full size.
func (ns *nodeState) N() int {
	if ns.k.nOverride > 0 {
		return ns.k.nOverride
	}
	return ns.k.nApp
}
func (ns *nodeState) Now() int64             { return ns.k.now }
func (ns *nodeState) Rand() *rand.Rand       { return ns.rng }
func (ns *nodeState) Metrics() *metrics.Proc { return ns.met }
func (ns *nodeState) Tracer() trace.Tracer   { return ns.k.tr }

func (ns *nodeState) Logf(format string, args ...any) {
	if ns.k.cfg.Trace != nil {
		ns.k.tracef("%v: %s", ns.id, fmt.Sprintf(format, args...))
	}
}

// Busy charges CPU time: deliveries and timers that arrive while the
// process is busy are deferred until it is free.
func (ns *nodeState) Busy(d time.Duration) {
	start := ns.k.now
	if ns.busyUntil > start {
		start = ns.busyUntil
	}
	ns.busyUntil = start + int64(d)
}

func (ns *nodeState) Send(to ids.ProcID, e *wire.Envelope) {
	if !ns.up {
		return
	}
	if to == ns.id {
		panic(fmt.Sprintf("sim: %v sent to itself", ns.id))
	}
	e.From = ns.id
	frame := wire.Encode(e)
	ns.Busy(ns.k.cfg.HW.SendCost(len(frame)))
	ns.met.Sent(uint8(e.Kind), len(frame))
	ns.k.tr.Instant(ns.k.now, int32(ns.id), trace.EvSend,
		trace.Tag{Kind: uint8(e.Kind), Arg: int64(len(frame))})
	at, ok := ns.k.net.Schedule(ns.k.now, ns.id, to, len(frame))
	if !ok {
		return
	}
	k := ns.k
	if k.arrivalSink != nil {
		// Sharded mode: every arrival — same-shard ones included, so the
		// destination's arrival sequence numbers are independent of the
		// partitioning — is buffered and injected at the window boundary.
		k.arrivalSink(at, ns.id, to, frame, k.now)
		return
	}
	k.scheduleArrive(at, k.nodes[to], frame, k.now)
}

// frameArrived is the network-side arrival of an encoded frame sent at
// virtual time sentAt.
func (k *Kernel) frameArrived(ns *nodeState, frame []byte, sentAt int64) {
	if !ns.up {
		ns.met.Dropped++
		return
	}
	ns.met.DeliveryHist.Record(time.Duration(k.now - sentAt))
	k.deliver(ns, frame, ns.epoch)
}

// deliver decodes and delivers a frame on the process's current epoch,
// deferring (via a typed, allocation-free event) while the receiver is
// busy — the same semantics exec gives callbacks, inlined to keep the
// message hot path free of closures.
func (k *Kernel) deliver(ns *nodeState, frame []byte, epoch uint64) {
	if ns.epoch != epoch || !ns.up {
		return
	}
	if ns.busyUntil > k.now {
		if k.cfg.FIFODefer {
			ns.deferItem(defItem{epoch: epoch, frame: frame})
		} else {
			k.scheduleDeliver(ns.busyUntil, ns, frame, epoch)
		}
		return
	}
	e, err := wire.Decode(frame)
	if err != nil {
		panic(fmt.Sprintf("sim: undecodable frame for %v: %v", ns.id, err))
	}
	ns.Busy(k.cfg.HW.RecvCost(len(frame)))
	ns.met.Received(uint8(e.Kind), len(frame))
	k.tracef("%v <- %v %v", ns.id, e.From, e.Kind)
	k.tr.Instant(k.now, int32(ns.id), trace.EvRecv,
		trace.Tag{Kind: uint8(e.Kind), Arg: int64(len(frame))})
	ns.proc.Deliver(e)
}

// exec runs fn when the process is free, dropping it if the process
// instance it belongs to has since crashed.
//
//rollvet:hotpath
func (ns *nodeState) exec(epoch uint64, fn func()) {
	if ns.epoch != epoch || !ns.up {
		return
	}
	if ns.busyUntil > ns.k.now {
		if ns.k.cfg.FIFODefer {
			ns.deferItem(defItem{epoch: epoch, fn: fn})
		} else {
			ns.k.scheduleExec(ns.busyUntil, ns, epoch, fn)
		}
		return
	}
	fn()
}

// deferItem appends to the FIFO deferral queue and makes sure a wake event
// is pending at the time the node becomes free.
func (ns *nodeState) deferItem(it defItem) {
	//rollvet:allow hotalloc -- queue growth is amortized and bounded by the peak deferred backlog; the drained queue's backing array is reused
	ns.defq = append(ns.defq, it)
	ns.armWake()
}

// armWake schedules the next FIFO drain at busyUntil, at most one pending
// wake per node.
func (ns *nodeState) armWake() {
	if ns.wakeArmed {
		return
	}
	ns.wakeArmed = true
	k := ns.k
	i := k.newEvent(ns.busyUntil)
	s := &k.slots[i]
	s.kind = evWake
	s.ns = ns
	s.epoch = ns.epoch
	k.push(i)
}

// wake drains exactly one FIFO-deferred item: processing it makes the node
// busy again, so the queue re-arms for the new busyUntil rather than
// burning through the backlog at one virtual instant. One item per event
// keeps deferral linear where the re-push scheduler is quadratic.
func (k *Kernel) wake(ns *nodeState, epoch uint64) {
	if ns.epoch != epoch || !ns.up {
		return
	}
	ns.wakeArmed = false
	if ns.defHead >= len(ns.defq) {
		ns.defq = ns.defq[:0]
		ns.defHead = 0
		return
	}
	if ns.busyUntil > k.now {
		// Something else (a direct exec at an earlier seq, say) consumed CPU
		// since this wake was armed; try again when the node is free.
		ns.armWake()
		return
	}
	it := ns.defq[ns.defHead]
	ns.defq[ns.defHead] = defItem{} // release the frame/closure for the GC
	ns.defHead++
	if ns.defHead == len(ns.defq) {
		ns.defq = ns.defq[:0]
		ns.defHead = 0
	}
	if it.fn != nil {
		ns.exec(it.epoch, it.fn)
	} else {
		k.deliver(ns, it.frame, it.epoch)
	}
	if len(ns.defq) > ns.defHead {
		ns.armWake()
	}
}

// simTimer is a cancellable handle onto a queued evExec slot. gen detects
// slot reuse: once the timer fires (or is stopped), the slot's generation
// moves on and the handle becomes inert.
type simTimer struct {
	k    *Kernel
	slot int32
	gen  uint64
}

// Stop cancels the timer if it has not fired: the event is removed from
// the heap and its slot recycled immediately (stopped timers hold no queue
// space), while the deadline is credited to the processed-event totals so
// event accounting matches a scheduler without cancellation. Safe to call
// repeatedly and after firing.
//
//rollvet:hotpath
func (t *simTimer) Stop() {
	s := &t.k.slots[t.slot]
	if s.gen != t.gen {
		return // already fired, stopped, or slot recycled
	}
	// Copy the slot coordinates out before touching the kernel: pushCredit
	// precedes the heap removal, and a pointer into the arena must not be
	// trusted across any call that can recycle or grow it.
	at, seq, pos := s.at, s.seq, s.pos
	t.k.pushCredit(credit{at: at, seq: seq})
	t.k.remove(pos)
	t.k.release(t.slot)
}

func (ns *nodeState) After(d time.Duration, fn func()) node.Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: %v: After(%v): negative timer duration", ns.id, d))
	}
	k := ns.k
	i := k.scheduleExec(k.now+int64(d), ns, ns.epoch, fn)
	return &simTimer{k: k, slot: i, gen: k.slots[i].gen}
}

func (ns *nodeState) ReadStable(key string, cb func(data []byte, ok bool)) {
	data, ok := ns.stable.Get(key)
	dur := ns.k.cfg.HW.Disk.ReadTime(len(data))
	ns.met.StorageOp(false, len(data), dur)
	ns.k.tr.Span(ns.k.now, int64(dur), int32(ns.id), trace.EvStorageRead,
		trace.Tag{Arg: int64(len(data))})
	ns.k.scheduleExec(ns.k.now+int64(dur), ns, ns.epoch, func() { cb(data, ok) })
}

func (ns *nodeState) WriteStable(key string, data []byte, cb func()) {
	cp := append([]byte(nil), data...)
	dur := ns.k.cfg.HW.Disk.WriteTime(len(cp))
	ns.met.StorageOp(true, len(cp), dur)
	ns.k.tr.Span(ns.k.now, int64(dur), int32(ns.id), trace.EvStorageWrite,
		trace.Tag{Arg: int64(len(cp))})
	epoch := ns.epoch
	ns.k.schedule(ns.k.now+int64(dur), func() {
		// Durability happens at completion: a crash while the write is in
		// flight loses it, like a disk without a committed block.
		if ns.epoch != epoch {
			return
		}
		ns.stable.Put(key, cp)
		ns.exec(epoch, func() {
			if cb != nil {
				cb()
			}
		})
	})
}
