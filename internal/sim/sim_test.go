package sim

import (
	"testing"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/wire"
)

// pingProc is a toy process: on boot, process 0 sends a ping to 1; every
// receiver bounces the payload back, counting rounds, until maxRounds.
type pingProc struct {
	env    node.Env
	rounds int
	max    int
	boots  int
	log    []string
}

func (p *pingProc) Boot(env node.Env, restart bool) {
	p.env = env
	p.boots++
	if env.ID() == 0 && !restart {
		env.Send(1, &wire.Envelope{Kind: wire.KindApp, FromInc: 1, SSN: 1, Payload: []byte("ping")})
	}
}

func (p *pingProc) Deliver(e *wire.Envelope) {
	p.rounds++
	if p.rounds >= p.max {
		return
	}
	p.env.Send(e.From, &wire.Envelope{Kind: wire.KindApp, FromInc: 1, SSN: e.SSN + 1, Payload: e.Payload})
}

func hwFast() node.Hardware {
	hw := node.Profile1995()
	hw.Net.Latency = time.Millisecond
	hw.Net.Bandwidth = 0
	hw.CPUMsgCost = 0
	hw.CPUByteCost = 0
	return hw
}

func newPingKernel(t *testing.T, maxRounds int) (*Kernel, map[ids.ProcID]*pingProc, map[ids.ProcID]int) {
	t.Helper()
	k := New(Config{Seed: 42, HW: hwFast()})
	procs := make(map[ids.ProcID]*pingProc)
	boots := make(map[ids.ProcID]int)
	for _, id := range []ids.ProcID{0, 1} {
		id := id
		k.AddNode(id, func() node.Process {
			p := &pingProc{max: maxRounds}
			procs[id] = p
			boots[id]++
			return p
		})
	}
	k.Boot()
	return k, procs, boots
}

func TestPingPongProgress(t *testing.T) {
	k, procs, _ := newPingKernel(t, 10)
	k.Run(100 * time.Millisecond)
	// max is per process: the bouncing stops once each side has delivered
	// its quota, so the total settles at 2*max - 1.
	total := procs[0].rounds + procs[1].rounds
	if total != 19 {
		t.Fatalf("total rounds = %d, want 19", total)
	}
	if k.Now() != int64(100*time.Millisecond) {
		t.Fatalf("clock = %d, want exactly the horizon", k.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		k, _, _ := newPingKernel(t, 50)
		k.Run(time.Second)
		return k.Metrics(0).MsgsSent[uint8(wire.KindApp)], k.Net().Bytes
	}
	m1, b1 := run()
	m2, b2 := run()
	if m1 != m2 || b1 != b2 {
		t.Fatalf("two identical runs diverged: (%d,%d) vs (%d,%d)", m1, b1, m2, b2)
	}
}

func TestLatencyIsCharged(t *testing.T) {
	k, procs, _ := newPingKernel(t, 3)
	// 3 rounds at 1 ms per hop: first delivery at 1 ms, second at 2 ms,
	// third at 3 ms.
	k.Run(2500 * time.Microsecond)
	if got := procs[0].rounds + procs[1].rounds; got != 2 {
		t.Fatalf("rounds at 2.5ms = %d, want 2", got)
	}
	k.Run(10 * time.Millisecond)
	if got := procs[0].rounds + procs[1].rounds; got != 5 {
		t.Fatalf("rounds at 10ms = %d, want 5 (2*max-1)", got)
	}
}

func TestCrashDropsInFlightAndRestarts(t *testing.T) {
	k, _, boots := newPingKernel(t, 1000)
	k.CrashAt(5500*time.Microsecond, 1)
	k.Run(5600 * time.Microsecond)
	if k.Up(1) {
		t.Fatal("node 1 must be down after crash")
	}
	if k.ProcOf(1) != nil {
		t.Fatal("crashed node must have no process instance")
	}
	// Frames sent to the dead node are dropped.
	k.Run(20 * time.Millisecond)
	if k.Metrics(1).Dropped == 0 {
		t.Fatal("frames to a dead node must be counted as dropped")
	}
	// Watchdog restart: 3s detect + 0.5s restart in the 1995 profile.
	k.Run(4 * time.Second)
	if !k.Up(1) {
		t.Fatal("node 1 must be restarted by the watchdog")
	}
	if boots[1] != 2 {
		t.Fatalf("boots = %d, want 2 (initial + restart)", boots[1])
	}
	tr := k.Metrics(1).CurrentRecovery()
	if tr == nil || tr.CrashedAt == 0 || tr.RestartedAt == 0 {
		t.Fatalf("recovery trace incomplete: %+v", tr)
	}
	if got := time.Duration(tr.RestartedAt - tr.CrashedAt); got != 3500*time.Millisecond {
		t.Fatalf("restart delay = %v, want 3.5s", got)
	}
}

func TestTimersDieWithCrash(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast()})
	fired := 0
	k.AddNode(0, func() node.Process { return &timerProc{fired: &fired} })
	k.Boot()
	k.CrashAt(time.Millisecond, 0)
	k.Run(10 * time.Second)
	// The boot-time timer (armed at t=0 for t=5ms) must not fire; the
	// restart instance arms a fresh one which must fire exactly once.
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1 (restart instance only)", fired)
	}
}

type timerProc struct {
	fired *int
}

func (p *timerProc) Boot(env node.Env, restart bool) {
	env.After(5*time.Millisecond, func() { *p.fired++ })
}
func (p *timerProc) Deliver(e *wire.Envelope) {}

func TestTimerStop(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast()})
	fired := false
	var tm node.Timer
	k.AddNode(0, func() node.Process {
		return bootFunc(func(env node.Env, _ bool) {
			tm = env.After(time.Millisecond, func() { fired = true })
		})
	})
	k.Boot()
	tm.Stop()
	k.Run(time.Second)
	if fired {
		t.Fatal("stopped timer must not fire")
	}
}

// bootFunc adapts a function to node.Process for tiny tests.
type bootFunc func(env node.Env, restart bool)

func (f bootFunc) Boot(env node.Env, restart bool) { f(env, restart) }
func (f bootFunc) Deliver(e *wire.Envelope)        {}

func TestStableStorageSurvivesCrash(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast()})
	var got []byte
	var gotOK bool
	boots := 0
	k.AddNode(0, func() node.Process {
		return bootFunc(func(env node.Env, restart bool) {
			boots++
			if !restart {
				env.WriteStable("cp", []byte("state-7"), nil)
			} else {
				env.ReadStable("cp", func(data []byte, ok bool) { got, gotOK = data, ok })
			}
		})
	})
	k.Boot()
	k.CrashAt(time.Second, 0)
	k.Run(10 * time.Second)
	if !gotOK || string(got) != "state-7" {
		t.Fatalf("restart read = %q, %v; want checkpoint to survive crash", got, gotOK)
	}
	if boots != 2 {
		t.Fatalf("boots = %d", boots)
	}
}

func TestWriteInFlightIsLostOnCrash(t *testing.T) {
	hw := hwFast()
	hw.Disk.Latency = 100 * time.Millisecond
	k := New(Config{Seed: 1, HW: hw})
	var found bool
	var checked bool
	k.AddNode(0, func() node.Process {
		return bootFunc(func(env node.Env, restart bool) {
			if !restart {
				env.WriteStable("cp", []byte("never-durable"), nil)
			} else {
				env.ReadStable("cp", func(_ []byte, ok bool) { found, checked = ok, true })
			}
		})
	})
	k.Boot()
	// Crash at 50ms: before the 100ms write latency elapses.
	k.CrashAt(50*time.Millisecond, 0)
	k.Run(20 * time.Second)
	if !checked {
		t.Fatal("restart never read storage")
	}
	if found {
		t.Fatal("a write still in flight at crash time must be lost")
	}
}

func TestStorageLatencyCharged(t *testing.T) {
	hw := hwFast()
	hw.Disk.Latency = 10 * time.Millisecond
	hw.Disk.ReadBandwidth = 1e6 // 1 MB/s
	k := New(Config{Seed: 1, HW: hw})
	var doneAt int64 = -1
	k.AddNode(0, func() node.Process {
		return bootFunc(func(env node.Env, _ bool) {
			env.WriteStable("k", make([]byte, 10_000), func() {
				env.ReadStable("k", func(_ []byte, _ bool) { doneAt = env.Now() })
			})
		})
	})
	k.Boot()
	k.Run(time.Second)
	// Write: 10ms latency (infinite write bw in hwFast? no: Disk1995 write bw
	// was overridden only partially) — just assert the read leg: >= write
	// completion + 10ms + 10ms transfer.
	if doneAt < int64(30*time.Millisecond) {
		t.Fatalf("storage ops completed too fast: %v", time.Duration(doneAt))
	}
	met := k.Metrics(0)
	if met.StorageWrites != 1 || met.StorageReads != 1 {
		t.Fatalf("storage op counters: %d writes %d reads", met.StorageWrites, met.StorageReads)
	}
}

func TestBusyDefersDelivery(t *testing.T) {
	hw := hwFast()
	k := New(Config{Seed: 1, HW: hw})
	var deliveredAt []int64
	k.AddNode(0, func() node.Process {
		return bootFunc(func(env node.Env, _ bool) {
			env.Send(1, &wire.Envelope{Kind: wire.KindApp, FromInc: 1, SSN: 1})
			env.Send(1, &wire.Envelope{Kind: wire.KindApp, FromInc: 1, SSN: 2})
		})
	})
	k.AddNode(1, func() node.Process {
		return &busyProc{at: &deliveredAt}
	})
	k.Boot()
	k.Run(time.Second)
	if len(deliveredAt) != 2 {
		t.Fatalf("delivered %d, want 2", len(deliveredAt))
	}
	// First delivery at 1ms charges 20ms of Busy; the second frame also
	// arrives ~1ms but must wait until the receiver is free.
	if got := time.Duration(deliveredAt[1] - deliveredAt[0]); got < 20*time.Millisecond {
		t.Fatalf("second delivery only %v after first; Busy must defer it", got)
	}
}

type busyProc struct {
	env node.Env
	at  *[]int64
}

func (p *busyProc) Boot(env node.Env, _ bool) { p.env = env }
func (p *busyProc) Deliver(e *wire.Envelope) {
	*p.at = append(*p.at, p.env.Now())
	p.env.Busy(20 * time.Millisecond)
}

func TestSelfSendPanics(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(0, func() node.Process {
		return bootFunc(func(env node.Env, _ bool) {
			defer func() {
				if recover() == nil {
					panic("expected panic on self-send")
				}
			}()
			env.Send(0, &wire.Envelope{Kind: wire.KindApp, FromInc: 1})
		})
	})
	k.Boot()
}

func TestCrashStorageNodePanics(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(ids.StorageProc, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	k.Boot()
	defer func() {
		if recover() == nil {
			t.Fatal("crashing the storage pseudo-process must panic")
		}
	}()
	k.Crash(ids.StorageProc)
}
