package sim

import (
	"testing"
	"time"

	"rollrec/internal/ids"
)

// foldStep accumulates a StepInfo stream into an FNV-style fingerprint.
func foldStep(h uint64, s StepInfo) uint64 {
	const prime = 1099511628211
	h = (h ^ uint64(s.Step)) * prime
	h = (h ^ uint64(s.At)) * prime
	h = (h ^ uint64(s.Kind)) * prime
	h = (h ^ uint64(uint32(s.Proc))) * prime
	return h
}

// TestStepProbeObservationOnly pins the probe contract: attaching a probe
// changes nothing about the run — same processed totals, same clock, same
// application progress — and the probe fires exactly once per dispatched
// event with a deterministic stream.
func TestStepProbeObservationOnly(t *testing.T) {
	bare := func() (int64, int64, int) {
		k, procs, _ := newPingKernel(t, 10)
		n := k.Run(100 * time.Millisecond)
		return n, k.Now(), procs[0].rounds + procs[1].rounds
	}
	probed := func() (int64, int64, int, int64, uint64) {
		k, procs, _ := newPingKernel(t, 10)
		var fires int64
		h := uint64(14695981039346656037)
		k.SetStepProbe(func(s StepInfo) {
			if s.Step != fires {
				t.Fatalf("probe step %d, want %d (one fire per dispatch, in order)", s.Step, fires)
			}
			fires++
			h = foldStep(h, s)
		})
		n := k.Run(100 * time.Millisecond)
		return n, k.Now(), procs[0].rounds + procs[1].rounds, fires, h
	}

	n0, now0, rounds0 := bare()
	n1, now1, rounds1, fires, h1 := probed()
	if n0 != n1 || now0 != now1 || rounds0 != rounds1 {
		t.Fatalf("probe perturbed the run: (%d,%d,%d) vs (%d,%d,%d)",
			n0, now0, rounds0, n1, now1, rounds1)
	}
	if fires != n1 {
		t.Fatalf("probe fired %d times, want one per dispatched event (%d)", fires, n1)
	}
	_, _, _, _, h2 := probed()
	if h1 != h2 {
		t.Fatalf("probe stream not deterministic: %#x vs %#x", h1, h2)
	}
}

// TestCrashAtStepDeterministic pins that step-indexed crashes produce the
// identical branch on every run, and that the victim restarts.
func TestCrashAtStepDeterministic(t *testing.T) {
	run := func() (uint64, int, int) {
		k, _, boots := newPingKernel(t, 1000)
		k.CrashAtStep(10, 1)
		h := uint64(14695981039346656037)
		k.SetStepProbe(func(s StepInfo) { h = foldStep(h, s) })
		k.Run(20 * time.Second)
		return h, k.CrashesApplied(), boots[1]
	}
	h1, applied1, boots1 := run()
	h2, applied2, boots2 := run()
	if h1 != h2 {
		t.Fatalf("step-crash branch not deterministic: %#x vs %#x", h1, h2)
	}
	if applied1 != 1 || applied2 != 1 {
		t.Fatalf("CrashesApplied = %d/%d, want 1", applied1, applied2)
	}
	if boots1 != 2 || boots2 != 2 {
		t.Fatalf("victim boots = %d/%d, want 2 (initial + watchdog restart)", boots1, boots2)
	}
}

// TestCrashAtStepLandsBeforeTheEvent verifies the interleaving contract: a
// crash registered at step s takes effect before event s dispatches, so the
// probe at step s already observes the victim down — the placement CrashAt
// cannot express (its crash event sorts after all same-time events).
func TestCrashAtStepLandsBeforeTheEvent(t *testing.T) {
	// First pass: find a mid-run arrival addressed to process 1.
	k0, _, _ := newPingKernel(t, 1000)
	target := int64(-1)
	k0.SetStepProbe(func(s StepInfo) {
		if target < 0 && s.Step > 5 && s.Kind == StepKindArrive && s.Proc == 1 {
			target = s.Step
		}
	})
	k0.Run(100 * time.Millisecond)
	if target < 0 {
		t.Fatal("no arrival for process 1 found")
	}

	k, _, _ := newPingKernel(t, 1000)
	k.CrashAtStep(target, 1)
	sawDown := false
	k.SetStepProbe(func(s StepInfo) {
		if s.Step == target {
			sawDown = !k.Up(1)
		}
	})
	k.Run(100 * time.Millisecond)
	if !sawDown {
		t.Fatalf("victim still up at its crash step %d", target)
	}
}

// TestCrashAtStepOnDownProcessIsNoop: re-crashing a victim that is still
// down applies nothing, and CrashesApplied reflects only effective crashes.
func TestCrashAtStepOnDownProcessIsNoop(t *testing.T) {
	k, _, boots := newPingKernel(t, 1000)
	k.CrashAtStep(10, 1)
	k.CrashAtStep(11, 1) // boundary 11 arrives long before the restart fires
	k.Run(20 * time.Second)
	if got := k.CrashesApplied(); got != 1 {
		t.Fatalf("CrashesApplied = %d, want 1 (second injection was a no-op)", got)
	}
	if boots[1] != 2 {
		t.Fatalf("victim boots = %d, want 2", boots[1])
	}
}

func TestCrashAtStepPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	k, _, _ := newPingKernel(t, 10)
	k.Run(10 * time.Millisecond)
	mustPanic("passed boundary", func() { k.CrashAtStep(0, 1) })
	mustPanic("storage proc", func() { k.CrashAtStep(k.Steps()+5, ids.StorageProc) })
}
