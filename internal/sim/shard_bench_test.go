package sim

import (
	"testing"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/wire"
)

// sendReceiveAllocsPerMsg measures steady-state allocations per end-to-end
// message — encode, network model, (outbox exchange on the sharded runtime),
// arrival, decode, deliver — on any Runtime. The batch is sized so per-window
// coordinator costs (boundary sort, barrier bookkeeping) amortize to noise;
// a regression that makes them per-message shows up as a whole extra
// allocation per event.
func sendReceiveAllocsPerMsg(r Runtime, env node.Env) float64 {
	e := &wire.Envelope{Kind: wire.KindApp, FromInc: 1, Payload: make([]byte, 64)}
	var ssn uint64
	round := func() {
		for i := 0; i < batchSize; i++ {
			ssn++
			e.SSN = ids.SSN(ssn)
			env.Send(1, e)
		}
		r.Run(time.Duration(r.Now()) + time.Second)
	}
	round() // warm the event arena and outbox capacity
	return testing.AllocsPerRun(20, round) / batchSize
}

func allocGateKernel() (*Kernel, node.Env) {
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(0, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	k.AddNode(1, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	k.Boot()
	return k, node.Env(k.nodes[0])
}

// allocGateSharded splits the same two nodes across two shards, so every
// message crosses a shard boundary: the outbox enqueue, the sorted flush, and
// the window barrier all sit on the measured path. FIFODefer is on because
// the cluster harness always pairs it with sharding.
func allocGateSharded() (*Sharded, node.Env) {
	s := NewSharded(Config{Seed: 1, HW: hwFast(), FIFODefer: true}, 2)
	s.AddNode(0, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	s.AddNode(1, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	s.Boot()
	return s, node.Env(s.shards[0].nodes[0])
}

// TestShardedScheduleDeliverAllocs is the sharded-path allocation regression
// gate CI runs: routing a message through the conservative-window coordinator
// must cost at most a fraction of an allocation per message over the classic
// kernel — the outbox slots, flush scratch, and boundary sort state are all
// reused, so only per-window bookkeeping (amortized over the batch) remains.
func TestShardedScheduleDeliverAllocs(t *testing.T) {
	k, kenv := allocGateKernel()
	classic := sendReceiveAllocsPerMsg(k, kenv)
	s, senv := allocGateSharded()
	sharded := sendReceiveAllocsPerMsg(s, senv)
	t.Logf("allocs/msg: classic=%.3f sharded=%.3f", classic, sharded)
	if sharded > classic+0.5 {
		t.Errorf("sharded send/receive allocates %.3f/msg vs classic %.3f/msg; coordinator overhead must stay amortized per window, not per message", sharded, classic)
	}
}

// BenchmarkKernelShardedSendReceive is the sharded twin of
// BenchmarkKernelSendReceive: the end-to-end message path through the
// two-shard coordinator, boundary exchange included.
func BenchmarkKernelShardedSendReceive(b *testing.B) {
	s, env := allocGateSharded()
	e := &wire.Envelope{Kind: wire.KindApp, FromInc: 1, Payload: make([]byte, 64)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SSN = ids.SSN(i)
		env.Send(1, e)
		if (i+1)%batchSize == 0 {
			s.Run(time.Duration(s.Now()) + time.Second)
		}
	}
	s.Run(time.Duration(s.Now()) + time.Second)
}
