package sim

import (
	"fmt"

	"rollrec/internal/ids"
)

// Step-boundary instrumentation for the failure-schedule explorer
// (internal/explore). A "step" is the index of an event in the kernel's
// deterministic dispatch order: the boundary with index i sits immediately
// before the i-th dispatched event, so two runs of the same configuration
// agree on what "crash at step i" means down to the exact interleaving.
//
// Like the sampler (SetSampler), the probe is observation-only: it consumes
// no sequence numbers, draws no randomness, and enqueues nothing, so a run
// with a probe attached is bit-identical — same event sequence, same golden
// trace hash — to a run without one. Crash injection (CrashAtStep) is the
// one sanctioned mutation at a boundary, and it is what makes the explorer
// able to land crashes *between* any two events — including inside an
// in-progress recovery, where CrashAt's scheduled event (which sorts after
// all same-time events by sequence number) cannot reach.

// StepInfo describes the event about to be dispatched at a step boundary.
type StepInfo struct {
	// Step is the dispatch index of the event (0-based).
	Step int64
	// At is the event's virtual time in nanoseconds.
	At int64
	// Kind is the kernel event kind (StepFunc..StepWake).
	Kind uint8
	// Proc is the process the event belongs to, or ids.Nobody for harness
	// callbacks and other events with no owning node.
	Proc ids.ProcID
}

// StepFunc observes one step boundary. It must not schedule events, crash
// nodes, or otherwise mutate kernel state; reading (Now, Up, Steps, node
// metrics) is fine.
type StepFunc func(StepInfo)

// Exported aliases of the internal event kinds, for probe consumers.
const (
	// StepKindFunc runs a harness/internal closure.
	StepKindFunc = evFunc
	// StepKindExec is an epoch-guarded process callback (timer fire,
	// deferred execution).
	StepKindExec = evExec
	// StepKindArrive is a frame reaching its destination's network
	// interface.
	StepKindArrive = evArrive
	// StepKindDeliver is a busy-deferred frame delivery.
	StepKindDeliver = evDeliver
	// StepKindWake drains one item from a node's FIFO deferral queue.
	StepKindWake = evWake
)

// SetStepProbe installs fn to be invoked at every step boundary, immediately
// before the event at that step dispatches. A nil fn detaches the probe.
func (k *Kernel) SetStepProbe(fn StepFunc) { k.stepFn = fn }

// Steps returns the step index of the next boundary: the number of events
// dispatched so far, except that from inside an event handler or tracer
// callback it names the boundary immediately *after* the currently
// dispatching event — which is exactly the index to pass to CrashAtStep to
// crash "right after this event".
func (k *Kernel) Steps() int64 { return k.dispatched }

// CrashAtStep registers a crash of id at the given step boundary: the crash
// takes effect after event step-1 completes and before event step begins.
// Multiple victims registered for the same step crash in registration order.
// Crashing an already-down process at its step is a silent no-op (mirroring
// Crash); compare recoveries against CrashesApplied, not the plan length.
func (k *Kernel) CrashAtStep(step int64, id ids.ProcID) {
	if step < 0 || step < k.dispatched {
		panic(fmt.Sprintf("sim: CrashAtStep(%d): boundary already passed (at step %d)",
			step, k.dispatched))
	}
	if id.IsStorage() {
		panic("sim: the stable-storage pseudo-process never fails (paper §3.3)")
	}
	if k.stepCrash == nil {
		k.stepCrash = make(map[int64][]ids.ProcID)
	}
	k.stepCrash[step] = append(k.stepCrash[step], id)
}

// CrashesApplied returns the number of crash injections that actually took
// effect (the victim had a live process image). Schedules synthesized by the
// explorer may re-crash a process that is still down; those injections are
// no-ops and must not be counted against liveness.
func (k *Kernel) CrashesApplied() int { return k.crashApplied }

// stepBoundary fires the probe and applies step-indexed crashes for the
// boundary before dispatching e. Called with the event already popped off
// the heap and copied out, so an injected crash (which schedules a restart
// and may grow the arena) cannot disturb the dispatch in progress.
func (k *Kernel) stepBoundary(e *event) {
	// Crashes land first, then the probe observes the boundary: a probe at
	// step s sees the state every event from s onward will execute against.
	if victims, ok := k.stepCrash[k.dispatched]; ok {
		delete(k.stepCrash, k.dispatched)
		for _, id := range victims {
			k.Crash(id)
		}
	}
	if k.stepFn != nil {
		proc := ids.Nobody
		if e.ns != nil {
			proc = e.ns.id
		}
		k.stepFn(StepInfo{Step: k.dispatched, At: e.at, Kind: e.kind, Proc: proc})
	}
}
