package sim

import (
	"testing"
	"time"

	"rollrec/internal/node"
	"rollrec/internal/wire"
)

func TestDuplicateNodePanics(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(0, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode must panic")
		}
	}()
	k.AddNode(0, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
}

func TestAtClampsToNow(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(0, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	k.Boot()
	k.Run(time.Second)
	fired := false
	k.At(time.Millisecond, func() { fired = true }) // in the past: clamp to now
	k.Run(2 * time.Second)
	if !fired {
		t.Fatal("past-scheduled callback must fire immediately")
	}
}

func TestRunReturnsEventCount(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(0, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	k.Boot()
	k.At(time.Millisecond, func() {})
	k.At(2*time.Millisecond, func() {})
	if got := k.Run(time.Second); got != 2 {
		t.Fatalf("Run processed %d events, want 2", got)
	}
	if got := k.Run(2 * time.Second); got != 0 {
		t.Fatalf("idle Run processed %d events", got)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast(), MaxEvents: 100})
	k.AddNode(0, func() node.Process {
		return bootFunc(func(env node.Env, _ bool) {
			var loop func()
			loop = func() { env.After(time.Microsecond, loop) }
			loop()
		})
	})
	k.Boot()
	defer func() {
		if recover() == nil {
			t.Fatal("runaway schedule must trip the event limit")
		}
	}()
	k.Run(time.Hour)
}

func TestCrashIsIdempotentAndRestartOnce(t *testing.T) {
	k, _, boots := newPingKernel(t, 10)
	k.CrashAt(time.Millisecond, 1)
	k.CrashAt(time.Millisecond+time.Microsecond, 1) // double crash: no-op
	k.Run(10 * time.Second)
	if boots[1] != 2 {
		t.Fatalf("boots = %d, want 2", boots[1])
	}
	if !k.Up(1) {
		t.Fatal("node must be back up")
	}
}

func TestMetricsCountTraffic(t *testing.T) {
	k, _, _ := newPingKernel(t, 6)
	k.Run(time.Second)
	m0, m1 := k.Metrics(0), k.Metrics(1)
	app := uint8(wire.KindApp)
	if m0.MsgsSent[app] == 0 || m1.MsgsRecv[app] == 0 {
		t.Fatal("traffic counters empty")
	}
	if m0.BytesSent[app] == 0 || m1.BytesRecv[app] == 0 {
		t.Fatal("byte counters empty")
	}
	if k.Net().Frames == 0 || k.Net().Bytes == 0 {
		t.Fatal("network counters empty")
	}
}

func TestUpAndProcOfUnknownNode(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast()})
	if k.Up(42) {
		t.Fatal("unknown node must not be up")
	}
	if k.ProcOf(42) != nil {
		t.Fatal("unknown node must have no process")
	}
}
