package sim

import (
	"testing"
	"time"

	"rollrec/internal/node"
)

// newIdleKernel returns a booted kernel with one no-op node, for white-box
// scheduler tests.
func newIdleKernel(t *testing.T) *Kernel {
	t.Helper()
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(0, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	k.Boot()
	return k
}

// TestTimerStopReleasesHeapSlot is the cancellation contract: Stop removes
// the event from the heap immediately (no tombstone waiting for its
// deadline) and recycles the slot through the free list, so retry-heavy
// workloads cannot bloat the queue with dead timers.
func TestTimerStopReleasesHeapSlot(t *testing.T) {
	k := newIdleKernel(t)
	env := node.Env(k.nodes[0])

	const armed = 100
	timers := make([]node.Timer, armed)
	for i := range timers {
		timers[i] = env.After(time.Duration(i+1)*time.Second, func() {
			t.Error("stopped timer fired")
		})
	}
	if len(k.heap) != armed {
		t.Fatalf("heap holds %d events after arming %d timers", len(k.heap), armed)
	}
	arenaSize := len(k.slots)
	for _, tm := range timers {
		tm.Stop()
	}
	if len(k.heap) != 0 {
		t.Fatalf("heap still holds %d events after stopping every timer", len(k.heap))
	}
	// The freed slots must be reused, not leaked: re-arming the same number
	// of timers cannot grow the arena.
	for i := range timers {
		timers[i] = env.After(time.Duration(i+1)*time.Second, func() {})
	}
	if len(k.slots) != arenaSize {
		t.Fatalf("arena grew %d -> %d; stopped timers must recycle slots", arenaSize, len(k.slots))
	}
}

// TestTimerStopIsIdempotentAcrossReuse: a handle whose slot has been
// recycled must become inert — double Stop, Stop after firing, and Stop
// after the slot was re-armed by a different timer are all no-ops.
func TestTimerStopIsIdempotentAcrossReuse(t *testing.T) {
	k := newIdleKernel(t)
	env := node.Env(k.nodes[0])

	a := env.After(time.Second, func() { t.Error("timer a fired") })
	a.Stop()
	a.Stop() // double stop: no-op

	// b reuses a's freed slot; a's stale handle must not be able to kill it.
	bFired := false
	b := env.After(2*time.Second, func() { bFired = true })
	a.Stop()
	k.Run(3 * time.Second)
	if !bFired {
		t.Fatal("stale handle cancelled a reused slot")
	}
	b.Stop() // after firing: no-op

	// c's slot fires normally; stopping afterwards must not disturb d.
	c := env.After(time.Second, func() {})
	k.Run(5 * time.Second)
	dFired := false
	env.After(time.Second, func() { dFired = true })
	c.Stop()
	k.Run(7 * time.Second)
	if !dFired {
		t.Fatal("Stop after firing cancelled an unrelated reused slot")
	}
}

// TestStoppedTimerCreditsEventCount pins the accounting bridge that keeps
// BENCH sim_events byte-identical: a cancelled timer no longer occupies
// the heap, but its deadline still counts as one processed event in the
// Run that covers it — exactly like the tombstone pop it replaced. A
// deadline beyond the horizon is credited only once a later Run reaches
// it.
func TestStoppedTimerCreditsEventCount(t *testing.T) {
	k := newIdleKernel(t)
	env := node.Env(k.nodes[0])

	t1 := env.After(time.Millisecond, func() {})
	t2 := env.After(2*time.Millisecond, func() {})
	t3 := env.After(10*time.Second, func() {})
	t1.Stop()
	t2.Stop()
	t3.Stop()
	if got := k.Run(time.Second); got != 2 {
		t.Fatalf("Run(1s) processed %d events, want 2 credits for in-horizon cancelled deadlines", got)
	}
	if got := k.Run(5 * time.Second); got != 0 {
		t.Fatalf("Run(5s) processed %d events, want 0 (t3 deadline not reached)", got)
	}
	if got := k.Run(20 * time.Second); got != 1 {
		t.Fatalf("Run(20s) processed %d events, want 1 credit for t3", got)
	}
}

// TestCancelledCreditsInterleaveWithLiveEvents: credits are charged in
// deadline order relative to live events, so multi-step Runs observe the
// same per-call event counts as a scheduler that popped tombstones.
func TestCancelledCreditsInterleaveWithLiveEvents(t *testing.T) {
	k := newIdleKernel(t)
	env := node.Env(k.nodes[0])

	tm := env.After(2*time.Millisecond, func() {})
	k.At(time.Millisecond, func() {})
	k.At(3*time.Millisecond, func() {})
	tm.Stop()
	// Split exactly between the credit's deadline and the later live event.
	if got := k.Run(2 * time.Millisecond); got != 2 {
		t.Fatalf("Run(2ms) processed %d events, want 2 (live@1ms + credit@2ms)", got)
	}
	if got := k.Run(time.Second); got != 1 {
		t.Fatalf("Run(1s) processed %d events, want 1 (live@3ms)", got)
	}
}

func TestNegativeAtPanics(t *testing.T) {
	k := newIdleKernel(t)
	defer func() {
		if recover() == nil {
			t.Fatal("At with a negative time must panic")
		}
	}()
	k.At(-time.Second, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(0, func() node.Process {
		return bootFunc(func(env node.Env, _ bool) {
			defer func() {
				if recover() == nil {
					t.Error("After with a negative duration must panic")
				}
			}()
			env.After(-time.Millisecond, func() {})
		})
	})
	k.Boot()
}

// TestMetricsStoreUnknownNodePanics: Metrics and Store are programming-
// error accessors and must fail loudly (with a message naming the id)
// instead of returning a nil that dereferences three frames later; Up and
// ProcOf stay nil-safe for liveness polling.
func TestMetricsStoreUnknownNodePanics(t *testing.T) {
	k := newIdleKernel(t)
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"Metrics", func() { k.Metrics(42) }},
		{"Store", func() { k.Store(42) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(42) on unknown node must panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}
