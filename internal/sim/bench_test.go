package sim

import (
	"container/heap"
	"testing"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/node"
	"rollrec/internal/wire"
)

// ── container/heap baseline ────────────────────────────────────────────
//
// oldSched replicates the scheduler this kernel shipped with before the
// flat-slot rework: a container/heap of *oldEvent pointers, one heap
// allocation per scheduled event plus interface-boxed Push/Pop calls, and
// a closure wrapping every delivery. It exists only as the benchmark
// baseline the alloc assertions compare against.

type oldEvent struct {
	at  int64
	seq uint64
	fn  func()
}

type oldEventHeap []*oldEvent

func (h oldEventHeap) Len() int { return len(h) }
func (h oldEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oldEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oldEventHeap) Push(x any)   { *h = append(*h, x.(*oldEvent)) }
func (h *oldEventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type oldSched struct {
	now    int64
	seq    uint64
	events oldEventHeap
}

func (s *oldSched) schedule(at int64, fn func()) {
	s.seq++
	heap.Push(&s.events, &oldEvent{at: at, seq: s.seq, fn: fn})
}

func (s *oldSched) drain() int {
	n := 0
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*oldEvent)
		s.now = e.at
		e.fn()
		n++
	}
	return n
}

// deliverOld mimics the old kernel's per-message scheduling: an arrival
// closure capturing the destination state, which on pop wraps the decode
// and handler into a second deferred-exec closure — the two per-message
// closure allocations (plus the *oldEvent) the typed-event rework removed.
func (s *oldSched) deliverOld(at int64, dst *int, frame []byte, handle func(*int, []byte)) {
	s.schedule(at, func() {
		fn := func() { handle(dst, frame) }
		fn()
	})
}

// ── benchmark workload helpers ─────────────────────────────────────────

// benchSink defeats dead-code elimination in the benchmark loops.
var benchSink int

// ── benchmarks ─────────────────────────────────────────────────────────

// BenchmarkKernelScheduleDeliver measures the flat scheduler's
// schedule→pop→dispatch path in steady state: typed delivery events on a
// pooled arena, zero allocations per event once the arena is warm. Its
// baseline twin below does the identical work through the old
// container/heap-of-pointers design; the alloc assertions in
// TestScheduleDeliverAllocs compare the two.
func BenchmarkKernelScheduleDeliver(b *testing.B) {
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(0, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	k.Boot()
	ns := k.nodes[0]
	fn := func() { benchSink++ }
	// Warm the arena so the measured loop reuses pooled slots.
	for i := 0; i < batchSize; i++ {
		k.scheduleExec(k.now+int64(i), ns, ns.epoch, fn)
	}
	k.Run(time.Duration(k.now + batchSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.scheduleExec(k.now+1, ns, ns.epoch, fn)
		if (i+1)%batchSize == 0 {
			k.Run(time.Duration(k.now + batchSize))
		}
	}
	k.Run(time.Duration(k.now + batchSize))
}

const batchSize = 256

// BenchmarkContainerHeapScheduleDeliver is the pre-rework baseline:
// per-event heap allocation, interface boxing through container/heap, and
// the per-message delivery closures.
func BenchmarkContainerHeapScheduleDeliver(b *testing.B) {
	s := &oldSched{}
	frame := make([]byte, 64)
	handle := func(dst *int, frame []byte) { *dst += len(frame) }
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.deliverOld(s.now+1, &sink, frame, handle)
		if (i+1)%batchSize == 0 {
			s.drain()
		}
	}
	s.drain()
	benchSink += sink
}

// BenchmarkKernelSendReceive is the end-to-end message path — encode,
// network model, arrival, decode, deliver — the number that bounds sweep
// throughput.
func BenchmarkKernelSendReceive(b *testing.B) {
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(0, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	k.AddNode(1, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	k.Boot()
	env := node.Env(k.nodes[0])
	e := &wire.Envelope{Kind: wire.KindApp, FromInc: 1, Payload: make([]byte, 64)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SSN = ids.SSN(i)
		env.Send(1, e)
		if (i+1)%batchSize == 0 {
			k.Run(time.Duration(k.now) + time.Second)
		}
	}
	k.Run(time.Duration(k.now) + time.Second)
}

// BenchmarkKernelTimerChurn arms and immediately cancels timers — the
// retry-timer pattern the protocols use — exercising heap removal and the
// slot free list. Before real cancellation every iteration left a dead
// event in the queue until its deadline.
func BenchmarkKernelTimerChurn(b *testing.B) {
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(0, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	k.Boot()
	env := node.Env(k.nodes[0])
	fn := func() { benchSink++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.After(time.Hour, fn).Stop()
	}
	if len(k.heap) != 0 {
		b.Fatalf("heap holds %d events after churn; Stop must release slots", len(k.heap))
	}
}

// ── allocation assertions ──────────────────────────────────────────────

// flatAllocsPerEvent measures steady-state allocations per scheduled-and-
// dispatched event on the flat scheduler.
func flatAllocsPerEvent() float64 {
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(0, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	k.Boot()
	ns := k.nodes[0]
	fn := func() { benchSink++ }
	for i := 0; i < batchSize; i++ {
		k.scheduleExec(k.now+int64(i), ns, ns.epoch, fn)
	}
	k.Run(time.Duration(k.now + batchSize))
	return testing.AllocsPerRun(50, func() {
		for i := 0; i < batchSize; i++ {
			k.scheduleExec(k.now+1, ns, ns.epoch, fn)
		}
		k.Run(time.Duration(k.now + batchSize))
	}) / batchSize
}

// baselineAllocsPerEvent measures the same loop on the container/heap
// replica.
func baselineAllocsPerEvent() float64 {
	s := &oldSched{}
	frame := make([]byte, 64)
	handle := func(dst *int, frame []byte) { *dst += len(frame) }
	var sink int
	return testing.AllocsPerRun(50, func() {
		for i := 0; i < batchSize; i++ {
			s.deliverOld(s.now+1, &sink, frame, handle)
		}
		s.drain()
	}) / batchSize
}

// TestScheduleDeliverAllocs is the allocation regression gate CI runs: the
// flat scheduler must stay allocation-free in steady state, and in
// particular at least 2× below the container/heap baseline it replaced.
func TestScheduleDeliverAllocs(t *testing.T) {
	flat := flatAllocsPerEvent()
	base := baselineAllocsPerEvent()
	t.Logf("allocs/event: flat=%.3f baseline=%.3f", flat, base)
	if flat != 0 {
		t.Errorf("flat scheduler allocates %.3f/event in steady state, want 0", flat)
	}
	if base < 1 {
		t.Errorf("baseline allocates %.3f/event; the replica no longer models container/heap costs", base)
	}
	if 2*flat > base {
		t.Errorf("flat scheduler must allocate at least 2x less than the baseline: flat=%.3f baseline=%.3f", flat, base)
	}
}

// TestTimerChurnAllocs bounds the retry-timer pattern: arm+Stop costs at
// most the simTimer handle itself (one allocation), never a queue slot.
func TestTimerChurnAllocs(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast()})
	k.AddNode(0, func() node.Process { return bootFunc(func(node.Env, bool) {}) })
	k.Boot()
	env := node.Env(k.nodes[0])
	fn := func() { benchSink++ }
	got := testing.AllocsPerRun(100, func() {
		env.After(time.Hour, fn).Stop()
	})
	if got > 1 {
		t.Errorf("timer arm+stop allocates %.1f, want <= 1 (the handle)", got)
	}
}
