// Sharded conservative-window scheduling (DESIGN §2): the cluster's
// processes are partitioned across independent Kernel instances that
// synchronize at fixed virtual-time boundaries.
//
// The conservative-window argument: every frame takes at least the minimum
// network latency L to arrive, so an event executed at virtual time t can
// influence another process no earlier than t+L. Running every shard
// independently over the window [T, T+W) with W <= L is therefore exactly
// equivalent to interleaved execution, provided frames sent during the
// window are exchanged at the boundary. All sends — same-shard ones
// included — go through per-shard outboxes that the coordinator drains at
// each boundary in one globally sorted order, so the arrival sequence
// numbers a destination assigns are independent of how the processes are
// partitioned. That makes every per-process execution, and hence the merged
// golden event-trace hash, byte-identical for any shard count (pinned by
// TestShardedGoldenTraceHash).
package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/node"
	"rollrec/internal/storage"
)

// Runtime is the simulator surface the cluster harness drives: both the
// classic single-heap Kernel and the Sharded coordinator implement it.
type Runtime interface {
	AddNode(id ids.ProcID, factory node.Factory)
	Boot()
	Run(until time.Duration) int64
	RunContext(ctx context.Context, until time.Duration) (int64, error)
	At(d time.Duration, fn func())
	CrashAt(d time.Duration, id ids.ProcID)
	Now() int64
	Up(id ids.ProcID) bool
	ProcOf(id ids.ProcID) node.Process
	Metrics(id ids.ProcID) *metrics.Proc
	Store(id ids.ProcID) *storage.Store
	QueueDepth() int
	InFlightFrames() int
	SetSampler(every time.Duration, fn func(now int64))
	CrashesApplied() int
}

var _ Runtime = (*Kernel)(nil)
var _ Runtime = (*Sharded)(nil)

// outMsg is one frame buffered in a shard outbox between windows.
type outMsg struct {
	at     int64
	from   ids.ProcID
	to     ids.ProcID
	frame  []byte
	sentAt int64
}

// Sharded coordinates several Kernels over a shared window grid. Nodes are
// assigned to shards round-robin by process id; each shard owns its nodes'
// event heap and its own network model (link state is source-owned, so the
// per-shard models never disagree). Windows are aligned to multiples of W
// so the boundary schedule — and with it every arrival injection order — is
// a function of virtual time alone, not of the shard count or of how many
// Run calls covered the horizon.
type Sharded struct {
	cfg    Config
	window int64
	shards []*Kernel
	outs   [][]outMsg
	batch  []outMsg // flush scratch, reused between boundaries
	now    int64
	nApp   int
}

// NewSharded returns a coordinator over `shards` kernels built from cfg.
// The window width is the minimum network latency, which the conservative
// argument above requires to be an exact lower bound: the hardware profile
// must have zero jitter and zero drop rate (both would also draw per-shard
// randomness that depends on the partitioning).
func NewSharded(cfg Config, shards int) *Sharded {
	if shards < 1 {
		panic(fmt.Sprintf("sim: NewSharded: shard count %d < 1", shards))
	}
	if cfg.HW.Net.Latency <= 0 {
		panic("sim: NewSharded: hardware profile has no minimum network latency")
	}
	if cfg.HW.Net.Jitter != 0 || cfg.HW.Net.DropRate != 0 {
		panic("sim: NewSharded: conservative windows require zero jitter and zero drop rate")
	}
	s := &Sharded{
		cfg:    cfg,
		window: int64(cfg.HW.Net.Latency),
		shards: make([]*Kernel, shards),
		outs:   make([][]outMsg, shards),
	}
	for i := range s.shards {
		k := New(cfg)
		i := i
		k.arrivalSink = func(at int64, from, to ids.ProcID, frame []byte, sentAt int64) {
			s.outs[i] = append(s.outs[i], outMsg{at: at, from: from, to: to, frame: frame, sentAt: sentAt})
		}
		s.shards[i] = k
	}
	return s
}

// Shards returns the shard count (for reporting).
func (s *Sharded) Shards() int { return len(s.shards) }

// CrashesApplied sums the effective crash injections across shards.
func (s *Sharded) CrashesApplied() int {
	total := 0
	for _, k := range s.shards {
		total += k.crashApplied
	}
	return total
}

func (s *Sharded) shardFor(id ids.ProcID) *Kernel {
	m := int(id) % len(s.shards)
	if m < 0 {
		m += len(s.shards)
	}
	return s.shards[m]
}

// AddNode registers a process slot on its owning shard.
func (s *Sharded) AddNode(id ids.ProcID, factory node.Factory) {
	s.shardFor(id).AddNode(id, factory)
	if !id.IsStorage() {
		s.nApp++
	}
}

// Boot starts every node. Each shard's kernel reports the full cluster size
// through node.Env.N, not its own slice of it.
func (s *Sharded) Boot() {
	for _, k := range s.shards {
		k.nOverride = s.nApp
	}
	for _, k := range s.shards {
		k.Boot()
	}
	// Boot-time sends landed in the outboxes; make them arrivals before the
	// first window runs.
	s.flush()
}

// Now returns the coordinator's virtual clock.
func (s *Sharded) Now() int64 { return s.now }

// Up reports whether the node currently has a live process image.
func (s *Sharded) Up(id ids.ProcID) bool { return s.shardFor(id).Up(id) }

// ProcOf returns the node's current process instance (nil while down).
func (s *Sharded) ProcOf(id ids.ProcID) node.Process { return s.shardFor(id).ProcOf(id) }

// Metrics returns the accumulator of the given node.
func (s *Sharded) Metrics(id ids.ProcID) *metrics.Proc { return s.shardFor(id).Metrics(id) }

// Store returns the crash-surviving stable store of the given node.
func (s *Sharded) Store(id ids.ProcID) *storage.Store { return s.shardFor(id).Store(id) }

// QueueDepth sums the queued events of every shard.
func (s *Sharded) QueueDepth() int {
	n := 0
	for _, k := range s.shards {
		n += k.QueueDepth()
	}
	return n
}

// InFlightFrames counts frames scheduled but not yet arrived, outboxed
// frames awaiting the next boundary included.
func (s *Sharded) InFlightFrames() int {
	n := 0
	for i, k := range s.shards {
		n += k.InFlightFrames() + len(s.outs[i])
	}
	return n
}

// At is unsupported: a harness callback would run inside one shard's window
// with no defined order against the other shards. Use the classic Kernel
// for scenarios that need mid-run harness callbacks (open-loop traffic).
func (s *Sharded) At(d time.Duration, fn func()) {
	panic("sim: Sharded does not support At; harness callbacks have no cross-shard order")
}

// SetSampler is unsupported: a sampler observes the whole cluster at exact
// virtual-time boundaries, which would serialize the shards it exists to
// decouple.
func (s *Sharded) SetSampler(every time.Duration, fn func(now int64)) {
	panic("sim: Sharded does not support samplers; use the classic Kernel for timeline capture")
}

// CrashAt schedules a crash of id at virtual time d from start, on the
// owning shard. Scheduled before Run (the harness pattern), the crash holds
// an earlier sequence number than any runtime event, so it pops first among
// same-instant events exactly as it does on the classic kernel.
func (s *Sharded) CrashAt(d time.Duration, id ids.ProcID) {
	s.shardFor(id).CrashAt(d, id)
}

// Run processes events until virtual time `until`; see Kernel.Run.
func (s *Sharded) Run(until time.Duration) int64 {
	n, _ := s.RunContext(context.Background(), until)
	return n
}

// RunContext advances all shards window by window until virtual time
// `until`, exchanging buffered frames at every boundary. Cancellation stops
// between boundaries, never inside a window, so a cancelled run resumes on
// the same grid and reproduces the identical event sequence.
func (s *Sharded) RunContext(ctx context.Context, until time.Duration) (int64, error) {
	limit := int64(until)
	var total int64
	// Sends issued between Run calls (harness-driven, e.g. the alloc
	// benchmarks) sit in the outboxes where the fast-forward peek cannot see
	// them; make them arrivals first. Cluster runs leave the outboxes empty
	// at every Run return (the tail window flushes inside the loop), so this
	// is a no-op there.
	s.flush()
	for {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		// Fast-forward: the next window is the grid cell holding the
		// earliest queued event anywhere (idle cells have no boundary
		// effects — empty outboxes exchange nothing).
		next := int64(-1)
		for _, k := range s.shards {
			if at, ok := k.peekNextAt(); ok && (next < 0 || at < next) {
				next = at
			}
		}
		if next < 0 || next > limit {
			break
		}
		base := next
		if s.now > base {
			base = s.now
		}
		end := (base/s.window + 1) * s.window
		target := end - 1
		if target > limit {
			// Tail window clamped at the horizon: events at `limit` itself
			// belong to this run (Kernel.Run processes at <= until), and
			// nothing they send can arrive before the grid boundary anyway.
			target = limit
		}
		n, err := s.runAll(ctx, target)
		total += n
		s.flush()
		s.now = target
		if err != nil {
			return total, err
		}
	}
	// Settle: advance every clock to the horizon and account for cancelled
	// deadlines inside it, exactly like an idle classic kernel would.
	n, err := s.runAll(ctx, limit)
	total += n
	s.now = limit
	return total, err
}

// runAll runs every shard to the same inclusive target, in parallel. The
// shards share no mutable state during a window — separate heaps, arenas,
// networks, and outboxes — so the concurrency cannot reorder events; it
// only shortens wall-clock time (pinned by the -cpu 1,4 golden test).
func (s *Sharded) runAll(ctx context.Context, target int64) (int64, error) {
	until := time.Duration(target)
	if len(s.shards) == 1 {
		return s.shards[0].RunContext(ctx, until)
	}
	var wg sync.WaitGroup
	counts := make([]int64, len(s.shards))
	errs := make([]error, len(s.shards))
	panics := make([]any, len(s.shards))
	for i := range s.shards {
		wg.Add(1)
		//rollvet:allow goroutine -- conservative-window barrier: shards own disjoint kernels, synchronize only via wg, and every cross-shard effect moves through the sorted boundary flush (DESIGN §2)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
				}
			}()
			counts[i], errs[i] = s.shards[i].RunContext(ctx, until)
		}(i)
	}
	wg.Wait()
	var total int64
	var firstErr error
	for i := range s.shards {
		if panics[i] != nil {
			panic(fmt.Sprintf("sim: shard %d: %v", i, panics[i]))
		}
		total += counts[i]
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	return total, firstErr
}

// flush drains every outbox and injects the frames as arrival events on
// their destination shards, in one globally sorted order. The stable
// (at, to, from) sort is what makes injection — and therefore the sequence
// numbers the destination kernel assigns — independent of the partitioning:
// ties beyond the key can only be frames of one sender to one receiver,
// which a single outbox already holds in send order.
func (s *Sharded) flush() {
	batch := s.batch[:0]
	for i := range s.outs {
		batch = append(batch, s.outs[i]...)
		// Release the frame references; the backing array is reused.
		for j := range s.outs[i] {
			s.outs[i][j] = outMsg{}
		}
		s.outs[i] = s.outs[i][:0]
	}
	if len(batch) == 0 {
		s.batch = batch
		return
	}
	sort.SliceStable(batch, func(i, j int) bool {
		a, b := &batch[i], &batch[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.from < b.from
	})
	for i := range batch {
		m := &batch[i]
		dk := s.shardFor(m.to)
		dk.scheduleArrive(m.at, dk.nodes[m.to], m.frame, m.sentAt)
		batch[i] = outMsg{}
	}
	s.batch = batch[:0]
}
