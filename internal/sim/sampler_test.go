package sim

import (
	"fmt"
	"testing"
	"time"

	"rollrec/internal/node"
)

// TestSamplerBoundaryRule pins the observation-only sampling contract: a
// sample at boundary b fires after every event with at < b and before any
// event with at >= b, including an event at exactly b.
func TestSamplerBoundaryRule(t *testing.T) {
	k := New(Config{Seed: 1, HW: hwFast()})
	var log []string
	k.AddNode(0, func() node.Process {
		return bootFunc(func(env node.Env, _ bool) {
			for _, d := range []time.Duration{
				4 * time.Millisecond,
				10 * time.Millisecond, // exactly on a boundary: sample first
				16 * time.Millisecond,
			} {
				d := d
				env.After(d, func() { log = append(log, fmt.Sprintf("e@%v", d)) })
			}
		})
	})
	k.Boot()
	k.SetSampler(10*time.Millisecond, func(now int64) {
		log = append(log, fmt.Sprintf("s@%v", time.Duration(now)))
	})
	k.Run(30 * time.Millisecond)

	want := []string{"e@4ms", "s@10ms", "e@10ms", "e@16ms", "s@20ms", "s@30ms"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("sampler/event interleaving:\n got %v\nwant %v", log, want)
	}
}

// TestSamplerRunsToHorizon: even after the queue drains, the run covers
// every boundary up to the horizon — a run to `until` always takes exactly
// floor(until/interval) samples.
func TestSamplerRunsToHorizon(t *testing.T) {
	k := newIdleKernel(t)
	var n int
	k.SetSampler(10*time.Millisecond, func(int64) { n++ })
	k.Run(95 * time.Millisecond)
	if n != 9 {
		t.Fatalf("took %d samples to 95ms at 10ms, want 9", n)
	}
}

// TestSamplerPersistsAcrossRuns: the boundary clock continues across Run
// calls instead of resetting, so split horizons sample like one long run.
func TestSamplerPersistsAcrossRuns(t *testing.T) {
	k := newIdleKernel(t)
	var at []time.Duration
	k.SetSampler(10*time.Millisecond, func(now int64) { at = append(at, time.Duration(now)) })
	k.Run(15 * time.Millisecond)
	k.Run(35 * time.Millisecond)
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if fmt.Sprint(at) != fmt.Sprint(want) {
		t.Fatalf("boundaries %v, want %v", at, want)
	}
}

// TestSamplerMidRunInstall: installing after virtual time has passed aligns
// the first boundary to the next interval multiple, never to the past.
func TestSamplerMidRunInstall(t *testing.T) {
	k := newIdleKernel(t)
	k.Run(25 * time.Millisecond)
	var at []time.Duration
	k.SetSampler(10*time.Millisecond, func(now int64) { at = append(at, time.Duration(now)) })
	k.Run(45 * time.Millisecond)
	want := []time.Duration{30 * time.Millisecond, 40 * time.Millisecond}
	if fmt.Sprint(at) != fmt.Sprint(want) {
		t.Fatalf("boundaries %v, want %v", at, want)
	}
}

// TestSamplerDetachAndValidate: a nil fn detaches; a non-positive interval
// is a programming error.
func TestSamplerDetachAndValidate(t *testing.T) {
	k := newIdleKernel(t)
	n := 0
	k.SetSampler(10*time.Millisecond, func(int64) { n++ })
	k.SetSampler(time.Millisecond, nil)
	k.Run(50 * time.Millisecond)
	if n != 0 {
		t.Fatalf("detached sampler fired %d times", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetSampler(0) must panic")
		}
	}()
	k.SetSampler(0, func(int64) {})
}

// TestSamplerSeesQueueAndInFlight: the kernel gauges the timeline samples —
// queue depth and in-flight frames — are visible from inside a sample while
// traffic is flowing, and the in-flight count returns to zero at the end.
func TestSamplerSeesQueueAndInFlight(t *testing.T) {
	// 10 rounds per side ≈ 20 one-way legs at 1 ms: done well before the
	// 50 ms horizon, so every frame lands inside the run.
	k, _, _ := newPingKernel(t, 10)
	sawQueue, sawInFlight := 0, 0
	k.SetSampler(500*time.Microsecond, func(int64) {
		if k.QueueDepth() > 0 {
			sawQueue++
		}
		if k.InFlightFrames() > 0 {
			sawInFlight++
		}
	})
	k.Run(50 * time.Millisecond)
	if sawQueue == 0 {
		t.Error("no sample observed a non-empty event queue")
	}
	if sawInFlight == 0 {
		t.Error("no sample observed an in-flight frame (1ms latency, 500µs sampling)")
	}
	if k.InFlightFrames() != 0 {
		t.Errorf("%d frames still in flight after the run drained", k.InFlightFrames())
	}
}

// TestSamplerDoesNotChangeEventCount: enabling sampling must not change the
// processed-event total of an identical run — the count the bench snapshots
// pin.
func TestSamplerDoesNotChangeEventCount(t *testing.T) {
	run := func(sample bool) int64 {
		k, _, _ := newPingKernel(t, 50)
		if sample {
			k.SetSampler(time.Millisecond, func(int64) {})
		}
		return k.Run(100 * time.Millisecond)
	}
	plain, sampled := run(false), run(true)
	if plain != sampled {
		t.Fatalf("event counts diverged: %d unsampled vs %d sampled", plain, sampled)
	}
	if plain == 0 {
		t.Fatal("run processed no events")
	}
}
