package ids

import (
	"fmt"
	"sort"
)

// ProcID identifies a process in a cluster. Application processes are
// numbered 0..n-1. The distinguished StorageProc models the "additional
// process that never fails" the paper uses for the f = n case (§3.3).
type ProcID int32

// StorageProc is the pseudo-process standing in for stable storage in the
// f = n instance of the protocol family. It never fails and never initiates
// messages of its own.
const StorageProc ProcID = -1

// Nobody is the zero-value "no process" sentinel, distinct from both real
// processes and StorageProc.
const Nobody ProcID = -2

// String renders the identifier for logs and traces.
func (p ProcID) String() string {
	switch p {
	case StorageProc:
		return "p[stable]"
	case Nobody:
		return "p[none]"
	default:
		return fmt.Sprintf("p%d", int32(p))
	}
}

// IsStorage reports whether the identifier names the stable-storage
// pseudo-process.
func (p ProcID) IsStorage() bool { return p == StorageProc }

// Valid reports whether p names a real or storage process within a cluster
// of n application processes.
func (p ProcID) Valid(n int) bool {
	return p == StorageProc || (p >= 0 && int(p) < n)
}

// Incarnation counts how many times a process has recovered from a failure.
// It starts at 1 for the initial execution and is incremented on every
// recovery (paper §3.2). Incarnation 0 means "unknown".
type Incarnation uint32

// SSN is a send sequence number: the position of a message in its sender's
// send order. SSNs restart-continue across failures because the execution is
// deterministic — a recovering sender regenerates messages with their
// original SSNs, which is what lets receivers suppress duplicates.
type SSN uint64

// RSN is a receive sequence number: the position of a message in its
// receiver's delivery order. The pair (receiver, RSN) is the nondeterministic
// outcome that determinants record.
type RSN uint64

// MsgID names an application message uniquely across the whole execution:
// the sender together with the sender-local send sequence number. Note the
// incarnation is deliberately not part of the identity — a regenerated
// message is the same message.
type MsgID struct {
	Sender ProcID
	SSN    SSN
}

// String renders the message identifier.
func (m MsgID) String() string { return fmt.Sprintf("%v#%d", m.Sender, m.SSN) }

// Less orders message identifiers by (sender, ssn); used for deterministic
// iteration when emitting piggyback lists and replay requests.
func (m MsgID) Less(o MsgID) bool {
	if m.Sender != o.Sender {
		return m.Sender < o.Sender
	}
	return m.SSN < o.SSN
}

// SortMsgIDs sorts a slice of message identifiers in (sender, ssn) order.
func SortMsgIDs(s []MsgID) {
	sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
}

// Ordinal is the system-wide monotonic recovery ordinal from §3.2: every
// recovery acquires one, and the in-progress recovery with the lowest
// ordinal is the recovery leader. We realize it as a Lamport timestamp
// paired with the recovering process's identifier, which yields the total
// order the paper requires.
type Ordinal struct {
	Clock uint64
	Proc  ProcID
}

// Less orders ordinals lexicographically by (clock, proc).
func (o Ordinal) Less(p Ordinal) bool {
	if o.Clock != p.Clock {
		return o.Clock < p.Clock
	}
	return o.Proc < p.Proc
}

// IsZero reports whether the ordinal is unset.
func (o Ordinal) IsZero() bool { return o.Clock == 0 && o.Proc == 0 }

// String renders the ordinal.
func (o Ordinal) String() string { return fmt.Sprintf("ord(%d,%v)", o.Clock, o.Proc) }
