package ids

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestProcIDString(t *testing.T) {
	if ProcID(3).String() != "p3" {
		t.Fatalf("String = %q", ProcID(3).String())
	}
	if StorageProc.String() != "p[stable]" || Nobody.String() != "p[none]" {
		t.Fatal("sentinel names wrong")
	}
}

func TestProcIDValid(t *testing.T) {
	if !ProcID(0).Valid(4) || !ProcID(3).Valid(4) || !StorageProc.Valid(4) {
		t.Fatal("valid ids rejected")
	}
	if ProcID(4).Valid(4) || Nobody.Valid(4) || ProcID(-3).Valid(4) {
		t.Fatal("invalid ids accepted")
	}
	if !StorageProc.IsStorage() || ProcID(0).IsStorage() {
		t.Fatal("IsStorage wrong")
	}
}

func TestMsgIDOrdering(t *testing.T) {
	a := MsgID{Sender: 1, SSN: 5}
	b := MsgID{Sender: 1, SSN: 6}
	c := MsgID{Sender: 2, SSN: 1}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("Less ordering wrong")
	}
	if a.Less(a) {
		t.Fatal("Less must be irreflexive")
	}
	s := []MsgID{c, b, a}
	SortMsgIDs(s)
	if s[0] != a || s[1] != b || s[2] != c {
		t.Fatalf("SortMsgIDs = %v", s)
	}
}

func TestMsgIDLessIsStrictWeakOrder(t *testing.T) {
	f := func(xs []uint16) bool {
		s := make([]MsgID, len(xs))
		for i, x := range xs {
			s[i] = MsgID{Sender: ProcID(x % 7), SSN: SSN(x / 7)}
		}
		SortMsgIDs(s)
		return sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Less(s[j]) })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrdinalOrdering(t *testing.T) {
	a := Ordinal{Clock: 1, Proc: 5}
	b := Ordinal{Clock: 2, Proc: 0}
	c := Ordinal{Clock: 2, Proc: 1}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("ordinal order wrong")
	}
	if !(Ordinal{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
	if a.String() == "" || (MsgID{}).String() == "" {
		t.Fatal("String must render")
	}
}
