// Package ids defines the identifier types shared by every layer of the
// rollback-recovery stack: process identifiers, incarnation numbers, and the
// send/receive sequence numbers that name messages and determinants.
//
// The types live in their own small package so that the wire codec, the
// determinant log, the protocol engine, and the runtimes can all agree on
// them without import cycles.
package ids
