package node

import (
	"testing"
	"time"
)

func TestSendCost(t *testing.T) {
	hw := Hardware{CPUMsgCost: time.Millisecond, CPUByteCost: 100 * time.Nanosecond}
	if got := hw.SendCost(1000); got != time.Millisecond+100*time.Microsecond {
		t.Fatalf("SendCost = %v", got)
	}
	if got := (Hardware{}).SendCost(1000); got != 0 {
		t.Fatalf("zero hardware must be free: %v", got)
	}
}

func TestRecvCostDefaultsToSendCost(t *testing.T) {
	// The symmetric-stack default: with no receive overrides, RecvCost is
	// exactly SendCost — including both built-in profiles, which is what
	// keeps every golden number unchanged by the RecvCost split.
	for _, hw := range []Hardware{
		{CPUMsgCost: time.Millisecond, CPUByteCost: 100 * time.Nanosecond},
		Profile1995(),
		ProfileModern(),
	} {
		for _, size := range []int{0, 64, 4096} {
			if hw.RecvCost(size) != hw.SendCost(size) {
				t.Fatalf("RecvCost(%d) = %v, want SendCost %v", size, hw.RecvCost(size), hw.SendCost(size))
			}
		}
	}
}

func TestRecvCostOverride(t *testing.T) {
	hw := Hardware{
		CPUMsgCost:   time.Millisecond,
		CPUByteCost:  100 * time.Nanosecond,
		RecvMsgCost:  200 * time.Microsecond,
		RecvByteCost: 10 * time.Nanosecond,
	}
	if got := hw.RecvCost(1000); got != 200*time.Microsecond+10*time.Microsecond {
		t.Fatalf("RecvCost = %v", got)
	}
	// Setting either field alone switches the whole receive path to the
	// override pair.
	asym := Hardware{CPUMsgCost: time.Millisecond, RecvMsgCost: time.Microsecond}
	if got := asym.RecvCost(500); got != time.Microsecond {
		t.Fatalf("partial override RecvCost = %v", got)
	}
}

func TestProfilesAreSane(t *testing.T) {
	old, modern := Profile1995(), ProfileModern()
	// The technology trend the paper is about: the modern profile's storage
	// and network are faster, its detection quicker.
	if modern.Disk.Latency >= old.Disk.Latency {
		t.Fatal("modern storage must have lower latency than the 1995 disk")
	}
	if modern.Net.Latency >= old.Net.Latency {
		t.Fatal("modern network must be faster")
	}
	if modern.WatchdogDetect >= old.WatchdogDetect {
		t.Fatal("modern detection must be faster")
	}
	// And the 1995 constants reproduce the paper's headline numbers: a 1 MB
	// process restores in well under the multi-second detection window.
	restore := old.Disk.ReadTime(1 << 20)
	if restore >= old.WatchdogDetect {
		t.Fatalf("restore (%v) must be smaller than detection (%v): the paper's breakdown",
			restore, old.WatchdogDetect)
	}
	if old.HeartbeatEvery >= old.SuspectAfter {
		t.Fatal("heartbeats must be more frequent than the suspicion timeout")
	}
}
