// Package node defines the runtime abstraction the protocol stack is
// written against: an event-driven Process driven by an Env that provides
// virtual (or real) time, message transmission, timers, stable storage, and
// metrics.
//
// Two runtimes implement Env: the deterministic discrete-event simulator
// (internal/sim), which all experiments use, and the goroutine-per-process
// runtime (internal/livenet), which the examples use. Protocol code cannot
// tell them apart.
package node

import (
	"math/rand"
	"time"

	"rollrec/internal/ids"
	"rollrec/internal/metrics"
	"rollrec/internal/netmodel"
	"rollrec/internal/storage"
	"rollrec/internal/trace"
	"rollrec/internal/wire"
)

// Env is the world as seen by one process. All methods must be called from
// the process's own event handlers (the runtimes serialize per-process
// execution); callbacks registered here are likewise invoked serially.
type Env interface {
	// ID returns this process's identifier.
	ID() ids.ProcID
	// N returns the number of application processes in the cluster.
	N() int
	// Now returns the current virtual time in nanoseconds since start.
	Now() int64
	// Send transmits the envelope to its destination. The envelope is
	// serialized at call time; the caller may reuse it afterwards. Sending
	// to a down process silently drops the frame, as a real network would.
	Send(to ids.ProcID, e *wire.Envelope)
	// After schedules fn to run on this process after d of virtual time.
	// The timer dies with the process instance: a crash cancels it.
	After(d time.Duration, fn func()) Timer
	// Busy charges d of CPU time to this process: subsequent message
	// deliveries and timers are deferred until the process is free again.
	Busy(d time.Duration)
	// ReadStable asynchronously reads a key from this process's stable
	// store; cb runs after the modeled storage latency with a copy of the
	// value (nil if absent). The callback dies with the process instance.
	ReadStable(key string, cb func(data []byte, ok bool))
	// WriteStable asynchronously writes to stable storage; the data becomes
	// durable (and cb runs) only after the modeled latency — a crash before
	// completion loses the write.
	WriteStable(key string, data []byte, cb func())
	// Rand returns this process's deterministic random stream.
	Rand() *rand.Rand
	// Logf emits a trace line if tracing is enabled.
	Logf(format string, args ...any)
	// Metrics returns this process's statistics accumulator.
	Metrics() *metrics.Proc
	// Tracer returns the event tracer; never nil (trace.Nop when tracing
	// is off). Protocol layers use it to mark recovery-phase spans.
	Tracer() trace.Tracer
}

// Timer is a cancelable handle returned by Env.After.
type Timer interface {
	// Stop cancels the timer if it has not fired. Safe to call repeatedly.
	Stop()
}

// Process is an event-driven protocol instance. A crash discards the
// instance; recovery constructs a fresh one via the Factory and boots it
// with restart = true.
type Process interface {
	// Boot starts the instance. restart reports whether this is a
	// reincarnation after a crash (stable storage persists across boots).
	Boot(env Env, restart bool)
	// Deliver hands the instance a decoded frame from the network.
	Deliver(e *wire.Envelope)
}

// Factory builds a fresh (volatile) process instance for one node.
type Factory func() Process

// Hardware bundles the cost models the runtimes charge for computation,
// communication, and stable storage, plus the failure-handling timing.
type Hardware struct {
	// Net is the link cost model.
	Net netmodel.Params
	// Disk is the stable-storage cost model.
	Disk storage.Params
	// CPUMsgCost is the fixed processing cost charged for sending or
	// delivering one message (protocol-stack traversal).
	CPUMsgCost time.Duration
	// CPUByteCost is the per-byte processing cost (copying, marshaling).
	CPUByteCost time.Duration
	// RecvMsgCost / RecvByteCost override the receive-path processing cost.
	// When both are zero (the default, and both built-in profiles) the
	// receive path charges the same as the send path — the symmetric-stack
	// assumption the paper's cost model makes — so RecvCost == SendCost.
	// Set either to model asymmetric stacks (e.g. checksum offload on
	// receive).
	RecvMsgCost  time.Duration
	RecvByteCost time.Duration
	// WatchdogDetect is how long after a crash the node's watchdog notices
	// and initiates a restart ("several seconds of timeouts and retrials",
	// paper §2.2).
	WatchdogDetect time.Duration
	// RestartDelay is the process-image restart cost before the checkpoint
	// read begins.
	RestartDelay time.Duration
	// HeartbeatEvery is the peer heartbeat period.
	HeartbeatEvery time.Duration
	// SuspectAfter is how long without traffic from a peer before the
	// failure detector suspects it.
	SuspectAfter time.Duration
}

// SendCost returns the CPU time charged to a process for sending one
// frame of the given size.
func (h Hardware) SendCost(size int) time.Duration {
	return h.CPUMsgCost + time.Duration(size)*h.CPUByteCost
}

// RecvCost returns the CPU time charged to a process for delivering one
// frame of the given size. It defaults to SendCost (symmetric stack)
// unless RecvMsgCost or RecvByteCost is set.
func (h Hardware) RecvCost(size int) time.Duration {
	if h.RecvMsgCost == 0 && h.RecvByteCost == 0 {
		return h.SendCost(size)
	}
	return h.RecvMsgCost + time.Duration(size)*h.RecvByteCost
}

// Profile1995 models the paper's testbed: DEC 5000/200 workstations
// (25 MHz MIPS, 32 MB) on a 155 Mb/s ATM LAN, era disks, and the multi-
// second timeout-based failure detection the paper describes. The absolute
// constants are calibrated so experiments E1/E2 land in the ranges §5
// reports; the experiment *shapes* do not depend on them.
func Profile1995() Hardware {
	return Hardware{
		Net: netmodel.Params{
			Latency:   400 * time.Microsecond,
			Bandwidth: 155e6 / 8 * 0.8, // ~80% of line rate after framing
		},
		Disk:           storage.Disk1995(),
		CPUMsgCost:     time.Millisecond,      // 1995 protocol stacks: ~25k instructions/msg
		CPUByteCost:    150 * time.Nanosecond, // ~4 instructions/byte on a 25 MHz MIPS
		WatchdogDetect: 3 * time.Second,
		RestartDelay:   500 * time.Millisecond,
		HeartbeatEvery: 250 * time.Millisecond,
		SuspectAfter:   3 * time.Second,
	}
}

// ProfileModern models a contemporary cluster (fast network, fast CPU,
// SSD-class storage) for the technology-trend sweeps.
func ProfileModern() Hardware {
	return Hardware{
		Net: netmodel.Params{
			Latency:   20 * time.Microsecond,
			Bandwidth: 10e9 / 8,
		},
		Disk: storage.Params{
			Latency:        100 * time.Microsecond,
			ReadBandwidth:  2e9,
			WriteBandwidth: 1e9,
		},
		CPUMsgCost:     2 * time.Microsecond,
		CPUByteCost:    0,
		WatchdogDetect: 500 * time.Millisecond,
		RestartDelay:   50 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
		SuspectAfter:   500 * time.Millisecond,
	}
}
