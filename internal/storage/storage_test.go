package storage

import (
	"testing"
	"time"
)

func TestCostModel(t *testing.T) {
	p := Params{Latency: 10 * time.Millisecond, ReadBandwidth: 1e6, WriteBandwidth: 2e6}
	if got := p.ReadTime(1_000_000); got != 10*time.Millisecond+time.Second {
		t.Fatalf("ReadTime = %v", got)
	}
	if got := p.WriteTime(1_000_000); got != 10*time.Millisecond+500*time.Millisecond {
		t.Fatalf("WriteTime = %v", got)
	}
	if got := p.ReadTime(0); got != 10*time.Millisecond {
		t.Fatalf("zero-byte read must still pay latency: %v", got)
	}
	free := Params{}
	if got := free.WriteTime(1 << 20); got != 0 {
		t.Fatalf("zero params must be free: %v", got)
	}
}

func TestScale(t *testing.T) {
	p := Params{Latency: 10 * time.Millisecond, ReadBandwidth: 1e6, WriteBandwidth: 1e6}
	s := p.Scale(4)
	if s.Latency != 40*time.Millisecond {
		t.Fatalf("scaled latency = %v", s.Latency)
	}
	if s.ReadBandwidth != 0.25e6 {
		t.Fatalf("scaled bandwidth = %v", s.ReadBandwidth)
	}
	// Scaling must compose: a 4x slower disk reads 4x slower.
	if got, want := s.ReadTime(1_000_000), 40*time.Millisecond+4*time.Second; got != want {
		t.Fatalf("scaled ReadTime = %v, want %v", got, want)
	}
}

func TestStorePutGetIsolation(t *testing.T) {
	s := NewStore()
	data := []byte("checkpoint-1")
	s.Put("cp", data)
	data[0] = 'X' // caller mutation must not reach the store
	got, ok := s.Get("cp")
	if !ok || string(got) != "checkpoint-1" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	got[0] = 'Y' // reader mutation must not reach the store
	again, _ := s.Get("cp")
	if string(again) != "checkpoint-1" {
		t.Fatal("Get must return a copy")
	}
}

func TestStoreMissingAndDelete(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("nope"); ok {
		t.Fatal("missing key must report !ok")
	}
	s.Put("k", []byte("v"))
	if s.Size("k") != 1 {
		t.Fatalf("Size = %d", s.Size("k"))
	}
	s.Delete("k")
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key must be gone")
	}
	if s.Size("k") != 0 {
		t.Fatal("deleted key must report size 0")
	}
}

func TestStoreKeysSorted(t *testing.T) {
	s := NewStore()
	s.Put("b", nil)
	s.Put("a", nil)
	s.Put("c", nil)
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestDisk1995RestoreIsSubSecond(t *testing.T) {
	// The paper's ~1 MB process restores in roughly half a second on the
	// era's disk — the constant the E2 five-second breakdown builds on.
	d := Disk1995()
	got := d.ReadTime(1 << 20)
	if got < 300*time.Millisecond || got > 900*time.Millisecond {
		t.Fatalf("1 MB restore = %v, want ~0.5s", got)
	}
}
