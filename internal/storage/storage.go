// Package storage models stable storage: the crash-surviving store each
// process checkpoints to, with an explicit cost model for synchronous
// access.
//
// The paper's central argument is that the *latency of stable storage
// access* has become a first-order cost of recovery protocols; the cost
// model here (fixed per-operation latency plus size over bandwidth) is what
// the experiments sweep in D2.
package storage

import (
	"fmt"
	"sort"
	"time"
)

// Params is the stable-storage cost model.
type Params struct {
	// Latency is the fixed per-operation cost (seek + rotational delay +
	// controller overhead for a 1995 disk; write-ack round trip for a
	// replicated store).
	Latency time.Duration
	// ReadBandwidth and WriteBandwidth are sustained transfer rates in
	// bytes/second. Zero means infinitely fast transfer.
	ReadBandwidth  float64
	WriteBandwidth float64
}

// ReadTime returns the modeled duration of reading size bytes.
func (p Params) ReadTime(size int) time.Duration {
	return p.Latency + transfer(size, p.ReadBandwidth)
}

// WriteTime returns the modeled duration of writing size bytes.
func (p Params) WriteTime(size int) time.Duration {
	return p.Latency + transfer(size, p.WriteBandwidth)
}

// Scale returns a copy of the parameters with latency multiplied and
// bandwidth divided by factor; used by the storage-penalty sweep (D2).
func (p Params) Scale(factor float64) Params {
	s := p
	s.Latency = time.Duration(float64(p.Latency) * factor)
	if p.ReadBandwidth > 0 {
		s.ReadBandwidth = p.ReadBandwidth / factor
	}
	if p.WriteBandwidth > 0 {
		s.WriteBandwidth = p.WriteBandwidth / factor
	}
	return s
}

func transfer(size int, bw float64) time.Duration {
	if bw <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / bw * float64(time.Second))
}

// Disk1995 models a workstation disk of the paper's era: ~14 ms average
// access, ~2 MB/s sustained transfer. Restoring the paper's ~1 MB process
// state therefore takes roughly half a second, and the paper's observation
// that restoring state may take "tens of seconds or a few minutes" for
// large processes follows directly.
func Disk1995() Params {
	return Params{
		Latency:        14 * time.Millisecond,
		ReadBandwidth:  2.0e6,
		WriteBandwidth: 1.6e6,
	}
}

// Store is a crash-surviving key-value store for one process. It survives
// crashes because the runtime owns it across process reincarnations; only
// the process image is volatile. Store is not safe for concurrent use from
// multiple goroutines; the livenet runtime serializes access.
type Store struct {
	data map[string][]byte
}

// NewStore returns an empty stable store.
func NewStore() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Put durably records data under key, replacing any previous value. The
// byte slice is copied.
func (s *Store) Put(key string, data []byte) {
	s.data[key] = append([]byte(nil), data...)
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Delete removes key if present.
func (s *Store) Delete(key string) { delete(s.data, key) }

// Size returns the stored size of key's value, or 0.
//
//rollvet:hotpath
func (s *Store) Size(key string) int { return len(s.data[key]) }

// Len returns the number of stored keys.
//
//rollvet:hotpath
func (s *Store) Len() int { return len(s.data) }

// Bytes returns the total stored payload size: the stable-storage
// footprint gauge the timeline sampler reads.
//
//rollvet:hotpath
func (s *Store) Bytes() int64 {
	var total int64
	for _, v := range s.data {
		total += int64(len(v))
	}
	return total
}

// Keys returns the stored keys in sorted order.
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String summarizes the store contents for traces.
func (s *Store) String() string {
	total := 0
	for _, v := range s.data {
		total += len(v)
	}
	return fmt.Sprintf("store{keys=%d bytes=%d}", len(s.data), total)
}
