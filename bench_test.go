// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §3 for the experiment index). Each benchmark executes the
// corresponding experiment in the deterministic simulator and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Absolute wall-clock per op is the cost
// of simulating the scenario, not a protocol quantity; the custom metrics
// (recovery_ms, blocked_ms, ...) are the paper's numbers.
package rollrec

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"
)

// cell parses a duration-looking table cell ("34.1ms", "4.50s", "0") back
// to milliseconds for metric reporting. Out-of-range coordinates and
// unparseable cells report -1 rather than panicking, so a reshaped table
// shows up as an impossible metric instead of a crashed benchmark.
func cell(t *Table, row, col int) float64 {
	if row < 0 || col < 0 || row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return -1
	}
	s := t.Rows[row][col]
	if s == "0" {
		return 0
	}
	if d, err := time.ParseDuration(s); err == nil {
		return float64(d) / float64(time.Millisecond)
	}
	if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
		return f
	}
	return -1
}

// TestCell pins cell's contract on malformed and out-of-range input: the
// benchmarks above index tables positionally, so cell must degrade to -1
// (never panic) when an experiment's table changes shape underneath them.
func TestCell(t *testing.T) {
	tbl := Table{Rows: [][]string{
		{"label", "34.1ms", "4.50s", "0", "2.5", " 7 ", "n/a", ""},
	}}
	cases := []struct {
		name     string
		row, col int
		want     float64
	}{
		{"duration ms", 0, 1, 34.1},
		{"duration s", 0, 2, 4500},
		{"bare zero", 0, 3, 0},
		{"plain float", 0, 4, 2.5},
		{"padded int", 0, 5, 7},
		{"non-numeric", 0, 6, -1},
		{"empty cell", 0, 7, -1},
		{"text label", 0, 0, -1},
		{"col past end", 0, 8, -1},
		{"row past end", 1, 0, -1},
		{"negative row", -1, 0, -1},
		{"negative col", 0, -1, -1},
	}
	for _, tc := range cases {
		if got := cell(&tbl, tc.row, tc.col); got != tc.want {
			t.Errorf("%s: cell(%d,%d) = %v, want %v", tc.name, tc.row, tc.col, got, tc.want)
		}
	}
	empty := Table{}
	if got := cell(&empty, 0, 0); got != -1 {
		t.Errorf("empty table: got %v, want -1", got)
	}
}

// BenchmarkE1SingleFailure regenerates E1: the paper's first experiment
// (single failure, equal recovery time, ≈50 ms blocking vs none).
func BenchmarkE1SingleFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := E1(context.Background(), 1)
		b.ReportMetric(cell(&t, 0, 1), "recovery_new_ms")
		b.ReportMetric(cell(&t, 1, 2), "blocked_baseline_ms")
		b.ReportMetric(cell(&t, 0, 2), "blocked_new_ms")
	}
}

// BenchmarkE2OverlappingFailures regenerates E2: a second failure during
// recovery (≈5 s dominated by detection+restore; blocking style stalls
// every live process for the window).
func BenchmarkE2OverlappingFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := E2(context.Background(), 1)
		b.ReportMetric(cell(&t, 0, 2), "recovery_second_ms")
		b.ReportMetric(cell(&t, 1, 3), "blocked_baseline_ms")
		b.ReportMetric(cell(&t, 0, 3), "blocked_new_ms")
	}
}

// BenchmarkD1ScaleN regenerates D1: intrusion vs cluster size.
func BenchmarkD1ScaleN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := D1(context.Background(), 1)
		// Last blocking row: n=32.
		b.ReportMetric(cell(&t, len(t.Rows)-1, 3), "blocked_n32_ms")
	}
}

// BenchmarkD2StorageSweep regenerates D2: intrusion vs stable-storage
// penalty (the paper's thesis).
func BenchmarkD2StorageSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := D2(context.Background(), 1)
		b.ReportMetric(cell(&t, len(t.Rows)-2, 3), "blocked_blocking_x16_ms")
		b.ReportMetric(cell(&t, len(t.Rows)-3, 3), "blocked_new_x16_ms")
	}
}

// BenchmarkD3MessageCounts regenerates D3: the traditional communication
// metric (the new algorithm pays more control messages).
func BenchmarkD3MessageCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := D3(context.Background(), 1)
		b.ReportMetric(cell(&t, len(t.Rows)-2, 2), "ctlmsgs_new_n16")
		b.ReportMetric(cell(&t, len(t.Rows)-1, 2), "ctlmsgs_baseline_n16")
	}
}

// BenchmarkD4FailureFreeOverhead regenerates D4: piggyback cost vs f.
func BenchmarkD4FailureFreeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := D4(context.Background(), 1)
		b.ReportMetric(cell(&t, 0, 1), "dets_per_msg_f1")
		b.ReportMetric(cell(&t, len(t.Rows)-1, 1), "dets_per_msg_fn")
	}
}

// BenchmarkD5Breakdown regenerates D5: the recovery-time phase breakdown.
func BenchmarkD5Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := D5(context.Background(), 1)
		b.ReportMetric(cell(&t, 0, 2), "detect_ms")
		b.ReportMetric(cell(&t, 0, 3), "restore_ms")
		b.ReportMetric(cell(&t, 0, 4), "gather_ms")
	}
}

// BenchmarkD6ManethoMode regenerates D6: intrusion by recovery style.
func BenchmarkD6ManethoMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := D6(context.Background(), 1)
		b.ReportMetric(cell(&t, 2, 1), "blocked_manetho_ms")
		b.ReportMetric(cell(&t, 1, 1), "blocked_blocking_ms")
	}
}

// BenchmarkD7NetworkSweep regenerates D7: where expensive communication
// starts to matter again.
func BenchmarkD7NetworkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := D7(context.Background(), 1)
		b.ReportMetric(cell(&t, len(t.Rows)-2, 3), "gather_wan_ms")
		b.ReportMetric(cell(&t, 0, 3), "gather_lan_ms")
	}
}

// BenchmarkD8ModelValidation regenerates D8: the analytical cost model
// validated against the simulator.
func BenchmarkD8ModelValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := D8(context.Background(), 1)
		// Model/measured ratio for the blocking style's intrusion.
		b.ReportMetric(cell(&t, 9, 4), "blocked_model_over_measured")
	}
}

// BenchmarkD9CoordinatedComparison regenerates D9: message logging vs
// coordinated checkpointing with global rollback.
func BenchmarkD9CoordinatedComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := D9(context.Background(), 1)
		b.ReportMetric(cell(&t, 0, 3), "redone_logging")
		b.ReportMetric(cell(&t, 1, 3), "redone_coordinated")
		b.ReportMetric(cell(&t, 1, 2), "blocked_coordinated_ms")
	}
}

// BenchmarkD10Orphans regenerates D10: orphan counts under FBL vs
// optimistic logging.
func BenchmarkD10Orphans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := D10(context.Background(), 1)
		b.ReportMetric(cell(&t, 0, 1), "orphans_fbl")
		b.ReportMetric(cell(&t, 1, 1), "orphans_optimistic")
		b.ReportMetric(cell(&t, 1, 2), "lost_optimistic")
	}
}

// BenchmarkF1Figure1 regenerates the paper's Figure 1 execution with a
// crash of p and measures its recovery.
func BenchmarkF1Figure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{
			N:               3,
			F:               2,
			Seed:            7,
			Style:           NonBlocking,
			App:             Figure1(3000),
			CheckpointEvery: time.Second,
			StatePad:        16 << 10,
		})
		c.Crash(1500*time.Millisecond, 0)
		if !c.RunUntilDone(time.Second, 5*time.Minute) {
			b.Fatal("figure-1 run did not settle")
		}
		if errs := c.Check(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
		tr := c.Metrics(0).CurrentRecovery()
		b.ReportMetric(float64(tr.Total())/float64(time.Millisecond), "recovery_ms")
	}
}
