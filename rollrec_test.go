package rollrec

import (
	"testing"
	"time"
)

// fastHardware shrinks every timeout so public-API tests run in
// milliseconds of wall time.
func fastHardware() Hardware {
	hw := Profile1995()
	hw.WatchdogDetect = 200 * time.Millisecond
	hw.RestartDelay = 50 * time.Millisecond
	hw.SuspectAfter = 300 * time.Millisecond
	hw.HeartbeatEvery = 50 * time.Millisecond
	hw.CPUMsgCost = 20 * time.Microsecond
	hw.CPUByteCost = 0
	hw.Disk.Latency = time.Millisecond
	hw.Disk.ReadBandwidth = 100e6
	hw.Disk.WriteBandwidth = 100e6
	return hw
}

// TestPublicAPIEndToEnd drives the documented quick-start flow: build a
// cluster, inject a failure, wait, check invariants, read the trace.
func TestPublicAPIEndToEnd(t *testing.T) {
	c := NewCluster(Config{
		N:               4,
		F:               2,
		Seed:            1,
		HW:              fastHardware(),
		Style:           NonBlocking,
		App:             TokenRing(800, 32, int64(500*time.Microsecond)),
		CheckpointEvery: 300 * time.Millisecond,
		StatePad:        8 << 10,
	})
	c.Crash(800*time.Millisecond, 1)
	if !c.RunUntilDone(500*time.Millisecond, time.Minute) {
		t.Fatal("cluster did not settle")
	}
	if errs := c.Check(); len(errs) != 0 {
		t.Fatalf("invariants violated: %v", errs)
	}
	tr := c.Metrics(1).CurrentRecovery()
	if tr == nil || tr.Total() == 0 {
		t.Fatal("recovery trace missing")
	}
	if c.Metrics(0).BlockedTotal() != 0 {
		t.Fatal("nonblocking style blocked a live process")
	}
}

func TestAllWorkloadFactoriesConstruct(t *testing.T) {
	for name, f := range map[string]AppFactory{
		"ring":   TokenRing(10, 0, 0),
		"gossip": Gossip(1, 5, 0, 0),
		"cs":     ClientServer(3, 0, 0),
	} {
		app := f(1, 4)
		if app == nil {
			t.Fatalf("%s: nil app", name)
		}
		if _, err := f(1, 4).Snapshot(), error(nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if Figure1(5)(2, 3) == nil {
		t.Fatal("figure1 factory failed")
	}
}

func TestProfilesExposed(t *testing.T) {
	if Profile1995().WatchdogDetect <= ProfileModern().WatchdogDetect {
		t.Fatal("1995 detection must be slower than modern")
	}
	if DefaultCheckpointEvery <= 0 {
		t.Fatal("default checkpoint interval must be positive")
	}
}

func TestPlanHelpersExposed(t *testing.T) {
	p := Plan{{At: 2 * time.Second, Proc: 1}, {At: time.Second, Proc: 0}}
	if s := p.Sorted(); s[0].Proc != 0 {
		t.Fatal("Plan.Sorted not working through the facade")
	}
	if p.MaxConcurrent(5*time.Second) != 2 {
		t.Fatal("Plan.MaxConcurrent not working through the facade")
	}
}

// TestLiveNetThroughFacade runs the protocol on the goroutine runtime via
// the public helpers.
func TestLiveNetThroughFacade(t *testing.T) {
	hw := fastHardware()
	net := NewLiveNet(LiveConfig{HW: hw, Seed: 5})
	par := ProtocolParams{
		N:               3,
		F:               2,
		App:             TokenRing(50_000, 16, 0),
		Style:           NonBlocking,
		CheckpointEvery: 100 * time.Millisecond,
		HeartbeatEvery:  hw.HeartbeatEvery,
		SuspectAfter:    hw.SuspectAfter,
		RetryEvery:      100 * time.Millisecond,
	}
	for i := 0; i < 3; i++ {
		AddProtocol(net, ProcID(i), par)
	}
	net.Boot()
	time.Sleep(200 * time.Millisecond)
	net.Crash(2)
	deadline := time.Now().Add(15 * time.Second)
	recovered := false
	for time.Now().Before(deadline) && !recovered {
		InspectProtocol(net, 2, func(p *Process) {
			if p != nil && p.Incarnation() == 2 && p.Mode().String() == "live" {
				recovered = true
			}
		})
		time.Sleep(20 * time.Millisecond)
	}
	net.Close()
	if !recovered {
		t.Fatal("process never recovered on the live runtime via the facade")
	}
}
