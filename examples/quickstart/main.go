// Quickstart: run a four-process token ring under the Family-Based Logging
// protocol, kill a process mid-computation, and watch the paper's
// non-blocking recovery algorithm bring it back without disturbing anyone.
package main

import (
	"fmt"
	"time"

	"rollrec"
)

func main() {
	cfg := rollrec.Config{
		N:               4,
		F:               2, // tolerate two overlapping failures
		Seed:            1,
		Style:           rollrec.NonBlocking,
		App:             rollrec.TokenRing(4000, 64, int64(500*time.Microsecond)),
		CheckpointEvery: time.Second,
		StatePad:        64 << 10,
	}
	c := rollrec.NewCluster(cfg)

	// Kill process 2 while the token is flying.
	c.Crash(2*time.Second, 2)

	if !c.RunUntilDone(time.Second, 5*time.Minute) {
		fmt.Println("the ring did not finish — something is wrong")
		return
	}

	fmt.Println("token ring finished after a mid-computation crash of p2")
	fmt.Println()
	for p := rollrec.ProcID(0); p < 4; p++ {
		m := c.Metrics(p)
		status := "ran failure-free"
		if tr := m.CurrentRecovery(); tr != nil {
			status = fmt.Sprintf("crashed and recovered in %v (gather rounds: %d)",
				tr.Total().Round(time.Millisecond), tr.Rounds)
		}
		fmt.Printf("  %v: delivered %4d messages, blocked %v — %s\n",
			p, m.Delivered, m.BlockedTotal(), status)
	}

	fmt.Println()
	if errs := c.Check(); len(errs) == 0 {
		fmt.Println("invariants: no orphans, exactly-once delivery, all recoveries complete ✓")
	} else {
		for _, err := range errs {
			fmt.Println("violation:", err)
		}
	}
	fmt.Printf("final state digests (all processes agree with the failure-free run): %x\n", c.Digests())
}
