// Styles reruns the paper's argument in miniature: the same overlapping-
// failure schedule under the three recovery algorithms — the paper's new
// non-blocking algorithm, the classic blocking baseline, and Manetho-style
// synchronous-logging recovery — and prints what each costs the processes
// that did NOT fail.
package main

import (
	"fmt"
	"time"

	"rollrec"
)

func main() {
	fmt.Println("n=8, f=2, 1995 hardware; p3 crashes at t=10s, p5 crashes during p3's recovery")
	fmt.Println()
	fmt.Printf("%-12s  %-14s  %-14s  %-18s\n", "algorithm", "p3 recovery", "p5 recovery", "live blocked (mean)")

	for _, style := range []rollrec.Style{rollrec.NonBlocking, rollrec.Blocking, rollrec.Manetho} {
		c := rollrec.NewCluster(rollrec.Config{
			N:               8,
			F:               2,
			Seed:            1,
			Style:           style,
			App:             rollrec.Gossip(1, 1_000_000, 256, int64(time.Millisecond)),
			CheckpointEvery: rollrec.DefaultCheckpointEvery,
			StatePad:        1 << 20,
		})
		c.Crash(10*time.Second, 3)
		c.Crash(14100*time.Millisecond, 5) // mid-gather
		c.Run(40 * time.Second)
		if errs := c.Check(); len(errs) > 0 {
			fmt.Println("violation:", errs[0])
			return
		}

		var blocked time.Duration
		lives := 0
		for p := rollrec.ProcID(0); p < 8; p++ {
			if p == 3 || p == 5 {
				continue
			}
			blocked += c.Metrics(p).BlockedTotal()
			lives++
		}
		fmt.Printf("%-12s  %-14v  %-14v  %-18v\n",
			style,
			c.Metrics(3).CurrentRecovery().Total().Round(10*time.Millisecond),
			c.Metrics(5).CurrentRecovery().Total().Round(10*time.Millisecond),
			(blocked / time.Duration(lives)).Round(time.Millisecond))
	}

	fmt.Println()
	fmt.Println("the failed processes recover in the same time either way; the difference is")
	fmt.Println("what recovery does to everyone else — the paper's thesis.")
}
