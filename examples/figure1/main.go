// Figure1 enacts the example execution from Figure 1 of the paper: three
// processes p, q, r where q sends m to p, p sends m' to q, and q sends m”
// to r — so m is an antecedent of m', and m' of m”.
//
// With f = 2, the receipt order of m must be logged at three hosts; it
// travels piggybacked along the causal path p → q → r. We then crash p
// after it has sent m'. Recovery must find m's receipt order in q's or r's
// volatile log, replay m to p in its original order, and let p regenerate
// m' deterministically — all while q and r keep running.
package main

import (
	"fmt"
	"time"

	"rollrec"
)

func main() {
	const (
		p = rollrec.ProcID(0)
		q = rollrec.ProcID(1)
		r = rollrec.ProcID(2)
	)
	cfg := rollrec.Config{
		N:               3,
		F:               2,
		Seed:            7,
		Style:           rollrec.NonBlocking,
		App:             rollrec.Figure1(3000), // repeat the m → m' → m'' chain
		CheckpointEvery: time.Second,
		StatePad:        16 << 10,
	}

	fmt.Println("running the paper's Figure 1 execution: q →m→ p →m'→ q →m''→ r")

	// First, the failure-free run, to know the correct final state.
	golden := rollrec.NewCluster(cfg)
	if !golden.RunUntilDone(time.Second, 5*time.Minute) {
		panic("golden run did not finish")
	}

	// Now the same execution, but p fails mid-chain.
	c := rollrec.NewCluster(cfg)
	c.Crash(1500*time.Millisecond, p)
	if !c.RunUntilDone(time.Second, 5*time.Minute) {
		panic("failure run did not finish")
	}

	tr := c.Metrics(p).CurrentRecovery()
	fmt.Printf("\np crashed at t=1.5s and was live again %v later:\n", tr.Total().Round(time.Millisecond))
	fmt.Printf("  detection+restart: %v\n", time.Duration(tr.RestartedAt-tr.CrashedAt))
	fmt.Printf("  checkpoint restore: %v\n", time.Duration(tr.RestoredAt-tr.RestartedAt).Round(time.Millisecond))
	fmt.Printf("  depinfo gather:     %v (leader: %v)\n",
		time.Duration(tr.GatheredAt-tr.RestoredAt).Round(time.Millisecond), tr.WasLeader)
	fmt.Printf("  replay:             %v\n", time.Duration(tr.ReplayedAt-tr.GatheredAt).Round(time.Millisecond))

	fmt.Printf("\nintrusion on the live processes q and r: %v and %v (the paper's point)\n",
		c.Metrics(q).BlockedTotal(), c.Metrics(r).BlockedTotal())

	ok := true
	g, f := golden.Digests(), c.Digests()
	for i := range g {
		if g[i] != f[i] {
			ok = false
		}
	}
	if errs := c.Check(); len(errs) > 0 {
		for _, err := range errs {
			fmt.Println("violation:", err)
		}
		return
	}
	if ok {
		fmt.Println("\nall three processes reached the exact failure-free final state:")
		fmt.Printf("  p=%x q=%x r=%x ✓\n", f[0], f[1], f[2])
	} else {
		fmt.Printf("\nstate divergence! golden=%x got=%x\n", g, f)
	}
}
