// Designs compares the three recovery design families the paper's related
// work discusses, on the same failure: the FBL protocol family with the
// paper's non-blocking recovery, coordinated checkpointing with global
// rollback (Chandy–Lamport), and optimistic message logging with orphan
// cascades (Strom–Yemini style).
//
// It prints experiments D9 and D10 from the evaluation suite — the whole
// design-space argument of the paper's §6 in two tables.
package main

import (
	"context"
	"fmt"

	"rollrec"
)

func main() {
	fmt.Println("one crash, eight processes, 1995 hardware — three recovery designs:")
	fmt.Println()
	fmt.Println(rollrec.D9(context.Background(), 1).String())
	fmt.Println(rollrec.D10(context.Background(), 1).String())
	fmt.Println("logging confines the failure to the failed process; every other design")
	fmt.Println("makes survivors pay — with stalls, lost work, or orphaned state.")
}
