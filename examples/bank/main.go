// Bank runs a replicated-ledger scenario on the goroutine runtime: process
// 0 is a bank server applying transfer requests from four client
// processes, all hosted by the FBL protocol on real concurrent goroutines
// (not the simulator). We crash the server mid-stream; message logging
// plus deterministic replay reconstruct its ledger exactly — no transfer
// is lost or applied twice — while the clients keep submitting.
package main

import (
	"fmt"
	"time"

	"rollrec"
)

func main() {
	const n = 5
	hw := rollrec.Profile1995()
	// Scale the model 50x faster than real time so the demo runs in a few
	// wall-clock seconds.
	net := rollrec.NewLiveNet(rollrec.LiveConfig{HW: hw, TimeScale: 0.02, Seed: 3})

	par := rollrec.ProtocolParams{
		N:               n,
		F:               2,
		App:             rollrec.ClientServer(1_000_000, 128, int64(2*time.Millisecond)),
		Style:           rollrec.NonBlocking,
		CheckpointEvery: 4 * time.Second,
		StatePad:        256 << 10,
		HeartbeatEvery:  hw.HeartbeatEvery,
		SuspectAfter:    hw.SuspectAfter,
	}
	for i := 0; i < n; i++ {
		rollrec.AddProtocol(net, rollrec.ProcID(i), par)
	}
	net.Boot()
	fmt.Println("bank running on goroutines: 4 clients stream transfers to the server (p0)")

	//rollvet:allow simtime -- wall-clock demo driving the real-time livenet runtime, not sim code
	time.Sleep(400 * time.Millisecond) // ≈20 virtual seconds of traffic
	before := applied(net)
	fmt.Printf("server has applied %d transfers — crashing it now\n", before)
	net.Crash(0)

	// Wait for the server to recover and make further progress.
	deadline := time.Now().Add(30 * time.Second) //rollvet:allow simtime -- wall-clock wait on the livenet runtime
	var after uint64
	//rollvet:allow simtime -- wall-clock polling of the livenet runtime
	for time.Now().Before(deadline) {
		//rollvet:allow simtime -- wall-clock polling of the livenet runtime
		time.Sleep(100 * time.Millisecond)
		if a := applied(net); a > before {
			after = a
			break
		}
	}
	tr := net.Metrics(0).CurrentRecovery()
	net.Close()

	if after == 0 {
		fmt.Println("server never resumed — recovery failed")
		return
	}
	fmt.Printf("server recovered (crash → live in %v of modeled time) and kept going: %d transfers applied\n",
		time.Duration(tr.ReplayedAt-tr.CrashedAt).Round(time.Millisecond), after)
	fmt.Println("the ledger was rebuilt from the clients' volatile message logs: nothing lost, nothing doubled")
}

func applied(net *rollrec.LiveNet) uint64 {
	var out uint64
	rollrec.InspectProtocol(net, 0, func(p *rollrec.Process) {
		if p == nil {
			return
		}
		if cs, ok := p.App().(interface{ Applied() uint64 }); ok {
			out = cs.Applied()
		}
	})
	return out
}
