GO ?= go

.PHONY: all build test vet lint race bench check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# rollvet is the repo's own determinism & protocol-invariant analyzer
# (internal/analysis): virtual-clock discipline, seeded randomness, ordered
# map iteration in protocol paths, no goroutines in sim-driven packages,
# and a consistent wire.Kind table. `go test ./...` already enforces it for
# internal/... and the root package; this target also sweeps cmd/ and
# examples/.
lint:
	$(GO) run ./cmd/rollvet ./...

# The livenet runtime records trace events from many goroutines; the race
# target exercises every package under the race detector.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./internal/trace/

check: vet lint test race
