GO ?= go

.PHONY: all build test vet race bench check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The livenet runtime records trace events from many goroutines; the race
# target exercises every package under the race detector.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./internal/trace/

check: vet test race
